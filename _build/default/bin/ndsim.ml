(* ndsim — command-line driver for the Nested Dataflow library:
   per-algorithm analysis, scheduler simulation, and the full experiment
   suite. *)

open Cmdliner
module Pmh = Nd_pmh.Pmh
open Nd_algos

let algo_arg =
  let doc =
    Printf.sprintf "Algorithm: one of %s."
      (String.concat ", " (Nd_experiments.Workloads.names ()))
  in
  Arg.(value & opt string "trs" & info [ "algo"; "a" ] ~docv:"NAME" ~doc)

let n_arg =
  Arg.(value & opt (some int) None & info [ "n"; "size" ] ~docv:"N" ~doc:"Problem size (power of two).")

let base_arg =
  Arg.(value & opt (some int) None & info [ "base"; "b" ] ~docv:"B" ~doc:"Base-case block size.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for the operands.")

let np_arg =
  Arg.(value & flag & info [ "np" ] ~doc:"Use the nested-parallel projection (fires serialized).")

let build_workload algo n base seed =
  let fam = Nd_experiments.Workloads.find algo in
  Nd_experiments.Workloads.build ?n ?base fam ~seed

let mode_of np = if np then Workload.NP else Workload.ND

(* ------------------------------ span ------------------------------- *)

let span_cmd =
  let run algo n base seed =
    let w = build_workload algo n base seed in
    let pnd = Workload.compile w in
    let pnp = Workload.compile ~mode:Workload.NP w in
    Format.printf "%s n=%d base=%d@." w.Workload.name w.Workload.n w.Workload.base;
    Format.printf "  ND: %a@." Nd.Analysis.pp_report (Nd.Analysis.analyze pnd);
    Format.printf "  NP: %a@." Nd.Analysis.pp_report (Nd.Analysis.analyze pnp)
  in
  Cmd.v
    (Cmd.info "span" ~doc:"Work-span analysis of an algorithm, ND vs NP.")
    Term.(const run $ algo_arg $ n_arg $ base_arg $ seed_arg)

(* ------------------------------ race ------------------------------- *)

let race_cmd =
  let explain_arg =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Lift each race to its lowest common ancestor and print the missing-rule pedigrees.")
  in
  let variant_arg =
    Arg.(value & flag
         & info [ "literal" ]
             ~doc:"Use the paper-literal rule variant where one exists (mm, trs, lcs, fw1d).")
  in
  let run algo n base seed np explain literal =
    let w =
      if literal then
        let n = Option.value n ~default:16 and base = Option.value base ~default:2 in
        match algo with
        | "mm" -> Matmul.workload ~variant:Matmul.Literal ~n ~base ~seed ()
        | "trs" -> Trs.workload ~variant:Trs.Literal ~n ~base ~seed ()
        | "lcs" -> Lcs.workload ~variant:`Literal ~n ~base ~seed ()
        | "fw1d" -> Fw1d.workload ~variant:`Literal ~n ~base ~seed ()
        | other ->
          Format.eprintf "no literal variant for %s@." other;
          exit 2
      else build_workload algo n base seed
    in
    let p = Workload.compile ~mode:(mode_of np) w in
    let dag = Nd.Program.dag p in
    if explain then
      match Nd.Rule_check.diagnose ~limit:8 p with
      | [] -> Format.printf "race-free: no rules missing@."
      | findings ->
        List.iter
          (fun f -> Format.printf "@[<v>%a@]@." (Nd.Rule_check.pp_finding p) f)
          findings;
        exit 1
    else
      match Nd_dag.Race.find_races ~limit:16 dag with
      | [] -> Format.printf "race-free (%d vertices, %d edges)@."
                (Nd_dag.Dag.n_vertices dag) (Nd_dag.Dag.n_edges dag)
      | races ->
        Format.printf "%d race(s) found:@." (List.length races);
        List.iter (fun r -> Format.printf "  %a@." (Nd_dag.Race.pp_race dag) r) races;
        exit 1
  in
  Cmd.v
    (Cmd.info "race" ~doc:"Determinacy-race check of the algorithm DAG.")
    Term.(const run $ algo_arg $ n_arg $ base_arg $ seed_arg $ np_arg
          $ explain_arg $ variant_arg)

(* ------------------------------- sb -------------------------------- *)

let sb_cmd =
  let top_arg =
    Arg.(value & opt int 1 & info [ "top" ] ~docv:"K" ~doc:"Top-level cache count (procs = 16K).")
  in
  let fine_arg =
    Arg.(value & flag & info [ "fine" ] ~doc:"Fine-grained cross-anchor readiness (E7 ablation).")
  in
  let run algo n base seed np top fine =
    let w = build_workload algo n base seed in
    let p = Workload.compile ~mode:(mode_of np) w in
    let machine =
      Pmh.create ~root_fanout:top
        [
          { Pmh.size = 64; fanout = 1; miss_cost = 2 };
          { Pmh.size = 512; fanout = 4; miss_cost = 8 };
          { Pmh.size = 4096; fanout = 4; miss_cost = 32 };
        ]
    in
    let mode = if fine then Nd_sched.Sb_sched.Fine else Nd_sched.Sb_sched.Coarse in
    Format.printf "machine: %s@." (Pmh.describe machine);
    let s = Nd_sched.Sb_sched.run ~mode p machine in
    Format.printf "SB(%s,%s): %a@."
      (Workload.mode_name (mode_of np))
      (if fine then "fine" else "coarse")
      Nd_sched.Sb_sched.pp_stats s
  in
  Cmd.v
    (Cmd.info "sb" ~doc:"Simulate the space-bounded scheduler on a PMH.")
    Term.(const run $ algo_arg $ n_arg $ base_arg $ seed_arg $ np_arg $ top_arg $ fine_arg)

(* ------------------------------ check ------------------------------ *)

let check_cmd =
  let run algo n base seed np =
    let w = build_workload algo n base seed in
    let p = Workload.compile ~mode:(mode_of np) w in
    w.Workload.reset ();
    Nd.Serial_exec.run ~rng:(Nd_util.Prng.create (seed + 1)) p;
    let err = w.Workload.check () in
    Format.printf "%s n=%d: randomized-order execution error = %g@."
      w.Workload.name w.Workload.n err;
    if err > 1e-6 then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Execute in a randomized dependency order and compare with the serial reference.")
    Term.(const run $ algo_arg $ n_arg $ base_arg $ seed_arg $ np_arg)

(* ------------------------------- drs ------------------------------- *)

let drs_cmd =
  let run () =
    (* the paper's Figure 3-4 worked example *)
    let strand l =
      Nd.Spawn_tree.leaf
        (Nd.Strand.make ~label:l ~work:1 ~reads:Nd_util.Interval_set.empty
           ~writes:Nd_util.Interval_set.empty ())
    in
    let f = Nd.Spawn_tree.seq [ strand "A"; strand "B" ] in
    let g = Nd.Spawn_tree.seq [ strand "C"; strand "D" ] in
    let main = Nd.Spawn_tree.fire ~rule:"FG" f g in
    let reg =
      Nd.Fire_rule.define Nd.Fire_rule.empty_registry "FG"
        [ Nd.Fire_rule.rule [ 1 ] Nd.Fire_rule.Full [ 1 ] ]
    in
    let p = Nd.Program.compile ~registry:reg main in
    let dag = Nd.Program.dag p in
    Format.printf "MAIN = F ~FG~> G with F = A;B, G = C;D and +<1> ; -<1> (paper Fig. 3-4)@.";
    Format.printf "spawn tree: %a@." Nd.Spawn_tree.pp main;
    Format.printf "algorithm DAG edges:@.";
    for v = 0 to Nd_dag.Dag.n_vertices dag - 1 do
      List.iter
        (fun s ->
          Format.printf "  %s -> %s@." (Nd_dag.Dag.label dag v)
            (Nd_dag.Dag.label dag s))
        (Nd_dag.Dag.succs dag v)
    done;
    Format.printf "span = %d (A before C; B parallel to C,D)@."
      (Nd_dag.Dag.span dag)
  in
  Cmd.v
    (Cmd.info "drs" ~doc:"Show the DRS on the paper's MAIN/F/G example (Figures 3-4).")
    Term.(const run $ const ())

(* --------------------------- experiments ---------------------------- *)

let experiments_cmd =
  let which =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"EXP" ~doc:"Experiment (overview, e1..e9); all when omitted.")
  in
  let run which =
    match which with
    | None -> Nd_experiments.Suite.run_all ()
    | Some name -> (
      try Nd_experiments.Suite.run name
      with Not_found ->
        Format.eprintf "unknown experiment %s@." name;
        exit 2)
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run the paper-reproduction experiment suite.")
    Term.(const run $ which)

let () =
  let doc = "Nested Dataflow model: analysis, simulation and experiments" in
  let info = Cmd.info "ndsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ span_cmd; race_cmd; sb_cmd; check_cmd; drs_cmd; experiments_cmd ]))
