examples/alignment.ml: Format Gotoh Lcs Nd Nd_algos Nd_runtime Unix Workload
