examples/alignment.mli:
