examples/apsp_roadmap.ml: Array Format Fw2d Nd Nd_algos Nd_mem Nd_pmh Nd_runtime Nd_sched Workload
