examples/apsp_roadmap.mli:
