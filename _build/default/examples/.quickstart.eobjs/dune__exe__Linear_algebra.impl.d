examples/linear_algebra.ml: Analysis Cholesky Float Format Kernels Mat Nd Nd_algos Nd_runtime Nd_util Program Rules Spawn_tree Strand Trs Unix
