examples/linear_algebra.mli:
