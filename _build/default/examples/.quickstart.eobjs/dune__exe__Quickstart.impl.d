examples/quickstart.ml: Analysis Fire_rule Format Nd Nd_algos Nd_dag Nd_runtime Nd_util Program Serial_exec Spawn_tree Strand
