examples/quickstart.mli:
