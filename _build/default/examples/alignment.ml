(* Sequence alignment with the ND-model LCS (the paper's dynamic
   programming motivation, Figure 1): compute the longest common
   subsequence length of two random DNA-like sequences, compare the
   fire-construct span against the nested-parallel span, and execute on
   the dataflow runtime.

   Run with: dune exec examples/alignment.exe *)

open Nd_algos

let n = 256

let () =
  let w = Lcs.workload ~n ~base:16 ~seed:424242 () in
  let pnd = Workload.compile w in
  let pnp = Workload.compile ~mode:Workload.NP w in
  let rnd = Nd.Analysis.analyze pnd and rnp = Nd.Analysis.analyze pnp in
  Format.printf "LCS of two length-%d sequences over {A,C,G,T}@." n;
  Format.printf "  ND span %d vs NP span %d: %.1fx more wavefront parallelism@."
    rnd.Nd.Analysis.span rnp.Nd.Analysis.span
    (float_of_int rnp.Nd.Analysis.span /. float_of_int rnd.Nd.Analysis.span);
  w.Workload.reset ();
  let t0 = Unix.gettimeofday () in
  Nd_runtime.Executor.run_dataflow pnd;
  let dt = Unix.gettimeofday () -. t0 in
  Format.printf "  dataflow execution: %.3f s, table error vs reference: %g@." dt
    (w.Workload.check ());
  (* the LCS length sits in the bottom-right DP cell; recover it by
     re-running the serial reference through the workload checker — or
     simply rerun serially and read the answer via a fresh instance *)
  let w2 = Lcs.workload ~n ~base:16 ~seed:424242 () in
  let p2 = Workload.compile w2 in
  w2.Workload.reset ();
  Nd.Serial_exec.run p2;
  (* the checker compares against the reference; error 0 means our table
     holds the true DP values *)
  assert (w2.Workload.check () = 0.);
  Format.printf "  (similarity: an LCS covers a common scaffold of the two strands)@.";

  (* affine-gap alignment (Gotoh) shares the LCS dependency pattern and
     reuses the same fire-rule types — paper footnote 3 *)
  let g = Gotoh.workload ~n ~base:16 ~seed:424242 () in
  let pg = Workload.compile g in
  let rg = Nd.Analysis.analyze pg in
  let rgnp = Nd.Analysis.analyze (Workload.compile ~mode:Workload.NP g) in
  g.Workload.reset ();
  Nd_runtime.Executor.run_dataflow pg;
  Format.printf
    "@.Gotoh affine-gap alignment (same rules: HV/VH/H/V): span %d vs NP %d, error %g@."
    rg.Nd.Analysis.span rgnp.Nd.Analysis.span (g.Workload.check ())
