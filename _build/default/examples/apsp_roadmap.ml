(* All-pairs shortest paths on a random road network with the
   Gaussian-elimination-paradigm Floyd–Warshall in the ND model, plus a
   look at how the space-bounded scheduler would place it on a 3-level
   parallel memory hierarchy.

   Run with: dune exec examples/apsp_roadmap.exe *)

open Nd_algos
module Pmh = Nd_pmh.Pmh

let n = 32

let () =
  let w = Fw2d.workload ~n ~base:4 ~seed:90125 () in
  let p = Workload.compile w in
  Format.printf "APSP on a %d-node network: %a@." n Nd.Analysis.pp_report
    (Nd.Analysis.analyze p);
  w.Workload.reset ();
  Nd_runtime.Executor.run_dataflow p;
  Format.printf "dataflow execution error vs classic Floyd-Warshall: %g@."
    (w.Workload.check ());

  (* what would this cost on a hierarchy?  simulate the SB scheduler *)
  let machine =
    Pmh.create ~root_fanout:1
      [
        { Pmh.size = 64; fanout = 1; miss_cost = 2 };
        { Pmh.size = 512; fanout = 4; miss_cost = 8 };
        { Pmh.size = 4096; fanout = 4; miss_cost = 32 };
      ]
  in
  Format.printf "@.machine: %s@." (Pmh.describe machine);
  let s = Nd_sched.Sb_sched.run p machine in
  Format.printf "space-bounded schedule: %a@." Nd_sched.Sb_sched.pp_stats s;
  for level = 1 to Pmh.n_levels machine do
    let m = max 1 (Pmh.size machine ~level / 3) in
    Format.printf "  level %d: misses %d <= Q*(M/3) = %d (Theorem 1)@." level
      s.Nd_sched.Sb_sched.misses.(level - 1)
      (Nd_mem.Pcc.q_star p ~m)
  done
