(* Solving a dense SPD linear system A x = b with the ND building
   blocks: Cholesky factorization (A = L L^T) followed by two triangular
   solves (L y = b, then L^T x = y via the right-solve on the transposed
   system) — the workload the paper's linear-algebra section motivates.

   The whole pipeline is expressed as ONE spawn tree whose three stages
   are chained with the "CT"-style dependency structure already implied
   by sequential composition, and executed on the multicore dataflow
   runtime.  We verify the residual ||A x - b||_inf at the end.

   Run with: dune exec examples/linear_algebra.exe *)

module Is = Nd_util.Interval_set
open Nd
open Nd_algos

let n = 64

let base = 8

let () =
  let space = Mat.create_space () in
  let a = Mat.alloc space ~rows:n ~cols:n in
  let b = Mat.alloc space ~rows:n ~cols:n in
  (* n right-hand sides at once: B is n x n *)
  let rng = Nd_util.Prng.create 2016 in
  Kernels.fill_spd a rng;
  Kernels.fill_uniform b rng ~lo:(-1.) ~hi:1.;
  let a0 = Mat.snapshot a and b0 = Mat.snapshot b in

  (* stage 1: A = L L^T in place; stage 2: Y = L^-1 B in place in B;
     stage 3: X = L^-T Y (backward substitution). *)
  let cho = Cholesky.cho_tree ~base a in
  let fwd = Trs.trs_tree ~base a b in
  (* backward substitution L^T X = Y: an upper-triangular solve; we run
     it as a single strand with the transposed-solve kernel (the ND
     decomposition of the transposed solve mirrors TRS and is left to
     the reader) *)
  let bwd =
    Spawn_tree.leaf
      (Strand.make ~label:"backward-solve" ~work:(n * n * n)
         ~reads:(Is.union (Mat.region a) (Mat.region b))
         ~writes:(Mat.region b)
         ~action:(fun () -> Kernels.trs_left_trans a b)
         ())
  in
  let pipeline = Spawn_tree.seq [ cho; fwd; bwd ] in
  let program = Program.compile ~registry:Rules.registry pipeline in
  Format.printf "pipeline: %a@." Analysis.pp_report (Analysis.analyze program);
  let t0 = Unix.gettimeofday () in
  Nd_runtime.Executor.run_dataflow program;
  let dt = Unix.gettimeofday () -. t0 in

  (* residual: A0 * X - B0 *)
  let r = Mat.alloc (Mat.create_space ()) ~rows:n ~cols:n in
  Kernels.mm_acc ~sign:1. r a0 b;
  let worst = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let d = Float.abs (Mat.get r i j -. Mat.get b0 i j) in
      if d > !worst then worst := d
    done
  done;
  Format.printf "solved %d systems of size %d in %.3f s, residual %.2e@." n n dt
    !worst;
  if !worst > 1e-6 then exit 1
