(* Quickstart: the ND model in 80 lines.

   We write the paper's introductory example (Figures 3-4) by hand — a
   program MAIN = F ~FG~> G where F = A;B and G = C;D and the fire rule
   says only "A before C" — compile it with the DRS, analyze it, check it
   for determinacy races and execute it.  Then we do the same for a real
   algorithm (triangular solve) using the packaged workloads.

   Run with: dune exec examples/quickstart.exe *)

module Is = Nd_util.Interval_set
open Nd

let () =
  (* -------- 1. a hand-written ND program -------- *)
  let cell = Is.interval 0 1 in
  let strand label action =
    Spawn_tree.leaf
      (Strand.make ~label ~work:1 ~reads:cell ~writes:cell
         ~action:(fun () -> print_string action)
         ())
  in
  let f = Spawn_tree.seq [ strand "A" "A"; strand "B" "B" ] in
  let g = Spawn_tree.seq [ strand "C" "C"; strand "D" "D" ] in
  let main = Spawn_tree.fire ~rule:"FG" f g in
  (* the fire rule: the first subtask of the source must precede the
     first subtask of the sink — and nothing else *)
  let registry =
    Fire_rule.define Fire_rule.empty_registry "FG"
      [ Fire_rule.rule [ 1 ] Fire_rule.Full [ 1 ] ]
  in
  let program = Program.compile ~registry main in
  Format.printf "spawn tree:      %a@." Spawn_tree.pp main;
  Format.printf "work-span (ND):  %a@." Analysis.pp_report (Analysis.analyze program);
  Format.printf "work-span (NP):  %a@." Analysis.pp_report
    (Analysis.np_of ~registry main);
  (* span is 3 in the ND model (A;C;D chain) vs 4 when the fire is
     serialized (A;B;C;D) *)
  print_string "execution order: ";
  Serial_exec.run program;
  print_newline ();

  (* -------- 2. a real algorithm: triangular solve -------- *)
  let w = Nd_algos.Trs.workload ~n:32 ~base:4 ~seed:7 () in
  let p = Nd_algos.Workload.compile w in
  Format.printf "@.TRS n=32: %a@." Analysis.pp_report (Analysis.analyze p);
  (match Nd_dag.Race.find_races ~limit:1 (Program.dag p) with
  | [] -> print_endline "TRS DAG is determinacy-race free"
  | _ -> print_endline "TRS DAG has races (bug!)");
  w.Nd_algos.Workload.reset ();
  Nd_runtime.Executor.run_dataflow p;
  Format.printf "dataflow execution error vs serial reference: %g@."
    (w.Nd_algos.Workload.check ())
