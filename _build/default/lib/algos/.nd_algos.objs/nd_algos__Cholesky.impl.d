lib/algos/cholesky.ml: Kernels Mat Matmul Nd Nd_util Rules Spawn_tree Strand Trs Workload
