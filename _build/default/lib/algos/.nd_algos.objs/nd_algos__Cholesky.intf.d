lib/algos/cholesky.mli: Mat Nd Workload
