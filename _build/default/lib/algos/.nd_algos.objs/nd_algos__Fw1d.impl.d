lib/algos/fw1d.ml: Float List Mat Nd Nd_util Rules Spawn_tree Strand Workload
