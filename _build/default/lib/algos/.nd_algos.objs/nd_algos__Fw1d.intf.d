lib/algos/fw1d.mli: Workload
