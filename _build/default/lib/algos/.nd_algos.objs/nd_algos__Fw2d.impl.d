lib/algos/fw2d.ml: Kernels Mat Nd Nd_util Rules Spawn_tree Strand Workload
