lib/algos/fw2d.mli: Mat Nd Workload
