lib/algos/gotoh.ml: Float List Mat Nd Nd_util Rules Spawn_tree Strand Workload
