lib/algos/gotoh.mli: Workload
