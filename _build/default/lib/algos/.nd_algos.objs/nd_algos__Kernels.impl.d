lib/algos/kernels.ml: Float Mat Nd_util
