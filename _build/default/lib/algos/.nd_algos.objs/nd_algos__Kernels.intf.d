lib/algos/kernels.mli: Mat Nd_util
