lib/algos/lcs.mli: Workload
