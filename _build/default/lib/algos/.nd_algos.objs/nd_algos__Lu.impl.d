lib/algos/lu.ml: Float Kernels List Mat Matmul Nd Nd_util Rules Spawn_tree Strand Trs Workload
