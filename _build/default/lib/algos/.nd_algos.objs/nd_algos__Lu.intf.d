lib/algos/lu.mli: Mat Nd Workload
