lib/algos/mat.ml: Array Float Format List Nd_util
