lib/algos/mat.mli: Format Nd_util
