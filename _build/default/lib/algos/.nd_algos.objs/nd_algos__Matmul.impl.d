lib/algos/matmul.ml: Kernels List Mat Nd Nd_util Rules Spawn_tree Strand Workload
