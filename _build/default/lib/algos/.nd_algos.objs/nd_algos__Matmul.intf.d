lib/algos/matmul.mli: Mat Nd Workload
