lib/algos/rules.ml: List Nd
