lib/algos/rules.mli: Nd
