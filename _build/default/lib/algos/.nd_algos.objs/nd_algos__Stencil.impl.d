lib/algos/stencil.ml: Kernels Mat Nd Nd_util Rules Spawn_tree Strand Workload
