lib/algos/stencil.mli: Workload
