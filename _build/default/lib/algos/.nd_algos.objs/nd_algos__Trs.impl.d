lib/algos/trs.ml: Kernels Mat Matmul Nd Nd_util Rules Spawn_tree Strand Workload
