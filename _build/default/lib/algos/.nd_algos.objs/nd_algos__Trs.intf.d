lib/algos/trs.mli: Mat Nd Workload
