lib/algos/workload.ml: Nd
