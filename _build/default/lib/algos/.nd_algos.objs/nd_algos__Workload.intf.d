lib/algos/workload.mli: Nd
