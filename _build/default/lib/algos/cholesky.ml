open Nd

let cho_leaf a =
  (* ~ n^3/3 multiply-adds; keep n^3 as the unit-consistent count *)
  let work = a.Mat.rows * a.Mat.rows * a.Mat.rows in
  Spawn_tree.leaf
    (Strand.make ~label:"cho" ~work ~reads:(Mat.region a)
       ~writes:(Mat.region a)
       ~action:(fun () -> Kernels.cholesky a)
       ())

let cho_tree ~base a =
  if a.Mat.rows <> a.Mat.cols then invalid_arg "Cholesky.cho_tree: not square";
  Workload.validate_shape ~n:a.Mat.rows ~base;
  let rec go a =
    if a.Mat.rows <= base then cho_leaf a
    else
      let a00 = Mat.quad a 0 0 and a10 = Mat.quad a 1 0 and a11 = Mat.quad a 1 1 in
      (* L10 <- A10 * L00^-T; then A11 -= L10 * L10^T; then factorize A11 *)
      let panel = Trs.trsr_tree ~base a00 a10 in
      let syrk = Matmul.mm_nt_tree ~variant:Matmul.Safe ~sign:(-1.) ~base a11 a10 a10 in
      Spawn_tree.fire ~rule:"CTMC"
        (Spawn_tree.fire ~rule:"CT" (go a00) panel)
        (Spawn_tree.fire ~rule:"MC" syrk (go a11))
  in
  go a

let workload ~n ~base ~seed () =
  Workload.validate_shape ~n ~base;
  let space = Mat.create_space () in
  let a = Mat.alloc space ~rows:n ~cols:n in
  let reference = Mat.alloc (Mat.create_space ()) ~rows:n ~cols:n in
  let reset () =
    let rng = Nd_util.Prng.create seed in
    Kernels.fill_spd a rng;
    Mat.copy_contents ~src:a ~dst:reference;
    Kernels.cholesky reference
  in
  {
    Workload.name = "cholesky";
    n;
    base;
    tree = cho_tree ~base a;
    registry = Rules.registry;
    reset;
    check = (fun () -> Mat.max_abs_diff_lower a reference);
  }
