(** Cholesky factorization in the ND model (Section 3, Eq. 11).

    [CHO(A)] overwrites the lower triangle of the SPD matrix [A] with [L]
    such that [A = L L^T] (the strict upper triangle is left untouched).
    The recursion is

    [(CHO(A00) ⇝CT  L10 ← TRSR(L00, A10))
       ⇝CTMC (SYRK(L10, A11) ⇝MC CHO(A11))]

    where TRSR is the right solve [L10 = A10 L00^-T] and SYRK the
    symmetric update [A11 -= L10 L10^T] built on the transposed matmul
    tree (fire type "MM"/"TM2"). *)

(** [cho_tree ~base a] — spawn tree factorizing [a] in place. *)
val cho_tree : base:int -> Mat.t -> Nd.Spawn_tree.t

(** [workload ~n ~base ~seed ()] — factorize a random SPD matrix; [check]
    compares the lower triangle against the serial kernel. *)
val workload : n:int -> base:int -> seed:int -> unit -> Workload.t
