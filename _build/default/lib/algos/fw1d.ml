module Is = Nd_util.Interval_set
open Nd

(* Deterministic per-cell relaxation weight, so that the concrete update
   d(t,i) = min(d(t-1,i), d(t-1,t-1) + w(t,i)) is reproducible and
   order-insensitive. *)
let weight t i =
  let h = (t * 0x9E3779B1) lxor (i * 0x85EBCA77) in
  float_of_int (h land 0xFF) /. 16.

let row_region x t i0 i1 =
  if t < 0 || i1 <= i0 then Is.empty
  else Is.interval (Mat.addr x t i0) (Mat.addr x t i0 + (i1 - i0))

let block_region x t0 t1 i0 i1 =
  Is.of_intervals
    (List.init (t1 - t0) (fun k ->
         let a = Mat.addr x (t0 + k) i0 in
         (a, a + (i1 - i0))))

(* diagonal cells (t-1, t-1) needed by rows t0..t1 *)
let diag_region x t0 t1 =
  Is.of_intervals
    (List.concat_map
       (fun k ->
         let t = t0 + k - 1 in
         if t < 0 then [] else [ (Mat.addr x t t, Mat.addr x t t + 1) ])
       (List.init (t1 - t0) (fun k -> k + 1)))

let fw_leaf x ~kind t0 t1 i0 i1 =
  let reads =
    List.fold_left Is.union
      (block_region x t0 t1 i0 i1)
      [ row_region x (t0 - 1) i0 i1; diag_region x t0 t1 ]
  in
  let action () =
    for t = max 1 t0 to t1 - 1 do
      let d = Mat.get x (t - 1) (t - 1) in
      for i = i0 to i1 - 1 do
        let v = Float.min (Mat.get x (t - 1) i) (d +. weight t i) in
        Mat.set x t i v
      done
    done
  in
  let rows = t1 - max 1 t0 in
  Spawn_tree.leaf
    (Strand.make ~label:kind
       ~work:(max 1 (rows * (i1 - i0)))
       ~reads
       ~writes:(block_region x t0 t1 i0 i1)
       ~action ())

(* Eq. 14: task A on blocks containing their diagonal, task B elsewhere. *)
let fw_tree ?(abab_rule = "ABAB") ~base x =
  let rec a_tree lo hi =
    if hi - lo <= base then fw_leaf x ~kind:"fwA" lo hi lo hi
    else
      let mid = (lo + hi) / 2 in
      Spawn_tree.fire ~rule:abab_rule
        (Spawn_tree.fire ~rule:"AB" (a_tree lo mid) (b_tree (lo, mid) (mid, hi)))
        (Spawn_tree.fire ~rule:"AB" (a_tree mid hi) (b_tree (mid, hi) (lo, mid)))
  and b_tree (t0, t1) (i0, i1) =
    if t1 - t0 <= base then fw_leaf x ~kind:"fwB" t0 t1 i0 i1
    else
      let tm = (t0 + t1) / 2 and im = (i0 + i1) / 2 in
      Spawn_tree.fire ~rule:"BBBB"
        (Spawn_tree.par [ b_tree (t0, tm) (i0, im); b_tree (t0, tm) (im, i1) ])
        (Spawn_tree.par [ b_tree (tm, t1) (i0, im); b_tree (tm, t1) (im, i1) ])
  in
  a_tree 0 x.Mat.rows

let workload ?(variant = `Corrected) ~n ~base ~seed () =
  let abab_rule =
    match variant with `Corrected -> "ABAB" | `Literal -> "ABAB_literal"
  in
  Workload.validate_shape ~n ~base;
  let space = Mat.create_space () in
  let x = Mat.alloc space ~rows:n ~cols:n in
  let reference = Mat.alloc (Mat.create_space ()) ~rows:n ~cols:n in
  let reset () =
    let rng = Nd_util.Prng.create seed in
    Mat.fill x (fun _ _ -> 0.);
    for i = 0 to n - 1 do
      Mat.set x 0 i (Nd_util.Prng.float rng *. 8.)
    done;
    Mat.fill reference (fun _ _ -> 0.);
    for i = 0 to n - 1 do
      Mat.set reference 0 i (Mat.get x 0 i)
    done;
    for t = 1 to n - 1 do
      let d = Mat.get reference (t - 1) (t - 1) in
      for i = 0 to n - 1 do
        Mat.set reference t i
          (Float.min (Mat.get reference (t - 1) i) (d +. weight t i))
      done
    done
  in
  {
    Workload.name = "fw1d";
    n;
    base;
    tree = fw_tree ~abab_rule ~base x;
    registry = Rules.registry;
    reset;
    check = (fun () -> Mat.max_abs_diff x reference);
  }
