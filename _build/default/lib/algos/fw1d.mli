(** 1-dimensional Floyd–Warshall (Section 3, Eq. 13–14 and Figure 10) —
    the synthetic dynamic-programming benchmark of Tang et al. whose
    dependency pattern mirrors APSP: cell (t, i) depends on the cell above
    it and on the previous timestep's diagonal cell (t-1, t-1).

    The divide-and-conquer uses two task types: [A] on blocks containing
    their own diagonal cells, [B] on blocks whose diagonals live in a
    sibling block ([Y]), composed with the "⇝AB"/"⇝ABAB"/"⇝BA"/"⇝BBBB"/
    "⇝BB" fire rules of Eq. 14. *)

(** [workload ~n ~base ~seed ()] — an n x n table (row 0 given); the
    concrete update is the min-plus relaxation
    [d(t,i) = min(d(t-1,i), d(t-1,t-1) + w(t,i))] with deterministic
    pseudo-random weights (exact check: min is order-insensitive). *)
val workload :
  ?variant:[ `Corrected | `Literal ] -> n:int -> base:int -> seed:int ->
  unit -> Workload.t
