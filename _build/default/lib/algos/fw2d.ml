module Is = Nd_util.Interval_set
open Nd

let leaf label ~work ~reads ~writes action =
  Spawn_tree.leaf (Strand.make ~label ~work ~reads ~writes ~action ())

let fwa_leaf x =
  let n = x.Mat.rows in
  leaf "fwa" ~work:(n * n * n) ~reads:(Mat.region x) ~writes:(Mat.region x)
    (fun () -> Kernels.floyd_warshall x)

let fwb_leaf x u =
  leaf "fwb"
    ~work:(x.Mat.rows * x.Mat.cols * u.Mat.rows)
    ~reads:(Is.union (Mat.region x) (Mat.region u))
    ~writes:(Mat.region x)
    (fun () -> Kernels.fwb_block x u)

let fwc_leaf x u =
  leaf "fwc"
    ~work:(x.Mat.rows * x.Mat.cols * u.Mat.rows)
    ~reads:(Is.union (Mat.region x) (Mat.region u))
    ~writes:(Mat.region x)
    (fun () -> Kernels.fwc_block x u)

let fwd_leaf x u v =
  leaf "fwd"
    ~work:(x.Mat.rows * x.Mat.cols * u.Mat.cols)
    ~reads:
      (Is.union (Mat.region x) (Is.union (Mat.region u) (Mat.region v)))
    ~writes:(Mat.region x)
    (fun () -> Kernels.min_plus_acc x u v)

(* D(X | U, V): X <- min(X, U (x) V).  Same shape as the 2-way matmul:
   inner halves composed with the (safe) "MM" fire. *)
let rec d_tree ~base x u v =
  if x.Mat.rows <= base then fwd_leaf x u v
  else
    let xq i j = Mat.quad x i j and uq i j = Mat.quad u i j and vq i j = Mat.quad v i j in
    let half k =
      Spawn_tree.par
        [
          Spawn_tree.par
            [ d_tree ~base (xq 0 0) (uq 0 k) (vq k 0); d_tree ~base (xq 0 1) (uq 0 k) (vq k 1) ];
          Spawn_tree.par
            [ d_tree ~base (xq 1 0) (uq 1 k) (vq k 0); d_tree ~base (xq 1 1) (uq 1 k) (vq k 1) ];
        ]
    in
    Spawn_tree.fire ~rule:"MM" (half 0) (half 1)

(* B(X | U): column panel, U the (final) diagonal block sharing X's rows.
   Left-TRS shape plus the back-update through the second-half k's. *)
let rec b_tree ~base x u =
  if x.Mat.rows <= base then fwb_leaf x u
  else
    let x00 = Mat.quad x 0 0
    and x01 = Mat.quad x 0 1
    and x10 = Mat.quad x 1 0
    and x11 = Mat.quad x 1 1 in
    let u00 = Mat.quad u 0 0
    and u01 = Mat.quad u 0 1
    and u10 = Mat.quad u 1 0
    and u11 = Mat.quad u 1 1 in
    let forward =
      Spawn_tree.fire ~rule:"FWB2T"
        (Spawn_tree.par
           [
             Spawn_tree.fire ~rule:"BD2" (b_tree ~base x00 u00) (d_tree ~base x10 u10 x00);
             Spawn_tree.fire ~rule:"BD2" (b_tree ~base x01 u00) (d_tree ~base x11 u10 x01);
           ])
        (Spawn_tree.par [ b_tree ~base x10 u11; b_tree ~base x11 u11 ])
    in
    Spawn_tree.fire ~rule:"FWB_BACK" forward
      (Spawn_tree.par [ d_tree ~base x00 u01 x10; d_tree ~base x01 u01 x11 ])

(* C(X | U): row panel; right-TRS shape plus the back-update. *)
let rec c_tree ~base x u =
  if x.Mat.rows <= base then fwc_leaf x u
  else
    let x00 = Mat.quad x 0 0
    and x01 = Mat.quad x 0 1
    and x10 = Mat.quad x 1 0
    and x11 = Mat.quad x 1 1 in
    let u00 = Mat.quad u 0 0
    and u01 = Mat.quad u 0 1
    and u10 = Mat.quad u 1 0
    and u11 = Mat.quad u 1 1 in
    let forward =
      Spawn_tree.fire ~rule:"FWC2T"
        (Spawn_tree.par
           [
             Spawn_tree.fire ~rule:"CD1" (c_tree ~base x00 u00) (d_tree ~base x01 x00 u01);
             Spawn_tree.fire ~rule:"CD1" (c_tree ~base x10 u00) (d_tree ~base x11 x10 u01);
           ])
        (Spawn_tree.par [ c_tree ~base x01 u11; c_tree ~base x11 u11 ])
    in
    Spawn_tree.fire ~rule:"FWC_BACK" forward
      (Spawn_tree.par [ d_tree ~base x00 x01 u10; d_tree ~base x10 x11 u10 ])

(* A(X): the six-stage Gaussian-elimination-paradigm diagonal recursion;
   the stage composition is serial (see the interface note). *)
let rec a_tree ~base x =
  if x.Mat.rows <= base then fwa_leaf x
  else
    let x00 = Mat.quad x 0 0
    and x01 = Mat.quad x 0 1
    and x10 = Mat.quad x 1 0
    and x11 = Mat.quad x 1 1 in
    Spawn_tree.seq
      [
        a_tree ~base x00;
        Spawn_tree.par [ b_tree ~base x01 x00; c_tree ~base x10 x00 ];
        d_tree ~base x11 x10 x01;
        a_tree ~base x11;
        Spawn_tree.par [ b_tree ~base x10 x11; c_tree ~base x01 x11 ];
        d_tree ~base x00 x01 x10;
      ]

let apsp_tree ~base x =
  if x.Mat.rows <> x.Mat.cols then invalid_arg "Fw2d.apsp_tree: not square";
  Workload.validate_shape ~n:x.Mat.rows ~base;
  a_tree ~base x

let workload ~n ~base ~seed () =
  Workload.validate_shape ~n ~base;
  let space = Mat.create_space () in
  let x = Mat.alloc space ~rows:n ~cols:n in
  let reference = Mat.alloc (Mat.create_space ()) ~rows:n ~cols:n in
  let reset () =
    let rng = Nd_util.Prng.create seed in
    Kernels.fill_distances x rng;
    Mat.copy_contents ~src:x ~dst:reference;
    Kernels.floyd_warshall reference
  in
  {
    Workload.name = "apsp";
    n;
    base;
    tree = apsp_tree ~base x;
    registry = Rules.registry;
    reset;
    check = (fun () -> Mat.max_abs_diff x reference);
  }
