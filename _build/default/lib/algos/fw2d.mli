(** 2-dimensional Floyd–Warshall (all-pairs shortest paths) via the
    cache-oblivious Gaussian-elimination paradigm, in the ND model.

    The recursion uses the four classic task types: [A] (diagonal block,
    self-dependent), [B] (column panel: X <- min(X, U (x) X)), [C] (row
    panel: X <- min(X, X (x) U)) and [D] (general update
    X <- min(X, U (x) V)), all over the min-plus semiring.

    The key structural observation (which the paper leaves as "a
    straightforward extension"): [B] has exactly the spawn-tree shape of
    the left triangular solve, [C] of the right solve, and [D] of the
    2-way matmul — so the "TM"/"MT"/"2TM2T", "TM1"/"MTR"/"2TMR2T" and
    "MM" fire types apply verbatim and give the panels their full
    wavefront parallelism.  The six-stage composition inside [A] is kept
    serial (the paper gives no rules for it), so the measured ND span is
    Θ(n log n) against Θ(n log² n) for NP — see EXPERIMENTS.md. *)

(** [apsp_tree ~base x] — spawn tree running APSP in place on the
    distance matrix [x]. *)
val apsp_tree : base:int -> Mat.t -> Nd.Spawn_tree.t

(** [workload ~n ~base ~seed ()] — random positive distance matrix;
    [check] compares against the classic O(n^3) Floyd–Warshall (exact:
    min-plus is order-insensitive). *)
val workload : n:int -> base:int -> seed:int -> unit -> Workload.t
