module Is = Nd_util.Interval_set
open Nd

(* Scoring scheme (classic DNA defaults): match +1, mismatch -1, affine
   gap cost open + k*extend. *)
let match_score = 1.

let mismatch_score = -1.

let gap_open = 2.5

let gap_extend = 0.5

let neg_inf = -1e30

let row_region x i j0 j1 =
  if j1 <= j0 then Is.empty
  else Is.interval (Mat.addr x i j0) (Mat.addr x i j0 + (j1 - j0))

let col_region x i0 i1 j =
  if i1 <= i0 then Is.empty
  else
    Is.of_intervals
      (List.init (i1 - i0) (fun k ->
           let a = Mat.addr x (i0 + k) j in
           (a, a + 1)))

let block_region x i0 i1 j0 j1 =
  Is.of_intervals
    (List.init (i1 - i0) (fun k ->
         let a = Mat.addr x (i0 + k) j0 in
         (a, a + (j1 - j0))))

(* one DP block over the three planes *)
let cell_update ~m ~e ~f ~s ~t i j =
  let sub =
    if Mat.get s 0 (i - 1) = Mat.get t 0 (j - 1) then match_score
    else mismatch_score
  in
  let best3 a b c = Float.max a (Float.max b c) in
  let ev =
    Float.max (Mat.get m i (j - 1) -. gap_open) (Mat.get e i (j - 1) -. gap_extend)
  in
  let fv =
    Float.max (Mat.get m (i - 1) j -. gap_open) (Mat.get f (i - 1) j -. gap_extend)
  in
  let mv =
    sub
    +. best3
         (Mat.get m (i - 1) (j - 1))
         (Mat.get e (i - 1) (j - 1))
         (Mat.get f (i - 1) (j - 1))
  in
  Mat.set e i j ev;
  Mat.set f i j fv;
  Mat.set m i j mv

let gotoh_leaf ~m ~e ~f ~s ~t i0 i1 j0 j1 =
  let plane_reads x =
    List.fold_left Is.union Is.empty
      [
        block_region x i0 i1 j0 j1;
        row_region x (i0 - 1) (j0 - 1) j1;
        col_region x (i0 - 1) i1 (j0 - 1);
      ]
  in
  let reads =
    List.fold_left Is.union Is.empty
      [
        plane_reads m;
        plane_reads e;
        plane_reads f;
        row_region s 0 (i0 - 1) (i1 - 1);
        row_region t 0 (j0 - 1) (j1 - 1);
      ]
  in
  let writes =
    List.fold_left Is.union Is.empty
      [
        block_region m i0 i1 j0 j1;
        block_region e i0 i1 j0 j1;
        block_region f i0 i1 j0 j1;
      ]
  in
  let action () =
    for i = i0 to i1 - 1 do
      for j = j0 to j1 - 1 do
        cell_update ~m ~e ~f ~s ~t i j
      done
    done
  in
  Spawn_tree.leaf
    (Strand.make ~label:"gotoh"
       ~work:(3 * (i1 - i0) * (j1 - j0))
       ~reads ~writes ~action ())

(* identical quadrant composition to LCS: the three planes share the
   (i-1,j-1)/(i,j-1)/(i-1,j) dependency pattern *)
let gotoh_tree ~base ~m ~e ~f ~s ~t n =
  let rec go i0 j0 sz =
    if sz <= base then gotoh_leaf ~m ~e ~f ~s ~t i0 (i0 + sz) j0 (j0 + sz)
    else
      let h = sz / 2 in
      Spawn_tree.fire ~rule:"VH"
        (Spawn_tree.fire ~rule:"HV" (go i0 j0 h)
           (Spawn_tree.par [ go i0 (j0 + h) h; go (i0 + h) j0 h ]))
        (go (i0 + h) (j0 + h) h)
  in
  go 1 1 n

let init_boundaries ~m ~e ~f n =
  Mat.fill m (fun _ _ -> 0.);
  Mat.fill e (fun _ _ -> 0.);
  Mat.fill f (fun _ _ -> 0.);
  Mat.set m 0 0 0.;
  for j = 1 to n do
    Mat.set m 0 j neg_inf;
    Mat.set e 0 j (-.(gap_open +. (gap_extend *. float_of_int (j - 1))));
    Mat.set f 0 j neg_inf
  done;
  for i = 1 to n do
    Mat.set m i 0 neg_inf;
    Mat.set f i 0 (-.(gap_open +. (gap_extend *. float_of_int (i - 1))));
    Mat.set e i 0 neg_inf
  done

let workload ~n ~base ~seed () =
  Workload.validate_shape ~n ~base;
  let space = Mat.create_space () in
  let m = Mat.alloc space ~rows:(n + 1) ~cols:(n + 1) in
  let e = Mat.alloc space ~rows:(n + 1) ~cols:(n + 1) in
  let f = Mat.alloc space ~rows:(n + 1) ~cols:(n + 1) in
  let s = Mat.alloc space ~rows:1 ~cols:n in
  let t = Mat.alloc space ~rows:1 ~cols:n in
  let rspace = Mat.create_space () in
  let mr = Mat.alloc rspace ~rows:(n + 1) ~cols:(n + 1) in
  let er = Mat.alloc rspace ~rows:(n + 1) ~cols:(n + 1) in
  let fr = Mat.alloc rspace ~rows:(n + 1) ~cols:(n + 1) in
  let reset () =
    let rng = Nd_util.Prng.create seed in
    Mat.fill s (fun _ _ -> float_of_int (Nd_util.Prng.int rng 4));
    Mat.fill t (fun _ _ -> float_of_int (Nd_util.Prng.int rng 4));
    init_boundaries ~m ~e ~f n;
    init_boundaries ~m:mr ~e:er ~f:fr n;
    for i = 1 to n do
      for j = 1 to n do
        cell_update ~m:mr ~e:er ~f:fr ~s ~t i j
      done
    done
  in
  {
    Workload.name = "gotoh";
    n;
    base;
    tree = gotoh_tree ~base ~m ~e ~f ~s ~t n;
    registry = Rules.registry;
    reset;
    check =
      (fun () ->
        Float.max (Mat.max_abs_diff m mr)
          (Float.max (Mat.max_abs_diff e er) (Mat.max_abs_diff f fr)));
  }
