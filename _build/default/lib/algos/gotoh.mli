(** Pairwise sequence alignment with affine gap cost (Gotoh, 1982) in the
    ND model — the paper's footnote 3: "a similar recurrence applies to
    the pairwise sequence alignment with affine gap cost".

    Three DP planes (match [M], horizontal gap [E], vertical gap [F])
    share the LCS dependency pattern — cell (i,j) needs (i-1,j-1),
    (i,j-1) and (i-1,j) — so the spawn tree is the LCS quadrant
    composition and the fire-rule types "HV"/"VH"/"H"/"V" apply verbatim,
    demonstrating the reusability of the rule system across algorithms
    with the same partial-dependence pattern. *)

(** [workload ~n ~base ~seed ()] — global alignment of two random
    4-letter sequences of length [n] with match +1, mismatch -1, gap
    open 2.5, gap extend 0.5; [check] compares all three DP planes with
    the serial reference (exact: each cell is written once). *)
val workload : n:int -> base:int -> seed:int -> unit -> Workload.t
