module Prng = Nd_util.Prng

let mm_acc ~sign c a b =
  if a.Mat.cols <> b.Mat.rows || c.Mat.rows <> a.Mat.rows || c.Mat.cols <> b.Mat.cols
  then invalid_arg "Kernels.mm_acc: shape mismatch";
  for i = 0 to c.Mat.rows - 1 do
    for k = 0 to a.Mat.cols - 1 do
      let aik = sign *. Mat.get a i k in
      for j = 0 to c.Mat.cols - 1 do
        Mat.set c i j (Mat.get c i j +. (aik *. Mat.get b k j))
      done
    done
  done

let mm_acc_nt ~sign c a b =
  if a.Mat.cols <> b.Mat.cols || c.Mat.rows <> a.Mat.rows || c.Mat.cols <> b.Mat.rows
  then invalid_arg "Kernels.mm_acc_nt: shape mismatch";
  for i = 0 to c.Mat.rows - 1 do
    for j = 0 to c.Mat.cols - 1 do
      let acc = ref 0. in
      for k = 0 to a.Mat.cols - 1 do
        acc := !acc +. (Mat.get a i k *. Mat.get b j k)
      done;
      Mat.set c i j (Mat.get c i j +. (sign *. !acc))
    done
  done

let trs_left t b =
  if t.Mat.rows <> t.Mat.cols || t.Mat.rows <> b.Mat.rows then
    invalid_arg "Kernels.trs_left: shape mismatch";
  let n = t.Mat.rows in
  for j = 0 to b.Mat.cols - 1 do
    for i = 0 to n - 1 do
      let acc = ref (Mat.get b i j) in
      for k = 0 to i - 1 do
        acc := !acc -. (Mat.get t i k *. Mat.get b k j)
      done;
      Mat.set b i j (!acc /. Mat.get t i i)
    done
  done

let trs_right t b =
  if t.Mat.rows <> t.Mat.cols || b.Mat.cols <> t.Mat.rows then
    invalid_arg "Kernels.trs_right: shape mismatch";
  let n = t.Mat.rows in
  for i = 0 to b.Mat.rows - 1 do
    for j = 0 to n - 1 do
      let acc = ref (Mat.get b i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Mat.get b i k *. Mat.get t j k)
      done;
      Mat.set b i j (!acc /. Mat.get t j j)
    done
  done

let cholesky a =
  if a.Mat.rows <> a.Mat.cols then invalid_arg "Kernels.cholesky: not square";
  let n = a.Mat.rows in
  for j = 0 to n - 1 do
    let d = ref (Mat.get a j j) in
    for k = 0 to j - 1 do
      d := !d -. (Mat.get a j k *. Mat.get a j k)
    done;
    if !d <= 0. then failwith "Kernels.cholesky: non-positive pivot";
    let ljj = sqrt !d in
    Mat.set a j j ljj;
    for i = j + 1 to n - 1 do
      let acc = ref (Mat.get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Mat.get a i k *. Mat.get a j k)
      done;
      Mat.set a i j (!acc /. ljj)
    done
  done

let min_plus_acc c a b =
  if a.Mat.cols <> b.Mat.rows || c.Mat.rows <> a.Mat.rows || c.Mat.cols <> b.Mat.cols
  then invalid_arg "Kernels.min_plus_acc: shape mismatch";
  for i = 0 to c.Mat.rows - 1 do
    for k = 0 to a.Mat.cols - 1 do
      let aik = Mat.get a i k in
      for j = 0 to c.Mat.cols - 1 do
        let v = aik +. Mat.get b k j in
        if v < Mat.get c i j then Mat.set c i j v
      done
    done
  done

let floyd_warshall a =
  if a.Mat.rows <> a.Mat.cols then
    invalid_arg "Kernels.floyd_warshall: not square";
  let n = a.Mat.rows in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let aik = Mat.get a i k in
      for j = 0 to n - 1 do
        let v = aik +. Mat.get a k j in
        if v < Mat.get a i j then Mat.set a i j v
      done
    done
  done

let fill_uniform m rng ~lo ~hi =
  Mat.fill m (fun _ _ -> lo +. (Prng.float rng *. (hi -. lo)))

let fill_lower_triangular m rng =
  Mat.fill m (fun i j ->
      if i = j then 2. +. Prng.float rng
      else if i > j then 1. +. Prng.float rng
      else 0.)

let fill_spd m rng =
  let n = m.Mat.rows in
  Mat.fill m (fun _ _ -> Prng.float rng);
  (* symmetrize and add a dominant diagonal *)
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      let v = (Mat.get m i j +. Mat.get m j i) /. 2. in
      Mat.set m i j v;
      Mat.set m j i v
    done
  done;
  for i = 0 to n - 1 do
    Mat.set m i i (Mat.get m i i +. float_of_int n)
  done

let fill_distances m rng =
  Mat.fill m (fun i j -> if i = j then 0. else 1. +. (9. *. Prng.float rng))

let trs_left_unit t b =
  if t.Mat.rows <> t.Mat.cols || t.Mat.rows <> b.Mat.rows then
    invalid_arg "Kernels.trs_left_unit: shape mismatch";
  let n = t.Mat.rows in
  for j = 0 to b.Mat.cols - 1 do
    for i = 0 to n - 1 do
      let acc = ref (Mat.get b i j) in
      for k = 0 to i - 1 do
        acc := !acc -. (Mat.get t i k *. Mat.get b k j)
      done;
      Mat.set b i j !acc
    done
  done

let swap_rows m i j =
  if i <> j then
    for c = 0 to m.Mat.cols - 1 do
      let tmp = Mat.get m i c in
      Mat.set m i c (Mat.get m j c);
      Mat.set m j c tmp
    done

let lu_panel a ~piv ~c0 ~r0 =
  let rows = a.Mat.rows and m = a.Mat.cols in
  for j = 0 to m - 1 do
    (* pivot search over rows >= j of the panel view *)
    let best = ref j and best_v = ref (Float.abs (Mat.get a j j)) in
    for i = j + 1 to rows - 1 do
      let v = Float.abs (Mat.get a i j) in
      if v > !best_v then begin
        best := i;
        best_v := v
      end
    done;
    Mat.set piv 0 (c0 + j) (float_of_int (r0 + !best));
    swap_rows a j !best;
    let d = Mat.get a j j in
    for i = j + 1 to rows - 1 do
      let lij = Mat.get a i j /. d in
      Mat.set a i j lij;
      for k = j + 1 to m - 1 do
        Mat.set a i k (Mat.get a i k -. (lij *. Mat.get a j k))
      done
    done
  done

let laswp b ~piv ~k0 ~k1 ~g ~reverse =
  let apply j =
    let p = int_of_float (Mat.get piv 0 j) in
    swap_rows b (j - g) (p - g)
  in
  if reverse then
    for j = k1 - 1 downto k0 do
      apply j
    done
  else
    for j = k0 to k1 - 1 do
      apply j
    done

let lu_inplace a ~piv =
  if a.Mat.rows <> a.Mat.cols then invalid_arg "Kernels.lu_inplace: not square";
  lu_panel a ~piv ~c0:0 ~r0:0

let fwb_block x u =
  if u.Mat.rows <> u.Mat.cols || u.Mat.rows <> x.Mat.rows then
    invalid_arg "Kernels.fwb_block: shape mismatch";
  for k = 0 to u.Mat.rows - 1 do
    for i = 0 to x.Mat.rows - 1 do
      let uik = Mat.get u i k in
      for j = 0 to x.Mat.cols - 1 do
        let v = uik +. Mat.get x k j in
        if v < Mat.get x i j then Mat.set x i j v
      done
    done
  done

let fwc_block x u =
  if u.Mat.rows <> u.Mat.cols || u.Mat.rows <> x.Mat.cols then
    invalid_arg "Kernels.fwc_block: shape mismatch";
  for k = 0 to u.Mat.rows - 1 do
    for i = 0 to x.Mat.rows - 1 do
      let xik = Mat.get x i k in
      for j = 0 to x.Mat.cols - 1 do
        let v = xik +. Mat.get u k j in
        if v < Mat.get x i j then Mat.set x i j v
      done
    done
  done

let trs_left_trans t b =
  if t.Mat.rows <> t.Mat.cols || t.Mat.rows <> b.Mat.rows then
    invalid_arg "Kernels.trs_left_trans: shape mismatch";
  let n = t.Mat.rows in
  for j = 0 to b.Mat.cols - 1 do
    for i = n - 1 downto 0 do
      let acc = ref (Mat.get b i j) in
      for k = i + 1 to n - 1 do
        acc := !acc -. (Mat.get t k i *. Mat.get b k j)
      done;
      Mat.set b i j (!acc /. Mat.get t i i)
    done
  done
