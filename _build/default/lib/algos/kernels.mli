(** Serial dense kernels on {!Mat.t} views.

    These are both the base-case strand bodies of the divide-and-conquer
    spawn trees and the reference implementations the tests validate
    against. *)

(** [mm_acc ~sign c a b] does [c += sign * a*b]; [sign] is [1.] or [-1.].
    @raise Invalid_argument on shape mismatch. *)
val mm_acc : sign:float -> Mat.t -> Mat.t -> Mat.t -> unit

(** [mm_acc_nt ~sign c a b] does [c += sign * a * b^T]. *)
val mm_acc_nt : sign:float -> Mat.t -> Mat.t -> Mat.t -> unit

(** [trs_left t b] solves [t * x = b] in place in [b] ([t] lower
    triangular with nonzero diagonal). *)
val trs_left : Mat.t -> Mat.t -> unit

(** [trs_right t b] solves [x * t^T = b] in place in [b] ([t] lower
    triangular); this is the transposed solve used by Cholesky's
    off-diagonal panel. *)
val trs_right : Mat.t -> Mat.t -> unit

(** [cholesky a] factorizes the symmetric positive-definite [a] in place:
    on return the lower triangle holds L with [a = l * l^T].  The strict
    upper triangle is not touched.
    @raise Failure on a non-positive pivot. *)
val cholesky : Mat.t -> unit

(** [min_plus_acc c a b] does [c(i,j) = min(c(i,j), min_k a(i,k)+b(k,j))] —
    the tropical-semiring product step of Floyd–Warshall. *)
val min_plus_acc : Mat.t -> Mat.t -> Mat.t -> unit

(** [floyd_warshall a] runs the classic O(n^3) APSP relaxation in place on
    the distance matrix [a] (reference implementation). *)
val floyd_warshall : Mat.t -> unit

(** {2 Deterministic test-data generators} *)

(** [fill_uniform m rng ~lo ~hi] fills with uniform values in [\[lo, hi)]. *)
val fill_uniform : Mat.t -> Nd_util.Prng.t -> lo:float -> hi:float -> unit

(** [fill_lower_triangular m rng] fills the lower triangle with values in
    \[1, 2) and the diagonal with values in \[2, 3) (well-conditioned for
    substitution); zeroes above. *)
val fill_lower_triangular : Mat.t -> Nd_util.Prng.t -> unit

(** [fill_spd m rng] fills [m] with a symmetric positive-definite matrix
    (random symmetric plus dominant diagonal). *)
val fill_spd : Mat.t -> Nd_util.Prng.t -> unit

(** [fill_distances m rng] fills a distance matrix: zero diagonal, random
    positive edge weights elsewhere. *)
val fill_distances : Mat.t -> Nd_util.Prng.t -> unit

(** [trs_left_unit t b] solves [t * x = b] in place in [b] where [t] is
    UNIT lower triangular (the strict lower part of a packed LU factor;
    the stored diagonal is ignored and treated as 1). *)
val trs_left_unit : Mat.t -> Mat.t -> unit

(** [lu_panel a ~piv ~c0 ~r0] factorizes the tall panel [a] (a view whose
    top row is global row [r0], holding global columns [c0..c0+m)) in
    place with partial pivoting, recording for each panel column [j] the
    GLOBAL pivot row index in [piv(0, c0 + j)].  Swaps apply to the panel
    columns only. *)
val lu_panel : Mat.t -> piv:Mat.t -> c0:int -> r0:int -> unit

(** [laswp b ~piv ~k0 ~k1 ~g ~reverse] applies (or with [reverse] undoes)
    the row interchanges [piv(0, k0..k1)] to the block [b], whose top row
    is global row [g]: global row [j] swaps with global row [piv(0, j)]. *)
val laswp :
  Mat.t -> piv:Mat.t -> k0:int -> k1:int -> g:int -> reverse:bool -> unit

(** [lu_inplace a ~piv] reference LU with partial pivoting on the square
    matrix [a] (right-looking), recording global pivot rows in
    [piv(0, j)]. *)
val lu_inplace : Mat.t -> piv:Mat.t -> unit

(** [fwb_block x u] — Floyd–Warshall column-panel kernel: for each k in
    order, [x(i,j) <- min(x(i,j), u(i,k) + x(k,j))] (the diagonal block
    [u] shares [x]'s row range). *)
val fwb_block : Mat.t -> Mat.t -> unit

(** [fwc_block x u] — row-panel kernel: for each k in order,
    [x(i,j) <- min(x(i,j), x(i,k) + u(k,j))]. *)
val fwc_block : Mat.t -> Mat.t -> unit

(** [trs_left_trans t b] solves [t^T * x = b] in place in [b] ([t] lower
    triangular, so this is the backward substitution of a Cholesky
    solve). *)
val trs_left_trans : Mat.t -> Mat.t -> unit
