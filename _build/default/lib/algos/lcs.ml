module Is = Nd_util.Interval_set
open Nd

(* The DP table is an (n+1) x (n+1) matrix with row 0 and column 0 fixed
   at zero; the recursion runs over the inner n x n region.  The two
   sequences are 1 x n matrices in the same space so that strand
   footprints cover them. *)

let row_region x i j0 j1 =
  if j1 <= j0 then Is.empty
  else Is.interval (Mat.addr x i j0) (Mat.addr x i j0 + (j1 - j0))

let col_region x i0 i1 j =
  if i1 <= i0 then Is.empty
  else Is.of_intervals (List.init (i1 - i0) (fun k ->
      let a = Mat.addr x (i0 + k) j in
      (a, a + 1)))

let block_region x i0 i1 j0 j1 =
  Is.of_intervals
    (List.init (i1 - i0) (fun k ->
         let a = Mat.addr x (i0 + k) j0 in
         (a, a + (j1 - j0))))

let lcs_leaf x s t i0 i1 j0 j1 =
  let reads =
    List.fold_left Is.union Is.empty
      [
        block_region x i0 i1 j0 j1;
        row_region x (i0 - 1) (j0 - 1) j1;
        col_region x (i0 - 1) i1 (j0 - 1);
        row_region s 0 (i0 - 1) (i1 - 1);
        row_region t 0 (j0 - 1) (j1 - 1);
      ]
  in
  let writes = block_region x i0 i1 j0 j1 in
  let action () =
    for i = i0 to i1 - 1 do
      for j = j0 to j1 - 1 do
        let v =
          if Mat.get s 0 (i - 1) = Mat.get t 0 (j - 1) then
            Mat.get x (i - 1) (j - 1) +. 1.
          else Float.max (Mat.get x i (j - 1)) (Mat.get x (i - 1) j)
        in
        Mat.set x i j v
      done
    done
  in
  Spawn_tree.leaf
    (Strand.make ~label:"lcs" ~work:((i1 - i0) * (j1 - j0)) ~reads ~writes
       ~action ())

let lcs_tree ?(vh_rule = "VH") ~base x s t =
  let rec go i0 j0 m =
    if m <= base then lcs_leaf x s t i0 (i0 + m) j0 (j0 + m)
    else
      let h = m / 2 in
      Spawn_tree.fire ~rule:vh_rule
        (Spawn_tree.fire ~rule:"HV" (go i0 j0 h)
           (Spawn_tree.par [ go i0 (j0 + h) h; go (i0 + h) j0 h ]))
        (go (i0 + h) (j0 + h) h)
  in
  go 1 1 (x.Mat.rows - 1)

let workload ?(variant = `Corrected) ~n ~base ~seed () =
  let vh_rule = match variant with `Corrected -> "VH" | `Literal -> "VH_literal" in
  Workload.validate_shape ~n ~base;
  let space = Mat.create_space () in
  let x = Mat.alloc space ~rows:(n + 1) ~cols:(n + 1) in
  let s = Mat.alloc space ~rows:1 ~cols:n in
  let t = Mat.alloc space ~rows:1 ~cols:n in
  let reference = Mat.alloc (Mat.create_space ()) ~rows:(n + 1) ~cols:(n + 1) in
  let reset () =
    let rng = Nd_util.Prng.create seed in
    Mat.fill s (fun _ _ -> float_of_int (Nd_util.Prng.int rng 4));
    Mat.fill t (fun _ _ -> float_of_int (Nd_util.Prng.int rng 4));
    Mat.fill x (fun _ _ -> 0.);
    Mat.fill reference (fun _ _ -> 0.);
    for i = 1 to n do
      for j = 1 to n do
        let v =
          if Mat.get s 0 (i - 1) = Mat.get t 0 (j - 1) then
            Mat.get reference (i - 1) (j - 1) +. 1.
          else
            Float.max (Mat.get reference i (j - 1)) (Mat.get reference (i - 1) j)
        in
        Mat.set reference i j v
      done
    done
  in
  {
    Workload.name = "lcs";
    n;
    base;
    tree = lcs_tree ~vh_rule ~base x s t;
    registry = Rules.registry;
    reset;
    check = (fun () -> Mat.max_abs_diff x reference);
  }
