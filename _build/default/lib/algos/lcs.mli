(** Longest Common Subsequence in the ND model (Section 3, Eq. 17 and
    Figure 11).

    The DP table quadrants compose as

    [(X00 ⇝HV (X01 ‖ X10)) ⇝VH X11]

    with the recursive boundary-propagation rules "⇝H" (left block fires
    the block to its right) and "⇝V" (top fires bottom).  The ND span is
    O(n); serializing the fires gives the NP spawn tree of Figure 1. *)

(** [workload ?variant ~n ~base ~seed ()] — LCS of two random sequences
    of length [n] over a 4-letter alphabet; [check] compares the full DP
    table with the serial reference (exact: integer-valued).  [`Literal]
    uses the paper's printed "VH" pedigrees, which the race detector
    rejects (see DESIGN.md). *)
val workload :
  ?variant:[ `Corrected | `Literal ] -> n:int -> base:int -> seed:int ->
  unit -> Workload.t
