module Is = Nd_util.Interval_set
open Nd

let piv_region piv k0 k1 =
  if k1 <= k0 then Is.empty
  else Is.interval (Mat.addr piv 0 k0) (Mat.addr piv 0 k0 + (k1 - k0))

let panel_leaf view piv ~c0 ~r0 =
  let m = view.Mat.cols in
  let fp = Is.union (Mat.region view) (piv_region piv c0 (c0 + m)) in
  Spawn_tree.leaf
    (Strand.make ~label:"lupanel"
       ~work:(view.Mat.rows * m * m)
       ~reads:fp ~writes:fp
       ~action:(fun () -> Kernels.lu_panel view ~piv ~c0 ~r0)
       ())

(* Parallel panel factorization: per column, a parallel block-argmax
   reduction, one combine-and-swap strand, then parallel block-row
   eliminations.  This is what the paper's O(m log n) LU span presumes
   (the serial-leaf variant has a Theta(n^2) pivot chain). *)
let parallel_panel view piv ~c0 ~r0 ~chunk ~scratch =
  let rows = view.Mat.rows and m = view.Mat.cols in
  let col_region j i0 i1 =
    Is.of_intervals
      (List.init (i1 - i0) (fun k ->
           let a = Mat.addr view (i0 + k) j in
           (a, a + 1)))
  in
  let blocks_from i0 =
    let rec go lo acc =
      if lo >= rows then List.rev acc
      else
        let hi = min rows (lo + chunk) in
        go hi ((lo, hi) :: acc)
    in
    go i0 []
  in
  let scratch_cell b = Is.interval (Mat.addr scratch 0 (2 * b)) (Mat.addr scratch 0 (2 * b) + 2) in
  let stage j =
    let blocks = blocks_from j in
    let nblocks = List.length blocks in
    let locals =
      List.mapi
        (fun b (lo, hi) ->
          Spawn_tree.leaf
            (Strand.make ~label:"lu.argmax" ~work:(hi - lo)
               ~reads:(col_region j lo hi) ~writes:(scratch_cell b)
               ~action:(fun () ->
                 let best = ref lo and best_v = ref (-1.) in
                 for i = lo to hi - 1 do
                   let v = Float.abs (Mat.get view i j) in
                   if v > !best_v then begin
                     best := i;
                     best_v := v
                   end
                 done;
                 Mat.set scratch 0 (2 * b) !best_v;
                 Mat.set scratch 0 ((2 * b) + 1) (float_of_int !best))
               ()))
        blocks
    in
    let scratch_all =
      Is.interval (Mat.addr scratch 0 0) (Mat.addr scratch 0 0 + (2 * nblocks))
    in
    let combine =
      (* the two swapped rows are data-dependent: footprint is the whole
         panel (conservative; stages are serial anyway) *)
      let fp =
        Is.union (Mat.region view)
          (Is.union scratch_all (piv_region piv (c0 + j) (c0 + j + 1)))
      in
      Spawn_tree.leaf
        (Strand.make ~label:"lu.pivswap"
           ~work:(nblocks + (2 * m))
           ~reads:fp ~writes:fp
           ~action:(fun () ->
             let best = ref j and best_v = ref (-1.) in
             for b = 0 to nblocks - 1 do
               let v = Mat.get scratch 0 (2 * b) in
               if v > !best_v then begin
                 best_v := v;
                 best := int_of_float (Mat.get scratch 0 ((2 * b) + 1))
               end
             done;
             Mat.set piv 0 (c0 + j) (float_of_int (r0 + !best));
             if !best <> j then
               for c = 0 to m - 1 do
                 let tmp = Mat.get view j c in
                 Mat.set view j c (Mat.get view !best c);
                 Mat.set view !best c tmp
               done)
           ())
    in
    let pivot_row = Mat.sub view ~r0:j ~c0:j ~rows:1 ~cols:(m - j) in
    let elims =
      List.filter_map
        (fun (lo, hi) ->
          let lo = max lo (j + 1) in
          if lo >= hi then None
          else
            let blk = Mat.sub view ~r0:lo ~c0:j ~rows:(hi - lo) ~cols:(m - j) in
            Some
              (Spawn_tree.leaf
                 (Strand.make ~label:"lu.elim"
                    ~work:((hi - lo) * (m - j))
                    ~reads:(Is.union (Mat.region blk) (Mat.region pivot_row))
                    ~writes:(Mat.region blk)
                    ~action:(fun () ->
                      let d = Mat.get view j j in
                      for i = lo to hi - 1 do
                        let lij = Mat.get view i j /. d in
                        Mat.set view i j lij;
                        for k = j + 1 to m - 1 do
                          Mat.set view i k
                            (Mat.get view i k -. (lij *. Mat.get view j k))
                        done
                      done)
                    ())))
        blocks
    in
    let parts =
      [ Spawn_tree.par locals; combine ]
      @ (if elims = [] then [] else [ Spawn_tree.par elims ])
    in
    Spawn_tree.seq parts
  in
  Spawn_tree.seq (List.init m stage)

let laswp_leaf block piv ~k0 ~k1 ~g =
  let reads = Is.union (Mat.region block) (piv_region piv k0 k1) in
  Spawn_tree.leaf
    (Strand.make ~label:"laswp"
       ~work:(max 1 ((k1 - k0) * block.Mat.cols))
       ~reads ~writes:(Mat.region block)
       ~action:(fun () -> Kernels.laswp block ~piv ~k0 ~k1 ~g ~reverse:false)
       ())

(* row interchanges act on each column independently: parallelize over
   column chunks *)
let laswp_tree ?(chunk = 8) block piv ~k0 ~k1 ~g =
  let cols = block.Mat.cols in
  if cols <= chunk then laswp_leaf block piv ~k0 ~k1 ~g
  else begin
    let rec strips c acc =
      if c >= cols then List.rev acc
      else
        let w = min chunk (cols - c) in
        strips (c + w)
          (laswp_leaf
             (Mat.sub block ~r0:0 ~c0:c ~rows:block.Mat.rows ~cols:w)
             piv ~k0 ~k1 ~g
          :: acc)
    in
    Spawn_tree.par (strips 0 [])
  end

(* c -= a * b where a is tall (rows a multiple of cols); split rows until
   square, then use the fire-based 2-way matmul *)
let rec tall_mms ~base c a b =
  if c.Mat.rows = c.Mat.cols then
    Matmul.mm_tree ~variant:Matmul.Safe ~sign:(-1.) ~base c a b
  else begin
    assert (c.Mat.rows mod c.Mat.cols = 0);
    let k = c.Mat.rows / c.Mat.cols in
    let top_rows = k / 2 * c.Mat.cols in
    let split m =
      ( Mat.sub m ~r0:0 ~c0:0 ~rows:top_rows ~cols:m.Mat.cols,
        Mat.sub m ~r0:top_rows ~c0:0 ~rows:(m.Mat.rows - top_rows) ~cols:m.Mat.cols )
    in
    let c_top, c_bot = split c and a_top, a_bot = split a in
    Spawn_tree.par [ tall_mms ~base c_top a_top b; tall_mms ~base c_bot a_bot b ]
  end

let lu_tree ?(panel = `Parallel) ~base a ~piv =
  if a.Mat.rows <> a.Mat.cols then invalid_arg "Lu.lu_tree: not square";
  let n = a.Mat.rows in
  Workload.validate_shape ~n ~base;
  if piv.Mat.cols < n then invalid_arg "Lu.lu_tree: piv too small";
  let chunk = max 8 base in
  let scratch =
    match panel with
    | `Serial -> None
    | `Parallel ->
      Some (Mat.alloc a.Mat.space ~rows:1 ~cols:(2 * ((n / chunk) + 2)))
  in
  let rec go ~r0 ~c0 ~m =
    let rows = n - r0 in
    if m <= base then begin
      let view = Mat.sub a ~r0 ~c0 ~rows ~cols:m in
      match scratch with
      | Some scratch -> parallel_panel view piv ~c0 ~r0 ~chunk ~scratch
      | None -> panel_leaf view piv ~c0 ~r0
    end
    else
      let h = m / 2 in
      let l00 = Mat.sub a ~r0 ~c0 ~rows:h ~cols:h in
      let l_bot = Mat.sub a ~r0:(r0 + h) ~c0 ~rows:(rows - h) ~cols:h in
      let r_full = Mat.sub a ~r0 ~c0:(c0 + h) ~rows ~cols:h in
      let r_top = Mat.sub a ~r0 ~c0:(c0 + h) ~rows:h ~cols:h in
      let r_bot = Mat.sub a ~r0:(r0 + h) ~c0:(c0 + h) ~rows:(rows - h) ~cols:h in
      Spawn_tree.seq
        [
          go ~r0 ~c0 ~m:h;
          laswp_tree r_full piv ~k0:c0 ~k1:(c0 + h) ~g:r0;
          Trs.trs_tree ~unit:true ~base l00 r_top;
          tall_mms ~base r_bot l_bot r_top;
          go ~r0:(r0 + h) ~c0:(c0 + h) ~m:h;
          laswp_tree l_bot piv ~k0:(c0 + h) ~k1:(c0 + m) ~g:(r0 + h);
        ]
  in
  go ~r0:0 ~c0:0 ~m:n

let workload ~n ~base ~seed () =
  Workload.validate_shape ~n ~base;
  if base = n then
    invalid_arg "Lu.workload: base must be smaller than n for a panel chain";
  let space = Mat.create_space () in
  let a = Mat.alloc space ~rows:n ~cols:n in
  let piv = Mat.alloc space ~rows:1 ~cols:n in
  let rspace = Mat.create_space () in
  let reference = Mat.alloc rspace ~rows:n ~cols:n in
  let piv_ref = Mat.alloc rspace ~rows:1 ~cols:n in
  let reset () =
    let rng = Nd_util.Prng.create seed in
    Kernels.fill_uniform a rng ~lo:(-1.) ~hi:1.;
    Mat.fill piv (fun _ _ -> 0.);
    Mat.copy_contents ~src:a ~dst:reference;
    Mat.fill piv_ref (fun _ _ -> 0.);
    Kernels.lu_inplace reference ~piv:piv_ref
  in
  {
    Workload.name = "lu";
    n;
    base;
    tree = lu_tree ~base a ~piv;
    registry = Rules.registry;
    reset;
    check =
      (fun () ->
        Float.max (Mat.max_abs_diff a reference) (Mat.max_abs_diff piv piv_ref));
  }
