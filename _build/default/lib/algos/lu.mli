(** LU factorization with partial pivoting (Section 3): Toledo's 2-way
    divide-and-conquer recursion over column panels, with the ND TRS and
    the fire-based matmul as its building blocks.

    The paper gives no dedicated fire rules for LU — the stated result
    ("a straightforward parallelization of Toledo's algorithm combined
    with a replacement of the TRS algorithm by our new ND TRS") composes
    the pivoted panel chain serially and draws the ND benefit from the
    TRS and update steps; we implement exactly that, so the NP/ND gap for
    LU comes from the fires {e inside} TRS and MMS. *)

(** [lu_tree ?panel ~base a ~piv] — spawn tree factorizing the square
    [a] in place ([L] strictly below the diagonal with unit diagonal,
    [U] on and above), recording global pivot rows in the 1 x n matrix
    [piv].  [`Parallel] panels (default) factorize each column with a
    parallel block-argmax reduction, a combine-and-swap strand, and
    parallel block-row eliminations — the decomposition the paper's
    O(m log n) span presumes; [`Serial] runs each panel as one strand
    (scratch for the reduction is drawn from [a]'s space). *)
val lu_tree :
  ?panel:[ `Parallel | `Serial ] -> base:int -> Mat.t -> piv:Mat.t ->
  Nd.Spawn_tree.t

(** [workload ~n ~base ~seed ()] — factorize a random well-conditioned
    matrix; [check] compares both the packed factors and the pivot vector
    against the serial reference. *)
val workload : n:int -> base:int -> seed:int -> unit -> Workload.t
