module Is = Nd_util.Interval_set

type space = { mutable next : int; mutable data : float array }

let create_space () = { next = 0; data = Array.make 64 0. }

let words s = s.next

let reserve s n =
  let needed = s.next + n in
  if needed > Array.length s.data then begin
    let cap = ref (max 64 (Array.length s.data)) in
    while !cap < needed do
      cap := 2 * !cap
    done;
    let bigger = Array.make !cap 0. in
    Array.blit s.data 0 bigger 0 s.next;
    s.data <- bigger
  end

type t = { space : space; base : int; rows : int; cols : int; stride : int }

let alloc space ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.alloc: negative dimension";
  reserve space (rows * cols);
  let base = space.next in
  space.next <- space.next + (rows * cols);
  { space; base; rows; cols; stride = cols }

let sub m ~r0 ~c0 ~rows ~cols =
  if r0 < 0 || c0 < 0 || r0 + rows > m.rows || c0 + cols > m.cols then
    invalid_arg "Mat.sub: out of bounds";
  {
    space = m.space;
    base = m.base + (r0 * m.stride) + c0;
    rows;
    cols;
    stride = m.stride;
  }

let quad m qr qc =
  if m.rows mod 2 <> 0 || m.cols mod 2 <> 0 then
    invalid_arg "Mat.quad: odd dimensions";
  let hr = m.rows / 2 and hc = m.cols / 2 in
  sub m ~r0:(qr * hr) ~c0:(qc * hc) ~rows:hr ~cols:hc

let top m =
  if m.rows mod 2 <> 0 then invalid_arg "Mat.top: odd rows";
  sub m ~r0:0 ~c0:0 ~rows:(m.rows / 2) ~cols:m.cols

let bot m =
  if m.rows mod 2 <> 0 then invalid_arg "Mat.bot: odd rows";
  sub m ~r0:(m.rows / 2) ~c0:0 ~rows:(m.rows / 2) ~cols:m.cols

let region m =
  if m.cols = m.stride then Is.interval m.base (m.base + (m.rows * m.cols))
  else
    Is.of_intervals
      (List.init m.rows (fun i ->
           let lo = m.base + (i * m.stride) in
           (lo, lo + m.cols)))

let addr m i j = m.base + (i * m.stride) + j

let get m i j = m.space.data.(addr m i j)

let set m i j v = m.space.data.(addr m i j) <- v

let fill m f =
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      set m i j (f i j)
    done
  done

let copy_contents ~src ~dst =
  if src.rows <> dst.rows || src.cols <> dst.cols then
    invalid_arg "Mat.copy_contents: shape mismatch";
  for i = 0 to src.rows - 1 do
    for j = 0 to src.cols - 1 do
      set dst i j (get src i j)
    done
  done

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Mat.max_abs_diff: shape mismatch";
  let worst = ref 0. in
  for i = 0 to a.rows - 1 do
    for j = 0 to a.cols - 1 do
      let d = Float.abs (get a i j -. get b i j) in
      if d > !worst then worst := d
    done
  done;
  !worst

let snapshot m =
  let s = create_space () in
  let c = alloc s ~rows:m.rows ~cols:m.cols in
  copy_contents ~src:m ~dst:c;
  c

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf "%8.3f " (get m i j)
    done;
    Format.fprintf ppf "@]@,"
  done;
  Format.fprintf ppf "@]"

let max_abs_diff_lower a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Mat.max_abs_diff_lower: shape mismatch";
  let worst = ref 0. in
  for i = 0 to a.rows - 1 do
    for j = 0 to min i (a.cols - 1) do
      let d = Float.abs (get a i j -. get b i j) in
      if d > !worst then worst := d
    done
  done;
  !worst
