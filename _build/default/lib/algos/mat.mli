(** Dense matrices over a flat global address space.

    Every algorithm instance allocates its operands from a {!space}.  A
    matrix is a (possibly strided) rectangular view; [region] renders the
    view as an interval set over the space's addresses, which is what
    strands use as footprints.  The same space carries a float backing
    store so the strand actions can perform the real computation — the
    address of a cell in the footprint is its index in the store. *)

type space

val create_space : unit -> space

(** [words space] is the number of allocated addresses. *)
val words : space -> int

type t = { space : space; base : int; rows : int; cols : int; stride : int }

(** [alloc space ~rows ~cols] allocates a fresh row-major matrix
    (contiguous: stride = cols), zero-initialized. *)
val alloc : space -> rows:int -> cols:int -> t

(** [sub m ~r0 ~c0 ~rows ~cols] is a view; no copy.
    @raise Invalid_argument when out of bounds. *)
val sub : t -> r0:int -> c0:int -> rows:int -> cols:int -> t

(** [quad m qr qc] is one of the four quadrants ([qr], [qc] in {0, 1});
    requires even dimensions. *)
val quad : t -> int -> int -> t

(** Row halves [top]/[bot] (for tall recursions); require even rows. *)
val top : t -> t

val bot : t -> t

(** [region m] is the footprint of the view: one interval per row (or a
    single interval when the view is contiguous). *)
val region : t -> Nd_util.Interval_set.t

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

(** [addr m i j] is the global address of cell (i, j). *)
val addr : t -> int -> int -> int

(** [fill m f] sets every cell to [f i j]. *)
val fill : t -> (int -> int -> float) -> unit

(** [copy_contents ~src ~dst] copies cell-wise; shapes must match. *)
val copy_contents : src:t -> dst:t -> unit

(** [max_abs_diff a b] is the max |a(i,j) - b(i,j)|; shapes must match. *)
val max_abs_diff : t -> t -> float

(** [snapshot m] materializes the view into a fresh space (detached copy),
    useful for saving inputs before an in-place run. *)
val snapshot : t -> t

val pp : Format.formatter -> t -> unit

(** [max_abs_diff_lower a b] like {!max_abs_diff} but restricted to the
    lower triangle including the diagonal (for in-place factorizations
    that leave the strict upper triangle unspecified). *)
val max_abs_diff_lower : t -> t -> float
