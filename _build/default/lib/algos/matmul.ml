module Is = Nd_util.Interval_set
open Nd

type variant = Literal | Safe

let rule_name = function Literal -> "MM_literal" | Safe -> "MM"

let registry ~variant:_ = Rules.registry

let mm_leaf ~transposed_b ~sign c a b =
  let work = c.Mat.rows * c.Mat.cols * a.Mat.cols in
  let reads = Is.union (Mat.region c) (Is.union (Mat.region a) (Mat.region b)) in
  let action () =
    if transposed_b then Kernels.mm_acc_nt ~sign c a b
    else Kernels.mm_acc ~sign c a b
  in
  Spawn_tree.leaf
    (Strand.make
       ~label:(if sign >= 0. then "mm" else "mms")
       ~work ~reads ~writes:(Mat.region c) ~action ())

(* The 2-way recursion of Section 2.  [kq a k] selects the inner-dimension
   half [k] of the left operand; [kq b k] of the right operand (for the
   transposed form both operands split by columns). *)
let rec mm_rec ~rule ~transposed_b ~sign ~base c a b =
  if c.Mat.rows <= base then mm_leaf ~transposed_b ~sign c a b
  else
    let go = mm_rec ~rule ~transposed_b ~sign ~base in
    let ca i j = Mat.quad c i j and aq i j = Mat.quad a i j and bq i j = Mat.quad b i j in
    (* left operand inner half k = column half of a; right operand inner
       half = row half of b, or column half of b when transposed. *)
    let bk k i = if transposed_b then bq i k else bq k i in
    let half k =
      Spawn_tree.par
        [
          Spawn_tree.par [ go (ca 0 0) (aq 0 k) (bk k 0); go (ca 0 1) (aq 0 k) (bk k 1) ];
          Spawn_tree.par [ go (ca 1 0) (aq 1 k) (bk k 0); go (ca 1 1) (aq 1 k) (bk k 1) ];
        ]
    in
    Spawn_tree.fire ~rule (half 0) (half 1)

let check_square name c a b =
  let open Mat in
  if
    c.rows <> c.cols || a.rows <> a.cols || b.rows <> b.cols
    || a.rows <> c.rows || b.rows <> c.rows
  then invalid_arg (name ^ ": operands must be square and equal size")

let mm_tree ~variant ~sign ~base c a b =
  check_square "Matmul.mm_tree" c a b;
  Workload.validate_shape ~n:c.Mat.rows ~base;
  mm_rec ~rule:(rule_name variant) ~transposed_b:false ~sign ~base c a b

let mm_nt_tree ~variant ~sign ~base c a b =
  check_square "Matmul.mm_nt_tree" c a b;
  Workload.validate_shape ~n:c.Mat.rows ~base;
  mm_rec ~rule:(rule_name variant) ~transposed_b:true ~sign ~base c a b

(* ------------------------- 8-way NP algorithm ---------------------- *)

let add_leaf c d =
  let reads = Is.union (Mat.region c) (Mat.region d) in
  let action () =
    for i = 0 to c.Mat.rows - 1 do
      for j = 0 to c.Mat.cols - 1 do
        Mat.set c i j (Mat.get c i j +. Mat.get d i j)
      done
    done
  in
  Spawn_tree.leaf
    (Strand.make ~label:"madd" ~work:(c.Mat.rows * c.Mat.cols) ~reads
       ~writes:(Mat.region c) ~action ())

let rec add_tree ~base c d =
  if c.Mat.rows <= base then add_leaf c d
  else
    Spawn_tree.par
      [
        add_tree ~base (Mat.quad c 0 0) (Mat.quad d 0 0);
        add_tree ~base (Mat.quad c 0 1) (Mat.quad d 0 1);
        add_tree ~base (Mat.quad c 1 0) (Mat.quad d 1 0);
        add_tree ~base (Mat.quad c 1 1) (Mat.quad d 1 1);
      ]

let mm8_tree ~space ~base c a b =
  check_square "Matmul.mm8_tree" c a b;
  Workload.validate_shape ~n:c.Mat.rows ~base;
  let temps = ref [] in
  let rec go c a b =
    if c.Mat.rows <= base then mm_leaf ~transposed_b:false ~sign:1. c a b
    else begin
      let n = c.Mat.rows in
      let d = Mat.alloc space ~rows:n ~cols:n in
      temps := d :: !temps;
      let ca i j = Mat.quad c i j
      and da i j = Mat.quad d i j
      and aq i j = Mat.quad a i j
      and bq i j = Mat.quad b i j in
      let products =
        Spawn_tree.par
          [
            go (ca 0 0) (aq 0 0) (bq 0 0);
            go (ca 0 1) (aq 0 0) (bq 0 1);
            go (ca 1 0) (aq 1 0) (bq 0 0);
            go (ca 1 1) (aq 1 0) (bq 0 1);
            go (da 0 0) (aq 0 1) (bq 1 0);
            go (da 0 1) (aq 0 1) (bq 1 1);
            go (da 1 0) (aq 1 1) (bq 1 0);
            go (da 1 1) (aq 1 1) (bq 1 1);
          ]
      in
      Spawn_tree.seq [ products; add_tree ~base c d ]
    end
  in
  let tree = go c a b in
  (tree, !temps)

(* --------------------------- workloads ----------------------------- *)

let mm_operands ~n ~seed =
  let space = Mat.create_space () in
  let a = Mat.alloc space ~rows:n ~cols:n in
  let b = Mat.alloc space ~rows:n ~cols:n in
  let c = Mat.alloc space ~rows:n ~cols:n in
  let reference = Mat.alloc (Mat.create_space ()) ~rows:n ~cols:n in
  let reset_operands () =
    let rng = Nd_util.Prng.create seed in
    Kernels.fill_uniform a rng ~lo:0. ~hi:1.;
    Kernels.fill_uniform b rng ~lo:0. ~hi:1.;
    Mat.fill c (fun _ _ -> 0.);
    Mat.fill reference (fun _ _ -> 0.);
    Kernels.mm_acc ~sign:1. reference a b
  in
  (space, a, b, c, reference, reset_operands)

let workload ?(variant = Safe) ~n ~base ~seed () =
  Workload.validate_shape ~n ~base;
  let _space, a, b, c, reference, reset = mm_operands ~n ~seed in
  {
    Workload.name = "mm";
    n;
    base;
    tree = mm_tree ~variant ~sign:1. ~base c a b;
    registry = registry ~variant;
    reset;
    check = (fun () -> Mat.max_abs_diff c reference);
  }

let workload8 ~n ~base ~seed () =
  Workload.validate_shape ~n ~base;
  let space, a, b, c, reference, reset_operands = mm_operands ~n ~seed in
  let tree, temps = mm8_tree ~space ~base c a b in
  let reset () =
    reset_operands ();
    List.iter (fun d -> Mat.fill d (fun _ _ -> 0.)) temps
  in
  {
    Workload.name = "mm8";
    n;
    base;
    tree;
    registry = Rules.registry;
    reset;
    check = (fun () -> Mat.max_abs_diff c reference);
  }
