(** Divide-and-conquer matrix multiplication in the ND model (Section 2 of
    the paper).

    The 2-way algorithm splits the inner dimension in half and composes the
    two halves — which accumulate into the same C quadrants — with the
    "⇝MM" fire construct.  Two rule sets are provided:

    - [Literal]: the paper's printed rules
      [{ +<1> ⇝MM -<1>, +<2> ⇝MM -<2> }].  Our race detector shows these
      leave the pair (source's second half, sink's first half) unordered
      even though both accumulate into every C quadrant (see DESIGN.md).
    - [Safe] (default): adds [+<2> ⇝MM -<1>], which totally orders the
      contributions to each quadrant chain; the DAG is determinacy-race
      free and the span matches the O(n) the paper quotes for MMS.

    Also provides the 8-way nested-parallel algorithm with temporaries
    (footnote 2 of the paper: O(log^2 n) span, O(n^3) space), used as an
    NP baseline in the experiments. *)

type variant = Literal | Safe

(** [registry ~variant] defines fire type ["MM"]. *)
val registry : variant:variant -> Nd.Fire_rule.registry

(** [mm_tree ~variant ~sign ~base c a b] is the spawn tree computing
    [c += sign * a*b].  All matrices square with power-of-two dimension;
    recursion stops at [base].  Reused by TRS / Cholesky / LU as their
    update step (the paper's MMS is [~sign:(-1.)]). *)
val mm_tree :
  variant:variant -> sign:float -> base:int -> Mat.t -> Mat.t -> Mat.t ->
  Nd.Spawn_tree.t

(** [mm_nt_tree ~variant ~sign ~base c a b] computes [c += sign * a*b^T]
    with the same fire structure (used by Cholesky's symmetric update). *)
val mm_nt_tree :
  variant:variant -> sign:float -> base:int -> Mat.t -> Mat.t -> Mat.t ->
  Nd.Spawn_tree.t

(** [mm8_tree ~space ~base c a b] is the 8-way NP algorithm: all eight
    quadrant products run in parallel, the four second-half products go to
    temporaries drawn from [space], and a parallel add-tree folds them in.
    Returns the tree and the list of temporaries (they must be zeroed
    before each run). *)
val mm8_tree :
  space:Mat.space -> base:int -> Mat.t -> Mat.t -> Mat.t ->
  Nd.Spawn_tree.t * Mat.t list

(** [workload ?variant ~n ~base ~seed ()] packages [C = A*B] with fresh
    operands. *)
val workload :
  ?variant:variant -> n:int -> base:int -> seed:int -> unit -> Workload.t

(** [workload8 ~n ~base ~seed ()] packages the 8-way NP algorithm. *)
val workload8 : n:int -> base:int -> seed:int -> unit -> Workload.t
