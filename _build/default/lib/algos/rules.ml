open Nd.Fire_rule

(* Pedigree conventions (see Program): on a Fire node step 1 = source,
   step 2 = sink; on Seq/Par the i-th child.

   Structure shapes the pedigrees refer to:
   - matmul (MM fire):       Fire(MM, half0, half1),
     half = Par[Par[c00; c01]; Par[c10; c11]]
   - left TRS:  Fire(2TM2T, Par[Fire(TM, trs00, mms10); Fire(TM, trs01, mms11)],
                            Par[trs10; trs11])
   - right TRS: Fire(2TMR2T, Par[Fire(TM1, trs00, mms01); Fire(TM1, trs10, mms11)],
                             Par[trs01; trs11])
   - Cholesky:  Fire(CTMC, Fire(CT, cho00, trsr10), Fire(MC, syrk11, cho11))
   - 1-D FW A:  Fire(ABAB, Fire(AB, a00, b01), Fire(AB, a11, b10))
   - 1-D FW B:  Fire(BBBB, Par[b00; b01], Par[b10; b11])
   - LCS:       Fire(VH, Fire(HV, lcs00, Par[lcs01; lcs10]), lcs11) *)

let r p via q = rule p via q

let mm_literal = [ r [ 1 ] (Named "MM_literal") [ 1 ]; r [ 2 ] (Named "MM_literal") [ 2 ] ]

(* adds +<2> -> -<1> to the printed pair, totally ordering the
   contributions to each quadrant chain (the printed pair alone leaves
   the source's second half racing the sink's first half; a single
   +<2> -> -<1> rule alone is also insufficient because the same set is
   interpreted over both Fire and Par nodes as it descends) *)
let mm_safe =
  [
    r [ 1 ] (Named "MM") [ 1 ];
    r [ 2 ] (Named "MM") [ 2 ];
    r [ 2 ] (Named "MM") [ 1 ];
  ]

(* Eq. 8, first block (verbatim: it is consistent with our structures).
   Producer TRS(T00,B00) quadrant X_rc -> multiplies consuming X as the
   second operand. *)
let tm =
  [
    r [ 1; 1; 1 ] (Named "TM") [ 1; 1; 1 ];
    r [ 1; 1; 1 ] (Named "TM") [ 1; 2; 1 ];
    r [ 1; 2; 1 ] (Named "TM") [ 1; 1; 2 ];
    r [ 1; 2; 1 ] (Named "TM") [ 1; 2; 2 ];
    r [ 2; 1 ] (Named "TM") [ 2; 1; 1 ];
    r [ 2; 1 ] (Named "TM") [ 2; 2; 1 ];
    r [ 2; 2 ] (Named "TM") [ 2; 1; 2 ];
    r [ 2; 2 ] (Named "TM") [ 2; 2; 2 ];
  ]

(* Produced X consumed as the FIRST operand of a multiply (paper's TM1,
   with its two garbled pedigrees fixed and the duplicate removed). *)
let tm1 =
  [
    r [ 1; 1; 1 ] (Named "TM1") [ 1; 1; 1 ];
    r [ 1; 1; 1 ] (Named "TM1") [ 1; 1; 2 ];
    r [ 1; 2; 1 ] (Named "TM1") [ 1; 2; 1 ];
    r [ 1; 2; 1 ] (Named "TM1") [ 1; 2; 2 ];
    r [ 2; 1 ] (Named "TM1") [ 2; 1; 1 ];
    r [ 2; 1 ] (Named "TM1") [ 2; 1; 2 ];
    r [ 2; 2 ] (Named "TM1") [ 2; 2; 1 ];
    r [ 2; 2 ] (Named "TM1") [ 2; 2; 2 ];
  ]

(* consumed as both operands (Cholesky's symmetric rank update): union *)
let tm2 = [ r [] (Named "TM") []; r [] (Named "TM1") [] ]

(* Eq. 5 (verbatim) *)
let tm2t2 = [ r [ 1; 2 ] (Named "MT") [ 1 ]; r [ 2; 2 ] (Named "MT") [ 2 ] ]

let tmr2t2 = [ r [ 1; 2 ] (Named "MTR") [ 1 ]; r [ 2; 2 ] (Named "MTR") [ 2 ] ]

let tm2t2_literal =
  [ r [ 1; 2 ] (Named "MT_literal") [ 1 ]; r [ 2; 2 ] (Named "MT_literal") [ 2 ] ]

(* Eq. 8, third block, as printed.  The race detector shows this set
   leaves the solver of B10_00 unordered with the final update of B10_00
   (the source-half pedigrees are swapped); kept for the E8 experiment. *)
let mt_literal =
  [
    r [ 2; 1; 1 ] (Named "MM_literal") [ 1; 1; 2 ];
    r [ 2; 1; 2 ] (Named "MM_literal") [ 1; 2; 2 ];
    r [ 2; 2; 1 ] (Named "MT_literal") [ 1; 1; 1 ];
    r [ 2; 2; 2 ] (Named "MT_literal") [ 1; 2; 1 ];
  ]

(* Corrected: final updater of each B quadrant fires its consumer — the
   solve for the left column, the sink's own update for the right. *)
let mt =
  [
    r [ 2; 1; 1 ] (Named "MT") [ 1; 1; 1 ];
    r [ 2; 1; 2 ] (Named "MT") [ 1; 2; 1 ];
    r [ 2; 2; 1 ] (Named "MM") [ 1; 1; 2 ];
    r [ 2; 2; 2 ] (Named "MM") [ 1; 2; 2 ];
  ]

(* right-solve flavor: sink is Fire(2TMR2T, ...) whose first-pair solves
   B_00 and updates B_01 *)
let mtr =
  [
    r [ 2; 1; 1 ] (Named "MTR") [ 1; 1; 1 ];
    r [ 2; 2; 1 ] (Named "MTR") [ 1; 2; 1 ];
    r [ 2; 1; 2 ] (Named "MM") [ 1; 1; 2 ];
    r [ 2; 2; 2 ] (Named "MM") [ 1; 2; 2 ];
  ]

(* --------------------------- Cholesky ----------------------------- *)
(* Eq. 11.  Producer CHO(A00) = Fire(CTMC, Fire(CT, cho, trsr), Fire(MC,
   syrk, cho)): L00_00 <- +<1.1>, L00_10 <- +<1.2>, L00_11 <- +<2.2>.
   Consumer TRSR(L00, A10): T00 used by solves -<1.1.1>, -<1.2.1>;
   T10 used (as transposed second operand) by updates -<1.1.2>, -<1.2.2>;
   T11 by solves -<2.1>, -<2.2>. *)
let ct =
  [
    r [ 1; 1 ] (Named "CT") [ 1; 1; 1 ];
    r [ 1; 1 ] (Named "CT") [ 1; 2; 1 ];
    r [ 1; 2 ] (Named "TM") [ 1; 1; 2 ];
    r [ 1; 2 ] (Named "TM") [ 1; 2; 2 ];
    r [ 2; 2 ] (Named "CT") [ 2; 1 ];
    r [ 2; 2 ] (Named "CT") [ 2; 2 ];
  ]

(* verbatim: the TRSR output L10 is consumed by the symmetric update as
   both operands *)
let ctmc = [ r [ 2 ] (Named "TM2") [ 1 ] ]

(* Final updaters of A11 quadrants fire their consumers in CHO(A11):
   A11_00 -> recursive CHO, A11_10 -> the TRSR panel, A11_11 -> the
   sink's own symmetric update (MM-type; the paper's printed
   +<2.2.2> MC -<2.2> skips that update and leaves a race). *)
let mc =
  [
    r [ 2; 1; 1 ] (Named "MC") [ 1; 1 ];
    r [ 2; 2; 1 ] (Named "MTR") [ 1; 2 ];
    r [ 2; 2; 2 ] (Named "MM") [ 2; 1 ];
  ]

(* ------------------------ 1-D Floyd–Warshall ----------------------- *)
(* Eq. 14 (verbatim, with the missing sink marker in BB's second rule
   read as -<1.2>). *)

let ab =
  [
    r [ 1; 1 ] (Named "AB") [ 1; 1 ];
    r [ 1; 1 ] (Named "AB") [ 1; 2 ];
    r [ 2; 1 ] (Named "AB") [ 2; 1 ];
    r [ 2; 1 ] (Named "AB") [ 2; 2 ];
  ]

(* The printed set { +<2> BA -<1> } carries only the B01 -> A11 arrows;
   the race detector shows the column dependency X00 -> X10 (the sink's B
   task reads X00's bottom row) is then uncovered.  "VAB" (an A task
   firing the B task directly below it) closes it: A's bottom-left region
   is its B10 child (a B-over-B dependency) and its bottom-right region is
   its A11 child (recursively VAB). *)
let abab = [ r [ 2 ] (Named "BA") [ 1 ]; r [ 1 ] (Named "VAB") [ 2 ] ]

let abab_literal = [ r [ 2 ] (Named "BA") [ 1 ] ]

let vab = [ r [ 2; 2 ] (Named "BB") [ 1; 1 ]; r [ 2; 1 ] (Named "VAB") [ 1; 2 ] ]

let ba = [ r [ 2; 1 ] (Named "BA") [ 1; 1 ]; r [ 2; 2 ] (Named "BB") [ 1; 2 ] ]

let bbbb = [ r [ 1 ] (Named "BB") [ 1 ]; r [ 2 ] (Named "BB") [ 2 ] ]

let bb = [ r [ 2; 1 ] (Named "BB") [ 1; 1 ]; r [ 2; 2 ] (Named "BB") [ 1; 2 ] ]

(* --------------------- 2-D Floyd-Warshall back-updates ------------- *)
(* After the trailing solves of a panel, the first half of the panel is
   re-updated through the second-half k's; the solved second half is
   consumed as the second (column panels) or first (row panels) operand. *)

(* Unlike plain TRS, the FW panels are wrapped in a back-update stage:
   B = Fire(FWB_BACK, Fire(FWB2T, src, snk), Par[backD; backD]), so the
   TRS rule types (whose pedigrees assume the bare 2TM2T shape) cannot be
   reused for arrows whose endpoint is a panel task.  The FW-specific
   producer maps are: in a B panel, x00/x01 are finally written by the
   back updates (+<2.1>/+<2.2>) and x10/x11 by the trailing solves
   (+<1.2.1>/+<1.2.2>); consumers follow the matmul operand patterns.

   Type naming: [XY]k = task of type X produces a block consumed by a
   task of type Y as its k-th operand (D = the min-plus multiply;
   DB / DC have the panel as the consumer of its own in/out block). *)

let dd2 =
  [
    r [ 2; 1; 1 ] (Named "DD2") [ 1; 1; 1 ];
    r [ 2; 1; 1 ] (Named "DD2") [ 1; 2; 1 ];
    r [ 2; 1; 2 ] (Named "DD2") [ 1; 1; 2 ];
    r [ 2; 1; 2 ] (Named "DD2") [ 1; 2; 2 ];
    r [ 2; 2; 1 ] (Named "DD2") [ 2; 1; 1 ];
    r [ 2; 2; 1 ] (Named "DD2") [ 2; 2; 1 ];
    r [ 2; 2; 2 ] (Named "DD2") [ 2; 1; 2 ];
    r [ 2; 2; 2 ] (Named "DD2") [ 2; 2; 2 ];
  ]

let dd1 =
  [
    r [ 2; 1; 1 ] (Named "DD1") [ 1; 1; 1 ];
    r [ 2; 1; 1 ] (Named "DD1") [ 1; 1; 2 ];
    r [ 2; 1; 2 ] (Named "DD1") [ 2; 1; 1 ];
    r [ 2; 1; 2 ] (Named "DD1") [ 2; 1; 2 ];
    r [ 2; 2; 1 ] (Named "DD1") [ 1; 2; 1 ];
    r [ 2; 2; 1 ] (Named "DD1") [ 1; 2; 2 ];
    r [ 2; 2; 2 ] (Named "DD1") [ 2; 2; 1 ];
    r [ 2; 2; 2 ] (Named "DD1") [ 2; 2; 2 ];
  ]

let bd2 =
  [
    r [ 2; 1 ] (Named "DD2") [ 1; 1; 1 ];
    r [ 2; 1 ] (Named "DD2") [ 1; 2; 1 ];
    r [ 2; 2 ] (Named "DD2") [ 1; 1; 2 ];
    r [ 2; 2 ] (Named "DD2") [ 1; 2; 2 ];
    r [ 1; 2; 1 ] (Named "BD2") [ 2; 1; 1 ];
    r [ 1; 2; 1 ] (Named "BD2") [ 2; 2; 1 ];
    r [ 1; 2; 2 ] (Named "BD2") [ 2; 1; 2 ];
    r [ 1; 2; 2 ] (Named "BD2") [ 2; 2; 2 ];
  ]

let cd1 =
  [
    r [ 2; 1 ] (Named "DD1") [ 1; 1; 1 ];
    r [ 2; 1 ] (Named "DD1") [ 1; 1; 2 ];
    r [ 2; 2 ] (Named "DD1") [ 1; 2; 1 ];
    r [ 2; 2 ] (Named "DD1") [ 1; 2; 2 ];
    r [ 1; 2; 1 ] (Named "CD1") [ 2; 1; 1 ];
    r [ 1; 2; 1 ] (Named "CD1") [ 2; 1; 2 ];
    r [ 1; 2; 2 ] (Named "CD1") [ 2; 2; 1 ];
    r [ 1; 2; 2 ] (Named "CD1") [ 2; 2; 2 ];
  ]

(* a D update fires the panel consuming the block it wrote: the panel's
   first toucher of x00/x01 (resp. x00/x10) is a nested solve; of the
   other two quadrants its own forward D (same-output: MM) *)
let db =
  [
    r [ 2; 1; 1 ] (Named "DB") [ 1; 1; 1; 1 ];
    r [ 2; 1; 2 ] (Named "DB") [ 1; 1; 2; 1 ];
    r [ 2; 2; 1 ] (Named "MM") [ 1; 1; 1; 2 ];
    r [ 2; 2; 2 ] (Named "MM") [ 1; 1; 2; 2 ];
  ]

let dc =
  [
    r [ 2; 1; 1 ] (Named "DC") [ 1; 1; 1; 1 ];
    r [ 2; 1; 2 ] (Named "MM") [ 1; 1; 1; 2 ];
    r [ 2; 2; 1 ] (Named "DC") [ 1; 1; 2; 1 ];
    r [ 2; 2; 2 ] (Named "MM") [ 1; 1; 2; 2 ];
  ]

let fwb2t = [ r [ 1; 2 ] (Named "DB") [ 1 ]; r [ 2; 2 ] (Named "DB") [ 2 ] ]

let fwc2t = [ r [ 1; 2 ] (Named "DC") [ 1 ]; r [ 2; 2 ] (Named "DC") [ 2 ] ]

(* The forward updates (+<1.x.2>) READ the first-half blocks the back
   updates overwrite (an anti-dependency the partial chains do not fully
   cover), so those arrows are full. *)
let fwb_back =
  [
    r [ 2; 1 ] (Named "BD2") [ 1 ];
    r [ 2; 2 ] (Named "BD2") [ 2 ];
    r [ 1; 1; 2 ] Full [ 1 ];
    r [ 1; 2; 2 ] Full [ 2 ];
  ]

let fwc_back =
  [
    r [ 2; 1 ] (Named "CD1") [ 1 ];
    r [ 2; 2 ] (Named "CD1") [ 2 ];
    r [ 1; 1; 2 ] Full [ 1 ];
    r [ 1; 2; 2 ] Full [ 2 ];
  ]

(* ---------------------------- 1-D stencil --------------------------- *)
(* Section 5's expressibility claim ("other algorithms such as stencils
   ... can also be effectively described"): timesteps are chained with
   ST_CHAIN over a right-nested fire spine — the sink of every chain
   fire is the next fire node, so sink pedigrees carry a leading 1 —
   and within a step, block i of row t+1 depends on blocks i-1, i, i+1
   of row t: same-position descent (ST_STEP) plus the two boundary
   descents (rightmost-of-left -> leftmost-of-right and vice versa). *)

let st_step =
  [
    r [ 1 ] (Named "ST_STEP") [ 1 ];
    r [ 2 ] (Named "ST_STEP") [ 2 ];
    r [ 1 ] (Named "ST_SR") [ 2 ];
    r [ 2 ] (Named "ST_SL") [ 1 ];
  ]

let st_sr = [ r [ 2 ] (Named "ST_SR") [ 1 ] ]

let st_sl = [ r [ 1 ] (Named "ST_SL") [ 2 ] ]

let st_chain =
  [
    r [ 1 ] (Named "ST_STEP") [ 1; 1 ];
    r [ 2 ] (Named "ST_STEP") [ 1; 2 ];
    r [ 1 ] (Named "ST_SR") [ 1; 2 ];
    r [ 2 ] (Named "ST_SL") [ 1; 1 ];
  ]

(* ------------------------------ LCS -------------------------------- *)
(* Eqs. 18-21 (verbatim). *)

let hv = [ r [] (Named "H") [ 1 ]; r [] (Named "V") [ 2 ] ]

(* The paper prints { +<1> V -, +<2> H - }, which under the uniform
   fire-node pedigree convention binds +<1> to X00 — geometrically X00 is
   not adjacent to X11 and the race detector rejects the set.  The sink
   X11 is below X01 = +<2.1> and right of X10 = +<2.2>. *)
let vh = [ r [ 2; 1 ] (Named "V") []; r [ 2; 2 ] (Named "H") [] ]

let vh_literal = [ r [ 1 ] (Named "V") []; r [ 2 ] (Named "H") [] ]

let h =
  [ r [ 1; 2; 1 ] (Named "H") [ 1; 1 ]; r [ 2 ] (Named "H") [ 1; 2; 2 ] ]

let v =
  [ r [ 1; 2; 2 ] (Named "V") [ 1; 1 ]; r [ 2 ] (Named "V") [ 1; 2; 1 ] ]

let registry =
  List.fold_left
    (fun reg (name, rules) -> define reg name rules)
    empty_registry
    [
      ("MM", mm_safe);
      ("MM_literal", mm_literal);
      ("TM", tm);
      ("TM1", tm1);
      ("TM2", tm2);
      ("2TM2T", tm2t2);
      ("2TM2T_literal", tm2t2_literal);
      ("2TMR2T", tmr2t2);
      ("MT", mt);
      ("MT_literal", mt_literal);
      ("MTR", mtr);
      ("CT", ct);
      ("CTMC", ctmc);
      ("MC", mc);
      ("AB", ab);
      ("ABAB", abab);
      ("ABAB_literal", abab_literal);
      ("VAB", vab);
      ("BA", ba);
      ("BBBB", bbbb);
      ("BB", bb);
      ("FWB_BACK", fwb_back);
      ("FWC_BACK", fwc_back);
      ("FWB2T", fwb2t);
      ("FWC2T", fwc2t);
      ("BD2", bd2);
      ("CD1", cd1);
      ("DD2", dd2);
      ("DD1", dd1);
      ("DB", db);
      ("DC", dc);
      ("ST_STEP", st_step);
      ("ST_SR", st_sr);
      ("ST_SL", st_sl);
      ("ST_CHAIN", st_chain);
      ("HV", hv);
      ("VH", vh);
      ("VH_literal", vh_literal);
      ("H", h);
      ("V", v);
    ]
