(** The complete fire-rule registry for the paper's algorithms.

    One registry holds every fire type so that algorithms can be composed
    freely (TRS inside Cholesky inside LU...).  Where the paper's printed
    rule sets contain typos or leave determinacy races (verified with
    {!Nd_dag.Race}), the corrected set carries the plain name and the
    verbatim printed set carries a ["_literal"] suffix; DESIGN.md lists
    every correction.

    Naming follows the paper:
    - ["MM"]: matmul halves over the same output (safe, totally ordered
      per quadrant chain); ["MM_literal"]: the printed two-rule set.
    - ["TM"]: triangular-solve output consumed as the second operand of a
      multiply; ["TM1"]: consumed as the first operand; ["TM2"]: consumed
      as both (union, used by Cholesky's symmetric update).
    - ["MT"]: multiply output consumed by a triangular solve (left-solve
      flavor); ["MT_literal"]: the printed set; ["MTR"]: right-solve
      flavor.
    - ["2TM2T"] / ["2TMR2T"]: the top-level TRS composition (Eq. 5).
    - ["CT"], ["CTMC"], ["MC"]: Cholesky (Eq. 11).
    - ["AB"], ["ABAB"], ["BA"], ["BBBB"], ["BB"]: 1-D Floyd–Warshall
      (Eq. 14).
    - ["HV"], ["VH"], ["H"], ["V"]: LCS (Eqs. 17–21). *)

val registry : Nd.Fire_rule.registry
