module Is = Nd_util.Interval_set
open Nd

(* dst(i) <- (src(i-1) + src(i) + src(i+1)) / 3, Dirichlet boundaries *)
let block_action ~n ~src ~dst lo hi () =
  for i = lo to hi - 1 do
    if i = 0 || i = n - 1 then Mat.set dst 0 i (Mat.get src 0 i)
    else
      Mat.set dst 0 i
        ((Mat.get src 0 (i - 1) +. Mat.get src 0 i +. Mat.get src 0 (i + 1))
        /. 3.)
  done

let block_strand ~n ~src ~dst lo hi =
  let rlo = max 0 (lo - 1) and rhi = min n (hi + 1) in
  Spawn_tree.leaf
    (Strand.make ~label:"stencil"
       ~work:(3 * (hi - lo))
       ~reads:(Is.interval (Mat.addr src 0 rlo) (Mat.addr src 0 rlo + (rhi - rlo)))
       ~writes:(Is.interval (Mat.addr dst 0 lo) (Mat.addr dst 0 lo + (hi - lo)))
       ~action:(block_action ~n ~src ~dst lo hi)
       ())

(* balanced binary Par tree over the row's blocks *)
let row_tree ~n ~base ~src ~dst =
  let rec go lo hi =
    if hi - lo <= base then block_strand ~n ~src ~dst lo hi
    else
      let mid = lo + ((hi - lo) / 2) in
      Spawn_tree.par [ go lo mid; go mid hi ]
  in
  go 0 n

let stencil_tree ~n ~base ~steps buf0 buf1 =
  let row t =
    let src = if t mod 2 = 0 then buf0 else buf1 in
    let dst = if t mod 2 = 0 then buf1 else buf0 in
    row_tree ~n ~base ~src ~dst
  in
  let terminal = Spawn_tree.leaf (Strand.nop "stencil.end") in
  let rec spine t =
    if t >= steps then terminal
    else Spawn_tree.fire ~rule:"ST_CHAIN" (row t) (spine (t + 1))
  in
  spine 0

let workload ~n ~base ~seed () =
  Workload.validate_shape ~n ~base;
  let steps = max 1 (n / 4) in
  let space = Mat.create_space () in
  let buf0 = Mat.alloc space ~rows:1 ~cols:n in
  let buf1 = Mat.alloc space ~rows:1 ~cols:n in
  let rspace = Mat.create_space () in
  let r0 = Mat.alloc rspace ~rows:1 ~cols:n in
  let r1 = Mat.alloc rspace ~rows:1 ~cols:n in
  let reset () =
    let rng = Nd_util.Prng.create seed in
    Kernels.fill_uniform buf0 rng ~lo:0. ~hi:100.;
    Mat.fill buf1 (fun _ _ -> 0.);
    Mat.copy_contents ~src:buf0 ~dst:r0;
    Mat.fill r1 (fun _ _ -> 0.);
    for t = 0 to steps - 1 do
      let src = if t mod 2 = 0 then r0 else r1 in
      let dst = if t mod 2 = 0 then r1 else r0 in
      block_action ~n ~src ~dst 0 n ()
    done
  in
  let final, rfinal = if steps mod 2 = 0 then (buf0, r0) else (buf1, r1) in
  {
    Workload.name = "stencil";
    n;
    base;
    tree = stencil_tree ~n ~base ~steps buf0 buf1;
    registry = Rules.registry;
    reset;
    check = (fun () -> Mat.max_abs_diff final rfinal);
  }
