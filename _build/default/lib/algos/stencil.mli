(** 1-D 3-point Jacobi stencil in the ND model — the paper's Section-5
    claim that stencils "can also be effectively described" with the
    fire construct.

    Two ping-pong row buffers; each timestep is a balanced Par tree of
    block strands, and consecutive timesteps are composed with the
    "ST_CHAIN" fire over a right-nested spine: block i of step t+1 fires
    as soon as blocks i-1, i, i+1 of step t are done (the wavefront),
    instead of waiting for the whole step as the NP projection does.
    The write-after-read hazard between steps t and t+2 on the shared
    buffer is covered transitively by the same arrows (machine-checked
    by the race detector). *)

(** [workload ~n ~base ~seed ()] — [n] cells, [n/4] timesteps, Dirichlet
    boundaries, block size [base]; [check] compares the final buffer
    with the serial reference (exact). *)
val workload : n:int -> base:int -> seed:int -> unit -> Workload.t
