module Is = Nd_util.Interval_set
open Nd

type variant = Literal | Corrected

let trs_leaf ~kind t b =
  (* substitution on a base block: ~ rows^2 * cols multiply-adds *)
  let work = b.Mat.rows * b.Mat.cols * t.Mat.rows in
  let reads = Is.union (Mat.region t) (Mat.region b) in
  let action () =
    match kind with
    | `Left -> Kernels.trs_left t b
    | `Left_unit -> Kernels.trs_left_unit t b
    | `Right -> Kernels.trs_right t b
  in
  Spawn_tree.leaf
    (Strand.make
       ~label:(match kind with `Right -> "trsr" | `Left | `Left_unit -> "trs")
       ~work ~reads ~writes:(Mat.region b) ~action ())

(* Eq. 4: src solves the top half of B against T00 and applies the T10
   updates; snk solves the bottom half against T11. *)
let trs_tree ?(variant = Corrected) ?(unit = false) ~base t b =
  if t.Mat.rows <> t.Mat.cols || t.Mat.rows <> b.Mat.rows || b.Mat.rows <> b.Mat.cols
  then invalid_arg "Trs.trs_tree: T, B must be square and equal size";
  Workload.validate_shape ~n:t.Mat.rows ~base;
  let top_rule, tm_rule, mm_variant =
    match variant with
    | Corrected -> ("2TM2T", "TM", Matmul.Safe)
    | Literal -> ("2TM2T_literal", "TM", Matmul.Literal)
  in
  let leaf_kind = if unit then `Left_unit else `Left in
  let rec go t b =
    if t.Mat.rows <= base then trs_leaf ~kind:leaf_kind t b
    else
      let t00 = Mat.quad t 0 0 and t10 = Mat.quad t 1 0 and t11 = Mat.quad t 1 1 in
      let b00 = Mat.quad b 0 0
      and b01 = Mat.quad b 0 1
      and b10 = Mat.quad b 1 0
      and b11 = Mat.quad b 1 1 in
      let mms x target =
        (* target -= T10 * x, where x is the just-solved block *)
        Matmul.mm_tree ~variant:mm_variant ~sign:(-1.) ~base target t10 x
      in
      let src =
        Spawn_tree.par
          [
            Spawn_tree.fire ~rule:tm_rule (go t00 b00) (mms b00 b10);
            Spawn_tree.fire ~rule:tm_rule (go t00 b01) (mms b01 b11);
          ]
      in
      let snk = Spawn_tree.par [ go t11 b10; go t11 b11 ] in
      Spawn_tree.fire ~rule:top_rule src snk
  in
  go t b

(* Right solve X T^T = B: columns of B are sequential, rows independent.
   src solves the left half of B against T00 and applies the (transposed)
   T10 updates to the right half; snk solves the right half against T11. *)
let trsr_tree ~base t b =
  if t.Mat.rows <> t.Mat.cols || b.Mat.cols <> t.Mat.rows || b.Mat.rows <> b.Mat.cols
  then invalid_arg "Trs.trsr_tree: T, B must be square and equal size";
  Workload.validate_shape ~n:t.Mat.rows ~base;
  let rec go t b =
    if t.Mat.rows <= base then trs_leaf ~kind:`Right t b
    else
      let t00 = Mat.quad t 0 0 and t10 = Mat.quad t 1 0 and t11 = Mat.quad t 1 1 in
      let b00 = Mat.quad b 0 0
      and b01 = Mat.quad b 0 1
      and b10 = Mat.quad b 1 0
      and b11 = Mat.quad b 1 1 in
      let mms x target =
        (* target -= x * T10^T, where x is the just-solved block *)
        Matmul.mm_nt_tree ~variant:Matmul.Safe ~sign:(-1.) ~base target x t10
      in
      let src =
        Spawn_tree.par
          [
            Spawn_tree.fire ~rule:"TM1" (go t00 b00) (mms b00 b01);
            Spawn_tree.fire ~rule:"TM1" (go t00 b10) (mms b10 b11);
          ]
      in
      let snk = Spawn_tree.par [ go t11 b01; go t11 b11 ] in
      Spawn_tree.fire ~rule:"2TMR2T" src snk
  in
  go t b

let make_workload ~right ?(variant = Corrected) ~n ~base ~seed () =
  Workload.validate_shape ~n ~base;
  let space = Mat.create_space () in
  let t = Mat.alloc space ~rows:n ~cols:n in
  let b = Mat.alloc space ~rows:n ~cols:n in
  let reference = Mat.alloc (Mat.create_space ()) ~rows:n ~cols:n in
  let reset () =
    let rng = Nd_util.Prng.create seed in
    Kernels.fill_lower_triangular t rng;
    Kernels.fill_uniform b rng ~lo:0. ~hi:1.;
    Mat.copy_contents ~src:b ~dst:reference;
    if right then Kernels.trs_right t reference else Kernels.trs_left t reference
  in
  let tree =
    if right then trsr_tree ~base t b else trs_tree ~variant ~base t b
  in
  {
    Workload.name = (if right then "trsr" else "trs");
    n;
    base;
    tree;
    registry = Rules.registry;
    reset;
    check = (fun () -> Mat.max_abs_diff b reference);
  }

let workload ?variant ~n ~base ~seed () =
  make_workload ~right:false ?variant ~n ~base ~seed ()

let workload_right ~n ~base ~seed () =
  make_workload ~right:true ~n ~base ~seed ()
