(** Triangular system solver in the ND model (Section 3 of the paper,
    Eq. 4 and Figure 6).

    [TRS(T, B)] overwrites [B] with the solution [X] of [T X = B], [T]
    lower triangular.  The left-solve recursion splits [B] into quadrants:
    the top half solves against [T00] while the [T10]-updates fire the
    bottom-half solves ("⇝2TM2T" / "⇝TM" / "⇝MT").

    Two MT variants are available: [Corrected] (default, determinacy-race
    free — used by every experiment) and [Literal] (the paper's printed
    Eq. 8 third block, which our race detector rejects; kept so tests and
    the E8 experiment can demonstrate the difference).

    The right-solve [trsr_tree] (solve [X T^T = B] in place) is the panel
    step of Cholesky; its fire types are ["2TMR2T"] / ["TM1"] / ["MTR"]. *)

type variant = Literal | Corrected

(** [trs_tree ?variant ?unit ~base t b] — spawn tree overwriting [b] with
    [t^-1 b].  Both square, power-of-two, [b.rows = t.rows].  With [unit]
    the stored diagonal of [t] is ignored and treated as 1 (LU's packed
    L factor). *)
val trs_tree :
  ?variant:variant -> ?unit:bool -> base:int -> Mat.t -> Mat.t ->
  Nd.Spawn_tree.t

(** [trsr_tree ~base t b] — spawn tree overwriting [b] with [b t^-T]. *)
val trsr_tree : base:int -> Mat.t -> Mat.t -> Nd.Spawn_tree.t

(** [workload ?variant ~n ~base ~seed ()] — left solve with a
    well-conditioned random lower-triangular [t] and random [b]. *)
val workload :
  ?variant:variant -> n:int -> base:int -> seed:int -> unit -> Workload.t

(** [workload_right ~n ~base ~seed ()] — the right solve. *)
val workload_right : n:int -> base:int -> seed:int -> unit -> Workload.t
