type t = {
  name : string;
  n : int;
  base : int;
  tree : Nd.Spawn_tree.t;
  registry : Nd.Fire_rule.registry;
  reset : unit -> unit;
  check : unit -> float;
}

type mode = ND | NP

let mode_name = function ND -> "ND" | NP -> "NP"

let compile ?(mode = ND) w =
  let tree =
    match mode with ND -> w.tree | NP -> Nd.Spawn_tree.serialize_fires w.tree
  in
  Nd.Program.compile ~registry:w.registry tree

let pow2 x = x > 0 && x land (x - 1) = 0

let validate_shape ~n ~base =
  if not (pow2 n) then invalid_arg "Workload: n must be a power of two";
  if not (pow2 base) then invalid_arg "Workload: base must be a power of two";
  if base > n then invalid_arg "Workload: base > n"
