(** A packaged algorithm instance: spawn tree + fire rules + concrete data.

    Workloads are what the tests, examples, benchmarks and schedulers all
    consume.  [reset] (re)fills the operands deterministically from the
    instance's seed and recomputes the reference answer with the serial
    kernels; [check] returns the max-abs deviation of the operands from
    that reference, so a full round-trip is:

    [reset w; Serial_exec.run (compile w); assert (check w < tol)] *)

type t = {
  name : string;
  n : int;  (** problem size (matrix dimension / sequence length) *)
  base : int;  (** recursion base-case block size *)
  tree : Nd.Spawn_tree.t;
  registry : Nd.Fire_rule.registry;
  reset : unit -> unit;
  check : unit -> float;
}

(** Which model to compile for: [ND] keeps the fire constructs; [NP]
    serializes them (the paper's nested-parallel baseline). *)
type mode = ND | NP

val mode_name : mode -> string

(** [compile ?mode w] runs the DRS on the workload's tree ([mode] defaults
    to [ND]). *)
val compile : ?mode:mode -> t -> Nd.Program.t

(** [pow2 x] — is [x] a positive power of two? *)
val pow2 : int -> bool

(** [validate_shape ~n ~base] enforces the usual divide-and-conquer
    preconditions: both powers of two, [1 <= base <= n].
    @raise Invalid_argument otherwise. *)
val validate_shape : n:int -> base:int -> unit
