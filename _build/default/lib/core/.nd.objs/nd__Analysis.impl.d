lib/core/analysis.ml: Format Nd_dag Program Spawn_tree
