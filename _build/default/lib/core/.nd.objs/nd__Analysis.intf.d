lib/core/analysis.mli: Fire_rule Format Program Spawn_tree
