lib/core/fire_rule.ml: Format List Map Pedigree Printf String
