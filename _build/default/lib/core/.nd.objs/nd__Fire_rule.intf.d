lib/core/fire_rule.mli: Format Pedigree
