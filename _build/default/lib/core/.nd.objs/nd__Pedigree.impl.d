lib/core/pedigree.ml: Format List Stdlib String
