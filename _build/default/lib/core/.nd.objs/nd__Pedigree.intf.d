lib/core/pedigree.mli: Format
