lib/core/program.ml: Array Fire_rule Hashtbl List Nd_dag Nd_util Pedigree Printf Spawn_tree Strand
