lib/core/program.mli: Fire_rule Nd_dag Nd_util Spawn_tree Strand
