lib/core/rule_check.ml: Array Format List Nd_dag Pedigree Printf Program
