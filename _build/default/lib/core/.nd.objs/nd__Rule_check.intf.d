lib/core/rule_check.mli: Format Nd_dag Pedigree Program
