lib/core/serial_exec.ml: Array List Nd_dag Nd_util Program Spawn_tree Strand
