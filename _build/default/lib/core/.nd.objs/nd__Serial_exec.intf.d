lib/core/serial_exec.mli: Nd_util Program
