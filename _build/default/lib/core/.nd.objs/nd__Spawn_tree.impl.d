lib/core/spawn_tree.ml: Format Hashtbl List Pedigree Strand
