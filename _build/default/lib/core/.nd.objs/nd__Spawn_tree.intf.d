lib/core/spawn_tree.mli: Format Pedigree Strand
