lib/core/strand.ml: Nd_util
