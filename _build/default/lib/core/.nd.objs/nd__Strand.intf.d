lib/core/strand.mli: Nd_util
