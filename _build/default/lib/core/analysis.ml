module Dag = Nd_dag.Dag

type report = {
  work : int;
  span : int;
  parallelism : float;
  n_leaves : int;
  n_vertices : int;
  n_edges : int;
}

let analyze program =
  let dag = Program.dag program in
  let work = Dag.work dag in
  let span = Dag.span dag in
  {
    work;
    span;
    parallelism = (if span = 0 then 0. else float_of_int work /. float_of_int span);
    n_leaves = Program.n_leaves program;
    n_vertices = Dag.n_vertices dag;
    n_edges = Dag.n_edges dag;
  }

let analyze_tree ~registry tree = analyze (Program.compile ~registry tree)

let np_of ~registry tree =
  analyze_tree ~registry (Spawn_tree.serialize_fires tree)

let pp_report ppf r =
  Format.fprintf ppf
    "work=%d span=%d parallelism=%.2f leaves=%d vertices=%d edges=%d" r.work
    r.span r.parallelism r.n_leaves r.n_vertices r.n_edges
