(** Work–span analysis of ND programs.

    Work composes by summation under all three constructs; span is the
    critical path of the algorithm DAG produced by the DRS, which this
    module measures directly rather than by per-construct recurrences (the
    paper notes that the span of a fire composition must be computed from
    its rule set case by case — the DAG is the ground truth). *)

type report = {
  work : int;  (** T_1 *)
  span : int;  (** T_inf: critical path of the algorithm DAG *)
  parallelism : float;  (** T_1 / T_inf *)
  n_leaves : int;
  n_vertices : int;
  n_edges : int;
}

(** [analyze program] measures the compiled program. *)
val analyze : Program.t -> report

(** [analyze_tree ~registry tree] compiles then measures. *)
val analyze_tree : registry:Fire_rule.registry -> Spawn_tree.t -> report

(** [np_of ~registry tree] is the report of the NP projection
    (fires serialized); the registry is still needed to compile, though no
    fire arrows remain. *)
val np_of : registry:Fire_rule.registry -> Spawn_tree.t -> report

val pp_report : Format.formatter -> report -> unit
