module SM = Map.Make (String)

type target = Full | Named of string

type rule = { src : Pedigree.t; via : target; dst : Pedigree.t }

type registry = rule list SM.t

let empty_registry = SM.empty

let define reg name rules =
  if SM.mem name reg then
    invalid_arg (Printf.sprintf "Fire_rule.define: %S already defined" name);
  SM.add name rules reg

let find reg name =
  match SM.find_opt name reg with
  | Some r -> r
  | None -> raise Not_found

let mem reg name = SM.mem name reg

let names reg = List.map fst (SM.bindings reg)

let rule p via q = { src = Pedigree.of_list p; via; dst = Pedigree.of_list q }

let merge a b =
  SM.union
    (fun name ra rb ->
      if ra = rb then Some ra
      else
        invalid_arg
          (Printf.sprintf "Fire_rule.merge: conflicting definitions for %S" name))
    a b

let pp_target ppf = function
  | Full -> Format.pp_print_string ppf ";"
  | Named n -> Format.fprintf ppf "~%s~>" n

let pp_rule ppf r =
  Format.fprintf ppf "+%s %a -%s" (Pedigree.to_string r.src) pp_target r.via
    (Pedigree.to_string r.dst)
