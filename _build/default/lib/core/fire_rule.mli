(** Fire-rule sets: the parameters of the [⇝] construct.

    A fire construct of type [R] between a source [+] and a sink [-] is
    rewritten by the DRS according to the rules registered for [R].  Each
    rule [+p ⇝R' -q] adds a dataflow arrow of type [R'] from the subtask of
    the source at pedigree [p] to the subtask of the sink at pedigree [q];
    arrows of type [R'] are rewritten recursively.  A rule may also demand a
    full serial dependency ([Full], the paper's ";" inside rule bodies).

    The registry is a value (not global state) so that algorithm variants —
    e.g. the paper-literal MM rules vs. the race-free variant — can coexist. *)

type target =
  | Full  (** full dependency: everything in the source subtask precedes
              everything in the sink subtask *)
  | Named of string  (** recursive partial dependency of the given type *)

type rule = { src : Pedigree.t; via : target; dst : Pedigree.t }

type registry

val empty_registry : registry

(** [define reg name rules] registers the rule set for fire type [name].
    @raise Invalid_argument if [name] is already defined. *)
val define : registry -> string -> rule list -> registry

(** [find reg name] returns the rules for [name].
    @raise Not_found if no such fire type was defined. *)
val find : registry -> string -> rule list

val mem : registry -> string -> bool

val names : registry -> string list

(** [rule p via q] is a convenience constructor. *)
val rule : int list -> target -> int list -> rule

(** [merge a b] combines two registries.
    @raise Invalid_argument on a name collision with differing rules. *)
val merge : registry -> registry -> registry

val pp_rule : Format.formatter -> rule -> unit
