type t = int list

let empty = []

let of_list steps =
  List.iter
    (fun s -> if s < 1 then invalid_arg "Pedigree.of_list: steps are 1-based")
    steps;
  steps

let to_list t = t

let append p q = p @ q

let compare = Stdlib.compare

let equal a b = a = b

let to_string t =
  "<" ^ String.concat "." (List.map string_of_int t) ^ ">"

let pp ppf t = Format.pp_print_string ppf (to_string t)
