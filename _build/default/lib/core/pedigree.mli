(** Relative pedigrees.

    A pedigree identifies a nested subtask by the 1-based child indices on
    the path from an ancestor, e.g. the paper's [+©2©1©] is the first
    subtask of the second subtask of the node bound to [+©] and is written
    here as [\[2; 1\]].  On a fire node, step 1 selects the source operand
    and step 2 the sink operand, matching the paper's labelling of the MM
    subtasks (1©1©1© ... 2©2©2©). *)

type t = int list

val empty : t

(** [of_list steps] validates that every step is >= 1. *)
val of_list : int list -> t

val to_list : t -> int list

(** [append p q] is the pedigree reaching [q] below the node reached by
    [p]. *)
val append : t -> t -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** [to_string p] renders like ["<2.1>"]; the empty pedigree is ["<>"]. *)
val to_string : t -> string
