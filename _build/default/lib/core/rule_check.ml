module Race = Nd_dag.Race

type finding = {
  race : Race.race;
  lca : Program.node_id;
  lca_kind : Program.kind;
  src_pedigree : Pedigree.t;
  dst_pedigree : Pedigree.t;
}

let lca program a b =
  (* post-order ids: an ancestor's subtree is the id range
     [first_node, id]; walk up from the later id until it covers both *)
  let rec up n =
    if Program.is_ancestor program n a && Program.is_ancestor program n b then n
    else
      let p = Program.parent program n in
      if p < 0 then n else up p
  in
  up (max a b)

let child_index program ~parent node =
  let cs = Program.children program parent in
  let rec find i =
    if i >= Array.length cs then
      invalid_arg "Rule_check: node not a child of parent"
    else if
      cs.(i) = node || Program.is_ancestor program cs.(i) node
    then i + 1
    else find (i + 1)
  in
  find 0

let pedigree_from program ~ancestor node =
  if not (Program.is_ancestor program ancestor node) then
    invalid_arg "Rule_check.pedigree_from: not an ancestor";
  let rec go cur acc =
    if cur = node then Pedigree.of_list acc
    else
      let step = child_index program ~parent:cur node in
      let cs = Program.children program cur in
      go cs.(step - 1) (acc @ [ step ])
  in
  go ancestor []

let diagnose ?(limit = 16) program =
  let dag = Program.dag program in
  let races = Race.find_races ~limit dag in
  List.map
    (fun (r : Race.race) ->
      let nu = Program.vertex_owner program r.Race.u in
      let nv = Program.vertex_owner program r.Race.v in
      let anc = lca program nu nv in
      (* orient source = the strand earlier in DFS (leaf) order *)
      let lo, hi = if nu <= nv then (nu, nv) else (nv, nu) in
      {
        race = r;
        lca = anc;
        lca_kind = Program.kind_of program anc;
        src_pedigree = pedigree_from program ~ancestor:anc lo;
        dst_pedigree = pedigree_from program ~ancestor:anc hi;
      })
    races

let pp_finding program ppf f =
  let dag = Program.dag program in
  let kind_str =
    match f.lca_kind with
    | Program.Leaf _ -> "leaf"
    | Program.Seq -> "seq"
    | Program.Par -> "par"
    | Program.Fire r -> Printf.sprintf "fire %S" r
  in
  Format.fprintf ppf
    "%a@,  unordered under %s node #%d: needs an arrow +%s -> -%s"
    (Race.pp_race dag) f.race kind_str f.lca
    (Pedigree.to_string f.src_pedigree)
    (Pedigree.to_string f.dst_pedigree)
