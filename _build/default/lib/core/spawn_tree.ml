type t =
  | Leaf of Strand.t
  | Seq of t list
  | Par of t list
  | Fire of { rule : string; src : t; snk : t }

let leaf s = Leaf s

let seq = function
  | [] -> invalid_arg "Spawn_tree.seq: empty"
  | [ x ] -> x
  | l -> Seq l

let par = function
  | [] -> invalid_arg "Spawn_tree.par: empty"
  | [ x ] -> x
  | l -> Par l

let fire ~rule src snk = Fire { rule; src; snk }

let child t i =
  match t with
  | Leaf _ -> raise Not_found
  | Seq l | Par l -> ( try List.nth l (i - 1) with Failure _ -> raise Not_found)
  | Fire { src; snk; _ } ->
    if i = 1 then src else if i = 2 then snk else raise Not_found

let resolve t p =
  let rec go t = function
    | [] -> (t, [])
    | step :: rest as pending -> (
      match child t step with
      | c -> go c rest
      | exception Not_found -> (t, pending))
  in
  go t (Pedigree.to_list p)

let rec n_leaves = function
  | Leaf _ -> 1
  | Seq l | Par l -> List.fold_left (fun acc c -> acc + n_leaves c) 0 l
  | Fire { src; snk; _ } -> n_leaves src + n_leaves snk

let rec depth = function
  | Leaf _ -> 1
  | Seq l | Par l -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 l
  | Fire { src; snk; _ } -> 1 + max (depth src) (depth snk)

let rec work = function
  | Leaf s -> s.Strand.work
  | Seq l | Par l -> List.fold_left (fun acc c -> acc + work c) 0 l
  | Fire { src; snk; _ } -> work src + work snk

let rec serialize_fires = function
  | Leaf _ as t -> t
  | Seq l -> Seq (List.map serialize_fires l)
  | Par l -> Par (List.map serialize_fires l)
  | Fire { src; snk; _ } -> Seq [ serialize_fires src; serialize_fires snk ]

let rec parallelize_fires = function
  | Leaf _ as t -> t
  | Seq l -> Seq (List.map parallelize_fires l)
  | Par l -> Par (List.map parallelize_fires l)
  | Fire { src; snk; _ } -> Par [ parallelize_fires src; parallelize_fires snk ]

let fire_types t =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Leaf _ -> ()
    | Seq l | Par l -> List.iter go l
    | Fire { rule; src; snk } ->
      if not (Hashtbl.mem seen rule) then begin
        Hashtbl.add seen rule ();
        acc := rule :: !acc
      end;
      go src;
      go snk
  in
  go t;
  List.rev !acc

let rec pp ppf = function
  | Leaf s -> Format.fprintf ppf "%s" s.Strand.label
  | Seq l ->
    Format.fprintf ppf "(@[%a@])"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ;@ ") pp)
      l
  | Par l ->
    Format.fprintf ppf "(@[%a@])"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ||@ ") pp)
      l
  | Fire { rule; src; snk } ->
    Format.fprintf ppf "(@[%a ~%s~>@ %a@])" pp src rule pp snk
