(** Spawn trees: programs in the NP and ND models.

    Internal nodes are the composition constructs — [Seq] (";"), [Par]
    ("‖") and [Fire] ("⇝", carrying its fire-rule type name) — and leaves
    are strands.  A spawn tree together with a {!Fire_rule.registry}
    determines an algorithm DAG via the DRS (see {!Program}). *)

type t =
  | Leaf of Strand.t
  | Seq of t list
  | Par of t list
  | Fire of { rule : string; src : t; snk : t }

(** Smart constructors. [seq] and [par] require at least one child and
    flatten singleton lists away. *)
val leaf : Strand.t -> t

val seq : t list -> t

val par : t list -> t

val fire : rule:string -> t -> t -> t

(** [child t i] is the [i]-th (1-based) subtask: for [Fire], 1 = source and
    2 = sink.  @raise Not_found if out of range or [t] is a leaf. *)
val child : t -> int -> t

(** [resolve t p] follows pedigree [p] as deep as it goes and returns the
    reached node together with the unconsumed suffix of [p].  The suffix is
    non-empty only when a step was out of range or a leaf was reached early
    (the DRS then attaches the arrow at the deepest node, per the paper's
    convention that arrows incident to leaves are full dependencies). *)
val resolve : t -> Pedigree.t -> t * Pedigree.t

(** [n_leaves t] counts strands. *)
val n_leaves : t -> int

(** [depth t] is the height of the tree (a leaf has depth 1). *)
val depth : t -> int

(** [work t] is the total strand work (T_1 composition rule: summation for
    all three constructs). *)
val work : t -> int

(** [serialize_fires t] is the NP projection: every [Fire] becomes
    [Seq \[src; snk\]].  This is how the paper obtains the NP baseline
    variants (replacing "⇝" with ";"). *)
val serialize_fires : t -> t

(** [parallelize_fires t] replaces every [Fire] with [Par \[src; snk\]] —
    the (unsound in general) zero-dependency projection, useful for span
    lower-bound sanity checks in tests. *)
val parallelize_fires : t -> t

(** [fire_types t] lists the distinct fire-rule type names appearing in the
    tree, in first-occurrence order. *)
val fire_types : t -> string list

val pp : Format.formatter -> t -> unit
