module Is = Nd_util.Interval_set

type t = {
  label : string;
  work : int;
  reads : Is.t;
  writes : Is.t;
  action : (unit -> unit) option;
}

let make ~label ~work ~reads ~writes ?action () =
  if work < 0 then invalid_arg "Strand.make: negative work";
  { label; work; reads; writes; action }

let footprint s = Is.union s.reads s.writes

let size s = Is.cardinal (footprint s)

let nop label =
  { label; work = 0; reads = Is.empty; writes = Is.empty; action = None }
