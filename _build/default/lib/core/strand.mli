(** Strands: the leaves of a spawn tree.

    A strand is a segment of serial code with no parallel constructs.  For
    analysis and scheduling it is characterized by its work (instruction
    count) and its memory footprint, split into reads and writes over the
    flat global address space managed by the algorithm layer.  For concrete
    multicore execution it optionally carries an action closure performing
    the real computation. *)

type t = {
  label : string;
  work : int;
  reads : Nd_util.Interval_set.t;
  writes : Nd_util.Interval_set.t;
  action : (unit -> unit) option;
}

(** [make ~label ~work ~reads ~writes ()] builds a strand.
    @raise Invalid_argument if [work < 0]. *)
val make :
  label:string ->
  work:int ->
  reads:Nd_util.Interval_set.t ->
  writes:Nd_util.Interval_set.t ->
  ?action:(unit -> unit) ->
  unit ->
  t

(** [footprint s] is the union of reads and writes. *)
val footprint : t -> Nd_util.Interval_set.t

(** [size s] is the number of distinct memory locations accessed. *)
val size : t -> int

(** [nop label] is a zero-work, empty-footprint strand (useful in tests and
    in glue positions). *)
val nop : string -> t
