lib/dag/dag.ml: Array Bytes Char List Nd_util Queue
