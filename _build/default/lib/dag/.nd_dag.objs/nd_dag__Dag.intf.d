lib/dag/dag.mli: Nd_util
