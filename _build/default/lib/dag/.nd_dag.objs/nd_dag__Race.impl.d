lib/dag/race.ml: Dag Format List Nd_util
