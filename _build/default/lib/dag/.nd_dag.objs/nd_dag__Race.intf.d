lib/dag/race.mli: Dag Format Nd_util
