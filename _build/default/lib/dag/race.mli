(** Determinacy-race detection on algorithm DAGs.

    Two vertices race when their footprints conflict (write/write or
    read/write overlap) and neither is an ancestor of the other.  The
    paper's fire-rule sets are supposed to serialize every pair of subtasks
    that write the same region; this module verifies that property for the
    DAGs the DRS produces (experiment E8), and it is how we detected that
    the literal MM rule set from Section 2 of the paper leaves a
    write-write race (see DESIGN.md). *)

type race = {
  u : Dag.vertex_id;
  v : Dag.vertex_id;
  overlap : Nd_util.Interval_set.t;  (** conflicting addresses *)
  write_write : bool;  (** [false] means a read/write conflict *)
}

(** [find_races ?limit dag] returns up to [limit] (default 16) races, or
    [[]] when the DAG is determinacy-race free.  Exact: uses full
    reachability, so subject to {!Dag.reachability}'s size limit. *)
val find_races : ?limit:int -> Dag.t -> race list

(** [race_free dag] is [find_races ~limit:1 dag = \[\]]. *)
val race_free : Dag.t -> bool

val pp_race : Dag.t -> Format.formatter -> race -> unit
