lib/experiments/suite.ml: Array Cholesky Float Fw1d Fw2d Lcs List Lu Matmul Nd Nd_algos Nd_dag Nd_mem Nd_pmh Nd_runtime Nd_sched Nd_util Printf String Trs Unix Workload Workloads
