lib/experiments/suite.mli: Nd_util
