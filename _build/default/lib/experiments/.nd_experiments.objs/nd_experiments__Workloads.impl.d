lib/experiments/workloads.ml: Cholesky Fw1d Fw2d Gotoh Lcs List Lu Matmul Nd_algos Stencil Trs Workload
