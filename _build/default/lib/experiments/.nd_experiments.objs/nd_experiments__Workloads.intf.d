lib/experiments/workloads.mli: Nd_algos
