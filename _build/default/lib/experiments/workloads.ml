open Nd_algos

type family = {
  name : string;
  base : int;
  sizes : int list;
  build : n:int -> base:int -> seed:int -> Workload.t;
}

let cubic_sizes = [ 8; 16; 32; 64 ]

let quad_sizes = [ 32; 64; 128; 256 ]

let all =
  [
    {
      name = "mm";
      base = 2;
      sizes = cubic_sizes;
      build = (fun ~n ~base ~seed -> Matmul.workload ~n ~base ~seed ());
    };
    {
      name = "mm8";
      base = 2;
      sizes = cubic_sizes;
      build = (fun ~n ~base ~seed -> Matmul.workload8 ~n ~base ~seed ());
    };
    {
      name = "trs";
      base = 2;
      sizes = cubic_sizes;
      build = (fun ~n ~base ~seed -> Trs.workload ~n ~base ~seed ());
    };
    {
      name = "cholesky";
      base = 2;
      sizes = cubic_sizes;
      build = (fun ~n ~base ~seed -> Cholesky.workload ~n ~base ~seed ());
    };
    {
      name = "lu";
      base = 2;
      sizes = cubic_sizes;
      build = (fun ~n ~base ~seed -> Lu.workload ~n ~base ~seed ());
    };
    {
      name = "apsp";
      base = 2;
      sizes = [ 8; 16; 32 ];
      build = (fun ~n ~base ~seed -> Fw2d.workload ~n ~base ~seed ());
    };
    {
      name = "fw1d";
      base = 2;
      sizes = quad_sizes;
      build = (fun ~n ~base ~seed -> Fw1d.workload ~n ~base ~seed ());
    };
    {
      name = "stencil";
      base = 4;
      sizes = quad_sizes;
      build = (fun ~n ~base ~seed -> Stencil.workload ~n ~base ~seed ());
    };
    {
      name = "gotoh";
      base = 2;
      sizes = quad_sizes;
      build = (fun ~n ~base ~seed -> Gotoh.workload ~n ~base ~seed ());
    };
    {
      name = "lcs";
      base = 2;
      sizes = quad_sizes;
      build = (fun ~n ~base ~seed -> Lcs.workload ~n ~base ~seed ());
    };
  ]

let find name = List.find (fun f -> f.name = name) all

let names () = List.map (fun f -> f.name) all

let rec last = function
  | [] -> invalid_arg "Workloads.build: no sizes"
  | [ x ] -> x
  | _ :: rest -> last rest

let build ?n ?base family ~seed =
  let n = match n with Some n -> n | None -> last family.sizes in
  let base = match base with Some b -> b | None -> family.base in
  family.build ~n ~base ~seed
