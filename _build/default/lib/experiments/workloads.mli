(** Named workload builders shared by the experiment suite, the CLI and
    the benchmarks. *)

(** A family: name, default base-case size, problem sizes used in sweeps
    (quadratic-work algorithms get larger sizes than cubic ones), and the
    builder. *)
type family = {
  name : string;
  base : int;
  sizes : int list;
  build : n:int -> base:int -> seed:int -> Nd_algos.Workload.t;
}

(** All seven algorithm families of Section 3 (mm, trs, cholesky, lu,
    apsp, fw1d, lcs) plus the 8-way NP matmul (mm8). *)
val all : family list

(** [find name] — @raise Not_found if unknown. *)
val find : string -> family

val names : unit -> string list

(** [build ?n ?base family ~seed] with defaults from the family (largest
    default size). *)
val build : ?n:int -> ?base:int -> family -> seed:int -> Nd_algos.Workload.t
