lib/mem/cache_sim.ml: Hashtbl List Nd Nd_util Program Spawn_tree Strand
