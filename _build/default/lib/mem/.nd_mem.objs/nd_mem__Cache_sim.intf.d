lib/mem/cache_sim.mli: Nd Nd_util
