lib/mem/ecc.ml: Array Float List Nd Nd_dag Nd_util Pcc Program
