lib/mem/ecc.mli: Nd
