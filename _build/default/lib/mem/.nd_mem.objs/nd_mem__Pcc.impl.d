lib/mem/pcc.ml: Array Nd Program
