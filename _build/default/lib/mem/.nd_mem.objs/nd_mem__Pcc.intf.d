lib/mem/pcc.mli: Nd
