module Is = Nd_util.Interval_set
open Nd

(* Fully associative LRU over unit lines: an intrusive doubly-linked
   list threaded through a hashtable.  Cells are recycled on eviction. *)

type cell = {
  addr : int;
  mutable prev : cell option;
  mutable next : cell option;
}

type t = {
  capacity : int;
  table : (int, cell) Hashtbl.t;
  mutable head : cell option;  (* most recent *)
  mutable tail : cell option;  (* least recent *)
  mutable occupancy : int;
  mutable misses : int;
  mutable accesses : int;
}

let create ~m =
  if m < 1 then invalid_arg "Cache_sim.create: m < 1";
  {
    capacity = m;
    table = Hashtbl.create (2 * m);
    head = None;
    tail = None;
    occupancy = 0;
    misses = 0;
    accesses = 0;
  }

let unlink t cell =
  (match cell.prev with
  | Some p -> p.next <- cell.next
  | None -> t.head <- cell.next);
  (match cell.next with
  | Some n -> n.prev <- cell.prev
  | None -> t.tail <- cell.prev);
  cell.prev <- None;
  cell.next <- None

let push_front t cell =
  cell.next <- t.head;
  cell.prev <- None;
  (match t.head with Some h -> h.prev <- Some cell | None -> t.tail <- Some cell);
  t.head <- Some cell

let access t addr =
  t.accesses <- t.accesses + 1;
  match Hashtbl.find_opt t.table addr with
  | Some cell ->
    unlink t cell;
    push_front t cell;
    false
  | None ->
    t.misses <- t.misses + 1;
    if t.occupancy >= t.capacity then begin
      match t.tail with
      | Some victim ->
        unlink t victim;
        Hashtbl.remove t.table victim.addr;
        t.occupancy <- t.occupancy - 1
      | None -> assert false
    end;
    let cell = { addr; prev = None; next = None } in
    Hashtbl.replace t.table addr cell;
    push_front t cell;
    t.occupancy <- t.occupancy + 1;
    true

let access_set t fp =
  let m = ref 0 in
  List.iter
    (fun (lo, hi) ->
      for a = lo to hi - 1 do
        if access t a then incr m
      done)
    (Is.intervals fp);
  !m

let misses t = t.misses

let accesses t = t.accesses

let q1 program ~m =
  let cache = create ~m in
  let rec go tree =
    match tree with
    | Spawn_tree.Leaf s -> ignore (access_set cache (Strand.footprint s))
    | Spawn_tree.Seq l | Spawn_tree.Par l -> List.iter go l
    | Spawn_tree.Fire { src; snk; _ } ->
      go src;
      go snk
  in
  go (Program.tree program);
  misses cache
