(** Serial ideal-cache simulator: a fully associative LRU cache of [m]
    words (unit cache lines, matching the paper's B = 1 simplification).

    Used to measure Q_1 — the cache complexity of the depth-first
    traversal in the ideal cache model [Frigo et al.] — as a cross-check
    on the PCC metric: for the paper's algorithms the two agree within
    constant factors (the data reuse across M-maximal subtasks that Q*
    ignores is a lower-order term; Section 4). *)

type t

(** [create ~m] — an empty LRU cache of capacity [m] words.
    @raise Invalid_argument if [m < 1]. *)
val create : m:int -> t

(** [access t addr] touches one word; returns [true] on a miss. *)
val access : t -> int -> bool

(** [access_set t fp] touches every word of a footprint (in address
    order) and returns the number of misses. *)
val access_set : t -> Nd_util.Interval_set.t -> int

val misses : t -> int

val accesses : t -> int

(** [q1 program ~m] — misses of the depth-first (serial-elision)
    traversal of the program: every strand touches its footprint once. *)
val q1 : Nd.Program.t -> m:int -> int
