module Dag = Nd_dag.Dag
module Is = Nd_util.Interval_set
open Nd

type report = {
  m : int;
  alpha : float;
  q_star : int;
  q_hat : float;
  depth_term : float;
  work_term : float;
  effective_depth : float;
}

(* effective depth of an M-maximal task: ceil(Q*(t')/s^alpha) with
   Q*(t') = s(t') *)
let task_effective_depth size alpha =
  if size = 0 then 0
  else int_of_float (Float.ceil (float_of_int size ** (1. -. alpha)))

(* Contract the algorithm DAG to maximal tasks (weighted by effective
   depth) plus zero-weight glue vertices; the depth-dominated term is its
   longest path. *)
let depth_dominated program ~m ~alpha =
  let d = Program.decompose program ~m in
  let dag = Program.dag program in
  let n_tasks = Array.length d.Program.tasks in
  (* dense ids for glue vertices *)
  let nv = Dag.n_vertices dag in
  let glue_id = Array.make nv (-1) in
  let n_glue_v = ref 0 in
  for v = 0 to nv - 1 do
    if d.Program.task_of_vertex.(v) < 0 then begin
      glue_id.(v) <- n_tasks + !n_glue_v;
      incr n_glue_v
    end
  done;
  let contracted = Dag.create () in
  Array.iter
    (fun t ->
      ignore
        (Dag.add_vertex contracted
           ~work:(task_effective_depth (Program.size program t) alpha)
           ~reads:Is.empty ~writes:Is.empty ()))
    d.Program.tasks;
  for _ = 1 to !n_glue_v do
    ignore (Dag.add_vertex contracted ~work:0 ~reads:Is.empty ~writes:Is.empty ())
  done;
  let node_of v =
    let t = d.Program.task_of_vertex.(v) in
    if t >= 0 then t else glue_id.(v)
  in
  for u = 0 to nv - 1 do
    let cu = node_of u in
    List.iter
      (fun v ->
        let cv = node_of v in
        if cu <> cv then Dag.add_edge contracted cu cv)
      (Dag.succs dag u)
  done;
  float_of_int (Dag.span contracted)

let analyze program ~m ~alpha =
  if alpha < 0. then invalid_arg "Ecc.analyze: negative alpha";
  let q_star = Pcc.q_star program ~m in
  let s_root = Program.size program (Program.root program) in
  let s_alpha = float_of_int s_root ** alpha in
  let work_term = Float.ceil (float_of_int q_star /. s_alpha) in
  let depth_term = depth_dominated program ~m ~alpha in
  let effective_depth = Float.max work_term depth_term in
  {
    m;
    alpha;
    q_star;
    q_hat = effective_depth *. s_alpha;
    depth_term;
    work_term;
    effective_depth;
  }

let q_hat program ~m ~alpha = (analyze program ~m ~alpha).q_hat

let parallelizability program ~m ~c =
  (* Q̂ is monotone in alpha relative to Q*; binary search the threshold *)
  let ok alpha =
    let r = analyze program ~m ~alpha in
    r.q_hat <= c *. float_of_int r.q_star
  in
  if not (ok 0.) then 0.
  else begin
    let lo = ref 0. and hi = ref 1.5 in
    if ok !hi then !hi
    else begin
      for _ = 1 to 9 do
        let mid = (!lo +. !hi) /. 2. in
        if ok mid then lo := mid else hi := mid
      done;
      !lo
    end
  end
