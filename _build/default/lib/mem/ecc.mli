(** Effective Cache Complexity (ECC) — the paper's Q̂_α metric
    (Definition 2) — and the parallelizability α_max derived from it.

    Unroll the spawn tree until every leaf is an M-maximal task; regard
    every dataflow arrow between maximal tasks as a dependence.  The
    effective depth of a maximal task t' is [ceil(Q*(t')/s(t')^α)]
    (= ceil(s(t')^(1-α)) since a maximal task is one tree).  The ECC of
    the whole task t is [s(t)^α] times the max of

    - the {e depth-dominated} term: the maximum over dependence chains of
      maximal tasks of the sum of their effective depths, and
    - the {e work-dominated} term: [ceil(Q*(t; M) / s(t)^α)].

    Because fire arrows shorten the chains, the ND variants of the
    paper's algorithms stay work-dominated up to a larger α than their
    NP projections — that α_max is the algorithm's parallelizability
    (Claims 2 and 3). *)

type report = {
  m : int;
  alpha : float;
  q_star : int;
  q_hat : float;
  depth_term : float;  (** depth-dominated candidate for ⌈Q̂/s^α⌉ *)
  work_term : float;  (** work-dominated candidate *)
  effective_depth : float;  (** the max of the two *)
}

(** [analyze program ~m ~alpha] computes the ECC report.
    @raise Invalid_argument if [m < 1] or [alpha < 0]. *)
val analyze : Nd.Program.t -> m:int -> alpha:float -> report

(** [q_hat program ~m ~alpha] — just the Q̂_α value. *)
val q_hat : Nd.Program.t -> m:int -> alpha:float -> float

(** [parallelizability program ~m ~c] — the largest [alpha] in [0, 1.5]
    (to resolution 1/256) such that [Q̂_α <= c * Q*] — the empirical
    α_max with slack constant [c] (the paper's c_U). *)
val parallelizability : Nd.Program.t -> m:int -> c:float -> float
