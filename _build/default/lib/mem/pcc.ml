open Nd

let q_star_split program ~m =
  let d = Program.decompose program ~m in
  let sizes =
    Array.fold_left (fun acc t -> acc + Program.size program t) 0 d.Program.tasks
  in
  (sizes, d.Program.n_glue)

let q_star program ~m =
  let sizes, glue = q_star_split program ~m in
  sizes + glue
