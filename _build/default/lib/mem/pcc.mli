(** Parallel Cache Complexity (PCC) — the paper's Q* metric.

    Decompose the spawn tree into M-maximal subtasks and glue nodes;
    [Q*(t; M)] is the sum of the sizes of the maximal subtasks plus a
    constant (here 1) per glue node.  It is traversal-order independent
    and is the quantity bounded by Theorem 1 (misses at level j of a PMH
    under a space-bounded scheduler are at most [Q*(t; sigma*M_j)]). *)

(** [q_star program ~m] — the PCC at cache size [m].
    @raise Invalid_argument if [m < 1]. *)
val q_star : Nd.Program.t -> m:int -> int

(** [q_star_split program ~m] returns [(sum_of_task_sizes, n_glue)]. *)
val q_star_split : Nd.Program.t -> m:int -> int * int
