lib/pmh/pmh.ml: Array Float Printf String
