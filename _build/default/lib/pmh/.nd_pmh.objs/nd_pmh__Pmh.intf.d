lib/pmh/pmh.mli:
