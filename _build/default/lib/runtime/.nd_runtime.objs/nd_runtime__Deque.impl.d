lib/runtime/deque.ml: Array Atomic
