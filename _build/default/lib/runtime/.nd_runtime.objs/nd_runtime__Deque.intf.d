lib/runtime/deque.mli:
