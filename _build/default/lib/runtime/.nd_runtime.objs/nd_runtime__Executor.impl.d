lib/runtime/executor.ml: Array Atomic Deque Domain List Nd Nd_dag Program Spawn_tree Strand
