lib/runtime/executor.mli: Nd
