(* Chase & Lev, "Dynamic circular work-stealing deque" (SPAA 2005),
   adapted to OCaml 5 atomics (which are sequentially consistent, so the
   fence subtleties of the original are not needed). *)

type 'a buffer = { mask : int; data : 'a option array }

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a buffer Atomic.t;
}

let make_buffer cap = { mask = cap - 1; data = Array.make cap None }

let create () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (make_buffer 16);
  }

let buf_get b i = b.data.(i land b.mask)

let buf_set b i x = b.data.(i land b.mask) <- x

(* owner only *)
let grow t b top bottom =
  let nb = make_buffer (2 * (b.mask + 1)) in
  for i = top to bottom - 1 do
    buf_set nb i (buf_get b i)
  done;
  Atomic.set t.buf nb;
  nb

let push t x =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let buf = Atomic.get t.buf in
  let buf = if b - tp > buf.mask then grow t buf tp b else buf in
  buf_set buf b (Some x);
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* empty: restore *)
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let buf = Atomic.get t.buf in
    let x = buf_get buf b in
    if b > tp then x
    else begin
      (* last element: race with thieves *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then x else None
    end
  end

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    let buf = Atomic.get t.buf in
    let x = buf_get buf tp in
    if Atomic.compare_and_set t.top tp (tp + 1) then x else None
  end

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)
