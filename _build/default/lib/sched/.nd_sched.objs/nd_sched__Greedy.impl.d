lib/sched/greedy.ml: Array List Nd Nd_dag Nd_util Program Queue
