lib/sched/greedy.mli: Nd
