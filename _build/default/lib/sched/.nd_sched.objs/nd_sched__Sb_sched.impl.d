lib/sched/sb_sched.ml: Array Float Format Hashtbl Lazy List Nd Nd_dag Nd_mem Nd_pmh Nd_util Printf Program Queue Strand String
