lib/sched/sb_sched.mli: Format Nd Nd_pmh
