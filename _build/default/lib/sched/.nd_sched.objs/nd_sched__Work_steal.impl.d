lib/sched/work_steal.ml: Array Format List Nd Nd_dag Nd_mem Nd_pmh Nd_util Program String
