lib/sched/work_steal.mli: Format Nd Nd_pmh
