lib/util/heap.ml: Array
