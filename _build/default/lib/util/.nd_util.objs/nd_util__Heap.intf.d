lib/util/heap.mli:
