lib/util/interval_set.mli: Format
