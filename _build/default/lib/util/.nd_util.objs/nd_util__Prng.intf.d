lib/util/prng.mli:
