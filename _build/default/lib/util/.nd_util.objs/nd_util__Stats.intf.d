lib/util/stats.mli:
