lib/util/table.mli:
