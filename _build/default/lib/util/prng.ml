(* SplitMix64 (Steele, Lea, Flood; JDK SplittableRandom).  State is a single
   64-bit counter advanced by the golden-gamma; output is a finalizer hash. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = next_int64 t in
  { state = s }

(* keep 62 bits: OCaml's native int has 63, so a 63-bit value could set
   the sign bit after Int64.to_int truncation *)
let next t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  (* rejection sampling to avoid modulo bias *)
  let rec go () =
    let r = next t in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let float t = float_of_int (next t) /. float_of_int max_int

let bool t = Int64.logand (next_int64 t) 1L = 1L
