(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every stochastic component of the library (work-stealing victim choice,
    synthetic workload generation, property-test inputs) draws from an
    explicit [Prng.t] so that simulations are reproducible from a seed. *)

type t

(** [create seed] makes a generator from a 64-bit seed. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] advances [t] and returns a statistically independent child
    generator (for deterministic parallel streams). *)
val split : t -> t

(** [next t] returns the next raw 62-bit non-negative integer. *)
val next : t -> int

(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool
