let mean l =
  match l with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let stdev l =
  match l with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean l in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. l in
    sqrt (ss /. float_of_int (List.length l - 1))

let geomean l =
  match l with
  | [] -> invalid_arg "Stats.geomean: empty"
  | _ ->
    let s = List.fold_left (fun acc x -> acc +. log x) 0. l in
    exp (s /. float_of_int (List.length l))

let linear_fit xs ys =
  let n = List.length xs in
  if n < 2 || n <> List.length ys then
    invalid_arg "Stats.linear_fit: need >= 2 matched points";
  let fn = float_of_int n in
  let sx = List.fold_left ( +. ) 0. xs and sy = List.fold_left ( +. ) 0. ys in
  let sxy = List.fold_left2 (fun acc x y -> acc +. (x *. y)) 0. xs ys in
  let sxx = List.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if denom = 0. then invalid_arg "Stats.linear_fit: degenerate xs";
  let slope = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. fn in
  let ybar = sy /. fn in
  let ss_tot = List.fold_left (fun acc y -> acc +. ((y -. ybar) ** 2.)) 0. ys in
  let ss_res =
    List.fold_left2
      (fun acc x y ->
        let fy = (slope *. x) +. intercept in
        acc +. ((y -. fy) ** 2.))
      0. xs ys
  in
  let r2 = if ss_tot = 0. then 1. else 1. -. (ss_res /. ss_tot) in
  (slope, intercept, r2)

let power_fit xs ys =
  if List.exists (fun x -> x <= 0.) xs || List.exists (fun y -> y <= 0.) ys
  then invalid_arg "Stats.power_fit: non-positive point";
  let lx = List.map log xs and ly = List.map log ys in
  let slope, intercept, r2 = linear_fit lx ly in
  (slope, exp intercept, r2)

let ratio_trend xs ys f = List.map2 (fun x y -> y /. f x) xs ys

let spread l =
  match l with
  | [] -> invalid_arg "Stats.spread: empty"
  | _ ->
    let mn = List.fold_left min (List.hd l) l in
    let mx = List.fold_left max (List.hd l) l in
    if mn <= 0. then invalid_arg "Stats.spread: non-positive minimum";
    mx /. mn
