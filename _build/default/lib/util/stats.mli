(** Small statistics toolkit for the experiment harness: summary statistics
    and least-squares fits used to recover asymptotic growth exponents from
    measured spans, cache complexities and simulated running times. *)

val mean : float list -> float

val stdev : float list -> float

val geomean : float list -> float

(** [linear_fit xs ys] returns [(slope, intercept, r2)] of the ordinary
    least-squares line through the points.
    @raise Invalid_argument on fewer than two points or length mismatch. *)
val linear_fit : float list -> float list -> float * float * float

(** [power_fit xs ys] fits [y = c * x^e] by linear regression in log-log
    space and returns [(e, c, r2)].  Points with non-positive coordinates
    are rejected with [Invalid_argument]. *)
val power_fit : float list -> float list -> float * float * float

(** [ratio_trend xs ys f] returns the list of [y /. f x] — the standard way
    we check a measured quantity against a claimed growth [f]: the ratios
    should be flat (bounded above and below by constants). *)
val ratio_trend : float list -> float list -> (float -> float) -> float list

(** [spread l] is [max l /. min l] — flatness measure of a ratio trend.
    @raise Invalid_argument on an empty list or non-positive minimum. *)
val spread : float list -> float
