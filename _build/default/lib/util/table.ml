type t = {
  title : string;
  headers : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title headers = { title; headers; rows = [] }

let add_row t cells = t.rows <- cells :: t.rows

let cell_int = string_of_int

let cell_float ?(prec = 3) f = Printf.sprintf "%.*f" prec f

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length t.headers) rows
  in
  let pad r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = pad t.headers :: List.map pad rows in
  let widths =
    List.init ncols (fun i ->
        List.fold_left (fun acc r -> max acc (String.length (List.nth r i))) 0 all)
  in
  let buf = Buffer.create 1024 in
  let line ch =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) ch)) widths;
    Buffer.add_string buf "+\n"
  in
  let row cells =
    List.iter2
      (fun w c -> Buffer.add_string buf (Printf.sprintf "| %-*s " w c))
      widths cells;
    Buffer.add_string buf "|\n"
  in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n" t.title);
  line '-';
  row (pad t.headers);
  line '=';
  List.iter (fun r -> row r) (List.map pad rows);
  line '-';
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
