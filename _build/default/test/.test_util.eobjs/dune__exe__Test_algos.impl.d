test/test_algos.ml: Alcotest Cholesky Format Fw1d Fw2d Gotoh Lcs List Lu Matmul Nd Nd_algos Nd_dag Nd_util Printf QCheck2 QCheck_alcotest Stencil Trs Workload
