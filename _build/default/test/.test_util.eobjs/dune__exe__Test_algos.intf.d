test/test_algos.mli:
