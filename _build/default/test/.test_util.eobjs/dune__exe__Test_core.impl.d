test/test_core.ml: Alcotest Analysis Array Fire_rule Gen List Nd Nd_dag Nd_util Pedigree Program QCheck2 QCheck_alcotest Rule_check Spawn_tree Strand String
