test/test_core.mli:
