test/test_dag.ml: Alcotest Array List Nd_dag Nd_util
