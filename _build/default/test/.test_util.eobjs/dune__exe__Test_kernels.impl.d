test/test_kernels.ml: Alcotest Float Kernels Mat Nd_algos Nd_util
