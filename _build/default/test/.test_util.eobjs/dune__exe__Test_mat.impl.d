test/test_mat.ml: Alcotest Mat Nd_algos Nd_util
