test/test_mat.mli:
