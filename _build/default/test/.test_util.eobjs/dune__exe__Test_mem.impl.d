test/test_mem.ml: Alcotest Cholesky Fire_rule Lcs List Matmul Nd Nd_algos Nd_mem Nd_util Printf Program Spawn_tree Strand Trs
