test/test_mem.mli:
