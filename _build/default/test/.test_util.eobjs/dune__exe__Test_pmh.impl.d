test/test_pmh.ml: Alcotest Nd_pmh
