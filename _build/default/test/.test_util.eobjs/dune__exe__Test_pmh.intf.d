test/test_pmh.mli:
