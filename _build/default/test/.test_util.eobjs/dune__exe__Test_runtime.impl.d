test/test_runtime.ml: Alcotest Atomic Cholesky Domain Fw1d Fw2d Lcs List Lu Matmul Nd_algos Nd_runtime Trs Workload
