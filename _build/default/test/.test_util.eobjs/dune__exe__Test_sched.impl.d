test/test_sched.ml: Alcotest Array Cholesky Fw1d Fw2d Lcs List Lu Matmul Nd_algos Nd_mem Nd_pmh Nd_sched Trs Workload
