test/test_util.ml: Alcotest Array List Nd_util QCheck2 QCheck_alcotest String
