module Prng = Nd_util.Prng
open Nd_algos

(* A workload is correct when (a) its ND DAG is determinacy-race free and
   (b) executing the strands in a randomized topological order reproduces
   the serial reference.  Together these imply every legal schedule —
   including the multicore executors' — computes the right answer. *)
let check_workload ?(orders = 3) ~tol name (w : Workload.t) =
  let p = Workload.compile w in
  (match Nd_dag.Race.find_races ~limit:4 (Nd.Program.dag p) with
  | [] -> ()
  | races ->
    Alcotest.failf "%s: %d races, first: %s" name (List.length races)
      (Format.asprintf "%a" (Nd_dag.Race.pp_race (Nd.Program.dag p))
         (List.hd races)));
  for k = 1 to orders do
    w.Workload.reset ();
    Nd.Serial_exec.run ~rng:(Prng.create (1000 + k)) p;
    let err = w.Workload.check () in
    if err > tol then Alcotest.failf "%s: order %d err %g > %g" name k err tol
  done;
  (* the NP projection must be correct too *)
  let pnp = Workload.compile ~mode:Workload.NP w in
  w.Workload.reset ();
  Nd.Serial_exec.run ~rng:(Prng.create 77) pnp;
  let err = w.Workload.check () in
  if err > tol then Alcotest.failf "%s: NP err %g > %g" name err tol

let spans w =
  let nd = Workload.compile w and np = Workload.compile ~mode:Workload.NP w in
  ( (Nd.Analysis.analyze nd).Nd.Analysis.span,
    (Nd.Analysis.analyze np).Nd.Analysis.span,
    (Nd.Analysis.analyze nd).Nd.Analysis.work,
    (Nd.Analysis.analyze np).Nd.Analysis.work )

let test_correct name mk tol () = check_workload ~tol name (mk ())

let test_nd_span_le_np mk () =
  let snd_, snp, wnd, wnp = spans (mk ()) in
  Alcotest.(check int) "work preserved by projection" wnd wnp;
  Alcotest.(check bool)
    (Printf.sprintf "span ND (%d) <= span NP (%d)" snd_ snp)
    true (snd_ <= snp)

(* the paper's span separations at a fixed size: strict improvements *)
let test_strict_separation () =
  let strict mk =
    let snd_, snp, _, _ = spans (mk ()) in
    Alcotest.(check bool) "strictly better" true (snd_ < snp)
  in
  strict (fun () -> Trs.workload ~n:32 ~base:2 ~seed:5 ());
  strict (fun () -> Cholesky.workload ~n:32 ~base:2 ~seed:5 ());
  strict (fun () -> Lcs.workload ~n:64 ~base:2 ~seed:5 ());
  strict (fun () -> Fw1d.workload ~n:64 ~base:2 ~seed:5 ());
  strict (fun () -> Gotoh.workload ~n:64 ~base:2 ~seed:5 ())

(* ND spans grow linearly: doubling n at most ~doubles the span *)
let test_linear_span_growth () =
  let ratio mk_small mk_big =
    let s1, _, _, _ = spans (mk_small ()) in
    let s2, _, _, _ = spans (mk_big ()) in
    float_of_int s2 /. float_of_int s1
  in
  let check name r =
    if r > 2.5 then Alcotest.failf "%s: span ratio %.2f superlinear" name r
  in
  check "trs"
    (ratio
       (fun () -> Trs.workload ~n:16 ~base:2 ~seed:1 ())
       (fun () -> Trs.workload ~n:32 ~base:2 ~seed:1 ()));
  check "cholesky"
    (ratio
       (fun () -> Cholesky.workload ~n:16 ~base:2 ~seed:1 ())
       (fun () -> Cholesky.workload ~n:32 ~base:2 ~seed:1 ()));
  check "lcs"
    (ratio
       (fun () -> Lcs.workload ~n:64 ~base:2 ~seed:1 ())
       (fun () -> Lcs.workload ~n:128 ~base:2 ~seed:1 ()));
  check "fw1d"
    (ratio
       (fun () -> Fw1d.workload ~n:64 ~base:2 ~seed:1 ())
       (fun () -> Fw1d.workload ~n:128 ~base:2 ~seed:1 ()))

(* the paper-literal rule sets must be flagged as racy *)
let test_literal_rules_racy () =
  let racy name w =
    let p = Workload.compile w in
    Alcotest.(check bool) (name ^ " literal is racy") false
      (Nd_dag.Race.race_free (Nd.Program.dag p))
  in
  racy "mm" (Matmul.workload ~variant:Matmul.Literal ~n:16 ~base:2 ~seed:2 ());
  racy "trs" (Trs.workload ~variant:Trs.Literal ~n:16 ~base:2 ~seed:2 ());
  racy "lcs" (Lcs.workload ~variant:`Literal ~n:16 ~base:2 ~seed:2 ());
  racy "fw1d" (Fw1d.workload ~variant:`Literal ~n:16 ~base:2 ~seed:2 ())

let test_mm8_span_much_smaller () =
  let w8 = Matmul.workload8 ~n:32 ~base:2 ~seed:3 () in
  let w2 = Matmul.workload ~n:32 ~base:2 ~seed:3 () in
  let s8, _, _, _ = spans w8 and s2, _, _, _ = spans w2 in
  Alcotest.(check bool)
    (Printf.sprintf "8-way span %d < 2-way span %d / 4" s8 s2)
    true
    (s8 * 4 < s2)

let test_shape_validation () =
  Alcotest.check_raises "n not pow2"
    (Invalid_argument "Workload: n must be a power of two") (fun () ->
      ignore (Matmul.workload ~n:12 ~base:2 ~seed:1 ()));
  Alcotest.check_raises "base > n" (Invalid_argument "Workload: base > n")
    (fun () -> ignore (Matmul.workload ~n:4 ~base:8 ~seed:1 ()));
  Alcotest.check_raises "lu base = n"
    (Invalid_argument "Lu.workload: base must be smaller than n for a panel chain")
    (fun () -> ignore (Lu.workload ~n:8 ~base:8 ~seed:1 ()))

(* property: every family correct across a few random sizes/seeds *)
let prop_random_instances =
  QCheck2.Test.make ~name:"random instances execute correctly" ~count:12
    QCheck2.Gen.(
      pair (int_range 0 6) (int_range 1 1000))
    (fun (which, seed) ->
      let w, tol =
        match which with
        | 0 -> (Matmul.workload ~n:8 ~base:2 ~seed (), 1e-9)
        | 1 -> (Trs.workload ~n:8 ~base:2 ~seed (), 1e-8)
        | 2 -> (Cholesky.workload ~n:8 ~base:2 ~seed (), 1e-8)
        | 3 -> (Lu.workload ~n:8 ~base:2 ~seed (), 1e-8)
        | 4 -> (Lcs.workload ~n:16 ~base:2 ~seed (), 0.)
        | 5 -> (Fw1d.workload ~n:16 ~base:2 ~seed (), 0.)
        | _ -> (Fw2d.workload ~n:8 ~base:2 ~seed (), 1e-12)
      in
      let p = Workload.compile w in
      w.Workload.reset ();
      Nd.Serial_exec.run ~rng:(Prng.create seed) p;
      w.Workload.check () <= tol)

let correctness_cases =
  [
    ("mm n=16 b=2", (fun () -> Matmul.workload ~n:16 ~base:2 ~seed:11 ()), 1e-9);
    ("mm n=16 b=4", (fun () -> Matmul.workload ~n:16 ~base:4 ~seed:12 ()), 1e-9);
    ("mm n=16 b=16 (single leaf)",
     (fun () -> Matmul.workload ~n:16 ~base:16 ~seed:13 ()), 1e-9);
    ("mm8 n=16", (fun () -> Matmul.workload8 ~n:16 ~base:2 ~seed:14 ()), 1e-9);
    ("trs n=16", (fun () -> Trs.workload ~n:16 ~base:2 ~seed:15 ()), 1e-8);
    ("trsr n=16", (fun () -> Trs.workload_right ~n:16 ~base:2 ~seed:16 ()), 1e-8);
    ("cholesky n=16", (fun () -> Cholesky.workload ~n:16 ~base:2 ~seed:17 ()), 1e-8);
    ("lu n=16", (fun () -> Lu.workload ~n:16 ~base:2 ~seed:18 ()), 1e-8);
    ("lu n=16 b=4", (fun () -> Lu.workload ~n:16 ~base:4 ~seed:19 ()), 1e-8);
    ("lcs n=32", (fun () -> Lcs.workload ~n:32 ~base:2 ~seed:20 ()), 0.);
    ("lcs n=32 b=8", (fun () -> Lcs.workload ~n:32 ~base:8 ~seed:21 ()), 0.);
    ("fw1d n=32", (fun () -> Fw1d.workload ~n:32 ~base:2 ~seed:22 ()), 0.);
    ("gotoh n=32", (fun () -> Gotoh.workload ~n:32 ~base:2 ~seed:25 ()), 0.);
    ("stencil n=32", (fun () -> Stencil.workload ~n:32 ~base:4 ~seed:27 ()), 0.);
    ("stencil n=32 b=16", (fun () -> Stencil.workload ~n:32 ~base:16 ~seed:28 ()), 0.);
    ("gotoh n=32 b=8", (fun () -> Gotoh.workload ~n:32 ~base:8 ~seed:26 ()), 0.);
    ("apsp n=16", (fun () -> Fw2d.workload ~n:16 ~base:2 ~seed:23 ()), 1e-12);
    ("apsp n=16 b=4", (fun () -> Fw2d.workload ~n:16 ~base:4 ~seed:24 ()), 1e-12);
  ]

let () =
  let correctness =
    List.map
      (fun (name, mk, tol) ->
        Alcotest.test_case name `Quick (test_correct name mk tol))
      correctness_cases
  in
  let span_cases =
    List.map
      (fun (name, mk, _) ->
        Alcotest.test_case name `Quick (test_nd_span_le_np mk))
      correctness_cases
  in
  Alcotest.run "nd_algos"
    [
      ("correctness (race-free + randomized orders)", correctness);
      ("span: ND <= NP", span_cases);
      ( "span separations",
        [
          Alcotest.test_case "strict ND < NP" `Quick test_strict_separation;
          Alcotest.test_case "linear ND growth" `Quick test_linear_span_growth;
          Alcotest.test_case "mm8 polylog span" `Quick test_mm8_span_much_smaller;
        ] );
      ( "rule sets",
        [ Alcotest.test_case "literal sets racy" `Quick test_literal_rules_racy ] );
      ( "validation",
        [ Alcotest.test_case "shape checks" `Quick test_shape_validation ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_random_instances ]);
    ]
