module Is = Nd_util.Interval_set
module Dag = Nd_dag.Dag
open Nd

let strand ?(work = 1) ?(reads = Is.empty) ?(writes = Is.empty) label =
  Spawn_tree.leaf (Strand.make ~label ~work ~reads ~writes ())

(* ---------------------------- pedigree ---------------------------- *)

let test_pedigree () =
  let p = Pedigree.of_list [ 2; 1 ] in
  Alcotest.(check string) "to_string" "<2.1>" (Pedigree.to_string p);
  Alcotest.(check string) "empty" "<>" (Pedigree.to_string Pedigree.empty);
  Alcotest.(check (list int)) "append" [ 2; 1; 3 ]
    (Pedigree.to_list (Pedigree.append p (Pedigree.of_list [ 3 ])));
  Alcotest.(check bool) "equal" true (Pedigree.equal p (Pedigree.of_list [ 2; 1 ]));
  Alcotest.check_raises "0-step rejected"
    (Invalid_argument "Pedigree.of_list: steps are 1-based") (fun () ->
      ignore (Pedigree.of_list [ 0 ]))

(* ---------------------------- strands ----------------------------- *)

let test_strand () =
  let s =
    Strand.make ~label:"s" ~work:3 ~reads:(Is.interval 0 4)
      ~writes:(Is.interval 2 6) ()
  in
  Alcotest.(check int) "size" 6 (Strand.size s);
  Alcotest.(check int) "nop work" 0 (Strand.nop "z").Strand.work;
  Alcotest.check_raises "negative work"
    (Invalid_argument "Strand.make: negative work") (fun () ->
      ignore (Strand.make ~label:"bad" ~work:(-1) ~reads:Is.empty ~writes:Is.empty ()))

(* --------------------------- spawn trees -------------------------- *)

let test_tree_shape () =
  let t = Spawn_tree.seq [ strand "a"; Spawn_tree.par [ strand "b"; strand "c" ] ] in
  Alcotest.(check int) "leaves" 3 (Spawn_tree.n_leaves t);
  Alcotest.(check int) "depth" 3 (Spawn_tree.depth t);
  Alcotest.(check int) "work" 3 (Spawn_tree.work t);
  (* singleton flattening *)
  (match Spawn_tree.seq [ strand "only" ] with
  | Spawn_tree.Leaf _ -> ()
  | _ -> Alcotest.fail "singleton seq not flattened");
  Alcotest.check_raises "empty seq" (Invalid_argument "Spawn_tree.seq: empty")
    (fun () -> ignore (Spawn_tree.seq []))

let test_tree_child_resolve () =
  let f = Spawn_tree.fire ~rule:"R" (strand "x") (strand "y") in
  (match Spawn_tree.child f 1 with
  | Spawn_tree.Leaf s -> Alcotest.(check string) "fire child 1" "x" s.Strand.label
  | _ -> Alcotest.fail "bad child");
  (match Spawn_tree.child f 2 with
  | Spawn_tree.Leaf s -> Alcotest.(check string) "fire child 2" "y" s.Strand.label
  | _ -> Alcotest.fail "bad child");
  let node, rest = Spawn_tree.resolve f (Pedigree.of_list [ 1; 5; 7 ]) in
  (match node with
  | Spawn_tree.Leaf s ->
    Alcotest.(check string) "stops at leaf" "x" s.Strand.label;
    Alcotest.(check (list int)) "suffix" [ 5; 7 ] rest
  | _ -> Alcotest.fail "resolve did not stop at leaf")

let test_projections () =
  let t = Spawn_tree.fire ~rule:"R" (strand "a") (strand "b") in
  (match Spawn_tree.serialize_fires t with
  | Spawn_tree.Seq [ _; _ ] -> ()
  | _ -> Alcotest.fail "serialize");
  (match Spawn_tree.parallelize_fires t with
  | Spawn_tree.Par [ _; _ ] -> ()
  | _ -> Alcotest.fail "parallelize");
  Alcotest.(check (list string)) "fire types" [ "R" ] (Spawn_tree.fire_types t)

(* --------------------------- fire rules --------------------------- *)

let test_registry () =
  let reg =
    Fire_rule.define Fire_rule.empty_registry "R"
      [ Fire_rule.rule [ 1 ] Fire_rule.Full [ 1 ] ]
  in
  Alcotest.(check int) "one rule" 1 (List.length (Fire_rule.find reg "R"));
  Alcotest.(check bool) "mem" true (Fire_rule.mem reg "R");
  Alcotest.(check bool) "not mem" false (Fire_rule.mem reg "S");
  (match Fire_rule.find reg "S" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found");
  Alcotest.check_raises "redefine"
    (Invalid_argument "Fire_rule.define: \"R\" already defined") (fun () ->
      ignore (Fire_rule.define reg "R" []))

let test_registry_merge () =
  let a = Fire_rule.define Fire_rule.empty_registry "A" [] in
  let b = Fire_rule.define Fire_rule.empty_registry "B" [] in
  let m = Fire_rule.merge a b in
  Alcotest.(check (list string)) "names" [ "A"; "B" ] (Fire_rule.names m);
  (* identical duplicate ok *)
  ignore (Fire_rule.merge m a);
  let a' =
    Fire_rule.define Fire_rule.empty_registry "A"
      [ Fire_rule.rule [ 1 ] Fire_rule.Full [ 1 ] ]
  in
  (match Fire_rule.merge a a' with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "conflicting merge accepted")

(* ------------------- the paper's MAIN/F/G example ------------------ *)
(* MAIN = F ~FG~> G; F = A ; B; G = C ; D; rule FG = { +<1> ; -<1> }.
   The algorithm DAG must order A->B, C->D (serial) and A->C (fire),
   so the span with unit strands is 3 (A,C,D), not 4. *)

let main_fg_program () =
  let f = Spawn_tree.seq [ strand "A"; strand "B" ] in
  let g = Spawn_tree.seq [ strand "C"; strand "D" ] in
  let main = Spawn_tree.fire ~rule:"FG" f g in
  let reg =
    Fire_rule.define Fire_rule.empty_registry "FG"
      [ Fire_rule.rule [ 1 ] Fire_rule.Full [ 1 ] ]
  in
  Program.compile ~registry:reg main

let test_main_fg_span () =
  let p = main_fg_program () in
  let r = Analysis.analyze p in
  Alcotest.(check int) "work" 4 r.Analysis.work;
  Alcotest.(check int) "ND span" 3 r.Analysis.span;
  (* NP projection serializes F before G: span 4 *)
  let f = Spawn_tree.seq [ strand "A"; strand "B" ] in
  let g = Spawn_tree.seq [ strand "C"; strand "D" ] in
  let main = Spawn_tree.fire ~rule:"FG" f g in
  let reg =
    Fire_rule.define Fire_rule.empty_registry "FG"
      [ Fire_rule.rule [ 1 ] Fire_rule.Full [ 1 ] ]
  in
  let np = Analysis.np_of ~registry:reg main in
  Alcotest.(check int) "NP span" 4 np.Analysis.span

let leaf_vertex_by_label p label =
  let n = Program.n_leaves p in
  let rec find i =
    if i >= n then Alcotest.failf "no leaf %s" label
    else
      let v = Program.leaf_vertex p i in
      if Dag.label (Program.dag p) v = label then v else find (i + 1)
  in
  find 0

let test_main_fg_edges () =
  let p = main_fg_program () in
  let dag = Program.dag p in
  let a = leaf_vertex_by_label p "A" in
  let b = leaf_vertex_by_label p "B" in
  let c = leaf_vertex_by_label p "C" in
  let d = leaf_vertex_by_label p "D" in
  let r = Dag.reachability dag in
  Alcotest.(check bool) "A->B" true (Dag.reachable r a b);
  Alcotest.(check bool) "C->D" true (Dag.reachable r c d);
  Alcotest.(check bool) "A->C (fire)" true (Dag.reachable r a c);
  Alcotest.(check bool) "B and C unordered" false
    (Dag.reachable r b c || Dag.reachable r c b);
  Alcotest.(check bool) "B and D unordered" false
    (Dag.reachable r b d || Dag.reachable r d b)

let test_undefined_rule_rejected () =
  let t = Spawn_tree.fire ~rule:"nope" (strand "a") (strand "b") in
  match Program.compile ~registry:Fire_rule.empty_registry t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undefined rule accepted"

let test_empty_rules_is_parallel () =
  let reg = Fire_rule.define Fire_rule.empty_registry "PAR" [] in
  let t = Spawn_tree.fire ~rule:"PAR" (strand "a") (strand "b") in
  let r = Analysis.analyze_tree ~registry:reg t in
  Alcotest.(check int) "span 1 = fully parallel" 1 r.Analysis.span

let test_leaf_fire_full () =
  (* non-empty rule set between two strands degrades to a full edge *)
  let reg =
    Fire_rule.define Fire_rule.empty_registry "R"
      [ Fire_rule.rule [ 1 ] (Fire_rule.Named "R") [ 1 ] ]
  in
  let t = Spawn_tree.fire ~rule:"R" (strand "a") (strand "b") in
  let r = Analysis.analyze_tree ~registry:reg t in
  Alcotest.(check int) "span 2 = serialized" 2 r.Analysis.span

(* ------------------- recursive fire rule example ------------------- *)
(* A binary-recursive "diag" pattern: D(n) = D(n/2) ~R~> D(n/2) with
   R = { +<2> ~R~> -<1> }: the second half of the source fires the first
   half of the sink.  At the leaves this gives a chain of length
   ... source-last -> sink-first ..., so span counts src depth + 1 chain. *)

let rec balanced n =
  if n = 1 then strand "u"
  else Spawn_tree.par [ balanced (n / 2); balanced (n / 2) ]

let test_recursive_rule () =
  let reg =
    Fire_rule.define Fire_rule.empty_registry "R"
      [ Fire_rule.rule [ 2 ] (Fire_rule.Named "R") [ 1 ] ]
  in
  let t = Spawn_tree.fire ~rule:"R" (balanced 4) (balanced 4) in
  let r = Analysis.analyze_tree ~registry:reg t in
  (* rewriting: +<2> of source vs -<1> of sink recursively: ends with a
     single leaf-to-leaf edge: last leaf-group of src chains into first of
     sink: span = 2 (one src leaf then one sink leaf). *)
  Alcotest.(check int) "work" 8 r.Analysis.work;
  Alcotest.(check int) "span" 2 r.Analysis.span

let test_no_progress_falls_back_to_full () =
  (* a self-referential rule that never descends must degrade to a full
     dependency rather than loop or drop the edge *)
  let reg =
    Fire_rule.define Fire_rule.empty_registry "LOOP"
      [ Fire_rule.rule [] (Fire_rule.Named "LOOP") [] ]
  in
  let t = Spawn_tree.fire ~rule:"LOOP" (balanced 2) (balanced 2) in
  let r = Analysis.analyze_tree ~registry:reg t in
  Alcotest.(check int) "span serialized" 2 r.Analysis.span

(* --------------------------- rule check ---------------------------- *)

let test_rule_check_clean () =
  let p = main_fg_program () in
  Alcotest.(check int) "no findings" 0 (List.length (Rule_check.diagnose p))

let test_rule_check_finds_missing_rule () =
  (* a fire with an empty rule set over conflicting strands: the race must
     be lifted to that fire node with root-level pedigrees *)
  let w = Is.interval 0 4 in
  let s label = Spawn_tree.leaf (Strand.make ~label ~work:1 ~reads:Is.empty ~writes:w ()) in
  let reg = Fire_rule.define Fire_rule.empty_registry "EMPTY" [] in
  let t = Spawn_tree.fire ~rule:"EMPTY" (s "a") (s "b") in
  let p = Program.compile ~registry:reg t in
  match Rule_check.diagnose p with
  | [ f ] ->
    (match f.Rule_check.lca_kind with
    | Program.Fire "EMPTY" -> ()
    | _ -> Alcotest.fail "lca is not the fire node");
    Alcotest.(check string) "src pedigree" "<1>"
      (Pedigree.to_string f.Rule_check.src_pedigree);
    Alcotest.(check string) "dst pedigree" "<2>"
      (Pedigree.to_string f.Rule_check.dst_pedigree)
  | other -> Alcotest.failf "expected 1 finding, got %d" (List.length other)

let test_pedigree_from () =
  let p = main_fg_program () in
  let root = Program.root p in
  (* leaf 2 = C: inside the fire's sink (child 2), first child of the seq *)
  let c = Program.leaf_node p 2 in
  Alcotest.(check string) "path to C" "<2.1>"
    (Pedigree.to_string (Rule_check.pedigree_from p ~ancestor:root c));
  Alcotest.(check string) "self" "<>"
    (Pedigree.to_string (Rule_check.pedigree_from p ~ancestor:c c));
  Alcotest.(check int) "lca of leaves" root
    (Rule_check.lca p (Program.leaf_node p 0) c)

(* ------------------------- serial executor ------------------------- *)

let test_serial_exec_orders () =
  (* actions record the visit order; dependencies must be respected for
     every random order *)
  let log = ref [] in
  let strand_act label =
    Spawn_tree.leaf
      (Strand.make ~label ~work:1 ~reads:Is.empty ~writes:Is.empty
         ~action:(fun () -> log := label :: !log)
         ())
  in
  let t =
    Spawn_tree.seq
      [ strand_act "1"; Spawn_tree.par [ strand_act "2"; strand_act "3" ];
        strand_act "4" ]
  in
  let p = Program.compile ~registry:Fire_rule.empty_registry t in
  for seed = 1 to 10 do
    log := [];
    Nd.Serial_exec.run ~rng:(Nd_util.Prng.create seed) p;
    match List.rev !log with
    | [ "1"; a; b; "4" ] when (a = "2" && b = "3") || (a = "3" && b = "2") -> ()
    | order -> Alcotest.failf "bad order: %s" (String.concat "," order)
  done;
  (* the DFS variant is deterministic left-to-right *)
  log := [];
  Nd.Serial_exec.run_sequential p;
  Alcotest.(check (list string)) "dfs order" [ "1"; "2"; "3"; "4" ]
    (List.rev !log)

(* --------------------------- program ------------------------------ *)

let test_program_structure () =
  let p = main_fg_program () in
  Alcotest.(check int) "leaves" 4 (Program.n_leaves p);
  let root = Program.root p in
  Alcotest.(check int) "root parent" (-1) (Program.parent p root);
  (match Program.kind_of p root with
  | Program.Fire "FG" -> ()
  | _ -> Alcotest.fail "root kind");
  Alcotest.(check (pair int int)) "root leaf range" (0, 4)
    (Program.leaf_range p root);
  let cs = Program.children p root in
  Alcotest.(check int) "two children" 2 (Array.length cs);
  Alcotest.(check (pair int int)) "src range" (0, 2) (Program.leaf_range p cs.(0));
  Alcotest.(check (pair int int)) "snk range" (2, 4) (Program.leaf_range p cs.(1));
  Alcotest.(check bool) "ancestry" true (Program.is_ancestor p root cs.(0));
  Alcotest.(check bool) "no reverse ancestry" false
    (Program.is_ancestor p cs.(0) root)

let sized_strand label lo hi =
  Spawn_tree.leaf
    (Strand.make ~label ~work:(hi - lo) ~reads:Is.empty ~writes:(Is.interval lo hi) ())

let test_footprint_size () =
  let t =
    Spawn_tree.seq
      [ sized_strand "a" 0 4; sized_strand "b" 2 6; sized_strand "c" 10 12 ]
  in
  let reg = Fire_rule.empty_registry in
  let p = Program.compile ~registry:reg t in
  let root = Program.root p in
  Alcotest.(check int) "size of union" 8 (Program.size p root);
  Alcotest.(check int) "work" 10 (Program.work_of_node p root)

let test_decompose () =
  (* Par of 4 strands of size 4 each, disjoint: total 16.
     m = 8: the root (16) is glue; each pair subtree... build binary. *)
  let quad =
    Spawn_tree.par
      [
        Spawn_tree.par [ sized_strand "a" 0 4; sized_strand "b" 4 8 ];
        Spawn_tree.par [ sized_strand "c" 8 12; sized_strand "d" 12 16 ];
      ]
  in
  let p = Program.compile ~registry:Fire_rule.empty_registry quad in
  let d = Program.decompose p ~m:8 in
  Alcotest.(check int) "two maximal tasks" 2 (Array.length d.Program.tasks);
  Alcotest.(check int) "one glue node" 1 d.Program.n_glue;
  Array.iter
    (fun t -> Alcotest.(check int) "task size" 8 (Program.size p t))
    d.Program.tasks;
  (* m large: root is the single task *)
  let d16 = Program.decompose p ~m:16 in
  Alcotest.(check int) "single task" 1 (Array.length d16.Program.tasks);
  Alcotest.(check int) "no glue" 0 d16.Program.n_glue;
  (* m tiny: every leaf is a task *)
  let d1 = Program.decompose p ~m:1 in
  Alcotest.(check int) "four tasks" 4 (Array.length d1.Program.tasks);
  Alcotest.(check int) "three glue" 3 d1.Program.n_glue;
  (* vertices of a task map to it *)
  Array.iteri
    (fun idx task_node ->
      let lo, hi = Program.leaf_range p task_node in
      for i = lo to hi - 1 do
        let v = Program.leaf_vertex p i in
        Alcotest.(check int) "leaf vertex task" idx d1.Program.task_of_vertex.(v)
      done)
    d1.Program.tasks

let test_decompose_invalid () =
  let p = main_fg_program () in
  Alcotest.check_raises "m<1" (Invalid_argument "Program.decompose: m < 1")
    (fun () -> ignore (Program.decompose p ~m:0))

let test_dag_acyclic_property =
  (* random small spawn trees with a simple diagonal rule are acyclic and
     have span between the Par and Seq projections *)
  let open QCheck2 in
  let gen_tree =
    let rec gen depth =
      Gen.(
        if depth = 0 then
          map (fun w -> strand ~work:(1 + w) "s") (int_bound 3)
        else
          frequency
            [
              (2, map (fun w -> strand ~work:(1 + w) "s") (int_bound 3));
              ( 2,
                map2
                  (fun a b -> Spawn_tree.seq [ a; b ])
                  (gen (depth - 1)) (gen (depth - 1)) );
              ( 2,
                map2
                  (fun a b -> Spawn_tree.par [ a; b ])
                  (gen (depth - 1)) (gen (depth - 1)) );
              ( 1,
                map2
                  (fun a b -> Spawn_tree.fire ~rule:"R" a b)
                  (gen (depth - 1)) (gen (depth - 1)) );
            ])
    in
    gen 4
  in
  let reg =
    Fire_rule.define Fire_rule.empty_registry "R"
      [
        Fire_rule.rule [ 1 ] (Fire_rule.Named "R") [ 1 ];
        Fire_rule.rule [ 2 ] (Fire_rule.Named "R") [ 2 ];
      ]
  in
  QCheck2.Test.make ~name:"ND span between Par and Seq projections" ~count:100
    gen_tree (fun t ->
      let nd = Analysis.analyze_tree ~registry:reg t in
      let np = Analysis.np_of ~registry:reg t in
      let par =
        Analysis.analyze_tree ~registry:reg (Spawn_tree.parallelize_fires t)
      in
      nd.Analysis.work = np.Analysis.work
      && nd.Analysis.span <= np.Analysis.span
      && par.Analysis.span <= nd.Analysis.span)

let () =
  Alcotest.run "nd_core"
    [
      ("pedigree", [ Alcotest.test_case "basics" `Quick test_pedigree ]);
      ("strand", [ Alcotest.test_case "basics" `Quick test_strand ]);
      ( "spawn_tree",
        [
          Alcotest.test_case "shape" `Quick test_tree_shape;
          Alcotest.test_case "child/resolve" `Quick test_tree_child_resolve;
          Alcotest.test_case "projections" `Quick test_projections;
        ] );
      ( "fire_rule",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "merge" `Quick test_registry_merge;
        ] );
      ( "drs",
        [
          Alcotest.test_case "MAIN/F/G span (paper fig 3-4)" `Quick
            test_main_fg_span;
          Alcotest.test_case "MAIN/F/G edges" `Quick test_main_fg_edges;
          Alcotest.test_case "undefined rule" `Quick test_undefined_rule_rejected;
          Alcotest.test_case "empty rules = parallel" `Quick
            test_empty_rules_is_parallel;
          Alcotest.test_case "leaf-level fire = full" `Quick test_leaf_fire_full;
          Alcotest.test_case "recursive rule" `Quick test_recursive_rule;
          Alcotest.test_case "no-progress fallback" `Quick
            test_no_progress_falls_back_to_full;
          QCheck_alcotest.to_alcotest test_dag_acyclic_property;
        ] );
      ( "rule_check",
        [
          Alcotest.test_case "clean program" `Quick test_rule_check_clean;
          Alcotest.test_case "missing rule located" `Quick
            test_rule_check_finds_missing_rule;
          Alcotest.test_case "pedigree_from/lca" `Quick test_pedigree_from;
        ] );
      ( "serial_exec",
        [ Alcotest.test_case "orders respect deps" `Quick test_serial_exec_orders ] );
      ( "program",
        [
          Alcotest.test_case "structure" `Quick test_program_structure;
          Alcotest.test_case "footprint/size" `Quick test_footprint_size;
          Alcotest.test_case "decompose" `Quick test_decompose;
          Alcotest.test_case "decompose invalid" `Quick test_decompose_invalid;
        ] );
    ]
