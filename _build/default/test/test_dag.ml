module Dag = Nd_dag.Dag
module Race = Nd_dag.Race
module Is = Nd_util.Interval_set

let v ?(work = 1) ?(reads = Is.empty) ?(writes = Is.empty) dag label =
  Dag.add_vertex dag ~label ~work ~reads ~writes ()

(* diamond: a -> b, a -> c, b -> d, c -> d *)
let diamond () =
  let dag = Dag.create () in
  let a = v dag "a" and b = v dag ~work:5 "b" and c = v dag "c" and d = v dag "d" in
  Dag.add_edge dag a b;
  Dag.add_edge dag a c;
  Dag.add_edge dag b d;
  Dag.add_edge dag c d;
  (dag, a, b, c, d)

let test_basic () =
  let dag, a, b, _, d = diamond () in
  Alcotest.(check int) "vertices" 4 (Dag.n_vertices dag);
  Alcotest.(check int) "edges" 4 (Dag.n_edges dag);
  Alcotest.(check int) "work" 8 (Dag.work dag);
  Alcotest.(check (list int)) "succs a" [ b ] [ List.hd (List.rev (Dag.succs dag a)) ];
  Alcotest.(check int) "preds d" 2 (List.length (Dag.preds dag d));
  Alcotest.(check string) "label" "b" (Dag.label dag b)

let test_duplicate_edge () =
  let dag = Dag.create () in
  let a = v dag "a" and b = v dag "b" in
  Dag.add_edge dag a b;
  Dag.add_edge dag a b;
  Alcotest.(check int) "deduped" 1 (Dag.n_edges dag)

let test_self_loop_rejected () =
  let dag = Dag.create () in
  let a = v dag "a" in
  Alcotest.check_raises "self loop" (Invalid_argument "Dag.add_edge: self loop")
    (fun () -> Dag.add_edge dag a a)

let test_span () =
  let dag, _, _, _, _ = diamond () in
  (* longest path a(1) b(5) d(1) = 7 *)
  Alcotest.(check int) "span" 7 (Dag.span dag)

let test_critical_path () =
  let dag, a, b, _, d = diamond () in
  Alcotest.(check (list int)) "path" [ a; b; d ] (Dag.critical_path dag)

let test_topo () =
  let dag, a, b, c, d = diamond () in
  let order = Dag.topo_order dag in
  let pos = Array.make 4 0 in
  Array.iteri (fun i x -> pos.(x) <- i) order;
  Alcotest.(check bool) "a before b" true (pos.(a) < pos.(b));
  Alcotest.(check bool) "a before c" true (pos.(a) < pos.(c));
  Alcotest.(check bool) "b before d" true (pos.(b) < pos.(d));
  Alcotest.(check bool) "c before d" true (pos.(c) < pos.(d))

let test_cycle_detection () =
  let dag = Dag.create () in
  let a = v dag "a" and b = v dag "b" and c = v dag "c" in
  Dag.add_edge dag a b;
  Dag.add_edge dag b c;
  Dag.add_edge dag c a;
  (match Dag.topo_order dag with
  | exception Dag.Cycle _ -> ()
  | _ -> Alcotest.fail "cycle not detected")

let test_sources_sinks () =
  let dag, a, _, _, d = diamond () in
  Alcotest.(check (list int)) "sources" [ a ] (Dag.sources dag);
  Alcotest.(check (list int)) "sinks" [ d ] (Dag.sinks dag)

let test_weighted () =
  let dag, _, b, _, _ = diamond () in
  (* constant weights: longest path has 3 vertices *)
  Alcotest.(check int) "hops" 3 (Dag.longest_path_weighted dag (fun _ -> 1));
  Alcotest.(check int) "only-b" 1
    (Dag.longest_path_weighted dag (fun x -> if x = b then 1 else 0))

let test_reachability () =
  let dag, a, b, c, d = diamond () in
  let r = Dag.reachability dag in
  Alcotest.(check bool) "a->d" true (Dag.reachable r a d);
  Alcotest.(check bool) "b->c" false (Dag.reachable r b c);
  Alcotest.(check bool) "c->b" false (Dag.reachable r c b);
  Alcotest.(check bool) "self" true (Dag.reachable r b b);
  Alcotest.(check bool) "d->a" false (Dag.reachable r d a)

let test_reachability_chain () =
  let dag = Dag.create () in
  let n = 200 in
  let vs = Array.init n (fun i -> v dag (string_of_int i)) in
  for i = 0 to n - 2 do
    Dag.add_edge dag vs.(i) vs.(i + 1)
  done;
  let r = Dag.reachability dag in
  Alcotest.(check bool) "0 -> last" true (Dag.reachable r vs.(0) vs.(n - 1));
  Alcotest.(check bool) "last -> 0" false (Dag.reachable r vs.(n - 1) vs.(0));
  Alcotest.(check int) "span = n" n (Dag.span dag)

(* -------------------------- race detector ------------------------- *)

let test_race_found () =
  let dag = Dag.create () in
  let w = Is.interval 0 4 in
  let a = v dag ~writes:w "a" and b = v dag ~writes:w "b" in
  ignore a;
  ignore b;
  (match Race.find_races dag with
  | [ r ] ->
    Alcotest.(check bool) "write-write" true r.Race.write_write;
    Alcotest.(check int) "overlap" 4 (Is.cardinal r.Race.overlap)
  | other -> Alcotest.failf "expected 1 race, got %d" (List.length other));
  Alcotest.(check bool) "not race free" false (Race.race_free dag)

let test_race_ordered_ok () =
  let dag = Dag.create () in
  let w = Is.interval 0 4 in
  let a = v dag ~writes:w "a" and b = v dag ~writes:w "b" in
  Dag.add_edge dag a b;
  Alcotest.(check bool) "ordered: race free" true (Race.race_free dag)

let test_race_read_read_ok () =
  let dag = Dag.create () in
  let r = Is.interval 0 4 in
  let _ = v dag ~reads:r "a" and _ = v dag ~reads:r "b" in
  Alcotest.(check bool) "read-read: race free" true (Race.race_free dag)

let test_race_read_write () =
  let dag = Dag.create () in
  let _ = v dag ~reads:(Is.interval 0 4) "a" in
  let _ = v dag ~writes:(Is.interval 2 6) "b" in
  match Race.find_races dag with
  | [ r ] -> Alcotest.(check bool) "read-write" false r.Race.write_write
  | other -> Alcotest.failf "expected 1 race, got %d" (List.length other)

let test_race_disjoint_ok () =
  let dag = Dag.create () in
  let _ = v dag ~writes:(Is.interval 0 4) "a" in
  let _ = v dag ~writes:(Is.interval 4 8) "b" in
  Alcotest.(check bool) "disjoint: race free" true (Race.race_free dag)

let test_race_limit () =
  let dag = Dag.create () in
  let w = Is.interval 0 1 in
  for i = 0 to 9 do
    ignore (v dag ~writes:w (string_of_int i))
  done;
  Alcotest.(check int) "limit respected" 3
    (List.length (Race.find_races ~limit:3 dag))

let () =
  Alcotest.run "nd_dag"
    [
      ( "dag",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "duplicate edges" `Quick test_duplicate_edge;
          Alcotest.test_case "self loop" `Quick test_self_loop_rejected;
          Alcotest.test_case "span" `Quick test_span;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "topo order" `Quick test_topo;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "sources/sinks" `Quick test_sources_sinks;
          Alcotest.test_case "weighted longest path" `Quick test_weighted;
          Alcotest.test_case "reachability" `Quick test_reachability;
          Alcotest.test_case "reachability chain" `Quick test_reachability_chain;
        ] );
      ( "race",
        [
          Alcotest.test_case "write-write found" `Quick test_race_found;
          Alcotest.test_case "ordered ok" `Quick test_race_ordered_ok;
          Alcotest.test_case "read-read ok" `Quick test_race_read_read_ok;
          Alcotest.test_case "read-write found" `Quick test_race_read_write;
          Alcotest.test_case "disjoint ok" `Quick test_race_disjoint_ok;
          Alcotest.test_case "limit" `Quick test_race_limit;
        ] );
    ]
