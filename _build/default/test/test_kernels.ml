module Prng = Nd_util.Prng
open Nd_algos

let mk n f =
  let s = Mat.create_space () in
  let m = Mat.alloc s ~rows:n ~cols:n in
  Mat.fill m f;
  m

let tol = 1e-9

let test_mm_acc () =
  (* [[1 2][3 4]] * [[5 6][7 8]] = [[19 22][43 50]] *)
  let a = mk 2 (fun i j -> float_of_int ((2 * i) + j + 1)) in
  let b = mk 2 (fun i j -> float_of_int ((2 * i) + j + 5)) in
  let c = mk 2 (fun _ _ -> 1.) in
  Kernels.mm_acc ~sign:1. c a b;
  Alcotest.(check (float tol)) "c00" 20. (Mat.get c 0 0);
  Alcotest.(check (float tol)) "c01" 23. (Mat.get c 0 1);
  Alcotest.(check (float tol)) "c10" 44. (Mat.get c 1 0);
  Alcotest.(check (float tol)) "c11" 51. (Mat.get c 1 1);
  Kernels.mm_acc ~sign:(-1.) c a b;
  Alcotest.(check (float tol)) "subtract back" 1. (Mat.get c 1 1)

let test_mm_acc_nt () =
  let rng = Prng.create 5 in
  let a = mk 4 (fun _ _ -> Prng.float rng) in
  let b = mk 4 (fun _ _ -> Prng.float rng) in
  let c1 = mk 4 (fun _ _ -> 0.) and c2 = mk 4 (fun _ _ -> 0.) in
  Kernels.mm_acc_nt ~sign:1. c1 a b;
  (* compare against explicit transpose *)
  let bt = mk 4 (fun i j -> Mat.get b j i) in
  Kernels.mm_acc ~sign:1. c2 a bt;
  Alcotest.(check (float tol)) "nt = n * transpose" 0. (Mat.max_abs_diff c1 c2)

let test_trs_left () =
  let rng = Prng.create 7 in
  let n = 8 in
  let t = mk n (fun _ _ -> 0.) in
  Kernels.fill_lower_triangular t rng;
  let b = mk n (fun _ _ -> Prng.float rng) in
  let b0 = Mat.snapshot b in
  Kernels.trs_left t b;
  (* residual: T * X - B0 = 0 *)
  let r = mk n (fun _ _ -> 0.) in
  Kernels.mm_acc ~sign:1. r t b;
  let worst = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let d = Float.abs (Mat.get r i j -. Mat.get b0 i j) in
      if d > !worst then worst := d
    done
  done;
  Alcotest.(check (float 1e-9)) "residual" 0. !worst

let test_trs_right () =
  let rng = Prng.create 8 in
  let n = 8 in
  let t = mk n (fun _ _ -> 0.) in
  Kernels.fill_lower_triangular t rng;
  let b = mk n (fun _ _ -> Prng.float rng) in
  let b0 = Mat.snapshot b in
  Kernels.trs_right t b;
  (* residual: X * T^T = B0 *)
  let r = mk n (fun _ _ -> 0.) in
  Kernels.mm_acc_nt ~sign:1. r b t;
  Alcotest.(check (float 1e-9)) "residual" 0. (Mat.max_abs_diff r b0)

let test_trs_left_unit () =
  let rng = Prng.create 9 in
  let n = 8 in
  let t = mk n (fun _ _ -> 0.) in
  Kernels.fill_lower_triangular t rng;
  let b = mk n (fun _ _ -> Prng.float rng) in
  let b0 = Mat.snapshot b in
  Kernels.trs_left_unit t b;
  (* residual with unit-diagonal T *)
  let tu = mk n (fun i j -> if i = j then 1. else if i > j then Mat.get t i j else 0.) in
  let r = mk n (fun _ _ -> 0.) in
  Kernels.mm_acc ~sign:1. r tu b;
  Alcotest.(check (float 1e-9)) "residual" 0. (Mat.max_abs_diff r b0)

let test_cholesky () =
  let rng = Prng.create 10 in
  let n = 8 in
  let a = mk n (fun _ _ -> 0.) in
  Kernels.fill_spd a rng;
  let a0 = Mat.snapshot a in
  Kernels.cholesky a;
  (* zero the upper triangle to get L, then check L L^T = A0 *)
  let l = mk n (fun i j -> if j <= i then Mat.get a i j else 0.) in
  let r = mk n (fun _ _ -> 0.) in
  Kernels.mm_acc_nt ~sign:1. r l l;
  Alcotest.(check (float 1e-8)) "L L^T = A" 0. (Mat.max_abs_diff r a0)

let test_cholesky_rejects () =
  let a = mk 2 (fun i j -> if i = j then -1. else 0.) in
  Alcotest.check_raises "negative definite"
    (Failure "Kernels.cholesky: non-positive pivot") (fun () -> Kernels.cholesky a)

let test_floyd_warshall () =
  (* 0 -> 1 (1), 1 -> 2 (1), 0 -> 2 (5): shortest 0->2 is 2 *)
  let inf = 1e9 in
  let a =
    mk 3 (fun i j ->
        if i = j then 0.
        else if i = 0 && j = 1 then 1.
        else if i = 1 && j = 2 then 1.
        else if i = 0 && j = 2 then 5.
        else inf)
  in
  Kernels.floyd_warshall a;
  Alcotest.(check (float 0.)) "0->2 via 1" 2. (Mat.get a 0 2);
  Alcotest.(check (float 0.)) "diag zero" 0. (Mat.get a 1 1)

let test_min_plus_acc_matches_fw_step () =
  let rng = Prng.create 12 in
  let a = mk 4 (fun _ _ -> 1. +. Prng.float rng) in
  let c = Mat.snapshot a in
  (* c = min(c, a (x) a) must never increase entries *)
  Kernels.min_plus_acc c a a;
  for i = 0 to 3 do
    for j = 0 to 3 do
      if Mat.get c i j > Mat.get a i j +. 1e-12 then Alcotest.fail "increased"
    done
  done

let test_lu_inplace () =
  let rng = Prng.create 13 in
  let n = 8 in
  let s = Mat.create_space () in
  let a = Mat.alloc s ~rows:n ~cols:n in
  Kernels.fill_uniform a rng ~lo:(-1.) ~hi:1.;
  let a0 = Mat.snapshot a in
  let piv = Mat.alloc s ~rows:1 ~cols:n in
  Kernels.lu_inplace a ~piv;
  (* reconstruct: P*A0 = L*U *)
  let l = mk n (fun i j -> if i > j then Mat.get a i j else if i = j then 1. else 0.) in
  let u = mk n (fun i j -> if i <= j then Mat.get a i j else 0.) in
  let lu = mk n (fun _ _ -> 0.) in
  Kernels.mm_acc ~sign:1. lu l u;
  (* apply recorded pivots to A0 *)
  Kernels.laswp a0 ~piv ~k0:0 ~k1:n ~g:0 ~reverse:false;
  Alcotest.(check (float 1e-9)) "P A = L U" 0. (Mat.max_abs_diff lu a0)

let test_laswp_roundtrip () =
  let rng = Prng.create 14 in
  let n = 8 in
  let s = Mat.create_space () in
  let b = Mat.alloc s ~rows:n ~cols:3 in
  Kernels.fill_uniform b rng ~lo:0. ~hi:1.;
  let b0 = Mat.snapshot b in
  let piv = Mat.alloc s ~rows:1 ~cols:n in
  for j = 0 to n - 1 do
    Mat.set piv 0 j (float_of_int (j + Prng.int rng (n - j)))
  done;
  Kernels.laswp b ~piv ~k0:0 ~k1:n ~g:0 ~reverse:false;
  Kernels.laswp b ~piv ~k0:0 ~k1:n ~g:0 ~reverse:true;
  Alcotest.(check (float 0.)) "roundtrip" 0. (Mat.max_abs_diff b b0)

let test_fw_blocks () =
  (* fwb/fwc applied to the full matrix with u = x must match one
     Floyd-Warshall sweep *)
  let rng = Prng.create 15 in
  let n = 8 in
  let x = mk n (fun _ _ -> 0.) in
  Kernels.fill_distances x rng;
  let y = Mat.snapshot x in
  Kernels.fwb_block x x;
  Kernels.floyd_warshall y;
  Alcotest.(check (float 1e-12)) "fwb full sweep = FW" 0. (Mat.max_abs_diff x y);
  let z = mk n (fun _ _ -> 0.) in
  Kernels.fill_distances z (Prng.create 15);
  Kernels.fwc_block z z;
  Alcotest.(check (float 1e-12)) "fwc full sweep = FW" 0. (Mat.max_abs_diff z y)

let () =
  Alcotest.run "nd_algos.kernels"
    [
      ( "dense",
        [
          Alcotest.test_case "mm_acc" `Quick test_mm_acc;
          Alcotest.test_case "mm_acc_nt" `Quick test_mm_acc_nt;
          Alcotest.test_case "trs_left" `Quick test_trs_left;
          Alcotest.test_case "trs_right" `Quick test_trs_right;
          Alcotest.test_case "trs_left_unit" `Quick test_trs_left_unit;
          Alcotest.test_case "cholesky" `Quick test_cholesky;
          Alcotest.test_case "cholesky rejects" `Quick test_cholesky_rejects;
          Alcotest.test_case "lu_inplace PA=LU" `Quick test_lu_inplace;
          Alcotest.test_case "laswp roundtrip" `Quick test_laswp_roundtrip;
        ] );
      ( "semiring",
        [
          Alcotest.test_case "floyd_warshall" `Quick test_floyd_warshall;
          Alcotest.test_case "min_plus_acc" `Quick test_min_plus_acc_matches_fw_step;
          Alcotest.test_case "fwb/fwc blocks" `Quick test_fw_blocks;
        ] );
    ]
