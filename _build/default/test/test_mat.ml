module Is = Nd_util.Interval_set
open Nd_algos

let test_alloc () =
  let s = Mat.create_space () in
  let a = Mat.alloc s ~rows:4 ~cols:8 in
  let b = Mat.alloc s ~rows:2 ~cols:2 in
  Alcotest.(check int) "a base" 0 a.Mat.base;
  Alcotest.(check int) "b base" 32 b.Mat.base;
  Alcotest.(check int) "words" 36 (Mat.words s);
  Alcotest.(check (float 0.)) "zero init" 0. (Mat.get a 3 7)

let test_addr_region () =
  let s = Mat.create_space () in
  let a = Mat.alloc s ~rows:4 ~cols:4 in
  Alcotest.(check int) "addr" 9 (Mat.addr a 2 1);
  Alcotest.(check (list (pair int int))) "contiguous region" [ (0, 16) ]
    (Is.intervals (Mat.region a));
  let v = Mat.sub a ~r0:1 ~c0:1 ~rows:2 ~cols:2 in
  Alcotest.(check (list (pair int int))) "strided region" [ (5, 7); (9, 11) ]
    (Is.intervals (Mat.region v))

let test_sub_view_aliasing () =
  let s = Mat.create_space () in
  let a = Mat.alloc s ~rows:4 ~cols:4 in
  let v = Mat.sub a ~r0:2 ~c0:2 ~rows:2 ~cols:2 in
  Mat.set v 0 0 7.;
  Alcotest.(check (float 0.)) "aliases parent" 7. (Mat.get a 2 2);
  Alcotest.check_raises "oob" (Invalid_argument "Mat.sub: out of bounds")
    (fun () -> ignore (Mat.sub a ~r0:3 ~c0:0 ~rows:2 ~cols:2))

let test_quad () =
  let s = Mat.create_space () in
  let a = Mat.alloc s ~rows:4 ~cols:4 in
  Mat.fill a (fun i j -> float_of_int ((10 * i) + j));
  let q11 = Mat.quad a 1 1 in
  Alcotest.(check (float 0.)) "quad 11 origin" 22. (Mat.get q11 0 0);
  let t = Mat.top a and b = Mat.bot a in
  Alcotest.(check (float 0.)) "top" 0. (Mat.get t 0 0);
  Alcotest.(check (float 0.)) "bot" 20. (Mat.get b 0 0);
  let odd = Mat.alloc s ~rows:3 ~cols:3 in
  Alcotest.check_raises "odd quad" (Invalid_argument "Mat.quad: odd dimensions")
    (fun () -> ignore (Mat.quad odd 0 0))

let test_copy_diff_snapshot () =
  let s = Mat.create_space () in
  let a = Mat.alloc s ~rows:3 ~cols:3 in
  Mat.fill a (fun i j -> float_of_int (i + j));
  let c = Mat.snapshot a in
  Alcotest.(check (float 0.)) "snapshot equal" 0. (Mat.max_abs_diff a c);
  Mat.set a 1 1 9.;
  Alcotest.(check (float 0.)) "diff detects" 7. (Mat.max_abs_diff a c);
  Alcotest.(check (float 0.)) "snapshot detached" 2. (Mat.get c 1 1);
  Mat.copy_contents ~src:c ~dst:a;
  Alcotest.(check (float 0.)) "copy back" 0. (Mat.max_abs_diff a c);
  (* lower-only diff ignores strict upper *)
  Mat.set a 0 2 99.;
  Alcotest.(check (float 0.)) "lower diff ignores upper" 0.
    (Mat.max_abs_diff_lower a c)

let test_region_footprint_disjoint () =
  let s = Mat.create_space () in
  let a = Mat.alloc s ~rows:4 ~cols:4 in
  let q00 = Mat.quad a 0 0 and q11 = Mat.quad a 1 1 in
  Alcotest.(check bool) "disjoint quads" false
    (Is.overlaps (Mat.region q00) (Mat.region q11));
  Alcotest.(check int) "quad cardinal" 4 (Is.cardinal (Mat.region q00));
  Alcotest.(check bool) "quad inside parent" true
    (Is.equal (Mat.region q00) (Is.inter (Mat.region q00) (Mat.region a)))

let () =
  Alcotest.run "nd_algos.mat"
    [
      ( "mat",
        [
          Alcotest.test_case "alloc" `Quick test_alloc;
          Alcotest.test_case "addr/region" `Quick test_addr_region;
          Alcotest.test_case "sub aliasing" `Quick test_sub_view_aliasing;
          Alcotest.test_case "quadrants" `Quick test_quad;
          Alcotest.test_case "copy/diff/snapshot" `Quick test_copy_diff_snapshot;
          Alcotest.test_case "regions disjoint" `Quick
            test_region_footprint_disjoint;
        ] );
    ]
