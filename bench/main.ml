(* The full benchmark harness.

   Part 1 regenerates every table/figure-equivalent of the paper (the
   experiment suite E1..E9 plus the inventory; see DESIGN.md for the
   experiment index and EXPERIMENTS.md for paper-vs-measured).

   Part 2 runs Bechamel micro-benchmarks: one Test.make per experiment
   family, timing the core operation each table is built from (DRS
   compilation, span analysis, Q*, the SB scheduler, the WS baseline, and
   the real multicore executors). *)

open Bechamel

(* grab the raw clock before [open Toolkit] shadows [Monotonic_clock]
   with bechamel's MEASURE wrapper of the same name *)
module Mclock = Monotonic_clock

open Toolkit
open Nd_algos

let seed = 20160215

(* ----------------------- wall-clock timing ------------------------- *)

let now_ns () = Mclock.now ()

let seconds_since t0 = Int64.to_float (Int64.sub (now_ns ()) t0) *. 1e-9

(* repetitions per hand-rolled measurement; recorded in the JSON so the
   perf trajectory knows what it is comparing *)
let bench_k = 3

(* one untimed warmup (page in the data, JIT the GC into shape), then
   the min of [bench_k] timed runs on the monotonic clock — the minimum
   estimates the noise-free cost when interference is strictly additive *)
let time_min_of_k f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to bench_k do
    let t0 = now_ns () in
    ignore (f ());
    let dt = seconds_since t0 in
    if dt < !best then best := dt
  done;
  !best

let bechamel_tests () =
  let mm = Matmul.workload ~n:32 ~base:4 ~seed () in
  let trs = Trs.workload ~n:32 ~base:4 ~seed () in
  let lcs = Lcs.workload ~n:128 ~base:8 ~seed () in
  let p_mm = Workload.compile mm in
  let p_trs = Workload.compile trs in
  let p_lcs = Workload.compile lcs in
  let machine =
    Nd_pmh.Pmh.create ~root_fanout:1
      [
        { Nd_pmh.Pmh.size = 64; fanout = 1; miss_cost = 2 };
        { Nd_pmh.Pmh.size = 512; fanout = 4; miss_cost = 8 };
        { Nd_pmh.Pmh.size = 4096; fanout = 4; miss_cost = 32 };
      ]
  in
  mm.Workload.reset ();
  trs.Workload.reset ();
  lcs.Workload.reset ();
  Test.make_grouped ~name:"nd" ~fmt:"%s %s"
    [
      Test.make ~name:"e1.drs-compile(trs32)"
        (Staged.stage (fun () -> ignore (Workload.compile trs)));
      Test.make ~name:"e1.span(trs32)"
        (Staged.stage (fun () -> ignore (Nd_dag.Dag.span (Nd.Program.dag p_trs))));
      Test.make ~name:"e2.qstar(mm32,M=256)"
        (Staged.stage (fun () -> ignore (Nd_mem.Pcc.q_star p_mm ~m:256)));
      Test.make ~name:"e2.q1-lru(mm32,M=256)"
        (Staged.stage (fun () -> ignore (Nd_mem.Cache_sim.q1 p_mm ~m:256)));
      Test.make ~name:"e3.sb-sched(trs32)"
        (Staged.stage (fun () -> ignore (Nd_sched.Sb_sched.run p_trs machine)));
      Test.make ~name:"e5.ecc(trs32,a=0.8)"
        (Staged.stage (fun () ->
             ignore (Nd_mem.Ecc.q_hat p_trs ~m:256 ~alpha:0.8)));
      Test.make ~name:"e6.work-steal(trs32)"
        (Staged.stage (fun () ->
             ignore (Nd_sched.Work_steal.run ~seed p_trs machine)));
      Test.make ~name:"e8.race-check(mm16)"
        (Staged.stage
           (let small = Workload.compile (Matmul.workload ~n:16 ~base:2 ~seed ()) in
            fun () -> ignore (Nd_dag.Race.race_free (Nd.Program.dag small))));
      Test.make ~name:"e9.serial-exec(lcs128)"
        (Staged.stage (fun () -> Nd.Serial_exec.run p_lcs));
      Test.make ~name:"e9.dataflow-exec(lcs128)"
        (Staged.stage (fun () -> Nd_runtime.Executor.run_dataflow ~workers:2 p_lcs));
      Test.make ~name:"e9.dataflow-g4096(lcs128)"
        (Staged.stage (fun () ->
             Nd_runtime.Executor.run_dataflow ~workers:2 ~grain:4096 p_lcs));
      Test.make ~name:"e9.forkjoin-exec(lcs128)"
        (Staged.stage (fun () -> Nd_runtime.Executor.run_fork_join ~workers:2 p_lcs));
    ]

let run_bechamel () =
  print_endline "== Bechamel micro-benchmarks (ns/run via OLS) ==";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (bechamel_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | Some _ | None -> ())
    results;
  List.iter
    (fun (name, est) -> Printf.printf "  %-32s %12.0f ns/run\n" name est)
    (List.sort compare !rows);
  print_newline ()

(* exact reachability checker vs the near-linear ESP-bags detector:
   wall-clock scaling, including sizes where the exact checker trips its
   Race.max_vertices cap and only ESP-bags can answer *)
let run_bench3 () =
  let table =
    Nd_util.Table.create ~title:"BENCH_3: exact vs ESP-bags race detection"
      [ "algo"; "n"; "vertices"; "fire edges"; "exact ms"; "esp ms"; "agree" ]
  in
  let time f =
    let t0 = now_ns () in
    let r = f () in
    (r, seconds_since t0 *. 1e3)
  in
  List.iter
    (fun (algo, n) ->
      let fam = Nd_experiments.Workloads.find algo in
      let w = Nd_experiments.Workloads.build ~n fam ~seed in
      let p = Workload.compile w in
      let dag = Nd.Program.dag p in
      let exact, exact_ms =
        match time (fun () -> Nd_dag.Race.race_free dag) with
        | free, ms -> (Some free, Nd_util.Table.cell_float ~prec:1 ms)
        | exception Nd_dag.Race.Limit_exceeded _ -> (None, "limit")
      in
      let esp, esp_ms = time (fun () -> Nd_analyze.Esp_bags.race_free p) in
      let agree =
        match exact with
        | None -> "esp-only"
        | Some e -> if e = esp then "yes" else "NO"
      in
      Nd_util.Table.add_row table
        [
          algo;
          Nd_util.Table.cell_int n;
          Nd_util.Table.cell_int (Nd_dag.Dag.n_vertices dag);
          Nd_util.Table.cell_int (List.length (Nd.Program.fire_edges p));
          exact_ms;
          Nd_util.Table.cell_float ~prec:1 esp_ms;
          agree;
        ])
    [
      ("mm", 8); ("mm", 16); ("mm", 32);
      ("fw1d", 64); ("fw1d", 128); ("fw1d", 256); ("fw1d", 512);
      ("apsp", 16); ("apsp", 32); ("apsp", 64);
    ];
  Nd_util.Table.print table;
  Nd_util.Table.write_json table "BENCH_3.json"

(* interval-granular vs word-exact LRU: same miss counts, wall-clock
   ratio.  The q1 rows replay whole programs through one cache; the
   sigma-sweep row drives the SB scheduler in Lru accounting mode over a
   sigma grid (decomposition memo + per-level access_set on the hot
   path).  [k]/[agree] make the JSON self-describing for the perf
   trajectory. *)
let run_bench4 () =
  let module Cs = Nd_mem.Cache_sim in
  let table =
    Nd_util.Table.create
      ~title:"BENCH_4: interval-granular vs word-exact LRU simulation"
      [ "case"; "k"; "word s"; "interval s"; "speedup"; "agree" ]
  in
  let add_row case word_s int_s agree =
    Nd_util.Table.add_row table
      [
        case;
        Nd_util.Table.cell_int bench_k;
        Nd_util.Table.cell_float ~prec:4 word_s;
        Nd_util.Table.cell_float ~prec:4 int_s;
        Nd_util.Table.cell_float ~prec:1 (word_s /. int_s);
        (if agree then "yes" else "NO");
      ]
  in
  let q1_case algo n base m =
    let fam = Nd_experiments.Workloads.find algo in
    let w = Nd_experiments.Workloads.build ~n ~base fam ~seed in
    let p = Workload.compile w in
    let misses = Hashtbl.create 2 in
    let run impl () =
      let q = Cs.q1 ~impl p ~m in
      Hashtbl.replace misses impl q;
      q
    in
    let word_s = time_min_of_k (run Cs.Word) in
    let int_s = time_min_of_k (run Cs.Interval) in
    add_row
      (Printf.sprintf "q1 %s n=%d b=%d M=%d" algo n base m)
      word_s int_s
      (Hashtbl.find misses Cs.Word = Hashtbl.find misses Cs.Interval)
  in
  q1_case "mm" 64 2 4096;
  q1_case "mm" 512 32 4096;
  q1_case "fw1d" 256 16 1024;
  q1_case "fw1d" 512 16 1024;
  let sweep_case algo n base sigmas =
    let fam = Nd_experiments.Workloads.find algo in
    let w = Nd_experiments.Workloads.build ~n ~base fam ~seed in
    let p = Workload.compile w in
    let machine =
      Nd_pmh.Pmh.create ~root_fanout:1
        [
          { Nd_pmh.Pmh.size = 64; fanout = 1; miss_cost = 2 };
          { Nd_pmh.Pmh.size = 512; fanout = 4; miss_cost = 8 };
          { Nd_pmh.Pmh.size = 4096; fanout = 4; miss_cost = 32 };
        ]
    in
    let costs = Hashtbl.create 2 in
    let run impl () =
      Cs.set_default_impl impl;
      let total =
        List.fold_left
          (fun acc sigma ->
            let s =
              Nd_sched.Sb_sched.run ~sigma ~accounting:Nd_sched.Sb_sched.Lru p
                machine
            in
            acc + s.Nd_sched.Sb_sched.miss_cost)
          0 sigmas
      in
      Hashtbl.replace costs impl total;
      total
    in
    let word_s = time_min_of_k (run Cs.Word) in
    let int_s = time_min_of_k (run Cs.Interval) in
    Cs.set_default_impl Cs.Interval;
    add_row
      (Printf.sprintf "sb-lru sigma-sweep %s n=%d b=%d (%d sigmas)" algo n base
         (List.length sigmas))
      word_s int_s
      (Hashtbl.find costs Cs.Word = Hashtbl.find costs Cs.Interval)
  in
  sweep_case "mm" 256 32 [ 0.2; 1. /. 3.; 0.5 ];
  Nd_util.Table.print table;
  Nd_util.Table.write_json table "BENCH_4.json"

let () =
  let t0 = now_ns () in
  (* BENCH_ONLY=e2,bench4 restricts the run to a comma-separated subset
     of sections (suite experiment names, "bench3", "bench4",
     "bechamel") — lets CI fit a time budget without a separate
     harness *)
  let wanted =
    match Sys.getenv_opt "BENCH_ONLY" with
    | None | Some "" -> None
    | Some s -> Some (String.split_on_char ',' s)
  in
  let selected name =
    match wanted with None -> true | Some l -> List.mem name l
  in
  (* run every experiment; keep the E9 wall-clock table for the
     machine-readable perf trajectory *)
  List.iter
    (fun (name, f) ->
      if selected name then begin
        let table = f () in
        Nd_util.Table.print table;
        if name = "e9" then Nd_util.Table.write_json table "BENCH_2.json"
      end)
    Nd_experiments.Suite.all;
  if selected "bench3" then run_bench3 ();
  if selected "bench4" then run_bench4 ();
  if selected "bechamel" then run_bechamel ();
  Printf.printf "total bench time: %.1f s\n" (seconds_since t0)
