(* ndsim — command-line driver for the Nested Dataflow library:
   per-algorithm analysis, scheduler simulation, and the full experiment
   suite. *)

open Cmdliner
module Pmh = Nd_pmh.Pmh
open Nd_algos

(* Usage errors — unknown names, malformed values — all leave through
   this one door: a message plus a help pointer on stderr, exit code 2
   (matching cmdliner's own bad-flag/unknown-subcommand path, which the
   driver below also maps to 2). *)
let die_usage fmt =
  Format.kfprintf
    (fun ppf ->
      Format.fprintf ppf "Usage: run 'ndsim COMMAND --help' for details.@.";
      exit 2)
    Format.err_formatter
    ("ndsim: " ^^ fmt ^^ "@.")

let algo_arg =
  let doc =
    Printf.sprintf "Algorithm: one of %s."
      (String.concat ", " (Nd_experiments.Workloads.names ()))
  in
  Arg.(value & opt string "trs" & info [ "algo"; "a" ] ~docv:"NAME" ~doc)

let n_arg =
  Arg.(value & opt (some int) None & info [ "n"; "size" ] ~docv:"N" ~doc:"Problem size (power of two).")

let base_arg =
  Arg.(value & opt (some int) None & info [ "base"; "b" ] ~docv:"B" ~doc:"Base-case block size.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for the operands.")

let np_arg =
  Arg.(value & flag & info [ "np" ] ~doc:"Use the nested-parallel projection (fires serialized).")

let build_workload algo n base seed =
  match Nd_experiments.Workloads.find algo with
  | fam -> Nd_experiments.Workloads.build ?n ?base fam ~seed
  | exception Not_found ->
    die_usage "unknown algorithm %s; expected one of %s" algo
      (String.concat ", " (Nd_experiments.Workloads.names ()))

let mode_of np = if np then Workload.NP else Workload.ND

let sim_machine top =
  Pmh.create ~root_fanout:top
    [
      { Pmh.size = 64; fanout = 1; miss_cost = 2 };
      { Pmh.size = 512; fanout = 4; miss_cost = 8 };
      { Pmh.size = 4096; fanout = 4; miss_cost = 32 };
    ]

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Also record a trace and write it as Chrome trace_event JSON.")

let finish_trace tracer out =
  match Nd_trace.Chrome.write_file tracer out with
  | () ->
      Format.printf "trace: wrote %s (%d events%s)@." out
        (List.length (Nd_trace.Collector.events tracer))
        (let d = Nd_trace.Collector.dropped tracer in
         if d > 0 then Printf.sprintf ", %d dropped" d else "")
  | exception Sys_error msg ->
      Format.eprintf "trace: cannot write %s: %s@." out msg;
      exit 2

(* ------------------------------ span ------------------------------- *)

let span_cmd =
  let run algo n base seed =
    let w = build_workload algo n base seed in
    let pnd = Workload.compile w in
    let pnp = Workload.compile ~mode:Workload.NP w in
    Format.printf "%s n=%d base=%d@." w.Workload.name w.Workload.n w.Workload.base;
    Format.printf "  ND: %a@." Nd.Analysis.pp_report (Nd.Analysis.analyze pnd);
    Format.printf "  NP: %a@." Nd.Analysis.pp_report (Nd.Analysis.analyze pnp)
  in
  Cmd.v
    (Cmd.info "span" ~doc:"Work-span analysis of an algorithm, ND vs NP.")
    Term.(const run $ algo_arg $ n_arg $ base_arg $ seed_arg)

(* ------------------------------ race ------------------------------- *)

let race_cmd =
  let explain_arg =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Lift each race to its lowest common ancestor and print the missing-rule pedigrees.")
  in
  let variant_arg =
    Arg.(value & flag
         & info [ "literal" ]
             ~doc:"Use the paper-literal rule variant where one exists (mm, trs, lcs, fw1d).")
  in
  let run algo n base seed np explain literal =
    let w =
      if literal then
        let n = Option.value n ~default:16 and base = Option.value base ~default:2 in
        match algo with
        | "mm" -> Matmul.workload ~variant:Matmul.Literal ~n ~base ~seed ()
        | "trs" -> Trs.workload ~variant:Trs.Literal ~n ~base ~seed ()
        | "lcs" -> Lcs.workload ~variant:`Literal ~n ~base ~seed ()
        | "fw1d" -> Fw1d.workload ~variant:`Literal ~n ~base ~seed ()
        | other -> die_usage "no literal variant for %s" other
      else build_workload algo n base seed
    in
    let p = Workload.compile ~mode:(mode_of np) w in
    let dag = Nd.Program.dag p in
    if explain then
      match Nd.Rule_check.diagnose ~limit:8 p with
      | [] -> Format.printf "race-free: no rules missing@."
      | findings ->
        List.iter
          (fun f -> Format.printf "@[<v>%a@]@." (Nd.Rule_check.pp_finding p) f)
          findings;
        exit 1
    else
      match Nd_dag.Race.find_races ~limit:16 dag with
      | exception Nd_dag.Race.Limit_exceeded { vertices; limit } ->
        die_usage
          "race: %d vertices exceeds the reachability cap %d; shrink -n or \
           raise NDSIM_RACE_MAX (or use 'ndsim lint', which has no cap)"
          vertices limit
      | [] -> Format.printf "race-free (%d vertices, %d edges)@."
                (Nd_dag.Dag.n_vertices dag) (Nd_dag.Dag.n_edges dag)
      | races ->
        Format.printf "%d race(s) found:@." (List.length races);
        List.iter (fun r -> Format.printf "  %a@." (Nd_dag.Race.pp_race dag) r) races;
        exit 1
  in
  Cmd.v
    (Cmd.info "race" ~doc:"Determinacy-race check of the algorithm DAG.")
    Term.(const run $ algo_arg $ n_arg $ base_arg $ seed_arg $ np_arg
          $ explain_arg $ variant_arg)

(* ------------------------------ lint ------------------------------- *)

(* shared by lint and analyze: findings below this severity are dropped
   from the output (and from the exit-code decision) *)
let min_severity_arg =
  Arg.(value & opt string "warning"
       & info [ "min-severity" ] ~docv:"SEV"
           ~doc:"Drop findings below this severity ($(b,warning) keeps \
                 everything, $(b,error) keeps only errors).")

let strict_arg =
  Arg.(value & flag
       & info [ "strict" ]
           ~doc:"Exit 1 when any finding survives the severity filter \
                 (warnings fail the run, not just errors).")

let parse_min_severity = function
  | "warning" -> Nd_analyze.Lint.Warning
  | "error" -> Nd_analyze.Lint.Error
  | s -> die_usage "bad --min-severity %s (want warning|error)" s

let lint_cmd =
  let module Lint = Nd_analyze.Lint in
  let module Json = Nd_util.Json in
  let all_arg =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"Lint every algorithm family at its smallest sweep size.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the findings as JSON on stdout.")
  in
  let variant_arg =
    Arg.(value & flag
         & info [ "literal" ]
             ~doc:"Lint the paper-literal rule variant where one exists (mm, trs, lcs, fw1d).")
  in
  let literal_workload algo n base seed =
    let n = Option.value n ~default:16 and base = Option.value base ~default:2 in
    match algo with
    | "mm" -> Matmul.workload ~variant:Matmul.Literal ~n ~base ~seed ()
    | "trs" -> Trs.workload ~variant:Trs.Literal ~n ~base ~seed ()
    | "lcs" -> Lcs.workload ~variant:`Literal ~n ~base ~seed ()
    | "fw1d" -> Fw1d.workload ~variant:`Literal ~n ~base ~seed ()
    | other -> die_usage "no literal variant for %s" other
  in
  let run algo n base seed all json literal strict min_severity =
    let min_severity = parse_min_severity min_severity in
    let targets =
      if all then
        List.map
          (fun fam ->
            let n = List.hd fam.Nd_experiments.Workloads.sizes in
            Nd_experiments.Workloads.build ~n fam ~seed)
          Nd_experiments.Workloads.all
      else if literal then [ literal_workload algo n base seed ]
      else [ build_workload algo n base seed ]
    in
    let results =
      List.map
        (fun w ->
          ( w,
            Lint.filter_min_severity min_severity
              (Lint.lint_all ~registry:w.Workload.registry w.Workload.tree) ))
        targets
    in
    if json then
      print_endline
        (Json.to_string
           (Json.List
              (List.map
                 (fun (w, fs) ->
                   Json.Obj
                     [
                       ("algo", Json.String w.Workload.name);
                       ("n", Json.Int w.Workload.n);
                       ("base", Json.Int w.Workload.base);
                       ("findings", Lint.to_json fs);
                     ])
                 results)))
    else
      List.iter
        (fun (w, fs) ->
          let count s = List.length (List.filter (fun f -> f.Lint.severity = s) fs) in
          Format.printf "%s n=%d base=%d: %d error(s), %d warning(s)@."
            w.Workload.name w.Workload.n w.Workload.base (count Lint.Error)
            (count Lint.Warning);
          List.iter (fun f -> Format.printf "  %a@." Lint.pp_finding f) fs)
        results;
    if List.exists (fun (_, fs) -> Lint.has_errors fs) results then exit 1;
    if strict && List.exists (fun (_, fs) -> fs <> []) results then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static analysis: fire-rule linter, footprint conflicts, and \
             ESP-bags race detection (rule catalogue ND001-ND013).")
    Term.(const run $ algo_arg $ n_arg $ base_arg $ seed_arg $ all_arg
          $ json_arg $ variant_arg $ strict_arg $ min_severity_arg)

(* ----------------------------- analyze ----------------------------- *)

let analyze_cmd =
  let module Cost = Nd_analyze.Cost in
  let module Lint = Nd_analyze.Lint in
  let module Json = Nd_util.Json in
  let all_arg =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"Analyze every algorithm family at its smallest sweep size.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit report, certification and findings as \
                                 JSON on stdout.")
  in
  let top_arg =
    Arg.(value & opt int 1
         & info [ "top" ] ~docv:"K"
             ~doc:"Top-level cache count of the PMH the certification and \
                   ND011/ND012 checks run against (procs = 16K).")
  in
  let no_certify_arg =
    Arg.(value & flag
         & info [ "no-certify" ]
             ~doc:"Skip the Theorem-1 certification (which replays the \
                   space-bounded scheduler); keep only the O(tree) static \
                   pass.")
  in
  let run algo n base seed np all top json no_certify strict min_severity =
    let min_severity = parse_min_severity min_severity in
    let targets =
      if all then
        List.map
          (fun fam ->
            let n = List.hd fam.Nd_experiments.Workloads.sizes in
            Nd_experiments.Workloads.build ~n fam ~seed)
          Nd_experiments.Workloads.all
      else [ build_workload algo n base seed ]
    in
    let machine = sim_machine top in
    let procs = Pmh.n_procs machine in
    (* the ND010 sweep needs only the growth trend, and the rewriting is
       linear in the fire-edge count — which explodes at the largest
       sweep sizes (mm n=64 b=2 resolves ~7M fire edges) — so three
       smallest sizes buy the asymptotic judgment at interactive cost *)
    let sweep w =
      match Nd_experiments.Workloads.find w.Workload.name with
      | fam ->
        let sizes = fam.Nd_experiments.Workloads.sizes in
        let sizes = List.filteri (fun i _ -> i < 3) sizes in
        Lint.lint_span_sweep ~subject:w.Workload.name
          ~build:(fun n ->
            let w' = Nd_experiments.Workloads.build ~n fam ~seed in
            (w'.Workload.registry, w'.Workload.tree))
          sizes
      | exception Not_found -> []
    in
    let analyze_one w =
      let p = Workload.compile ~mode:(mode_of np) w in
      let cost = Cost.of_program p in
      let has_fires =
        (not np) && Nd.Spawn_tree.fire_types w.Workload.tree <> []
      in
      let findings =
        Lint.filter_min_severity min_severity
          (Lint.lint_cost ~machine ~procs ~has_fires cost @ sweep w)
      in
      let cert =
        if no_certify then None else Some (Cost.certify_theorem1 p machine)
      in
      (w, cost, cert, findings)
    in
    let results = List.map analyze_one targets in
    if json then
      print_endline
        (Json.to_string
           (Json.List
              (List.map
                 (fun (w, cost, cert, fs) ->
                   Json.Obj
                     ([
                        ("algo", Json.String w.Workload.name);
                        ("n", Json.Int w.Workload.n);
                        ("base", Json.Int w.Workload.base);
                        ("np", Json.Bool np);
                        ("top", Json.Int top);
                        ("report", Cost.report_to_json (Cost.report cost));
                      ]
                     @ (match cert with
                       | Some c ->
                         [ ("certification", Cost.certification_to_json c) ]
                       | None -> [])
                     @ [ ("findings", Lint.to_json fs) ]))
                 results)))
    else
      List.iter
        (fun (w, cost, cert, fs) ->
          Format.printf "%s n=%d base=%d (%s, top=%d):@." w.Workload.name
            w.Workload.n w.Workload.base
            (Workload.mode_name (mode_of np))
            top;
          Format.printf "  %a@." Cost.pp_report (Cost.report cost);
          (match cert with
          | Some c -> Format.printf "  %a@." Cost.pp_certification c
          | None -> ());
          List.iter (fun f -> Format.printf "  %a@." Lint.pp_finding f) fs)
        results;
    if
      List.exists
        (fun (_, _, cert, _) ->
          match cert with Some c -> not c.Cost.certified | None -> false)
        results
    then exit 1;
    if List.exists (fun (_, _, _, fs) -> Lint.has_errors fs) results then
      exit 1;
    if strict && List.exists (fun (_, _, _, fs) -> fs <> []) results then
      exit 1
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Structural cost analysis: one O(tree) pass computing work, \
             span, peak footprint and the serial cache complexity Q* \
             without materializing the DAG, plus Theorem-1 certification \
             (SB per-level misses <= Q*(sigma*M_j)) and the asymptotic \
             lint checks ND010-ND013.")
    Term.(const run $ algo_arg $ n_arg $ base_arg $ seed_arg $ np_arg
          $ all_arg $ top_arg $ json_arg $ no_certify_arg $ strict_arg
          $ min_severity_arg)

(* ------------------------------- sb -------------------------------- *)

let sb_cmd =
  let top_arg =
    Arg.(value & opt int 1 & info [ "top" ] ~docv:"K" ~doc:"Top-level cache count (procs = 16K).")
  in
  let fine_arg =
    Arg.(value & flag & info [ "fine" ] ~doc:"Fine-grained cross-anchor readiness (E7 ablation).")
  in
  let sim_workers_arg =
    Arg.(value & opt (some int) None
         & info [ "sim-workers" ] ~docv:"W"
             ~doc:"Decoupled measurement mode: schedule under rho costs, then \
                   replay the recorded access trace against per-cache LRU \
                   simulators sharded across $(docv) domains (bit-identical \
                   at every count).  Defaults to the NDSIM_SIM_WORKERS \
                   environment variable when set; also prints the \
                   per-(level,cache) miss table.")
  in
  let run algo n base seed np top fine sim_workers trace_out =
    let w = build_workload algo n base seed in
    let p = Workload.compile ~mode:(mode_of np) w in
    let machine = sim_machine top in
    let tracer =
      match trace_out with
      | None -> Nd_trace.Collector.null
      | Some _ -> Nd_trace.Collector.create ~workers:(Pmh.n_procs machine) ()
    in
    let mode = if fine then Nd_sched.Sb_sched.Fine else Nd_sched.Sb_sched.Coarse in
    let sim_workers =
      match sim_workers with
      | Some w when w >= 1 -> Some w
      | Some w -> die_usage "--sim-workers %d: must be >= 1" w
      | None -> Nd_mem.Shard_sim.env_workers ()
    in
    Format.printf "machine: %s@." (Pmh.describe machine);
    let s = Nd_sched.Sb_sched.run ~mode ?sim_workers ~tracer p machine in
    Format.printf "SB(%s,%s%s): %a@."
      (Workload.mode_name (mode_of np))
      (if fine then "fine" else "coarse")
      (match sim_workers with
      | Some w -> Printf.sprintf ",sim-workers=%d" w
      | None -> "")
      Nd_sched.Sb_sched.pp_stats s;
    (match (sim_workers, s.Nd_sched.Sb_sched.miss_table) with
    | Some _, Some mt ->
      (* deterministic per-cache table, so CI can diff worker counts *)
      Format.printf "miss table: %a@." Nd_mem.Miss_table.pp mt
    | _ -> ());
    Option.iter (finish_trace tracer) trace_out
  in
  Cmd.v
    (Cmd.info "sb" ~doc:"Simulate the space-bounded scheduler on a PMH.")
    Term.(const run $ algo_arg $ n_arg $ base_arg $ seed_arg $ np_arg $ top_arg
          $ fine_arg $ sim_workers_arg $ trace_out_arg)

(* ------------------------------ sched ------------------------------ *)

let sched_cmd =
  let top_arg =
    Arg.(value & opt int 1 & info [ "top" ] ~docv:"K" ~doc:"Top-level cache count (procs = 16K).")
  in
  let scheduler_arg =
    let doc =
      Printf.sprintf "Scheduler: one of %s."
        (String.concat ", " Nd_sched.Zoo.names)
    in
    Arg.(value & opt string "sb" & info [ "scheduler"; "s" ] ~docv:"NAME" ~doc)
  in
  let comm_arg =
    Arg.(value & opt int 0
         & info [ "comm-delay" ] ~docv:"D"
             ~doc:"Extra time units charged when a vertex is dispatched on a \
                   processor that executed none of its predecessors (honoured \
                   by the pdf and tree dispatch loops).")
  in
  let run algo n base seed np scheduler top comm_delay =
    match Nd_sched.Zoo.find scheduler with
    | None ->
      die_usage "unknown scheduler %s; expected one of %s" scheduler
        (String.concat ", " Nd_sched.Zoo.names)
    | Some (module S : Nd_sched.Scheduler.S) ->
      let w = build_workload algo n base seed in
      let p = Workload.compile ~mode:(mode_of np) w in
      let machine = sim_machine top in
      Format.printf "machine: %s@." (Pmh.describe machine);
      let s = S.run ~seed ~comm_delay p machine in
      Format.printf "%s: %a@." S.name Nd_sched.Scheduler.pp_stats s
  in
  Cmd.v
    (Cmd.info "sched"
       ~doc:"Simulate any scheduler-zoo member on a PMH (the E10 comparison, \
             one scheduler at a time).")
    Term.(const run $ algo_arg $ n_arg $ base_arg $ seed_arg $ np_arg
          $ scheduler_arg $ top_arg $ comm_arg)

(* ------------------------------ check ------------------------------ *)

let check_cmd =
  let run algo n base seed np trace_out =
    let w = build_workload algo n base seed in
    let p = Workload.compile ~mode:(mode_of np) w in
    let tracer =
      match trace_out with
      | None -> Nd_trace.Collector.null
      | Some _ -> Nd_trace.Collector.create ~workers:1 ()
    in
    w.Workload.reset ();
    Nd.Serial_exec.run ~rng:(Nd_util.Prng.create (seed + 1)) ~tracer p;
    let err = w.Workload.check () in
    Format.printf "%s n=%d: randomized-order execution error = %g@."
      w.Workload.name w.Workload.n err;
    Option.iter (finish_trace tracer) trace_out;
    if err > 1e-6 then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Execute in a randomized dependency order and compare with the serial reference.")
    Term.(const run $ algo_arg $ n_arg $ base_arg $ seed_arg $ np_arg $ trace_out_arg)

(* ------------------------------- drs ------------------------------- *)

let drs_cmd =
  let run () =
    (* the paper's Figure 3-4 worked example *)
    let strand l =
      Nd.Spawn_tree.leaf
        (Nd.Strand.make ~label:l ~work:1 ~reads:Nd_util.Interval_set.empty
           ~writes:Nd_util.Interval_set.empty ())
    in
    let f = Nd.Spawn_tree.seq [ strand "A"; strand "B" ] in
    let g = Nd.Spawn_tree.seq [ strand "C"; strand "D" ] in
    let main = Nd.Spawn_tree.fire ~rule:"FG" f g in
    let reg =
      Nd.Fire_rule.define Nd.Fire_rule.empty_registry "FG"
        [ Nd.Fire_rule.rule [ 1 ] Nd.Fire_rule.Full [ 1 ] ]
    in
    let p = Nd.Program.compile ~registry:reg main in
    let dag = Nd.Program.dag p in
    Format.printf "MAIN = F ~FG~> G with F = A;B, G = C;D and +<1> ; -<1> (paper Fig. 3-4)@.";
    Format.printf "spawn tree: %a@." Nd.Spawn_tree.pp main;
    Format.printf "algorithm DAG edges:@.";
    for v = 0 to Nd_dag.Dag.n_vertices dag - 1 do
      List.iter
        (fun s ->
          Format.printf "  %s -> %s@." (Nd_dag.Dag.label dag v)
            (Nd_dag.Dag.label dag s))
        (Nd_dag.Dag.succs dag v)
    done;
    Format.printf "span = %d (A before C; B parallel to C,D)@."
      (Nd_dag.Dag.span dag)
  in
  Cmd.v
    (Cmd.info "drs" ~doc:"Show the DRS on the paper's MAIN/F/G example (Figures 3-4).")
    Term.(const run $ const ())

(* ------------------------------ trace ------------------------------- *)

let trace_cmd =
  let sched_arg =
    Arg.(value & opt string "sb"
         & info [ "sched" ] ~docv:"SCHED"
             ~doc:"Execution path to trace: $(b,sb), $(b,ws), $(b,serial), \
                   $(b,dataflow), $(b,forkjoin) or $(b,fiber).")
  in
  let out_arg =
    Arg.(value & opt string "trace.json"
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Output file for the Chrome trace_event JSON (load in \
                   chrome://tracing or ui.perfetto.dev).")
  in
  let top_arg =
    Arg.(value & opt int 1 & info [ "top" ] ~docv:"K" ~doc:"Top-level cache count (procs = 16K).")
  in
  let fine_arg =
    Arg.(value & flag & info [ "fine" ] ~doc:"Fine-grained cross-anchor readiness (SB only).")
  in
  let workers_arg =
    Arg.(value & opt (some int) None
         & info [ "workers"; "w" ] ~docv:"W"
             ~doc:"Worker domains for the real executors (dataflow/forkjoin).")
  in
  let grain_arg =
    Arg.(value & opt (some int) None
         & info [ "grain" ] ~docv:"G"
             ~doc:"Leaf-coarsening work threshold for the real executors: \
                   program subtrees with total work <= G run serially on one \
                   worker (0 or omitted: vertex granularity).")
  in
  let run algo n base seed np sched top fine workers grain out =
    let w = build_workload algo n base seed in
    let p = Workload.compile ~mode:(mode_of np) w in
    let dag = Nd.Program.dag p in
    let machine = sim_machine top in
    let sb_mode =
      if fine then Nd_sched.Sb_sched.Fine else Nd_sched.Sb_sched.Coarse
    in
    let tracer, vertex_granular =
      match sched with
      | "serial" ->
        let t = Nd_trace.Collector.create ~workers:1 () in
        w.Workload.reset ();
        Nd.Serial_exec.run ~tracer:t p;
        (t, true)
      | "sb" ->
        let t = Nd_trace.Collector.create ~workers:(Pmh.n_procs machine) () in
        Format.printf "machine: %s@." (Pmh.describe machine);
        let s = Nd_sched.Sb_sched.run ~mode:sb_mode ~tracer:t p machine in
        Format.printf "SB: %a@." Nd_sched.Sb_sched.pp_stats s;
        (t, false)
      | "ws" ->
        let t = Nd_trace.Collector.create ~workers:(Pmh.n_procs machine) () in
        Format.printf "machine: %s@." (Pmh.describe machine);
        let s = Nd_sched.Work_steal.run ~seed ~tracer:t p machine in
        Format.printf "WS: %a@." Nd_sched.Work_steal.pp_stats s;
        (t, true)
      | "dataflow" ->
        let nw =
          match workers with
          | Some w -> max 1 w
          | None -> Nd_runtime.Executor.default_workers ()
        in
        let t = Nd_trace.Collector.wallclock ~workers:nw () in
        w.Workload.reset ();
        Nd_runtime.Executor.run_dataflow ~workers:nw ?grain ~tracer:t p;
        Format.printf "dataflow: workers=%d max err=%g@." nw (w.Workload.check ());
        (t, true)
      | "forkjoin" ->
        let nw =
          match workers with
          | Some w -> max 1 w
          | None -> Nd_runtime.Executor.default_workers ()
        in
        let t = Nd_trace.Collector.wallclock ~workers:nw () in
        w.Workload.reset ();
        Nd_runtime.Executor.run_fork_join ~workers:nw ?grain ~tracer:t p;
        Format.printf "forkjoin: workers=%d max err=%g@." nw (w.Workload.check ());
        (t, true)
      | "fiber" ->
        let nw =
          match workers with
          | Some w -> max 1 w
          | None -> Nd_runtime.Executor.default_workers ()
        in
        let t = Nd_trace.Collector.wallclock ~workers:nw () in
        w.Workload.reset ();
        let s = Nd_runtime.Fiber_exec.run_program ~workers:nw ?grain ~tracer:t p in
        Format.printf
          "fiber: workers=%d fibers=%d suspensions=%d steals=%d \
           peak_blocked=%d max err=%g@."
          nw s.Nd_runtime.Fiber_exec.fibers s.Nd_runtime.Fiber_exec.suspensions
          s.Nd_runtime.Fiber_exec.steals s.Nd_runtime.Fiber_exec.peak_blocked
          (w.Workload.check ());
        (t, true)
      | other ->
        die_usage
          "unknown scheduler %s (want sb|ws|serial|dataflow|forkjoin|fiber)"
          other
    in
    finish_trace tracer out;
    print_string (Nd_trace.Summary.to_string tracer);
    if vertex_granular then begin
      let cp = Nd_trace.Analyzer.critical_path tracer dag in
      let span = (Nd.Analysis.analyze p).Nd.Analysis.span in
      let traced, total = Nd_trace.Analyzer.coverage tracer dag in
      Format.printf
        "trace-derived critical path = %d; analysis ND span = %d (%s, strand coverage %d/%d)@."
        cp span
        (if cp = span then "match" else "MISMATCH")
        traced total
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Record a structured trace of a scheduler run and export it as \
             Chrome trace_event JSON plus a per-worker summary.")
    Term.(const run $ algo_arg $ n_arg $ base_arg $ seed_arg $ np_arg
          $ sched_arg $ top_arg $ fine_arg $ workers_arg $ grain_arg $ out_arg)

(* --------------------------- experiments ---------------------------- *)

let experiments_cmd =
  let which =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"EXP" ~doc:"Experiment (overview, e1..e12); all when omitted.")
  in
  let run which =
    match which with
    | None -> Nd_experiments.Suite.run_all ()
    | Some name -> (
      try Nd_experiments.Suite.run name
      with Not_found -> die_usage "unknown experiment %s" name)
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run the paper-reproduction experiment suite.")
    Term.(const run $ which)

(* ------------------------------ suite ------------------------------- *)

let suite_cmd =
  let which =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"EXP" ~doc:"Experiment (overview, e1..e12); all when omitted.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"DIR"
             ~doc:"Also write one machine-readable JSON file per experiment \
                   into DIR, plus timings.json with per-phase wall-clock.")
  in
  let workers_arg =
    Arg.(value & opt (some int) None
         & info [ "workers"; "w" ] ~docv:"W"
             ~doc:"Worker domains running experiments concurrently (default: \
                   \\$(b,NDSIM_WORKERS) or the core count, capped at 8).")
  in
  let run which json workers =
    let known name = List.mem_assoc name Nd_experiments.Suite.all in
    match (which, json) with
    | Some name, _ when not (known name) ->
      die_usage "unknown experiment %s" name
    | Some name, None -> Nd_experiments.Suite.run name
    | Some name, Some dir -> (
      try Nd_experiments.Suite.run_json ~dir name
      with Sys_error msg | Unix.Unix_error (Unix.ENOENT, _, msg) ->
        Format.eprintf "suite: cannot write into %s: %s@." dir msg;
        exit 2)
    | None, None -> Nd_experiments.Suite.run_all ?workers ()
    | None, Some dir -> (
      try Nd_experiments.Suite.run_all_json ?workers ~dir ()
      with Sys_error msg | Unix.Unix_error (Unix.ENOENT, _, msg) ->
        Format.eprintf "suite: cannot write into %s: %s@." dir msg;
        exit 2)
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:"Run the experiment suite (experiments in parallel across worker \
             domains), optionally emitting machine-readable JSON (one file \
             per experiment plus per-phase timings).")
    Term.(const run $ which $ json_arg $ workers_arg)

(* ------------------------------ fuzz ------------------------------- *)

let fuzz_cmd =
  let count_arg =
    Arg.(value & opt int 100
         & info [ "count"; "c" ] ~docv:"N" ~doc:"Number of generated programs.")
  in
  let fuzz_seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Base seed; case $(i) uses SEED + $(i), so any failure is \
                   replayable in isolation.")
  in
  let depth_arg =
    Arg.(value & opt int Nd_check.Gen.default_params.max_depth
         & info [ "max-depth" ] ~docv:"D"
             ~doc:"Generator recursion depth bound (affects generation: \
                   replay with the same value).")
  in
  let replay_arg =
    Arg.(value & opt (some int) None
         & info [ "replay" ] ~docv:"SEED"
             ~doc:"Re-run the single case at SEED verbosely and exit.")
  in
  let workers_arg =
    Arg.(value & opt (some int) None
         & info [ "workers" ] ~docv:"W"
             ~doc:"Override the real-executor worker sweep with just W.")
  in
  let failures_arg =
    Arg.(value & opt (some string) None
         & info [ "failures-file" ] ~docv:"FILE"
             ~doc:"Append each failing seed to FILE (for CI artifacts).")
  in
  let run count seed max_depth replay workers failures_file =
    let params = { Nd_check.Gen.default_params with max_depth } in
    let config =
      match workers with
      | None -> Nd_check.Oracle.default_config
      | Some w ->
        { Nd_check.Oracle.default_config with exec_workers = [ w ] }
    in
    let still_fails s =
      match Nd_check.Oracle.check_spec ~config s with
      | Ok _ -> false
      | Error _ -> true
    in
    let report_failure ~seed spec failure =
      Format.printf "@.seed %d FAILED: %a@." seed Nd_check.Oracle.pp_failure
        failure;
      let shrunk = Nd_check.Gen.shrink spec ~still_fails in
      let shrunk_failure =
        match Nd_check.Oracle.check_spec ~config shrunk with
        | Error f -> f
        | Ok _ -> failure
        (* shrinking raced a flaky check; show the original *)
      in
      Format.printf "shrunk program (%d leaves, still fails with [%s]):@.%a@."
        (Nd_check.Gen.n_leaves shrunk)
        shrunk_failure.Nd_check.Oracle.stage Nd_check.Gen.pp shrunk;
      Format.printf "replay: ndsim fuzz --replay %d%s@." seed
        (if max_depth <> Nd_check.Gen.default_params.max_depth then
           Printf.sprintf " --max-depth %d" max_depth
         else "");
      match failures_file with
      | None -> ()
      | Some file ->
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
        Printf.fprintf oc "%d\n" seed;
        close_out oc
    in
    match replay with
    | Some seed -> (
      let spec = Nd_check.Gen.generate ~seed ~params () in
      Format.printf "seed %d generates:@.%a@." seed Nd_check.Gen.pp spec;
      match Nd_check.Oracle.check_spec ~config spec with
      | Ok r ->
        Format.printf
          "ok: %d vertices, %d leaves, work=%d span=%d, race_free=%b, %d \
           paths agree@."
          r.n_vertices r.n_leaves r.work r.span r.race_free r.paths
      | Error f ->
        report_failure ~seed spec f;
        exit 1)
    | None ->
      let failed = ref 0 and race_free = ref 0 and paths = ref 0 in
      for i = 0 to count - 1 do
        let case_seed = seed + i in
        let spec = Nd_check.Gen.generate ~seed:case_seed ~params () in
        (match Nd_check.Oracle.check_spec ~config spec with
        | Ok r ->
          if r.race_free then incr race_free;
          paths := !paths + r.paths
        | Error f ->
          incr failed;
          report_failure ~seed:case_seed spec f);
        if (i + 1) mod 100 = 0 then
          Format.printf "  %d/%d cases, %d failures@." (i + 1) count !failed
      done;
      Format.printf
        "fuzz: %d programs (seeds %d..%d), %d race-free, %d execution paths \
         checked, %d failures@."
        count seed (seed + count - 1) !race_free !paths !failed;
      if !failed > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Generative conformance fuzzing: random ND programs through the \
             cross-executor differential oracle (serial, greedy, \
             space-bounded, work-stealing, real dataflow/fork-join), with \
             shrinking and per-seed replay.")
    Term.(const run $ count_arg $ fuzz_seed_arg $ depth_arg $ replay_arg
          $ workers_arg $ failures_arg)

(* ------------------------------- run -------------------------------- *)

let run_cmd =
  let module Backend = Nd_runtime.Backend in
  let backend_arg =
    let doc =
      Printf.sprintf
        "Real-executor backend: one of %s.  $(b,fiber) runs each strand as \
         an effect-handler fiber that suspends on fire-edge waits instead \
         of occupying a worker."
        (String.concat ", " Backend.names)
    in
    Arg.(value & opt string "dataflow" & info [ "backend" ] ~docv:"B" ~doc)
  in
  let workers_arg =
    Arg.(value & opt (some int) None
         & info [ "workers"; "w" ] ~docv:"W"
             ~doc:"Worker domains (default: \\$(b,NDSIM_WORKERS) or the core \
                   count).")
  in
  let grain_arg =
    Arg.(value & opt int 0
         & info [ "grain" ] ~docv:"G"
             ~doc:"Leaf-coarsening work threshold: program subtrees with \
                   total work <= G run serially on one worker (0: vertex \
                   granularity).")
  in
  let run algo n base seed np backend workers grain =
    match Backend.find backend with
    | None ->
      die_usage "unknown backend %s; expected one of %s" backend
        (String.concat ", " Backend.names)
    | Some (module B : Backend.S) ->
      let w = build_workload algo n base seed in
      let p = Workload.compile ~mode:(mode_of np) w in
      let nw =
        match workers with
        | Some w -> max 1 w
        | None -> Nd_runtime.Executor.default_workers ()
      in
      w.Workload.reset ();
      let t0 = Unix.gettimeofday () in
      let fiber_stats =
        if String.equal B.name "fiber" then
          Some (Nd_runtime.Fiber_exec.run_program ~workers:nw ~grain p)
        else begin
          B.run ~workers:nw ~grain p;
          None
        end
      in
      let dt = Unix.gettimeofday () -. t0 in
      Format.printf "%s %s n=%d base=%d: workers=%d grain=%d %.4fs max err=%g@."
        B.name w.Workload.name w.Workload.n w.Workload.base nw grain dt
        (w.Workload.check ());
      match fiber_stats with
      | None -> ()
      | Some s ->
        Format.printf
          "fiber: %d fibers, %d completed, %d suspensions, %d steals, peak \
           blocked %d@."
          s.Nd_runtime.Fiber_exec.fibers s.Nd_runtime.Fiber_exec.completed
          s.Nd_runtime.Fiber_exec.suspensions s.Nd_runtime.Fiber_exec.steals
          s.Nd_runtime.Fiber_exec.peak_blocked
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute an algorithm on a real multicore backend (forkjoin, \
             dataflow, or the effects-based fiber scheduler) and report \
             wall-clock time plus the numerical check.")
    Term.(const run $ algo_arg $ n_arg $ base_arg $ seed_arg $ np_arg
          $ backend_arg $ workers_arg $ grain_arg)

(* ------------------------------ serve ------------------------------ *)

let socket_arg =
  Arg.(value & opt string "/tmp/ndsim.sock"
       & info [ "socket"; "s" ] ~docv:"ADDR"
           ~doc:"Server address: a unix socket path, or $(b,HOST:PORT) for \
                 TCP.")

let serve_cmd =
  let module Server = Nd_serve.Server in
  let pool_arg =
    Arg.(value & opt_all string []
         & info [ "pool" ] ~docv:"NAME=SIZE"
             ~doc:"Worker-pool size override, e.g. $(b,--pool analyze=2) \
                   (pools: analyze, simulate, fuzz; repeatable).")
  in
  let shards_arg =
    Arg.(value & opt int 4
         & info [ "shards" ] ~docv:"K"
             ~doc:"Request-queue shards per pool.")
  in
  let max_frame_arg =
    Arg.(value & opt int Nd_util.Json.Frame.default_max_frame
         & info [ "max-frame" ] ~docv:"BYTES"
             ~doc:"Reject request frames above this payload size.")
  in
  let quiet_arg = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No banner.") in
  let fiber_pool_arg =
    Arg.(value & opt (some int) None
         & info [ "fiber-pool" ] ~docv:"W"
             ~doc:"Run request handlers as effect-handler fibers on one \
                   shared W-worker pool instead of the named micropools.")
  in
  let parse_pool s =
    match String.index_opt s '=' with
    | Some i -> (
      let name = String.sub s 0 i
      and size = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt size with
      | Some k when k >= 1 && List.mem name [ "analyze"; "simulate"; "fuzz" ]
        ->
        (name, k)
      | _ -> die_usage "bad --pool %s (want analyze|simulate|fuzz=SIZE)" s)
    | None -> die_usage "bad --pool %s (want analyze|simulate|fuzz=SIZE)" s
  in
  let run addr pools shards max_frame quiet fiber_pool =
    (match fiber_pool with
    | Some w when w < 1 -> die_usage "bad --fiber-pool %d (want >= 1)" w
    | _ -> ());
    let cfg =
      {
        (Server.default_config (Nd_serve.Protocol.addr_of_string addr)) with
        Server.pool_sizes = List.map parse_pool pools;
        shards = max 1 shards;
        max_frame = max 1024 max_frame;
        quiet;
        fiber_pool;
      }
    in
    match Server.run cfg with
    | () -> ()
    | exception Unix.Unix_error (e, _, arg) ->
      Format.eprintf "ndsim serve: cannot listen on %s: %s (%s)@." addr
        (Unix.error_message e) arg;
      exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the analysis daemon: lint/race/analyze/simulate/fuzz/suite \
             requests \
             over length-prefixed JSON frames, dispatched to named worker \
             micropools with keyed artifact caches.  Send a \
             $(b,{\"kind\":\"shutdown\"}) request (or SIGINT) to stop.")
    Term.(const run $ socket_arg $ pool_arg $ shards_arg $ max_frame_arg
          $ quiet_arg $ fiber_pool_arg)

(* ----------------------------- loadgen ----------------------------- *)

let loadgen_cmd =
  let module Loadgen = Nd_serve.Loadgen in
  let module P = Nd_serve.Protocol in
  let clients_arg =
    Arg.(value & opt int 4
         & info [ "clients"; "c" ] ~docv:"N" ~doc:"Concurrent closed-loop clients.")
  in
  let duration_arg =
    Arg.(value & opt float 10.
         & info [ "duration"; "d" ] ~docv:"S" ~doc:"Run length in seconds.")
  in
  let pipeline_arg =
    Arg.(value & opt int 8
         & info [ "pipeline" ] ~docv:"W"
             ~doc:"Requests in flight per connection (1 = strict \
                   request/response lockstep).")
  in
  let mix_arg =
    Arg.(value & opt string "lint=2,sim=1,race=1"
         & info [ "mix" ] ~docv:"MIX"
             ~doc:"Weighted request mix: comma/colon-separated \
                   $(b,kind=weight) tokens over ping, lint, race, analyze, \
                   sim, stats (e.g. $(b,lint:sim:race)).")
  in
  let lg_algo_arg =
    Arg.(value & opt string "mm"
         & info [ "algo"; "a" ] ~docv:"NAME" ~doc:"Workload the requests hit.")
  in
  let lg_n_arg =
    Arg.(value & opt int 16 & info [ "n"; "size" ] ~docv:"N" ~doc:"Problem size.")
  in
  let lg_base_arg =
    Arg.(value & opt int 4 & info [ "base"; "b" ] ~docv:"B" ~doc:"Base-case size.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the BENCH_5 latency/throughput JSON to FILE.")
  in
  let shutdown_arg =
    Arg.(value & flag
         & info [ "shutdown" ]
             ~doc:"Send a shutdown request to the server after the run \
                   (clean daemon exit for CI).")
  in
  let run addr clients duration pipeline mix algo n base seed json_out
      shutdown =
    let mix =
      match Loadgen.parse_mix mix with
      | m -> m
      | exception Failure msg -> die_usage "%s" msg
    in
    let spec =
      {
        Loadgen.addr = P.addr_of_string addr;
        clients;
        duration;
        pipeline = max 1 pipeline;
        mix;
        wk = { P.algo; n = Some n; base = Some base; seed; np = false };
        top = 1;
      }
    in
    (* --duration 0 skips the load phase: with --shutdown that makes a
       pure "stop the daemon" invocation *)
    let r =
      if duration <= 0. then None
      else
        match Loadgen.run spec with
        | r -> Some r
        | exception Unix.Unix_error (e, _, _) ->
          Format.eprintf "ndsim loadgen: cannot reach %s: %s@." addr
            (Unix.error_message e);
          exit 1
    in
    (match r with
    | None -> ()
    | Some r ->
      Nd_util.Table.print (Loadgen.table r);
      (match json_out with
      | None -> ()
      | Some file ->
        let oc = open_out file in
        Nd_util.Json.to_channel oc (Loadgen.to_json spec r);
        close_out oc;
        Format.printf "wrote %s@." file));
    if shutdown then begin
      match Nd_serve.Client.connect spec.Loadgen.addr with
      | conn ->
        (try
           ignore (Nd_serve.Client.call_exn conn P.Shutdown);
           Format.printf "server acknowledged shutdown@."
         with e ->
           Format.eprintf "shutdown request failed: %s@."
             (Printexc.to_string e));
        Nd_serve.Client.close conn
      | exception Unix.Unix_error _ ->
        Format.eprintf "shutdown request failed: server unreachable@."
    end;
    match r with
    | Some r when r.Loadgen.failures > 0 -> exit 1
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Closed-loop load generator against $(b,ndsim serve): N client \
             connections keep a pipeline window of weighted \
             lint/sim/race/ping requests in flight for a fixed duration, \
             then report per-kind latency percentiles and total \
             throughput (the BENCH_5 numbers).")
    Term.(const run $ socket_arg $ clients_arg $ duration_arg $ pipeline_arg
          $ mix_arg $ lg_algo_arg $ lg_n_arg $ lg_base_arg $ seed_arg
          $ json_arg $ shutdown_arg)

let () =
  let doc = "Nested Dataflow model: analysis, simulation and experiments" in
  let info = Cmd.info "ndsim" ~version:"1.0.0" ~doc in
  let code =
    Cmd.eval
      (Cmd.group info
         [ span_cmd; race_cmd; lint_cmd; analyze_cmd; sb_cmd; sched_cmd;
           check_cmd; drs_cmd; trace_cmd; experiments_cmd; suite_cmd;
           fuzz_cmd; run_cmd; serve_cmd; loadgen_cmd ])
  in
  (* cmdliner reports CLI misuse — unknown subcommand, bad flag — as
     its [cli_error] code (124) after printing usage on stderr; fold it
     onto the conventional 2 so every usage error, cmdliner-detected or
     [die_usage], exits identically *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
