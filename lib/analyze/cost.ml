module Is = Nd_util.Interval_set
module Json = Nd_util.Json
module Fire_rule = Nd.Fire_rule
module Pedigree = Nd.Pedigree
module Program = Nd.Program
module Spawn_tree = Nd.Spawn_tree
module Strand = Nd.Strand
module Pmh = Nd_pmh.Pmh
module Sb = Nd_sched.Sb_sched

(* The structural mirror of Program.compile: same post-order node layout,
   same fire-arrow rewriting, but no DAG.  Span is a longest-path DP over
   a DFS {e event} numbering of the tree — one event per leaf, a
   pre-visit begin event and post-visit end event per Par/Fire, Seq
   aliasing its first child's begin and last child's end, exactly like
   the DAG's vertex aliasing.  Every structural edge goes from an
   earlier event to a later one by construction, and every rewritten
   fire arrow runs from the source subtree to the sink subtree of some
   Fire node (the rewriting never escapes them), i.e. also forward in
   DFS order — so event order is a topological order of the implied DAG
   and one forward sweep computes the exact critical path. *)

type kind = Leaf of Strand.t | Seq | Par | Fire of string

type node = {
  kind : kind;
  children : int array;
  begin_ev : int;
  end_ev : int;
}

(* Hash-consed translation-normalized subtree shapes.  Two nodes share a
   shape iff their subtrees are exact translates of each other (same
   structure, works and rule names; footprints shifted by one global
   offset).  Work, footprint cardinality, peak footprint and the Q*
   recurrence are all translation-invariant, so they are stored once per
   shape; regular divide-and-conquer trees collapse to O(depth) shapes. *)
type shape = {
  s_children : int array;  (* child shape ids; [||] for leaves *)
  s_fp : Is.t;  (* footprint shifted so its minimum address is 0 *)
  s_size : int;
  s_work : int;
  s_peak : int;
}

type shape_key =
  | KLeaf of int * (int * int) list * (int * int) list
      (* work, normalized read / write intervals *)
  | KNode of int * string * (int * int) list
      (* construct tag, rule name, per-child (shape id, footprint offset) *)

(* The generic [Hashtbl.hash] inspects a bounded prefix of the key, so
   wide nodes whose child lists share a long prefix (e.g. the diagonal
   [Seq] rows of a DP sweep) all collide and interning degrades to
   quadratic list comparisons.  Fold the whole key instead — child
   entries are ints, so a full-depth hash is cheap. *)
module Shape_key = struct
  type t = shape_key

  let equal (a : t) b = a = b

  let fold_pairs = List.fold_left (fun h (a, b) -> ((h * 31) + a) * 31 + b)

  let hash = function
    | KLeaf (w, rs, ws) -> fold_pairs (fold_pairs ((w * 31) + 1) rs) ws
    | KNode (tag, rule, ds) ->
      fold_pairs ((tag * 31) + Hashtbl.hash rule) ds
end

module Shape_tbl = Hashtbl.Make (Shape_key)

type t = {
  shapes : shape array;
  root_shape : int;
  qmemo : (int * int, int) Hashtbl.t;  (* (shape id, m) -> Q* *)
  work : int;
  span : int;
  peak : int;
  root_size : int;
  n_leaves : int;
  n_nodes : int;
  n_fire_edges : int;
}

type report = {
  work : int;
  span : int;
  parallelism : float;
  peak_footprint : int;
  root_size : int;
  n_leaves : int;
  n_nodes : int;
  n_fire_edges : int;
  n_shapes : int;
}

let dummy_node =
  { kind = Seq; children = [||]; begin_ev = 0; end_ev = 0 }

let dummy_shape =
  { s_children = [||]; s_fp = Is.empty; s_size = 0; s_work = 0; s_peak = 0 }

let analyze ~registry tree =
  (* ---------------- flatten: nodes, events, structural edges -------- *)
  let store = ref (Array.make 64 dummy_node) in
  let n_nodes = ref 0 in
  let works = ref (Array.make 64 0) in
  let n_ev = ref 0 in
  let edges = ref [] in
  let n_leaves = ref 0 in
  let add_node node =
    let id = !n_nodes in
    if id >= Array.length !store then begin
      let bigger = Array.make (2 * Array.length !store) dummy_node in
      Array.blit !store 0 bigger 0 id;
      store := bigger
    end;
    !store.(id) <- node;
    incr n_nodes;
    id
  in
  let get i = !store.(i) in
  let new_event w =
    let id = !n_ev in
    if id >= Array.length !works then begin
      let bigger = Array.make (2 * Array.length !works) 0 in
      Array.blit !works 0 bigger 0 id;
      works := bigger
    end;
    !works.(id) <- w;
    incr n_ev;
    id
  in
  let add_edge u v = edges := (u, v) :: !edges in
  let rec build t =
    match t with
    | Spawn_tree.Leaf s ->
      let ev = new_event s.Strand.work in
      incr n_leaves;
      add_node
        { kind = Leaf s; children = [||]; begin_ev = ev; end_ev = ev }
    | Spawn_tree.Seq cs ->
      let ids = List.map build cs in
      let arr = Array.of_list ids in
      Array.iteri
        (fun i c ->
          if i > 0 then add_edge (get arr.(i - 1)).end_ev (get c).begin_ev)
        arr;
      let begin_ev = (get arr.(0)).begin_ev in
      let end_ev = (get arr.(Array.length arr - 1)).end_ev in
      add_node { kind = Seq; children = arr; begin_ev; end_ev }
    | Spawn_tree.Par cs ->
      let begin_ev = new_event 0 in
      let ids = List.map build cs in
      let end_ev = new_event 0 in
      let arr = Array.of_list ids in
      Array.iter
        (fun c ->
          add_edge begin_ev (get c).begin_ev;
          add_edge (get c).end_ev end_ev)
        arr;
      add_node { kind = Par; children = arr; begin_ev; end_ev }
    | Spawn_tree.Fire { rule; src; snk } ->
      if not (Fire_rule.mem registry rule) then
        invalid_arg
          (Printf.sprintf "Cost.analyze: undefined fire type %S" rule);
      let begin_ev = new_event 0 in
      let a = build src in
      let b = build snk in
      let end_ev = new_event 0 in
      add_edge begin_ev (get a).begin_ev;
      add_edge begin_ev (get b).begin_ev;
      add_edge (get a).end_ev end_ev;
      add_edge (get b).end_ev end_ev;
      add_node
        { kind = Fire rule; children = [| a; b |]; begin_ev; end_ev }
  in
  let root = build tree in
  let nodes = Array.sub !store 0 !n_nodes in
  ignore root;
  (* ---------------- fire-arrow rewriting (mirror of Program) -------- *)
  let is_leaf id = nodes.(id).children = [||] in
  let resolve id ped =
    let rec go id = function
      | [] -> id
      | step :: rest ->
        let cs = nodes.(id).children in
        if step >= 1 && step <= Array.length cs then go cs.(step - 1) rest
        else id (* attach at the deepest existing node *)
    in
    go id (Pedigree.to_list ped)
  in
  let fire_pairs = Hashtbl.create 256 in
  let full_edge a b =
    if a <> b then begin
      let u = nodes.(a).end_ev and v = nodes.(b).begin_ev in
      if u <> v && not (Hashtbl.mem fire_pairs (a, b)) then begin
        Hashtbl.add fire_pairs (a, b) ();
        add_edge u v
      end
    end
  in
  let visited = Hashtbl.create 4096 in
  let rec process a b target =
    match target with
    | Fire_rule.Full -> full_edge a b
    | Fire_rule.Named r ->
      let key = (a, b, r) in
      if not (Hashtbl.mem visited key) then begin
        Hashtbl.add visited key ();
        let rules =
          try Fire_rule.find registry r
          with Not_found ->
            invalid_arg
              (Printf.sprintf "Cost.analyze: undefined fire type %S" r)
        in
        if rules <> [] then
          if is_leaf a && is_leaf b then full_edge a b
          else
            List.iter
              (fun { Fire_rule.src; via; dst } ->
                let a' = resolve a src and b' = resolve b dst in
                match via with
                | Fire_rule.Full -> full_edge a' b'
                | Fire_rule.Named r' ->
                  if a' = a && b' = b && r' = r then
                    (* no structural progress: conservative full edge *)
                    full_edge a b
                  else process a' b' via)
              rules
      end
  in
  Array.iter
    (fun n ->
      match n.kind with
      | Fire r -> process n.children.(0) n.children.(1) (Fire_rule.Named r)
      | Leaf _ | Seq | Par -> ())
    nodes;
  (* ---------------- span: forward longest-path DP over events ------- *)
  let n_ev = !n_ev in
  let works = !works in
  let succs = Array.make n_ev [] in
  List.iter (fun (u, v) -> succs.(u) <- v :: succs.(u)) !edges;
  let dist = Array.make n_ev 0 in
  let span = ref 0 in
  for v = 0 to n_ev - 1 do
    let d = dist.(v) + works.(v) in
    if d > !span then span := d;
    List.iter (fun w -> if d > dist.(w) then dist.(w) <- d) succs.(v)
  done;
  (* ---------------- shapes: hash-consed translated subtrees --------- *)
  let shape_ids : int Shape_tbl.t = Shape_tbl.create 256 in
  let shapes = ref (Array.make 64 dummy_shape) in
  let n_shapes = ref 0 in
  let add_shape s =
    let id = !n_shapes in
    if id >= Array.length !shapes then begin
      let bigger = Array.make (2 * Array.length !shapes) dummy_shape in
      Array.blit !shapes 0 bigger 0 id;
      shapes := bigger
    end;
    !shapes.(id) <- s;
    incr n_shapes;
    id
  in
  let intern key mk =
    match Shape_tbl.find_opt shape_ids key with
    | Some id -> id
    | None ->
      let id = add_shape (mk ()) in
      Shape_tbl.add shape_ids key id;
      id
  in
  let node_shape = Array.make (Array.length nodes) (-1) in
  let node_min = Array.make (Array.length nodes) 0 in
  (* post-order ids: children are interned before their parent *)
  Array.iteri
    (fun id n ->
      match n.kind with
      | Leaf s ->
        let fp = Strand.footprint s in
        let mn =
          match Is.intervals fp with [] -> 0 | (lo, _) :: _ -> lo
        in
        let key =
          KLeaf
            ( s.Strand.work,
              Is.intervals (Is.shift s.Strand.reads (-mn)),
              Is.intervals (Is.shift s.Strand.writes (-mn)) )
        in
        node_min.(id) <- mn;
        node_shape.(id) <-
          intern key (fun () ->
              let nfp = Is.shift fp (-mn) in
              let size = Is.cardinal nfp in
              { s_children = [||]; s_fp = nfp; s_size = size;
                s_work = s.Strand.work; s_peak = size })
      | Seq | Par | Fire _ ->
        let mn =
          Array.fold_left
            (fun acc c ->
              if Is.is_empty !shapes.(node_shape.(c)).s_fp then acc
              else
                match acc with
                | None -> Some node_min.(c)
                | Some m -> Some (min m node_min.(c)))
            None n.children
        in
        let mn = match mn with None -> 0 | Some m -> m in
        let deltas =
          Array.to_list
            (Array.map
               (fun c ->
                 let s = node_shape.(c) in
                 if Is.is_empty !shapes.(s).s_fp then (s, 0)
                 else (s, node_min.(c) - mn))
               n.children)
        in
        let tag, rule =
          match n.kind with
          | Seq -> (0, "")
          | Par -> (1, "")
          | Fire r -> (2, r)
          | Leaf _ -> assert false
        in
        node_min.(id) <- mn;
        node_shape.(id) <-
          intern (KNode (tag, rule, deltas)) (fun () ->
              let fp =
                List.fold_left
                  (fun acc (s, d) -> Is.union acc (Is.shift !shapes.(s).s_fp d))
                  Is.empty deltas
              in
              let sum f =
                List.fold_left (fun acc (s, _) -> acc + f !shapes.(s)) 0 deltas
              in
              let peak =
                match n.kind with
                | Seq ->
                  List.fold_left
                    (fun acc (s, _) -> max acc !shapes.(s).s_peak)
                    0 deltas
                | Par | Fire _ -> sum (fun s -> s.s_peak)
                | Leaf _ -> assert false
              in
              { s_children = Array.map (fun c -> node_shape.(c)) n.children;
                s_fp = fp; s_size = Is.cardinal fp;
                s_work = sum (fun s -> s.s_work); s_peak = peak }))
    nodes;
  let root_shape = node_shape.(Array.length nodes - 1) in
  let root = !shapes.(root_shape) in
  {
    shapes = Array.sub !shapes 0 !n_shapes;
    root_shape;
    qmemo = Hashtbl.create 64;
    work = root.s_work;
    span = !span;
    peak = root.s_peak;
    root_size = root.s_size;
    n_leaves = !n_leaves;
    n_nodes = Array.length nodes;
    n_fire_edges = Hashtbl.length fire_pairs;
  }

let of_program p = analyze ~registry:(Program.registry p) (Program.tree p)

let work (t : t) = t.work

let span (t : t) = t.span

let peak_footprint (t : t) = t.peak

let root_size (t : t) = t.root_size

(* Mirrors Program.decompose + Pcc.q_star: a node whose size fits in m
   (or a leaf) is a maximal task contributing its size; otherwise it is a
   glue node contributing 1 plus its children's totals.  Both the
   predicate and the contributions depend only on the shape. *)
let q_star t ~m =
  if m < 1 then invalid_arg "Cost.q_star: m < 1";
  let rec go s =
    match Hashtbl.find_opt t.qmemo (s, m) with
    | Some q -> q
    | None ->
      let sh = t.shapes.(s) in
      let q =
        if sh.s_size <= m || sh.s_children = [||] then sh.s_size
        else
          1 + Array.fold_left (fun acc c -> acc + go c) 0 sh.s_children
      in
      Hashtbl.add t.qmemo (s, m) q;
      q
  in
  go t.root_shape

let report (t : t) =
  {
    work = t.work;
    span = t.span;
    parallelism =
      (if t.span = 0 then 0. else float_of_int t.work /. float_of_int t.span);
    peak_footprint = t.peak;
    root_size = t.root_size;
    n_leaves = t.n_leaves;
    n_nodes = t.n_nodes;
    n_fire_edges = t.n_fire_edges;
    n_shapes = Array.length t.shapes;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>work        %d@,span        %d@,parallelism %.2f@,\
     peak fp     %d@,root size   %d@,leaves      %d@,nodes       %d@,\
     fire edges  %d@,shapes      %d@]"
    r.work r.span r.parallelism r.peak_footprint r.root_size r.n_leaves
    r.n_nodes r.n_fire_edges r.n_shapes

let report_to_json r =
  Json.Obj
    [
      ("work", Json.Int r.work);
      ("span", Json.Int r.span);
      ("parallelism", Json.Float r.parallelism);
      ("peak_footprint", Json.Int r.peak_footprint);
      ("root_size", Json.Int r.root_size);
      ("n_leaves", Json.Int r.n_leaves);
      ("n_nodes", Json.Int r.n_nodes);
      ("n_fire_edges", Json.Int r.n_fire_edges);
      ("n_shapes", Json.Int r.n_shapes);
    ]

(* ------------------------------------------------------------------ *)
(* Theorem 1 certification                                             *)
(* ------------------------------------------------------------------ *)

type level_check = { level : int; m : int; misses : int; bound : int }

type certification = {
  sigma : float;
  levels : level_check list;
  certified : bool;
}

let certify_theorem1 ?(sigma = 1. /. 3.) program machine =
  let cost = of_program program in
  let stats = Sb.run ~sigma ~accounting:Sb.Rho program machine in
  let levels =
    List.init (Pmh.n_levels machine) (fun j ->
        let level = j + 1 in
        let m =
          max 1 (int_of_float (sigma *. float_of_int (Pmh.size machine ~level)))
        in
        { level; m; misses = stats.Sb.misses.(j); bound = q_star cost ~m })
  in
  {
    sigma;
    levels;
    certified = List.for_all (fun l -> l.misses <= l.bound) levels;
  }

let certification_to_json c =
  Json.Obj
    [
      ("sigma", Json.Float c.sigma);
      ("certified", Json.Bool c.certified);
      ( "levels",
        Json.List
          (List.map
             (fun l ->
               Json.Obj
                 [
                   ("level", Json.Int l.level);
                   ("m", Json.Int l.m);
                   ("misses", Json.Int l.misses);
                   ("q_star_bound", Json.Int l.bound);
                 ])
             c.levels) );
    ]

let pp_certification ppf c =
  Format.fprintf ppf "@[<v>Theorem 1 (sigma=%.2f): %s@," c.sigma
    (if c.certified then "certified" else "VIOLATED");
  List.iter
    (fun l ->
      Format.fprintf ppf "  level %d: misses %d %s Q*(%d) = %d@," l.level
        l.misses
        (if l.misses <= l.bound then "<=" else ">")
        l.m l.bound)
    c.levels;
  Format.fprintf ppf "@]"
