(** Static structural cost analysis of spawn trees (ND model).

    One pass over a {!Nd.Spawn_tree.t} plus its fire-rule registry
    computes the quantities the paper's theorems talk about — exact
    work, span {e including fire-edge chains}, peak footprint, and the
    per-level serial cache complexity [Q*(t; M)] — without materializing
    the fine-grained algorithm DAG.  The pass is O(tree nodes + fire
    edges): span comes from a longest-path DP over a DFS event numbering
    of the tree (which is a topological order of the DAG the DRS would
    build, see DESIGN.md §14), and work / footprint / [Q*] are memoized
    per translation-normalized subtree {e shape}, so regular
    divide-and-conquer algorithms pay for each distinct shape once.

    The numbers are exact, not bounds: on every program where the DAG
    path is defined, [work]/[span]/[root_size]/[q_star] equal
    [Dag.work]/[Dag.span]/[Program.size]/[Pcc.q_star] bit for bit (the
    oracle, the E12 experiment and [test_analyze] enforce this).  The
    point is scale — the structural pass runs on n=512 workload families
    whose DAGs are far past {!Nd_dag.Race.max_vertices}.

    [peak_footprint] is the one conservative quantity: the maximum, over
    antichains of the tree, of the summed footprint sizes of
    simultaneously-live subtrees (Seq takes the max over children, Par
    and Fire the sum) — an upper bound on the space any schedule of the
    construct can have live at once, used by lint rule ND011 to warn
    when a machine level cannot hold the working set. *)

type t

(** Aggregate results of the structural pass. *)
type report = {
  work : int;  (** total strand work, [= Dag.work] *)
  span : int;  (** critical path including fire edges, [= Dag.span] *)
  parallelism : float;  (** [work / span] ([0.] when [span = 0]) *)
  peak_footprint : int;  (** conservative peak live footprint (words) *)
  root_size : int;  (** [s(root)]: distinct words touched *)
  n_leaves : int;
  n_nodes : int;  (** spawn-tree nodes *)
  n_fire_edges : int;  (** distinct rewritten dataflow arrows *)
  n_shapes : int;  (** distinct subtree shapes (memoization classes) *)
}

(** [analyze ~registry tree] runs the structural pass.
    @raise Invalid_argument on an undefined fire type (same condition as
    [Program.compile]). *)
val analyze : registry:Nd.Fire_rule.registry -> Nd.Spawn_tree.t -> t

(** [of_program p] analyzes [p]'s tree against [p]'s registry. *)
val of_program : Nd.Program.t -> t

val report : t -> report

val work : t -> int

val span : t -> int

val peak_footprint : t -> int

val root_size : t -> int

(** [q_star t ~m] is the serial cache complexity of the m-maximal task
    decomposition: the summed sizes of maximal tasks plus the number of
    glue nodes — structurally identical to
    [Nd_mem.Pcc.q_star (Program.compile ...) ~m], but computed by a
    memoized recurrence over subtree shapes.
    @raise Invalid_argument if [m < 1]. *)
val q_star : t -> m:int -> int

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> Nd_util.Json.t

(** {1 Theorem 1 certification} *)

type level_check = {
  level : int;  (** 1-based PMH cache level *)
  m : int;  (** the bound's capacity argument, [max 1 (floor (sigma*M_j))] *)
  misses : int;  (** SB-simulated ρ misses at this level *)
  bound : int;  (** static [Q*(t; m)] *)
}

type certification = {
  sigma : float;
  levels : level_check list;
  certified : bool;  (** [misses <= bound] at every level *)
}

(** [certify_theorem1 ?sigma program machine] runs the space-bounded
    scheduler under ρ accounting and checks the paper's Theorem 1 cache
    bound: per-level misses at cache level [j] must not exceed the
    static [Q*(t; sigma * M_j)].  [sigma] defaults to 1/3 (Lemma 6).
    The simulation needs the compiled program; the bounds come from the
    structural pass. *)
val certify_theorem1 :
  ?sigma:float -> Nd.Program.t -> Nd_pmh.Pmh.t -> certification

val certification_to_json : certification -> Nd_util.Json.t

val pp_certification : Format.formatter -> certification -> unit
