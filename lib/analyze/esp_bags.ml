module Is = Nd_util.Interval_set
module Race = Nd_dag.Race
module Program = Nd.Program
module Rule_check = Nd.Rule_check
module Strand = Nd.Strand

(* ESP-bags: SP-bags extended to ⇝ fire edges.

   One serial-elision DFS of the spawn tree answers every "is the
   completed strand u ordered before the currently executing strand v?"
   query with two structures:

   - the classic SP part: a union-find of *bags* over completed leaves.
     Each internal node accumulates its completed children into one bag
     whose root is tagged S (Seq node: earlier children are serially
     before later ones) or P (Par/Fire node: children are structurally
     unordered).  A completed leaf is serially before the current leaf
     iff its bag root is tagged S.  Amortized inverse-Ackermann per
     query.

   - the fire extension: every non-structural edge the DRS adds is
     [end(a) -> begin(b)] for spawn-tree nodes a, b (Program.fire_edges),
     i.e. "the contiguous DFS leaf interval of a precedes that of b".
     We maintain, per node n, interval sets over leaf indices:

       pre(n)  = leaves ordered before begin(n)
               = pre(parent) ∪ (posts of earlier Seq siblings)
                             ∪ (posts of fire-edge sources into n)
       post(n) = leaves ordered before end(n)
               = leaves(n) ∪ pre(n) ∪ ⋃_child post(c)

     Both recursions mirror the DAG's predecessor structure exactly, so
     pre(leaf v) is the *exact* happens-before set of v projected onto
     leaves — including chains that alternate fire and seq edges.  The
     sets stay compact because leaves(n) is a single interval that
     absorbs the whole subtree; only external fire sources contribute
     extra components.

   Shadow memory holds, per address, the last writer and an antichain of
   readers (readers not ordered among themselves); the standard
   SP-bags argument — extended here to arbitrary interval-closure
   orderings — shows that checking new accesses against just these
   suffices to report at least one race per racy location.  See
   DESIGN.md §9 for the full construction and the near-linearity
   argument. *)

type stats = {
  n_leaves : int;
  n_fire_edges : int;
  n_accesses : int;  (** shadow-memory updates performed *)
  n_queries : int;  (** ordering queries answered *)
  sp_hits : int;  (** queries settled by the S-bag fast path *)
}

type verdict = { races : Race.race list; stats : stats }

let leaf_strands program =
  Array.init (Program.n_leaves program) (fun i ->
      match Program.kind_of program (Program.leaf_node program i) with
      | Program.Leaf s -> s
      | Program.Seq | Program.Par | Program.Fire _ -> assert false)

let max_address program =
  List.fold_left
    (fun acc (_, hi) -> max acc hi)
    0
    (Is.intervals (Program.footprint program (Program.root program)))

exception Done

let analyze ?(limit = 16) program =
  let n_nodes = Program.n_nodes program in
  let n_leaves = Program.n_leaves program in
  let strands = leaf_strands program in
  let fire_edges = Program.fire_edges program in
  let fire_in = Array.make n_nodes [] in
  List.iter (fun (a, b) -> fire_in.(b) <- a :: fire_in.(b)) fire_edges;
  (* post.(n) is only valid once completed.(n); pre sets live on the DFS
     stack (one per active node) *)
  let post = Array.make n_nodes Is.empty in
  let completed = Array.make n_nodes false in
  (* union-find over leaf indices; [serial] is meaningful at roots only *)
  let parent = Array.init n_leaves (fun i -> i) in
  let rank = Array.make n_leaves 0 in
  let serial = Array.make n_leaves false in
  let rec find i =
    let p = parent.(i) in
    if p = i then i
    else begin
      let r = find p in
      parent.(i) <- r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra = rb then ra
    else if rank.(ra) < rank.(rb) then begin
      parent.(ra) <- rb;
      rb
    end
    else begin
      parent.(rb) <- ra;
      if rank.(ra) = rank.(rb) then rank.(ra) <- rank.(ra) + 1;
      ra
    end
  in
  (* accumulated bag per internal node: root leaf id, or -1 while empty *)
  let bag = Array.make n_nodes (-1) in
  let absorb_child node child_bag ~as_serial =
    let r =
      if bag.(node) < 0 then find child_bag else union bag.(node) child_bag
    in
    serial.(r) <- as_serial;
    bag.(node) <- r
  in
  (* shadow memory *)
  let size = max (max_address program) 1 in
  let writer = Array.make size (-1) in
  let readers = Array.make size [] in
  let n_accesses = ref 0 and n_queries = ref 0 and sp_hits = ref 0 in
  let races = ref [] and n_races = ref 0 in
  let seen = Hashtbl.create 64 in
  let emit u cur =
    if not (Hashtbl.mem seen (u, cur)) then begin
      Hashtbl.add seen (u, cur) ();
      let su = strands.(u) and sc = strands.(cur) in
      let ww = Is.inter su.Strand.writes sc.Strand.writes in
      let rw =
        Is.union
          (Is.inter su.Strand.reads sc.Strand.writes)
          (Is.inter su.Strand.writes sc.Strand.reads)
      in
      let write_write = not (Is.is_empty ww) in
      races :=
        {
          Race.u = Program.leaf_vertex program u;
          v = Program.leaf_vertex program cur;
          overlap = (if write_write then ww else rw);
          write_write;
        }
        :: !races;
      incr n_races;
      if !n_races >= limit then raise Done
    end
  in
  (* per-strand memo for the ordering predicate: generation-stamped so
     it needs no clearing between strands (slot = gen * 2 + verdict) *)
  let memo = Array.make n_leaves (-1) in
  let generation = ref 0 in
  let touch me ~pre s =
    (* [pre] and the bag tags are fixed for the whole strand, so the
       ordering predicate is a pure function of the queried leaf here:
       snapshot the interval set for binary search and memoize — the
       same neighbours recur at every address of the footprint *)
    let arr = Array.of_list (Is.intervals pre) in
    incr generation;
    let gen = !generation in
    let ordered u =
      let tag = memo.(u) in
      if tag lsr 1 = gen then tag land 1 = 1
      else begin
        incr n_queries;
        let b =
          if serial.(find u) then begin
            incr sp_hits;
            true
          end
          else begin
            let rec bs lo hi =
              if lo >= hi then false
              else begin
                let mid = (lo + hi) / 2 in
                let l, h = arr.(mid) in
                if u < l then bs lo mid
                else if u >= h then bs (mid + 1) hi
                else true
              end
            in
            bs 0 (Array.length arr)
          end
        in
        memo.(u) <- (gen * 2) + Bool.to_int b;
        b
      end
    in
    List.iter
      (fun (lo, hi) ->
        for a = lo to hi - 1 do
          incr n_accesses;
          let w = writer.(a) in
          if w >= 0 && w <> me && not (ordered w) then emit w me;
          (* keep the reader antichain: drop readers now ordered before
             [me]; any race they could still witness, [me] witnesses *)
          readers.(a) <-
            me :: List.filter (fun r -> r <> me && not (ordered r)) readers.(a)
        done)
      (Is.intervals s.Strand.reads);
    List.iter
      (fun (lo, hi) ->
        for a = lo to hi - 1 do
          incr n_accesses;
          let w = writer.(a) in
          if w >= 0 && w <> me && not (ordered w) then emit w me;
          List.iter
            (fun r -> if r <> me && not (ordered r) then emit r me)
            readers.(a);
          writer.(a) <- me;
          readers.(a) <- []
        done)
      (Is.intervals s.Strand.writes)
  in
  let rec visit node ~pre =
    (* fold the fire edges targeting this node into its entry set *)
    let pre =
      List.fold_left
        (fun acc a ->
          if not completed.(a) then
            invalid_arg
              "Esp_bags: fire edge from an uncompleted subtree (cyclic DAG)";
          Is.union acc post.(a))
        pre fire_in.(node)
    in
    (match Program.kind_of program node with
    | Program.Leaf s ->
      let lo, _ = Program.leaf_range program node in
      touch lo ~pre s;
      bag.(node) <- lo
    | Program.Seq ->
      let running = ref pre in
      Array.iter
        (fun c ->
          visit c ~pre:!running;
          running := Is.union !running post.(c);
          absorb_child node bag.(c) ~as_serial:true)
        (Program.children program node)
    | Program.Par | Program.Fire _ ->
      Array.iter
        (fun c ->
          visit c ~pre;
          absorb_child node bag.(c) ~as_serial:false)
        (Program.children program node));
    let lo, hi = Program.leaf_range program node in
    post.(node) <-
      Array.fold_left
        (fun acc c -> Is.union acc post.(c))
        (Is.union (Is.interval lo hi) pre)
        (Program.children program node);
    completed.(node) <- true
  in
  (try visit (Program.root program) ~pre:Is.empty with Done -> ());
  {
    races = List.rev !races;
    stats =
      {
        n_leaves;
        n_fire_edges = List.length fire_edges;
        n_accesses = !n_accesses;
        n_queries = !n_queries;
        sp_hits = !sp_hits;
      };
  }

let find_races ?limit program = (analyze ?limit program).races

let race_free program = find_races ~limit:1 program = []

(* Same LCA + pedigree lift as Rule_check.diagnose, minus the exact
   checker's reachability closure (and hence its size cap). *)
let diagnose ?limit program =
  List.map
    (fun (r : Race.race) ->
      let nu = Program.vertex_owner program r.Race.u in
      let nv = Program.vertex_owner program r.Race.v in
      let anc = Rule_check.lca program nu nv in
      let lo, hi = if nu <= nv then (nu, nv) else (nv, nu) in
      {
        Rule_check.race = r;
        lca = anc;
        lca_kind = Program.kind_of program anc;
        src_pedigree = Rule_check.pedigree_from program ~ancestor:anc lo;
        dst_pedigree = Rule_check.pedigree_from program ~ancestor:anc hi;
      })
    (find_races ?limit program)
