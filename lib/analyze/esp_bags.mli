(** ESP-bags: near-linear on-the-fly determinacy-race detection.

    The exact checker ({!Nd_dag.Race}) compares all vertex pairs against
    a quadratic reachability closure and refuses programs past
    {!Nd_dag.Race.max_vertices}.  This pass finds the same verdict in
    one serial-elision DFS of the spawn tree: reader/writer {e bags}
    over completed subtrees maintained with union-find answer the
    series-parallel ordering queries (the classic SP-bags algorithm),
    and the ⇝ fire edges — which in this DRS always order one
    contiguous DFS leaf interval entirely before another
    ({!Nd.Program.fire_edges}) — are honored through exact per-node
    happens-before interval sets.  Shadow memory keeps the last writer
    and an antichain of readers per address.

    Guarantee (see DESIGN.md §9): the pass reports at least one race
    for every location that has a racing access pair, and never reports
    a pair that is actually ordered — so {!race_free} always equals
    {!Nd_dag.Race.race_free} where the latter is defined, which the
    conformance oracle ({!Nd_check.Oracle}) cross-checks on every fuzz
    case.  Runs in near-linear time in the program's memory-access
    volume (inverse-Ackermann union-find on the SP fast path, a
    logarithmic interval-set membership on fire-ordered queries). *)

type stats = {
  n_leaves : int;
  n_fire_edges : int;
  n_accesses : int;  (** shadow-memory updates performed *)
  n_queries : int;  (** ordering queries answered *)
  sp_hits : int;  (** queries settled by the S-bag fast path *)
}

type verdict = { races : Nd_dag.Race.race list; stats : stats }

(** [analyze ?limit program] — the full pass; stops collecting after
    [limit] (default 16) distinct racing pairs.
    @raise Invalid_argument on a cyclic program (a fire edge whose source
    subtree has not completed when its target starts). *)
val analyze : ?limit:int -> Nd.Program.t -> verdict

(** [find_races ?limit program] — the races of {!analyze}, in the
    serial-elision order of their later endpoint.  Vertex ids refer to
    [Nd.Program.dag program], as with the exact checker. *)
val find_races : ?limit:int -> Nd.Program.t -> Nd_dag.Race.race list

val race_free : Nd.Program.t -> bool

(** [diagnose ?limit program] — the races lifted to spawn-tree LCA +
    pedigree findings, exactly as {!Nd.Rule_check.diagnose} reports them
    but without the reachability size cap. *)
val diagnose : ?limit:int -> Nd.Program.t -> Nd.Rule_check.finding list
