module Is = Nd_util.Interval_set
module Spawn_tree = Nd.Spawn_tree
module Strand = Nd.Strand
module Fire_rule = Nd.Fire_rule
module Pedigree = Nd.Pedigree

(* Interval-level conflict detection on the bare spawn tree — no DAG, no
   compilation.  Children of a [Par] node are never cross-ordered by the
   DRS (fire edges always stay inside one fire construct's src/snk
   subtrees), so any write/write or read/write footprint overlap between
   two [Par] siblings is a definite determinacy race.  A [Fire] node
   whose rule set is empty behaves as "‖" and is checked the same way.
   [Fire] nodes with rules are left to the ESP-bags pass: whether their
   arrows cover an overlap is exactly the race question. *)

type conflict = {
  path : Pedigree.t;  (** root -> the Par (or bare-fire) node *)
  kind : string;  (** ["par"] or ["fire <type>"] (empty rule set) *)
  i : int;  (** 1-based index of the first conflicting child *)
  j : int;  (** 1-based index of the second conflicting child *)
  overlap : Is.t;
  write_write : bool;
}

let footprints t =
  let rec go = function
    | Spawn_tree.Leaf s -> (s.Strand.reads, s.Strand.writes)
    | Spawn_tree.Seq cs | Spawn_tree.Par cs ->
      List.fold_left
        (fun (r, w) c ->
          let cr, cw = go c in
          (Is.union r cr, Is.union w cw))
        (Is.empty, Is.empty) cs
    | Spawn_tree.Fire { src; snk; _ } ->
      let sr, sw = go src and kr, kw = go snk in
      (Is.union sr kr, Is.union sw kw)
  in
  go t

let check ?registry t =
  let conflicts = ref [] in
  let bare_fire rule =
    match registry with
    | None -> false
    | Some reg -> (
      match Fire_rule.find reg rule with
      | [] -> true
      | _ :: _ -> false
      | exception Not_found -> false (* dangling: the linter's business *))
  in
  let check_siblings path kind cs =
    let fps = Array.of_list (List.map footprints cs) in
    let n = Array.length fps in
    for i = 0 to n - 1 do
      let ri, wi = fps.(i) in
      for j = i + 1 to n - 1 do
        let rj, wj = fps.(j) in
        let ww = Is.inter wi wj in
        let rw = Is.union (Is.inter ri wj) (Is.inter wi rj) in
        if not (Is.is_empty ww && Is.is_empty rw) then begin
          let write_write = not (Is.is_empty ww) in
          conflicts :=
            {
              path = Pedigree.of_list (List.rev path);
              kind;
              i = i + 1;
              j = j + 1;
              overlap = (if write_write then ww else rw);
              write_write;
            }
            :: !conflicts
        end
      done
    done
  in
  let rec go path = function
    | Spawn_tree.Leaf _ -> ()
    | Spawn_tree.Seq cs ->
      List.iteri (fun i c -> go ((i + 1) :: path) c) cs
    | Spawn_tree.Par cs ->
      check_siblings path "par" cs;
      List.iteri (fun i c -> go ((i + 1) :: path) c) cs
    | Spawn_tree.Fire { rule; src; snk } ->
      if bare_fire rule then
        check_siblings path (Printf.sprintf "fire %S" rule) [ src; snk ];
      go (1 :: path) src;
      go (2 :: path) snk
  in
  go [] t;
  List.rev !conflicts

let pp_conflict ppf c =
  Format.fprintf ppf
    "%s overlap between children %d and %d of the %s node at %s: %a"
    (if c.write_write then "write-write" else "read-write")
    c.i c.j c.kind
    (Pedigree.to_string c.path)
    Is.pp c.overlap
