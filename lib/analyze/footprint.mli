(** Interval-level footprint conflict detection on bare spawn trees.

    Runs before any DAG is built: children of a [Par] node are never
    cross-ordered by the DRS, so a write/write or read/write overlap
    between two [Par] siblings (or between the two sides of a [Fire]
    whose rule set is empty, the paper's "‖") is a definite determinacy
    race, reportable from the tree alone in near-linear time.  [Fire]
    nodes with rules are deliberately not checked here — whether their
    arrows cover an overlap is exactly the question the ESP-bags pass
    ({!Esp_bags}) answers. *)

type conflict = {
  path : Nd.Pedigree.t;  (** root -> the Par (or bare-fire) node *)
  kind : string;  (** ["par"] or ["fire <type>"] (empty rule set) *)
  i : int;  (** 1-based index of the first conflicting child *)
  j : int;  (** 1-based index of the second conflicting child *)
  overlap : Nd_util.Interval_set.t;
  write_write : bool;
}

(** [footprints t] — the [(reads, writes)] union of the whole subtree. *)
val footprints :
  Nd.Spawn_tree.t -> Nd_util.Interval_set.t * Nd_util.Interval_set.t

(** [check ?registry t] — all sibling conflicts, in DFS order.  With
    [registry], [Fire] nodes whose type resolves to an empty rule set
    are treated as [Par]; without it only [Par] nodes are checked. *)
val check : ?registry:Nd.Fire_rule.registry -> Nd.Spawn_tree.t -> conflict list

val pp_conflict : Format.formatter -> conflict -> unit
