module Fire_rule = Nd.Fire_rule
module Pedigree = Nd.Pedigree
module Program = Nd.Program
module Spawn_tree = Nd.Spawn_tree
module Rule_check = Nd.Rule_check
module Dag = Nd_dag.Dag
module Json = Nd_util.Json

(* The linter rule catalogue (IDs are stable; see DESIGN.md §9):

   ND001  error    dangling fire-type reference (rule via / spawn tree)
   ND002  warning  dead rule: pedigree never resolves at any use site
   ND003  warning  duplicate rule within a set
   ND004  warning  rule shadowed by a full-dependency rule with the
                   same endpoints
   ND005  error    rule-graph cycle with no structural descent (every
                   step has empty pedigrees: the rewriting cannot make
                   progress and degrades to conservative full edges)
   ND006  warning  fire ≡ seq at a fire node: the rule set emits a
                   root-to-root full edge, serializing the construct
                   (span pessimization)
   ND007  warning  fires recover no span: the compiled DAG's span equals
                   the fully-serialized projection's
   ND008  error    definite footprint race between Par siblings (or the
                   two sides of an empty-rule-set fire)
   ND009  error    determinacy race (ESP-bags), reported with the same
                   LCA + pedigree diagnosis as Rule_check
   ND010  warning  span not recovered asymptotically: over a size sweep
                   of the structural Cost pass, the NP/ND span ratio
                   does not grow (static, asymptotic version of ND007)
   ND011  warning  peak footprint exceeds the outermost cache level: no
                   tree_sched budget below the working set avoids
                   top-level misses
   ND012  warning  parallelism below the processor count: Brent's bound
                   caps speedup at work/span (slack < 1)
   ND013  warning  fire-rule chain of length Theta(work): span equals
                   work, the construct is fully serial *)

type severity = Error | Warning

type finding = {
  id : string;
  severity : severity;
  subject : string;  (** rule-set name, node path, or workload name *)
  message : string;
}

let finding id severity subject fmt =
  Printf.ksprintf (fun message -> { id; severity; subject; message }) fmt

let severity_name = function Error -> "error" | Warning -> "warning"

let has_errors = List.exists (fun f -> f.severity = Error)

let known_ids =
  [
    "ND001"; "ND002"; "ND003"; "ND004"; "ND005"; "ND006"; "ND007"; "ND008";
    "ND009"; "ND010"; "ND011"; "ND012"; "ND013";
  ]

let filter_min_severity min fs =
  match min with
  | Warning -> fs
  | Error -> List.filter (fun f -> f.severity = Error) fs

let pp_finding ppf f =
  Format.fprintf ppf "%s %s (%s): %s" (severity_name f.severity) f.id
    f.subject f.message

let to_json findings =
  Json.List
    (List.map
       (fun f ->
         Json.Obj
           [
             ("id", Json.String f.id);
             ("severity", Json.String (severity_name f.severity));
             ("subject", Json.String f.subject);
             ("message", Json.String f.message);
           ])
       findings)

let of_json j =
  List.map
    (fun o ->
      let str field =
        match Json.member field o with
        | Some (Json.String s) -> s
        | _ -> raise (Json.Parse_error ("lint finding: missing " ^ field))
      in
      let id = str "id" in
      if not (List.mem id known_ids) then
        raise (Json.Parse_error ("lint finding: unknown id " ^ id));
      {
        id;
        severity =
          (match str "severity" with
          | "error" -> Error
          | "warning" -> Warning
          | other ->
            raise (Json.Parse_error ("lint finding: bad severity " ^ other)));
        subject = str "subject";
        message = str "message";
      })
    (Json.to_list j)

let rule_str r = Format.asprintf "%a" Fire_rule.pp_rule r

(* ------------------------- registry checks ------------------------- *)

let lint_registry reg =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  let names = Fire_rule.names reg in
  List.iter
    (fun name ->
      let rules = Fire_rule.find reg name in
      (* ND001: dangling via targets *)
      List.iteri
        (fun idx r ->
          match r.Fire_rule.via with
          | Fire_rule.Full -> ()
          | Fire_rule.Named t ->
            if not (Fire_rule.mem reg t) then
              add
                (finding "ND001" Error name
                   "rule #%d (%s) references undefined fire type %S" (idx + 1)
                   (rule_str r) t))
        rules;
      (* ND003: duplicates; ND004: shadowed by a Full rule *)
      let seen = Hashtbl.create 8 in
      let full_pairs = Hashtbl.create 8 in
      List.iter
        (fun r ->
          if r.Fire_rule.via = Fire_rule.Full then
            Hashtbl.replace full_pairs (r.Fire_rule.src, r.Fire_rule.dst) ())
        rules;
      List.iteri
        (fun idx r ->
          if Hashtbl.mem seen r then
            add
              (finding "ND003" Warning name
                 "rule #%d (%s) duplicates an earlier rule" (idx + 1)
                 (rule_str r))
          else Hashtbl.add seen r ();
          match r.Fire_rule.via with
          | Fire_rule.Named _
            when Hashtbl.mem full_pairs (r.Fire_rule.src, r.Fire_rule.dst) ->
            add
              (finding "ND004" Warning name
                 "rule #%d (%s) is shadowed by a full-dependency rule with \
                  the same endpoints"
                 (idx + 1) (rule_str r))
          | Fire_rule.Named _ | Fire_rule.Full -> ())
        rules)
    names;
  (* ND005: cycles among no-progress edges (src and dst both empty) *)
  let no_progress = Hashtbl.create 16 in
  List.iter
    (fun name ->
      List.iter
        (fun r ->
          match r.Fire_rule.via with
          | Fire_rule.Named t
            when Pedigree.to_list r.Fire_rule.src = []
                 && Pedigree.to_list r.Fire_rule.dst = []
                 && Fire_rule.mem reg t ->
            Hashtbl.replace no_progress name
              (t :: (try Hashtbl.find no_progress name with Not_found -> []))
          | Fire_rule.Named _ | Fire_rule.Full -> ())
        (Fire_rule.find reg name))
    names;
  (* DFS 3-coloring over the no-progress subgraph *)
  let color = Hashtbl.create 16 in
  let on_cycle = Hashtbl.create 4 in
  let rec dfs n stack =
    match Hashtbl.find_opt color n with
    | Some `Done -> ()
    | Some `Active ->
      (* [stack] back to [n] is a cycle *)
      let rec take acc = function
        | [] -> acc
        | x :: rest ->
          if x = n then x :: acc else take (x :: acc) rest
      in
      List.iter
        (fun m -> Hashtbl.replace on_cycle m ())
        (take [] stack)
    | None ->
      Hashtbl.replace color n `Active;
      List.iter
        (fun t -> dfs t (n :: stack))
        (try Hashtbl.find no_progress n with Not_found -> []);
      Hashtbl.replace color n `Done
  in
  List.iter (fun n -> dfs n []) names;
  Hashtbl.iter
    (fun name () ->
      add
        (finding "ND005" Error name
           "fire type %S sits on a rule cycle with no structural descent \
            (every step has empty pedigrees); the rewriting cannot refine it \
            and degrades to conservative full edges"
           name))
    on_cycle;
  List.rev !fs

(* --------------------------- tree checks --------------------------- *)

let lint_tree reg tree =
  let dangling =
    List.filter_map
      (fun ty ->
        if Fire_rule.mem reg ty then None
        else
          Some
            (finding "ND001" Error ty
               "fire type %S is used by the spawn tree but not defined in \
                the registry"
               ty))
      (Spawn_tree.fire_types tree)
  in
  let overlaps =
    List.map
      (fun (c : Footprint.conflict) ->
        finding "ND008" Error
          (Pedigree.to_string c.Footprint.path)
          "%s"
          (Format.asprintf "%a" Footprint.pp_conflict c))
      (Footprint.check ~registry:reg tree)
  in
  dangling @ overlaps

(* -------------------------- program checks ------------------------- *)

type resolution = Clean | Bottomed | Mismatch

(* mirror of Program.compile's pedigree resolution, but classifying the
   outcome: [Clean] consumed every step; [Bottomed] stopped at a leaf
   (the recursion's base case — benign); [Mismatch] asked an internal
   node for a child it does not have (the rule addresses structure that
   does not exist). *)
let resolve program id ped =
  let rec go id = function
    | [] -> (id, Clean)
    | step :: rest ->
      let cs = Program.children program id in
      let len = Array.length cs in
      if len = 0 then (id, Bottomed)
      else if step >= 1 && step <= len then go cs.(step - 1) rest
      else (id, Mismatch)
  in
  go id (Pedigree.to_list ped)

type rule_stats = {
  mutable applies : int;
  mutable cleans : int;
  mutable bottoms : int;
}

let dead_rules program =
  let reg = Program.registry program in
  let stats : (string * int, rule_stats) Hashtbl.t = Hashtbl.create 32 in
  let get key =
    match Hashtbl.find_opt stats key with
    | Some s -> s
    | None ->
      let s = { applies = 0; cleans = 0; bottoms = 0 } in
      Hashtbl.add stats key s;
      s
  in
  let visited = Hashtbl.create 4096 in
  let is_leaf n = Program.children program n = [||] in
  let rec process a b = function
    | Fire_rule.Full -> ()
    | Fire_rule.Named r ->
      if not (Hashtbl.mem visited (a, b, r)) then begin
        Hashtbl.add visited (a, b, r) ();
        match Fire_rule.find reg r with
        | exception Not_found -> () (* ND001 covers it *)
        | [] -> ()
        | rules ->
          if not (is_leaf a && is_leaf b) then
            List.iteri
              (fun idx rule ->
                let a', ra = resolve program a rule.Fire_rule.src in
                let b', rb = resolve program b rule.Fire_rule.dst in
                let s = get (r, idx) in
                s.applies <- s.applies + 1;
                (match (ra, rb) with
                | Clean, Clean -> s.cleans <- s.cleans + 1
                | Mismatch, _ | _, Mismatch -> ()
                | (Bottomed | Clean), (Bottomed | Clean) ->
                  s.bottoms <- s.bottoms + 1);
                match rule.Fire_rule.via with
                | Fire_rule.Full -> ()
                | Fire_rule.Named r' ->
                  if not (a' = a && b' = b && r' = r) then
                    process a' b' rule.Fire_rule.via)
              rules
      end
  in
  for n = 0 to Program.n_nodes program - 1 do
    match Program.kind_of program n with
    | Program.Fire r ->
      let cs = Program.children program n in
      process cs.(0) cs.(1) (Fire_rule.Named r)
    | Program.Leaf _ | Program.Seq | Program.Par -> ()
  done;
  Hashtbl.fold
    (fun (name, idx) s acc ->
      if s.applies > 0 && s.cleans = 0 && s.bottoms = 0 then
        let rule = List.nth (Fire_rule.find reg name) idx in
        finding "ND002" Warning name
          "rule #%d (%s) is dead: its pedigrees address nonexistent children \
           at every one of its %d use sites"
          (idx + 1) (rule_str rule) s.applies
        :: acc
      else acc)
    stats []

let fire_eq_seq program =
  let edges = Hashtbl.create 256 in
  List.iter
    (fun (a, b) -> Hashtbl.replace edges (a, b) ())
    (Program.fire_edges program);
  let is_leaf n = Program.children program n = [||] in
  let fs = ref [] in
  for n = 0 to Program.n_nodes program - 1 do
    match Program.kind_of program n with
    | Program.Fire r ->
      let cs = Program.children program n in
      if
        Hashtbl.mem edges (cs.(0), cs.(1))
        && not (is_leaf cs.(0) && is_leaf cs.(1))
      then
        fs :=
          finding "ND006" Warning r
            "fire node #%d: rule set %S emits a root-to-root full edge, so \
             the fire construct serializes entirely (fire ≡ seq; span \
             pessimization)"
            n r
          :: !fs
    | Program.Leaf _ | Program.Seq | Program.Par -> ()
  done;
  List.rev !fs

let no_span_recovered program =
  let tree = Program.tree program in
  if Spawn_tree.fire_types tree = [] then []
  else begin
    let nd_span = Dag.span (Program.dag program) in
    let np =
      Program.compile
        ~registry:(Program.registry program)
        (Spawn_tree.serialize_fires tree)
    in
    let np_span = Dag.span (Program.dag np) in
    if nd_span = np_span then
      [
        finding "ND007" Warning "program"
          "the fire rules recover no span: ND span %d equals the \
           fully-serialized projection's (the arrows may still relax \
           scheduling order for space or locality, but the critical path \
           is no shorter than seq's)"
          nd_span;
      ]
    else []
  end

let races program =
  List.map
    (fun (f : Rule_check.finding) ->
      finding "ND009" Error
        (match f.Rule_check.lca_kind with
        | Program.Fire r -> Printf.sprintf "fire %S" r
        | Program.Par -> "par"
        | Program.Seq -> "seq"
        | Program.Leaf _ -> "leaf")
        "%s"
        (Format.asprintf "@[<v>%a@]" (Rule_check.pp_finding program) f))
    (Esp_bags.diagnose program)

let lint_program program =
  dead_rules program @ fire_eq_seq program @ no_span_recovered program
  @ races program

(* ------------------------------ driver ----------------------------- *)

let lint_all ~registry tree =
  let static = lint_registry registry @ lint_tree registry tree in
  (* only compile when the static pass found no errors: compilation
     raises on exactly the defects the static pass reports *)
  if has_errors static then static
  else static @ lint_program (Program.compile ~registry tree)

(* ----------------- structural (Cost-based) checks ------------------ *)

let lint_cost ?machine ?procs ~has_fires cost =
  let r = Cost.report cost in
  let fs = ref [] in
  let add f = fs := f :: !fs in
  (match machine with
  | Some m ->
    let top = Nd_pmh.Pmh.n_levels m in
    let cap = Nd_pmh.Pmh.size m ~level:top in
    if r.Cost.peak_footprint > cap then
      add
        (finding "ND011" Warning "program"
           "peak footprint %d words exceeds the outermost cache (level %d, \
            M=%d): no tree_sched budget below the working set avoids \
            top-level misses; anchor with budget >= %d or expect them"
           r.Cost.peak_footprint top cap r.Cost.peak_footprint)
  | None -> ());
  (match procs with
  | Some p when r.Cost.span > 0 && r.Cost.parallelism < float_of_int p ->
    add
      (finding "ND012" Warning "program"
         "parallelism %.1f (work %d / span %d) is below the %d processors: \
          Brent's bound caps speedup at the parallelism, so the extra \
          processors idle"
         r.Cost.parallelism r.Cost.work r.Cost.span p)
  | Some _ | None -> ());
  if has_fires && r.Cost.n_leaves > 1 && r.Cost.span = r.Cost.work then
    add
      (finding "ND013" Warning "program"
         "span equals work (%d): the rewritten fire-rule chains have length \
          Theta(work) and the construct is fully serial"
         r.Cost.span);
  List.rev !fs

(* ND010: the asymptotic version of ND007.  Runs the structural pass on
   a sweep of sizes for both the ND tree and its fully-serialized NP
   projection and judges whether the fires buy span {e asymptotically}:
   a flat NP/ND span ratio means at best a constant factor. *)
let lint_span_sweep ~subject ~build sizes =
  let pts =
    List.filter_map
      (fun n ->
        let registry, tree = build n in
        if Spawn_tree.fire_types tree = [] then None
        else
          let nd = Cost.span (Cost.analyze ~registry tree) in
          let np =
            Cost.span
              (Cost.analyze ~registry (Spawn_tree.serialize_fires tree))
          in
          Some (n, nd, np))
      (List.sort_uniq compare sizes)
  in
  let ratio nd np = float_of_int np /. float_of_int (max 1 nd) in
  match pts with
  | [] -> []
  | [ (n, nd, np) ] ->
    if nd = np then
      [
        finding "ND010" Warning subject
          "no span recovered at n=%d (ND span %d = NP span; give a size \
           sweep for the asymptotic judgment)"
          n nd;
      ]
    else []
  | (n0, nd0, np0) :: _ ->
    let nk, ndk, npk = List.nth pts (List.length pts - 1) in
    let r0 = ratio nd0 np0 and rk = ratio ndk npk in
    let exponents () =
      (* log-log fits are only well-defined on positive spans *)
      if List.for_all (fun (_, nd, np) -> nd > 0 && np > 0) pts then
        let xs = List.map (fun (n, _, _) -> float_of_int n) pts in
        let e_nd, _, _ =
          Nd_util.Stats.power_fit xs
            (List.map (fun (_, nd, _) -> float_of_int nd) pts)
        and e_np, _, _ =
          Nd_util.Stats.power_fit xs
            (List.map (fun (_, _, np) -> float_of_int np) pts)
        in
        Printf.sprintf " (fitted span exponents: ND %.2f, NP %.2f)" e_nd e_np
      else ""
    in
    if rk <= 1.01 then
      [
        finding "ND010" Warning subject
          "the fires recover no span at the largest size: ND span %d = NP \
           span %d at n=%d%s"
          ndk npk nk (exponents ());
      ]
    else if rk <= r0 *. 1.05 then
      [
        finding "ND010" Warning subject
          "the fires recover only a constant span factor: NP/ND ratio %.2f \
           at n=%d vs %.2f at n=%d — no asymptotic recovery%s"
          rk nk r0 n0 (exponents ());
      ]
    else []
