(** The fire-rule linter: static checks over rule registries, spawn
    trees and compiled programs.

    The rule catalogue (stable IDs; full rationale in DESIGN.md §9):

    - [ND001] {e error} — dangling fire-type reference: a rule's [via]
      target, or a fire type used by the spawn tree, is not defined in
      the registry.
    - [ND002] {e warning} — dead rule: the rule's pedigrees address
      nonexistent children at every use site reached by the rewriting
      (never resolves cleanly, never bottoms out at a leaf), so it only
      ever degrades to conservative attachment.
    - [ND003] {e warning} — duplicate rule within a set.
    - [ND004] {e warning} — rule shadowed by a full-dependency rule with
      the same endpoints.
    - [ND005] {e error} — rule-graph cycle with no structural descent
      (every step of the cycle has empty pedigrees): the rewriting
      cannot refine such arrows and degrades them to full edges.
    - [ND006] {e warning} — fire ≡ seq: a fire node's rule set emits a
      root-to-root full edge, serializing the whole construct.
    - [ND007] {e warning} — fires recover no span: the compiled DAG's
      span equals the fully-serialized ({!Nd.Spawn_tree.serialize_fires})
      projection's.
    - [ND008] {e error} — definite footprint race between [Par] siblings
      or across an empty-rule-set fire ({!Footprint}).
    - [ND009] {e error} — determinacy race found by the ESP-bags pass
      ({!Esp_bags}), reported with the same LCA + pedigree diagnosis as
      {!Nd.Rule_check}.
    - [ND010] {e warning} — span not recovered {e asymptotically}: over
      a size sweep of the structural {!Cost} pass, the NP/ND span ratio
      does not grow (the static, asymptotic version of ND007; needs no
      DAG, so it runs at sizes ND007 cannot).
    - [ND011] {e warning} — peak footprint exceeds the outermost cache
      level of a given PMH: no [tree_sched] budget below the working set
      avoids top-level misses.
    - [ND012] {e warning} — parallelism ([work/span]) below a given
      processor count: Brent's bound caps speedup at the parallelism.
    - [ND013] {e warning} — fire-rule chain of length Θ(work): span
      equals work, the construct is fully serial. *)

type severity = Error | Warning

type finding = {
  id : string;  (** ["ND001"] .. ["ND013"] *)
  severity : severity;
  subject : string;  (** rule-set name, node path, or ["program"] *)
  message : string;
}

val severity_name : severity -> string

val has_errors : finding list -> bool

(** The stable rule catalogue, [["ND001"; ..; "ND013"]]; {!of_json}
    rejects anything else. *)
val known_ids : string list

(** [filter_min_severity min fs] keeps the findings at severity [min] or
    above ([Warning] keeps everything, [Error] keeps only errors) — the
    [--min-severity] filter of [ndsim lint] / [ndsim analyze]. *)
val filter_min_severity : severity -> finding list -> finding list

val pp_finding : Format.formatter -> finding -> unit

(** [to_json fs] / [of_json j] — lossless round-trip as a JSON list of
    objects with fields [id], [severity], [subject], [message].
    @raise Nd_util.Json.Parse_error if [of_json] is given anything else,
    including an [id] outside the {!known_ids} catalogue. *)
val to_json : finding list -> Nd_util.Json.t

val of_json : Nd_util.Json.t -> finding list

(** [lint_registry reg] — ND001 (rule targets), ND003, ND004, ND005. *)
val lint_registry : Nd.Fire_rule.registry -> finding list

(** [lint_tree reg tree] — ND001 (tree fire types), ND008.  Purely
    static; never compiles. *)
val lint_tree : Nd.Fire_rule.registry -> Nd.Spawn_tree.t -> finding list

(** [lint_program p] — ND002, ND006, ND007, ND009 on a compiled
    program. *)
val lint_program : Nd.Program.t -> finding list

(** [lint_all ~registry tree] — the full battery.  Runs the static
    registry and tree passes first and only compiles (for
    [lint_program]) when they produced no errors, since compilation
    raises on exactly the defects they report. *)
val lint_all :
  registry:Nd.Fire_rule.registry -> Nd.Spawn_tree.t -> finding list

(** [lint_cost ?machine ?procs ~has_fires cost] — the structural checks
    over a completed {!Cost} pass: ND011 (peak footprint vs the
    outermost cache of [machine]), ND012 (parallelism below [procs]),
    ND013 (span ≡ work while the tree contains fires, per [has_fires]).
    Checks whose optional context is absent are skipped. *)
val lint_cost :
  ?machine:Nd_pmh.Pmh.t ->
  ?procs:int ->
  has_fires:bool ->
  Cost.t ->
  finding list

(** [lint_span_sweep ~subject ~build sizes] — ND010.  [build n] yields
    the registry and spawn tree at problem size [n]; the sweep runs the
    structural pass on each size for both the ND tree and its
    [serialize_fires] projection and warns when the NP/ND span ratio
    does not grow (no asymptotic span recovery).  Trees without fires
    contribute nothing; an empty or fire-free sweep yields []. *)
val lint_span_sweep :
  subject:string ->
  build:(int -> Nd.Fire_rule.registry * Nd.Spawn_tree.t) ->
  int list ->
  finding list
