module Deque = Nd_runtime.Deque
module Executor = Nd_runtime.Executor
module Engine = Nd_runtime.Executor.Engine
module Fiber = Nd_runtime.Fiber_exec
module Prng = Nd_util.Prng

type mode =
  | Random of { seeds : int list }
  | Exhaustive of { max_runs : int }

type stats = { runs : int; steps : int }

type failure = { seed : int option; schedule : int list; message : string }

let pp_failure ppf f =
  (match f.seed with
  | Some s -> Format.fprintf ppf "schedule seed %d: " s
  | None -> ());
  if f.schedule <> [] then
    Format.fprintf ppf "trail [%s]: "
      (String.concat ";" (List.map string_of_int f.schedule));
  Format.pp_print_string ppf f.message

(* ------------------------- fiber controller ------------------------- *)

type _ Effect.t += Yield : unit Effect.t

type fstate =
  | Fresh of (unit -> unit)
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Finished

exception Stuck of string

exception Cancelled

(* Run one complete schedule: [choose n] picks among the [n] currently
   live fibers at every preemption point.  The deque and fiber-runtime
   yield hooks are installed for the duration, so fibers suspend
   between the individual loads/stores of every deque operation and at
   the promise park/take windows of the fiber scheduler.

   When a schedule aborts early — a fiber body raises, or [Stuck]
   fires — the fibers still [Suspended] hold live one-shot
   continuations whose [Fun.protect] finalizers would otherwise never
   run; across the thousands of schedules a fuzz run replays that is a
   real leak.  The [~finally] below discontinues every one of them
   with [Cancelled] (after clearing the hooks, so unwinding cannot
   yield back into the dead schedule). *)
let run_schedule ~choose ~max_steps (bodies : (unit -> unit) array) =
  let n = Array.length bodies in
  let state = Array.map (fun f -> Fresh f) bodies in
  let steps = ref 0 in
  let handler i =
    {
      Effect.Deep.retc = (fun () -> state.(i) <- Finished);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some
              (fun (k : (a, _) Effect.Deep.continuation) ->
                state.(i) <- Suspended k)
          | _ -> None);
    }
  in
  let live () =
    let l = ref [] in
    for i = n - 1 downto 0 do
      match state.(i) with Finished -> () | Fresh _ | Suspended _ -> l := i :: !l
    done;
    !l
  in
  let step () =
    match live () with
    | [] -> false
    | l ->
      if !steps >= max_steps then
        raise
          (Stuck
             (Printf.sprintf
                "no progress after %d scheduler steps (lost task?)" !steps));
      incr steps;
      let pick = List.nth l (choose (List.length l)) in
      (match state.(pick) with
      | Fresh f ->
        state.(pick) <- Finished;
        Effect.Deep.match_with f () (handler pick)
      | Suspended k ->
        state.(pick) <- Finished;
        Effect.Deep.continue k ()
      | Finished -> assert false);
      true
  in
  let cancel_suspended () =
    Array.iteri
      (fun i st ->
        match st with
        | Suspended k -> (
          state.(i) <- Finished;
          try Effect.Deep.discontinue k Cancelled with
          | Cancelled -> ()
          | Stuck _ -> ())
        | Fresh _ | Finished -> ())
      state
  in
  let yf _label = Effect.perform Yield in
  Deque.Hooks.set_yield (Some yf);
  Fiber.Hooks.set_yield (Some yf);
  Fun.protect
    ~finally:(fun () ->
      Deque.Hooks.set_yield None;
      Fiber.Hooks.set_yield None;
      cancel_suspended ())
    (fun () ->
      while step () do
        ()
      done);
  !steps

(* ----------------------------- drivers ------------------------------ *)

(* [make ()] builds fresh fiber bodies plus the post-schedule check. *)
let drive ~mode ~max_steps
    (make : unit -> (unit -> unit) array * (unit -> (unit, string) result)) =
  let total_steps = ref 0 in
  match mode with
  | Random { seeds } ->
    let rec go runs = function
      | [] -> Ok { runs; steps = !total_steps }
      | seed :: rest -> (
        let prng = Prng.create seed in
        let choose = function 1 -> 0 | n -> Prng.int prng n in
        let bodies, check = make () in
        match run_schedule ~choose ~max_steps bodies with
        | steps -> (
          total_steps := !total_steps + steps;
          match check () with
          | Ok () -> go (runs + 1) rest
          | Error message -> Error { seed = Some seed; schedule = []; message })
        | exception e ->
          Error
            { seed = Some seed; schedule = []; message = Printexc.to_string e })
    in
    go 0 seeds
  | Exhaustive { max_runs } ->
    (* DFS over the schedule tree by prefix replay: each run follows
       the given trail of (choice, n_alternatives) pairs, then always
       picks alternative 0; the next trail increments the deepest
       choice that still has untried alternatives.  Schedules are
       deterministic, so replaying a prefix reproduces the same
       branch-point structure exactly. *)
    let next_trail trail =
      let rec carry = function
        | [] -> None
        | (c, n) :: rest_rev ->
          if c + 1 < n then Some (List.rev ((c + 1, n) :: rest_rev))
          else carry rest_rev
      in
      carry (List.rev trail)
    in
    let run_one prefix =
      let recorded = ref [] in
      let pos = ref 0 in
      let prefix = Array.of_list prefix in
      let choose n =
        let c = if !pos < Array.length prefix then fst prefix.(!pos) else 0 in
        recorded := (c, n) :: !recorded;
        incr pos;
        c
      in
      let bodies, check = make () in
      let result =
        match run_schedule ~choose ~max_steps bodies with
        | steps ->
          total_steps := !total_steps + steps;
          check ()
        | exception e -> Error (Printexc.to_string e)
      in
      (result, List.rev !recorded)
    in
    let rec go runs trail =
      if runs >= max_runs then Ok { runs; steps = !total_steps }
      else
        match run_one trail with
        | Error message, full ->
          Error { seed = None; schedule = List.map fst full; message }
        | Ok (), full -> (
          match next_trail full with
          | None -> Ok { runs = runs + 1; steps = !total_steps }
          | Some trail' -> go (runs + 1) trail')
    in
    go 0 []

(* ------------------------- program exploration ---------------------- *)

let engine_bodies eng =
  let nw = Engine.n_workers eng in
  Array.init nw (fun wid () ->
      while not (Engine.finished eng) do
        if not (Engine.try_pop eng wid) then begin
          let stolen = ref false in
          let i = ref 1 in
          while (not !stolen) && !i < nw do
            if Engine.try_steal eng ~thief:wid ~victim:((wid + !i) mod nw)
            then stolen := true;
            incr i
          done;
          if not !stolen then Effect.perform Yield
        end
      done)

let explore_program ?(workers = 2) ?(grain = 0) ~mode
    ?(reset = fun () -> ()) ?(check = fun () -> Ok ()) ?tracer program =
  let n_tasks = Nd_dag.Dag.n_vertices (Nd.Program.dag program) in
  let max_steps = 20_000 + (400 * (n_tasks + 1) * workers) in
  let make () =
    reset ();
    let eng = Executor.make_engine ~workers ~grain ?tracer program in
    let bodies = engine_bodies eng in
    let check () =
      if not (Engine.finished eng) then
        Error
          (Printf.sprintf "engine stopped with %d tasks remaining"
             (Engine.remaining eng))
      else check ()
    in
    (bodies, check)
  in
  drive ~mode ~max_steps make

(* ---------------------- fiber-pool exploration ---------------------- *)

(* Worker bodies over the fiber scheduler's engine mode.  A body gives
   up not only when the pool finished but also when it stalled (every
   live fiber parked, every queue empty): under a lost-wakeup bug the
   pool can never finish, and [stalled] is exact on a single domain, so
   the schedule terminates deterministically and the post-run check
   reports the leaked fibers instead of the run spinning to the
   max-steps guard. *)
let fiber_bodies pool =
  let nw = Fiber.n_workers pool in
  Array.init nw (fun wid () ->
      while not (Fiber.finished pool || Fiber.stalled pool) do
        if not (Fiber.try_advance pool wid) then Effect.perform Yield
      done)

let explore_fiber_program ?(workers = 2) ?(grain = 0) ~mode
    ?(reset = fun () -> ()) ?(check = fun () -> Ok ()) ?tracer program =
  let n_tasks = Nd_dag.Dag.n_vertices (Nd.Program.dag program) in
  let max_steps = 20_000 + (400 * (n_tasks + 1) * workers) in
  let make () =
    reset ();
    let pool = Fiber.make_engine ~workers ~grain ?tracer program in
    let bodies = fiber_bodies pool in
    let check () =
      if not (Fiber.finished pool) then
        Error
          (Printf.sprintf "fiber pool stalled with %d fibers remaining"
             (Fiber.remaining pool))
      else check ()
    in
    (bodies, check)
  in
  drive ~mode ~max_steps make

(* --------------------------- deque exploration ---------------------- *)

let explore_deque ~mode ?(n_thieves = 2) ?(pushes = 64) () =
  let make () =
    let d = Deque.create () in
    let produced = ref false in
    let consumed = Array.init (n_thieves + 1) (fun _ -> ref []) in
    let owner () =
      for v = 0 to pushes - 1 do
        Deque.push d v;
        if v land 7 = 7 then
          match Deque.pop d with
          | Some x -> consumed.(0) := x :: !(consumed.(0))
          | None -> ()
      done;
      produced := true;
      let rec drain () =
        match Deque.pop d with
        | Some x ->
          consumed.(0) := x :: !(consumed.(0));
          drain ()
        | None -> ()
      in
      drain ()
    in
    let thief tid () =
      let rec loop () =
        (* backoff before each attempt: thieves must be slower than the
           owner pushes, or the deque never crosses a capacity boundary
           and [grow] — where generations retire — is never exercised *)
        Effect.perform Yield;
        match Deque.steal d with
        | Some v ->
          consumed.(tid) := v :: !(consumed.(tid));
          loop ()
        | None -> if (not !produced) || Deque.size d > 0 then loop ()
      in
      loop ()
    in
    let bodies =
      Array.init (n_thieves + 1) (fun i ->
          if i = 0 then owner else thief i)
    in
    let check () =
      let all =
        List.sort compare (List.concat_map ( ! ) (Array.to_list consumed))
      in
      if List.length all <> pushes then
        Error
          (Printf.sprintf "exactly-once violated: %d items consumed of %d"
             (List.length all) pushes)
      else
        let rec verify i = function
          | [] -> Ok ()
          | v :: rest ->
            if v <> i then
              Error
                (Printf.sprintf
                   "exactly-once violated: expected %d at rank %d, got %d" i i
                   v)
            else verify (i + 1) rest
        in
        verify 0 all
    in
    (bodies, check)
  in
  drive ~mode ~max_steps:200_000 make
