(** Deterministic interleaving exploration of the multicore runtime.

    The real runtime ([Nd_runtime]) only exhibits a concurrency bug
    when the OS happens to interleave its domains the wrong way — PR
    2's soak tests fired thousands of runs hoping for that timing.
    This module removes the luck: each worker of the {e production}
    dataflow engine ({!Nd_runtime.Executor.Engine}) runs as an
    effect-based fiber on a {e single} domain, the Chase–Lev deque
    yields control between its individual loads/stores
    ({!Nd_runtime.Deque.Hooks.set_yield}), and a controlled scheduler
    picks which fiber advances at every preemption point.  Because the
    only source of nondeterminism is that scheduler, every execution is
    a pure function of its seed (random-walk mode) or of its choice
    trail (bounded exhaustive mode): a failing interleaving is
    replayable forever, and shrinkable like any other test input.

    Determinism argument: fibers share one domain, so every shared
    access is sequentially consistent and totally ordered by the
    controller's choices; the deque hook yields at each
    linearization-relevant step, so the controller's choice sequence
    fixes the complete interleaving of deque operations; and the
    controller draws choices from a seeded {!Nd_util.Prng} (or replays
    an explicit trail).  Hence seed = schedule. *)

type mode =
  | Random of { seeds : int list }
      (** one seeded random-walk schedule per listed seed *)
  | Exhaustive of { max_runs : int }
      (** DFS over the schedule tree, at most [max_runs] schedules
          (complete for programs small enough to exhaust the tree) *)

type stats = {
  runs : int;  (** schedules executed *)
  steps : int;  (** total scheduler decisions across all runs *)
}

type failure = {
  seed : int option;  (** failing random-walk seed, for replay *)
  schedule : int list;  (** failing choice trail (exhaustive mode) *)
  message : string;
}

val pp_failure : Format.formatter -> failure -> unit

(** [explore_program ?workers ?grain ~mode ?reset ?check program] runs
    the production dataflow engine over [program] under controlled
    interleavings: [reset] is called before each schedule, [check]
    after it (e.g. compare the memory image against the serial
    reference); a schedule fails when [check] returns [Error], when any
    runtime invariant trips (an exception — e.g. the deque's hard
    lost-item failure), or when the scheduler stops making progress
    (lost-task livelock).  With [tracer], engine events (fire, steal,
    strand begin/end) are emitted as in a real run. *)
val explore_program :
  ?workers:int ->
  ?grain:int ->
  mode:mode ->
  ?reset:(unit -> unit) ->
  ?check:(unit -> (unit, string) result) ->
  ?tracer:Nd_trace.Collector.t ->
  Nd.Program.t ->
  (stats, failure) result

(** [explore_fiber_program] — as {!explore_program} but over the fiber
    backend's engine mode ({!Nd_runtime.Fiber_exec.make_engine}): one
    body per worker advances the pool with
    {!Nd_runtime.Fiber_exec.try_advance}, and the fiber runtime's
    promise-transition hook ({!Nd_runtime.Fiber_exec.Hooks.set_yield})
    adds preemption points inside the park/take windows.  The explorer
    never registers a domain as a pool worker, so every fiber hand-off
    routes through the pool's synchronized injector and the schedule
    stays a pure function of the controller's choices.  A schedule
    under which the pool stalls (every live fiber parked — e.g. a lost
    wake-up) terminates deterministically and fails the post-run
    check. *)
val explore_fiber_program :
  ?workers:int ->
  ?grain:int ->
  mode:mode ->
  ?reset:(unit -> unit) ->
  ?check:(unit -> (unit, string) result) ->
  ?tracer:Nd_trace.Collector.t ->
  Nd.Program.t ->
  (stats, failure) result

(** [explore_deque ~mode ?n_thieves ?pushes ()] explores the deque in
    isolation: one owner fiber pushes [pushes] items (popping every
    fourth), [n_thieves] thief fibers steal concurrently, crossing
    several buffer growths.  Checks exactly-once delivery of every
    item.  This is the harness that detects the retired-buffer
    recycling bug when {!Nd_runtime.Deque.Hooks.set_drop_retired} is
    enabled. *)
val explore_deque :
  mode:mode ->
  ?n_thieves:int ->
  ?pushes:int ->
  unit ->
  (stats, failure) result
