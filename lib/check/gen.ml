module G = QCheck2.Gen
module Is = Nd_util.Interval_set

type leaf = {
  work : int;
  reads : (int * int) list;
  writes : (int * int) list;
}

type tree =
  | Leaf of leaf
  | Seq of tree list
  | Par of tree list
  | Fire of { rule : string; src : tree; snk : tree }

type spec = {
  tree : tree;
  rules : (string * Nd.Fire_rule.rule list) list;
  mem : int;
}

type params = {
  max_depth : int;
  max_fanout : int;
  mem : int;
  n_rule_types : int;
  max_rules : int;
}

let default_params =
  { max_depth = 4; max_fanout = 3; mem = 48; n_rule_types = 3; max_rules = 3 }

let rec tree_leaves = function
  | Leaf _ -> 1
  | Seq cs | Par cs -> List.fold_left (fun a c -> a + tree_leaves c) 0 cs
  | Fire { src; snk; _ } -> tree_leaves src + tree_leaves snk

let n_leaves spec = tree_leaves spec.tree

(* ------------------------------ printing ---------------------------- *)

let pp_intervals ppf l =
  Format.fprintf ppf "[%s]"
    (String.concat ","
       (List.map (fun (lo, hi) -> Printf.sprintf "%d..%d" lo (hi - 1)) l))

let rec pp_tree ppf = function
  | Leaf l ->
    Format.fprintf ppf "s(w=%d" l.work;
    if l.reads <> [] then Format.fprintf ppf " r=%a" pp_intervals l.reads;
    if l.writes <> [] then Format.fprintf ppf " w=%a" pp_intervals l.writes;
    Format.fprintf ppf ")"
  | Seq cs ->
    Format.fprintf ppf "@[<hov 2>seq(%a)@]"
      (Format.pp_print_list ~pp_sep:(fun p () -> Format.fprintf p ";@ ") pp_tree)
      cs
  | Par cs ->
    Format.fprintf ppf "@[<hov 2>par(%a)@]"
      (Format.pp_print_list ~pp_sep:(fun p () -> Format.fprintf p " ||@ ") pp_tree)
      cs
  | Fire { rule; src; snk } ->
    Format.fprintf ppf "@[<hov 2>fire[%s](%a ~>@ %a)@]" rule pp_tree src
      pp_tree snk

let pp ppf spec =
  Format.fprintf ppf "@[<v>%a@," pp_tree spec.tree;
  List.iter
    (fun (name, rules) ->
      if rules = [] then Format.fprintf ppf "%s: ||@," name
      else
        Format.fprintf ppf "%s: @[<hov>%a@]@," name
          (Format.pp_print_list
             ~pp_sep:(fun p () -> Format.fprintf p ",@ ")
             Nd.Fire_rule.pp_rule)
          rules)
    spec.rules;
  Format.fprintf ppf "mem=%d@]" spec.mem

let to_string spec = Format.asprintf "%a" pp spec

(* ----------------------------- generation --------------------------- *)

let rname i = Printf.sprintf "R%d" i

let gen ?(params = default_params) () =
  let rule_name = G.map rname (G.int_range 1 params.n_rule_types) in
  let interval =
    G.map2
      (fun lo len -> (lo, min params.mem (lo + len)))
      (G.int_range 0 (params.mem - 1))
      (G.int_range 1 4)
  in
  let leaf =
    G.map3
      (fun work reads writes -> Leaf { work; reads; writes })
      (G.int_range 0 6)
      (G.list_size (G.int_range 0 2) interval)
      (G.list_size (G.int_range 0 2) interval)
  in
  let tree =
    G.fix
      (fun self depth ->
        if depth <= 0 then leaf
        else
          let child = self (depth - 1) in
          G.frequency
            [
              (2, leaf);
              ( 3,
                G.map
                  (fun cs -> Seq cs)
                  (G.list_size (G.int_range 2 params.max_fanout) child) );
              ( 3,
                G.map
                  (fun cs -> Par cs)
                  (G.list_size (G.int_range 2 params.max_fanout) child) );
              ( 3,
                G.map3
                  (fun rule src snk -> Fire { rule; src; snk })
                  rule_name child child );
            ])
      params.max_depth
  in
  let pedigree = G.list_size (G.int_range 0 2) (G.int_range 1 3) in
  let target =
    G.frequency
      [
        (2, G.pure Nd.Fire_rule.Full);
        (1, G.map (fun n -> Nd.Fire_rule.Named n) rule_name);
      ]
  in
  let rule =
    G.map3 (fun src via dst -> Nd.Fire_rule.rule src via dst) pedigree target
      pedigree
  in
  let rules =
    G.flatten_l
      (List.init params.n_rule_types (fun i ->
           G.map
             (fun rs -> (rname (i + 1), rs))
             (G.list_size (G.int_range 0 params.max_rules) rule)))
  in
  G.map2 (fun tree rules -> { tree; rules; mem = params.mem }) tree rules

let generate ~seed ?params () =
  G.generate1 ~rand:(Random.State.make [| seed |]) (gen ?params ())

(* ------------------------------ shrinking --------------------------- *)

let trivial_leaf = Leaf { work = 0; reads = []; writes = [] }

let drop_nth xs =
  List.init (List.length xs) (fun i -> List.filteri (fun j _ -> j <> i) xs)

(* all single-step smaller variants of a tree, outermost first *)
let rec tree_candidates t : tree Stdlib.Seq.t =
  let at_children mk cs =
    (* rewrite inside exactly one child *)
    Stdlib.Seq.concat
      (Stdlib.Seq.init (List.length cs) (fun i ->
           Stdlib.Seq.map
             (fun c' -> mk (List.mapi (fun j c -> if j = i then c' else c) cs))
             (tree_candidates (List.nth cs i))))
  in
  match t with
  | Leaf l ->
    let leaves =
      List.map (fun reads -> Leaf { l with reads }) (drop_nth l.reads)
      @ List.map (fun writes -> Leaf { l with writes }) (drop_nth l.writes)
      @ (if l.work > 0 then [ Leaf { l with work = 0 } ] else [])
    in
    List.to_seq leaves
  | Seq cs ->
    Stdlib.Seq.append
      (List.to_seq
         (cs
         @ (if List.length cs > 1 then
              List.map (fun cs' -> Seq cs') (drop_nth cs)
            else [])
         @ [ trivial_leaf ]))
      (at_children (fun cs' -> Seq cs') cs)
  | Par cs ->
    Stdlib.Seq.append
      (List.to_seq
         (cs
         @ (if List.length cs > 1 then
              List.map (fun cs' -> Par cs') (drop_nth cs)
            else [])
         @ [ trivial_leaf ]))
      (at_children (fun cs' -> Par cs') cs)
  | Fire { rule; src; snk } ->
    Stdlib.Seq.append
      (List.to_seq [ src; snk; trivial_leaf ])
      (at_children
         (function
           | [ src; snk ] -> Fire { rule; src; snk }
           | _ -> assert false)
         [ src; snk ])

let rule_candidates rules : (string * Nd.Fire_rule.rule list) list Stdlib.Seq.t
    =
  Stdlib.Seq.concat
    (Stdlib.Seq.init (List.length rules) (fun i ->
         let name, rs = List.nth rules i in
         let put rs' =
           List.mapi (fun j r -> if j = i then (name, rs') else r) rules
         in
         let dropped = List.map put (drop_nth rs) in
         let weakened =
           List.concat
             (List.mapi
                (fun k (r : Nd.Fire_rule.rule) ->
                  match r.Nd.Fire_rule.via with
                  | Nd.Fire_rule.Full -> []
                  | Nd.Fire_rule.Named _ ->
                    [
                      put
                        (List.mapi
                           (fun j r' ->
                             if j = k then
                               { r' with Nd.Fire_rule.via = Nd.Fire_rule.Full }
                             else r')
                           rs);
                    ])
                rs)
         in
         List.to_seq (dropped @ weakened)))

let candidates spec =
  Stdlib.Seq.append
    (Stdlib.Seq.map (fun tree -> { spec with tree }) (tree_candidates spec.tree))
    (Stdlib.Seq.map (fun rules -> { spec with rules }) (rule_candidates spec.rules))

let shrink ?(budget = 400) spec ~still_fails =
  let calls = ref 0 in
  let try_cand s =
    if !calls >= budget then false
    else begin
      incr calls;
      still_fails s
    end
  in
  let rec loop spec =
    if !calls >= budget then spec
    else
      match Stdlib.Seq.find try_cand (candidates spec) with
      | Some smaller -> loop smaller
      | None -> spec
  in
  loop spec

(* ------------------------------ building ---------------------------- *)

type instance = {
  spec : spec;
  tree : Nd.Spawn_tree.t;
  registry : Nd.Fire_rule.registry;
  memory : int array;
  counts : int Atomic.t array;
}

let build spec =
  let n = n_leaves spec in
  let memory = Array.make (max 1 spec.mem) 0 in
  let counts = Array.init n (fun _ -> Atomic.make 0) in
  let idx = ref 0 in
  let rec conv t =
    match t with
    | Leaf l ->
      let i = !idx in
      incr idx;
      let reads = Is.of_intervals l.reads
      and writes = Is.of_intervals l.writes in
      let ri = Is.intervals reads and wi = Is.intervals writes in
      let action () =
        (* all reads first, then writes: the stored value depends on
           what conflicting strands wrote before us, so an unordered
           conflicting pair yields an order-dependent memory image *)
        let sum = ref 0 in
        List.iter
          (fun (lo, hi) ->
            for a = lo to hi - 1 do
              sum := !sum + memory.(a)
            done)
          ri;
        let h = (!sum * 31) lxor ((i + 1) * 0x9E3779B9) in
        List.iter
          (fun (lo, hi) ->
            for a = lo to hi - 1 do
              memory.(a) <- (h + a) land 0x3FFFFFFF
            done)
          wi;
        Atomic.incr counts.(i)
      in
      Nd.Spawn_tree.leaf
        (Nd.Strand.make
           ~label:(Printf.sprintf "s%d" i)
           ~work:l.work ~reads ~writes ~action ())
    | Seq cs -> Nd.Spawn_tree.seq (List.map conv cs)
    | Par cs -> Nd.Spawn_tree.par (List.map conv cs)
    | Fire { rule; src; snk } ->
      let a = conv src in
      let b = conv snk in
      Nd.Spawn_tree.fire ~rule a b
  in
  let tree = conv spec.tree in
  let registry =
    List.fold_left
      (fun reg (name, rules) -> Nd.Fire_rule.define reg name rules)
      Nd.Fire_rule.empty_registry spec.rules
  in
  { spec; tree; registry; memory; counts }

let reset i =
  Array.fill i.memory 0 (Array.length i.memory) 0;
  Array.iter (fun c -> Atomic.set c 0) i.counts
