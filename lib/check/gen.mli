(** Random well-formed ND programs for the conformance harness.

    A {!spec} is a pure-data description of a spawn tree over
    [Seq]/[Par]/[Fire] with randomly sampled fire-rule sets and strand
    footprints over a small flat address space.  Specs are what the
    fuzzer generates, prints, shrinks and replays; {!build} turns one
    into a runnable {!instance} whose strand actions write
    order-sensitive values into a shared memory image and count their
    own executions — the two observables the differential oracle
    compares across execution paths.

    Generation is deterministic from a seed ({!generate}), so every
    failure the fuzzer reports is replayable with [ndsim fuzz
    --replay SEED]. *)

type leaf = {
  work : int;
  reads : (int * int) list;  (** half-open [lo, hi) intervals *)
  writes : (int * int) list;
}

type tree =
  | Leaf of leaf
  | Seq of tree list
  | Par of tree list
  | Fire of { rule : string; src : tree; snk : tree }

type spec = {
  tree : tree;
  rules : (string * Nd.Fire_rule.rule list) list;
      (** every fire type referenced by [tree] is defined here; rule
          sets may be empty (the paper's "‖" behaviour) *)
  mem : int;  (** address-space size all footprints fall within *)
}

type params = {
  max_depth : int;  (** recursion depth bound of the generated tree *)
  max_fanout : int;  (** max children of a [Seq]/[Par] node *)
  mem : int;  (** address-space size *)
  n_rule_types : int;  (** size of the fire-type pool (["R1"..]) *)
  max_rules : int;  (** max rules per fire type *)
}

val default_params : params

(** Number of strands in the spec's tree. *)
val n_leaves : spec -> int

(** QCheck2 generator of well-formed specs: every [Fire] node names a
    type from the pool, every pedigree step is >= 1, every footprint
    interval falls within [\[0, mem)]. *)
val gen : ?params:params -> unit -> spec QCheck2.Gen.t

(** [generate ~seed ?params ()] — the deterministic sample at [seed]
    (the replay primitive behind [ndsim fuzz --replay]). *)
val generate : seed:int -> ?params:params -> unit -> spec

(** [shrink spec ~still_fails] greedily minimizes [spec] while
    [still_fails] holds: subtrees are replaced by their children or by a
    trivial strand, [Seq]/[Par] children are dropped, leaf footprints
    are emptied, rules are dropped and recursive rule targets weakened
    to [Full].  [still_fails] is called at most [~budget] (default 400)
    times; the result is a local minimum, every mutation of which
    passes. *)
val shrink : ?budget:int -> spec -> still_fails:(spec -> bool) -> spec

(** {2 Building runnable instances} *)

type instance = {
  spec : spec;
  tree : Nd.Spawn_tree.t;
  registry : Nd.Fire_rule.registry;
  memory : int array;  (** the shared image strand actions mutate *)
  counts : int Atomic.t array;
      (** per-leaf execution counters (DFS leaf order), incremented by
          the leaf's action — the exactly-once observable *)
}

(** [build spec] materializes strands whose action reads the leaf's
    [reads], combines them with the leaf index through a
    non-commutative hash, and stores into each of its [writes] — so any
    two conflicting unordered strands produce a memory image that
    depends on their order, making determinacy races observable. *)
val build : spec -> instance

(** [reset i] zeroes memory and counters (call before every run). *)
val reset : instance -> unit

val pp : Format.formatter -> spec -> unit

val to_string : spec -> string
