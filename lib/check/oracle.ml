module Dag = Nd_dag.Dag
module Race = Nd_dag.Race
module Pmh = Nd_pmh.Pmh
module Greedy = Nd_sched.Greedy
module Sb = Nd_sched.Sb_sched
module Ws = Nd_sched.Work_steal
module Backend = Nd_runtime.Backend
module Prng = Nd_util.Prng
module Cost = Nd_analyze.Cost

type config = {
  procs : int list;
  sigmas : float list;
  sb_modes : Sb.mode list;
  ws_seeds : int list;
  exec_workers : int list;
  grains : int list;
  machine : Pmh.t;
  serial_orders : int;
  explore_seeds : int list;
  check_miss_monotone : bool;
  sim_workers : int list;
}

let default_config =
  {
    procs = [ 1; 2; 5 ];
    sigmas = [ 0.34; 0.5; 1.0 ];
    sb_modes = [ Sb.Coarse; Sb.Fine ];
    ws_seeds = [ 1; 2 ];
    exec_workers = [ 1; 2; 4 ];
    grains = [ 0; 8 ];
    machine =
      Pmh.create ~root_fanout:2
        [
          { size = 16; fanout = 2; miss_cost = 2 };
          { size = 128; fanout = 2; miss_cost = 8 };
        ];
    serial_orders = 3;
    explore_seeds = [ 1 ];
    check_miss_monotone = true;
    sim_workers = [ 1; 2 ];
  }

type report = {
  n_vertices : int;
  n_leaves : int;
  work : int;
  span : int;
  race_free : bool;
  n_races : int;
  paths : int;
}

type failure = { stage : string; message : string }

let pp_failure ppf f = Format.fprintf ppf "[%s] %s" f.stage f.message

exception Fail of failure

let fail stage fmt = Printf.ksprintf (fun message -> raise (Fail { stage; message })) fmt

let guard stage f =
  try f ()
  with
  | Fail _ as e -> raise e
  | e -> fail stage "raised %s" (Printexc.to_string e)

(* ----------------------- structural invariants ----------------------- *)

let check_structure program tree_work =
  let dag = Nd.Program.dag program in
  let work = Dag.work dag in
  let span = Dag.span dag in
  guard "structure" (fun () -> ignore (Dag.topo_order dag));
  if work <> tree_work then
    fail "structure" "DAG work %d <> spawn-tree work %d (work not conserved)"
      work tree_work;
  if span > work then fail "structure" "span %d > work %d" span work;
  (work, span)

(* ------------------------- simulated paths --------------------------- *)

let lb ~work ~span p = max span ((work + p - 1) / p)

let check_greedy cfg program ~work ~span =
  List.iter
    (fun p ->
      let stage = Printf.sprintf "greedy p=%d" p in
      let s = guard stage (fun () -> Greedy.run ~procs:p program) in
      if s.Greedy.work <> work then
        fail stage "reported work %d <> %d" s.Greedy.work work;
      if s.Greedy.span <> span then
        fail stage "reported span %d <> %d" s.Greedy.span span;
      if s.Greedy.time < lb ~work ~span p then
        fail stage "time %d below lower bound %d" s.Greedy.time
          (lb ~work ~span p);
      if s.Greedy.time > Greedy.brent_bound s then
        fail stage "time %d violates Brent bound %d" s.Greedy.time
          (Greedy.brent_bound s))
    cfg.procs;
  List.length cfg.procs

let mode_name = function Sb.Coarse -> "coarse" | Sb.Fine -> "fine"

let check_sb cfg program ~work ~span =
  let paths = ref 0 in
  List.iter
    (fun mode ->
      let prev = ref None in
      (* ascending sigmas: ρ misses must not increase *)
      List.iter
        (fun sigma ->
          incr paths;
          let stage =
            Printf.sprintf "sb sigma=%.2f %s" sigma (mode_name mode)
          in
          let s =
            guard stage (fun () ->
                Sb.run ~sigma ~mode ~accounting:Sb.Rho program cfg.machine)
          in
          if s.Sb.work <> work then
            fail stage "reported work %d <> %d" s.Sb.work work;
          if s.Sb.busy < work then
            fail stage "busy %d < work %d (lost busy time)" s.Sb.busy work;
          if s.Sb.time < span then
            fail stage "time %d < span %d" s.Sb.time span;
          (if cfg.check_miss_monotone then
             match !prev with
             | Some (psigma, pm) ->
               Array.iteri
                 (fun j m ->
                   if m > pm.(j) then
                     fail stage
                       "level-%d misses grew from %d (sigma=%.2f) to %d: ρ \
                        misses must be non-increasing in sigma"
                       (j + 1) pm.(j) psigma m)
                 s.Sb.misses
             | None -> ());
          prev := Some (sigma, s.Sb.misses))
        cfg.sigmas)
    cfg.sb_modes;
  !paths

(* every zoo member behind the shared interface: one run each on the
   oracle machine, against the invariants the interface promises —
   conserved work, correct span, busy covering the work (nothing lost),
   makespan at or above the greedy lower bound (which also implies no
   deadlock: a stalled scheduler raises and is caught by [guard]) *)
let check_zoo cfg program ~work ~span =
  let p = Pmh.n_procs cfg.machine in
  List.iter
    (fun (name, (module S : Nd_sched.Scheduler.S)) ->
      let stage = Printf.sprintf "zoo %s" name in
      let s = guard stage (fun () -> S.run ~seed:1 program cfg.machine) in
      let open Nd_sched.Scheduler in
      if s.work <> work then fail stage "reported work %d <> %d" s.work work;
      if s.span <> span then fail stage "reported span %d <> %d" s.span span;
      if s.busy < work then
        fail stage "busy %d < work %d (lost busy time)" s.busy work;
      if s.time < lb ~work ~span p then
        fail stage "time %d below lower bound %d" s.time (lb ~work ~span p);
      if s.space_hwm < 0 then fail stage "negative space hwm %d" s.space_hwm;
      Array.iteri
        (fun j m ->
          if m < 0 then fail stage "negative level-%d misses %d" (j + 1) m)
        s.misses)
    Nd_sched.Zoo.all;
  List.length Nd_sched.Zoo.all

(* the sharded cache-simulation identity: SB's decoupled measurement
   mode must produce bit-identical per-cache miss tables at every
   sim-worker count, deterministically across repeated runs, without
   perturbing the (ρ-cost) schedule *)
let check_sim_shard cfg program ~work =
  match cfg.sim_workers with
  | [] -> 0
  | w0 :: rest ->
    let table stage s =
      match s.Sb.miss_table with
      | Some t -> t
      | None -> fail stage "no miss table from replay mode"
    in
    let stage0 = Printf.sprintf "sim-shard w=%d" w0 in
    let base =
      guard stage0 (fun () -> Sb.run ~sim_workers:w0 program cfg.machine)
    in
    if base.Sb.work <> work then
      fail stage0 "reported work %d <> %d" base.Sb.work work;
    let bt = table stage0 base in
    List.iter
      (fun w ->
        let stage = Printf.sprintf "sim-shard w=%d" w in
        let s =
          guard stage (fun () -> Sb.run ~sim_workers:w program cfg.machine)
        in
        if s.Sb.time <> base.Sb.time then
          fail stage "time %d <> %d: sim sharding perturbed the schedule"
            s.Sb.time base.Sb.time;
        if s.Sb.misses <> base.Sb.misses then
          fail stage "level miss totals diverge from w=%d" w0;
        if s.Sb.miss_cost <> base.Sb.miss_cost then
          fail stage "miss cost %d <> %d" s.Sb.miss_cost base.Sb.miss_cost;
        if not (Nd_mem.Miss_table.equal bt (table stage s)) then
          fail stage "per-cache miss table diverges from w=%d" w0;
        (* determinism: the same worker count twice, bit-identical *)
        let s' =
          guard stage (fun () -> Sb.run ~sim_workers:w program cfg.machine)
        in
        if not (Nd_mem.Miss_table.equal (table stage s) (table stage s')) then
          fail stage "repeated run not deterministic")
      rest;
    1 + List.length rest

let check_ws cfg program ~work ~span =
  List.iter
    (fun seed ->
      let stage = Printf.sprintf "ws seed=%d" seed in
      let s = guard stage (fun () -> Ws.run ~seed program cfg.machine) in
      if s.Ws.work <> work then
        fail stage "reported work %d <> %d" s.Ws.work work;
      if s.Ws.busy < work then fail stage "busy %d < work %d" s.Ws.busy work;
      if s.Ws.time < span then fail stage "time %d < span %d" s.Ws.time span)
    cfg.ws_seeds;
  List.length cfg.ws_seeds

(* ------------------------- executing paths ---------------------------- *)

(* [reset] restores inputs, [verify stage] checks observables; both are
   supplied by the spec/workload front ends. *)
let check_executing cfg program ~reset ~verify =
  let paths = ref 0 in
  let run_path stage f =
    incr paths;
    reset ();
    guard stage f;
    verify stage
  in
  (* randomized topological orders through the serial executor *)
  for i = 1 to cfg.serial_orders do
    run_path
      (Printf.sprintf "serial order=%d" i)
      (fun () -> Nd.Serial_exec.run ~rng:(Prng.create (0x5e1 + i)) program)
  done;
  (* every registered real backend: dataflow (ND), fork-join (the NP
     projection — a linear extension of the same DAG, so the same
     oracle applies) and the fiber scheduler, three-way on every
     case *)
  List.iter
    (fun w ->
      List.iter
        (fun g ->
          List.iter
            (fun (module B : Backend.S) ->
              run_path
                (Printf.sprintf "%s w=%d g=%d" B.name w g)
                (fun () -> B.run ~workers:w ~grain:g program))
            Backend.all)
        cfg.grains)
    cfg.exec_workers;
  (* controlled interleavings of the dataflow engine and of the fiber
     scheduler *)
  if cfg.explore_seeds <> [] then begin
    let explored stage explore =
      incr paths;
      let check () =
        match verify stage with
        | () -> Ok ()
        | exception Fail f -> Error f.message
      in
      match
        explore ~workers:2
          ~mode:(Explore.Random { seeds = cfg.explore_seeds })
          ~reset ~check program
      with
      | Ok _ -> ()
      | Error f -> fail stage "%s" (Format.asprintf "%a" Explore.pp_failure f)
    in
    explored "explore" (fun ~workers ~mode ~reset ~check program ->
        Explore.explore_program ~workers ~mode ~reset ~check program);
    explored "explore-fiber" (fun ~workers ~mode ~reset ~check program ->
        Explore.explore_fiber_program ~workers ~mode ~reset ~check program)
  end;
  !paths

(* ---------------------- structural cost analysis --------------------- *)

(* The structural Cost pass must agree bit-for-bit with every exact
   quantity the DAG path defines (work, span, root footprint size,
   leaves, Q* at every capacity the sigma sweep touches), and the
   SB-simulated per-level ρ misses must obey the static Theorem 1 bound
   Q*(t; sigma * M_j) at every sigma. *)
let check_cost cfg program ~work ~span =
  let stage = "cost" in
  let cost = guard stage (fun () -> Cost.of_program program) in
  let r = Cost.report cost in
  if r.Cost.work <> work then
    fail stage "structural work %d <> DAG work %d" r.Cost.work work;
  if r.Cost.span <> span then
    fail stage "structural span %d <> DAG span %d" r.Cost.span span;
  if r.Cost.n_leaves <> Nd.Program.n_leaves program then
    fail stage "structural n_leaves %d <> %d" r.Cost.n_leaves
      (Nd.Program.n_leaves program);
  let root_size = Nd.Program.size program (Nd.Program.root program) in
  if r.Cost.root_size <> root_size then
    fail stage "structural root size %d <> exact %d" r.Cost.root_size
      root_size;
  let ms =
    List.sort_uniq compare
      (1 :: 2
      :: List.concat_map
           (fun sigma ->
             List.init (Pmh.n_levels cfg.machine) (fun j ->
                 max 1
                   (int_of_float
                      (sigma *. float_of_int (Pmh.size cfg.machine ~level:(j + 1))))))
           cfg.sigmas)
  in
  List.iter
    (fun m ->
      let q = Cost.q_star cost ~m and qe = Nd_mem.Pcc.q_star program ~m in
      if q <> qe then fail stage "structural Q*(m=%d) %d <> exact %d" m q qe)
    ms;
  List.iter
    (fun sigma ->
      let stage = Printf.sprintf "cost theorem1 sigma=%.2f" sigma in
      let c =
        guard stage (fun () -> Cost.certify_theorem1 ~sigma program cfg.machine)
      in
      if not c.Cost.certified then
        fail stage "Theorem 1 violated:@ %s"
          (Format.asprintf "%a" Cost.pp_certification c))
    cfg.sigmas;
  1 + List.length cfg.sigmas

(* ------------------------------ fronts ------------------------------- *)

let run_oracle cfg program ~tree_work ~races_fail ~reset ~reference ~verify =
  try
    let work, span = check_structure program tree_work in
    let races = guard "race" (fun () -> Race.find_races (Nd.Program.dag program)) in
    (* the near-linear ESP-bags detector must reproduce the exact
       verdict on every program the oracle sees (see Nd_analyze) *)
    let esp_free =
      guard "esp-bags" (fun () -> Nd_analyze.Esp_bags.race_free program)
    in
    if esp_free <> (races = []) then
      fail "esp-bags"
        "ESP-bags verdict race_free=%b disagrees with the exact checker \
         (race_free=%b, %d races)"
        esp_free (races = []) (List.length races);
    if races_fail && races <> [] then
      fail "race" "expected race-free, found %d (first: %s)"
        (List.length races)
        (Format.asprintf "%a" (Race.pp_race (Nd.Program.dag program))
           (List.hd races));
    (* serial elision first: it defines the reference observables *)
    reset ();
    guard "serial elision" (fun () -> Nd.Serial_exec.run_sequential program);
    reference ();
    verify "serial elision";
    let paths =
      1
      + check_greedy cfg program ~work ~span
      + check_sb cfg program ~work ~span
      + check_ws cfg program ~work ~span
      + check_sim_shard cfg program ~work
      + check_cost cfg program ~work ~span
      + check_zoo cfg program ~work ~span
      + check_executing cfg program ~reset ~verify
    in
    Ok
      {
        n_vertices = Dag.n_vertices (Nd.Program.dag program);
        n_leaves = Nd.Program.n_leaves program;
        work;
        span;
        race_free = races = [];
        n_races = List.length races;
        paths;
      }
  with Fail f -> Error f

let check_instance ?(config = default_config) (inst : Gen.instance) =
  match Nd.Program.compile ~registry:inst.registry inst.tree with
  | exception e -> Error { stage = "compile"; message = Printexc.to_string e }
  | program ->
  (* memory equality is only promised for race-free programs; compute
     the flag before any executing path needs it (a detector overflow —
     now the explicit Race.Limit_exceeded — counts as "unknown", which
     skips the memory check, not the rest) *)
  let race_free =
    try Race.race_free (Nd.Program.dag program)
    with Race.Limit_exceeded _ -> false
  in
  let reference = ref [||] in
  let verify stage =
    Array.iteri
      (fun i c ->
        let n = Atomic.get c in
        if n <> 1 then
          fail stage "strand %d executed %d times (want exactly once)" i n)
      inst.counts;
    if race_free && !reference <> [||] && inst.memory <> !reference then begin
      let i = ref 0 in
      while inst.memory.(!i) = !reference.(!i) do
        incr i
      done;
      fail stage
        "race-free program diverged from serial elision at address %d (%d <> \
         %d)"
        !i inst.memory.(!i) !reference.(!i)
    end
  in
  match
    run_oracle config program
      ~tree_work:(Nd.Spawn_tree.work inst.tree)
      ~races_fail:false
      ~reset:(fun () -> Gen.reset inst)
      ~reference:(fun () -> reference := Array.copy inst.memory)
      ~verify
  with
  | r -> r
  | exception Fail f -> Error f

let check_spec ?config spec = check_instance ?config (Gen.build spec)

let check_workload ?(config = default_config) ?(tol = 1e-6)
    (w : Nd_algos.Workload.t) =
  let program = Nd_algos.Workload.compile w in
  let verify stage =
    let dev = w.check () in
    if not (dev <= tol) then
      fail stage "%s n=%d: deviation %g exceeds tolerance %g" w.name w.n dev
        tol
  in
  match
    run_oracle config program
      ~tree_work:(Nd.Spawn_tree.work w.tree)
      ~races_fail:true ~reset:w.reset
      ~reference:(fun () -> ())
      ~verify
  with
  | r -> r
  | exception Fail f -> Error f
