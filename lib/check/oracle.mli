(** Cross-executor differential oracle.

    One generated program ({!Gen.spec}) or packaged algorithm
    ({!Nd_algos.Workload.t}) is compiled once and pushed through every
    execution path the repo has — the serial reference, randomized
    topological orders, the greedy simulator, the space-bounded
    simulator, the work-stealing simulator, every scheduler-zoo member
    behind {!Nd_sched.Scheduler.S} (greedy, sb, ws, pdf, tree), and the
    real multicore dataflow and fork–join executors — and the oracle
    checks that they all agree with the serial elision and with the
    model's structural laws:

    - {b exactly-once}: every strand action runs exactly once on every
      executing path;
    - {b work conservation}: DAG work equals the spawn tree's total
      strand work, and every scheduler reports that same work;
    - {b span sanity}: [span <= work], and every simulated makespan
      obeys [max (span, ceil (work/p)) <= time], with greedy further
      bounded above by Brent's [work/p + span];
    - {b determinacy}: when {!Nd_dag.Race.race_free} holds, every path
      leaves the same memory image as the serial elision (for specs) or
      passes the workload's own numeric check (for workloads);
    - {b miss monotonicity}: the SB scheduler's per-level ρ miss counts
      are non-increasing in σ (larger space bounds only merge maximal
      tasks, never split them);
    - {b static cost agreement}: the structural [Nd_analyze.Cost] pass
      reproduces the DAG's work, span, leaf count, root footprint size
      and [Q*] at every capacity the σ sweep touches, and the SB
      per-level ρ misses obey Theorem 1's static bound
      [Q*(t; σ·M_j)] at every σ ([Cost.certify_theorem1]);
    - {b sharded-sim identity}: SB's decoupled measurement mode
      ([sim_workers]) yields bit-identical per-cache miss tables at
      every worker count, deterministic across repeated runs, without
      perturbing the schedule;
    - {b liveness}: the SB scheduler never raises [Deadlock] on a
      well-formed program (maximal tasks are disjoint, so coarse-mode
      contraction is acyclic), and no zoo member stalls (each raises on
      an unfinished DAG; the tree scheduler's forced admission makes
      its budget discipline deadlock-free by construction).

    A failure pinpoints the first stage that disagreed; with the
    generator's seed it is replayable via [ndsim fuzz --replay]. *)

type config = {
  procs : int list;  (** greedy simulator sweep *)
  sigmas : float list;  (** SB space parameter sweep, ascending *)
  sb_modes : Nd_sched.Sb_sched.mode list;
  ws_seeds : int list;  (** work-stealing simulator seeds *)
  exec_workers : int list;  (** real-executor worker counts *)
  grains : int list;  (** real-executor grain sweep *)
  machine : Nd_pmh.Pmh.t;  (** PMH for the locality simulators *)
  serial_orders : int;  (** randomized topological orders to try *)
  explore_seeds : int list;
      (** seeds for {!Explore.explore_program} random-walk schedules of
          the dataflow engine; [[]] disables exploration *)
  check_miss_monotone : bool;
  sim_workers : int list;
      (** SB sharded-replay worker counts: the per-cache miss tables
          must be bit-identical across all of them (and deterministic
          across repeated runs), and the schedule must equal the first
          entry's; [[]] disables the stage *)
}

(** Small sweeps over a tiny 2-level, 8-processor PMH — sized so a full
    oracle run on a generated program takes milliseconds. *)
val default_config : config

type report = {
  n_vertices : int;
  n_leaves : int;
  work : int;
  span : int;
  race_free : bool;
  n_races : int;  (** races found (capped by the detector's limit) *)
  paths : int;  (** parameterized execution paths checked *)
}

type failure = {
  stage : string;  (** e.g. ["sb sigma=0.50 coarse"], ["dataflow w=2 g=8"] *)
  message : string;
}

val pp_failure : Format.formatter -> failure -> unit

(** [check_spec ?config spec] builds the spec ({!Gen.build}) and runs
    the full oracle.  Programs with races are still legal inputs — the
    memory-equality check is simply skipped for them (the structural
    checks are not). *)
val check_spec : ?config:config -> Gen.spec -> (report, failure) result

(** [check_instance ?config instance] — as {!check_spec} but on an
    already-built instance (lets the fuzzer reuse the build). *)
val check_instance :
  ?config:config -> Gen.instance -> (report, failure) result

(** [check_workload ?config ?tol w] runs the oracle over a packaged
    algorithm: executing paths call [w.reset] before and require
    [w.check () <= tol] (default [1e-6]) after; the workload is expected
    to be race-free and any race found is a failure. *)
val check_workload :
  ?config:config ->
  ?tol:float ->
  Nd_algos.Workload.t ->
  (report, failure) result
