module Is = Nd_util.Interval_set
module Dag = Nd_dag.Dag

type node_id = int

type kind = Leaf of Strand.t | Seq | Par | Fire of string

type node = {
  kind : kind;
  children : int array;
  mutable parent : int;
  first_node : int;  (* lowest node id in the subtree (post-order layout) *)
  leaf_lo : int;
  leaf_hi : int;
  begin_v : int;
  end_v : int;
  mutable footprint : Is.t;
  mutable size : int;
  mutable work : int;
}

type decomposition = {
  m : int;
  tasks : node_id array;
  task_of_node : int array;
  task_of_vertex : int array;
  n_glue : int;
}

type t = {
  tree : Spawn_tree.t;
  registry : Fire_rule.registry;
  dag : Dag.t;
  nodes : node array;
  root : node_id;
  leaf_nodes : int array;
  leaf_vertices : int array;
  vertex_owner : int array;
  fire_edges : (node_id * node_id) list;
  decomp_cache : (int, decomposition) Hashtbl.t;
  decomp_lock : Mutex.t;
}

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let dummy_node =
  {
    kind = Seq;
    children = [||];
    parent = -1;
    first_node = 0;
    leaf_lo = 0;
    leaf_hi = 0;
    begin_v = 0;
    end_v = 0;
    footprint = Is.empty;
    size = 0;
    work = 0;
  }

let compile ~registry tree =
  let dag = Dag.create () in
  let store = ref (Array.make 64 dummy_node) in
  let n_nodes = ref 0 in
  let leaf_nodes = ref [] and leaf_vertices = ref [] in
  let n_leaves = ref 0 in
  let owners = ref [] in
  (* owners collected as (vertex, node) pairs; vertices are dense so we
     rebuild the array at the end *)
  let add_node node =
    let id = !n_nodes in
    if id >= Array.length !store then begin
      let bigger = Array.make (2 * Array.length !store) dummy_node in
      Array.blit !store 0 bigger 0 id;
      store := bigger
    end;
    !store.(id) <- node;
    incr n_nodes;
    id
  in
  let get i = !store.(i) in
  let sync label =
    Dag.add_vertex dag ~label ~work:0 ~reads:Is.empty ~writes:Is.empty ()
  in
  (* Build the spawn-tree structure and the DAG's structural edges.
     Children are allocated before their parent: post-order ids. *)
  let rec build t =
    let first = !n_nodes in
    match t with
    | Spawn_tree.Leaf s ->
      let v =
        Dag.add_vertex dag ~label:s.Strand.label ~work:s.Strand.work
          ~reads:s.Strand.reads ~writes:s.Strand.writes ()
      in
      let leaf_idx = !n_leaves in
      incr n_leaves;
      let id =
        add_node
          {
            kind = Leaf s;
            children = [||];
            parent = -1;
            first_node = first;
            leaf_lo = leaf_idx;
            leaf_hi = leaf_idx + 1;
            begin_v = v;
            end_v = v;
            footprint = Is.empty;
            size = 0;
            work = 0;
          }
      in
      leaf_nodes := id :: !leaf_nodes;
      leaf_vertices := v :: !leaf_vertices;
      owners := (v, id) :: !owners;
      id
    | Spawn_tree.Seq cs ->
      let lo = !n_leaves in
      let ids = List.map build cs in
      let hi = !n_leaves in
      let arr = Array.of_list ids in
      (* chain: end(c_i) -> begin(c_{i+1}) *)
      Array.iteri
        (fun i c ->
          if i > 0 then Dag.add_edge dag (get arr.(i - 1)).end_v (get c).begin_v)
        arr;
      let begin_v = (get arr.(0)).begin_v in
      let end_v = (get arr.(Array.length arr - 1)).end_v in
      add_node
        {
          kind = Seq;
          children = arr;
          parent = -1;
          first_node = first;
          leaf_lo = lo;
          leaf_hi = hi;
          begin_v;
          end_v;
          footprint = Is.empty;
          size = 0;
          work = 0;
        }
    | Spawn_tree.Par cs ->
      let lo = !n_leaves in
      let ids = List.map build cs in
      let hi = !n_leaves in
      let arr = Array.of_list ids in
      let begin_v = sync "par.begin" and end_v = sync "par.end" in
      Array.iter
        (fun c ->
          Dag.add_edge dag begin_v (get c).begin_v;
          Dag.add_edge dag (get c).end_v end_v)
        arr;
      let id =
        add_node
          {
            kind = Par;
            children = arr;
            parent = -1;
            first_node = first;
            leaf_lo = lo;
            leaf_hi = hi;
            begin_v;
            end_v;
            footprint = Is.empty;
            size = 0;
            work = 0;
          }
      in
      owners := (begin_v, id) :: (end_v, id) :: !owners;
      id
    | Spawn_tree.Fire { rule; src; snk } ->
      if not (Fire_rule.mem registry rule) then
        invalid_arg
          (Printf.sprintf "Program.compile: undefined fire type %S" rule);
      let lo = !n_leaves in
      let a = build src in
      let b = build snk in
      let hi = !n_leaves in
      let begin_v = sync ("fire." ^ rule ^ ".begin")
      and end_v = sync ("fire." ^ rule ^ ".end") in
      Dag.add_edge dag begin_v (get a).begin_v;
      Dag.add_edge dag begin_v (get b).begin_v;
      Dag.add_edge dag (get a).end_v end_v;
      Dag.add_edge dag (get b).end_v end_v;
      let id =
        add_node
          {
            kind = Fire rule;
            children = [| a; b |];
            parent = -1;
            first_node = first;
            leaf_lo = lo;
            leaf_hi = hi;
            begin_v;
            end_v;
            footprint = Is.empty;
            size = 0;
            work = 0;
          }
      in
      owners := (begin_v, id) :: (end_v, id) :: !owners;
      id
  in
  let root = build tree in
  let nodes = Array.sub !store 0 !n_nodes in
  (* parents *)
  Array.iteri
    (fun id n -> Array.iter (fun c -> nodes.(c).parent <- id) n.children)
    nodes;
  (* footprints, sizes, works: ids are post-order, children first *)
  Array.iter
    (fun n ->
      match n.kind with
      | Leaf s ->
        n.footprint <- Strand.footprint s;
        n.size <- Is.cardinal n.footprint;
        n.work <- s.Strand.work
      | Seq | Par | Fire _ ->
        let fp =
          Array.fold_left
            (fun acc c -> Is.union acc nodes.(c).footprint)
            Is.empty n.children
        in
        n.footprint <- fp;
        n.size <- Is.cardinal fp;
        n.work <-
          Array.fold_left (fun acc c -> acc + nodes.(c).work) 0 n.children)
    nodes;
  (* ---------------- fire-arrow rewriting ---------------- *)
  let is_leaf id = nodes.(id).children = [||] in
  let resolve id ped =
    let rec go id = function
      | [] -> id
      | step :: rest ->
        let cs = nodes.(id).children in
        if step >= 1 && step <= Array.length cs then go cs.(step - 1) rest
        else id (* attach at the deepest existing node *)
    in
    go id (Pedigree.to_list ped)
  in
  let fire_edges = Hashtbl.create 256 in
  let full_edge a b =
    if a <> b then begin
      let u = nodes.(a).end_v and v = nodes.(b).begin_v in
      if u <> v then begin
        Dag.add_edge dag u v;
        if not (Hashtbl.mem fire_edges (a, b)) then
          Hashtbl.add fire_edges (a, b) ()
      end
    end
  in
  let visited = Hashtbl.create 4096 in
  let rec process a b target =
    match target with
    | Fire_rule.Full -> full_edge a b
    | Fire_rule.Named r ->
      let key = (a, b, r) in
      if not (Hashtbl.mem visited key) then begin
        Hashtbl.add visited key ();
        let rules =
          try Fire_rule.find registry r
          with Not_found ->
            invalid_arg
              (Printf.sprintf "Program.compile: undefined fire type %S" r)
        in
        if rules <> [] then
          if is_leaf a && is_leaf b then full_edge a b
          else
            List.iter
              (fun { Fire_rule.src; via; dst } ->
                let a' = resolve a src and b' = resolve b dst in
                match via with
                | Fire_rule.Full -> full_edge a' b'
                | Fire_rule.Named r' ->
                  if a' = a && b' = b && r' = r then
                    (* no structural progress: conservative full edge *)
                    full_edge a b
                  else process a' b' via)
              rules
      end
  in
  Array.iter
    (fun n ->
      match n.kind with
      | Fire r -> process n.children.(0) n.children.(1) (Fire_rule.Named r)
      | Leaf _ | Seq | Par -> ())
    nodes;
  let vertex_owner = Array.make (Dag.n_vertices dag) (-1) in
  List.iter (fun (v, id) -> vertex_owner.(v) <- id) !owners;
  {
    tree;
    registry;
    dag;
    nodes;
    root;
    leaf_nodes = Array.of_list (List.rev !leaf_nodes);
    leaf_vertices = Array.of_list (List.rev !leaf_vertices);
    vertex_owner;
    fire_edges =
      List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) fire_edges []);
    decomp_cache = Hashtbl.create 16;
    decomp_lock = Mutex.create ();
  }

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let dag t = t.dag

let tree t = t.tree

let registry t = t.registry

let n_nodes t = Array.length t.nodes

let root t = t.root

let check t n =
  if n < 0 || n >= Array.length t.nodes then
    invalid_arg "Program: node id out of range"

let parent t n =
  check t n;
  t.nodes.(n).parent

let children t n =
  check t n;
  t.nodes.(n).children

let kind_of t n =
  check t n;
  t.nodes.(n).kind

let leaf_range t n =
  check t n;
  (t.nodes.(n).leaf_lo, t.nodes.(n).leaf_hi)

let n_leaves t = Array.length t.leaf_nodes

let leaf_node t i = t.leaf_nodes.(i)

let leaf_vertex t i = t.leaf_vertices.(i)

let vertex_owner t v = t.vertex_owner.(v)

let fire_edges t = t.fire_edges

let begin_vertex t n =
  check t n;
  t.nodes.(n).begin_v

let end_vertex t n =
  check t n;
  t.nodes.(n).end_v

let footprint t n =
  check t n;
  t.nodes.(n).footprint

let size t n =
  check t n;
  t.nodes.(n).size

let work_of_node t n =
  check t n;
  t.nodes.(n).work

(* ------------------------------------------------------------------ *)
(* M-maximal decomposition                                             *)
(* ------------------------------------------------------------------ *)

let decompose_uncached t ~m =
  let tasks = ref [] and n_tasks = ref 0 in
  let task_of_node = Array.make (Array.length t.nodes) (-1) in
  let n_glue = ref 0 in
  let rec go n =
    let node = t.nodes.(n) in
    if node.size <= m || node.children = [||] then begin
      let idx = !n_tasks in
      incr n_tasks;
      tasks := n :: !tasks;
      (* post-order: the subtree is the contiguous id range [first, n] *)
      for i = node.first_node to n do
        task_of_node.(i) <- idx
      done
    end
    else begin
      incr n_glue;
      Array.iter go node.children
    end
  in
  go t.root;
  let task_of_vertex =
    Array.map
      (fun owner -> if owner < 0 then -1 else task_of_node.(owner))
      t.vertex_owner
  in
  {
    m;
    tasks = Array.of_list (List.rev !tasks);
    task_of_node;
    task_of_vertex;
    n_glue = !n_glue;
  }

(* Memoized per program: sigma-sweeps and the Q*/Q-hat metrics query the
   same handful of [m] values over and over, and a decomposition is
   immutable once built.  The memo table is mutex-guarded (the analysis
   server shares one compiled program across pool domains); computing
   inside the lock doubles as single-flight, so a given [m] is
   decomposed exactly once per program no matter how many domains race
   on it.  The critical section is O(nodes) — negligible next to the
   simulations that consume the result. *)
let decompose t ~m =
  if m < 1 then invalid_arg "Program.decompose: m < 1";
  Mutex.protect t.decomp_lock (fun () ->
      match Hashtbl.find_opt t.decomp_cache m with
      | Some d -> d
      | None ->
        let d = decompose_uncached t ~m in
        Hashtbl.add t.decomp_cache m d;
        d)

let enclosing_task d n = d.task_of_node.(n)

let is_ancestor t a n =
  check t a;
  check t n;
  t.nodes.(a).first_node <= n && n <= a
