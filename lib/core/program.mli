(** Compiled ND programs: the DAG Rewriting System (DRS).

    [compile] fully unfolds a spawn tree and materializes the equivalent
    algorithm DAG defined by the paper's two rewriting rules:

    - {b Spawn rule}: every spawn-tree node contributes structure to the
      DAG.  Strands become work-carrying vertices.  [Seq] chains its
      children; [Par] and [Fire] fan out between zero-work begin/end
      synchronization vertices, which keeps the DAG linear in the number of
      leaves while preserving the precedence relation exactly (a full
      dependency [a ; b] is the single edge [end(a) -> begin(b)], and
      [end(a)] is a descendant of every leaf of [a]).

    - {b Fire rule}: every [Fire] node seeds a dataflow arrow
      [(src, snk, rule)] which is rewritten recursively: each registered
      rule [+p ⇝R -q] resolves the pedigrees [p] and [q] below the arrow's
      endpoints and recurses; arrows between two strands, and arrows whose
      rules make no further progress, become full-dependency edges (the
      paper: fire arrows incident to leaves are treated as solid arrows).
      Fire types with an empty rule list behave as ["‖"].

    Leaves are numbered in depth-first order, so every spawn-tree node
    covers a contiguous leaf interval — the representation behind the
    M-maximal decompositions used by the metrics and schedulers. *)

type t

type node_id = int

type kind = Leaf of Strand.t | Seq | Par | Fire of string

(** [compile ~registry tree] runs the DRS.
    @raise Invalid_argument if the tree references an unregistered fire
    type. *)
val compile : registry:Fire_rule.registry -> Spawn_tree.t -> t

val dag : t -> Nd_dag.Dag.t

val tree : t -> Spawn_tree.t

val registry : t -> Fire_rule.registry

(** {2 Spawn-tree nodes} *)

val n_nodes : t -> int

val root : t -> node_id

(** [parent t n] is [-1] for the root. *)
val parent : t -> node_id -> node_id

val children : t -> node_id -> node_id array

val kind_of : t -> node_id -> kind

(** [leaf_range t n] is the half-open interval of DFS leaf indices covered
    by [n]'s subtree. *)
val leaf_range : t -> node_id -> int * int

val n_leaves : t -> int

(** [leaf_node t i] / [leaf_vertex t i]: the node id / DAG vertex of the
    [i]-th leaf in DFS order. *)
val leaf_node : t -> int -> node_id

val leaf_vertex : t -> int -> Nd_dag.Dag.vertex_id

(** [vertex_owner t v] is the deepest spawn-tree node a DAG vertex belongs
    to (strand vertices belong to their leaf; synchronization vertices to
    the node that introduced them). *)
val vertex_owner : t -> Nd_dag.Dag.vertex_id -> node_id

(** [fire_edges t]: the deduplicated list of non-structural dependencies
    the fire-rule rewriting added, as spawn-tree node pairs [(a, b)] —
    each denotes the DAG edge [end(a) -> begin(b)], i.e. {e every} strand
    of [a]'s subtree precedes {e every} strand of [b]'s subtree.  Sorted
    by [(a, b)].  This is the complete extra ordering the ⇝ arrows
    contribute on top of the series-parallel skeleton; the ESP-bags race
    detector ({!Nd_analyze}) and the fire-rule linter consume it. *)
val fire_edges : t -> (node_id * node_id) list

(** [begin_vertex t n] / [end_vertex t n]: the DAG vertices such that
    [begin] precedes and [end] follows every strand of [n]'s subtree. *)
val begin_vertex : t -> node_id -> Nd_dag.Dag.vertex_id

val end_vertex : t -> node_id -> Nd_dag.Dag.vertex_id

(** {2 Sizes and footprints} *)

(** [footprint t n]: union of the strand footprints in [n]'s subtree. *)
val footprint : t -> node_id -> Nd_util.Interval_set.t

(** [size t n] = s(n): distinct memory locations accessed by the subtree
    (the paper's statically-allocated task size). *)
val size : t -> node_id -> int

(** [work_of_node t n]: total strand work in the subtree. *)
val work_of_node : t -> node_id -> int

(** {2 M-maximal decomposition} *)

type decomposition = {
  m : int;
  tasks : node_id array;  (** maximal task roots, in DFS order *)
  task_of_node : int array;  (** node -> task index, or -1 for glue nodes *)
  task_of_vertex : int array;  (** DAG vertex -> task index, or -1 *)
  n_glue : int;  (** number of glue nodes *)
}

(** [decompose t ~m] splits the spawn tree into M-maximal tasks (size at
    most [m], parent bigger) and glue nodes.  A leaf whose strand exceeds
    [m] is still a task of its own (it cannot be split).

    Results are memoized per program (keyed by [m]) — sigma-sweeps and
    the PCC/ECC metrics re-request the same decompositions, and the
    result is immutable.  The memo table is mutex-guarded and computes
    under the lock (single-flight), so a compiled program may be shared
    freely across domains — the analysis server's worker pools rely on
    this.
    @raise Invalid_argument if [m < 1]. *)
val decompose : t -> m:int -> decomposition

(** [enclosing_task d n]: task index containing node [n], or [-1] if [n]
    is glue. *)
val enclosing_task : decomposition -> node_id -> int

(** [is_ancestor t a n] is true when [a] is an ancestor of [n] (or equal). *)
val is_ancestor : t -> node_id -> node_id -> bool
