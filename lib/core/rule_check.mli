(** Fire-rule diagnosis: explain determinacy races in rule-set terms.

    When {!Nd_dag.Race} finds an unordered conflicting strand pair, the
    actionable question is {e which fire construct should have ordered
    them, and with which pedigrees}.  [diagnose] lifts each race to the
    lowest common ancestor of the two strands in the spawn tree and
    reports their pedigrees relative to it — if the LCA is a fire node,
    the fix is a rule [+p ⇝ -q] (or a refinement of one) in that fire's
    rule set; if it is a par node, the parallelism itself is unsound.

    This is the tool that located every correction catalogued in
    DESIGN.md (the paper's MT, VH, ABAB and MM sets). *)

type finding = {
  race : Nd_dag.Race.race;
  lca : Program.node_id;
  lca_kind : Program.kind;
  src_pedigree : Pedigree.t;  (** LCA -> the earlier-in-DFS strand *)
  dst_pedigree : Pedigree.t;  (** LCA -> the later-in-DFS strand *)
}

(** [diagnose ?limit program] — one finding per detected race (default
    limit 16).  Exact, so bounded by the reachability closure:
    @raise Nd_dag.Race.Limit_exceeded when the program's DAG exceeds
    {!Nd_dag.Race.max_vertices} vertices (never degrades silently; the
    near-linear [Nd_analyze.Esp_bags.diagnose] has no such cap). *)
val diagnose : ?limit:int -> Program.t -> finding list

(** [lca program a b] — lowest common ancestor of two nodes. *)
val lca : Program.t -> Program.node_id -> Program.node_id -> Program.node_id

(** [pedigree_from program ~ancestor node] — child indices from
    [ancestor] down to [node].
    @raise Invalid_argument if [ancestor] is not an ancestor of [node]. *)
val pedigree_from :
  Program.t -> ancestor:Program.node_id -> Program.node_id -> Pedigree.t

val pp_finding : Program.t -> Format.formatter -> finding -> unit
