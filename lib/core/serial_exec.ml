module Dag = Nd_dag.Dag

let act program v =
  let n = Program.vertex_owner program v in
  if n >= 0 then
    match Program.kind_of program n with
    | Program.Leaf s -> ( match s.Strand.action with Some f -> f () | None -> ())
    | Program.Seq | Program.Par | Program.Fire _ -> ()

let run ?rng ?(tracer = Nd_trace.Collector.null) program =
  let dag = Program.dag program in
  let n = Dag.n_vertices dag in
  let traced = Nd_trace.Collector.enabled tracer in
  (* virtual clock for the trace: cumulative work executed so far *)
  let vclock = ref 0 in
  let indeg = Array.make n 0 in
  for v = 0 to n - 1 do
    indeg.(v) <- List.length (Dag.preds dag v)
  done;
  (* ready pool as an array with O(1) removal by swap *)
  let ready = Array.make n 0 in
  let n_ready = ref 0 in
  let push v =
    ready.(!n_ready) <- v;
    incr n_ready
  in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then push v
  done;
  let executed = ref 0 in
  while !n_ready > 0 do
    let i =
      match rng with
      | Some r -> Nd_util.Prng.int r !n_ready
      | None -> !n_ready - 1
    in
    let v = ready.(i) in
    ready.(i) <- ready.(!n_ready - 1);
    decr n_ready;
    if traced then begin
      let work = Dag.work_of dag v in
      if work > 0 then
        Nd_trace.Collector.emit tracer ~worker:0 ~ts:!vclock
          (Nd_trace.Event.Strand_begin
             { vertex = v; work; label = Dag.label dag v })
    end;
    act program v;
    if traced then begin
      let work = Dag.work_of dag v in
      vclock := !vclock + work;
      if work > 0 then
        Nd_trace.Collector.emit tracer ~worker:0 ~ts:!vclock
          (Nd_trace.Event.Strand_end { vertex = v })
    end;
    incr executed;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then begin
          push w;
          if traced then
            Nd_trace.Collector.emit tracer ~worker:0 ~ts:!vclock
              (Nd_trace.Event.Fire { target = w; level = 0 })
        end)
      (Dag.succs dag v)
  done;
  if !executed < n then begin
    (* some vertex never became ready: a cycle *)
    let witness = ref 0 in
    for v = 0 to n - 1 do
      if indeg.(v) > 0 then witness := v
    done;
    raise (Dag.Cycle !witness)
  end

let run_sequential program =
  let rec go tree =
    match tree with
    | Spawn_tree.Leaf s -> ( match s.Strand.action with Some f -> f () | None -> ())
    | Spawn_tree.Seq l | Spawn_tree.Par l -> List.iter go l
    | Spawn_tree.Fire { src; snk; _ } ->
      go src;
      go snk
  in
  go (Program.tree program)
