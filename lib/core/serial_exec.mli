(** Serial execution of a compiled program's algorithm DAG.

    Runs every strand action exactly once, in an order consistent with the
    DAG's dependencies.  With [rng], ready vertices are picked uniformly at
    random, which — combined with the race detector — is how the test suite
    checks that a fire-rule set carries {e enough} dependencies: a race-free
    DAG must produce identical results under every topological order. *)

(** [run ?rng ?tracer program] executes strand actions in a (possibly
    randomized) topological order.  With [tracer], emits strand
    begin/end and fire events on worker 0 against a virtual clock that
    advances by each vertex's work.
    @raise Nd_dag.Dag.Cycle on a cyclic DAG. *)
val run : ?rng:Nd_util.Prng.t -> ?tracer:Nd_trace.Collector.t -> Program.t -> unit

(** [run_sequential program] executes strand actions in the depth-first
    (left-to-right) order of the spawn tree — the serial elision.  Ignores
    the DAG entirely; used as the reference ordering. *)
val run_sequential : Program.t -> unit
