module Is = Nd_util.Interval_set

type vertex_id = int

type vertex = {
  label : string;
  work : int;
  reads : Is.t;
  writes : Is.t;
  mutable succs : vertex_id list;
  mutable preds : vertex_id list;
}

type csr = {
  succ_off : int array;
  succ_tgt : int array;
  indeg : int array;
}

type t = {
  mutable vertices : vertex array;
  mutable n : int;
  mutable edges : int;
  mutable csr_cache : csr option;
}

let create () = { vertices = [||]; n = 0; edges = 0; csr_cache = None }

let grow t =
  let cap = Array.length t.vertices in
  if t.n >= cap then begin
    let ncap = max 16 (2 * cap) in
    let dummy =
      { label = ""; work = 0; reads = Is.empty; writes = Is.empty; succs = []; preds = [] }
    in
    let a = Array.make ncap dummy in
    Array.blit t.vertices 0 a 0 t.n;
    t.vertices <- a
  end

let add_vertex t ?(label = "") ~work ~reads ~writes () =
  grow t;
  let id = t.n in
  t.vertices.(id) <- { label; work; reads; writes; succs = []; preds = [] };
  t.n <- t.n + 1;
  t.csr_cache <- None;
  id

let check_id t v =
  if v < 0 || v >= t.n then invalid_arg "Dag: vertex id out of range"

let add_edge t u v =
  check_id t u;
  check_id t v;
  if u = v then invalid_arg "Dag.add_edge: self loop";
  let vu = t.vertices.(u) in
  if not (List.mem v vu.succs) then begin
    vu.succs <- v :: vu.succs;
    let vv = t.vertices.(v) in
    vv.preds <- u :: vv.preds;
    t.edges <- t.edges + 1;
    t.csr_cache <- None
  end

let n_vertices t = t.n

let n_edges t = t.edges

let succs t v =
  check_id t v;
  t.vertices.(v).succs

let preds t v =
  check_id t v;
  t.vertices.(v).preds

let label t v =
  check_id t v;
  t.vertices.(v).label

let work_of t v =
  check_id t v;
  t.vertices.(v).work

let reads_of t v =
  check_id t v;
  t.vertices.(v).reads

let writes_of t v =
  check_id t v;
  t.vertices.(v).writes

let footprint_of t v = Is.union (reads_of t v) (writes_of t v)

let work t =
  let acc = ref 0 in
  for i = 0 to t.n - 1 do
    acc := !acc + t.vertices.(i).work
  done;
  !acc

(* Flat CSR adjacency: one offsets array (length n+1) plus one packed
   successor-id array, so the runtime's wake-up loop is an int-array scan
   with no list-cell pointer chasing and no per-visit allocation.  Built
   lazily and cached; any mutation invalidates the cache. *)
let build_csr t =
  let n = t.n in
  let succ_off = Array.make (n + 1) 0 in
  let indeg = Array.make n 0 in
  for v = 0 to n - 1 do
    succ_off.(v + 1) <- List.length t.vertices.(v).succs;
    indeg.(v) <- List.length t.vertices.(v).preds
  done;
  for v = 1 to n do
    succ_off.(v) <- succ_off.(v) + succ_off.(v - 1)
  done;
  let succ_tgt = Array.make succ_off.(n) 0 in
  let fill = Array.make n 0 in
  for v = 0 to n - 1 do
    List.iter
      (fun s ->
        succ_tgt.(succ_off.(v) + fill.(v)) <- s;
        fill.(v) <- fill.(v) + 1)
      t.vertices.(v).succs
  done;
  { succ_off; succ_tgt; indeg }

let csr t =
  match t.csr_cache with
  | Some c -> c
  | None ->
    let c = build_csr t in
    t.csr_cache <- Some c;
    c

exception Cycle of vertex_id

let topo_order t =
  let indeg = Array.make t.n 0 in
  for v = 0 to t.n - 1 do
    indeg.(v) <- List.length t.vertices.(v).preds
  done;
  let order = Array.make t.n 0 in
  let q = Queue.create () in
  for v = 0 to t.n - 1 do
    if indeg.(v) = 0 then Queue.add v q
  done;
  let k = ref 0 in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    order.(!k) <- v;
    incr k;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w q)
      t.vertices.(v).succs
  done;
  if !k < t.n then begin
    (* find a witness still carrying positive in-degree *)
    let w = ref 0 in
    for v = 0 to t.n - 1 do
      if indeg.(v) > 0 then w := v
    done;
    raise (Cycle !w)
  end;
  order

let longest_path_weighted t weight =
  let order = topo_order t in
  let dist = Array.make t.n 0 in
  let best = ref 0 in
  Array.iter
    (fun v ->
      let d = dist.(v) + weight v in
      if d > !best then best := d;
      List.iter (fun w -> if d > dist.(w) then dist.(w) <- d) t.vertices.(v).succs)
    order;
  !best

let span t = longest_path_weighted t (fun v -> t.vertices.(v).work)

let critical_path t =
  let order = topo_order t in
  let dist = Array.make t.n 0 in
  let from = Array.make t.n (-1) in
  let best = ref 0 and best_v = ref (if t.n > 0 then order.(0) else -1) in
  Array.iter
    (fun v ->
      let d = dist.(v) + t.vertices.(v).work in
      if d > !best || !best_v = -1 then begin
        best := d;
        best_v := v
      end;
      List.iter
        (fun w ->
          if d > dist.(w) then begin
            dist.(w) <- d;
            from.(w) <- v
          end)
        t.vertices.(v).succs)
    order;
  if t.n = 0 then []
  else begin
    let rec walk v acc = if v = -1 then acc else walk from.(v) (v :: acc) in
    walk !best_v []
  end

let sources t =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    if t.vertices.(v).preds = [] then acc := v :: !acc
  done;
  !acc

let sinks t =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    if t.vertices.(v).succs = [] then acc := v :: !acc
  done;
  !acc

type reachability = { nbits : int; words : int; bits : Bytes.t }
(* row v = descendants of v (including v), packed little-endian bit per id *)

let reachability ?(max_vertices = 60_000) t =
  if t.n > max_vertices then invalid_arg "Dag.reachability: too many vertices";
  let words = (t.n + 7) / 8 in
  let bits = Bytes.make (t.n * words) '\000' in
  let set row v =
    let idx = (row * words) + (v / 8) in
    Bytes.unsafe_set bits idx
      (Char.chr (Char.code (Bytes.unsafe_get bits idx) lor (1 lsl (v mod 8))))
  in
  let or_row dst src =
    let d0 = dst * words and s0 = src * words in
    for i = 0 to words - 1 do
      let b = Char.code (Bytes.unsafe_get bits (d0 + i)) lor Char.code (Bytes.unsafe_get bits (s0 + i)) in
      Bytes.unsafe_set bits (d0 + i) (Char.unsafe_chr b)
    done
  in
  let order = topo_order t in
  (* reverse topological: successors first *)
  for i = t.n - 1 downto 0 do
    let v = order.(i) in
    set v v;
    List.iter (fun w -> or_row v w) t.vertices.(v).succs
  done;
  { nbits = t.n; words; bits }

let reachable r u v =
  if u < 0 || u >= r.nbits || v < 0 || v >= r.nbits then
    invalid_arg "Dag.reachable: id out of range";
  let idx = (u * r.words) + (v / 8) in
  Char.code (Bytes.get r.bits idx) land (1 lsl (v mod 8)) <> 0
