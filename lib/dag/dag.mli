(** Algorithm DAGs.

    The vertices are strands (serial code segments with a work count and a
    memory footprint split into reads and writes) plus zero-work
    synchronization vertices introduced when full serial dependencies
    between large subtrees are represented compactly.  Edges are data
    dependencies.  This is the object the paper calls the {e algorithm DAG}:
    the DRS ({!module:Nd.Drs}) produces one from a spawn tree, and all
    work-span and scheduling analyses run on it. *)

type t

type vertex_id = int

val create : unit -> t

(** [add_vertex t ~label ~work ~reads ~writes] appends a vertex and returns
    its id.  Ids are dense and increase in creation order. *)
val add_vertex :
  t ->
  ?label:string ->
  work:int ->
  reads:Nd_util.Interval_set.t ->
  writes:Nd_util.Interval_set.t ->
  unit ->
  vertex_id

(** [add_edge t u v] adds the dependency [u -> v].  Duplicate edges are
    coalesced.  @raise Invalid_argument on out-of-range ids or self loop. *)
val add_edge : t -> vertex_id -> vertex_id -> unit

val n_vertices : t -> int

val n_edges : t -> int

val succs : t -> vertex_id -> vertex_id list

val preds : t -> vertex_id -> vertex_id list

val label : t -> vertex_id -> string

val work_of : t -> vertex_id -> int

val reads_of : t -> vertex_id -> Nd_util.Interval_set.t

val writes_of : t -> vertex_id -> Nd_util.Interval_set.t

(** [footprint_of t v] is the union of reads and writes. *)
val footprint_of : t -> vertex_id -> Nd_util.Interval_set.t

(** Total work [T_1]: sum of vertex works. *)
val work : t -> int

(** Flat compressed-sparse-row view of the adjacency, for hot loops that
    cannot afford list traversal or allocation (the multicore dataflow
    executor's wake-up scan).  [succ_off] has length [n_vertices + 1];
    the successors of [v] are [succ_tgt.(succ_off.(v)) ..
    succ_tgt.(succ_off.(v+1) - 1)].  [indeg.(v)] is the in-degree of [v]
    at build time.  The arrays are cached inside the DAG and shared
    between calls: treat them as read-only.  Any [add_vertex]/[add_edge]
    invalidates the cache. *)
type csr = {
  succ_off : int array;
  succ_tgt : int array;
  indeg : int array;
}

val csr : t -> csr

exception Cycle of vertex_id

(** [topo_order t] returns the vertices in a topological order.
    @raise Cycle if the graph has one (the witness is on a cycle). *)
val topo_order : t -> vertex_id array

(** [span t] is [T_inf]: the maximum total vertex work along any directed
    path (the critical path length). *)
val span : t -> int

(** [critical_path t] returns one witness path realizing {!span}, from a
    source to a sink. *)
val critical_path : t -> vertex_id list

(** Vertices with no predecessors / successors. *)
val sources : t -> vertex_id list

val sinks : t -> vertex_id list

(** [longest_path_weighted t weight] generalizes {!span} to arbitrary
    non-negative vertex weights. *)
val longest_path_weighted : t -> (vertex_id -> int) -> int

(** [reachability ?max_vertices t] computes the full transitive-closure as
    bitsets; [reachable r u v] tells whether there is a directed path
    [u ->* v] (including [u = v]).  Quadratic space ([n^2 / 8] bytes):
    intended for validation on moderate instances only.
    @raise Invalid_argument beyond [max_vertices] (default 60_000)
    vertices.  [Race.max_vertices] carries the effective cap (overridable
    via the [NDSIM_RACE_MAX] environment variable) and [Race.find_races]
    turns the overflow into the explicit [Race.Limit_exceeded]; callers
    that need ordering at larger scale use the near-linear
    [Nd_analyze.Esp_bags] pass instead. *)
type reachability

val reachability : ?max_vertices:int -> t -> reachability

val reachable : reachability -> vertex_id -> vertex_id -> bool
