module Is = Nd_util.Interval_set

type race = {
  u : Dag.vertex_id;
  v : Dag.vertex_id;
  overlap : Is.t;
  write_write : bool;
}

exception Limit_exceeded of { vertices : int; limit : int }

let default_max_vertices = 60_000

let max_vertices =
  match Sys.getenv_opt "NDSIM_RACE_MAX" with
  | None | Some "" -> default_max_vertices
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> default_max_vertices)

(* Exhaustive pairwise check guarded by cheap footprint overlap tests; the
   reachability closure answers the ordering question in O(1) per pair.
   The closure is quadratic in space, so past [max_vertices] we refuse
   loudly rather than degrade: callers either catch [Limit_exceeded] and
   fall back to the near-linear Nd_analyze.Esp_bags detector, or let it
   propagate. *)
let find_races ?(limit = 16) ?(max_vertices = max_vertices) dag =
  let n = Dag.n_vertices dag in
  if n > max_vertices then
    raise (Limit_exceeded { vertices = n; limit = max_vertices });
  let reach = Dag.reachability ~max_vertices dag in
  let races = ref [] in
  let count = ref 0 in
  (try
     for u = 0 to n - 1 do
       let wu = Dag.writes_of dag u in
       let ru = Dag.reads_of dag u in
       if not (Is.is_empty wu && Is.is_empty ru) then
         for v = u + 1 to n - 1 do
           let wv = Dag.writes_of dag v in
           let ww = Is.inter wu wv in
           let rw = Is.union (Is.inter ru wv) (Is.inter wu (Dag.reads_of dag v)) in
           if not (Is.is_empty ww && Is.is_empty rw) then
             if not (Dag.reachable reach u v || Dag.reachable reach v u) then begin
               let write_write = not (Is.is_empty ww) in
               let overlap = if write_write then ww else rw in
               races := { u; v; overlap; write_write } :: !races;
               incr count;
               if !count >= limit then raise Exit
             end
         done
     done
   with Exit -> ());
  List.rev !races

let race_free ?max_vertices dag = find_races ~limit:1 ?max_vertices dag = []

let pp_race dag ppf r =
  Format.fprintf ppf "%s race between #%d(%s) and #%d(%s) on %a"
    (if r.write_write then "write-write" else "read-write")
    r.u (Dag.label dag r.u) r.v (Dag.label dag r.v) Is.pp r.overlap
