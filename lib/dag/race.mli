(** Determinacy-race detection on algorithm DAGs.

    Two vertices race when their footprints conflict (write/write or
    read/write overlap) and neither is an ancestor of the other.  The
    paper's fire-rule sets are supposed to serialize every pair of subtasks
    that write the same region; this module verifies that property for the
    DAGs the DRS produces (experiment E8), and it is how we detected that
    the literal MM rule set from Section 2 of the paper leaves a
    write-write race (see DESIGN.md). *)

type race = {
  u : Dag.vertex_id;
  v : Dag.vertex_id;
  overlap : Nd_util.Interval_set.t;  (** conflicting addresses *)
  write_write : bool;  (** [false] means a read/write conflict *)
}

(** Raised by {!find_races} / {!race_free} when the DAG has more than
    {!max_vertices} vertices: the exact checker needs the full
    {!Dag.reachability} closure, whose quadratic bit-matrix would not fit.
    The failure is deliberate and loud — an oversized program must never
    be silently reported race-free.  Catch it to fall back to the
    near-linear [Nd_analyze.Esp_bags] detector. *)
exception Limit_exceeded of { vertices : int; limit : int }

(** Size cap of the exact checker (the largest vertex count
    {!Dag.reachability} accepts, currently 60_000). *)
val max_vertices : int

(** [find_races ?limit dag] returns up to [limit] (default 16) races, or
    [[]] when the DAG is determinacy-race free.  Exact: uses full
    reachability.
    @raise Limit_exceeded when the DAG exceeds {!max_vertices} vertices. *)
val find_races : ?limit:int -> Dag.t -> race list

(** [race_free dag] is [find_races ~limit:1 dag = \[\]].
    @raise Limit_exceeded when the DAG exceeds {!max_vertices} vertices. *)
val race_free : Dag.t -> bool

val pp_race : Dag.t -> Format.formatter -> race -> unit
