(** Determinacy-race detection on algorithm DAGs.

    Two vertices race when their footprints conflict (write/write or
    read/write overlap) and neither is an ancestor of the other.  The
    paper's fire-rule sets are supposed to serialize every pair of subtasks
    that write the same region; this module verifies that property for the
    DAGs the DRS produces (experiment E8), and it is how we detected that
    the literal MM rule set from Section 2 of the paper leaves a
    write-write race (see DESIGN.md). *)

type race = {
  u : Dag.vertex_id;
  v : Dag.vertex_id;
  overlap : Nd_util.Interval_set.t;  (** conflicting addresses *)
  write_write : bool;  (** [false] means a read/write conflict *)
}

(** Raised by {!find_races} / {!race_free} when the DAG has more than
    {!max_vertices} vertices: the exact checker needs the full
    {!Dag.reachability} closure, whose quadratic bit-matrix would not fit.
    The failure is deliberate and loud — an oversized program must never
    be silently reported race-free.  Catch it to fall back to the
    near-linear [Nd_analyze.Esp_bags] detector. *)
exception Limit_exceeded of { vertices : int; limit : int }

(** Built-in size cap of the exact checker, 60_000 vertices (a full
    closure at that size is a ~450 MB bit-matrix). *)
val default_max_vertices : int

(** Effective default cap: {!default_max_vertices} unless the
    [NDSIM_RACE_MAX] environment variable holds a positive integer, which
    then overrides it (read once at module initialization; malformed or
    non-positive values fall back to the built-in cap).  Raise it to push
    the exact checker past 60k vertices at the price of quadratic memory,
    or lower it to fail fast onto the [Esp_bags] path. *)
val max_vertices : int

(** [find_races ?limit ?max_vertices dag] returns up to [limit]
    (default 16) races, or [[]] when the DAG is determinacy-race free.
    Exact: uses full reachability.  [max_vertices] overrides the cap for
    this call only (default {!max_vertices}).
    @raise Limit_exceeded when the DAG exceeds the cap. *)
val find_races : ?limit:int -> ?max_vertices:int -> Dag.t -> race list

(** [race_free ?max_vertices dag] is
    [find_races ~limit:1 ?max_vertices dag = \[\]].
    @raise Limit_exceeded when the DAG exceeds the cap. *)
val race_free : ?max_vertices:int -> Dag.t -> bool

val pp_race : Dag.t -> Format.formatter -> race -> unit
