module Table = Nd_util.Table
module Stats = Nd_util.Stats
module Pmh = Nd_pmh.Pmh
module Cost = Nd_analyze.Cost
open Nd_algos

let seed = 20160215 (* the paper's arXiv date *)

let now_ns () = Monotonic_clock.now ()

let seconds_since t0 = Int64.to_float (Int64.sub (now_ns ()) t0) *. 1e-9

let sim_machine ~top_caches =
  Pmh.create ~root_fanout:top_caches
    [
      { Pmh.size = 64; fanout = 1; miss_cost = 2 };
      { Pmh.size = 512; fanout = 4; miss_cost = 8 };
      { Pmh.size = 4096; fanout = 4; miss_cost = 32 };
    ]

let compile_both w =
  (Workload.compile ~mode:Workload.ND w, Workload.compile ~mode:Workload.NP w)

let fit_exponent pairs =
  let xs = List.map (fun (n, _) -> float_of_int n) pairs in
  let ys = List.map (fun (_, s) -> float_of_int s) pairs in
  let e, _, _ = Stats.power_fit xs ys in
  e

(* ------------------------------ E1 --------------------------------- *)

let e1_span () =
  let t =
    Table.create ~title:"E1: span, NP vs ND (Section 3; Figs. 1 and 8)"
      [ "algo"; "n"; "work"; "span ND"; "span NP"; "NP/ND"; "ND/n" ]
  in
  List.iter
    (fun fam ->
      if fam.Workloads.name <> "mm8" then begin
        let nd_points = ref [] and np_points = ref [] in
        List.iter
          (fun n ->
            let w = Workloads.build ~n fam ~seed in
            let pnd, pnp = compile_both w in
            let rnd = Nd.Analysis.analyze pnd and rnp = Nd.Analysis.analyze pnp in
            nd_points := (n, rnd.Nd.Analysis.span) :: !nd_points;
            np_points := (n, rnp.Nd.Analysis.span) :: !np_points;
            Table.add_row t
              [
                fam.Workloads.name;
                Table.cell_int n;
                Table.cell_int rnd.Nd.Analysis.work;
                Table.cell_int rnd.Nd.Analysis.span;
                Table.cell_int rnp.Nd.Analysis.span;
                Table.cell_float ~prec:2
                  (float_of_int rnp.Nd.Analysis.span
                  /. float_of_int rnd.Nd.Analysis.span);
                Table.cell_float ~prec:2
                  (float_of_int rnd.Nd.Analysis.span /. float_of_int n);
              ])
          fam.Workloads.sizes;
        Table.add_row t
          [
            fam.Workloads.name;
            "fit";
            "";
            Printf.sprintf "n^%.2f" (fit_exponent !nd_points);
            Printf.sprintf "n^%.2f" (fit_exponent !np_points);
            "";
            "";
          ]
      end)
    Workloads.all;
  t

(* ------------------------------ E2 --------------------------------- *)

let e2_pcc () =
  let t =
    Table.create ~title:"E2: parallel cache complexity Q* (Claim 1)"
      [ "algo"; "n"; "M"; "Q*"; "Q*/shape"; "Q1"; "Q1/Q*" ]
  in
  let dense = [ "mm"; "trs"; "cholesky"; "lu" ] in
  let quad = [ "lcs"; "fw1d" ] in
  let do_algo ?base name n ms shape shape_name =
    let fam = Workloads.find name in
    let w = Workloads.build ~n ?base fam ~seed in
    let p = Workload.compile w in
    List.iter
      (fun m ->
        let q = Nd_mem.Pcc.q_star p ~m in
        let q1 = Nd_mem.Cache_sim.q1 p ~m in
        Table.add_row t
          [
            name;
            Table.cell_int n;
            Table.cell_int m;
            Table.cell_int q;
            Printf.sprintf "%.3f %s" (float_of_int q /. shape n m) shape_name;
            Table.cell_int q1;
            Table.cell_float ~prec:2 (float_of_int q1 /. float_of_int q);
          ])
      ms
  in
  let dense_shape n m = float_of_int n ** 3. /. sqrt (float_of_int m) in
  (* our table-based LCS/FW1D have Q* = Theta(n^2) + boundary term; the
     paper's O(n^2/M) presumes the frontier formulation (EXPERIMENTS.md) *)
  let quad_shape n _m = float_of_int (n * n) in
  List.iter (fun a -> do_algo a 64 [ 16; 64; 256; 1024 ] dense_shape "*n^3/sqrt(M)") dense;
  do_algo "apsp" 32 [ 16; 64; 256 ] dense_shape "*n^3/sqrt(M)";
  List.iter (fun a -> do_algo a 256 [ 64; 256; 1024; 4096 ] quad_shape "*n^2 (table)") quad;
  (* paper-scale rows: a coarser leaf block keeps the spawn tree
     tractable at n=512 while the interval-granular LRU keeps the q1
     column cheap (per-row, not per-word) *)
  do_algo ~base:32 "mm" 512 [ 256; 1024; 4096 ] dense_shape "*n^3/sqrt(M)";
  do_algo ~base:4 "apsp" 64 [ 16; 64; 256 ] dense_shape "*n^3/sqrt(M)";
  List.iter
    (fun a -> do_algo ~base:4 a 512 [ 256; 1024; 4096 ] quad_shape "*n^2 (table)")
    quad;
  t

(* ------------------------------ E3 --------------------------------- *)

let e3_misses () =
  let t =
    Table.create
      ~title:"E3: SB per-level misses vs the Theorem-1 bound Q*(sigma*M_j)"
      [ "algo"; "model"; "level"; "misses"; "Q*(sM_j)"; "ratio" ]
  in
  let machine = sim_machine ~top_caches:1 in
  let sigma = 1. /. 3. in
  List.iter
    (fun (name, n, base) ->
      let fam = Workloads.find name in
      let w = Workloads.build ~n ~base fam ~seed in
      List.iter
        (fun mode ->
          let p = Workload.compile ~mode w in
          let s = Nd_sched.Sb_sched.run ~sigma p machine in
          for level = 1 to Pmh.n_levels machine do
            let m =
              max 1 (int_of_float (sigma *. float_of_int (Pmh.size machine ~level)))
            in
            let bound = Nd_mem.Pcc.q_star p ~m in
            Table.add_row t
              [
                Printf.sprintf "%s n=%d" name n;
                Workload.mode_name mode;
                Table.cell_int level;
                Table.cell_int s.Nd_sched.Sb_sched.misses.(level - 1);
                Table.cell_int bound;
                Table.cell_float ~prec:3
                  (float_of_int s.Nd_sched.Sb_sched.misses.(level - 1)
                  /. float_of_int bound);
              ]
          done)
        [ Workload.ND; Workload.NP ])
    [
      ("mm", 64, 4); ("trs", 64, 4); ("cholesky", 64, 4); ("lcs", 256, 2);
      ("fw1d", 256, 2); ("mm", 512, 32); ("fw1d", 512, 4);
    ];
  t

(* ------------------------------ E4 --------------------------------- *)

let e4_scaling () =
  let t =
    Table.create
      ~title:
        "E4: SB time / perfect-balance bound (Eq. 22) vs processors, ND vs NP"
      [ "algo"; "procs"; "perfect"; "time ND"; "time NP"; "ND/perf"; "NP/perf" ]
  in
  let sigma = 1. /. 3. in
  List.iter
    (fun (name, n, base) ->
      let fam = Workloads.find name in
      let w = Workloads.build ~n ~base fam ~seed in
      let pnd, pnp = compile_both w in
      List.iter
        (fun top ->
          let machine = sim_machine ~top_caches:top in
          let snd_ = Nd_sched.Sb_sched.run ~sigma pnd machine in
          let snp = Nd_sched.Sb_sched.run ~sigma pnp machine in
          let perfect =
            (float_of_int snd_.Nd_sched.Sb_sched.work
            /. float_of_int (Pmh.n_procs machine))
            +. Pmh.perfect_time machine ~sigma
                 ~q_star:(fun m -> Nd_mem.Pcc.q_star pnd ~m)
          in
          Table.add_row t
            [
              name;
              Table.cell_int (Pmh.n_procs machine);
              Table.cell_float ~prec:0 perfect;
              Table.cell_int snd_.Nd_sched.Sb_sched.time;
              Table.cell_int snp.Nd_sched.Sb_sched.time;
              Table.cell_float ~prec:2
                (float_of_int snd_.Nd_sched.Sb_sched.time /. perfect);
              Table.cell_float ~prec:2
                (float_of_int snp.Nd_sched.Sb_sched.time /. perfect);
            ])
        [ 1; 2; 4; 8 ])
    [
      ("mm", 64, 2); ("trs", 64, 2); ("cholesky", 64, 2); ("lcs", 512, 4);
      ("fw1d", 512, 4);
    ];
  t

(* ------------------------------ E5 --------------------------------- *)

let e5_alpha () =
  let t =
    Table.create
      ~title:"E5: empirical parallelizability alpha_max (Claims 2-3), c=2"
      [ "algo"; "model"; "M=64"; "M=256"; "M=1024" ]
  in
  List.iter
    (fun (name, n, base) ->
      let fam = Workloads.find name in
      let w = Workloads.build ~n ~base fam ~seed in
      List.iter
        (fun mode ->
          let p = Workload.compile ~mode w in
          let cell m =
            Table.cell_float ~prec:3 (Nd_mem.Ecc.parallelizability p ~m ~c:2.)
          in
          Table.add_row t
            [ name; Workload.mode_name mode; cell 64; cell 256; cell 1024 ])
        [ Workload.ND; Workload.NP ])
    [
      (* base 8 at n=512: the ECC search is the costliest metric in the
         suite, and the alpha_max estimate is stable under the leaf size *)
      ("mm", 64, 2); ("trs", 64, 2); ("cholesky", 64, 2); ("lcs", 512, 8);
      ("fw1d", 512, 8);
    ];
  t

(* ------------------------------ E6 --------------------------------- *)

let e6_work_stealing () =
  let t =
    Table.create
      ~title:
        "E6: SB (rho and LRU accounting) vs randomized work stealing (LRU)"
      [
        "algo"; "SB-rho time"; "SB-lru time"; "WS time"; "SB-rho misscost";
        "SB-lru misscost"; "WS misscost"; "steals";
      ]
  in
  let machine = sim_machine ~top_caches:1 in
  List.iter
    (fun (name, n, base) ->
      let fam = Workloads.find name in
      let w = Workloads.build ~n ~base fam ~seed in
      let p = Workload.compile w in
      let sb = Nd_sched.Sb_sched.run p machine in
      let sbl = Nd_sched.Sb_sched.run ~accounting:Nd_sched.Sb_sched.Lru p machine in
      let ws = Nd_sched.Work_steal.run ~seed p machine in
      Table.add_row t
        [
          Printf.sprintf "%s n=%d" name n;
          Table.cell_int sb.Nd_sched.Sb_sched.time;
          Table.cell_int sbl.Nd_sched.Sb_sched.time;
          Table.cell_int ws.Nd_sched.Work_steal.time;
          Table.cell_int sb.Nd_sched.Sb_sched.miss_cost;
          Table.cell_int sbl.Nd_sched.Sb_sched.miss_cost;
          Table.cell_int ws.Nd_sched.Work_steal.miss_cost;
          Table.cell_int ws.Nd_sched.Work_steal.steals;
        ])
    [
      ("mm", 64, 4); ("trs", 64, 4); ("cholesky", 64, 4); ("lcs", 256, 2);
      ("fw1d", 256, 2); ("mm", 512, 32); ("fw1d", 512, 4);
    ];
  t

(* ------------------------------ E7 --------------------------------- *)

let e7_ablation () =
  let t =
    Table.create
      ~title:"E7: coarse (Fig. 12) vs fine cross-anchor readiness (ND)"
      [ "algo"; "time coarse"; "time fine"; "fine/coarse"; "anchors" ]
  in
  let machine = sim_machine ~top_caches:2 in
  List.iter
    (fun (name, n) ->
      let fam = Workloads.find name in
      let w = Workloads.build ~n fam ~seed in
      let p = Workload.compile w in
      let c = Nd_sched.Sb_sched.run ~mode:Nd_sched.Sb_sched.Coarse p machine in
      let f = Nd_sched.Sb_sched.run ~mode:Nd_sched.Sb_sched.Fine p machine in
      Table.add_row t
        [
          name;
          Table.cell_int c.Nd_sched.Sb_sched.time;
          Table.cell_int f.Nd_sched.Sb_sched.time;
          Table.cell_float ~prec:3
            (float_of_int f.Nd_sched.Sb_sched.time
            /. float_of_int c.Nd_sched.Sb_sched.time);
          Table.cell_int c.Nd_sched.Sb_sched.n_anchors;
        ])
    [ ("mm", 32); ("trs", 64); ("cholesky", 64); ("lcs", 256); ("fw1d", 256) ];
  t

(* ------------------------------ E8 --------------------------------- *)

let e8_rules () =
  let t =
    Table.create
      ~title:
        "E8: determinacy races, paper-literal vs corrected rule sets (n=16)"
      [ "algo"; "variant"; "races"; "exec err (random order)" ]
  in
  let check name w =
    let algo, variant =
      match String.index_opt name '/' with
      | Some i ->
        ( String.sub name 0 i,
          String.sub name (i + 1) (String.length name - i - 1) )
      | None -> (name, "corrected")
    in
    let p = Workload.compile w in
    let races = Nd_dag.Race.find_races ~limit:64 (Nd.Program.dag p) in
    w.Workload.reset ();
    Nd.Serial_exec.run ~rng:(Nd_util.Prng.create 99) p;
    Table.add_row t
      [
        algo;
        variant;
        Table.cell_int (List.length races);
        Printf.sprintf "%.3g" (w.Workload.check ());
      ]
  in
  let pairs =
    [
      ("mm/literal", Matmul.workload ~variant:Matmul.Literal ~n:16 ~base:2 ~seed ());
      ("mm/safe", Matmul.workload ~variant:Matmul.Safe ~n:16 ~base:2 ~seed ());
      ("trs/literal", Trs.workload ~variant:Trs.Literal ~n:16 ~base:2 ~seed ());
      ("trs/corrected", Trs.workload ~variant:Trs.Corrected ~n:16 ~base:2 ~seed ());
      ("lcs/literal", Lcs.workload ~variant:`Literal ~n:16 ~base:2 ~seed ());
      ("lcs/corrected", Lcs.workload ~variant:`Corrected ~n:16 ~base:2 ~seed ());
      ("fw1d/literal", Fw1d.workload ~variant:`Literal ~n:16 ~base:2 ~seed ());
      ("fw1d/corrected", Fw1d.workload ~variant:`Corrected ~n:16 ~base:2 ~seed ());
      ("cholesky", Cholesky.workload ~n:16 ~base:2 ~seed ());
      ("apsp", Fw2d.workload ~n:16 ~base:2 ~seed ());
      ("lu", Lu.workload ~n:16 ~base:2 ~seed ());
    ]
  in
  List.iter (fun (name, w) -> check name w) pairs;
  t

(* ------------------------------ E9 --------------------------------- *)

let time_it f =
  let t0 = now_ns () in
  f ();
  seconds_since t0

let e9_runtime () =
  let workers = Nd_runtime.Executor.default_workers () in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E9: multicore wall-clock (workers=%d), serial vs ND dataflow vs NP \
            fork-join vs fiber"
           workers)
      [
        "algo"; "n"; "grain"; "serial s"; "ND s"; "NP s"; "fiber s";
        "speedup ND"; "max err";
      ]
  in
  List.iter
    (fun (name, n, base, grain) ->
      let fam = Workloads.find name in
      let w = fam.Workloads.build ~n ~base ~seed in
      let p = Workload.compile w in
      (* min of two runs per executor; reset before every run because the
         workloads accumulate into their output matrices *)
      let best exec =
        let one () =
          w.Workload.reset ();
          time_it (fun () -> exec p)
        in
        let t1 = one () in
        let t2 = one () in
        (Float.min t1 t2, w.Workload.check ())
      in
      let ts, e0 = best (fun p -> Nd.Serial_exec.run p) in
      let tnd, e1 = best (Nd_runtime.Executor.run_dataflow ~workers ~grain) in
      let tnp, e2 = best (Nd_runtime.Executor.run_fork_join ~workers ~grain) in
      let tfb, e3 = best (Nd_runtime.Fiber_exec.run ~workers ~grain) in
      Table.add_row t
        [
          name;
          Table.cell_int n;
          Table.cell_int grain;
          Table.cell_float ~prec:4 ts;
          Table.cell_float ~prec:4 tnd;
          Table.cell_float ~prec:4 tnp;
          Table.cell_float ~prec:4 tfb;
          Table.cell_float ~prec:2 (ts /. tnd);
          Printf.sprintf "%.3g"
            (Float.max (Float.max e0 e1) (Float.max e2 e3));
        ])
    [
      ("mm", 128, 16, 0);
      ("mm", 128, 16, 8192);
      ("mm", 256, 16, 8192);
      ("trs", 128, 16, 0);
      ("trs", 128, 16, 8192);
      ("cholesky", 128, 16, 0);
      ("cholesky", 128, 16, 8192);
      ("lcs", 512, 32, 0);
      ("lcs", 512, 32, 4096);
      ("fw1d", 256, 8, 0);
      ("fw1d", 256, 8, 4096);
    ];
  t

(* ------------------------------ E10 -------------------------------- *)

let e10_zoo () =
  let t =
    Table.create
      ~title:
        "E10: scheduler zoo — greedy / sb / ws / pdf / tree, every family at \
         paper scale (shared per-cache LRU miss model)"
      ([ "algo"; "sched" ] @ Nd_sched.Scheduler.row_header)
  in
  let machine = sim_machine ~top_caches:1 in
  List.iter
    (fun (name, n, base) ->
      let fam = Workloads.find name in
      let w = Workloads.build ~n ~base fam ~seed in
      let p = Workload.compile w in
      List.iter
        (fun (sname, (module S : Nd_sched.Scheduler.S)) ->
          let s = S.run ~seed p machine in
          Table.add_row t
            (Printf.sprintf "%s n=%d" name n
            :: sname
            :: Nd_sched.Scheduler.to_row s))
        Nd_sched.Zoo.all)
    (* every workload family; paper scale is n=512 for the quadratic-work
       algorithms and n=64 for the cubic ones, with the same coarsened
       leaf blocks as E2-E6 to keep the spawn trees tractable *)
    [
      ("mm", 512, 32); ("mm8", 64, 4); ("trs", 64, 4); ("cholesky", 64, 4);
      ("lu", 64, 4); ("apsp", 64, 4); ("fw1d", 512, 4); ("stencil", 512, 4);
      ("gotoh", 512, 4); ("lcs", 512, 4);
    ];
  t

(* ------------------------------ E11 -------------------------------- *)

let e11_sharded_sim () =
  let t =
    Table.create
      ~title:
        "E11: sharded cache simulation — SB replay measurement, serial vs \
         sharded (8 workers), sigma sweep; per-cache tables bit-identical"
      [
        "algo"; "sigma"; "path"; "time"; "miss cost"; "misses"; "seconds";
        "miss identical";
      ]
  in
  let machine = sim_machine ~top_caches:1 in
  let misses_str s =
    String.concat ";"
      (Array.to_list (Array.map string_of_int s.Nd_sched.Sb_sched.misses))
  in
  List.iter
    (fun (name, n, base) ->
      let fam = Workloads.find name in
      let w = Workloads.build ~n ~base fam ~seed in
      let p = Workload.compile w in
      List.iter
        (fun sigma ->
          let timed workers =
            let t0 = now_ns () in
            let s = Nd_sched.Sb_sched.run ~sigma ~sim_workers:workers p machine in
            (s, seconds_since t0)
          in
          let serial, serial_s = timed 1 in
          let sharded, sharded_s = timed 8 in
          let table st =
            match st.Nd_sched.Sb_sched.miss_table with
            | Some mt -> mt
            | None -> failwith "E11: replay run returned no miss table"
          in
          let identical = Nd_mem.Miss_table.equal (table serial) (table sharded) in
          (* the load-bearing acceptance check: a merge that dropped or
             double-counted a shard either raised already (inside
             replay) or diverges here — fail the whole suite run *)
          if not identical then
            failwith
              (Printf.sprintf
                 "E11: %s n=%d sigma=%.2f: sharded tables diverge from serial"
                 name n sigma);
          let row label st secs ident =
            Table.add_row t
              [
                Printf.sprintf "%s n=%d" name n;
                Table.cell_float ~prec:2 sigma;
                label;
                Table.cell_int st.Nd_sched.Sb_sched.time;
                Table.cell_int st.Nd_sched.Sb_sched.miss_cost;
                misses_str st;
                Table.cell_float ~prec:3 secs;
                ident;
              ]
          in
          row "serial" serial serial_s "-";
          row "sharded w=8" sharded sharded_s (string_of_bool identical))
        [ 0.2; 1. /. 3.; 0.6; 1.0 ])
    [ ("mm", 512, 32); ("fw1d", 512, 4) ];
  t

(* ------------------------------ E12 -------------------------------- *)

let e12_cost () =
  let t =
    Table.create
      ~title:
        "E12: structural cost analysis — Cost == exact DAG analysis, and \
         Theorem-1 certification (SB misses <= Q*(sigma*M_j)) at paper \
         scale"
      [
        "algo"; "work"; "span"; "peak fp"; "root size"; "shapes"; "level";
        "m"; "misses"; "Q*(sM_j)"; "certified";
      ]
  in
  let machine = sim_machine ~top_caches:1 in
  let sigma = 1. /. 3. in
  List.iter
    (fun (name, n, base) ->
      let fam = Workloads.find name in
      let w = Workloads.build ~n ~base fam ~seed in
      let p = Workload.compile w in
      let cost = Cost.of_program p in
      let r = Cost.report cost in
      (* differential gate: the structural pass must reproduce the exact
         DAG quantities on every row (the base=16 rows are past the
         exact Race cap — the DAG itself still compiles fine there) *)
      let exact = Nd.Analysis.analyze p in
      if
        r.Cost.work <> exact.Nd.Analysis.work
        || r.Cost.span <> exact.Nd.Analysis.span
      then
        failwith
          (Printf.sprintf
             "E12: %s n=%d: structural work/span (%d, %d) <> exact (%d, %d)"
             name n r.Cost.work r.Cost.span exact.Nd.Analysis.work
             exact.Nd.Analysis.span);
      let c = Cost.certify_theorem1 ~sigma p machine in
      (* the load-bearing acceptance check: every row of the shipped
         table is a certified Theorem-1 instance or the suite run fails *)
      if not c.Cost.certified then
        failwith
          (Printf.sprintf "E12: %s n=%d: Theorem 1 violated:\n%s" name n
             (Format.asprintf "%a" Cost.pp_certification c));
      List.iter
        (fun (l : Cost.level_check) ->
          Table.add_row t
            [
              Printf.sprintf "%s n=%d b=%d" name n base;
              Table.cell_int r.Cost.work;
              Table.cell_int r.Cost.span;
              Table.cell_int r.Cost.peak_footprint;
              Table.cell_int r.Cost.root_size;
              Table.cell_int r.Cost.n_shapes;
              Table.cell_int l.Cost.level;
              Table.cell_int l.Cost.m;
              Table.cell_int l.Cost.misses;
              Table.cell_int l.Cost.bound;
              string_of_bool (l.Cost.misses <= l.Cost.bound);
            ])
        c.Cost.levels)
    (* every workload family at the E10 paper scales, plus the mm/apsp
       n=512 base=16 rows whose ~98k-vertex DAGs are past the exact
       race-checker cap — the scale the structural pass exists for *)
    [
      ("mm", 512, 32); ("mm", 512, 16); ("mm8", 64, 4); ("trs", 64, 4);
      ("cholesky", 64, 4); ("lu", 64, 4); ("apsp", 64, 4);
      ("apsp", 512, 16); ("fw1d", 512, 4); ("stencil", 512, 4);
      ("gotoh", 512, 4); ("lcs", 512, 4);
    ];
  t

(* ---------------------------- overview ----------------------------- *)

let overview () =
  let t =
    Table.create ~title:"Overview: the algorithms at their default sizes"
      [ "algo"; "n"; "leaves"; "vertices"; "edges"; "work"; "span ND"; "span NP" ]
  in
  List.iter
    (fun fam ->
      let w = Workloads.build fam ~seed in
      let pnd, pnp = compile_both w in
      let r = Nd.Analysis.analyze pnd in
      Table.add_row t
        [
          fam.Workloads.name;
          Table.cell_int w.Workload.n;
          Table.cell_int r.Nd.Analysis.n_leaves;
          Table.cell_int r.Nd.Analysis.n_vertices;
          Table.cell_int r.Nd.Analysis.n_edges;
          Table.cell_int r.Nd.Analysis.work;
          Table.cell_int r.Nd.Analysis.span;
          Table.cell_int (Nd.Analysis.analyze pnp).Nd.Analysis.span;
        ])
    Workloads.all;
  t

let all =
  [
    ("overview", overview);
    ("e1", e1_span);
    ("e2", e2_pcc);
    ("e3", e3_misses);
    ("e4", e4_scaling);
    ("e5", e5_alpha);
    ("e6", e6_work_stealing);
    ("e7", e7_ablation);
    ("e8", e8_rules);
    ("e9", e9_runtime);
    ("e10", e10_zoo);
    ("e11", e11_sharded_sim);
    ("e12", e12_cost);
  ]

(* ---------------------------- drivers ------------------------------ *)

type timing = { name : string; seconds : float }

let resolve_workers workers =
  match workers with
  | Some w -> max 1 w
  | None -> Nd_runtime.Executor.default_workers ()

let build_all ?workers ?(tracer = Nd_trace.Collector.null) () =
  let exps = Array.of_list all in
  let n = Array.length exps in
  let tables = Array.make n None in
  let secs = Array.make n 0. in
  let traced = Nd_trace.Collector.enabled tracer in
  (* experiments are independent (each compiles its own programs and
     workload state), so they run as one parallel_for; builders return
     their tables without printing, and the caller prints in suite order
     so output never interleaves *)
  Nd_runtime.Executor.parallel_for ?workers n (fun wid i ->
      let name, f = exps.(i) in
      if traced then
        Nd_trace.Collector.emit_now tracer ~worker:wid
          (Nd_trace.Event.Strand_begin { vertex = i; work = 0; label = name });
      let t0 = now_ns () in
      let table = f () in
      secs.(i) <- seconds_since t0;
      if traced then
        Nd_trace.Collector.emit_now tracer ~worker:wid
          (Nd_trace.Event.Strand_end { vertex = i });
      tables.(i) <- Some table);
  let tables =
    Array.map (function Some t -> t | None -> assert false) tables
  in
  let timings =
    List.mapi
      (fun i (name, _) -> { name; seconds = secs.(i) })
      (Array.to_list exps)
  in
  (tables, timings)

let timing_table ~workers timings =
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Suite wall-clock per experiment (workers=%d)" workers)
      [ "experiment"; "seconds" ]
  in
  List.iter
    (fun { name; seconds } ->
      Table.add_row t [ name; Table.cell_float ~prec:3 seconds ])
    timings;
  Table.add_row t
    [
      "total";
      Table.cell_float ~prec:3
        (List.fold_left (fun acc x -> acc +. x.seconds) 0. timings);
    ];
  t

let run name = Table.print ((List.assoc name all) ())

let run_all ?workers ?tracer () =
  let nw = resolve_workers workers in
  let tables, timings = build_all ~workers:nw ?tracer () in
  Array.iter Table.print tables;
  Table.print (timing_table ~workers:nw timings)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Suite: %s exists and is not a directory" dir)

let run_json ~dir name =
  ensure_dir dir;
  let t = (List.assoc name all) () in
  Table.print t;
  Table.write_json t (Filename.concat dir (name ^ ".json"))

let run_all_json ?workers ?tracer ~dir () =
  ensure_dir dir;
  let nw = resolve_workers workers in
  let tables, timings = build_all ~workers:nw ?tracer () in
  Array.iteri
    (fun i table ->
      let name, _ = List.nth all i in
      Table.print table;
      Table.write_json table (Filename.concat dir (name ^ ".json")))
    tables;
  let tt = timing_table ~workers:nw timings in
  Table.print tt;
  Table.write_json tt (Filename.concat dir "timings.json")
