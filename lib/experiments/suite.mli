(** The experiment suite: one entry per table/figure/claim of the paper
    (the experiment index lives in DESIGN.md; measured-vs-paper results
    are recorded in EXPERIMENTS.md).

    - E1 — span table (Section 3 theorems; Figures 1, 8): measured NP vs
      ND spans over a size sweep with fitted growth exponents.
    - E2 — parallel cache complexity (Claim 1): Q* sweeps vs the claimed
      Θ(N^1.5/M^0.5) (dense) and Θ(n²/M) (LCS/FW1D) shapes, with the
      serial ideal-cache Q1 as a cross-check.
    - E3 — Theorem 1: per-level SB-simulated misses against the
      Q*(t; σM_j) bound.
    - E4 — Theorem 3 / Eq. 22: SB running time over a processor sweep
      against the perfect-balance bound, ND vs NP (the headline result).
    - E5 — Claims 2-3: empirical parallelizability α_max, ND vs NP.
    - E6 — SB vs randomized work stealing ([47, 48] context).
    - E7 — ablation: coarse (Figure 12) vs fine cross-anchor readiness.
    - E8 — rule-set validation: determinacy races of the paper's literal
      rule sets vs the corrected ones (DESIGN.md corrections).
    - E9 — real multicore wall-clock: serial vs ND dataflow vs NP
      fork-join executors.

    Each function prints its table to stdout and returns it. *)

val e1_span : unit -> Nd_util.Table.t

val e2_pcc : unit -> Nd_util.Table.t

val e3_misses : unit -> Nd_util.Table.t

val e4_scaling : unit -> Nd_util.Table.t

val e5_alpha : unit -> Nd_util.Table.t

val e6_work_stealing : unit -> Nd_util.Table.t

val e7_ablation : unit -> Nd_util.Table.t

val e8_rules : unit -> Nd_util.Table.t

val e9_runtime : unit -> Nd_util.Table.t

(** [overview ()] — per-algorithm inventory (work, spans, DAG sizes) at
    the default sizes. *)
val overview : unit -> Nd_util.Table.t

(** The experiments by name, in harness order
    (["overview"; "e1" ... "e9"]). *)
val all : (string * (unit -> Nd_util.Table.t)) list

(** [run_all ()] — every experiment in order (the full harness). *)
val run_all : unit -> unit

(** [run name] — run one of ["overview"; "e1"..."e9"].
    @raise Not_found on an unknown name. *)
val run : string -> unit

(** [run_json ~dir name] — run one experiment (still printing its table)
    and additionally write [dir/<name>.json] in the
    {!Nd_util.Table.to_json} format.  Creates [dir] if missing.
    @raise Not_found on an unknown name. *)
val run_json : dir:string -> string -> unit

(** [run_all_json ~dir] — {!run_all}, writing one JSON file per
    experiment. *)
val run_all_json : dir:string -> unit
