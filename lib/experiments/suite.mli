(** The experiment suite: one entry per table/figure/claim of the paper
    (the experiment index lives in DESIGN.md; measured-vs-paper results
    are recorded in EXPERIMENTS.md).

    - E1 — span table (Section 3 theorems; Figures 1, 8): measured NP vs
      ND spans over a size sweep with fitted growth exponents.
    - E2 — parallel cache complexity (Claim 1): Q* sweeps vs the claimed
      Θ(N^1.5/M^0.5) (dense) and Θ(n²/M) (LCS/FW1D) shapes, with the
      serial ideal-cache Q1 as a cross-check.
    - E3 — Theorem 1: per-level SB-simulated misses against the
      Q*(t; σM_j) bound.
    - E4 — Theorem 3 / Eq. 22: SB running time over a processor sweep
      against the perfect-balance bound, ND vs NP (the headline result).
    - E5 — Claims 2-3: empirical parallelizability α_max, ND vs NP.
    - E6 — SB vs randomized work stealing ([47, 48] context).
    - E7 — ablation: coarse (Figure 12) vs fine cross-anchor readiness.
    - E8 — rule-set validation: determinacy races of the paper's literal
      rule sets vs the corrected ones (DESIGN.md corrections).
    - E9 — real multicore wall-clock: serial vs ND dataflow vs NP
      fork-join executors.
    - E10 — scheduler zoo: greedy, sb, ws, pdf and tree behind the
      shared {!Nd_sched.Scheduler.S} face, compared on makespan,
      per-level misses and space high-water mark for every workload
      family at paper scale (recorded as BENCH_6.json in CI).

    Each experiment function {e builds} and returns its table without
    printing; the drivers below print in suite order.  Experiments are
    mutually independent (each compiles its own programs and workload
    state), so {!run_all}/{!run_all_json} execute them concurrently on
    an {!Nd_runtime.Executor.parallel_for} worker pool and report
    per-experiment wall-clock (monotonic) in a closing timings table. *)

val e1_span : unit -> Nd_util.Table.t

val e2_pcc : unit -> Nd_util.Table.t

val e3_misses : unit -> Nd_util.Table.t

val e4_scaling : unit -> Nd_util.Table.t

val e5_alpha : unit -> Nd_util.Table.t

val e6_work_stealing : unit -> Nd_util.Table.t

val e7_ablation : unit -> Nd_util.Table.t

val e8_rules : unit -> Nd_util.Table.t

val e9_runtime : unit -> Nd_util.Table.t

val e10_zoo : unit -> Nd_util.Table.t

(** [e11_sharded_sim ()] — the sharded cache-simulation benchmark
    (BENCH_7): SB in decoupled measurement mode over a sigma sweep,
    serial replay vs 8-worker sharded replay side by side, with a
    miss-identical column.  The builder {e raises} if any sharded table
    diverges from its serial reference, so a suite run doubles as the
    bit-identity acceptance gate. *)
val e11_sharded_sim : unit -> Nd_util.Table.t

(** [e12_cost ()] — the structural cost-analysis table (BENCH_8): every
    workload family at paper scale, plus mm/apsp n=512 base=16 whose
    ~98k-vertex DAGs are past the exact race-checker cap.  Each row
    carries the structural work/span/peak-footprint/root-size, the
    shape-memo count, and the per-level SB ρ misses next to the static
    Theorem-1 bound [Q*(sigma*M_j)].  The builder {e raises} if the
    structural pass disagrees with the exact DAG analysis or if any
    level's misses exceed the bound, so a suite run doubles as the
    Theorem-1 certification gate. *)
val e12_cost : unit -> Nd_util.Table.t

(** [overview ()] — per-algorithm inventory (work, spans, DAG sizes) at
    the default sizes. *)
val overview : unit -> Nd_util.Table.t

(** The experiments by name, in harness order
    (["overview"; "e1" ... "e12"]). *)
val all : (string * (unit -> Nd_util.Table.t)) list

(** Per-experiment wall-clock, measured with the monotonic clock. *)
type timing = { name : string; seconds : float }

(** [build_all ?workers ?tracer ()] — run every experiment across
    [workers] domains (default {!Nd_runtime.Executor.default_workers},
    so [NDSIM_WORKERS] applies) and return the tables in suite order
    plus per-experiment timings.  Nothing is printed.  With [tracer]
    (one ring per worker, e.g. {!Nd_trace.Collector.wallclock}), each
    experiment is bracketed in [Strand_begin]/[Strand_end] span events
    labelled with the experiment name, so a Chrome export shows the
    suite's phase timeline. *)
val build_all :
  ?workers:int ->
  ?tracer:Nd_trace.Collector.t ->
  unit ->
  Nd_util.Table.t array * timing list

(** [run_all ?workers ?tracer ()] — {!build_all}, printing every table
    in suite order followed by the timings table. *)
val run_all : ?workers:int -> ?tracer:Nd_trace.Collector.t -> unit -> unit

(** [run name] — run and print one of ["overview"; "e1"..."e12"].
    @raise Not_found on an unknown name. *)
val run : string -> unit

(** [run_json ~dir name] — run one experiment, print its table, and
    additionally write [dir/<name>.json] in the
    {!Nd_util.Table.to_json} format.  Creates [dir] if missing.
    @raise Not_found on an unknown name. *)
val run_json : dir:string -> string -> unit

(** [run_all_json ?workers ?tracer ~dir ()] — {!run_all}, writing one
    JSON file per experiment plus [timings.json] with the per-phase
    wall-clock. *)
val run_all_json :
  ?workers:int ->
  ?tracer:Nd_trace.Collector.t ->
  dir:string ->
  unit ->
  unit
