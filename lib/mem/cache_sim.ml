module Is = Nd_util.Interval_set
module Heap = Nd_util.Heap
open Nd

type impl = Word | Interval

(* ------------------------------------------------------------------ *)
(* Word-exact LRU: an intrusive doubly-linked list threaded through a  *)
(* hashtable, one cell per resident word.  O(1) per word touched.      *)
(* ------------------------------------------------------------------ *)

type cell = {
  addr : int;
  mutable prev : cell option;
  mutable next : cell option;
}

type word_t = {
  w_capacity : int;
  table : (int, cell) Hashtbl.t;
  mutable head : cell option;  (* most recent *)
  mutable tail : cell option;  (* least recent *)
  mutable w_occupancy : int;
  mutable w_misses : int;
  mutable w_accesses : int;
}

let word_create ~m =
  {
    w_capacity = m;
    table = Hashtbl.create (2 * m);
    head = None;
    tail = None;
    w_occupancy = 0;
    w_misses = 0;
    w_accesses = 0;
  }

let unlink t cell =
  (match cell.prev with
  | Some p -> p.next <- cell.next
  | None -> t.head <- cell.next);
  (match cell.next with
  | Some n -> n.prev <- cell.prev
  | None -> t.tail <- cell.prev);
  cell.prev <- None;
  cell.next <- None

let push_front t cell =
  cell.next <- t.head;
  cell.prev <- None;
  (match t.head with Some h -> h.prev <- Some cell | None -> t.tail <- Some cell);
  t.head <- Some cell

let word_access t addr =
  t.w_accesses <- t.w_accesses + 1;
  match Hashtbl.find_opt t.table addr with
  | Some cell ->
    unlink t cell;
    push_front t cell;
    false
  | None ->
    t.w_misses <- t.w_misses + 1;
    if t.w_occupancy >= t.w_capacity then begin
      match t.tail with
      | Some victim ->
        unlink t victim;
        Hashtbl.remove t.table victim.addr;
        t.w_occupancy <- t.w_occupancy - 1
      | None -> assert false
    end;
    let cell = { addr; prev = None; next = None } in
    Hashtbl.replace t.table addr cell;
    push_front t cell;
    t.w_occupancy <- t.w_occupancy + 1;
    true

(* ------------------------------------------------------------------ *)
(* Interval-granular LRU.                                              *)
(*                                                                     *)
(* Residency is a set of segments in an ordered map keyed by low       *)
(* address; a segment (lo, hi, s0) holds the invariant that word [a]   *)
(* in [lo, hi) carries the virtual recency stamp [s0 + a - lo].  The   *)
(* invariant is closed under everything the simulator does: an access  *)
(* scans its footprint in address order and stamps every word with     *)
(* consecutive clock ticks, so the whole accessed range becomes one    *)
(* fresh linear-stamp segment; splitting a segment (on a partial hit)  *)
(* and shrinking it from the left (on eviction, which always removes   *)
(* the oldest = lowest-stamped = lowest-addressed words of the oldest  *)
(* segment) both preserve linearity.  Eviction order is driven by a    *)
(* min-heap over segment base stamps with lazy invalidation.           *)
(*                                                                     *)
(* Miss counts are bit-identical to the word-exact simulator: the scan *)
(* processes maximal hit/miss runs left to right and applies evictions *)
(* eagerly between runs, so a previously-resident word that the word   *)
(* simulator would evict before its own scan reaches it (footprints    *)
(* larger than the remaining capacity) is re-classified as a miss      *)
(* here, too.  Cost is O(log #segments) per run instead of O(1) per    *)
(* word — footprints built from block rows win by the block length.    *)
(* ------------------------------------------------------------------ *)

module Imap = Map.Make (Int)

type int_t = {
  i_capacity : int;
  mutable segs : (int * int) Imap.t;  (* lo -> (hi, stamp0) *)
  evict : int Heap.t;  (* key = stamp0, payload = segment lo *)
  mutable i_occupancy : int;
  mutable clock : int;
  mutable i_misses : int;
  mutable i_accesses : int;
}

let int_create ~m =
  {
    i_capacity = m;
    segs = Imap.empty;
    evict = Heap.create ();
    i_occupancy = 0;
    clock = 0;
    i_misses = 0;
    i_accesses = 0;
  }

(* Evict [need] words, globally oldest first.  Old segments go first
   (their stamps all precede the current access's); once the heap is
   exhausted only the scanned prefix of the current access remains, and
   its oldest words are the leftmost: report them via [dropped] so the
   caller trims the segment it is about to insert. *)
let int_evict t dropped need =
  let need = ref need in
  while !need > 0 && not (Heap.is_empty t.evict) do
    let s0, slo = Heap.pop t.evict in
    match Imap.find_opt slo t.segs with
    | Some (shi, s0') when s0' = s0 ->
      let len = shi - slo in
      if len <= !need then begin
        t.segs <- Imap.remove slo t.segs;
        t.i_occupancy <- t.i_occupancy - len;
        need := !need - len
      end
      else begin
        t.segs <-
          Imap.add (slo + !need) (shi, s0 + !need) (Imap.remove slo t.segs);
        Heap.push t.evict (s0 + !need) (slo + !need);
        t.i_occupancy <- t.i_occupancy - !need;
        need := 0
      end
    | Some _ | None -> ()  (* stale heap entry *)
  done;
  if !need > 0 then begin
    dropped := !dropped + !need;
    t.i_occupancy <- t.i_occupancy - !need
  end

(* Touch every word of [lo, hi) in address order; returns the misses. *)
let int_access_range t lo hi =
  if lo >= hi then 0
  else begin
    t.i_accesses <- t.i_accesses + (hi - lo);
    let miss0 = t.i_misses in
    let dropped = ref 0 in
    let cursor = ref lo in
    while !cursor < hi do
      let cover =
        match Imap.find_last_opt (fun k -> k <= !cursor) t.segs with
        | Some (slo, (shi, s0)) when shi > !cursor -> Some (slo, shi, s0)
        | Some _ | None -> None
      in
      match cover with
      | Some (slo, shi, s0) ->
        (* hit run [cursor, e): carve it out of the old segment; its
           words are restamped as part of the fresh segment below *)
        let e = min shi hi in
        t.segs <- Imap.remove slo t.segs;
        if slo < !cursor then
          (* left remainder keeps lo and s0: its heap entry stays valid *)
          t.segs <- Imap.add slo (!cursor, s0) t.segs;
        if e < shi then begin
          t.segs <- Imap.add e (shi, s0 + (e - slo)) t.segs;
          Heap.push t.evict (s0 + (e - slo)) e
        end;
        cursor := e
      | None ->
        (* miss run [cursor, e): up to the next resident segment *)
        let e =
          match Imap.find_first_opt (fun k -> k > !cursor) t.segs with
          | Some (nlo, _) -> min nlo hi
          | None -> hi
        in
        let run = e - !cursor in
        t.i_misses <- t.i_misses + run;
        t.i_occupancy <- t.i_occupancy + run;
        if t.i_occupancy > t.i_capacity then
          int_evict t dropped (t.i_occupancy - t.i_capacity);
        cursor := e
    done;
    let seg_lo = lo + !dropped in
    if seg_lo < hi then begin
      t.segs <- Imap.add seg_lo (hi, t.clock + !dropped) t.segs;
      Heap.push t.evict (t.clock + !dropped) seg_lo
    end;
    t.clock <- t.clock + (hi - lo);
    t.i_misses - miss0
  end

(* ------------------------------------------------------------------ *)
(* Front end                                                           *)
(* ------------------------------------------------------------------ *)

type t = W of word_t | I of int_t

let default = ref None

let default_impl () =
  match !default with
  | Some impl -> impl
  | None ->
    let impl =
      match Sys.getenv_opt "NDSIM_CACHE_SIM" with
      | Some ("word" | "WORD") -> Word
      | Some _ | None -> Interval
    in
    default := Some impl;
    impl

let set_default_impl impl = default := Some impl

let create ?impl ~m () =
  if m < 1 then invalid_arg "Cache_sim.create: m < 1";
  match (match impl with Some i -> i | None -> default_impl ()) with
  | Word -> W (word_create ~m)
  | Interval -> I (int_create ~m)

let impl = function W _ -> Word | I _ -> Interval

let access t addr =
  match t with
  | W w -> word_access w addr
  | I i -> int_access_range i addr (addr + 1) > 0

let access_set t fp =
  match t with
  | W w ->
    let m = ref 0 in
    List.iter
      (fun (lo, hi) ->
        for a = lo to hi - 1 do
          if word_access w a then incr m
        done)
      (Is.intervals fp);
    !m
  | I i ->
    List.fold_left
      (fun acc (lo, hi) -> acc + int_access_range i lo hi)
      0 (Is.intervals fp)

let misses = function W w -> w.w_misses | I i -> i.i_misses

let accesses = function W w -> w.w_accesses | I i -> i.i_accesses

let q1 ?impl program ~m =
  let cache = create ?impl ~m () in
  let rec go tree =
    match tree with
    | Spawn_tree.Leaf s -> ignore (access_set cache (Strand.footprint s))
    | Spawn_tree.Seq l | Spawn_tree.Par l -> List.iter go l
    | Spawn_tree.Fire { src; snk; _ } ->
      go src;
      go snk
  in
  go (Program.tree program);
  misses cache
