(** Serial ideal-cache simulator: a fully associative LRU cache of [m]
    words (unit cache lines, matching the paper's B = 1 simplification).

    Used to measure Q_1 — the cache complexity of the depth-first
    traversal in the ideal cache model [Frigo et al.] — as a cross-check
    on the PCC metric: for the paper's algorithms the two agree within
    constant factors (the data reuse across M-maximal subtasks that Q*
    ignores is a lower-order term; Section 4).

    Two implementations with bit-identical miss counts:

    - {!Word}: the reference simulator — an intrusive LRU list with one
      cell per resident word, O(1) per word touched.
    - {!Interval}: residency tracked as footprint segments in an ordered
      map, with whole hit/miss runs processed per map operation.  An
      access costs O(r log s) for r hit/miss runs over s resident
      segments, independent of footprint width — the hot path for
      sigma-sweeps over block-structured workloads.

    Equivalence is enforced by randomized tests in [test_mem]. *)

type t

type impl = Word | Interval

(** Process-wide default for {!create} (and {!q1}) when [?impl] is
    omitted.  Seeded from the [NDSIM_CACHE_SIM] environment variable
    ([word] selects {!Word}); otherwise {!Interval}. *)
val default_impl : unit -> impl

val set_default_impl : impl -> unit

(** [create ?impl ~m ()] — an empty LRU cache of capacity [m] words.
    @raise Invalid_argument if [m < 1]. *)
val create : ?impl:impl -> m:int -> unit -> t

val impl : t -> impl

(** [access t addr] touches one word; returns [true] on a miss. *)
val access : t -> int -> bool

(** [access_set t fp] touches every word of a footprint (in address
    order) and returns the number of misses. *)
val access_set : t -> Nd_util.Interval_set.t -> int

val misses : t -> int

val accesses : t -> int

(** [q1 program ~m] — misses of the depth-first (serial-elision)
    traversal of the program: every strand touches its footprint once. *)
val q1 : ?impl:impl -> Nd.Program.t -> m:int -> int
