type t = {
  counts : int array array;  (* counts.(level-1).(cache) *)
  claimed : bool array array;  (* merge bookkeeping, same shape *)
}

let create ~n_caches =
  Array.iter
    (fun n -> if n < 1 then invalid_arg "Miss_table.create: empty level")
    n_caches;
  {
    counts = Array.map (fun n -> Array.make n 0) n_caches;
    claimed = Array.map (fun n -> Array.make n false) n_caches;
  }

let n_levels t = Array.length t.counts

let check_cell t ~level ~cache =
  if level < 1 || level > n_levels t then invalid_arg "Miss_table: bad level";
  if cache < 0 || cache >= Array.length t.counts.(level - 1) then
    invalid_arg "Miss_table: bad cache"

let n_caches t ~level =
  if level < 1 || level > n_levels t then invalid_arg "Miss_table: bad level";
  Array.length t.counts.(level - 1)

let add t ~level ~cache n =
  check_cell t ~level ~cache;
  if n < 0 then invalid_arg "Miss_table.add: negative count";
  t.counts.(level - 1).(cache) <- t.counts.(level - 1).(cache) + n

let get t ~level ~cache =
  check_cell t ~level ~cache;
  t.counts.(level - 1).(cache)

let level_totals t =
  Array.map (Array.fold_left ( + ) 0) t.counts

let total_cost t ~miss_cost =
  let acc = ref 0 in
  Array.iteri
    (fun i row ->
      Array.iter (fun n -> acc := !acc + (n * miss_cost (i + 1))) row)
    t.counts;
  !acc

let same_shape a b =
  n_levels a = n_levels b
  && Array.for_all2
       (fun ra rb -> Array.length ra = Array.length rb)
       a.counts b.counts

let equal a b = same_shape a b && a.counts = b.counts

let of_sims sims =
  {
    counts =
      Array.map (fun row -> Array.map Cache_sim.misses row) sims;
    claimed = Array.map (fun row -> Array.make (Array.length row) false) sims;
  }

let merge_exclusive ~into ~claims src =
  if not (same_shape into src) then
    invalid_arg "Miss_table.merge_exclusive: shape mismatch";
  (* a shard may only contribute inside its claim: anything else is a
     routing bug that would silently corrupt another shard's cells *)
  let in_claims level cache =
    Array.exists (fun (l, c) -> l = level && c = cache) claims
  in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun c n ->
          if n <> 0 && not (in_claims (i + 1) c) then
            invalid_arg
              (Printf.sprintf
                 "Miss_table.merge_exclusive: shard wrote outside its claim \
                  (level %d cache %d)"
                 (i + 1) c))
        row)
    src.counts;
  Array.iter
    (fun (level, cache) ->
      check_cell into ~level ~cache;
      if into.claimed.(level - 1).(cache) then
        invalid_arg
          (Printf.sprintf
             "Miss_table.merge_exclusive: level %d cache %d claimed twice \
              (double-counted shard)"
             level cache);
      into.claimed.(level - 1).(cache) <- true;
      into.counts.(level - 1).(cache) <-
        into.counts.(level - 1).(cache) + src.counts.(level - 1).(cache))
    claims

let assert_complete t =
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun c claimed ->
          if not claimed then
            invalid_arg
              (Printf.sprintf
                 "Miss_table.assert_complete: level %d cache %d never merged \
                  (dropped shard)"
                 (i + 1) c))
        row)
    t.claimed

let pp ppf t =
  Array.iteri
    (fun i row ->
      Format.fprintf ppf "%sL%d=[%s]"
        (if i = 0 then "" else " ")
        (i + 1)
        (String.concat ";" (Array.to_list (Array.map string_of_int row))))
    t.counts
