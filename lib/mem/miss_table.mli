(** Per-(level, cache-instance) miss counts for a PMH-shaped machine,
    with an exclusive merge for combining shard-local tables.

    The sharded cache simulation ({!Shard_sim}) gives each domain a
    private table; the merge step then folds them into one, and is the
    step the bit-identity harness must be able to trust.  So the merge
    is {e partition-checked}: every (level, cache) cell may be claimed
    by exactly one shard.  A cell claimed twice (a double-counted
    shard) and a shard contributing outside its claim both raise
    immediately; {!assert_complete} raises if any cell was never
    claimed (a dropped shard). *)

type t

(** [create ~n_caches] — all-zero table; [n_caches.(j-1)] is the number
    of cache instances at level [j] (as in {!Nd_pmh.Pmh.n_caches}).
    @raise Invalid_argument on an empty level. *)
val create : n_caches:int array -> t

val n_levels : t -> int

val n_caches : t -> level:int -> int

(** [add t ~level ~cache n] adds [n >= 0] misses to one cell. *)
val add : t -> level:int -> cache:int -> int -> unit

val get : t -> level:int -> cache:int -> int

(** Per-level sums, index [j-1] = level [j] — the shape of
    [Sb_sched.stats.misses]. *)
val level_totals : t -> int array

(** [total_cost t ~miss_cost] = sum over cells of
    [count * miss_cost level]. *)
val total_cost : t -> miss_cost:(int -> int) -> int

(** Cell-wise equality of the counts (bit-identity; merge bookkeeping
    is not compared). *)
val equal : t -> t -> bool

(** [of_sims sims] — snapshot the miss counters of a per-cache
    simulator bank, [sims.(j-1).(c)] being the level-[j] cache [c]. *)
val of_sims : Cache_sim.t array array -> t

(** [merge_exclusive ~into ~claims src] adds [src]'s cells listed in
    [claims] into [into] and marks them claimed.
    @raise Invalid_argument if shapes differ, if a claimed cell was
    already claimed by an earlier merge (double-counted shard), or if
    [src] holds a non-zero count outside [claims] (a shard that wrote
    into another shard's cells). *)
val merge_exclusive : into:t -> claims:(int * int) array -> t -> unit

(** @raise Invalid_argument if any cell of [t] was never claimed by a
    {!merge_exclusive} (dropped shard). *)
val assert_complete : t -> unit

val pp : Format.formatter -> t -> unit
