module Is = Nd_util.Interval_set
module Pmh = Nd_pmh.Pmh

let env_workers () =
  match Sys.getenv_opt "NDSIM_SIM_WORKERS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some w when w >= 1 -> Some w
    | Some _ | None -> None)
  | None -> None

module Trace = struct
  (* SoA: parallel proc/footprint arrays, doubling growth.  One entry
     per leaf strand executed, in simulation event order. *)
  type t = {
    mutable procs : int array;
    mutable fps : Is.t array;
    mutable len : int;
  }

  let create () = { procs = Array.make 256 0; fps = Array.make 256 Is.empty; len = 0 }

  let length t = t.len

  let push t ~proc fp =
    if t.len >= Array.length t.procs then begin
      let cap = 2 * Array.length t.procs in
      let procs = Array.make cap 0 and fps = Array.make cap Is.empty in
      Array.blit t.procs 0 procs 0 t.len;
      Array.blit t.fps 0 fps 0 t.len;
      t.procs <- procs;
      t.fps <- fps
    end;
    t.procs.(t.len) <- proc;
    t.fps.(t.len) <- fp;
    t.len <- t.len + 1

  let proc t i = t.procs.(i)

  let footprint t i = t.fps.(i)
end

let machine_caches machine =
  Array.init (Pmh.n_levels machine) (fun i ->
      Pmh.n_caches machine ~level:(i + 1))

(* ------------------------- serial reference ------------------------- *)

(* One interleaved pass with every cache live at once — deliberately a
   different code shape from the sharded path, so the differential tests
   compare two independent implementations of the same access routing. *)
let replay_serial ?impl ~machine trace =
  let h = Pmh.n_levels machine in
  let sims =
    Array.init h (fun i ->
        Array.init
          (Pmh.n_caches machine ~level:(i + 1))
          (fun _ ->
            Cache_sim.create ?impl ~m:(Pmh.size machine ~level:(i + 1)) ()))
  in
  for k = 0 to Trace.length trace - 1 do
    let proc = Trace.proc trace k and fp = Trace.footprint trace k in
    for j = 1 to h do
      let c = Pmh.cache_of_proc machine ~proc ~level:j in
      ignore (Cache_sim.access_set sims.(j - 1).(c) fp)
    done
  done;
  Miss_table.of_sims sims

(* -------------------------- sharded replay -------------------------- *)

(* Each shard owns a disjoint set of (level, cache) pairs and scans the
   whole trace once with private simulators: caches at different levels
   and disjoint same-level caches evolve independently (DESIGN.md §10),
   and each cache sees exactly the per-cache subsequence of the global
   trace order, so the counts are bit-identical to the serial pass. *)
let run_shard ?impl ~machine trace pairs =
  let h = Pmh.n_levels machine in
  let n_caches = machine_caches machine in
  let sims = Array.init h (fun i -> Array.make n_caches.(i) None) in
  Array.iter
    (fun (level, cache) ->
      sims.(level - 1).(cache) <-
        Some (Cache_sim.create ?impl ~m:(Pmh.size machine ~level) ()))
    pairs;
  let levels =
    Array.of_list
      (List.filter
         (fun j -> Array.exists (fun s -> s <> None) sims.(j - 1))
         (List.init h (fun i -> i + 1)))
  in
  for k = 0 to Trace.length trace - 1 do
    let proc = Trace.proc trace k and fp = Trace.footprint trace k in
    Array.iter
      (fun j ->
        let c = Pmh.cache_of_proc machine ~proc ~level:j in
        match sims.(j - 1).(c) with
        | Some sim -> ignore (Cache_sim.access_set sim fp)
        | None -> ())
      levels
  done;
  let table = Miss_table.create ~n_caches in
  Array.iter
    (fun (level, cache) ->
      match sims.(level - 1).(cache) with
      | Some sim -> Miss_table.add table ~level ~cache (Cache_sim.misses sim)
      | None -> assert false)
    pairs;
  table

let replay_sharded ?impl ?workers ~machine trace =
  let workers =
    match workers with
    | Some w -> max 1 w
    | None -> (
      match env_workers () with
      | Some w -> w
      | None -> Nd_runtime.Executor.default_workers ())
  in
  let shards = Pmh.shard_pairs machine ~shards:workers in
  let n = Array.length shards in
  let tables = Array.make n None in
  Nd_runtime.Executor.parallel_for ~workers n (fun _wid s ->
      tables.(s) <- Some (run_shard ?impl ~machine trace shards.(s)));
  let into = Miss_table.create ~n_caches:(machine_caches machine) in
  Array.iteri
    (fun s t ->
      match t with
      | Some t -> Miss_table.merge_exclusive ~into ~claims:shards.(s) t
      | None -> invalid_arg "Shard_sim.replay_sharded: lost shard")
    tables;
  Miss_table.assert_complete into;
  into

let replay ?impl ~workers ~machine trace =
  if workers <= 1 then replay_serial ?impl ~machine trace
  else replay_sharded ?impl ~workers ~machine trace
