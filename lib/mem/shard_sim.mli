(** Sharded PMH cache simulation: replay a recorded access trace
    against per-cache LRU simulators, partitioned across domains.

    The space-bounded scheduler's drive loop cannot run its inclusive
    per-cache LRU model in parallel bit-identically, because under
    [Lru] accounting each atom's miss count feeds the atom's duration
    and thus the schedule itself.  The decoupled measurement mode
    instead schedules under the paper's ρ accounting (cost-independent
    of the LRU state), {e records} the global (processor, footprint)
    access trace in event order, and replays it here.

    Replay is embarrassingly parallel: caches at different levels — and
    disjoint same-level caches — evolve independently (DESIGN.md §10),
    and each cache's access sequence is the per-cache subsequence of
    the recorded order, which any partition of the (level, cache) pairs
    preserves.  So serial replay, sharded replay at any worker count,
    and the word-exact reference implementation all produce
    bit-identical miss tables; the differential harness in [test_mem]
    and the oracle's sim-shard stage enforce this. *)

module Trace : sig
  (** A recorded access trace: one (processor, footprint) entry per
      executed leaf strand, in simulation event order.  Stored as flat
      parallel arrays (SoA) with doubling growth. *)
  type t

  val create : unit -> t

  val length : t -> int

  val push : t -> proc:int -> Nd_util.Interval_set.t -> unit

  val proc : t -> int -> int

  val footprint : t -> int -> Nd_util.Interval_set.t
end

(** The [NDSIM_SIM_WORKERS] environment variable as a positive integer,
    if set and well-formed. *)
val env_workers : unit -> int option

(** [replay_serial ?impl ~machine trace] — the serial reference: a
    single interleaved pass over the trace with every (level, cache)
    simulator live at once.  [impl] defaults to
    {!Cache_sim.default_impl}. *)
val replay_serial :
  ?impl:Cache_sim.impl -> machine:Nd_pmh.Pmh.t -> Trace.t -> Miss_table.t

(** [replay_sharded ?impl ?workers ~machine trace] — partition the
    (level, cache) pairs with {!Nd_pmh.Pmh.shard_pairs}, simulate each
    shard on its own domain via [Executor.parallel_for] with private
    simulators, and fold the shard tables through the partition-checked
    {!Miss_table.merge_exclusive} (so a dropped or double-counted shard
    raises rather than mis-counting).  [workers] defaults to
    [NDSIM_SIM_WORKERS], then [Executor.default_workers].  The result
    is bit-identical to {!replay_serial} at every worker count. *)
val replay_sharded :
  ?impl:Cache_sim.impl ->
  ?workers:int ->
  machine:Nd_pmh.Pmh.t ->
  Trace.t ->
  Miss_table.t

(** [replay ?impl ~workers ~machine trace] — {!replay_serial} when
    [workers <= 1], {!replay_sharded} otherwise. *)
val replay :
  ?impl:Cache_sim.impl ->
  workers:int ->
  machine:Nd_pmh.Pmh.t ->
  Trace.t ->
  Miss_table.t
