type level = { size : int; fanout : int; miss_cost : int }

type t = { caches : level array; root_fanout : int }

let create ~root_fanout levels =
  let caches = Array.of_list levels in
  if Array.length caches = 0 then invalid_arg "Pmh.create: no cache levels";
  if root_fanout < 1 then invalid_arg "Pmh.create: root_fanout < 1";
  Array.iteri
    (fun i l ->
      if l.size < 1 || l.fanout < 1 || l.miss_cost < 0 then
        invalid_arg "Pmh.create: non-positive level parameter";
      if i > 0 && l.size <= caches.(i - 1).size then
        invalid_arg "Pmh.create: cache sizes must strictly increase")
    caches;
  { caches; root_fanout }

let n_levels t = Array.length t.caches

let check_level t level =
  if level < 1 || level > n_levels t then invalid_arg "Pmh: bad level"

let n_procs t =
  t.root_fanout * Array.fold_left (fun acc l -> acc * l.fanout) 1 t.caches

let n_caches t ~level =
  check_level t level;
  let acc = ref t.root_fanout in
  for i = n_levels t - 1 downto level do
    acc := !acc * t.caches.(i).fanout
  done;
  !acc

let size t ~level =
  check_level t level;
  t.caches.(level - 1).size

let miss_cost t ~level =
  check_level t level;
  t.caches.(level - 1).miss_cost

let fanout t ~level =
  check_level t level;
  t.caches.(level - 1).fanout

let cum_miss_cost t ~level =
  if level < 1 || level > n_levels t + 1 then invalid_arg "Pmh: bad level";
  let acc = ref 0 in
  for i = 1 to level - 1 do
    acc := !acc + t.caches.(i - 1).miss_cost
  done;
  !acc

(* processors under one level-i cache *)
let procs_per_cache t level =
  let acc = ref 1 in
  for i = 0 to level - 1 do
    acc := !acc * t.caches.(i).fanout
  done;
  !acc

let cache_of_proc t ~proc ~level =
  check_level t level;
  if proc < 0 || proc >= n_procs t then invalid_arg "Pmh: bad proc";
  proc / procs_per_cache t level

let procs_under t ~level ~cache =
  check_level t level;
  let per = procs_per_cache t level in
  if cache < 0 || cache >= n_caches t ~level then invalid_arg "Pmh: bad cache";
  (cache * per, ((cache + 1) * per) - 1)

let shard_pairs t ~shards =
  if shards < 1 then invalid_arg "Pmh.shard_pairs: shards < 1";
  (* weight of a (level, cache) pair = processors under the cache: a
     uniform access stream touches every level once per access, split
     across that level's instances in proportion to the leaves below
     each one, so [procs_per_cache] is the pair's expected trace share
     (in units of one access) *)
  let pairs = ref [] in
  for level = n_levels t downto 1 do
    for cache = n_caches t ~level - 1 downto 0 do
      pairs := (procs_per_cache t level, level, cache) :: !pairs
    done
  done;
  let pairs = Array.of_list !pairs in
  (* LPT: heaviest first; ties broken by (level, cache) ascending so the
     partition is a pure function of the machine shape *)
  Array.sort
    (fun (w1, l1, c1) (w2, l2, c2) ->
      if w1 <> w2 then compare w2 w1
      else if l1 <> l2 then compare l1 l2
      else compare c1 c2)
    pairs;
  let k = min shards (Array.length pairs) in
  let load = Array.make k 0 in
  let bins = Array.make k [] in
  Array.iter
    (fun (w, level, cache) ->
      let best = ref 0 in
      for b = 1 to k - 1 do
        if load.(b) < load.(!best) then best := b
      done;
      load.(!best) <- load.(!best) + w;
      bins.(!best) <- (level, cache) :: bins.(!best))
    pairs;
  Array.map
    (fun bin -> Array.of_list (List.sort compare bin))
    bins

let perfect_time t ~sigma ~q_star =
  let p = float_of_int (n_procs t) in
  let total = ref 0. in
  for level = 1 to n_levels t do
    let m = int_of_float (sigma *. float_of_int (size t ~level)) in
    let m = max 1 m in
    total :=
      !total
      +. (float_of_int (q_star m) *. float_of_int (miss_cost t ~level))
  done;
  !total /. p

let overhead_vh t ~alpha ~k =
  if k <= 0. || k >= 1. then invalid_arg "Pmh.overhead_vh: k not in (0,1)";
  let alpha' = Float.min alpha 1. in
  let acc = ref 2. in
  for j = 2 to n_levels t do
    let f = float_of_int (fanout t ~level:j) in
    let ratio =
      float_of_int (size t ~level:j) /. float_of_int (size t ~level:(j - 1))
    in
    acc := !acc *. ((1. /. k) +. (f /. ((1. -. k) *. (ratio ** alpha'))))
  done;
  !acc

let describe t =
  let parts =
    Array.to_list
      (Array.mapi
         (fun i l ->
           Printf.sprintf "L%d(M=%d,f=%d,C=%d)" (i + 1) l.size l.fanout
             l.miss_cost)
         t.caches)
  in
  Printf.sprintf "%s root_fanout=%d procs=%d" (String.concat " " parts)
    t.root_fanout (n_procs t)

let flat ~procs ~m ~miss_cost =
  create ~root_fanout:1 [ { size = m; fanout = procs; miss_cost } ]

let desktop () =
  create ~root_fanout:1
    [
      { size = 1 lsl 10; fanout = 1; miss_cost = 2 };
      { size = 1 lsl 13; fanout = 4; miss_cost = 8 };
      { size = 1 lsl 16; fanout = 4; miss_cost = 32 };
    ]

let server () =
  create ~root_fanout:4
    [
      { size = 1 lsl 10; fanout = 1; miss_cost = 2 };
      { size = 1 lsl 13; fanout = 4; miss_cost = 8 };
      { size = 1 lsl 16; fanout = 4; miss_cost = 32 };
    ]

let scaled ~top_caches () =
  create ~root_fanout:top_caches
    [
      { size = 1 lsl 10; fanout = 1; miss_cost = 2 };
      { size = 1 lsl 13; fanout = 4; miss_cost = 8 };
      { size = 1 lsl 16; fanout = 4; miss_cost = 32 };
    ]
