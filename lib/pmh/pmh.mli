(** The Parallel Memory Hierarchy (PMH) machine model [Alpern, Carter,
    Ferrante] used throughout Section 4 of the paper (Figure 2): a
    symmetric tree rooted at an infinite memory, with identical caches at
    each internal level and processors at the leaves.

    Levels are numbered 1..h-1 from the processors up (level 0 is the
    processor/registers); [caches.(i-1)] describes level i.  A miss at
    level i costs [C_i] (serviced from level i+1); the root memory
    services the top caches at [caches.(h-2).miss_cost]'s level via
    [root_fanout] links.  Unit cache lines (B = 1), as in the paper's
    simplified analysis. *)

type level = {
  size : int;  (** M_i, in words *)
  fanout : int;  (** f_i: number of level-(i-1) units below each cache *)
  miss_cost : int;  (** C_i: cost of servicing a level-i miss *)
}

type t = private {
  caches : level array;  (** index 0 = level-1 cache (smallest) *)
  root_fanout : int;  (** number of top-level caches below memory *)
}

(** [create ~root_fanout levels] builds a machine; [levels] from L1 up.
    @raise Invalid_argument unless sizes strictly increase, and all
    sizes/fanouts/costs are positive. *)
val create : root_fanout:int -> level list -> t

(** [n_levels t] = h - 1: number of cache levels. *)
val n_levels : t -> int

(** [n_procs t] — number of processors (leaves). *)
val n_procs : t -> int

(** [n_caches t ~level] — number of cache instances at a level (1-based). *)
val n_caches : t -> level:int -> int

(** [size t ~level] / [miss_cost t ~level] / [fanout t ~level] — level
    parameters, 1-based. *)
val size : t -> level:int -> int

val miss_cost : t -> level:int -> int

val fanout : t -> level:int -> int

(** [cum_miss_cost t ~level] — C'_level = C_1 + ... + C_(level-1)... the
    cost of servicing a word from the given level into the processor;
    [cum_miss_cost t ~level:(n_levels t + 1)] is a full fetch from
    memory. *)
val cum_miss_cost : t -> level:int -> int

(** [cache_of_proc t ~proc ~level] — index of the level-[level] cache
    above processor [proc]. *)
val cache_of_proc : t -> proc:int -> level:int -> int

(** [procs_under t ~level ~cache] — the inclusive processor range
    [(lo, hi)] below a cache instance. *)
val procs_under : t -> level:int -> cache:int -> int * int

(** [shard_pairs t ~shards] — a deterministic partition of all
    (level, cache-instance) pairs of the machine into at most [shards]
    disjoint groups, for parallel per-cache simulation.  Every pair
    appears in exactly one group.  Pairs are weighted by the processor
    count below the cache (the expected share of a uniform access trace
    routed to it) and balanced greedily, heaviest first (LPT); ties
    break on (level, cache) order, so the result is a pure function of
    the machine shape and [shards].  Each group is non-empty and sorted
    by (level, cache); the group count is [min shards n_pairs].
    @raise Invalid_argument if [shards < 1]. *)
val shard_pairs : t -> shards:int -> (int * int) array array

(** [perfect_time t ~sigma ~q_star] — the perfectly load-balanced bound
    of Eq. 22: (sum over levels j of Q*(sigma*M_j) * C_j) / p, where
    [q_star m] evaluates the program's PCC at cache size [m].  The
    returned value is in the same time unit as the work; the level-0
    (pure work) term must be included by the caller if desired. *)
val perfect_time : t -> sigma:float -> q_star:(int -> int) -> float

(** [overhead_vh t ~alpha ~k] — the v_h factor of Theorem 3:
    2 * prod_j (1/k + f_j / ((1-k) * (M_j/M_(j-1))^alpha')). *)
val overhead_vh : t -> alpha:float -> k:float -> float

(** [describe t] — a one-line summary. *)
val describe : t -> string

(** {2 Canned machines} *)

(** [flat ~procs ~m ~miss_cost] — single cache level shared by all
    processors. *)
val flat : procs:int -> m:int -> miss_cost:int -> t

(** [desktop ()] — 3 cache levels, 16 processors: private L1 (1 KiW),
    L2 shared by 4 (8 KiW), L3 shared by all 16 (64 KiW). *)
val desktop : unit -> t

(** [server ()] — 3 cache levels, 64 processors across 4 sockets. *)
val server : unit -> t

(** [scaled ~top_caches ()] — the desktop socket replicated
    [top_caches] times (used for the E4 processor-scaling sweep). *)
val scaled : top_caches:int -> unit -> t
