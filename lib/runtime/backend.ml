module type S = sig
  val name : string

  val run :
    ?workers:int ->
    ?grain:int ->
    ?tracer:Nd_trace.Collector.t ->
    Nd.Program.t ->
    unit
end

module Forkjoin : S = struct
  let name = "forkjoin"

  let run = Executor.run_fork_join
end

module Dataflow : S = struct
  let name = "dataflow"

  let run = Executor.run_dataflow
end

module Fiber : S = struct
  let name = "fiber"

  let run = Fiber_exec.run
end

let all : (module S) list = [ (module Forkjoin); (module Dataflow); (module Fiber) ]

let names = List.map (fun (module B : S) -> B.name) all

let find n =
  List.find_opt (fun (module B : S) -> String.equal B.name n) all
