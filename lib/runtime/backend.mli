(** The shared signature every real executor implements, and the
    registry enumerating them.

    All three backends run the same compiled program under the same
    optional [workers]/[grain]/[tracer] contract (they all schedule
    {!Executor.task_graph} tasks, or a projection of them), so
    differential checks and CLI surfaces iterate [all] instead of
    hard-coding executor pairs: {!Nd_check.Oracle} runs every fuzz
    case through every backend, and [ndsim run --backend] resolves
    names through {!find}. *)

module type S = sig
  val name : string

  val run :
    ?workers:int ->
    ?grain:int ->
    ?tracer:Nd_trace.Collector.t ->
    Nd.Program.t ->
    unit
end

(** Fork–join (NP projection) — {!Executor.run_fork_join}. *)
module Forkjoin : S

(** Dep-counter dataflow (ND) — {!Executor.run_dataflow}. *)
module Dataflow : S

(** Effects-based fibers (ND) — {!Fiber_exec.run}. *)
module Fiber : S

(** In registration order: forkjoin, dataflow, fiber. *)
val all : (module S) list

val names : string list

val find : string -> (module S) option
