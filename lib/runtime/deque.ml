(* Chase & Lev, "Dynamic circular work-stealing deque" (SPAA 2005), in
   the load/store discipline of Le, Pop, Cohen & Nardelli, "Correct and
   Efficient Work-Stealing for Weak Memory Models" (PPoPP 2013), ported
   to OCaml 5.

   Memory-model argument (OCaml 5 atomics are sequentially consistent,
   which subsumes every fence of the C11 version; what remains to argue
   is the non-atomic buffer slots and buffer replacement):

   - [top] is monotonically non-decreasing: the only writes are
     successful [compare_and_set t.top tp (tp + 1)] in [steal] and in
     the last-element branch of [pop].  Therefore a successful CAS with
     expected value [tp] certifies that [top] held [tp] for the whole
     window between the thief's initial read and the CAS.

   - A slot is recycled (overwritten with a later element) only by
     [push] at index [b] with [b - top > mask] prevented by [grow], so
     while [top = tp] the cell for index [tp] of the current buffer can
     never be reused: recycling index [tp] needs [b >= tp + capacity],
     which [push] forbids until [top > tp].  Hence a thief whose CAS
     succeeds read either the value published for index [tp], or a
     buffer replaced by [grow] — and [grow] copies indices
     [top .. bottom-1] verbatim, so the value for index [tp] is the
     same in every live generation.

   - Publication: the owner writes the slot, then releases it with the
     [Atomic.set] on [bottom] (push) or on [buf] (grow).  A thief
     acquires via [Atomic.get] on the same locations before reading the
     slot, so the slot write happens-before the thief's read: no
     out-of-thin-air or torn values.

   - Buffer replacement: [grow] links the retired buffer from the new
     one ([prev]), so every generation a thief can still hold a
     reference to remains fully reachable and immutable — the owner
     never writes a retired buffer again, and the GC cannot recycle it
     under a racing thief.  ([prev] also makes the retirement explicit
     rather than relying on the thief's own transient reference.)

   - A successful steal/pop must find a populated slot ([Some _]): the
     capacity argument above rules out reads of never-written or
     recycled cells when the CAS certifies [top].  The impossible case
     is kept as a hard failure rather than silently dropping an item. *)

type 'a buffer = {
  mask : int;
  data : 'a option array;
  prev : 'a buffer option;
      (* retired generations, kept reachable; deliberately write-only *)
}
[@@warning "-69"]

(* ------------------------- test-only hooks -------------------------- *)

(* The conformance explorer (Nd_check.Explore) runs the deque on a
   single domain inside effect-based fibers and needs a preemption
   point between the individual loads/stores of each operation, so a
   controlled scheduler can enumerate the interleavings that real
   domains would only hit by timing luck.  [yield] is called at every
   linearization-relevant step with a label naming it; the production
   cost with the hook unset is one immediate-ref load and branch per
   point, on operations that already perform several atomic accesses.

   [drop_retired] re-introduces the pre-hardening bug class: [grow] no
   longer links the retired buffer from its replacement, and the
   retirement is made observable by clearing the old slots — modelling
   the recycling that retention exists to prevent (under retention the
   GC cannot reclaim a generation a racing thief still reads; without
   it, this clear is exactly what a reuse/reclaim would do to the
   thief).  Used by the mutation smoke test to prove the explorer can
   detect this class of bug.  Never enable outside tests. *)
module Hooks = struct
  let yield : (string -> unit) option ref = ref None

  let drop_retired = ref false

  let set_yield f = yield := f

  let set_drop_retired b = drop_retired := b
end

let[@inline] yield_point what =
  match !Hooks.yield with None -> () | Some f -> f what

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a buffer Atomic.t;
}

let make_buffer ?prev cap = { mask = cap - 1; data = Array.make cap None; prev }

let create () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (make_buffer 16);
  }

let buf_get b i = Array.unsafe_get b.data (i land b.mask)

let buf_set b i x = Array.unsafe_set b.data (i land b.mask) x

let[@inline never] lost_item () =
  failwith "Deque: consumed index holds no value (slot recycled under CAS)"

(* a successfully consumed index must hold a value; see header *)
let checked = function Some _ as x -> x | None -> lost_item ()

(* owner only: double the capacity, copying the live window.  The new
   buffer is published with a release store before the element that
   triggered the growth is written, so thieves only ever see fully
   initialized generations. *)
let grow t b top bottom =
  let retain = not !Hooks.drop_retired in
  let nb =
    if retain then make_buffer ~prev:b (2 * (b.mask + 1))
    else make_buffer (2 * (b.mask + 1))
  in
  for i = top to bottom - 1 do
    buf_set nb i (buf_get b i)
  done;
  Atomic.set t.buf nb;
  if not retain then begin
    (* test-only mutation: the retired generation is reclaimed while a
       thief may still hold it — see Hooks above *)
    yield_point "grow.recycle";
    Array.fill b.data 0 (Array.length b.data) None
  end;
  nb

let push t x =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let buf = Atomic.get t.buf in
  let buf = if b - tp > buf.mask then grow t buf tp b else buf in
  buf_set buf b (Some x);
  yield_point "push.slot";
  (* release: the slot write above becomes visible to any thief that
     subsequently observes bottom = b + 1 *)
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  let buf = Atomic.get t.buf in
  (* reserve the cell before reading top: after this store a thief's
     t < b test excludes index b, so the owner owns the slot unless the
     deque is down to its last element *)
  Atomic.set t.bottom b;
  yield_point "pop.reserve";
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* empty: restore the canonical empty state bottom = top *)
    Atomic.set t.bottom tp;
    None
  end
  else if b > tp then begin
    (* more than one element: the slot is owner-private *)
    let x = buf_get buf b in
    buf_set buf b None;
    (* clear for GC; owner-only slot *)
    checked x
  end
  else begin
    (* last element: race thieves with the same CAS they use *)
    yield_point "pop.last";
    let won = Atomic.compare_and_set t.top tp (tp + 1) in
    let x =
      if won then begin
        let x = buf_get buf b in
        (* dead slot: every thief that still reads it fails its CAS *)
        buf_set buf b None;
        checked x
      end
      else None
    in
    Atomic.set t.bottom (tp + 1);
    x
  end

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    (* read the buffer after top/bottom, and the slot before the CAS:
       the CAS then certifies top was [tp] throughout, which (with the
       capacity bound, see header) pins the slot's value *)
    let buf = Atomic.get t.buf in
    yield_point "steal.slot";
    let x = buf_get buf tp in
    yield_point "steal.cas";
    if Atomic.compare_and_set t.top tp (tp + 1) then checked x else None
  end

let size t =
  (* read top first: top only grows, so the difference can transiently
     under-report but never goes negative for a quiescent deque; clamp
     for the racing case where a pop's bottom rollback is mid-flight *)
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  max 0 (b - tp)
