(** Chase–Lev work-stealing deque on OCaml 5 atomics.

    Single-owner: only the owner calls {!push} and {!pop} (bottom end);
    any domain may call {!steal} (top end).  Lock-free; the only
    synchronized contention is the owner/thief race on the last element,
    resolved with a compare-and-set on [top].  The buffer grows
    geometrically and never shrinks; retired buffer generations are
    retained (linked from their replacement) so a thief holding an old
    generation never observes a recycled slot — see the memory-model
    argument at the top of [deque.ml], which follows Le, Pop, Cohen &
    Nardelli (PPoPP 2013).  Consumed slots are cleared so the deque
    never pins dead work items against the GC. *)

type 'a t

(** [create ()] — an empty deque (initial capacity 16). *)
val create : unit -> 'a t

(** [push t x] — owner only: push on the bottom. *)
val push : 'a t -> 'a -> unit

(** [pop t] — owner only: pop from the bottom (LIFO). *)
val pop : 'a t -> 'a option

(** [steal t] — any domain: take from the top (FIFO); [None] when the
    deque looks empty or the race was lost. *)
val steal : 'a t -> 'a option

(** [size t] — instantaneous size (approximate under concurrency;
    never negative: [top] is read first and only ever grows). *)
val size : 'a t -> int

(** {2 Test-only hooks}

    Verification seams for the conformance harness ([Nd_check]); never
    set these in production code. *)
module Hooks : sig
  (** [set_yield (Some f)] installs a preemption callback invoked (with
      a label naming the point) between the individual loads/stores of
      {!push}, {!pop}, {!steal} and the internal grow — the explorer
      performs an effect there to hand control back to its scheduler,
      so a single domain can enumerate the interleavings real domains
      only hit by timing.  With the hook unset (the default) each
      point costs one immediate-ref load and branch. *)
  val set_yield : (string -> unit) option -> unit

  (** [set_drop_retired true] re-introduces the pre-hardening bug
      class behind the retired-buffer retention: grow stops linking
      the old generation and makes its retirement observable by
      clearing the old slots (modelling the reclaim that retention
      prevents).  A thief suspended between its buffer read and slot
      read then consumes a cleared slot and trips the hard
      [lost_item] failure.  Exists solely so the mutation smoke test
      can prove the explorer detects this bug class. *)
  val set_drop_retired : bool -> unit
end
