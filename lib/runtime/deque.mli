(** Chase–Lev work-stealing deque on OCaml 5 atomics.

    Single-owner: only the owner calls {!push} and {!pop} (bottom end);
    any domain may call {!steal} (top end).  Lock-free; the only
    synchronized contention is the owner/thief race on the last element,
    resolved with a compare-and-set on [top].  The buffer grows
    geometrically and never shrinks; retired buffer generations are
    retained (linked from their replacement) so a thief holding an old
    generation never observes a recycled slot — see the memory-model
    argument at the top of [deque.ml], which follows Le, Pop, Cohen &
    Nardelli (PPoPP 2013).  Consumed slots are cleared so the deque
    never pins dead work items against the GC. *)

type 'a t

(** [create ()] — an empty deque (initial capacity 16). *)
val create : unit -> 'a t

(** [push t x] — owner only: push on the bottom. *)
val push : 'a t -> 'a -> unit

(** [pop t] — owner only: pop from the bottom (LIFO). *)
val pop : 'a t -> 'a option

(** [steal t] — any domain: take from the top (FIFO); [None] when the
    deque looks empty or the race was lost. *)
val steal : 'a t -> 'a option

(** [size t] — instantaneous size (approximate under concurrency;
    never negative: [top] is read first and only ever grows). *)
val size : 'a t -> int
