module Dag = Nd_dag.Dag
module Trace = Nd_trace.Collector
open Nd

let env_workers () =
  match Sys.getenv_opt "NDSIM_WORKERS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some w when w >= 1 -> Some w
    | Some _ | None -> None)
  | None -> None

let default_workers () =
  match env_workers () with
  | Some w -> w
  | None -> max 1 (min 8 (Domain.recommended_domain_count ()))

(* Capped exponential backoff for idle spin loops, shared by both
   executors.  Phase 1: doubling bursts of [cpu_relax] hints.  Phase 2:
   short OS sleeps (a blocking section, so a sleeper neither burns the
   core nor delays stop-the-world GC barriers).  [spin_cap] is the
   failed-sweep count at which phase 2 starts: when the run is
   oversubscribed (more domains than cores) spinning is poison — every
   minor-GC barrier must wait for each spinning domain to be
   {e scheduled} to reach a poll point — so idle workers go to sleep
   almost immediately. *)
let spin_cap ~nw =
  if nw > Domain.recommended_domain_count () then 4 else 512

let backoff ~spin_cap spin =
  incr spin;
  if !spin > spin_cap then
    (* doubling sleeps from 50us capped at 1ms: long enough that a
       starved core drains real work between wake-ups, short enough
       that a newly enabled DAG ladder is picked up promptly *)
    Unix.sleepf
      (min 1e-3 (5e-5 *. float_of_int (1 lsl min 5 ((!spin - spin_cap) / 16))))
  else if !spin > 64 then begin
    let n = min 512 (1 lsl min 9 (!spin / 64)) in
    for _ = 1 to n do
      Domain.cpu_relax ()
    done
  end

(* --------------------------- parallel for -------------------------- *)

let parallel_for ?workers n f =
  if n > 0 then begin
    let nw =
      max 1
        (min n (match workers with Some w -> w | None -> default_workers ()))
    in
    if nw = 1 then
      for i = 0 to n - 1 do
        f 0 i
      done
    else begin
      (* dynamic work sharing: iterations are claimed one at a time off a
         shared counter, so uneven iteration costs balance automatically
         (the experiment suite's phases differ by orders of magnitude) *)
      let next = Atomic.make 0 in
      let failure = Atomic.make None in
      let body wid () =
        let continue_ = ref true in
        while !continue_ do
          if Atomic.get failure <> None then continue_ := false
          else begin
            let i = Atomic.fetch_and_add next 1 in
            if i >= n then continue_ := false
            else
              try f wid i
              with e ->
                let bt = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set failure None (Some (e, bt)));
                continue_ := false
          end
        done
      in
      let domains = List.init (nw - 1) (fun i -> Domain.spawn (body (i + 1))) in
      body 0 ();
      List.iter Domain.join domains;
      match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(* ------------------------- strand execution ------------------------ *)

let run_action s = match s.Strand.action with Some f -> f () | None -> ()

(* execute one strand, with begin/end events when traced and the strand
   carries work (zero-work sync strands are not interesting intervals) *)
let exec_strand ~tracer ~traced wid v s =
  if traced && s.Strand.work > 0 then begin
    Trace.emit_now tracer ~worker:wid
      (Nd_trace.Event.Strand_begin
         { vertex = v; work = s.Strand.work; label = s.Strand.label });
    run_action s;
    Trace.emit_now tracer ~worker:wid (Nd_trace.Event.Strand_end { vertex = v })
  end
  else run_action s

(* execute program leaves [lo, hi) serially, in tree order.  Valid for
   any subtree: every DAG edge between two leaves of one subtree points
   forward in leaf order (Seq chains by construction; fire edges go from
   the fire's source child to its sink child, which is later in tree
   order), so tree order is a topological order of the sub-DAG. *)
let exec_leaf_range program ~tracer ~traced wid lo hi =
  for i = lo to hi - 1 do
    match Program.kind_of program (Program.leaf_node program i) with
    | Program.Leaf s ->
      exec_strand ~tracer ~traced wid (Program.leaf_vertex program i) s
    | Program.Seq | Program.Par | Program.Fire _ -> assert false
  done

(* ------------------------- dataflow executor ----------------------- *)

(* A schedulable unit of the dataflow runtime: either a single DAG
   vertex (the grain-0 default, and glue sync vertices under
   coarsening), or a contiguous leaf range of the program tree whose
   total work fit under the grain threshold and is run serially. *)
type task = Tvertex of int | Tleaves of { lo : int; hi : int }

type plan = {
  kinds : task array;
  succ_off : int array;
  succ_tgt : int array;
  indeg : int array;
}

(* Coarsen the DAG along the program tree: maximal subtrees with work
   <= grain collapse into one serial task; Seq glue disappears; Par and
   Fire glue contribute their begin/end sync vertices as singleton
   tasks.  Cross-task DAG edges are contracted and deduplicated into a
   fresh CSR.  The contraction is acyclic because every DAG edge either
   stays inside one chosen subtree or respects tree order between
   disjoint subtrees (checked defensively below). *)
let coarse_plan program ~grain =
  let dag = Program.dag program in
  let c = Dag.csr dag in
  let nv = Dag.n_vertices dag in
  let nn = Program.n_nodes program in
  let chosen = Array.make nn (-1) in
  let task_of_vertex = Array.make nv (-1) in
  let kinds = ref [] in
  let ntasks = ref 0 in
  let add k =
    let id = !ntasks in
    incr ntasks;
    kinds := k :: !kinds;
    id
  in
  let rec go n =
    if Program.work_of_node program n <= grain then begin
      let lo, hi = Program.leaf_range program n in
      chosen.(n) <- add (Tleaves { lo; hi })
    end
    else
      match Program.kind_of program n with
      | Program.Leaf _ ->
        (* a single strand above the grain threshold *)
        let v = Program.begin_vertex program n in
        task_of_vertex.(v) <- add (Tvertex v)
      | Program.Seq -> Array.iter go (Program.children program n)
      | Program.Par | Program.Fire _ ->
        let bv = Program.begin_vertex program n
        and ev = Program.end_vertex program n in
        task_of_vertex.(bv) <- add (Tvertex bv);
        Array.iter go (Program.children program n);
        task_of_vertex.(ev) <- add (Tvertex ev)
  in
  go (Program.root program);
  (* vertices swallowed by a coarse subtree: find the chosen ancestor of
     the owning tree node *)
  for v = 0 to nv - 1 do
    if task_of_vertex.(v) < 0 then begin
      let w = ref (Program.vertex_owner program v) in
      while !w >= 0 && chosen.(!w) < 0 do
        w := Program.parent program !w
      done;
      assert (!w >= 0);
      task_of_vertex.(v) <- chosen.(!w)
    end
  done;
  let nt = !ntasks in
  let seen = Hashtbl.create (4 * nt) in
  let counts = Array.make nt 0 in
  let indeg = Array.make nt 0 in
  let edges = ref [] in
  for u = 0 to nv - 1 do
    let tu = task_of_vertex.(u) in
    for i = c.Dag.succ_off.(u) to c.Dag.succ_off.(u + 1) - 1 do
      let tv = task_of_vertex.(c.Dag.succ_tgt.(i)) in
      if tu <> tv then begin
        let key = (tu * nt) + tv in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          counts.(tu) <- counts.(tu) + 1;
          indeg.(tv) <- indeg.(tv) + 1;
          edges := key :: !edges
        end
      end
    done
  done;
  let succ_off = Array.make (nt + 1) 0 in
  for t = 0 to nt - 1 do
    succ_off.(t + 1) <- succ_off.(t) + counts.(t)
  done;
  let fill = Array.sub succ_off 0 nt in
  let succ_tgt = Array.make (max 1 succ_off.(nt)) 0 in
  List.iter
    (fun key ->
      let tu = key / nt in
      succ_tgt.(fill.(tu)) <- key mod nt;
      fill.(tu) <- fill.(tu) + 1)
    !edges;
  (* defensive acyclicity check: a cyclic contraction would deadlock the
     workers, which is much harder to diagnose than failing here *)
  let deg = Array.copy indeg in
  let q = Queue.create () in
  Array.iteri (fun t d -> if d = 0 then Queue.add t q) deg;
  let done_ = ref 0 in
  while not (Queue.is_empty q) do
    let t = Queue.pop q in
    incr done_;
    for i = succ_off.(t) to succ_off.(t + 1) - 1 do
      let s = succ_tgt.(i) in
      deg.(s) <- deg.(s) - 1;
      if deg.(s) = 0 then Queue.add s q
    done
  done;
  if !done_ < nt then
    invalid_arg "Executor: grain coarsening produced a cyclic task graph";
  { kinds = Array.of_list (List.rev !kinds); succ_off; succ_tgt; indeg }

(* The generic dependence-counting engine: tasks are ints, adjacency is
   CSR int arrays, ready tasks flow through per-worker Chase-Lev deques.
   The wake-up loop is allocation-free: an int-array scan plus one
   atomic decrement per multi-predecessor edge (single-predecessor
   targets skip the RMW entirely — the one completing predecessor is
   the unique enabler).

   The engine is a first-class value (exposed in the interface) so the
   conformance harness can drive the exact same wake-up loop and deque
   discipline from a single-domain controlled scheduler: [run_dataflow]
   advances it with one domain per worker, [Nd_check.Explore] advances
   it with one fiber per worker and picks the interleaving itself. *)
module Engine = struct
  type t = {
    n : int;
    nw : int;
    counters : int Atomic.t array;
    remaining : int Atomic.t;
    deques : int Deque.t array;
    succ_off : int array;
    succ_tgt : int array;
    indeg0 : int array;
    exec : int -> int -> unit;
    steal_vertex : int -> int option;
    tracer : Trace.t;
    traced : bool;
  }

  let make_raw ~nw ~tracer ~traced ~succ_off ~succ_tgt ~indeg0 ~exec
      ~steal_vertex =
    let n = Array.length indeg0 in
    let eng =
      {
        n;
        nw;
        counters = Array.map Atomic.make indeg0;
        remaining = Atomic.make n;
        deques = Array.init nw (fun _ -> Deque.create ());
        succ_off;
        succ_tgt;
        indeg0;
        exec;
        steal_vertex;
        tracer;
        traced;
      }
    in
    let seed_slot = ref 0 in
    for v = 0 to n - 1 do
      if indeg0.(v) = 0 then begin
        Deque.push eng.deques.(!seed_slot mod nw) v;
        incr seed_slot
      end
    done;
    if traced then
      Trace.emit_now tracer ~worker:0
        (Nd_trace.Event.Spawn { count = !seed_slot });
    eng

  let n_workers eng = eng.nw

  let n_tasks eng = eng.n

  let remaining eng = Atomic.get eng.remaining

  let finished eng = Atomic.get eng.remaining = 0

  let run_task eng wid v =
    eng.exec wid v;
    Atomic.decr eng.remaining;
    let lo = Array.unsafe_get eng.succ_off v
    and hi = Array.unsafe_get eng.succ_off (v + 1) in
    for i = lo to hi - 1 do
      let s = Array.unsafe_get eng.succ_tgt i in
      let ready =
        Array.unsafe_get eng.indeg0 s = 1
        || Atomic.fetch_and_add (Array.unsafe_get eng.counters s) (-1) = 1
      in
      if ready then begin
        Deque.push (Array.unsafe_get eng.deques wid) s;
        if eng.traced then
          Trace.emit_now eng.tracer ~worker:wid
            (Nd_trace.Event.Fire { target = s; level = 0 })
      end
    done

  let try_pop eng wid =
    match Deque.pop eng.deques.(wid) with
    | Some v ->
      run_task eng wid v;
      true
    | None -> false

  let try_steal eng ~thief ~victim =
    match Deque.steal eng.deques.(victim) with
    | Some v ->
      if eng.traced then
        Trace.emit_now eng.tracer ~worker:thief
          (Nd_trace.Event.Steal_success
             { victim; vertex = eng.steal_vertex v });
      run_task eng thief v;
      true
    | None -> false
end

let act program ~tracer ~traced wid v =
  let n = Program.vertex_owner program v in
  if n >= 0 then
    match Program.kind_of program n with
    | Program.Leaf s -> exec_strand ~tracer ~traced wid v s
    | Program.Seq | Program.Par | Program.Fire _ -> ()

(* The compiled, backend-neutral view of one run: tasks in a CSR
   dependency graph plus the closure that executes one task.  Both the
   dep-counter engine and the fiber backend consume this, so a grain
   setting or a tracer means exactly the same thing under every
   backend.  [indeg] is read-only shared state: consumers must copy
   before mutating (the engine maps it into fresh atomics). *)
type task_graph = {
  tg_tasks : int;
  tg_succ_off : int array;
  tg_succ_tgt : int array;
  tg_indeg : int array;
  tg_exec : int -> int -> unit;
  tg_steal_vertex : int -> int option;
}

let task_graph ?(grain = 0) ?(tracer = Trace.null) program =
  let traced = Trace.enabled tracer in
  if grain > 0 then
    let plan = coarse_plan program ~grain in
    {
      tg_tasks = Array.length plan.indeg;
      tg_succ_off = plan.succ_off;
      tg_succ_tgt = plan.succ_tgt;
      tg_indeg = plan.indeg;
      tg_exec =
        (fun wid t ->
          match plan.kinds.(t) with
          | Tvertex v -> act program ~tracer ~traced wid v
          | Tleaves { lo; hi } ->
            exec_leaf_range program ~tracer ~traced wid lo hi);
      tg_steal_vertex =
        (fun t ->
          match plan.kinds.(t) with Tvertex v -> Some v | Tleaves _ -> None);
    }
  else
    let c = Dag.csr (Program.dag program) in
    {
      tg_tasks = Array.length c.Dag.indeg;
      tg_succ_off = c.Dag.succ_off;
      tg_succ_tgt = c.Dag.succ_tgt;
      tg_indeg = c.Dag.indeg;
      tg_exec = act program ~tracer ~traced;
      tg_steal_vertex = (fun v -> Some v);
    }

let make_engine ?workers ?grain ?(tracer = Trace.null) program =
  let nw = match workers with Some w -> max 1 w | None -> default_workers () in
  let traced = Trace.enabled tracer in
  let g = task_graph ?grain ~tracer program in
  Engine.make_raw ~nw ~tracer ~traced ~succ_off:g.tg_succ_off
    ~succ_tgt:g.tg_succ_tgt ~indeg0:g.tg_indeg ~exec:g.tg_exec
    ~steal_vertex:g.tg_steal_vertex

let run_dataflow ?workers ?grain ?(tracer = Trace.null) program =
  let eng = make_engine ?workers ?grain ~tracer program in
  let nw = Engine.n_workers eng in
  let traced = Trace.enabled tracer in
  let cap = spin_cap ~nw in
  let worker wid () =
    let spin = ref 0 in
    while not (Engine.finished eng) do
      if Engine.try_pop eng wid then spin := 0
      else begin
        let stolen = ref false in
        let i = ref 1 in
        while (not !stolen) && !i < nw do
          if Engine.try_steal eng ~thief:wid ~victim:((wid + !i) mod nw)
          then begin
            stolen := true;
            spin := 0
          end;
          incr i
        done;
        if not !stolen then begin
          (* record only the idle-period start, not every failed sweep *)
          if traced && !spin = 0 then
            Trace.emit_now tracer ~worker:wid
              (Nd_trace.Event.Steal_attempt { victim = -1 });
          backoff ~spin_cap:cap spin
        end
      end
    done
  in
  let domains = List.init (nw - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  List.iter Domain.join domains;
  assert (Engine.finished eng)

(* ------------------------- fork-join executor ---------------------- *)

type job = { work : int -> unit; completed : bool Atomic.t }

type ctx = {
  deques : job Deque.t array;
  nw : int;
  finished : bool Atomic.t;
  tracer : Trace.t;
  traced : bool;
  grain : int;
  spin_cap : int;
  program : Program.t;
}

let help ctx wid =
  match Deque.pop ctx.deques.(wid) with
  | Some j ->
    j.work wid;
    Atomic.set j.completed true;
    true
  | None ->
    let rec try_steal i =
      if i >= ctx.nw then false
      else
        let victim = (wid + i) mod ctx.nw in
        match Deque.steal ctx.deques.(victim) with
        | Some j ->
          if ctx.traced then
            Trace.emit_now ctx.tracer ~worker:wid
              (Nd_trace.Event.Steal_success { victim; vertex = None });
          j.work wid;
          Atomic.set j.completed true;
          true
        | None -> try_steal (i + 1)
    in
    try_steal 1

(* walk the program's node array (the spawn tree annotated with work
   counts) rather than the raw spawn tree: work annotations drive the
   grain cutoff, and leaf nodes know their DAG vertex so strand events
   carry real vertex ids. *)
let rec exec_node ctx wid n =
  let p = ctx.program in
  let cs = Program.children p n in
  if ctx.grain > 0 && cs <> [||] && Program.work_of_node p n <= ctx.grain then begin
    let lo, hi = Program.leaf_range p n in
    exec_leaf_range p ~tracer:ctx.tracer ~traced:ctx.traced wid lo hi
  end
  else
    match Program.kind_of p n with
    | Program.Leaf s ->
      exec_strand ~tracer:ctx.tracer ~traced:ctx.traced wid
        (Program.begin_vertex p n) s
    | Program.Seq -> Array.iter (exec_node ctx wid) cs
    | Program.Fire _ ->
      (* NP projection: serial composition *)
      exec_node ctx wid cs.(0);
      exec_node ctx wid cs.(1)
    | Program.Par ->
      if cs <> [||] then begin
        let rest = Array.sub cs 1 (Array.length cs - 1) in
        let jobs =
          Array.map
            (fun c ->
              let j =
                {
                  work = (fun w -> exec_node ctx w c);
                  completed = Atomic.make false;
                }
              in
              Deque.push ctx.deques.(wid) j;
              j)
            rest
        in
        if ctx.traced && Array.length rest > 0 then
          Trace.emit_now ctx.tracer ~worker:wid
            (Nd_trace.Event.Spawn { count = Array.length rest });
        exec_node ctx wid cs.(0);
        Array.iter
          (fun j ->
            (* help-first join: run other work while waiting *)
            let spin = ref 0 in
            while not (Atomic.get j.completed) do
              if help ctx wid then spin := 0
              else begin
                if ctx.traced && !spin = 0 then
                  Trace.emit_now ctx.tracer ~worker:wid
                    (Nd_trace.Event.Steal_attempt { victim = -1 });
                backoff ~spin_cap:ctx.spin_cap spin
              end
            done)
          jobs
      end

let run_fork_join ?workers ?(grain = 0) ?(tracer = Trace.null) program =
  let nw = match workers with Some w -> max 1 w | None -> default_workers () in
  let ctx =
    {
      deques = Array.init nw (fun _ -> Deque.create ());
      nw;
      finished = Atomic.make false;
      tracer;
      traced = Trace.enabled tracer;
      grain;
      spin_cap = spin_cap ~nw;
      program;
    }
  in
  let helper wid () =
    let spin = ref 0 in
    while not (Atomic.get ctx.finished) do
      if help ctx wid then spin := 0
      else begin
        if ctx.traced && !spin = 0 then
          Trace.emit_now ctx.tracer ~worker:wid
            (Nd_trace.Event.Steal_attempt { victim = -1 });
        backoff ~spin_cap:ctx.spin_cap spin
      end
    done
  in
  let domains = List.init (nw - 1) (fun i -> Domain.spawn (helper (i + 1))) in
  exec_node ctx 0 (Program.root program);
  Atomic.set ctx.finished true;
  List.iter Domain.join domains
