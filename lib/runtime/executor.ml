module Dag = Nd_dag.Dag
module Trace = Nd_trace.Collector
open Nd

let default_workers () = max 1 (min 8 (Domain.recommended_domain_count ()))

(* capped exponential backoff for idle spin loops: after 64 failed
   sweeps, pause for a doubling number of cpu_relax hints (up to 512) so
   1-worker and oversubscribed runs stop burning a full core *)
let backoff spin =
  incr spin;
  if !spin > 64 then begin
    let n = min 512 (1 lsl min 9 (!spin / 64)) in
    for _ = 1 to n do
      Domain.cpu_relax ()
    done
  end

(* ------------------------- dataflow executor ----------------------- *)

let act program v =
  let n = Program.vertex_owner program v in
  if n >= 0 then
    match Program.kind_of program n with
    | Program.Leaf s -> ( match s.Strand.action with Some f -> f () | None -> ())
    | Program.Seq | Program.Par | Program.Fire _ -> ()

let run_dataflow ?workers ?(tracer = Trace.null) program =
  let nw = match workers with Some w -> max 1 w | None -> default_workers () in
  let traced = Trace.enabled tracer in
  let dag = Program.dag program in
  let nv = Dag.n_vertices dag in
  let indeg = Array.init nv (fun v -> Atomic.make (List.length (Dag.preds dag v))) in
  let remaining = Atomic.make nv in
  let deques = Array.init nw (fun _ -> Deque.create ()) in
  (* distribute the sources round-robin *)
  let seed_slot = ref 0 in
  for v = 0 to nv - 1 do
    if Atomic.get indeg.(v) = 0 then begin
      Deque.push deques.(!seed_slot mod nw) v;
      incr seed_slot
    end
  done;
  if traced then Trace.emit_now tracer ~worker:0 (Nd_trace.Event.Spawn { count = !seed_slot });
  let exec wid v =
    if traced then begin
      let work = Dag.work_of dag v in
      if work > 0 then
        Trace.emit_now tracer ~worker:wid
          (Nd_trace.Event.Strand_begin { vertex = v; work; label = Dag.label dag v })
    end;
    act program v;
    if traced && Dag.work_of dag v > 0 then
      Trace.emit_now tracer ~worker:wid (Nd_trace.Event.Strand_end { vertex = v });
    Atomic.decr remaining;
    List.iter
      (fun s ->
        if Atomic.fetch_and_add indeg.(s) (-1) = 1 then begin
          Deque.push deques.(wid) s;
          if traced then
            Trace.emit_now tracer ~worker:wid
              (Nd_trace.Event.Fire { target = s; level = 0 })
        end)
      (Dag.succs dag v)
  in
  let worker wid () =
    let spin = ref 0 in
    while Atomic.get remaining > 0 do
      match Deque.pop deques.(wid) with
      | Some v ->
        spin := 0;
        exec wid v
      | None ->
        let stolen = ref false in
        let i = ref 1 in
        while (not !stolen) && !i < nw do
          (match Deque.steal deques.((wid + !i) mod nw) with
          | Some v ->
            stolen := true;
            if traced then
              Trace.emit_now tracer ~worker:wid
                (Nd_trace.Event.Steal_success
                   { victim = (wid + !i) mod nw; vertex = v });
            spin := 0;
            exec wid v
          | None -> ());
          incr i
        done;
        if not !stolen then begin
          incr spin;
          (* record only the idle-period start, not every failed sweep *)
          if traced && !spin = 1 then
            Trace.emit_now tracer ~worker:wid
              (Nd_trace.Event.Steal_attempt { victim = -1 });
          if !spin > 64 then Domain.cpu_relax ()
        end
    done
  in
  let domains = List.init (nw - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  List.iter Domain.join domains;
  assert (Atomic.get remaining = 0)

(* ------------------------- fork-join executor ---------------------- *)

type job = { work : int -> unit; completed : bool Atomic.t }

type ctx = {
  deques : job Deque.t array;
  nw : int;
  finished : bool Atomic.t;
  tracer : Trace.t;
  traced : bool;
}

let help ctx wid =
  match Deque.pop ctx.deques.(wid) with
  | Some j ->
    j.work wid;
    Atomic.set j.completed true;
    true
  | None ->
    let rec try_steal i =
      if i >= ctx.nw then false
      else
        let victim = (wid + i) mod ctx.nw in
        match Deque.steal ctx.deques.(victim) with
        | Some j ->
          if ctx.traced then
            Trace.emit_now ctx.tracer ~worker:wid
              (Nd_trace.Event.Steal_success { victim; vertex = -1 });
          j.work wid;
          Atomic.set j.completed true;
          true
        | None -> try_steal (i + 1)
    in
    try_steal 1

let rec exec_tree ctx wid tree =
  match tree with
  | Spawn_tree.Leaf s ->
    if ctx.traced && s.Strand.work > 0 then
      Trace.emit_now ctx.tracer ~worker:wid
        (Nd_trace.Event.Strand_begin
           { vertex = -1; work = s.Strand.work; label = s.Strand.label });
    (match s.Strand.action with Some f -> f () | None -> ());
    if ctx.traced && s.Strand.work > 0 then
      Trace.emit_now ctx.tracer ~worker:wid
        (Nd_trace.Event.Strand_end { vertex = -1 })
  | Spawn_tree.Seq l -> List.iter (exec_tree ctx wid) l
  | Spawn_tree.Fire { src; snk; _ } ->
    (* NP projection: serial composition *)
    exec_tree ctx wid src;
    exec_tree ctx wid snk
  | Spawn_tree.Par [] -> ()
  | Spawn_tree.Par (first :: rest) ->
    let jobs =
      List.map
        (fun t ->
          let j =
            { work = (fun w -> exec_tree ctx w t); completed = Atomic.make false }
          in
          Deque.push ctx.deques.(wid) j;
          j)
        rest
    in
    if ctx.traced && rest <> [] then
      Trace.emit_now ctx.tracer ~worker:wid
        (Nd_trace.Event.Spawn { count = List.length rest });
    exec_tree ctx wid first;
    List.iter
      (fun j ->
        (* help-first join: run other work while waiting *)
        let spin = ref 0 in
        while not (Atomic.get j.completed) do
          if help ctx wid then spin := 0
          else begin
            if ctx.traced && !spin = 0 then
              Trace.emit_now ctx.tracer ~worker:wid
                (Nd_trace.Event.Steal_attempt { victim = -1 });
            backoff spin
          end
        done)
      jobs

let run_fork_join ?workers ?(tracer = Trace.null) program =
  let nw = match workers with Some w -> max 1 w | None -> default_workers () in
  let ctx =
    {
      deques = Array.init nw (fun _ -> Deque.create ());
      nw;
      finished = Atomic.make false;
      tracer;
      traced = Trace.enabled tracer;
    }
  in
  let helper wid () =
    let spin = ref 0 in
    while not (Atomic.get ctx.finished) do
      if help ctx wid then spin := 0
      else begin
        if ctx.traced && !spin = 0 then
          Trace.emit_now ctx.tracer ~worker:wid
            (Nd_trace.Event.Steal_attempt { victim = -1 });
        backoff spin
      end
    done
  in
  let domains = List.init (nw - 1) (fun i -> Domain.spawn (helper (i + 1))) in
  exec_tree ctx 0 (Program.tree program);
  Atomic.set ctx.finished true;
  List.iter Domain.join domains
