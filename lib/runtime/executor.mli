(** Multicore executors for compiled ND programs, on OCaml 5 domains.

    {!run_dataflow} is the ND runtime: the algorithm DAG's dependency
    counters drive execution directly — a worker that completes a strand
    decrements its successors and pushes the newly enabled ones onto its
    own Chase–Lev deque, stealing when empty.  The hot path runs on the
    DAG's flat CSR adjacency ({!Nd_dag.Dag.csr}): the wake-up loop is an
    int-array scan with no allocation, and targets with a single
    predecessor skip the atomic decrement entirely.  Fire-construct
    parallelism is therefore exploited exactly as the DRS exposes it.

    {!run_fork_join} is the NP runtime: a classic fork–join traversal of
    the program's spawn tree (fires treated as serial compositions), with
    help-first joins.  Comparing the two on the same workload is
    experiment E9.

    Both executors accept a [grain]: subtrees of the program tree whose
    total work is at most [grain] are executed serially by one worker
    (in tree order, which is a valid topological order of any subtree's
    sub-DAG), eliminating per-vertex scheduling overhead below the
    threshold.  For the dataflow executor this contracts the DAG into a
    coarse task graph once per run; [grain = 0] (the default) keeps
    vertex granularity.  Correctness is unaffected: coarsening only ever
    adds serialization.

    Correctness requires the program's DAG to be determinacy-race free
    (verified by {!Nd_dag.Race} in the test suite); then every execution
    computes the same result as {!Nd.Serial_exec.run}. *)

(** [run_dataflow ?workers ?grain ?tracer program] executes all strand
    actions in dependency order on [workers] domains (default:
    {!default_workers}).  With [tracer] (use
    {!Nd_trace.Collector.wallclock} with [~workers:nw] rings), emits
    strand begin/end, fire, spawn and steal events at wall-clock
    nanosecond timestamps; each domain writes only its own ring, so
    tracing needs no synchronization and the untraced path costs one
    branch per instrumentation point.  Strand events always carry real
    DAG vertex ids, also under coarsening (coarse tasks emit one
    interval per contained leaf). *)
val run_dataflow :
  ?workers:int ->
  ?grain:int ->
  ?tracer:Nd_trace.Collector.t ->
  Nd.Program.t ->
  unit

(** [run_fork_join ?workers ?grain ?tracer program] executes the NP
    projection of the spawn tree with nested fork–join parallelism.  The
    fire constructs are treated as serial compositions, so this is
    exactly the paper's NP baseline executed for real.  Strand events
    carry the leaf's DAG vertex id; steal events carry no vertex (jobs
    are subtrees, not vertices).  Idle workers back off with capped
    exponential [cpu_relax] pauses escalating to short sleeps. *)
val run_fork_join :
  ?workers:int ->
  ?grain:int ->
  ?tracer:Nd_trace.Collector.t ->
  Nd.Program.t ->
  unit

(** [default_workers ()] — the worker count used when [?workers] is
    omitted: the [NDSIM_WORKERS] environment variable when set to a
    positive integer, otherwise [Domain.recommended_domain_count]
    capped at 8. *)
val default_workers : unit -> int

(** [parallel_for ?workers n f] runs [f wid i] for every [i] in
    [0 .. n-1] across [min n workers] domains (default
    {!default_workers}).  Iterations are claimed dynamically off a
    shared atomic counter, so wildly uneven iteration costs still
    balance; [wid] is the worker index in [0 .. workers-1] for
    per-worker state such as trace rings.  [f] must be safe to call
    concurrently for distinct [i].  If an iteration raises, remaining
    unclaimed iterations are abandoned and the first exception is
    re-raised (with its backtrace) after all workers stop; iterations
    already claimed by other workers run to completion first, so an
    observer never sees a half-executed iteration.  Calls nest: [f] may
    itself call [parallel_for] (each call spawns its own domains), and
    an inner exception unwinds through every level. *)
val parallel_for : ?workers:int -> int -> (int -> int -> unit) -> unit

(** {2 The dataflow engine as a value}

    The dependence-counting core of {!run_dataflow}, exposed so the
    conformance harness ([Nd_check.Explore]) can advance the {e exact}
    production wake-up loop and Chase–Lev deque discipline from a
    single-domain controlled scheduler.  {!run_dataflow} itself is
    [make_engine] plus one domain per worker looping
    [try_pop]/[try_steal] with backoff. *)
module Engine : sig
  type t

  (** Number of worker slots (= per-worker deques). *)
  val n_workers : t -> int

  (** Total schedulable tasks (DAG vertices, or coarse tasks under a
      grain). *)
  val n_tasks : t -> int

  (** Tasks not yet executed. *)
  val remaining : t -> int

  (** All tasks executed: the run is complete. *)
  val finished : t -> bool

  (** [try_pop eng wid] — worker [wid] pops its own deque; on success
      the task is executed and its newly enabled successors are pushed
      back onto [wid]'s deque (the production wake-up loop).  [false]
      when the deque was empty. *)
  val try_pop : t -> int -> bool

  (** [try_steal eng ~thief ~victim] — [thief] steals from [victim]'s
      deque and, on success, executes the task as {!try_pop} does.
      [false] when the victim looked empty or the race was lost. *)
  val try_steal : t -> thief:int -> victim:int -> bool
end

(** [make_engine ?workers ?grain ?tracer program] builds the dataflow
    engine — counters initialized, sources seeded round-robin onto the
    deques — without running anything.  Each task must then be executed
    by exactly one worker via {!Engine.try_pop}/{!Engine.try_steal}
    until {!Engine.finished}. *)
val make_engine :
  ?workers:int ->
  ?grain:int ->
  ?tracer:Nd_trace.Collector.t ->
  Nd.Program.t ->
  Engine.t

(** {2 Backend plumbing}

    Shared between this module's two executors and {!Fiber_exec}, so
    every backend schedules the same tasks, honours [grain]
    identically, and emits identical strand/steal trace events. *)

(** The compiled, backend-neutral view of one run: [tg_tasks] tasks
    (DAG vertices at [grain = 0], coarse tasks otherwise) whose
    dependencies are the CSR [tg_succ_off]/[tg_succ_tgt] with
    in-degrees [tg_indeg], and [tg_exec wid t] executing task [t] on
    worker [wid].  [tg_steal_vertex t] is the representative DAG vertex
    for steal trace events ([None] for coarse leaf-range tasks).
    [tg_indeg] may be shared with the program's cached CSR — treat it
    as read-only. *)
type task_graph = {
  tg_tasks : int;
  tg_succ_off : int array;
  tg_succ_tgt : int array;
  tg_indeg : int array;
  tg_exec : int -> int -> unit;
  tg_steal_vertex : int -> int option;
}

(** [task_graph ?grain ?tracer program] compiles [program] to the task
    graph every backend runs: grain coarsening (or the raw DAG CSR)
    plus the tracing-aware strand execution closure. *)
val task_graph :
  ?grain:int -> ?tracer:Nd_trace.Collector.t -> Nd.Program.t -> task_graph

(** [spin_cap ~nw] — failed-sweep count at which an idle worker's
    backoff escalates from [cpu_relax] bursts to short sleeps; nearly
    immediate when [nw] oversubscribes the machine.  Exposed for
    backends implemented outside this module. *)
val spin_cap : nw:int -> int

(** [backoff ~spin_cap spin] — one step of the shared idle-loop backoff
    policy: increments [spin] and either spins with [cpu_relax] bursts
    or sleeps (capped at 1ms) once past [spin_cap].  Reset [spin] to 0
    on any successful dequeue. *)
val backoff : spin_cap:int -> int ref -> unit
