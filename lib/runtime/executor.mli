(** Multicore executors for compiled ND programs, on OCaml 5 domains.

    {!run_dataflow} is the ND runtime: the algorithm DAG's dependency
    counters drive execution directly — a worker that completes a strand
    decrements its successors and pushes the newly enabled ones onto its
    own Chase–Lev deque, stealing when empty.  Fire-construct parallelism
    is therefore exploited exactly as the DRS exposes it.

    {!run_fork_join} is the NP runtime: a classic fork–join traversal of
    the spawn tree (fires treated as serial compositions), with
    help-first joins.  Comparing the two on the same workload is
    experiment E9.

    Correctness requires the program's DAG to be determinacy-race free
    (verified by {!Nd_dag.Race} in the test suite); then every execution
    computes the same result as {!Nd.Serial_exec.run}. *)

(** [run_dataflow ?workers ?tracer program] executes all strand actions
    in dependency order on [workers] domains (default:
    [Domain.recommended_domain_count], capped at 8).  With [tracer]
    (use {!Nd_trace.Collector.wallclock} with [~workers:nw] rings),
    emits strand begin/end, fire, spawn and steal events at wall-clock
    nanosecond timestamps; each domain writes only its own ring, so
    tracing needs no synchronization and the untraced path costs one
    branch per instrumentation point. *)
val run_dataflow :
  ?workers:int -> ?tracer:Nd_trace.Collector.t -> Nd.Program.t -> unit

(** [run_fork_join ?workers ?tracer program] executes the NP projection
    of the spawn tree with nested fork–join parallelism.  The fire
    constructs are treated as serial compositions, so this is exactly
    the paper's NP baseline executed for real.  Strand events carry
    [vertex = -1] (the executor walks the tree, not the DAG); idle
    workers back off with capped exponential [cpu_relax] pauses. *)
val run_fork_join :
  ?workers:int -> ?tracer:Nd_trace.Collector.t -> Nd.Program.t -> unit

(** [default_workers ()] — the worker count used when [?workers] is
    omitted. *)
val default_workers : unit -> int
