module Trace = Nd_trace.Collector

(* ----------------------------- hooks ------------------------------- *)

module Hooks = struct
  let yield : (string -> unit) option ref = ref None

  let lost_wakeup = ref false

  let set_yield f = yield := f

  let set_lost_wakeup b = lost_wakeup := b
end

let[@inline] yield_point what =
  match !Hooks.yield with None -> () | Some f -> f what

(* --------------------------- injector ------------------------------ *)

(* A small closable MPMC used for external submissions and for
   resumptions arriving from threads that are not workers of the
   target pool.  The sharded [Nd_serve.Mpmc] lives above this library
   in the dependency graph, and the injector is off the hot path (the
   hot path is the per-worker deques), so a single mutex-protected
   FIFO is the right tool: it is also trivially deterministic, which
   the interleaving explorer relies on. *)
module Inject = struct
  type 'a t = {
    lock : Mutex.t;
    cond : Condition.t;
    items : 'a Queue.t;
    mutable closed : bool;
  }

  exception Closed

  let create () =
    {
      lock = Mutex.create ();
      cond = Condition.create ();
      items = Queue.create ();
      closed = false;
    }

  let push t x =
    Mutex.protect t.lock (fun () ->
        if t.closed then raise Closed;
        Queue.push x t.items;
        Condition.signal t.cond)

  let try_pop t = Mutex.protect t.lock (fun () -> Queue.take_opt t.items)

  (* blocks; [None] means closed and drained *)
  let pop t =
    Mutex.protect t.lock (fun () ->
        let rec wait () =
          match Queue.take_opt t.items with
          | Some _ as r -> r
          | None ->
            if t.closed then None
            else begin
              Condition.wait t.cond t.lock;
              wait ()
            end
        in
        wait ())

  let close t =
    Mutex.protect t.lock (fun () ->
        t.closed <- true;
        Condition.broadcast t.cond)

  let is_empty t = Mutex.protect t.lock (fun () -> Queue.is_empty t.items)

  let is_closed t = Mutex.protect t.lock (fun () -> t.closed)
end

exception Closed = Inject.Closed

(* ---------------------- promises and the pool ---------------------- *)

(* A promise is a single atomic cell: [Pending waiters] until the one
   [fulfill], then [Fulfilled v] forever.  Parking is a CAS that adds
   the awaiting fiber's continuation to the waiter list; fulfilling is
   a CAS to [Fulfilled] that takes the whole list.  Every transition
   goes through one SC atomic, which is the memory-model argument for
   cross-domain hand-off: the fulfilling domain's writes happen-before
   the CAS, which happens-before the awaiting fiber observing
   [Fulfilled] (or being resumed through a synchronized queue). *)
type 'a state =
  | Fulfilled of 'a
  | Pending of 'a waiter list

and 'a waiter = { wpool : pool; wk : ('a, unit) Effect.Deep.continuation }

and pool = {
  nw : int;
  name : string;
  deques : (unit -> unit) Deque.t array;
  injector : (unit -> unit) Inject.t;
  remaining : int Atomic.t;  (* fibers spawned and not yet finished *)
  blocked : int Atomic.t;  (* fibers currently parked on a promise *)
  peak_blocked : int Atomic.t;
  fibers : int Atomic.t;  (* fibers ever spawned *)
  completed : int Atomic.t;
  suspensions : int Atomic.t;
  steals : int Atomic.t;
  errors : int Atomic.t;
  last_error : string option Atomic.t;
  (* progress stamp, bumped on every enqueue: the deadlock detector
     samples it around its scan to reject in-flight hand-offs *)
  events : int Atomic.t;
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
  abort_on_error : bool;
  aborted : bool Atomic.t;
  lock : Mutex.t;  (* guards [domains] / lazy start (server mode) *)
  mutable domains : unit Domain.t list;
  tracer : Trace.t;
  traced : bool;
}

type 'a promise = 'a state Atomic.t

type t = pool

exception Deadlock of { blocked : int }

type stats = {
  workers : int;
  fibers : int;
  completed : int;
  suspensions : int;
  steals : int;
  peak_blocked : int;
  blocked : int;
  errors : int;
}

(* A parked continuation bundled with the pool whose worker parked it,
   so a fulfill from anywhere (another pool's fiber, a plain thread)
   can route the resumption back to the right run queues. *)
type resumption = { rpool : pool; resume : unit -> unit }

type _ Effect.t +=
  | Sched : (unit -> unit) -> unit Effect.t
  | Await : 'a promise -> 'a Effect.t
  | Fulfill : resumption list -> unit Effect.t
  | Yield : unit Effect.t

(* Which pool/worker the current *domain* is running for.  Effect
   handlers read this instead of capturing a worker id at fiber-spawn
   time: a fiber that parks may be resumed by any worker of the pool,
   and only the domain knows whose deque it owns right now. *)
let dls : (pool * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let cur () = !(Domain.DLS.get dls)

let self () = match cur () with Some (_, w) -> Some w | None -> None

let bump t = Atomic.incr t.events

(* Enqueue a runnable thunk for [target]: onto the current worker's own
   deque when this domain is a worker of [target], else through the
   injector (synchronized, so cross-domain hand-off is safe). *)
let enqueue target thunk =
  (match cur () with
  | Some (p, w) when p == target -> Deque.push p.deques.(w) thunk
  | _ -> Inject.push target.injector thunk);
  bump target

let note_blocked (t : pool) =
  Atomic.incr t.suspensions;
  let b = 1 + Atomic.fetch_and_add t.blocked 1 in
  let rec upd () =
    let p = Atomic.get t.peak_blocked in
    if b > p && not (Atomic.compare_and_set t.peak_blocked p b) then upd ()
  in
  upd ()

let schedule_resumption r =
  Atomic.decr r.rpool.blocked;
  enqueue r.rpool r.resume

let is_fatal = function
  | Out_of_memory | Stack_overflow | Assert_failure _ -> true
  | _ -> false

(* Fiber error policy mirrors Micropool's: fatal runtime exceptions
   kill the worker (and surface at join); anything else is counted and
   retained, and additionally aborts the whole run for one-shot
   program pools. *)
let wrap_body (pool : pool) f () =
  try f ()
  with e when not (is_fatal e) ->
    let bt = Printexc.get_raw_backtrace () in
    Atomic.incr pool.errors;
    Atomic.set pool.last_error (Some (Printexc.to_string e));
    if pool.abort_on_error then begin
      ignore (Atomic.compare_and_set pool.failure None (Some (e, bt)));
      Atomic.set pool.aborted true
    end

let fiber_done (pool : pool) =
  Atomic.incr pool.completed;
  Atomic.decr pool.remaining

(* Handler side of [Await]: park the fiber by CAS-ing its continuation
   into the waiter list, retrying when a racing fulfill wins (in which
   case the value is there and we resume inline — the fiber never
   counts as suspended). *)
let await_park (type a) pool (p : a promise)
    (k : (a, unit) Effect.Deep.continuation) =
  let rec park () =
    match Atomic.get p with
    | Fulfilled v -> Effect.Deep.continue k v
    | Pending ws as old ->
      yield_point "await-park";
      let parked = Pending ({ wpool = pool; wk = k } :: ws) in
      if !Hooks.lost_wakeup then begin
        (* mutation seam: a blind store loses the race with a
           concurrent fulfill — the fiber parks forever *)
        Atomic.set p parked;
        note_blocked pool
      end
      else if Atomic.compare_and_set p old parked then note_blocked pool
      else park ()
  in
  park ()

let rec handler pool =
  {
    Effect.Deep.retc = (fun () -> fiber_done pool);
    exnc =
      (fun e ->
        fiber_done pool;
        raise e);
    effc =
      (fun (type b) (eff : b Effect.t) ->
        match eff with
        | Sched f ->
          Some
            (fun (k : (b, unit) Effect.Deep.continuation) ->
              do_spawn pool f;
              Effect.Deep.continue k ())
        | Await p -> Some (fun k -> await_park pool p k)
        | Fulfill rs ->
          Some
            (fun k ->
              List.iter schedule_resumption rs;
              Effect.Deep.continue k ())
        | Yield ->
          Some
            (fun k ->
              enqueue pool (fun () -> Effect.Deep.continue k ()))
        | _ -> None);
  }

and fiber_thunk pool f () =
  Effect.Deep.match_with (wrap_body pool f) () (handler pool)

and do_spawn pool f =
  Atomic.incr pool.fibers;
  Atomic.incr pool.remaining;
  enqueue pool (fiber_thunk pool f)

(* --------------------------- public ops ---------------------------- *)

let promise () = Atomic.make (Pending [])

let peek p = match Atomic.get p with Fulfilled v -> Some v | Pending _ -> None

let await p =
  match Atomic.get p with
  | Fulfilled v -> v
  | Pending _ -> (
    try Effect.perform (Await p)
    with Effect.Unhandled _ ->
      invalid_arg "Fiber_exec.await: not inside a fiber")

let fulfill p v =
  let rec take () =
    match Atomic.get p with
    | Fulfilled _ -> invalid_arg "Fiber_exec.fulfill: promise fulfilled twice"
    | Pending ws as old ->
      yield_point "fulfill-take";
      if Atomic.compare_and_set p old (Fulfilled v) then ws else take ()
  in
  let ws = take () in
  if ws <> [] then begin
    (* waiters parked LIFO; resume in arrival order *)
    let rs =
      List.rev_map
        (fun { wpool; wk } ->
          { rpool = wpool; resume = (fun () -> Effect.Deep.continue wk v) })
        ws
    in
    try Effect.perform (Fulfill rs)
    with Effect.Unhandled _ ->
      (* not inside a fiber: hand off through the injectors *)
      List.iter schedule_resumption rs
  end

let spawn f =
  try Effect.perform (Sched f)
  with Effect.Unhandled _ ->
    invalid_arg "Fiber_exec.spawn: not inside a fiber (use submit)"

let yield () = try Effect.perform Yield with Effect.Unhandled _ -> ()

(* ------------------------- pool mechanics -------------------------- *)

let make_pool ~nw ~name ~abort_on_error ~tracer () =
  {
    nw;
    name;
    deques = Array.init nw (fun _ -> Deque.create ());
    injector = Inject.create ();
    remaining = Atomic.make 0;
    blocked = Atomic.make 0;
    peak_blocked = Atomic.make 0;
    fibers = Atomic.make 0;
    completed = Atomic.make 0;
    suspensions = Atomic.make 0;
    steals = Atomic.make 0;
    errors = Atomic.make 0;
    last_error = Atomic.make None;
    events = Atomic.make 0;
    failure = Atomic.make None;
    abort_on_error;
    aborted = Atomic.make false;
    lock = Mutex.create ();
    domains = [];
    tracer;
    traced = Trace.enabled tracer;
  }

let n_workers t = t.nw

let name t = t.name

let remaining t = Atomic.get t.remaining

let finished t = Atomic.get t.remaining = 0

let stats (t : pool) =
  {
    workers = t.nw;
    fibers = Atomic.get t.fibers;
    completed = Atomic.get t.completed;
    suspensions = Atomic.get t.suspensions;
    steals = Atomic.get t.steals;
    peak_blocked = Atomic.get t.peak_blocked;
    blocked = Atomic.get t.blocked;
    errors = Atomic.get t.errors;
  }

let last_error t = Atomic.get t.last_error

let try_pop t wid =
  match Deque.pop t.deques.(wid) with
  | Some f ->
    f ();
    true
  | None -> false

let try_steal t ~thief ~victim =
  match Deque.steal t.deques.(victim) with
  | Some f ->
    Atomic.incr t.steals;
    if t.traced then
      Trace.emit_now t.tracer ~worker:thief
        (Nd_trace.Event.Steal_success { victim; vertex = None });
    f ();
    true
  | None -> false

let try_advance t wid =
  try_pop t wid
  || (let rec go i =
        i < t.nw
        && (try_steal t ~thief:wid ~victim:((wid + i) mod t.nw) || go (i + 1))
      in
      go 1)
  ||
  match Inject.try_pop t.injector with
  | Some f ->
    f ();
    true
  | None -> false

let queues_empty t =
  Inject.is_empty t.injector
  && Array.for_all (fun d -> Deque.size d = 0) t.deques

(* Exact in the single-domain explorer: between scheduler steps no
   fiber is mid-flight, so parked = live and empty queues mean no one
   can ever run again. *)
let stalled t =
  Atomic.get t.remaining > 0
  && Atomic.get t.blocked = Atomic.get t.remaining
  && queues_empty t

(* Multi-domain deadlock check: [stalled] alone can race an in-flight
   hand-off, but any hand-off bumps [events], and the performer of an
   in-flight enqueue is itself a live unblocked fiber — sampling the
   stamp around the scan rejects the window. *)
let deadlocked t =
  let e0 = Atomic.get t.events in
  stalled t && Atomic.get t.events = e0

(* --------------------- one-shot program pools ---------------------- *)

(* One fiber per task of the backend-neutral task graph: await every
   predecessor's promise, run the task, fulfill our own.  A fire-edge
   (or any other) wait thereby suspends the fiber — the worker's slot
   is immediately free for runnable work — instead of pinning a worker
   into the spin loop the dep-counter engine would need. *)
let seed_program (pool : pool) (g : Executor.task_graph) =
  let n = g.Executor.tg_tasks in
  let succ_off = g.Executor.tg_succ_off and succ_tgt = g.Executor.tg_succ_tgt in
  let m = succ_off.(n) in
  let pred_off = Array.make (n + 1) 0 in
  for i = 0 to m - 1 do
    let v = succ_tgt.(i) in
    pred_off.(v + 1) <- pred_off.(v + 1) + 1
  done;
  for v = 1 to n do
    pred_off.(v) <- pred_off.(v) + pred_off.(v - 1)
  done;
  let fill = Array.sub pred_off 0 (max 1 n) in
  let pred_tgt = Array.make (max 1 m) 0 in
  for u = 0 to n - 1 do
    for i = succ_off.(u) to succ_off.(u + 1) - 1 do
      let v = succ_tgt.(i) in
      pred_tgt.(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1
    done
  done;
  let promises = Array.init n (fun _ -> promise ()) in
  let body task () =
    for i = pred_off.(task) to pred_off.(task + 1) - 1 do
      await promises.(pred_tgt.(i))
    done;
    let wid = match self () with Some w -> w | None -> 0 in
    g.Executor.tg_exec wid task;
    fulfill promises.(task) ()
  in
  (* seed every fiber round-robin before any worker domain exists, so
     pushing to arbitrary deques is race-free here *)
  for task = 0 to n - 1 do
    Atomic.incr pool.fibers;
    Atomic.incr pool.remaining;
    Deque.push pool.deques.(task mod pool.nw) (fiber_thunk pool (body task))
  done;
  bump pool;
  if pool.traced then
    Trace.emit_now pool.tracer ~worker:0 (Nd_trace.Event.Spawn { count = n })

let make_engine ?workers ?grain ?(tracer = Trace.null) program =
  let nw =
    match workers with Some w -> max 1 w | None -> Executor.default_workers ()
  in
  let pool = make_pool ~nw ~name:"fiber" ~abort_on_error:true ~tracer () in
  seed_program pool (Executor.task_graph ?grain ~tracer program);
  pool

let with_worker_dls pool wid f =
  let cell = Domain.DLS.get dls in
  let saved = !cell in
  cell := Some (pool, wid);
  Fun.protect ~finally:(fun () -> cell := saved) f

let worker_loop (pool : pool) wid =
  with_worker_dls pool wid @@ fun () ->
  let cap = Executor.spin_cap ~nw:pool.nw in
  let spin = ref 0 in
  while Atomic.get pool.remaining > 0 && not (Atomic.get pool.aborted) do
    if try_advance pool wid then spin := 0
    else if !spin > 32 && deadlocked pool then begin
      ignore
        (Atomic.compare_and_set pool.failure None
           (Some
              ( Deadlock { blocked = Atomic.get pool.blocked },
                Printexc.get_callstack 0 )));
      Atomic.set pool.aborted true
    end
    else begin
      if pool.traced && !spin = 0 then
        Trace.emit_now pool.tracer ~worker:wid
          (Nd_trace.Event.Steal_attempt { victim = -1 });
      Executor.backoff ~spin_cap:cap spin
    end
  done

(* record any escaping exception (fatal fiber errors kill the worker)
   so the other workers stop instead of spinning on a count that will
   never reach zero *)
let worker_run pool wid () =
  try worker_loop pool wid
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    ignore (Atomic.compare_and_set pool.failure None (Some (e, bt)));
    Atomic.set pool.aborted true;
    raise e

let run_program ?workers ?grain ?tracer program =
  let pool = make_engine ?workers ?grain ?tracer program in
  let domains =
    List.init (pool.nw - 1) (fun i ->
        Domain.spawn (fun () -> worker_run pool (i + 1) ()))
  in
  (try worker_run pool 0 () with _ -> ());
  List.iter (fun d -> try Domain.join d with _ -> ()) domains;
  match Atomic.get pool.failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> stats pool

let run ?workers ?grain ?tracer program =
  ignore (run_program ?workers ?grain ?tracer program)

(* ------------------------ long-lived pools ------------------------- *)

let create ?workers ?(name = "fiber") () =
  let nw =
    match workers with Some w -> max 1 w | None -> Executor.default_workers ()
  in
  make_pool ~nw ~name ~abort_on_error:false ~tracer:Trace.null ()

let server_loop (pool : pool) wid =
  with_worker_dls pool wid @@ fun () ->
  let cap = Executor.spin_cap ~nw:pool.nw in
  let rec loop () =
    if try_advance pool wid then loop ()
    else
      match Inject.pop pool.injector with
      | Some f ->
        f ();
        loop ()
      | None ->
        (* closed and drained: finish the fibers still in flight *)
        let spin = ref 0 in
        while Atomic.get pool.remaining > 0 && not (deadlocked pool) do
          if try_advance pool wid then spin := 0
          else Executor.backoff ~spin_cap:cap spin
        done
  in
  loop ()

let started t = Mutex.protect t.lock (fun () -> t.domains <> [])

let ensure_started t =
  Mutex.protect t.lock (fun () ->
      if t.domains = [] && not (Inject.is_closed t.injector) then
        t.domains <-
          List.init t.nw (fun wid -> Domain.spawn (fun () -> server_loop t wid)))

let submit (t : pool) job =
  ensure_started t;
  Atomic.incr t.fibers;
  Atomic.incr t.remaining;
  (try Inject.push t.injector (fiber_thunk t job)
   with Closed ->
     Atomic.decr t.fibers;
     Atomic.decr t.remaining;
     raise Closed);
  bump t

let shutdown t =
  Inject.close t.injector;
  let ds =
    Mutex.protect t.lock (fun () ->
        let ds = t.domains in
        t.domains <- [];
        ds)
  in
  List.iter Domain.join ds
