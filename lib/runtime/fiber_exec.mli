(** Effects-based fiber executor: the third real backend.

    The paper's schedulers assume a worker never burns its slot waiting
    on a fire edge; the fork–join backend serializes fires away and the
    dep-counter backend spins on enabling.  Here every task of the
    compiled {!Executor.task_graph} is a {e fiber} — a lightweight
    thread implemented with OCaml 5 effect handlers — that [await]s a
    {!promise} per predecessor and [fulfill]s its own on completion.  A
    wait on an unfulfilled promise captures the fiber's continuation
    into the promise's waiter list and returns the worker to its
    scheduling loop, so a blocked fire edge costs no worker at all; the
    matching [fulfill] re-queues the continuation.

    Scheduling is per-domain Chase–Lev deques ({!Deque}) with stealing,
    plus one synchronized injector for external submissions and for
    resumptions crossing in from non-worker threads.  The scheduler
    protocol is three effects — [Sched] (spawn), [Await], [Fulfill] —
    performed by fibers and interpreted by the per-pool handler; the
    handler resolves "my deque" through domain-local state, because a
    parked fiber may be resumed by any worker of the pool.

    Promises are single SC-atomic cells ([Pending waiters] →
    [Fulfilled v]), which carries the cross-domain memory-model
    argument: the fulfilling domain's prior writes happen-before the
    fulfilling CAS, which happens-before the resumed fiber runs
    (either inline after observing [Fulfilled], or through a
    synchronized run queue).  See DESIGN.md §15. *)

type t
(** A fiber pool: either a one-shot program run ({!make_engine} /
    {!run_program}) or a long-lived server pool ({!create}). *)

type 'a promise

(** Raised by worker 0 of {!run_program} when every live fiber is
    parked and every queue is empty — the fiber-level image of a
    cyclic or unfulfillable wait. *)
exception Deadlock of { blocked : int }

(** Raised by {!submit} after {!shutdown}. *)
exception Closed

type stats = {
  workers : int;
  fibers : int;  (** fibers ever spawned (tasks, submissions, spawns) *)
  completed : int;  (** fibers finished (including erroring ones) *)
  suspensions : int;  (** times a fiber parked on an unfulfilled promise *)
  steals : int;  (** successful deque steals *)
  peak_blocked : int;  (** high-water mark of simultaneously parked fibers *)
  blocked : int;  (** fibers parked right now *)
  errors : int;  (** fibers whose body raised (non-fatal) *)
}

(** {2 Promises}

    Usable from any thread; {!await} additionally works outside a fiber
    only on an already-fulfilled promise (it cannot park). *)

val promise : unit -> 'a promise

(** [fulfill p v] — fulfill [p] and re-queue every parked waiter on the
    pool that parked it.  @raise Invalid_argument on a second fulfill. *)
val fulfill : 'a promise -> 'a -> unit

(** [await p] — the promise's value; parks the calling fiber until
    fulfilled.  @raise Invalid_argument outside a fiber when [p] is
    not yet fulfilled. *)
val await : 'a promise -> 'a

val peek : 'a promise -> 'a option

(** {2 Fiber operations} *)

(** [spawn f] — a new fiber of the current pool, queued on the current
    worker's deque.  @raise Invalid_argument outside a fiber. *)
val spawn : (unit -> unit) -> unit

(** Reschedule the current fiber behind its worker's queued work; a
    no-op outside a fiber. *)
val yield : unit -> unit

(** Worker index of the calling domain in its pool, [None] off-pool.
    Stable across [await] only on single-worker pools — a resumed
    fiber may run anywhere. *)
val self : unit -> int option

(** {2 Running programs} *)

(** [run_program ?workers ?grain ?tracer program] executes the compiled
    program as one fiber per task of {!Executor.task_graph} (so [grain]
    and [tracer] mean exactly what they do for the other backends) and
    returns the pool's counters.  Strand/steal/spawn trace events match
    {!Executor.run_dataflow}'s.  A fiber body raising aborts the run
    and re-raises; an unfulfillable wait raises {!Deadlock} instead of
    hanging. *)
val run_program :
  ?workers:int ->
  ?grain:int ->
  ?tracer:Nd_trace.Collector.t ->
  Nd.Program.t ->
  stats

(** {!run_program} with the result ignored — the {!Backend.S}-shaped
    entry point. *)
val run :
  ?workers:int ->
  ?grain:int ->
  ?tracer:Nd_trace.Collector.t ->
  Nd.Program.t ->
  unit

(** {2 Long-lived server pools}

    {!Micropool}-shaped: domains spawn lazily on first {!submit}, each
    submission runs as a root fiber, errors are counted and retained
    rather than fatal (except [Out_of_memory]/[Stack_overflow]/
    [Assert_failure], which kill the worker and re-raise at
    {!shutdown}'s join). *)

val create : ?workers:int -> ?name:string -> unit -> t

val name : t -> string

val started : t -> bool

(** @raise Closed after {!shutdown}. *)
val submit : t -> (unit -> unit) -> unit

(** Close the injector, drain, finish in-flight fibers, join the
    domains.  Idempotent. *)
val shutdown : t -> unit

val stats : t -> stats

(** [Printexc.to_string] of the most recent non-fatal fiber error. *)
val last_error : t -> string option

(** {2 Engine mode}

    The scheduler as a hand-advanced value, mirroring
    {!Executor.Engine}: [make_engine] seeds one fiber per task onto the
    deques without spawning domains, and [try_advance] runs one
    scheduling step.  [Nd_check.Explore] drives this from a
    single-domain controlled scheduler; with no domain registered as a
    worker, every hand-off routes through the synchronized injector,
    so a schedule (plus the seed) fully determines the run. *)

val make_engine :
  ?workers:int ->
  ?grain:int ->
  ?tracer:Nd_trace.Collector.t ->
  Nd.Program.t ->
  t

val n_workers : t -> int

val remaining : t -> int

val finished : t -> bool

(** Every live fiber is parked and every queue is empty: no step can
    make progress, ever.  Exact under the single-domain explorer. *)
val stalled : t -> bool

(** [try_advance t wid] — one scheduling step for worker [wid]: pop own
    deque, else steal, else take from the injector; runs the fiber
    slice on success.  [false] when nothing was runnable. *)
val try_advance : t -> int -> bool

(** {2 Test-only hooks}

    Verification seams for the conformance harness; never set in
    production code (mirrors {!Deque.Hooks}). *)
module Hooks : sig
  (** Preemption callback invoked between the load and the store of
      the promise park ("await-park") and take ("fulfill-take")
      transitions — the explorer performs an effect there to schedule
      around the exact windows where a lost wake-up could hide. *)
  val set_yield : (string -> unit) option -> unit

  (** [set_lost_wakeup true] replaces the park's compare-and-set with a
      blind store, re-introducing the classic lost-wakeup bug: a
      fulfill racing into the window is overwritten and the fiber
      parks forever.  Exists solely so the mutation smoke test can
      prove the explorer detects this bug class. *)
  val set_lost_wakeup : bool -> unit
end
