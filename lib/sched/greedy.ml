module Dag = Nd_dag.Dag
module Is = Nd_util.Interval_set
module Heap = Nd_util.Heap
open Nd

type stats = {
  time : int;
  work : int;
  span : int;
  space_hwm : int;
  n_procs : int;
}

let brent_bound s = ((s.work + s.n_procs - 1) / s.n_procs) + s.span

let run ~procs program =
  if procs < 1 then invalid_arg "Greedy.run: procs < 1";
  let dag = Program.dag program in
  let nv = Dag.n_vertices dag in
  let indeg = Array.make nv 0 in
  for v = 0 to nv - 1 do
    indeg.(v) <- List.length (Dag.preds dag v)
  done;
  let ready = Queue.create () in
  for v = 0 to nv - 1 do
    if indeg.(v) = 0 then Queue.push v ready
  done;
  let events : int Heap.t = Heap.create () in
  (* payload: vertex finishing at that time *)
  let free_procs = ref procs in
  let now = ref 0 in
  let makespan = ref 0 in
  let executed = ref 0 in
  (* live space = sum of running strands' footprints (an upper bound:
     overlap between concurrent strands is counted once per strand) *)
  let resident = ref 0 in
  let space_hwm = ref 0 in
  let fp_words v = Is.cardinal (Dag.footprint_of dag v) in
  let dispatch () =
    while !free_procs > 0 && not (Queue.is_empty ready) do
      let v = Queue.pop ready in
      decr free_procs;
      resident := !resident + fp_words v;
      if !resident > !space_hwm then space_hwm := !resident;
      Heap.push events (!now + Dag.work_of dag v) v
    done
  in
  dispatch ();
  while not (Heap.is_empty events) do
    let t, v = Heap.pop events in
    now := t;
    if t > !makespan then makespan := t;
    incr free_procs;
    incr executed;
    resident := !resident - fp_words v;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.push w ready)
      (Dag.succs dag v);
    dispatch ()
  done;
  if !executed < nv then failwith "Greedy.run: stalled (cyclic DAG?)";
  {
    time = !makespan;
    work = Dag.work dag;
    span = Dag.span dag;
    space_hwm = !space_hwm;
    n_procs = procs;
  }

module Shared : Scheduler.S = struct
  let name = "greedy"

  (* cache-blind and deterministic: both knobs are no-ops.  busy = work
     (a greedy processor only ever executes strand work). *)
  let run ?seed:_ ?comm_delay:_ program machine =
    let s = run ~procs:(Nd_pmh.Pmh.n_procs machine) program in
    {
      Scheduler.time = s.time;
      work = s.work;
      span = s.span;
      misses = [||];
      miss_cost = 0;
      space_hwm = s.space_hwm;
      busy = s.work;
      n_procs = s.n_procs;
      miss_table = None;
    }
end
