(** Greedy (Brent-style) list scheduler: p processors, a global ready
    pool, no locality model.  Provides the classic [T_p <= W/p + T_inf]
    sanity bound the tests verify, and a cache-blind lower envelope for
    the scheduling experiments. *)

type stats = {
  time : int;
  work : int;
  span : int;
  space_hwm : int;
      (** peak sum of footprints of concurrently running strands *)
  n_procs : int;
}

val run : procs:int -> Nd.Program.t -> stats

(** [brent_bound s] = W/p + T_inf (ceiling division). *)
val brent_bound : stats -> int

(** Zoo face; [procs] comes from the machine, both common knobs are
    no-ops (cache-blind and deterministic), [misses = [||]]. *)
module Shared : Scheduler.S
