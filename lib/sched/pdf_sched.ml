module Dag = Nd_dag.Dag
module Is = Nd_util.Interval_set
module Heap = Nd_util.Heap
module Pmh = Nd_pmh.Pmh
module Cache = Nd_mem.Cache_sim
open Nd

(* serial execution order: simulate the 1-processor depth-first run of
   the DAG (the schedule a serial execution of the spawn tree produces)
   and number the vertices in completion order.  Sources start lowest
   id first; a finished vertex's newly enabled successors run next,
   leftmost first — a LIFO ready stack, i.e. DFS. *)
let serial_order dag =
  let nv = Dag.n_vertices dag in
  let csr = Dag.csr dag in
  let indeg = Array.copy csr.Dag.indeg in
  let stack = ref [] in
  for v = nv - 1 downto 0 do
    if indeg.(v) = 0 then stack := v :: !stack
  done;
  let prio = Array.make nv 0 in
  let next = ref 0 in
  while !stack <> [] do
    match !stack with
    | [] -> assert false
    | v :: rest ->
      stack := rest;
      prio.(v) <- !next;
      incr next;
      let newly = ref [] in
      for k = csr.Dag.succ_off.(v + 1) - 1 downto csr.Dag.succ_off.(v) do
        let w = csr.Dag.succ_tgt.(k) in
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then newly := w :: !newly
      done;
      stack := !newly @ !stack
  done;
  if !next < nv then failwith "Pdf_sched: cyclic DAG";
  prio

let run ?seed:_ ?(comm_delay = 0) program machine =
  let dag = Program.dag program in
  let nv = Dag.n_vertices dag in
  let h = Pmh.n_levels machine in
  let n_procs = Pmh.n_procs machine in
  let prio = serial_order dag in
  (* one inclusive LRU per cache instance, as in the ws baseline *)
  let caches =
    Array.init h (fun i ->
        Array.init
          (Pmh.n_caches machine ~level:(i + 1))
          (fun _ -> Cache.create ~m:(Pmh.size machine ~level:(i + 1)) ()))
  in
  let misses = Array.make h 0 in
  let total_miss_cost = ref 0 in
  let vertex_cost p v =
    let cost = ref (Dag.work_of dag v) in
    let fp = Dag.footprint_of dag v in
    for j = 1 to h do
      let c = Pmh.cache_of_proc machine ~proc:p ~level:j in
      let dm = Cache.access_set caches.(j - 1).(c) fp in
      if dm > 0 then begin
        misses.(j - 1) <- misses.(j - 1) + dm;
        let mc = dm * Pmh.miss_cost machine ~level:j in
        cost := !cost + mc;
        total_miss_cost := !total_miss_cost + mc
      end
    done;
    !cost
  in
  let indeg = Array.make nv 0 in
  for v = 0 to nv - 1 do
    indeg.(v) <- List.length (Dag.preds dag v)
  done;
  (* global ready pool ordered by serial priority (min-heap, FIFO ties) *)
  let ready : int Heap.t = Heap.create () in
  for v = 0 to nv - 1 do
    if indeg.(v) = 0 then Heap.push ready prio.(v) v
  done;
  (* owner.(v) = processor that executed v, for the comm-delay charge *)
  let owner = Array.make nv (-1) in
  let needs_comm p v =
    comm_delay > 0
    && List.exists (fun u -> owner.(u) <> p) (Dag.preds dag v)
  in
  let events : int Heap.t = Heap.create () in
  let idle = Array.make n_procs false in
  let running = Array.make n_procs (-1) in
  let now = ref 0 in
  let wake_all () =
    for p = 0 to n_procs - 1 do
      if idle.(p) then begin
        idle.(p) <- false;
        Heap.push events !now p
      end
    done
  in
  let executed = ref 0 in
  let busy = ref 0 in
  let makespan = ref 0 in
  let resident = ref 0 in
  let space_hwm = ref 0 in
  let fp_words v = Is.cardinal (Dag.footprint_of dag v) in
  for p = 0 to n_procs - 1 do
    Heap.push events 0 p
  done;
  while not (Heap.is_empty events) do
    let t, p = Heap.pop events in
    now := t;
    if running.(p) >= 0 then begin
      if t > !makespan then makespan := t;
      let v = running.(p) in
      running.(p) <- (-1);
      incr executed;
      resident := !resident - fp_words v;
      List.iter
        (fun w ->
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then begin
            Heap.push ready prio.(w) w;
            wake_all ()
          end)
        (Dag.succs dag v)
    end;
    if not idle.(p) then
      if Heap.is_empty ready then idle.(p) <- true
      else begin
        let _, v = Heap.pop ready in
        let extra = if needs_comm p v then comm_delay else 0 in
        let d = extra + vertex_cost p v in
        owner.(v) <- p;
        running.(p) <- v;
        resident := !resident + fp_words v;
        if !resident > !space_hwm then space_hwm := !resident;
        busy := !busy + d;
        Heap.push events (t + d) p
      end
  done;
  if !executed < nv then failwith "Pdf_sched.run: stalled (cyclic DAG?)";
  {
    Scheduler.time = !makespan;
    work = Dag.work dag;
    span = Dag.span dag;
    misses;
    miss_cost = !total_miss_cost;
    space_hwm = !space_hwm;
    busy = !busy;
    n_procs;
    miss_table = Some (Nd_mem.Miss_table.of_sims caches);
  }

module Shared : Scheduler.S = struct
  let name = "pdf"

  let run = run
end
