(** Parallel Depth First scheduler (Blelloch–Gibbons–Matias).

    List scheduling with a global ready pool ordered by the vertices'
    {e serial} execution order: of all ready vertices, the p processors
    always run the p earliest in the depth-first 1-processor schedule.
    The classic result is that a PDF schedule's misses on a shared
    cache of size [M + p * span] are bounded by the serial misses on
    [M] — the premier competing locality-aware scheduler named in the
    paper's related work, and the natural foil for the space-bounded
    scheduler on shared-cache geometries.

    The simulation charges misses on the same inclusive per-cache LRU
    hierarchy as {!Work_steal}; [comm_delay] (Papp et al.) adds a fixed
    latency when a vertex is dispatched on a processor that executed
    none of its predecessors.  Deterministic: [seed] is a no-op. *)

(** [run ?seed ?comm_delay program machine]. *)
val run :
  ?seed:int ->
  ?comm_delay:int ->
  Nd.Program.t ->
  Nd_pmh.Pmh.t ->
  Scheduler.stats

module Shared : Scheduler.S
