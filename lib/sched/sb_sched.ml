module Dag = Nd_dag.Dag
module Is = Nd_util.Interval_set
module Heap = Nd_util.Heap
module Pmh = Nd_pmh.Pmh
open Nd

type mode = Coarse | Fine

type accounting = Rho | Lru

type stats = {
  time : int;
  work : int;
  misses : int array;
  miss_cost : int;
  space_hwm : int;
  busy : int;
  n_anchors : int;
  n_procs : int;
  miss_table : Nd_mem.Miss_table.t option;
}

exception Deadlock of string

(* task states, kept as ints so the whole task state lives in one flat
   array indexed by global task id *)
let st_waiting = 0

let st_queued = 1

let st_active = 2

let st_done = 3

type anchor = {
  a_level : int;  (* cache level; n_levels+1 for the memory root *)
  a_task : int;  (* task index in its level's decomposition; -1 = root *)
  a_cache : int;
  a_subclusters : int list;
  a_queue : int Queue.t;  (* ready children: task indices at a_level-1 *)
}

let utilization s =
  (* an empty run (zero time or zero processors) kept no processor busy:
     report 0., not the old vacuous 1. *)
  if s.time = 0 || s.n_procs = 0 then 0.
  else float_of_int s.busy /. (float_of_int s.time *. float_of_int s.n_procs)

let pp_stats ppf s =
  let util =
    if s.time = 0 || s.n_procs = 0 then "n/a"
    else Printf.sprintf "%.3f" (utilization s)
  in
  Format.fprintf ppf
    "time=%d work=%d miss_cost=%d space_hwm=%d util=%s anchors=%d misses=[%s]"
    s.time s.work s.miss_cost s.space_hwm util s.n_anchors
    (String.concat ";" (Array.to_list (Array.map string_of_int s.misses)))

(* growable int array, shared by the edge and dependency recorders *)
type ibuf = { mutable buf : int array; mutable len : int }

let ibuf_create n = { buf = Array.make (max 16 n) 0; len = 0 }

let ibuf_push b x =
  if b.len >= Array.length b.buf then begin
    let bigger = Array.make (2 * Array.length b.buf) 0 in
    Array.blit b.buf 0 bigger 0 b.len;
    b.buf <- bigger
  end;
  b.buf.(b.len) <- x;
  b.len <- b.len + 1

let run ?(sigma = 1. /. 3.) ?(mode = Coarse) ?(accounting = Rho)
    ?(alloc_alpha = 1.) ?sim_workers ?(tracer = Nd_trace.Collector.null)
    program machine =
  let dag = Program.dag program in
  let traced = Nd_trace.Collector.enabled tracer in
  (* trace context: the processor whose heap event is being handled (the
     simulation is single-threaded, so one ref is enough) *)
  let cur_proc = ref 0 in
  let h = Pmh.n_levels machine in
  let n_procs = Pmh.n_procs machine in
  let m_of = Array.init h (fun i ->
      max 1 (int_of_float (sigma *. float_of_int (Pmh.size machine ~level:(i + 1)))))
  in
  let decomp = Array.init h (fun i -> Program.decompose program ~m:m_of.(i)) in
  let n_tasks = Array.map (fun d -> Array.length d.Program.tasks) decomp in
  let task_node j ti = decomp.(j - 1).Program.tasks.(ti) in
  let task_size j ti = Program.size program (task_node j ti) in
  let tov j v = decomp.(j - 1).Program.task_of_vertex.(v) in
  let ton j n = decomp.(j - 1).Program.task_of_node.(n) in
  let nv = Dag.n_vertices dag in

  (* ---- global task ids ---- *)
  (* every (level, task) pair flattened to one int, so per-task state
     (dependency counts, run state, visited sets) lives in flat arrays
     rather than per-level arrays of tuples/hashtables *)
  let goff = Array.make (h + 1) 0 in
  for i = 0 to h - 1 do
    goff.(i + 1) <- goff.(i) + n_tasks.(i)
  done;
  let tcount = goff.(h) in
  let gid j ti = goff.(j - 1) + ti in
  (* level of a global id, for decoding CSR targets back to (j, ti) *)
  let glev = Array.make (max 1 tcount) 0 in
  for j = 1 to h do
    for ti = 0 to n_tasks.(j - 1) - 1 do
      glev.(gid j ti) <- j
    done
  done;

  (* ---- level-1 fine event graph: tasks + glue vertices ---- *)
  let n1 = n_tasks.(0) in
  let glue1_id = Array.make nv (-1) in
  let n_glue1 = ref 0 in
  for v = 0 to nv - 1 do
    if tov 1 v < 0 then begin
      glue1_id.(v) <- n1 + !n_glue1;
      incr n_glue1
    end
  done;
  let fine_n = n1 + !n_glue1 in
  let fine_id v = let t = tov 1 v in if t >= 0 then t else glue1_id.(v) in
  (* edges into glue vertices, encoded as [fu * fine_n + fv]; sorted and
     deduplicated in place (no tuple hashtable, no per-edge allocation),
     then laid out in CSR form so [fire_fine] walks a flat array segment *)
  let csr = Dag.csr dag in
  let enc = ibuf_create 256 in
  for u = 0 to nv - 1 do
    let fu = fine_id u in
    for k = csr.Dag.succ_off.(u) to csr.Dag.succ_off.(u + 1) - 1 do
      let fv = fine_id csr.Dag.succ_tgt.(k) in
      if fu <> fv && fv >= n1 then ibuf_push enc ((fu * fine_n) + fv)
    done
  done;
  let edges = Array.sub enc.buf 0 enc.len in
  Array.sort Int.compare edges;
  let n_edges = ref 0 in
  for i = 0 to Array.length edges - 1 do
    if !n_edges = 0 || edges.(i) <> edges.(!n_edges - 1) then begin
      edges.(!n_edges) <- edges.(i);
      incr n_edges
    end
  done;
  let glue_pred = Array.make fine_n 0 in
  let glue_off = Array.make (fine_n + 1) 0 in
  for k = 0 to !n_edges - 1 do
    glue_off.(edges.(k) / fine_n + 1) <- glue_off.(edges.(k) / fine_n + 1) + 1;
    let fv = edges.(k) mod fine_n in
    glue_pred.(fv) <- glue_pred.(fv) + 1
  done;
  for f = 0 to fine_n - 1 do
    glue_off.(f + 1) <- glue_off.(f) + glue_off.(f + 1)
  done;
  (* sorted by source first, so targets land in source order *)
  let glue_tgt = Array.init !n_edges (fun k -> edges.(k) mod fine_n) in

  (* ---- parents, children, atom counts ---- *)
  (* parent task (at level j+1) of a level-j task; for j = h the parent is
     the root *)
  let parent_task =
    Array.init h (fun i ->
        let j = i + 1 in
        if j = h then Array.make n_tasks.(i) (-1)
        else Array.map (fun node -> ton (j + 1) node) decomp.(i).Program.tasks)
  in
  (* children of level-l tasks (their level-(l-1) subtasks), in CSR form:
     [child_tgt.(l)] holds child indices ascending, segmented by
     [child_off.(l)]; only meaningful for l >= 2 *)
  let child_off =
    Array.init (h + 1) (fun l ->
        if l < 2 then [||] else Array.make (n_tasks.(l - 1) + 1) 0)
  in
  let child_tgt =
    Array.init (h + 1) (fun l ->
        if l < 2 then [||] else Array.make n_tasks.(l - 2) 0)
  in
  for l = 2 to h do
    let off = child_off.(l) and tgt = child_tgt.(l) in
    for ti = 0 to n_tasks.(l - 2) - 1 do
      let p = parent_task.(l - 2).(ti) in
      off.(p + 1) <- off.(p + 1) + 1
    done;
    for p = 0 to n_tasks.(l - 1) - 1 do
      off.(p + 1) <- off.(p) + off.(p + 1)
    done;
    let cursor = Array.sub off 0 (n_tasks.(l - 1)) in
    for ti = 0 to n_tasks.(l - 2) - 1 do
      let p = parent_task.(l - 2).(ti) in
      tgt.(cursor.(p)) <- ti;
      cursor.(p) <- cursor.(p) + 1
    done
  done;
  (* atoms (level-1 tasks) per level-j task *)
  let atoms_in =
    Array.init (h + 1) (fun j -> if j < 2 then [||] else Array.make n_tasks.(j - 1) 0)
  in
  (* atom -> containing task at each level *)
  let atom_parent =
    Array.init (h + 1) (fun _ -> Array.make n1 (-1))
  in
  for a = 0 to n1 - 1 do
    let node = task_node 1 a in
    for j = 2 to h do
      let tj = ton j node in
      atom_parent.(j).(a) <- tj;
      atoms_in.(j).(tj) <- atoms_in.(j).(tj) + 1
    done
  done;

  (* ---- dependency sets ---- *)
  (* events: Fine f (level-1 node fired) encoded as [f]; Task (j, ti)
     completion (j >= 2) encoded as [fine_n + gid j ti].  Subscribers of
     all events live in one unified CSR over this id space; per-source
     slots are filled in reverse record order, so walking a segment
     left-to-right reproduces the LIFO iteration order of the former
     per-event subscriber lists exactly (the schedule, and hence every
     stat, is bit-identical to the list-based layout). *)
  let n_events = fine_n + tcount in
  let dep_count = Array.make (max 1 tcount) 0 in
  let st = Array.make (max 1 tcount) st_waiting in
  let dep_seen = Hashtbl.create (8 * nv) in
  let rec_src = ibuf_create (4 * nv) in
  let rec_tgt = ibuf_create (4 * nv) in
  let add_dep j tv es =
    let d = gid j tv in
    let key = (es * tcount) + d in
    if not (Hashtbl.mem dep_seen key) then begin
      Hashtbl.add dep_seen key ();
      dep_count.(d) <- dep_count.(d) + 1;
      ibuf_push rec_src es;
      ibuf_push rec_tgt d
    end
  in
  for u = 0 to nv - 1 do
    for k = csr.Dag.succ_off.(u) to csr.Dag.succ_off.(u + 1) - 1 do
      let v = csr.Dag.succ_tgt.(k) in
      for j = 1 to h do
        let tv = tov j v in
        if tv >= 0 then begin
          let tu = tov j u in
          if tu <> tv then begin
            let es =
              if mode = Coarse && j < h then begin
                let pu = tov (j + 1) u and pv = tov (j + 1) v in
                if pu >= 0 && pv >= 0 && pu <> pv then fine_n + gid (j + 1) pu
                else fine_id u
              end
              else fine_id u
            in
            add_dep j tv es
          end
        end
      done
    done
  done;
  let n_rec = rec_src.len in
  let subs_off = Array.make (n_events + 1) 0 in
  for k = 0 to n_rec - 1 do
    subs_off.(rec_src.buf.(k) + 1) <- subs_off.(rec_src.buf.(k) + 1) + 1
  done;
  for e = 0 to n_events - 1 do
    subs_off.(e + 1) <- subs_off.(e) + subs_off.(e + 1)
  done;
  let subs_tgt = Array.make (max 1 n_rec) 0 in
  let cursor = Array.sub subs_off 0 n_events in
  for k = n_rec - 1 downto 0 do
    let e = rec_src.buf.(k) in
    subs_tgt.(cursor.(e)) <- rec_tgt.buf.(k);
    cursor.(e) <- cursor.(e) + 1
  done;

  (* ---- machine state ---- *)
  (* free anchoring space per cache (levels 1..h); level-1 space is not
     tracked (atoms run whole on one processor) *)
  let free_space =
    Array.init h (fun i ->
        Array.make (Pmh.n_caches machine ~level:(i + 1)) m_of.(i))
  in
  (* owner anchor of each cache, when allocated as a subcluster *)
  let owner : anchor option array array =
    Array.init h (fun i ->
        Array.make (Pmh.n_caches machine ~level:(i + 1)) None)
  in
  let root =
    {
      a_level = h + 1;
      a_task = -1;
      a_cache = 0;
      a_subclusters = List.init (Pmh.n_caches machine ~level:h) (fun c -> c);
      a_queue = Queue.create ();
    }
  in
  List.iter (fun c -> owner.(h - 1).(c) <- Some root) root.a_subclusters;
  let anchor_at =
    Array.init (h + 1) (fun j -> if j < 2 then [||]
                         else Array.make n_tasks.(j - 2) None)
  in
  let n_anchors = ref 0 in
  (* live space = anchored task sizes (the quantity the boundedness
     invariant caps per cache) plus the sizes of running atoms *)
  let live_space = ref 0 in
  let space_hwm = ref 0 in
  let charge_space s =
    live_space := !live_space + s;
    if !live_space > !space_hwm then space_hwm := !live_space
  in

  (* ---- miss accounting ---- *)
  (* visited sets per global task id: one preallocated ref cell each, so
     the drive loop's per-leaf per-level absorb allocates no tuples and
     probes no hashtable (the former hot-path cost) *)
  let visited = Array.init (max 1 tcount) (fun _ -> ref Is.empty) in
  let misses = Array.make h 0 in
  let total_miss_cost = ref 0 in
  (* decoupled measurement mode: schedule under ρ costs while recording
     the global (proc, footprint) trace, replayed post-run by the
     sharded per-cache LRU ([Nd_mem.Shard_sim]) *)
  let access_trace =
    match sim_workers with
    | Some _ -> Some (Nd_mem.Shard_sim.Trace.create ())
    | None -> None
  in
  let use_lru = accounting = Lru && sim_workers = None in
  (* inclusive per-cache LRU, used in inline Lru accounting mode only *)
  let lru_caches =
    lazy
      (Array.init h (fun i ->
           Array.init
             (Pmh.n_caches machine ~level:(i + 1))
             (fun _ ->
               Nd_mem.Cache_sim.create ~m:(Pmh.size machine ~level:(i + 1)) ())))
  in
  let atom_cost_lru proc a =
    let caches = Lazy.force lru_caches in
    let node = task_node 1 a in
    let lo, hi = Program.leaf_range program node in
    let cost = ref 0 in
    for i = lo to hi - 1 do
      match Program.kind_of program (Program.leaf_node program i) with
      | Program.Leaf s ->
        cost := !cost + s.Strand.work;
        (* each cache is independent, so batching the whole footprint per
           level sees the same per-cache access sequence (address order)
           as the old word-at-a-time loop — identical miss counts *)
        let fp = Strand.footprint s in
        for j = 1 to h do
          let c = Pmh.cache_of_proc machine ~proc ~level:j in
          let dm = Nd_mem.Cache_sim.access_set caches.(j - 1).(c) fp in
          if dm > 0 then begin
            misses.(j - 1) <- misses.(j - 1) + dm;
            let mc = dm * Pmh.miss_cost machine ~level:j in
            cost := !cost + mc;
            total_miss_cost := !total_miss_cost + mc
          end
        done
      | Program.Seq | Program.Par | Program.Fire _ -> assert false
    done;
    !cost
  in
  let atom_cost proc a =
    (* serial execution cost of a level-1 task: work + per-level
       first-touch miss costs *)
    let node = task_node 1 a in
    let lo, hi = Program.leaf_range program node in
    let cost = ref 0 in
    for i = lo to hi - 1 do
      let ln = Program.leaf_node program i in
      (match Program.kind_of program ln with
      | Program.Leaf s ->
        cost := !cost + s.Strand.work;
        let fp = Strand.footprint s in
        (match access_trace with
        | Some tr -> Nd_mem.Shard_sim.Trace.push tr ~proc fp
        | None -> ());
        for j = 1 to h do
          let tj = if j = 1 then a else atom_parent.(j).(a) in
          let set = visited.(gid j tj) in
          let fresh = Is.absorb set fp in
          if fresh > 0 then begin
            misses.(j - 1) <- misses.(j - 1) + fresh;
            let c = fresh * Pmh.miss_cost machine ~level:j in
            total_miss_cost := !total_miss_cost + c;
            cost := !cost + c
          end
        done
      | Program.Seq | Program.Par | Program.Fire _ -> assert false)
    done;
    !cost
  in

  (* ---- event machinery ---- *)
  let events : int Heap.t = Heap.create () in
  (* payload = processor id *)
  let idle = Array.make n_procs false in
  let now = ref 0 in
  let wake_all () =
    for p = 0 to n_procs - 1 do
      if idle.(p) then begin
        idle.(p) <- false;
        Heap.push events !now p
      end
    done
  in
  let emit kind =
    Nd_trace.Collector.emit tracer ~worker:!cur_proc ~ts:!now kind
  in
  let anchor_of_parent j tv =
    (* the anchor in whose queue a level-j task is scheduled *)
    if j = h then Some root
    else anchor_at.(j + 1).(parent_task.(j - 1).(tv))
  in
  let enqueue_if_ready j tv =
    let g = gid j tv in
    if st.(g) = st_waiting && dep_count.(g) = 0 then
      match anchor_of_parent j tv with
      | Some a ->
        st.(g) <- st_queued;
        Queue.push tv a.a_queue;
        if traced then emit (Nd_trace.Event.Fire { target = tv; level = j });
        wake_all ()
      | None -> ()
  in
  let done_atoms = ref 0 in
  (* satisfy every dependency subscribed to event [es] *)
  let fire_subs es =
    for k = subs_off.(es) to subs_off.(es + 1) - 1 do
      let g = subs_tgt.(k) in
      dep_count.(g) <- dep_count.(g) - 1;
      let j = glev.(g) in
      enqueue_if_ready j (g - goff.(j - 1))
    done
  in
  let rec fire_fine f =
    fire_subs f;
    for k = glue_off.(f) to glue_off.(f + 1) - 1 do
      let g = glue_tgt.(k) in
      glue_pred.(g) <- glue_pred.(g) - 1;
      if glue_pred.(g) = 0 then fire_fine g
    done
  in
  let release_anchor a =
    free_space.(a.a_level - 1).(a.a_cache) <-
      free_space.(a.a_level - 1).(a.a_cache) + task_size a.a_level a.a_task;
    live_space := !live_space - task_size a.a_level a.a_task;
    List.iter (fun c -> owner.(a.a_level - 2).(c) <- None) a.a_subclusters;
    if traced then
      emit
        (Nd_trace.Event.Anchor_release
           { level = a.a_level; cache = a.a_cache; task = a.a_task;
             size = task_size a.a_level a.a_task })
  in
  let task_done j ti =
    visited.(gid j ti) := Is.empty;
    if j >= 2 then begin
      (match anchor_at.(j).(ti) with
      | Some a ->
        release_anchor a;
        anchor_at.(j).(ti) <- None
      | None -> ());
      fire_subs (fine_n + gid j ti)
    end;
    wake_all ()
  in
  let complete_atom a =
    st.(a) <- st_done;
    incr done_atoms;
    visited.(a) := Is.empty;
    fire_fine a;
    for j = 2 to h do
      let tj = atom_parent.(j).(a) in
      atoms_in.(j).(tj) <- atoms_in.(j).(tj) - 1;
      if atoms_in.(j).(tj) = 0 then begin
        st.(gid j tj) <- st_done;
        task_done j tj
      end
    done;
    wake_all ()
  in

  (* fit level: smallest cache level whose (dilated) size holds the task *)
  let fit_level size =
    let rec go j = if j > h then h + 1 else if size <= m_of.(j - 1) then j else go (j + 1) in
    go 1
  in
  let alloc_q level size =
    let f =
      if level = h + 1 then List.length root.a_subclusters
      else Pmh.fanout machine ~level
    in
    let msize = if level = h + 1 then max 1 size else Pmh.size machine ~level in
    let frac = 3. *. float_of_int size /. float_of_int msize in
    (* ceiling rather than floor: stands in for the extra subclusters the
       full scheduler of [12] provisions for worst-case allocations *)
    min f
      (max 1
         (int_of_float
            (Float.ceil (float_of_int f *. (frac ** Float.min alloc_alpha 1.)))))
  in
  let try_anchor j ti proc =
    (* anchor level-j' maximal task (node known to be a task at level j',
       index ti') at the level-j' cache above [proc] *)
    let node = task_node j ti in
    let size = task_size j ti in
    let l = fit_level size in
    assert (l >= 2 && l <= h);
    let ti' = ton l node in
    let cache = Pmh.cache_of_proc machine ~proc ~level:l in
    if free_space.(l - 1).(cache) < size then None
    else begin
      (* free subclusters at level l-1 under this cache; prefer the one
         on [proc]'s own path so the finder can keep working inside *)
      let f = Pmh.fanout machine ~level:l in
      let lo = cache * f in
      let own = Pmh.cache_of_proc machine ~proc ~level:(l - 1) in
      let free = ref [] in
      for c = lo + f - 1 downto lo do
        if c <> own && owner.(l - 2).(c) = None then free := c :: !free
      done;
      if owner.(l - 2).(own) = None then free := own :: !free;
      if !free = [] then None
      else begin
        let q = alloc_q l size in
        let rec take k = function
          | [] -> []
          | c :: rest -> if k = 0 then [] else c :: take (k - 1) rest
        in
        let subclusters = take q !free in
        let a =
          {
            a_level = l;
            a_task = ti';
            a_cache = cache;
            a_subclusters = subclusters;
            a_queue = Queue.create ();
          }
        in
        free_space.(l - 1).(cache) <- free_space.(l - 1).(cache) - size;
        charge_space size;
        List.iter (fun c -> owner.(l - 2).(c) <- Some a) subclusters;
        anchor_at.(l).(ti') <- Some a;
        incr n_anchors;
        if traced then
          emit
            (Nd_trace.Event.Anchor_create
               { level = l; cache; task = ti'; size });
        (* enqueue already-ready children *)
        for k = child_off.(l).(ti') to child_off.(l).(ti' + 1) - 1 do
          let child = child_tgt.(l).(k) in
          let g = gid (l - 1) child in
          if st.(g) = st_waiting && dep_count.(g) = 0 then begin
            st.(g) <- st_queued;
            Queue.push child a.a_queue
          end
        done;
        wake_all ();
        Some a
      end
    end
  in

  (* the lowest anchor processor p is part of (the paper's work-finding
     rule: a processor searches only there; exclusivity) *)
  let lowest_anchor p =
    let found = ref root in
    (try
       for k = 1 to h do
         let c = Pmh.cache_of_proc machine ~proc:p ~level:k in
         match owner.(k - 1).(c) with
         | Some a ->
           found := a;
           raise Exit
         | None -> ()
       done
     with Exit -> ());
    !found
  in

  let covers a p =
    a == root
    ||
    let c = Pmh.cache_of_proc machine ~proc:p ~level:(a.a_level - 1) in
    List.mem c a.a_subclusters
  in

  (* returns the atom to run, or None *)
  let find_work p =
    let rec search a =
      let child_level = a.a_level - 1 in
      let budget = ref (Queue.length a.a_queue) in
      let result = ref None in
      while !result = None && !budget > 0 && not (Queue.is_empty a.a_queue) do
        decr budget;
        let tv = Queue.pop a.a_queue in
        let node = task_node child_level tv in
        let size = task_size child_level tv in
        if size <= m_of.(0) || Program.children program node = [||] then begin
          st.(gid child_level tv) <- st_active;
          result := Some (`Run (child_level, tv))
        end
        else
          match try_anchor child_level tv p with
          | Some sub ->
            st.(gid child_level tv) <- st_active;
            result := Some (`Descend sub)
          | None -> Queue.push tv a.a_queue
      done;
      match !result with
      | Some (`Run r) -> Some r
      | Some (`Descend sub) ->
        (* if p joined the new anchor's allocation it must work there
           exclusively; otherwise keep scanning the current queue *)
        if covers sub p then search sub else search a
      | None -> None
    in
    search (lowest_anchor p)
  in

  (* ---- bootstrap ---- *)
  (* fire parentless glue vertices *)
  for g = n1 to fine_n - 1 do
    if glue_pred.(g) = 0 then begin
      (* mark so the cascade does not re-fire it *)
      glue_pred.(g) <- -1;
      fire_fine g
    end
  done;
  for ti = 0 to n_tasks.(h - 1) - 1 do
    enqueue_if_ready h ti
  done;
  let running = Array.make n_procs (-1) in
  let busy = ref 0 in
  for p = 0 to n_procs - 1 do
    Heap.push events 0 p
  done;
  let makespan = ref 0 in
  while not (Heap.is_empty events) do
    let t, p = Heap.pop events in
    now := t;
    cur_proc := p;
    if t > !makespan && running.(p) >= 0 then makespan := t;
    if running.(p) >= 0 then begin
      let a = running.(p) in
      running.(p) <- (-1);
      live_space := !live_space - task_size 1 a;
      if traced then
        emit (Nd_trace.Event.Strand_end { vertex = task_node 1 a });
      complete_atom a
    end;
    if not idle.(p) then
      match find_work p with
      | Some (_level, tv) ->
        (* the node is also a level-1 task: execute it serially *)
        let a1 = ton 1 (task_node _level tv) in
        st.(a1) <- st_active;
        let m0 = if traced then Array.copy misses else [||] in
        let d =
          max 1 (if use_lru then atom_cost_lru p a1 else atom_cost p a1)
        in
        if traced then begin
          let node = task_node 1 a1 in
          let label =
            match Program.kind_of program node with
            | Program.Leaf s -> s.Strand.label
            | Program.Seq | Program.Par | Program.Fire _ ->
              Printf.sprintf "task:%d" node
          in
          emit
            (Nd_trace.Event.Strand_begin
               { vertex = node; work = Program.work_of_node program node; label });
          for j = 1 to h do
            let dm = misses.(j - 1) - m0.(j - 1) in
            if dm > 0 then
              emit
                (Nd_trace.Event.Cache_miss
                   { level = j; count = dm;
                     cost = dm * Pmh.miss_cost machine ~level:j })
          done
        end;
        running.(p) <- a1;
        charge_space (task_size 1 a1);
        busy := !busy + d;
        Heap.push events (t + d) p
      | None -> idle.(p) <- true
  done;
  if !done_atoms < n1 then
    raise
      (Deadlock
         (Printf.sprintf "completed %d of %d level-1 tasks" !done_atoms n1));
  let misses, total_miss_cost, miss_table =
    match (sim_workers, access_trace) with
    | Some w, Some tr ->
      (* replace the drive loop's ρ accounting with the replayed
         per-cache LRU tables; time/busy stay the ρ-cost schedule *)
      let mt = Nd_mem.Shard_sim.replay ~workers:w ~machine tr in
      ( Nd_mem.Miss_table.level_totals mt,
        Nd_mem.Miss_table.total_cost mt ~miss_cost:(fun level ->
            Pmh.miss_cost machine ~level),
        Some mt )
    | _ ->
      let mt =
        if use_lru then
          Some (Nd_mem.Miss_table.of_sims (Lazy.force lru_caches))
        else None
      in
      (misses, !total_miss_cost, mt)
  in
  {
    time = !makespan;
    work = Dag.work dag;
    misses;
    miss_cost = total_miss_cost;
    space_hwm = !space_hwm;
    busy = !busy;
    n_anchors = !n_anchors;
    n_procs;
    miss_table;
  }

module Shared : Scheduler.S = struct
  let name = "sb"

  (* the comparison defaults: the paper's scheduler (sigma = 1/3,
     coarse readiness) under Lru accounting, so misses are measured by
     the same inclusive per-cache LRU model as the ws/pdf/tree peers
     (the paper's rho accounting stays the subject of E3/E6).
     Deterministic; anchoring already confines migration, so the
     comm-delay knob is a no-op. *)
  let run ?seed:_ ?comm_delay:_ program machine =
    let s = run ~accounting:Lru program machine in
    {
      Scheduler.time = s.time;
      work = s.work;
      span = Dag.span (Program.dag program);
      misses = s.misses;
      miss_cost = s.miss_cost;
      space_hwm = s.space_hwm;
      busy = s.busy;
      n_procs = s.n_procs;
      miss_table = s.miss_table;
    }
end
