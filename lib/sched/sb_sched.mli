(** Space-bounded scheduler for ND programs on a PMH (Section 4).

    Discrete-event simulation of the scheduler of the paper (adapted from
    Blelloch et al. for the ND model):

    - {b Anchoring}: a ready task is anchored at the cache level with
      respect to which it is maximal (size at most [sigma * M_level]),
      on the cache above the processor that found it, and is allocated
      [g_level(S) = min(f, max(1, floor(f * (3S/M)^alpha')))] subclusters
      whose processors then work exclusively on it.
    - {b Boundedness}: the total size of tasks anchored at a cache never
      exceeds [sigma * M].
    - {b Readiness} (Figure 12): within an anchored level-i task, the
      level-(i-1) subtasks become ready under full fine-grained dataflow
      (an arrow is satisfied when its source strand's level-1 task
      completes); dependencies whose source lies {e outside} the anchored
      task are coarsened to the completion of the source's enclosing
      level-i maximal task in [Coarse] mode (the paper's scheduler), or
      kept fine-grained in [Fine] mode (the E7 ablation).
    - {b Miss accounting} (the paper's latency-added cost ρ): a strand
      pays [C_j] for every footprint word not previously touched inside
      its enclosing level-j maximal task instance, for every level j —
      so the per-level totals are exactly the quantities Theorem 1
      bounds by [Q*(t; sigma * M_j)].

    Strand actions are never run — this is a timing/locality simulation;
    use {!Nd.Serial_exec} or [Nd_runtime] for real execution. *)

type mode = Coarse | Fine

(** Which locality model charges the misses: [Rho] is the paper's
    latency-added cost (first touch within the enclosing maximal task at
    each level — the quantity Theorem 1 bounds); [Lru] simulates
    inclusive per-cache LRU exactly like the work-stealing baseline, for
    an apples-to-apples E6 comparison. *)
type accounting = Rho | Lru

type stats = {
  time : int;  (** makespan in cost units *)
  work : int;  (** total strand work *)
  misses : int array;  (** index j-1 = misses at cache level j *)
  miss_cost : int;  (** total miss cost summed over levels *)
  space_hwm : int;
      (** peak of (total anchored task size + sizes of running atoms) —
          the quantity the per-cache boundedness invariant caps *)
  busy : int;  (** total processor busy time *)
  n_anchors : int;  (** anchors created above level 1 *)
  n_procs : int;
  miss_table : Nd_mem.Miss_table.t option;
      (** per-(level, cache-instance) miss counts: [Some] under [Lru]
          accounting (snapshot of the inline simulators) and under
          [sim_workers] replay (the merged shard tables); [None] under
          plain [Rho], whose first-touch charges are per maximal-task
          instance, not per cache *)
}

exception Deadlock of string

(** [run ?sigma ?mode ?alloc_alpha ?sim_workers ?tracer program machine]
    simulates and returns the stats.  [sigma] defaults to 1/3 (Lemma 6);
    [alloc_alpha] is the α' of the allocation function (default 1).

    [sim_workers] selects the {e decoupled measurement mode}: the drive
    loop schedules under ρ costs (as in [Rho] accounting — [accounting]
    is ignored) while recording the global (processor, footprint) access
    trace in event order; afterwards the trace is replayed against
    per-cache inclusive LRU simulators by {!Nd_mem.Shard_sim.replay}
    with that many workers, and [misses]/[miss_cost]/[miss_table] are
    replaced by the replayed per-cache tables.  [time]/[busy] remain the
    ρ-cost schedule.  The replayed tables are bit-identical at every
    worker count (and to a serial replay), which the differential
    harness in [test_mem] and the oracle's sim-shard stage enforce.
    Inline [Lru] accounting cannot be parallelized this way because its
    miss counts feed atom durations and hence the schedule itself; on a
    1-processor machine the two coincide (atom order is then
    duration-independent) and the tests check that identity too.

    With [tracer] (one ring per simulated processor), the run emits:
    strand begin/end per executed level-1 task (the [vertex] field holds
    the spawn-tree node id), anchor create/release with level, cache,
    task and size, fire events when a task's last dependency is
    satisfied ([level] = decomposition level), and per-level cache-miss
    deltas.  Tracing is purely observational: stats are identical with
    and without it.
    @raise Deadlock if the dependency structure cannot make progress
    (indicates a cyclic or unsatisfiable rule set). *)
val run :
  ?sigma:float ->
  ?mode:mode ->
  ?accounting:accounting ->
  ?alloc_alpha:float ->
  ?sim_workers:int ->
  ?tracer:Nd_trace.Collector.t ->
  Nd.Program.t ->
  Nd_pmh.Pmh.t ->
  stats

(** [utilization s] = busy / (time * procs), or [0.] when the run had
    zero time or zero processors (no processor was ever busy). *)
val utilization : stats -> float

(** Prints the stats on one line; utilization shows as [n/a] for
    zero-time or zero-processor runs. *)
val pp_stats : Format.formatter -> stats -> unit

(** Zoo face: the paper's scheduler at its defaults (sigma = 1/3,
    [Coarse] readiness) under [Lru] accounting so misses are measured
    by the same per-cache LRU model as the other zoo members.  Both
    common knobs are no-ops (deterministic; anchoring is its own
    communication model). *)
module Shared : Scheduler.S
