type stats = {
  time : int;
  work : int;
  span : int;
  misses : int array;
  miss_cost : int;
  space_hwm : int;
  busy : int;
  n_procs : int;
  miss_table : Nd_mem.Miss_table.t option;
}

module type S = sig
  val name : string

  val run :
    ?seed:int -> ?comm_delay:int -> Nd.Program.t -> Nd_pmh.Pmh.t -> stats
end

let utilization s =
  if s.time = 0 || s.n_procs = 0 then 0.
  else float_of_int s.busy /. (float_of_int s.time *. float_of_int s.n_procs)

let misses_string s =
  if Array.length s.misses = 0 then "-"
  else String.concat ";" (Array.to_list (Array.map string_of_int s.misses))

let pp_stats ppf s =
  let util =
    if s.time = 0 || s.n_procs = 0 then "n/a"
    else Printf.sprintf "%.3f" (utilization s)
  in
  Format.fprintf ppf
    "time=%d work=%d span=%d miss_cost=%d space_hwm=%d util=%s misses=[%s]"
    s.time s.work s.span s.miss_cost s.space_hwm util (misses_string s)

let row_header = [ "time"; "work"; "miss cost"; "misses"; "space hwm"; "util" ]

let to_row s =
  [
    string_of_int s.time;
    string_of_int s.work;
    string_of_int s.miss_cost;
    misses_string s;
    string_of_int s.space_hwm;
    Printf.sprintf "%.3f" (utilization s);
  ]
