(** The common face of the scheduler zoo.

    Every simulated scheduler — the paper's space-bounded scheduler, the
    work-stealing baseline it is compared against, the cache-blind
    greedy envelope, and the two peers from the related work (Parallel
    Depth First, and the Marchal–Sinnen–Vivien memory-bounded tree
    scheduler) — answers the same question: given a compiled ND program
    and a PMH machine, what are the makespan, the per-level misses, and
    the space high-water mark?  This interface is that question, so the
    Oracle can drive all of them through one set of invariants and the
    E10 suite experiment can print them side by side.

    Native modules keep their richer APIs (anchors, steal counts,
    sigma/mode knobs); each exposes a [Shared] submodule fixing its
    knobs to the comparison defaults. *)

type stats = {
  time : int;  (** makespan in cost units *)
  work : int;  (** total strand work (machine-independent) *)
  span : int;  (** critical-path work [T_inf] *)
  misses : int array;
      (** index j-1 = misses at cache level j; [[||]] for cache-blind
          schedulers *)
  miss_cost : int;  (** total miss cost summed over levels *)
  space_hwm : int;
      (** high-water mark of live space, in words.  For vertex-level
          schedulers: the peak sum of footprints of concurrently
          running strands; for task-level schedulers (SB, tree): the
          peak total size of simultaneously anchored/admitted tasks —
          the quantity their boundedness invariants cap. *)
  busy : int;  (** total processor busy time *)
  n_procs : int;
  miss_table : Nd_mem.Miss_table.t option;
      (** per-(level, cache-instance) miss counts when the scheduler
          simulates per-cache LRU ([None] for cache-blind schedulers
          and for SB's ρ accounting); [misses] are its level totals *)
}

(** A zoo member: a display name and one entry point with the common
    knobs.  [seed] feeds any internal randomness (work stealing's victim
    choice); deterministic schedulers ignore it.  [comm_delay] is the
    Papp-et-al. communication-delay knob: dispatching a vertex onto a
    processor that executed none of its predecessors costs this many
    extra time units (default 0 — the classic model).  Schedulers whose
    dispatch loop has no such notion ignore it. *)
module type S = sig
  val name : string

  val run :
    ?seed:int -> ?comm_delay:int -> Nd.Program.t -> Nd_pmh.Pmh.t -> stats
end

(** busy / (time * procs), 0. for empty runs. *)
val utilization : stats -> float

val pp_stats : Format.formatter -> stats -> unit

(** Column labels matching {!to_row}:
    time, work, miss cost, misses, space hwm, util. *)
val row_header : string list

(** The stats as suite-table cells, in {!row_header} order ([misses] is
    rendered ["a;b;c"], or ["-"] for cache-blind schedulers).  Callers
    prepend their own identifying cells (algo, scheduler name). *)
val to_row : stats -> string list
