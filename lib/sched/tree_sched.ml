module Dag = Nd_dag.Dag
module Heap = Nd_util.Heap
module Pmh = Nd_pmh.Pmh
module Cache = Nd_mem.Cache_sim
open Nd

(* ---- traversal order (Liu / Marchal–Sinnen–Vivien) ----

   The spawn tree is exactly the task tree of the memory-bounded tree
   scheduling literature: a subtree occupies its size s(n) while any of
   it is live.  A serial post-order traversal that visits the children
   of every free-choice node in descending (peak - size) keeps the peak
   residency minimal (Liu's theorem); Seq children are dependency-
   ordered and stay in program order.  The resulting order of the
   M-maximal task roots is the admission priority. *)

type order = {
  task_prio : int array;  (* task index -> 1-based priority *)
  peak_root : int;  (* estimated serial peak residency of the root *)
}

let traversal_order program (d : Program.decomposition) =
  let n_nodes = Program.n_nodes program in
  let n_tasks = Array.length d.Program.tasks in
  let peak = Array.make n_nodes 0 in
  let order : int array array = Array.make n_nodes [||] in
  let size n = Program.size program n in
  let rec compute n =
    let cs = Program.children program n in
    if Array.length cs = 0 then peak.(n) <- size n
    else begin
      Array.iter compute cs;
      let ord = Array.copy cs in
      (match Program.kind_of program n with
      | Program.Seq -> ()  (* children depend on each other: keep order *)
      | Program.Leaf _ | Program.Par | Program.Fire _ ->
        (* descending (peak - size): pay each child's transient peak
           while as few finished siblings as possible are resident *)
        Array.sort
          (fun a b -> compare (peak.(b) - size b) (peak.(a) - size a))
          ord);
      order.(n) <- ord;
      let acc = ref 0 and pk = ref 0 in
      Array.iter
        (fun c ->
          if !acc + peak.(c) > !pk then pk := !acc + peak.(c);
          acc := !acc + size c)
        ord;
      (* the sum over children double-counts shared words; the subtree
         never occupies more than its own size *)
      peak.(n) <- max (size n) (min !pk !acc)
    end
  in
  let root = Program.root program in
  compute root;
  let task_prio = Array.make n_tasks 0 in
  let next = ref 0 in
  let rec visit n =
    let ti = d.Program.task_of_node.(n) in
    if ti >= 0 then begin
      if task_prio.(ti) = 0 then begin
        incr next;
        task_prio.(ti) <- !next
      end
    end
    else Array.iter visit order.(n)
  in
  visit root;
  { task_prio; peak_root = peak.(root) }

let run ?seed:_ ?(comm_delay = 0) ?budget program machine =
  let dag = Program.dag program in
  let nv = Dag.n_vertices dag in
  let h = Pmh.n_levels machine in
  let n_procs = Pmh.n_procs machine in
  (* the memory bound defaults to the outermost cache: the scheduler
     promises never to have more task footprint in flight than fits
     there.  Tasks are the M-maximal decomposition at a quarter of the
     budget, so several run concurrently under the bound. *)
  let budget =
    match budget with
    | Some b -> max 1 b
    | None -> Pmh.size machine ~level:h
  in
  let m_task = max 1 (budget / 4) in
  let d = Program.decompose program ~m:m_task in
  let n_tasks = Array.length d.Program.tasks in
  let task_size ti = Program.size program d.Program.tasks.(ti) in
  let { task_prio; peak_root = _ } = traversal_order program d in
  let caches =
    Array.init h (fun i ->
        Array.init
          (Pmh.n_caches machine ~level:(i + 1))
          (fun _ -> Cache.create ~m:(Pmh.size machine ~level:(i + 1)) ()))
  in
  let misses = Array.make h 0 in
  let total_miss_cost = ref 0 in
  let vertex_cost p v =
    let cost = ref (Dag.work_of dag v) in
    let fp = Dag.footprint_of dag v in
    for j = 1 to h do
      let c = Pmh.cache_of_proc machine ~proc:p ~level:j in
      let dm = Cache.access_set caches.(j - 1).(c) fp in
      if dm > 0 then begin
        misses.(j - 1) <- misses.(j - 1) + dm;
        let mc = dm * Pmh.miss_cost machine ~level:j in
        cost := !cost + mc;
        total_miss_cost := !total_miss_cost + mc
      end
    done;
    !cost
  in
  let indeg = Array.make nv 0 in
  for v = 0 to nv - 1 do
    indeg.(v) <- List.length (Dag.preds dag v)
  done;
  (* admission control: a task's vertices become dispatchable only once
     the task is admitted against the budget.  Ready vertices of
     unadmitted tasks wait in their task's buffer; tasks with buffered
     vertices queue for admission in traversal order. *)
  let remaining = Array.make n_tasks 0 in
  for v = 0 to nv - 1 do
    let ti = d.Program.task_of_vertex.(v) in
    if ti >= 0 then remaining.(ti) <- remaining.(ti) + 1
  done;
  let admitted = Array.make n_tasks false in
  let task_buf = Array.init n_tasks (fun _ -> Queue.create ()) in
  let queued = Array.make n_tasks false in
  let pending : int Heap.t = Heap.create () in
  let ready : int Heap.t = Heap.create () in
  let resident = ref 0 in
  let space_hwm = ref 0 in
  let admit ti =
    admitted.(ti) <- true;
    resident := !resident + task_size ti;
    if !resident > !space_hwm then space_hwm := !resident;
    Queue.iter (fun v -> Heap.push ready task_prio.(ti) v) task_buf.(ti);
    Queue.clear task_buf.(ti)
  in
  (* admit pending tasks in strict priority order while they fit; with
     [force], the front task is admitted regardless (progress: it holds
     at least one ready vertex, so someone can run) *)
  let rec admit_fitting ~force =
    if not (Heap.is_empty pending) then begin
      let prio, ti = Heap.pop pending in
      if force || !resident + task_size ti <= budget then begin
        queued.(ti) <- false;
        admit ti;
        admit_fitting ~force:false
      end
      else Heap.push pending prio ti
    end
  in
  let enable v =
    let ti = d.Program.task_of_vertex.(v) in
    if ti < 0 then Heap.push ready 0 v
    else if admitted.(ti) then Heap.push ready task_prio.(ti) v
    else begin
      Queue.push v task_buf.(ti);
      if not queued.(ti) then begin
        queued.(ti) <- true;
        Heap.push pending task_prio.(ti) ti
      end
    end
  in
  for v = 0 to nv - 1 do
    if indeg.(v) = 0 then enable v
  done;
  admit_fitting ~force:true;
  let owner = Array.make nv (-1) in
  let needs_comm p v =
    comm_delay > 0 && List.exists (fun u -> owner.(u) <> p) (Dag.preds dag v)
  in
  let events : int Heap.t = Heap.create () in
  let idle = Array.make n_procs false in
  let running = Array.make n_procs (-1) in
  let n_running = ref 0 in
  let now = ref 0 in
  let wake_all () =
    for p = 0 to n_procs - 1 do
      if idle.(p) then begin
        idle.(p) <- false;
        Heap.push events !now p
      end
    done
  in
  let executed = ref 0 in
  let busy = ref 0 in
  let makespan = ref 0 in
  for p = 0 to n_procs - 1 do
    Heap.push events 0 p
  done;
  while not (Heap.is_empty events) do
    let t, p = Heap.pop events in
    now := t;
    if running.(p) >= 0 then begin
      if t > !makespan then makespan := t;
      let v = running.(p) in
      running.(p) <- (-1);
      decr n_running;
      incr executed;
      let ti = d.Program.task_of_vertex.(v) in
      if ti >= 0 then begin
        remaining.(ti) <- remaining.(ti) - 1;
        if remaining.(ti) = 0 then begin
          (* task done: its footprint retires; let the next ones in *)
          resident := !resident - task_size ti;
          admit_fitting ~force:false
        end
      end;
      List.iter
        (fun w ->
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then enable w)
        (Dag.succs dag v);
      admit_fitting ~force:false;
      wake_all ()
    end;
    if not idle.(p) then
      if Heap.is_empty ready then begin
        (* nothing dispatchable: if the whole machine is stalled on the
           budget, force the front pending task in *)
        if !n_running = 0 && not (Heap.is_empty pending) then begin
          admit_fitting ~force:true;
          Heap.push events t p
        end
        else idle.(p) <- true
      end
      else begin
        let _, v = Heap.pop ready in
        let extra = if needs_comm p v then comm_delay else 0 in
        let d = extra + vertex_cost p v in
        owner.(v) <- p;
        running.(p) <- v;
        incr n_running;
        busy := !busy + d;
        Heap.push events (t + d) p
      end
  done;
  if !executed < nv then failwith "Tree_sched.run: stalled (cyclic DAG?)";
  {
    Scheduler.time = !makespan;
    work = Dag.work dag;
    span = Dag.span dag;
    misses;
    miss_cost = !total_miss_cost;
    space_hwm = !space_hwm;
    busy = !busy;
    n_procs;
    miss_table = Some (Nd_mem.Miss_table.of_sims caches);
  }

module Shared : Scheduler.S = struct
  let name = "tree"

  let run ?seed ?comm_delay program machine =
    run ?seed ?comm_delay program machine
end
