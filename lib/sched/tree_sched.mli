(** Memory-bounded tree scheduler (Marchal–Sinnen–Vivien style).

    The spawn tree {e is} the task tree of the memory-bounded tree
    scheduling literature, with s(n) — the statically-allocated task
    size — as the footprint a subtree occupies while live.  The
    scheduler splits the tree into M-maximal tasks at a quarter of a
    memory budget (default: the outermost cache), orders them by the
    peak-minimizing serial traversal (children of Par/Fire nodes in
    descending [peak - size], Liu's rule; Seq children in dependency
    order), and then list-schedules the DAG with the twist that a
    task's vertices are dispatchable only while the task is {e
    admitted}: tasks enter in traversal order when their size fits
    under the budget alongside the already-admitted ones, so the total
    live task footprint never exceeds the budget — except when the
    machine would otherwise stall, in which case the front task is
    force-admitted (the usual progress escape of the makespan/memory
    trade-off heuristics).

    Misses are charged on the same inclusive per-cache LRU hierarchy
    as {!Work_steal}/{!Pdf_sched}; [comm_delay] as in {!Pdf_sched}.
    Deterministic: [seed] is a no-op.  [space_hwm] reports the peak
    admitted-task footprint — the quantity the budget caps. *)

(** [run ?seed ?comm_delay ?budget program machine] — [budget] defaults
    to the size of the machine's outermost cache level. *)
val run :
  ?seed:int ->
  ?comm_delay:int ->
  ?budget:int ->
  Nd.Program.t ->
  Nd_pmh.Pmh.t ->
  Scheduler.stats

module Shared : Scheduler.S
