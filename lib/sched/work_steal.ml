module Dag = Nd_dag.Dag
module Heap = Nd_util.Heap
module Prng = Nd_util.Prng
module Pmh = Nd_pmh.Pmh
module Cache = Nd_mem.Cache_sim
open Nd

module Is = Nd_util.Interval_set

type stats = {
  time : int;
  work : int;
  misses : int array;
  miss_cost : int;
  space_hwm : int;
  steals : int;
  busy : int;
  n_procs : int;
  miss_table : Nd_mem.Miss_table.t;
}

let utilization s =
  (* same convention as [Sb_sched.utilization]: an empty run is 0. busy *)
  if s.time = 0 || s.n_procs = 0 then 0.
  else float_of_int s.busy /. (float_of_int s.time *. float_of_int s.n_procs)

let pp_stats ppf s =
  let util =
    if s.time = 0 || s.n_procs = 0 then "n/a"
    else Printf.sprintf "%.3f" (utilization s)
  in
  Format.fprintf ppf
    "time=%d work=%d miss_cost=%d space_hwm=%d util=%s steals=%d misses=[%s]"
    s.time s.work s.miss_cost s.space_hwm util s.steals
    (String.concat ";" (Array.to_list (Array.map string_of_int s.misses)))

(* simple growable int deque *)
type deque = { mutable buf : int array; mutable top : int; mutable bot : int }
(* elements live in indices [top, bot) *)

let deque_create () = { buf = Array.make 16 0; top = 0; bot = 0 }

let deque_size d = d.bot - d.top

let deque_push_bot d v =
  if d.bot >= Array.length d.buf then begin
    let n = deque_size d in
    let bigger = Array.make (max 32 (2 * n)) 0 in
    Array.blit d.buf d.top bigger 0 n;
    d.buf <- bigger;
    d.top <- 0;
    d.bot <- n
  end;
  d.buf.(d.bot) <- v;
  d.bot <- d.bot + 1

let deque_pop_bot d =
  if deque_size d = 0 then None
  else begin
    d.bot <- d.bot - 1;
    Some d.buf.(d.bot)
  end

let deque_steal_top d =
  if deque_size d = 0 then None
  else begin
    let v = d.buf.(d.top) in
    d.top <- d.top + 1;
    Some v
  end

let run ?(seed = 0x5eed) ?(steal_cost = 2)
    ?(tracer = Nd_trace.Collector.null) program machine =
  let dag = Program.dag program in
  let nv = Dag.n_vertices dag in
  let h = Pmh.n_levels machine in
  let n_procs = Pmh.n_procs machine in
  let rng = Prng.create seed in
  let traced = Nd_trace.Collector.enabled tracer in
  (* one inclusive LRU per cache instance *)
  let caches =
    Array.init h (fun i ->
        Array.init
          (Pmh.n_caches machine ~level:(i + 1))
          (fun _ -> Cache.create ~m:(Pmh.size machine ~level:(i + 1)) ()))
  in
  let misses = Array.make h 0 in
  let total_miss_cost = ref 0 in
  let vertex_cost p v =
    let cost = ref (Dag.work_of dag v) in
    let fp = Dag.footprint_of dag v in
    (* per-level batching: caches are independent, so each one sees the
       same address-ordered sequence as the old word-at-a-time loop *)
    for j = 1 to h do
      let c = Pmh.cache_of_proc machine ~proc:p ~level:j in
      let dm = Cache.access_set caches.(j - 1).(c) fp in
      if dm > 0 then begin
        misses.(j - 1) <- misses.(j - 1) + dm;
        let mc = dm * Pmh.miss_cost machine ~level:j in
        cost := !cost + mc;
        total_miss_cost := !total_miss_cost + mc
      end
    done;
    !cost
  in
  let indeg = Array.make nv 0 in
  for v = 0 to nv - 1 do
    indeg.(v) <- List.length (Dag.preds dag v)
  done;
  let deques = Array.init n_procs (fun _ -> deque_create ()) in
  (* all sources start on processor 0 (classic WS starts serially) *)
  for v = 0 to nv - 1 do
    if indeg.(v) = 0 then deque_push_bot deques.(0) v
  done;
  let events : int Heap.t = Heap.create () in
  let idle = Array.make n_procs false in
  let running = Array.make n_procs (-1) in
  let now = ref 0 in
  let wake_all () =
    for p = 0 to n_procs - 1 do
      if idle.(p) then begin
        idle.(p) <- false;
        Heap.push events !now p
      end
    done
  in
  let executed = ref 0 in
  let busy = ref 0 in
  let steals = ref 0 in
  let makespan = ref 0 in
  (* live space = sum of running strands' footprints *)
  let resident = ref 0 in
  let space_hwm = ref 0 in
  let fp_words v = Is.cardinal (Dag.footprint_of dag v) in
  let complete p v =
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then begin
          deque_push_bot deques.(p) w;
          if traced then
            Nd_trace.Collector.emit tracer ~worker:p ~ts:!now
              (Nd_trace.Event.Fire { target = w; level = 0 });
          wake_all ()
        end)
      (Dag.succs dag v)
  in
  for p = 0 to n_procs - 1 do
    Heap.push events 0 p
  done;
  while not (Heap.is_empty events) do
    let t, p = Heap.pop events in
    now := t;
    if running.(p) >= 0 then begin
      if t > !makespan then makespan := t;
      let v = running.(p) in
      running.(p) <- (-1);
      incr executed;
      resident := !resident - fp_words v;
      if traced then
        Nd_trace.Collector.emit tracer ~worker:p ~ts:t
          (Nd_trace.Event.Strand_end { vertex = v });
      complete p v
    end;
    if not idle.(p) then begin
      let task =
        match deque_pop_bot deques.(p) with
        | Some v -> Some (v, 0)
        | None ->
          (* one steal attempt from a random victim with work *)
          let candidates = ref [] in
          for q = 0 to n_procs - 1 do
            if q <> p && deque_size deques.(q) > 0 then candidates := q :: !candidates
          done;
          (match !candidates with
          | [] -> None
          | l ->
            let victim = List.nth l (Prng.int rng (List.length l)) in
            (match deque_steal_top deques.(victim) with
            | Some v ->
              incr steals;
              if traced then
                Nd_trace.Collector.emit tracer ~worker:p ~ts:t
                  (Nd_trace.Event.Steal_success { victim; vertex = Some v });
              Some (v, steal_cost)
            | None ->
              if traced then
                Nd_trace.Collector.emit tracer ~worker:p ~ts:t
                  (Nd_trace.Event.Steal_attempt { victim });
              None))
      in
      match task with
      | Some (v, extra) ->
        let m0 = if traced then Array.copy misses else [||] in
        let d = extra + vertex_cost p v in
        if traced then begin
          Nd_trace.Collector.emit tracer ~worker:p ~ts:t
            (Nd_trace.Event.Strand_begin
               { vertex = v; work = Dag.work_of dag v; label = Dag.label dag v });
          for j = 1 to h do
            let dm = misses.(j - 1) - m0.(j - 1) in
            if dm > 0 then
              Nd_trace.Collector.emit tracer ~worker:p ~ts:t
                (Nd_trace.Event.Cache_miss
                   { level = j; count = dm;
                     cost = dm * Pmh.miss_cost machine ~level:j })
          done
        end;
        running.(p) <- v;
        resident := !resident + fp_words v;
        if !resident > !space_hwm then space_hwm := !resident;
        busy := !busy + d;
        Heap.push events (t + d) p
      | None -> idle.(p) <- true
    end
  done;
  if !executed < nv then failwith "Work_steal.run: stalled (cyclic DAG?)";
  {
    time = !makespan;
    work = Dag.work dag;
    misses;
    miss_cost = !total_miss_cost;
    space_hwm = !space_hwm;
    steals = !steals;
    busy = !busy;
    n_procs;
    miss_table = Nd_mem.Miss_table.of_sims caches;
  }

module Shared : Scheduler.S = struct
  let name = "ws"

  (* comm_delay is a no-op: work stealing already pays [steal_cost] on
     every migration, which is its communication-delay model *)
  let run ?(seed = 0x5eed) ?comm_delay:_ program machine =
    let s = run ~seed program machine in
    {
      Scheduler.time = s.time;
      work = s.work;
      span = Dag.span (Nd.Program.dag program);
      misses = s.misses;
      miss_cost = s.miss_cost;
      space_hwm = s.space_hwm;
      busy = s.busy;
      n_procs = s.n_procs;
      miss_table = Some s.miss_table;
    }
end
