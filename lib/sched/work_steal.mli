(** Randomized work-stealing baseline (the scheduler the paper's SB
    design is compared against, cf. [47, 48]).

    Simulates classic Chase–Lev-style work stealing directly over the
    algorithm DAG: each processor owns a deque of ready vertices, pushes
    newly enabled successors to its bottom, and steals from a uniformly
    random victim's top when empty.  Locality is modelled with an
    inclusive multi-level LRU hierarchy on the same PMH geometry — shared
    caches see the interleaved streams of the processors below them, so
    steals destroy the locality that SB anchoring preserves; comparing
    per-level misses against {!Sb_sched} is experiment E6. *)

type stats = {
  time : int;
  work : int;
  misses : int array;  (** per cache level *)
  miss_cost : int;
  space_hwm : int;
      (** peak sum of footprints of concurrently running strands *)
  steals : int;
  busy : int;
  n_procs : int;
  miss_table : Nd_mem.Miss_table.t;
      (** per-(level, cache-instance) miss counts; [misses] are its
          level totals *)
}

(** [run ?seed ?steal_cost ?tracer program machine] — simulate;
    [steal_cost] (default 2) time units per successful steal.  With
    [tracer] (one ring per simulated processor), emits per-vertex strand
    begin/end, steal attempt/success, fire and per-level cache-miss
    events at simulation timestamps; tracing never perturbs the
    schedule or the stats. *)
val run :
  ?seed:int -> ?steal_cost:int -> ?tracer:Nd_trace.Collector.t ->
  Nd.Program.t -> Nd_pmh.Pmh.t -> stats

val utilization : stats -> float

val pp_stats : Format.formatter -> stats -> unit

(** Zoo face; default steal cost, [comm_delay] is a no-op (the steal
    cost already models migration latency). *)
module Shared : Scheduler.S
