let all : (string * (module Scheduler.S)) list =
  [
    ("greedy", (module Greedy.Shared));
    ("sb", (module Sb_sched.Shared));
    ("ws", (module Work_steal.Shared));
    ("pdf", (module Pdf_sched.Shared));
    ("tree", (module Tree_sched.Shared));
  ]

let find name = List.assoc_opt name all

let names = List.map fst all
