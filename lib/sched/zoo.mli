(** The scheduler zoo: every simulated scheduler behind its
    {!Scheduler.S} face, keyed by the name the CLI and the E10 suite
    experiment use.  Order is the comparison order of the E10 table:
    greedy (cache-blind envelope), sb (the paper's scheduler), ws (its
    baseline), pdf, tree (the related-work peers). *)

val all : (string * (module Scheduler.S)) list

val find : string -> (module Scheduler.S) option

val names : string list
