module Json = Nd_util.Json

type 'v entry = { value : 'v; mutable stamp : int }

type ('k, 'v) t = {
  name : string;
  cap : int;
  tbl : ('k, 'v entry) Hashtbl.t;
  lock : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~name ~cap () =
  let cap = max 1 cap in
  {
    name;
    cap;
    tbl = Hashtbl.create (min 64 (2 * cap));
    lock = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let name t = t.name

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let evict_lru t =
  (* caps are tens of entries: an O(size) scan on the eviction path is
     cheaper than maintaining an intrusive list *)
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, s) when s <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.tbl;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.evictions <- t.evictions + 1
  | None -> ()

let find_or_compute t k f =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | Some e ->
        t.hits <- t.hits + 1;
        touch t e;
        e.value
      | None ->
        t.misses <- t.misses + 1;
        let value = f () in
        if Hashtbl.length t.tbl >= t.cap then evict_lru t;
        let e = { value; stamp = 0 } in
        touch t e;
        Hashtbl.add t.tbl k e;
        value)

let find_opt t k =
  Mutex.protect t.lock (fun () ->
      Option.map (fun e -> e.value) (Hashtbl.find_opt t.tbl k))

let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.tbl)

let hits t = t.hits

let misses t = t.misses

let evictions t = t.evictions

let stats_json t =
  Json.Obj
    [
      ("name", Json.String t.name);
      ("size", Json.Int (length t));
      ("cap", Json.Int t.cap);
      ("hits", Json.Int t.hits);
      ("misses", Json.Int t.misses);
      ("evictions", Json.Int t.evictions);
    ]
