module Json = Nd_util.Json

type 'v entry = { value : 'v; mutable stamp : int }

(* a key's slot is either a cached value or a single-flight marker: the
   first misser installs [Pending] and computes outside the lock; racers
   on the same key wait on [cond] instead of recomputing *)
type 'v slot = Ready of 'v entry | Pending

type ('k, 'v) t = {
  name : string;
  cap : int;
  tbl : ('k, 'v slot) Hashtbl.t;
  lock : Mutex.t;
  cond : Condition.t;
  mutable n_ready : int;  (* Ready slots in [tbl]; capacity counts these *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~name ~cap () =
  let cap = max 1 cap in
  {
    name;
    cap;
    tbl = Hashtbl.create (min 64 (2 * cap));
    lock = Mutex.create ();
    cond = Condition.create ();
    n_ready = 0;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let name t = t.name

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let evict_lru t =
  (* caps are tens of entries: an O(size) scan on the eviction path is
     cheaper than maintaining an intrusive list.  Pending slots are not
     evictable — they hold no value and their computer expects to find
     them on completion. *)
  let victim = ref None in
  Hashtbl.iter
    (fun k s ->
      match s with
      | Pending -> ()
      | Ready e -> (
        match !victim with
        | Some (_, st) when st <= e.stamp -> ()
        | _ -> victim := Some (k, e.stamp)))
    t.tbl;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.n_ready <- t.n_ready - 1;
    t.evictions <- t.evictions + 1
  | None -> ()

let find_or_compute t k f =
  let action =
    Mutex.protect t.lock (fun () ->
        let rec classify () =
          match Hashtbl.find_opt t.tbl k with
          | Some (Ready e) ->
            t.hits <- t.hits + 1;
            touch t e;
            `Hit e.value
          | Some Pending ->
            (* someone is computing this key: wait; on wake the slot is
               Ready (count as a hit), or gone because the compute raised
               (reclassify and become the new computer) *)
            Condition.wait t.cond t.lock;
            classify ()
          | None ->
            t.misses <- t.misses + 1;
            Hashtbl.replace t.tbl k Pending;
            `Compute
        in
        classify ())
  in
  match action with
  | `Hit v -> v
  | `Compute -> (
    (* the expensive part runs outside the cache lock: misses on
       distinct keys overlap, and only same-key callers block *)
    match f () with
    | value ->
      Mutex.protect t.lock (fun () ->
          Hashtbl.remove t.tbl k;
          if t.n_ready >= t.cap then evict_lru t;
          let e = { value; stamp = 0 } in
          touch t e;
          Hashtbl.add t.tbl k (Ready e);
          t.n_ready <- t.n_ready + 1;
          Condition.broadcast t.cond);
      value
    | exception exn ->
      Mutex.protect t.lock (fun () ->
          Hashtbl.remove t.tbl k;
          Condition.broadcast t.cond);
      raise exn)

let find_opt t k =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | Some (Ready e) -> Some e.value
      | Some Pending | None -> None)

let length t = Mutex.protect t.lock (fun () -> t.n_ready)

let hits t = t.hits

let misses t = t.misses

let evictions t = t.evictions

let stats_json t =
  Json.Obj
    [
      ("name", Json.String t.name);
      ("size", Json.Int (length t));
      ("cap", Json.Int t.cap);
      ("hits", Json.Int t.hits);
      ("misses", Json.Int t.misses);
      ("evictions", Json.Int t.evictions);
    ]
