(** Keyed LRU caches over the server's hot artifacts.

    Mutex-guarded bookkeeping with {e per-key single-flight} computes:
    the first misser of a key installs an in-flight marker and runs the
    compute function {e outside} the cache lock; racers on the {e same}
    key block on a condition variable and pick up the finished value
    (counted as hits), while misses on {e distinct} keys overlap — a
    slow suite compile no longer serializes every other compile on the
    same cache.  A compute that raises wakes its waiters empty-handed;
    the first of them retries the compute itself.

    Keys use structural equality/hashing; values are never mutated by
    the cache.  Capacity eviction is strict LRU (stamped on every
    hit); in-flight keys don't count against capacity and are never
    evicted. *)

type ('k, 'v) t

(** [create ~name ~cap ()] — [cap >= 1] entries (clamped). *)
val create : name:string -> cap:int -> unit -> ('k, 'v) t

val name : _ t -> string

(** [find_or_compute t k f] — the cached value, or [f ()] inserted
    under [k] (evicting the least recently used entry if full).  [f]
    runs outside the cache lock; concurrent callers with the same key
    run [f] once and share the result.  Exceptions from [f] propagate
    to the computing caller and cache nothing. *)
val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

(** Peek without computing or touching LRU order. *)
val find_opt : ('k, 'v) t -> 'k -> 'v option

val length : _ t -> int

val hits : _ t -> int

val misses : _ t -> int

val evictions : _ t -> int

(** [{"name";"size";"cap";"hits";"misses";"evictions"}]. *)
val stats_json : _ t -> Nd_util.Json.t
