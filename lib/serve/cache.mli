(** Keyed LRU caches over the server's hot artifacts.

    Mutex-guarded, with the compute function run {e inside} the lock:
    a given key is computed exactly once however many pool workers
    race on it (single-flight), at the cost of serializing concurrent
    misses of one cache — the right trade for artifacts that are
    expensive to build and cheap to look up (compiled programs, race
    verdicts, experiment tables).  Distinct caches have distinct
    locks, so e.g. a long suite build never blocks the lint cache.

    Keys use structural equality/hashing; values are never mutated by
    the cache.  Capacity eviction is strict LRU (stamped on every
    hit). *)

type ('k, 'v) t

(** [create ~name ~cap ()] — [cap >= 1] entries (clamped). *)
val create : name:string -> cap:int -> unit -> ('k, 'v) t

val name : _ t -> string

(** [find_or_compute t k f] — the cached value, or [f ()] inserted
    under [k] (evicting the least recently used entry if full).
    Exceptions from [f] propagate and cache nothing. *)
val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

(** Peek without computing or touching LRU order. *)
val find_opt : ('k, 'v) t -> 'k -> 'v option

val length : _ t -> int

val hits : _ t -> int

val misses : _ t -> int

val evictions : _ t -> int

(** [{"name";"size";"cap";"hits";"misses";"evictions"}]. *)
val stats_json : _ t -> Nd_util.Json.t
