module Json = Nd_util.Json
module P = Protocol

type t = {
  fd : Unix.file_descr;
  dec : Json.Frame.decoder;
  buf : Bytes.t;
  mutable next_id : int;
}

let connect addr =
  let fd =
    match (addr : P.addr) with
    | P.Unix_path path ->
      let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
      (try Unix.connect fd (ADDR_UNIX path)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
    | P.Tcp (host, port) ->
      let inet =
        try (Unix.gethostbyname host).h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      (try
         Unix.connect fd (ADDR_INET (inet, port));
         Unix.setsockopt fd TCP_NODELAY true
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
  in
  { fd; dec = Json.Frame.decoder (); buf = Bytes.create 65536; next_id = 1 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < n then
      let k = Unix.write fd b off (n - off) in
      go (off + k)
  in
  go 0

let send t req =
  let id = t.next_id in
  t.next_id <- id + 1;
  write_all t.fd (Json.Frame.encode (P.request_to_json { P.id; req }));
  id

let rec recv t =
  match Json.Frame.next t.dec with
  | Some json -> P.response_of_json json
  | None ->
    let k = Unix.read t.fd t.buf 0 (Bytes.length t.buf) in
    if k = 0 then raise End_of_file;
    Json.Frame.feed t.dec t.buf 0 k;
    recv t

let call t req =
  let id = send t req in
  let rec await () =
    let r = recv t in
    if r.P.id = id then r else await ()
    (* single caller: mismatched ids only happen if [send]/[recv] pairs
       were interleaved; skipping is the defensible recovery *)
  in
  await ()

let call_exn t req =
  match (call t req).P.result with
  | Ok v -> v
  | Error msg -> failwith msg
