(** A blocking client for the analysis server.

    Ids are assigned by the client, monotonically per connection.
    {!call} is the synchronous one-request path; {!send}/{!recv} split
    the two halves so a caller can keep a pipeline window of requests
    in flight on one connection (the load generator's closed loop).
    Responses are returned in arrival order, which for a window > 1
    need not be send order — match on {!Protocol.response}[.id]. *)

type t

(** @raise Unix.Unix_error when the server is unreachable. *)
val connect : Protocol.addr -> t

val close : t -> unit

(** [send t req] — frame and write the request, returning its id. *)
val send : t -> Protocol.request -> int

(** [recv t] — block until the next complete response frame.
    @raise End_of_file if the server closed the connection
    @raise Nd_util.Json.Frame.Error / {!Protocol.Protocol_error} on a
    malformed stream. *)
val recv : t -> Protocol.response

(** [call t req] = {!send} then {!recv} (single request in flight). *)
val call : t -> Protocol.request -> Protocol.response

(** [call_exn t req] — {!call}, unwrapping the payload.
    @raise Failure on an error response. *)
val call_exn : t -> Protocol.request -> Nd_util.Json.t
