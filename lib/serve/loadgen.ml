module Json = Nd_util.Json
module Histogram = Nd_util.Histogram
module Table = Nd_util.Table
module P = Protocol

let now_ns () = Int64.to_int (Monotonic_clock.now ())

type spec = {
  addr : P.addr;
  clients : int;
  duration : float;
  pipeline : int;
  mix : (string * int) list;
  wk : P.workload_key;
  top : int;
}

type result = {
  wall_s : float;
  completed : int;
  failures : int;
  throughput : float;
  per_kind : (string * Histogram.t) list;
}

let known_kinds = [ "ping"; "lint"; "race"; "analyze"; "simulate"; "stats" ]

let parse_mix s =
  let tokens =
    String.split_on_char ',' s
    |> List.concat_map (String.split_on_char ':')
    |> List.filter_map (fun tok ->
           let tok = String.trim tok in
           if tok = "" then None else Some tok)
  in
  if tokens = [] then failwith "empty mix";
  List.map
    (fun tok ->
      let kind, weight =
        match String.index_opt tok '=' with
        | None -> (tok, 1)
        | Some i -> (
          let k = String.sub tok 0 i
          and w = String.sub tok (i + 1) (String.length tok - i - 1) in
          match int_of_string_opt w with
          | Some w when w >= 1 -> (k, w)
          | _ -> Printf.ksprintf failwith "bad weight in mix token %S" tok)
      in
      let kind = if kind = "sim" then "simulate" else kind in
      if not (List.mem kind known_kinds) then
        Printf.ksprintf failwith "unknown mix kind %S (expected %s)" kind
          (String.concat ", " known_kinds);
      (kind, weight))
    tokens

let request_of_kind spec = function
  | "ping" -> P.Ping
  | "lint" -> P.Lint spec.wk
  | "race" -> P.Race spec.wk
  | "analyze" -> P.Analyze { wk = spec.wk; top = spec.top }
  | "simulate" -> P.Simulate { wk = spec.wk; top = spec.top; fine = false }
  | "stats" -> P.Stats
  | k -> Printf.ksprintf failwith "unknown request kind %S" k

(* the weighted mix expanded into a request cycle, interleaved by
   repeated weight decrement so e.g. 2:1:1 yields a b c a — no long
   same-kind bursts *)
let cycle_of_mix mix =
  let mix = List.filter (fun (_, w) -> w > 0) mix in
  let remaining = Array.of_list (List.map snd mix) in
  let names = Array.of_list (List.map fst mix) in
  let out = ref [] in
  let left = ref (Array.fold_left ( + ) 0 remaining) in
  while !left > 0 do
    Array.iteri
      (fun i w ->
        if w > 0 then begin
          out := names.(i) :: !out;
          remaining.(i) <- w - 1;
          decr left
        end)
      remaining
  done;
  Array.of_list (List.rev !out)

type client_out = {
  mutable c_completed : int;
  mutable c_failures : int;
  c_hists : (string * Histogram.t) array;
}

let run_client spec deadline_ns out =
  let conn = Client.connect spec.addr in
  let cycle = cycle_of_mix spec.mix in
  let kind_idx =
    let tbl = Hashtbl.create 8 in
    Array.iteri (fun i (k, _) -> Hashtbl.replace tbl k i) out.c_hists;
    fun k -> Hashtbl.find tbl k
  in
  let inflight = Hashtbl.create (2 * spec.pipeline) in
  let pos = ref 0 in
  let send_next () =
    let kind = cycle.(!pos mod Array.length cycle) in
    incr pos;
    let id = Client.send conn (request_of_kind spec kind) in
    Hashtbl.replace inflight id (now_ns (), kind)
  in
  let settle (r : P.response) =
    match Hashtbl.find_opt inflight r.P.id with
    | None -> ()
    | Some (t0, kind) ->
      Hashtbl.remove inflight r.P.id;
      out.c_completed <- out.c_completed + 1;
      (match r.P.result with
      | Ok _ -> ()
      | Error _ -> out.c_failures <- out.c_failures + 1);
      Histogram.record (snd out.c_hists.(kind_idx kind)) (now_ns () - t0)
  in
  (try
     for _ = 1 to max 1 spec.pipeline do
       send_next ()
     done;
     while now_ns () < deadline_ns do
       settle (Client.recv conn);
       send_next ()
     done;
     (* drain the window without refilling it *)
     while Hashtbl.length inflight > 0 do
       settle (Client.recv conn)
     done
   with End_of_file | Unix.Unix_error _ | Json.Frame.Error _ ->
     (* connection died: everything still in flight is lost *)
     out.c_failures <- out.c_failures + Hashtbl.length inflight);
  Client.close conn

let run spec =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let clients = max 1 spec.clients in
  let kinds = List.map fst spec.mix in
  let outs =
    Array.init clients (fun _ ->
        {
          c_completed = 0;
          c_failures = 0;
          c_hists =
            Array.of_list (List.map (fun k -> (k, Histogram.create ())) kinds);
        })
  in
  let t_start = now_ns () in
  let deadline = t_start + int_of_float (spec.duration *. 1e9) in
  let threads =
    Array.map
      (fun out -> Thread.create (fun () -> run_client spec deadline out) ())
      outs
  in
  Array.iter Thread.join threads;
  let wall_s = float_of_int (now_ns () - t_start) /. 1e9 in
  let merged = List.map (fun k -> (k, Histogram.create ())) kinds in
  Array.iter
    (fun out ->
      Array.iter
        (fun (k, h) -> Histogram.merge ~into:(List.assoc k merged) h)
        out.c_hists)
    outs;
  let completed = Array.fold_left (fun a o -> a + o.c_completed) 0 outs in
  let failures = Array.fold_left (fun a o -> a + o.c_failures) 0 outs in
  {
    wall_s;
    completed;
    failures;
    throughput = (if wall_s > 0. then float_of_int completed /. wall_s else 0.);
    per_kind = merged;
  }

let us ns = float_of_int ns /. 1e3

let table r =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "loadgen: %d requests in %.2fs = %.0f req/s (%d failure(s))"
           r.completed r.wall_s r.throughput r.failures)
      [ "kind"; "count"; "p50 us"; "p90 us"; "p95 us"; "p99 us"; "max us" ]
  in
  List.iter
    (fun (k, h) ->
      if Histogram.count h > 0 then
        Table.add_row t
          [
            k;
            Table.cell_int (Histogram.count h);
            Table.cell_float ~prec:1 (us (Histogram.percentile h 0.50));
            Table.cell_float ~prec:1 (us (Histogram.percentile h 0.90));
            Table.cell_float ~prec:1 (us (Histogram.percentile h 0.95));
            Table.cell_float ~prec:1 (us (Histogram.percentile h 0.99));
            Table.cell_float ~prec:1 (us (Histogram.max_value h));
          ])
    r.per_kind;
  t

let to_json spec r =
  Json.Obj
    [
      ( "title",
        Json.String
          "BENCH_5: analysis-server closed-loop latency and throughput" );
      ( "config",
        Json.Obj
          [
            ("clients", Json.Int spec.clients);
            ("duration_s", Json.Float spec.duration);
            ("pipeline", Json.Int spec.pipeline);
            ( "mix",
              Json.Obj
                (List.map (fun (k, w) -> (k, Json.Int w)) spec.mix) );
            ("algo", Json.String spec.wk.P.algo);
            ( "n",
              match spec.wk.P.n with Some n -> Json.Int n | None -> Json.Null
            );
            ( "base",
              match spec.wk.P.base with
              | Some b -> Json.Int b
              | None -> Json.Null );
            ("seed", Json.Int spec.wk.P.seed);
          ] );
      ("wall_s", Json.Float r.wall_s);
      ("completed", Json.Int r.completed);
      ("failures", Json.Int r.failures);
      ("throughput_rps", Json.Float r.throughput);
      ( "latency_ns",
        Json.Obj
          (List.filter_map
             (fun (k, h) ->
               if Histogram.count h > 0 then Some (k, Histogram.to_json h)
               else None)
             r.per_kind) );
      ("table", Table.to_json (table r));
    ]
