(** Closed-loop load generator for the analysis server.

    [clients] threads each keep a window of [pipeline] requests in
    flight on their own connection (window 1 = classic one-at-a-time
    closed loop) for [duration] seconds, drawing request kinds from a
    weighted [mix].  Latency is measured per request from send to
    response arrival and recorded in per-client per-kind
    {!Nd_util.Histogram}s, merged into the final {!result} — the
    numbers behind BENCH_5. *)

type spec = {
  addr : Protocol.addr;
  clients : int;
  duration : float;  (** seconds *)
  pipeline : int;  (** requests in flight per connection, >= 1 *)
  mix : (string * int) list;  (** request kind -> weight *)
  wk : Protocol.workload_key;  (** workload the lint/race/sim requests hit *)
  top : int;  (** PMH root fanout for simulate requests *)
}

type result = {
  wall_s : float;  (** measured wall-clock, connect to last drain *)
  completed : int;
  failures : int;  (** error responses + requests lost to dead connections *)
  throughput : float;  (** completed / wall_s *)
  per_kind : (string * Nd_util.Histogram.t) list;  (** latency, ns *)
}

(** [parse_mix s] — comma/colon-separated [kind] or [kind=weight]
    tokens, e.g. ["lint=2,sim=1,race=1"] or ["lint:sim:race"].  [sim]
    is shorthand for [simulate].
    @raise Failure on an unknown kind or malformed weight. *)
val parse_mix : string -> (string * int) list

val run : spec -> result

(** Human-readable per-kind latency table (microseconds). *)
val table : result -> Nd_util.Table.t

(** The BENCH_5 payload: config echo, totals, and the per-kind
    histogram table. *)
val to_json : spec -> result -> Nd_util.Json.t
