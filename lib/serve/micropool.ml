type t = {
  name : string;
  size : int;
  queue : (wid:int -> unit) Mpmc.t;
  lock : Mutex.t;  (* guards [domains] / lazy start *)
  mutable domains : unit Domain.t list;
  executed : int Atomic.t;
  errors : int Atomic.t;
  last_error : string option Atomic.t;
}

let create ?(shards = 4) ~name ~size () =
  {
    name;
    size = max 1 size;
    queue = Mpmc.create ~shards ();
    lock = Mutex.create ();
    domains = [];
    executed = Atomic.make 0;
    errors = Atomic.make 0;
    last_error = Atomic.make None;
  }

let name t = t.name

let size t = t.size

let started t = Mutex.protect t.lock (fun () -> t.domains <> [])

(* Request-level errors are counted and retained; fatal runtime
   exceptions must NOT be swallowed into the same counter — a pool
   that has hit Out_of_memory or a broken invariant is not healthy,
   and hiding that behind an incrementing [errors] field was a bug.
   Re-raising kills this worker and surfaces the exception at
   [shutdown]'s join. *)
let worker t wid =
  let rec loop () =
    match Mpmc.pop t.queue with
    | None -> ()
    | Some job ->
      (match job ~wid with
      | () -> Atomic.incr t.executed
      | exception ((Out_of_memory | Stack_overflow | Assert_failure _) as e)
        ->
        raise e
      | exception e ->
        Atomic.incr t.errors;
        Atomic.set t.last_error (Some (Printexc.to_string e)));
      loop ()
  in
  loop ()

let ensure_started t =
  Mutex.protect t.lock (fun () ->
      if t.domains = [] && not (Mpmc.is_closed t.queue) then
        t.domains <-
          List.init t.size (fun wid -> Domain.spawn (fun () -> worker t wid)))

let submit t job =
  ensure_started t;
  Mpmc.push t.queue job

let executed t = Atomic.get t.executed

let errors t = Atomic.get t.errors

let last_error t = Atomic.get t.last_error

let backlog t = Mpmc.length t.queue

let shutdown t =
  Mpmc.close t.queue;
  let ds = Mutex.protect t.lock (fun () ->
      let ds = t.domains in
      t.domains <- [];
      ds)
  in
  List.iter Domain.join ds
