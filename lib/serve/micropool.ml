type t = {
  name : string;
  size : int;
  queue : (wid:int -> unit) Mpmc.t;
  lock : Mutex.t;  (* guards [domains] / lazy start *)
  mutable domains : unit Domain.t list;
  executed : int Atomic.t;
  errors : int Atomic.t;
}

let create ?(shards = 4) ~name ~size () =
  {
    name;
    size = max 1 size;
    queue = Mpmc.create ~shards ();
    lock = Mutex.create ();
    domains = [];
    executed = Atomic.make 0;
    errors = Atomic.make 0;
  }

let name t = t.name

let size t = t.size

let started t = Mutex.protect t.lock (fun () -> t.domains <> [])

let worker t wid =
  let rec loop () =
    match Mpmc.pop t.queue with
    | None -> ()
    | Some job ->
      (try job ~wid with _ -> Atomic.incr t.errors);
      Atomic.incr t.executed;
      loop ()
  in
  loop ()

let ensure_started t =
  Mutex.protect t.lock (fun () ->
      if t.domains = [] && not (Mpmc.is_closed t.queue) then
        t.domains <-
          List.init t.size (fun wid -> Domain.spawn (fun () -> worker t wid)))

let submit t job =
  ensure_started t;
  Mpmc.push t.queue job

let executed t = Atomic.get t.executed

let errors t = Atomic.get t.errors

let backlog t = Mpmc.length t.queue

let shutdown t =
  Mpmc.close t.queue;
  let ds = Mutex.protect t.lock (fun () ->
      let ds = t.domains in
      t.domains <- [];
      ds)
  in
  List.iter Domain.join ds
