(** Named worker micropools.

    A micropool is a fixed-size team of domains draining a private
    sharded {!Mpmc} queue of jobs.  Domains are spawned {e lazily} on
    the first {!submit} — a server configured with pools the traffic
    never touches pays nothing for them — and joined by {!shutdown}.
    Jobs receive their worker index [wid] in [0 .. size-1] so callers
    can keep per-worker state (the server keys latency histograms by
    it) without synchronization.

    A job that raises a request-level exception is counted in
    {!errors} (its message retained in {!last_error}) and the worker
    moves on.  Fatal runtime exceptions — [Out_of_memory],
    [Stack_overflow], [Assert_failure] — are {e not} absorbed: they
    kill the worker and re-raise at {!shutdown}'s join, because a pool
    that has hit one is no longer trustworthy. *)

type t

(** [create ~name ~size ()] — [size >= 1] domains (clamped), queue
    sharded [shards] ways (default 4). *)
val create : ?shards:int -> name:string -> size:int -> unit -> t

val name : t -> string

val size : t -> int

(** Domains spawned (first {!submit} happened). *)
val started : t -> bool

(** [submit t job] enqueues [job]; spawns the workers if this is the
    first submission.  @raise Mpmc.Closed after {!shutdown}. *)
val submit : t -> (wid:int -> unit) -> unit

(** Jobs completed successfully (erroring jobs count only in
    {!errors}). *)
val executed : t -> int

(** Jobs that raised a request-level exception. *)
val errors : t -> int

(** [Printexc.to_string] of the most recent erroring job's exception,
    for the server's [stats] response. *)
val last_error : t -> string option

(** Jobs enqueued and not yet picked up (approximate). *)
val backlog : t -> int

(** Close the queue, drain remaining jobs, join the domains.
    Idempotent. *)
val shutdown : t -> unit
