type 'a shard = { lock : Mutex.t; items : 'a Queue.t }

type 'a t = {
  shards : 'a shard array;
  push_ctr : int Atomic.t;  (* round-robin producer cursor *)
  pop_ctr : int Atomic.t;  (* round-robin consumer scan start *)
  (* global rendezvous: [avail] counts undelivered items and is only
     touched under [glock]; a consumer that decrements it owns one item
     that is already in (or on its way out of) some shard *)
  glock : Mutex.t;
  gcond : Condition.t;
  mutable avail : int;
  mutable closed : bool;
}

exception Closed

let create ?(shards = 4) () =
  let shards = max 1 shards in
  {
    shards =
      Array.init shards (fun _ ->
          { lock = Mutex.create (); items = Queue.create () });
    push_ctr = Atomic.make 0;
    pop_ctr = Atomic.make 0;
    glock = Mutex.create ();
    gcond = Condition.create ();
    avail = 0;
    closed = false;
  }

let n_shards t = Array.length t.shards

(* the round-robin cursors only ever increment, so on a long-running
   daemon they wrap past [max_int] and go negative; [mod] keeps the
   sign of the dividend in OCaml, so [t.shards.(-k)] would raise.
   Masking the sign bit first keeps the index in [0, n) forever (the
   round-robin sequence hiccups by one step at the wrap, which is
   harmless — shard choice is load-spreading, not correctness). *)
let cursor_next ctr = Atomic.fetch_and_add ctr 1 land max_int

(* The closed check, the shard enqueue and the [avail] publish must be
   one atomic step under [glock].  The pre-fix sequence — check
   [closed] unlocked, enqueue, then lock to publish — lost jobs: a
   [close] landing between enqueue and publish lets consumers observe
   [avail = 0 && closed], return [None] and get joined, after which
   the late publish strands the enqueued job forever.  (Enqueuing
   outside the window is no better: the item would sit unpublished in
   its shard and be handed to whichever consumer reserved a
   {e different} push, silently swapping a rejected job for an
   accepted one.)  Lock order glock -> shard lock is safe: no path
   acquires them in the other order ([pop] takes shard locks with
   [glock] released).  Every push already took [glock] to publish, so
   this widens an existing critical section rather than adding one. *)
let push t x =
  let s = t.shards.(cursor_next t.push_ctr mod n_shards t) in
  Mutex.protect t.glock (fun () ->
      if t.closed then raise Closed;
      Mutex.protect s.lock (fun () -> Queue.push x s.items);
      t.avail <- t.avail + 1;
      Condition.signal t.gcond)

let scan_once t =
  let n = n_shards t in
  let start = cursor_next t.pop_ctr mod n in
  let rec go i =
    if i = n then None
    else
      let s = t.shards.((start + i) mod n) in
      match Mutex.protect s.lock (fun () -> Queue.take_opt s.items) with
      | Some _ as r -> r
      | None -> go (i + 1)
  in
  go 0

(* keep scanning until the reserved item is found: producers enqueue
   before publishing, so at most [reservations in flight] sweeps can
   miss — in practice the first sweep hits *)
let rec take_reserved t =
  match scan_once t with
  | Some _ as r -> r
  | None ->
    Domain.cpu_relax ();
    take_reserved t

let pop t =
  let reserved =
    Mutex.protect t.glock (fun () ->
        let rec wait () =
          if t.avail > 0 then begin
            t.avail <- t.avail - 1;
            true
          end
          else if t.closed then false
          else begin
            Condition.wait t.gcond t.glock;
            wait ()
          end
        in
        wait ())
  in
  if reserved then take_reserved t else None

let try_pop t =
  let reserved =
    Mutex.protect t.glock (fun () ->
        if t.avail > 0 then begin
          t.avail <- t.avail - 1;
          true
        end
        else false)
  in
  if reserved then take_reserved t else None

let length t = Mutex.protect t.glock (fun () -> max 0 t.avail)

let close t =
  Mutex.protect t.glock (fun () ->
      t.closed <- true;
      Condition.broadcast t.gcond)

let is_closed t = t.closed

let unsafe_set_cursors t v =
  Atomic.set t.push_ctr v;
  Atomic.set t.pop_ctr v
