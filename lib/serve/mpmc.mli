(** A sharded multi-producer multi-consumer queue.

    Items live in [shards] independent mutex-protected segments;
    producers and consumers pick segments round-robin off relaxed
    atomic counters, so under load the segment locks are touched by
    [1/shards] of the traffic each — the layout ebsl's
    [multi_mpmc_queue] measurements showed scaling far better than a
    single locked queue.  A small global rendezvous (counter +
    condition variable) exists only to let consumers {e block} without
    missed wake-ups; its critical section is a handful of instructions
    per operation.

    FIFO is per-shard only: the queue as a whole is unordered by
    design (requests carry ids; responses may interleave). *)

type 'a t

exception Closed

(** [create ?shards ()] — [shards] defaults to 4. *)
val create : ?shards:int -> unit -> 'a t

(** Atomic with respect to {!close}: a push either raises [Closed] or
    fully enqueues-and-publishes its item before close's broadcast, so
    an accepted item is always drained.  @raise Closed after
    {!close}. *)
val push : 'a t -> 'a -> unit

(** Blocks until an item is available or the queue is closed {e and}
    drained; [None] means closed-and-drained (consumers should exit). *)
val pop : 'a t -> 'a option

(** Non-blocking variant: [None] when currently empty (closed or not). *)
val try_pop : 'a t -> 'a option

(** Items currently enqueued (approximate under concurrency). *)
val length : 'a t -> int

(** Close the queue: further pushes raise, blocked and future pops
    drain the remaining items and then return [None].  Idempotent. *)
val close : 'a t -> unit

val is_closed : 'a t -> bool

(** Test hook: place both round-robin cursors at [v] (e.g. near
    [max_int]) to exercise the overflow wrap.  Not for production use —
    racing it against live producers/consumers only perturbs shard
    choice, but that is all it is for. *)
val unsafe_set_cursors : 'a t -> int -> unit
