module Json = Nd_util.Json

type workload_key = {
  algo : string;
  n : int option;
  base : int option;
  seed : int;
  np : bool;
}

type request =
  | Ping
  | Lint of workload_key
  | Race of workload_key
  | Analyze of { wk : workload_key; top : int }
  | Simulate of { wk : workload_key; top : int; fine : bool }
  | Fuzz of { count : int; seed : int; max_depth : int }
  | Suite of { exp : string }
  | Stats
  | Shutdown

type envelope = { id : int; req : request }

type response = { id : int; result : (Json.t, string) result }

exception Protocol_error of string

let kinds =
  [|
    "ping"; "lint"; "race"; "analyze"; "simulate"; "fuzz"; "suite"; "stats";
    "shutdown";
  |]

let kind_name = function
  | Ping -> "ping"
  | Lint _ -> "lint"
  | Race _ -> "race"
  | Analyze _ -> "analyze"
  | Simulate _ -> "simulate"
  | Fuzz _ -> "fuzz"
  | Suite _ -> "suite"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let kind_index r =
  let name = kind_name r in
  let rec go i = if kinds.(i) = name then i else go (i + 1) in
  go 0

(* ------------------------------ encode ----------------------------- *)

let wk_fields wk =
  [ ("algo", Json.String wk.algo) ]
  @ (match wk.n with Some n -> [ ("n", Json.Int n) ] | None -> [])
  @ (match wk.base with Some b -> [ ("base", Json.Int b) ] | None -> [])
  @ [ ("seed", Json.Int wk.seed); ("np", Json.Bool wk.np) ]

let request_to_json { id; req } =
  let kind = ("kind", Json.String (kind_name req)) in
  let fields =
    match req with
    | Ping | Stats | Shutdown -> [ kind ]
    | Lint wk | Race wk -> kind :: wk_fields wk
    | Analyze { wk; top } -> (kind :: wk_fields wk) @ [ ("top", Json.Int top) ]
    | Simulate { wk; top; fine } ->
      (kind :: wk_fields wk)
      @ [ ("top", Json.Int top); ("fine", Json.Bool fine) ]
    | Fuzz { count; seed; max_depth } ->
      [
        kind;
        ("count", Json.Int count);
        ("seed", Json.Int seed);
        ("max_depth", Json.Int max_depth);
      ]
    | Suite { exp } -> [ kind; ("exp", Json.String exp) ]
  in
  Json.Obj (("id", Json.Int id) :: fields)

let response_to_json { id; result } =
  Json.Obj
    [
      ("id", Json.Int id);
      (match result with
      | Ok v -> ("ok", v)
      | Error msg -> ("error", Json.String msg));
    ]

(* ------------------------------ decode ----------------------------- *)

let fail fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

let get_int j key =
  match Json.member key j with
  | Some (Json.Int i) -> i
  | Some _ -> fail "field %S must be an integer" key
  | None -> fail "missing field %S" key

let get_int_opt j key =
  match Json.member key j with
  | Some (Json.Int i) -> Some i
  | Some _ -> fail "field %S must be an integer" key
  | None -> None

let get_bool_default j key default =
  match Json.member key j with
  | Some (Json.Bool b) -> b
  | Some _ -> fail "field %S must be a boolean" key
  | None -> default

let get_string j key =
  match Json.member key j with
  | Some (Json.String s) -> s
  | Some _ -> fail "field %S must be a string" key
  | None -> fail "missing field %S" key

let wk_of_json j =
  {
    algo = get_string j "algo";
    n = get_int_opt j "n";
    base = get_int_opt j "base";
    seed = (match get_int_opt j "seed" with Some s -> s | None -> 42);
    np = get_bool_default j "np" false;
  }

let request_of_json j =
  (match j with Json.Obj _ -> () | _ -> fail "request must be an object");
  let id = get_int j "id" in
  let req =
    match get_string j "kind" with
    | "ping" -> Ping
    | "lint" -> Lint (wk_of_json j)
    | "race" -> Race (wk_of_json j)
    | "analyze" ->
      Analyze
        {
          wk = wk_of_json j;
          top = (match get_int_opt j "top" with Some t -> t | None -> 1);
        }
    | "simulate" ->
      Simulate
        {
          wk = wk_of_json j;
          top = (match get_int_opt j "top" with Some t -> t | None -> 1);
          fine = get_bool_default j "fine" false;
        }
    | "fuzz" ->
      Fuzz
        {
          count = get_int j "count";
          seed = (match get_int_opt j "seed" with Some s -> s | None -> 42);
          max_depth =
            (match get_int_opt j "max_depth" with
            | Some d -> d
            | None -> Nd_check.Gen.default_params.max_depth);
        }
    | "suite" -> Suite { exp = get_string j "exp" }
    | "stats" -> Stats
    | "shutdown" -> Shutdown
    | other -> fail "unknown request kind %S" other
  in
  { id; req }

let response_of_json j =
  (match j with Json.Obj _ -> () | _ -> fail "response must be an object");
  let id = get_int j "id" in
  match (Json.member "ok" j, Json.member "error" j) with
  | Some v, None -> { id; result = Ok v }
  | None, Some (Json.String msg) -> { id; result = Error msg }
  | None, Some _ -> fail "field \"error\" must be a string"
  | Some _, Some _ -> fail "response carries both \"ok\" and \"error\""
  | None, None -> fail "response carries neither \"ok\" nor \"error\""

(* ----------------------------- addresses --------------------------- *)

type addr = Unix_path of string | Tcp of string * int

let pp_addr ppf = function
  | Unix_path p -> Format.fprintf ppf "unix:%s" p
  | Tcp (h, p) -> Format.fprintf ppf "tcp:%s:%d" h p

let addr_of_string s =
  match String.rindex_opt s ':' with
  | Some i -> (
    let host = String.sub s 0 i
    and port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 && host <> "" -> Tcp (host, p)
    | _ -> Unix_path s)
  | None -> Unix_path s
