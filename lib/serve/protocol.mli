(** The request/response vocabulary of the analysis server, and its JSON
    codec.

    Every wire message is one length-prefixed {!Nd_util.Json.Frame}.  A
    request frame is an object [{"id": <int>, "kind": <string>, ...}];
    the response frame echoes the id and carries either an ["ok"] payload
    or an ["error"] string:

    {v
    -> {"id":7,"kind":"lint","algo":"mm","n":16,"base":4,"seed":42,"np":false}
    <- {"id":7,"ok":{"algo":"mm","errors":0,"warnings":0,"findings":[]}}
    v}

    The codec is total in both directions — [of_json (to_json x) = x] —
    which the framing test suite checks for every kind. *)

(** Identifies one workload instance; [n]/[base] fall back to the
    family defaults when omitted.  This tuple (plus the compile mode)
    is the cache key for every artifact derived from the workload. *)
type workload_key = {
  algo : string;
  n : int option;
  base : int option;
  seed : int;
  np : bool;  (** compile the nested-parallel projection *)
}

type request =
  | Ping
  | Lint of workload_key
  | Race of workload_key  (** ESP-bags determinacy-race verdict *)
  | Analyze of { wk : workload_key; top : int }
      (** structural {!Nd_analyze.Cost} report plus Theorem-1
          certification against the standard PMH with [top] root
          caches *)
  | Simulate of { wk : workload_key; top : int; fine : bool }
      (** space-bounded scheduler simulation on the standard PMH with
          [top] root caches *)
  | Fuzz of { count : int; seed : int; max_depth : int }
  | Suite of { exp : string }  (** one experiment table, e.g. ["e1"] *)
  | Stats  (** latency histograms, cache and pool counters *)
  | Shutdown

type envelope = { id : int; req : request }

type response = { id : int; result : (Nd_util.Json.t, string) result }

(** Raised by the [of_json] decoders on a structurally invalid message
    (unknown kind, missing or ill-typed field). *)
exception Protocol_error of string

(** All request kinds, in a fixed order — the index is used to key
    per-kind latency histograms. *)
val kinds : string array

val kind_name : request -> string

(** [kind_index r] — index of [kind_name r] in {!kinds}. *)
val kind_index : request -> int

val request_to_json : envelope -> Nd_util.Json.t

val request_of_json : Nd_util.Json.t -> envelope

val response_to_json : response -> Nd_util.Json.t

val response_of_json : Nd_util.Json.t -> response

(** {2 Server addresses} *)

type addr =
  | Unix_path of string  (** unix-domain socket at this path *)
  | Tcp of string * int  (** host, port *)

val pp_addr : Format.formatter -> addr -> unit

(** [addr_of_string s] — ["host:port"] when [s] contains a colon and the
    suffix parses as a port, otherwise a unix socket path. *)
val addr_of_string : string -> addr
