module Json = Nd_util.Json
module Histogram = Nd_util.Histogram
module Workloads = Nd_experiments.Workloads
module Workload = Nd_algos.Workload
module P = Protocol

let now_ns () = Int64.to_int (Monotonic_clock.now ())

type config = {
  addr : P.addr;
  pool_sizes : (string * int) list;
  shards : int;
  max_frame : int;
  program_cache_cap : int;
  result_cache_cap : int;
  quiet : bool;
  fiber_pool : int option;
      (* [Some w]: dispatch every pooled request as a fiber on one shared
         [w]-worker effects pool instead of the named micropools *)
}

let default_config addr =
  {
    addr;
    pool_sizes = [];
    shards = 4;
    max_frame = Json.Frame.default_max_frame;
    program_cache_cap = 32;
    result_cache_cap = 256;
    quiet = false;
    fiber_pool = None;
  }

let standard_machine ~top =
  Nd_pmh.Pmh.create ~root_fanout:top
    [
      { Nd_pmh.Pmh.size = 64; fanout = 1; miss_cost = 2 };
      { Nd_pmh.Pmh.size = 512; fanout = 4; miss_cost = 8 };
      { Nd_pmh.Pmh.size = 4096; fanout = 4; miss_cost = 32 };
    ]

(* ----------------------------- state ------------------------------- *)

(* canonical cache key: [n]/[base] resolved against the family defaults
   happens at build time, so two spellings of the same instance share
   an entry only when their option fields match; that is deliberate —
   keys stay cheap and structural *)
(* key records are consumed structurally (hashed/compared), never
   projected — silence the unused-field analysis *)
type prog_key = {
  algo : string;
  n : int option;
  base : int option;
  seed : int;
  np : bool;
}
[@@warning "-69"]

let prog_key_of_wk (wk : P.workload_key) =
  { algo = wk.algo; n = wk.n; base = wk.base; seed = wk.seed; np = wk.np }

type sim_key = { pk : prog_key; top : int; fine : bool } [@@warning "-69"]

type cost_key = { cpk : prog_key; ctop : int } [@@warning "-69"]

type fuzz_key = { count : int; fseed : int; max_depth : int }
[@@warning "-69"]

type pool_slot = { pool : Micropool.t; offset : int  (* first worker slot *) }

type t = {
  cfg : config;
  programs : (prog_key, Workload.t * Nd.Program.t) Cache.t;
  lint_results : (prog_key, Json.t) Cache.t;
  race_results : (prog_key, Json.t) Cache.t;
  cost_results : (cost_key, Json.t) Cache.t;
  sim_results : (sim_key, Json.t) Cache.t;
  fuzz_results : (fuzz_key, Json.t) Cache.t;
  suite_results : (string, Json.t) Cache.t;
  pools : (string * pool_slot) list;
  (* shared effects pool replacing the micropools when [cfg.fiber_pool]
     is set; the micropools still exist but never start *)
  fiber : Nd_runtime.Fiber_exec.t option;
  (* worker slot -> kind -> latencies ns; each slot is written by one
     worker domain while the stats path reads concurrently, so slots are
     mutex-guarded Sync histograms (a bare Histogram.record racing a
     merge yields count/bucket mismatches and garbage percentiles) *)
  hists : Histogram.Sync.t array array;
  (* fiber-pool latencies are keyed by kind only: a fiber that parked on
     a promise may resume on any worker, so per-worker unsynchronized
     slots would race *)
  fiber_hists : Histogram.Sync.t array;
  inline_hists : Histogram.t array;  (* kinds answered by reader threads *)
  inline_lock : Mutex.t;
  stop : bool Atomic.t;
  started_ns : int;
  n_requests : int Atomic.t;
  n_errors : int Atomic.t;
  mutable listen_fd : Unix.file_descr option;
  listen_lock : Mutex.t;
}

let pool_names = [ "analyze"; "simulate"; "fuzz" ]

let create cfg =
  let default_size = max 1 (Nd_runtime.Executor.default_workers () / 2) in
  let sizes =
    List.map
      (fun name ->
        ( name,
          match List.assoc_opt name cfg.pool_sizes with
          | Some s -> max 1 s
          | None -> default_size ))
      pool_names
  in
  let pools, total =
    List.fold_left
      (fun (acc, off) (name, size) ->
        let pool = Micropool.create ~shards:cfg.shards ~name ~size () in
        ((name, { pool; offset = off }) :: acc, off + size))
      ([], 0) sizes
  in
  let n_kinds = Array.length P.kinds in
  {
    cfg;
    programs = Cache.create ~name:"programs" ~cap:cfg.program_cache_cap ();
    lint_results = Cache.create ~name:"lint" ~cap:cfg.result_cache_cap ();
    race_results = Cache.create ~name:"race" ~cap:cfg.result_cache_cap ();
    cost_results = Cache.create ~name:"analyze" ~cap:cfg.result_cache_cap ();
    sim_results = Cache.create ~name:"simulate" ~cap:cfg.result_cache_cap ();
    fuzz_results = Cache.create ~name:"fuzz" ~cap:cfg.result_cache_cap ();
    suite_results = Cache.create ~name:"suite" ~cap:16 ();
    pools = List.rev pools;
    fiber =
      Option.map
        (fun w ->
          Nd_runtime.Fiber_exec.create ~workers:(max 1 w) ~name:"fiber" ())
        cfg.fiber_pool;
    hists =
      Array.init total (fun _ ->
          Array.init n_kinds (fun _ -> Histogram.Sync.create ()));
    fiber_hists = Array.init n_kinds (fun _ -> Histogram.Sync.create ());
    inline_hists = Array.init n_kinds (fun _ -> Histogram.create ());
    inline_lock = Mutex.create ();
    stop = Atomic.make false;
    started_ns = now_ns ();
    n_requests = Atomic.make 0;
    n_errors = Atomic.make 0;
    listen_fd = None;
    listen_lock = Mutex.create ();
  }

let pool_for st req =
  let name =
    match (req : P.request) with
    | P.Lint _ | P.Race _ | P.Analyze _ -> "analyze"
    | P.Simulate _ | P.Suite _ -> "simulate"
    | P.Fuzz _ -> "fuzz"
    | P.Ping | P.Stats | P.Shutdown -> assert false
  in
  List.assoc name st.pools

(* ---------------------------- handlers ----------------------------- *)

let fail fmt = Printf.ksprintf failwith fmt

let compiled st (wk : P.workload_key) =
  let key = prog_key_of_wk wk in
  Cache.find_or_compute st.programs key (fun () ->
      let fam =
        match Workloads.find wk.algo with
        | fam -> fam
        | exception Not_found ->
          fail "unknown algorithm %s (expected one of %s)" wk.algo
            (String.concat ", " (Workloads.names ()))
      in
      let w = Workloads.build ?n:wk.n ?base:wk.base fam ~seed:wk.seed in
      let mode = if wk.np then Workload.NP else Workload.ND in
      (w, Workload.compile ~mode w))

let wk_fields (w : Workload.t) =
  [
    ("algo", Json.String w.name);
    ("n", Json.Int w.n);
    ("base", Json.Int w.base);
  ]

let handle_lint st wk =
  Cache.find_or_compute st.lint_results (prog_key_of_wk wk) (fun () ->
      let w, _p = compiled st wk in
      let module Lint = Nd_analyze.Lint in
      let fs = Lint.lint_all ~registry:w.Workload.registry w.Workload.tree in
      let count s = List.length (List.filter (fun f -> f.Lint.severity = s) fs) in
      Json.Obj
        (wk_fields w
        @ [
            ("errors", Json.Int (count Lint.Error));
            ("warnings", Json.Int (count Lint.Warning));
            ("findings", Lint.to_json fs);
          ]))

let handle_race st wk =
  Cache.find_or_compute st.race_results (prog_key_of_wk wk) (fun () ->
      let w, p = compiled st wk in
      let v = Nd_analyze.Esp_bags.analyze p in
      let s = v.Nd_analyze.Esp_bags.stats in
      Json.Obj
        (wk_fields w
        @ [
            ("race_free", Json.Bool (v.Nd_analyze.Esp_bags.races = []));
            ("n_races", Json.Int (List.length v.Nd_analyze.Esp_bags.races));
            ("n_leaves", Json.Int s.Nd_analyze.Esp_bags.n_leaves);
            ("n_fire_edges", Json.Int s.Nd_analyze.Esp_bags.n_fire_edges);
            ("n_accesses", Json.Int s.Nd_analyze.Esp_bags.n_accesses);
          ]))

let handle_analyze st wk ~top =
  let key = { cpk = prog_key_of_wk wk; ctop = top } in
  Cache.find_or_compute st.cost_results key (fun () ->
      let w, p = compiled st wk in
      let module Cost = Nd_analyze.Cost in
      let cost = Cost.of_program p in
      let cert = Cost.certify_theorem1 p (standard_machine ~top) in
      Json.Obj
        (wk_fields w
        @ [
            ("top", Json.Int top);
            ("report", Cost.report_to_json (Cost.report cost));
            ("certification", Cost.certification_to_json cert);
          ]))

let handle_simulate st wk ~top ~fine =
  let key = { pk = prog_key_of_wk wk; top; fine } in
  Cache.find_or_compute st.sim_results key (fun () ->
      let w, p = compiled st wk in
      let machine = standard_machine ~top in
      let mode =
        if fine then Nd_sched.Sb_sched.Fine else Nd_sched.Sb_sched.Coarse
      in
      let s = Nd_sched.Sb_sched.run ~mode p machine in
      Json.Obj
        (wk_fields w
        @ [
            ("top", Json.Int top);
            ("fine", Json.Bool fine);
            ("time", Json.Int s.Nd_sched.Sb_sched.time);
            ("work", Json.Int s.Nd_sched.Sb_sched.work);
            ("miss_cost", Json.Int s.Nd_sched.Sb_sched.miss_cost);
            ( "misses",
              Json.List
                (Array.to_list
                   (Array.map (fun m -> Json.Int m) s.Nd_sched.Sb_sched.misses))
            );
            ("n_anchors", Json.Int s.Nd_sched.Sb_sched.n_anchors);
            ("n_procs", Json.Int s.Nd_sched.Sb_sched.n_procs);
            ( "utilization",
              Json.Float (Nd_sched.Sb_sched.utilization s) );
          ]))

let handle_fuzz st ~count ~seed ~max_depth =
  let key = { count; fseed = seed; max_depth } in
  Cache.find_or_compute st.fuzz_results key (fun () ->
      let params = { Nd_check.Gen.default_params with max_depth } in
      let failures = ref [] and n_failed = ref 0 in
      let race_free = ref 0 and paths = ref 0 in
      for i = 0 to count - 1 do
        let case_seed = seed + i in
        let spec = Nd_check.Gen.generate ~seed:case_seed ~params () in
        match Nd_check.Oracle.check_spec spec with
        | Ok r ->
          if r.Nd_check.Oracle.race_free then incr race_free;
          paths := !paths + r.Nd_check.Oracle.paths
        | Error _ ->
          incr n_failed;
          if List.length !failures < 16 then
            failures := case_seed :: !failures
      done;
      Json.Obj
        [
          ("cases", Json.Int count);
          ("seed", Json.Int seed);
          ("race_free", Json.Int !race_free);
          ("paths", Json.Int !paths);
          ("failures", Json.Int !n_failed);
          ( "failing_seeds",
            Json.List (List.rev_map (fun s -> Json.Int s) !failures) );
        ])

let handle_suite st ~exp =
  Cache.find_or_compute st.suite_results exp (fun () ->
      match List.assoc_opt exp Nd_experiments.Suite.all with
      | None ->
        fail "unknown experiment %s (expected overview, e1..e12)" exp
      | Some build -> Nd_util.Table.to_json (build ()))

let uptime_s st = float_of_int (now_ns () - st.started_ns) /. 1e9

let stats_json st =
  let n_kinds = Array.length P.kinds in
  let merged = Array.init n_kinds (fun _ -> Histogram.create ()) in
  Array.iter
    (fun row ->
      Array.iteri (fun k h -> Histogram.Sync.merge_into ~into:merged.(k) h) row)
    st.hists;
  Array.iteri
    (fun k h -> Histogram.Sync.merge_into ~into:merged.(k) h)
    st.fiber_hists;
  Mutex.protect st.inline_lock (fun () ->
      Array.iteri (fun k h -> Histogram.merge ~into:merged.(k) h) st.inline_hists);
  let kinds =
    Array.to_list
      (Array.mapi
         (fun k h ->
           (P.kinds.(k), Histogram.to_json h))
         merged)
    |> List.filter (fun (_, j) ->
           match Json.member "count" j with
           | Some (Json.Int 0) -> false
           | _ -> true)
  in
  let fiber_fields =
    match st.fiber with
    | None -> []
    | Some fp ->
      let module F = Nd_runtime.Fiber_exec in
      let s = F.stats fp in
      [
        ( "fiber_pool",
          Json.Obj
            [
              ("name", Json.String (F.name fp));
              ("workers", Json.Int s.F.workers);
              ("started", Json.Bool (F.started fp));
              ("fibers", Json.Int s.F.fibers);
              ("completed", Json.Int s.F.completed);
              ("suspensions", Json.Int s.F.suspensions);
              ("steals", Json.Int s.F.steals);
              ("peak_blocked", Json.Int s.F.peak_blocked);
              ("blocked", Json.Int s.F.blocked);
              ("errors", Json.Int s.F.errors);
              ( "last_error",
                match F.last_error fp with
                | Some e -> Json.String e
                | None -> Json.Null );
            ] );
      ]
  in
  Json.Obj
    ([
      ("uptime_s", Json.Float (uptime_s st));
      ("requests", Json.Int (Atomic.get st.n_requests));
      ("errors", Json.Int (Atomic.get st.n_errors));
      ("latency_ns", Json.Obj kinds);
      ( "caches",
        Json.List
          [
            Cache.stats_json st.programs;
            Cache.stats_json st.lint_results;
            Cache.stats_json st.race_results;
            Cache.stats_json st.cost_results;
            Cache.stats_json st.sim_results;
            Cache.stats_json st.fuzz_results;
            Cache.stats_json st.suite_results;
          ] );
      ( "pools",
        Json.List
          (List.map
             (fun (name, { pool; _ }) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("size", Json.Int (Micropool.size pool));
                   ("started", Json.Bool (Micropool.started pool));
                   ("executed", Json.Int (Micropool.executed pool));
                   ("errors", Json.Int (Micropool.errors pool));
                   ("backlog", Json.Int (Micropool.backlog pool));
                   ( "last_error",
                     match Micropool.last_error pool with
                     | Some e -> Json.String e
                     | None -> Json.Null );
                 ])
             st.pools) );
    ]
    @ fiber_fields)

let handle st (req : P.request) =
  match req with
  | P.Ping -> Json.Obj [ ("pong", Json.Bool true) ]
  | P.Stats -> stats_json st
  | P.Shutdown -> Json.Obj [ ("stopping", Json.Bool true) ]
  | P.Lint wk -> handle_lint st wk
  | P.Race wk -> handle_race st wk
  | P.Analyze { wk; top } -> handle_analyze st wk ~top
  | P.Simulate { wk; top; fine } -> handle_simulate st wk ~top ~fine
  | P.Fuzz { count; seed; max_depth } -> handle_fuzz st ~count ~seed ~max_depth
  | P.Suite { exp } -> handle_suite st ~exp

(* -------------------------- connections ---------------------------- *)

type conn = {
  fd : Unix.file_descr;
  wlock : Mutex.t;
  mutable alive : bool;
}

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < n then
      let k = Unix.write fd b off (n - off) in
      go (off + k)
  in
  go 0

let write_frame st conn json =
  Mutex.protect conn.wlock (fun () ->
      if conn.alive then
        try write_all conn.fd (Json.Frame.encode json)
        with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
          conn.alive <- false;
          Atomic.incr st.n_errors)

let result_of_handle st req =
  match handle st req with
  | v -> Ok v
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg
  | exception e -> Error (Printexc.to_string e)

let respond st conn ~id result =
  if Result.is_error result then Atomic.incr st.n_errors;
  write_frame st conn (P.response_to_json { P.id; result })

let initiate_stop st =
  if not (Atomic.exchange st.stop true) then
    (* [shutdown] (not [close]) on the listener: on Linux a close from
       another thread leaves a blocked [accept] blocked forever, while
       shutdown wakes it with EINVAL.  The fd itself is closed by
       [run]'s epilogue once the accept loop has returned. *)
    Mutex.protect st.listen_lock (fun () ->
        match st.listen_fd with
        | Some fd -> (
          try Unix.shutdown fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ())
        | None -> ())

let record_inline st kind_idx dt =
  Mutex.protect st.inline_lock (fun () ->
      Histogram.record st.inline_hists.(kind_idx) dt)

let dispatch st conn ({ P.id; req } : P.envelope) =
  let t0 = now_ns () in
  Atomic.incr st.n_requests;
  match req with
  | P.Ping | P.Stats ->
    respond st conn ~id (result_of_handle st req);
    record_inline st (P.kind_index req) (now_ns () - t0)
  | P.Shutdown ->
    respond st conn ~id (result_of_handle st req);
    record_inline st (P.kind_index req) (now_ns () - t0);
    initiate_stop st
  | _ -> (
    let kind_idx = P.kind_index req in
    match st.fiber with
    | Some fp ->
      let job () =
        respond st conn ~id (result_of_handle st req);
        Histogram.Sync.record st.fiber_hists.(kind_idx) (now_ns () - t0)
      in
      (try Nd_runtime.Fiber_exec.submit fp job
       with Nd_runtime.Fiber_exec.Closed ->
         respond st conn ~id (Error "server shutting down"))
    | None ->
      let { pool; offset } = pool_for st req in
      let job ~wid =
        respond st conn ~id (result_of_handle st req);
        Histogram.Sync.record st.hists.(offset + wid).(kind_idx) (now_ns () - t0)
      in
      (try Micropool.submit pool job
       with Mpmc.Closed -> respond st conn ~id (Error "server shutting down")))

(* best-effort id for an error response to a frame that decoded as JSON
   but not as a request envelope *)
let salvage_id json =
  match Json.member "id" json with Some (Json.Int i) -> i | _ -> 0

let reader st conn =
  let buf = Bytes.create 65536 in
  let dec = Json.Frame.decoder ~max_frame:st.cfg.max_frame () in
  let rec drain () =
    match Json.Frame.next dec with
    | None -> ()
    | Some json ->
      (match P.request_of_json json with
      | env -> dispatch st conn env
      | exception P.Protocol_error msg ->
        Atomic.incr st.n_errors;
        write_frame st conn
          (P.response_to_json { P.id = salvage_id json; result = Error msg }));
      drain ()
  in
  let rec loop () =
    match Unix.read conn.fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | k ->
      Json.Frame.feed dec buf 0 k;
      drain ();
      loop ()
    | exception Unix.Unix_error ((ECONNRESET | EBADF | EPIPE), _, _) -> ()
  in
  (try loop ()
   with Json.Frame.Error msg ->
     (* framing is broken: report once and drop the connection *)
     Atomic.incr st.n_errors;
     write_frame st conn (P.response_to_json { P.id = 0; result = Error msg }));
  Mutex.protect conn.wlock (fun () -> conn.alive <- false);
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* ----------------------------- sockets ----------------------------- *)

let listen_on addr =
  match (addr : P.addr) with
  | P.Unix_path path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    Unix.bind fd (ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | P.Tcp (host, port) ->
    let inet =
      try (Unix.gethostbyname host).h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.setsockopt fd SO_REUSEADDR true;
    Unix.bind fd (ADDR_INET (inet, port));
    Unix.listen fd 64;
    fd

let run cfg =
  let st = create cfg in
  (* a dead client's half-closed socket must cost an EPIPE, not the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = listen_on cfg.addr in
  Mutex.protect st.listen_lock (fun () -> st.listen_fd <- Some fd);
  let prev_int = ref Sys.Signal_default and prev_term = ref Sys.Signal_default in
  (try
     prev_int :=
       Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> initiate_stop st));
     prev_term :=
       Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> initiate_stop st))
   with Invalid_argument _ -> ());
  if not cfg.quiet then begin
    Format.printf "ndsim serve: listening on %a (pools: %s)@." P.pp_addr
      cfg.addr
      (match st.fiber with
      | Some fp ->
        Printf.sprintf "fiber=%d" (Nd_runtime.Fiber_exec.n_workers fp)
      | None ->
        String.concat ", "
          (List.map
             (fun (n, { pool; _ }) ->
               Printf.sprintf "%s=%d" n (Micropool.size pool))
             st.pools));
    Format.print_flush ()
  end;
  let rec accept_loop () =
    if not (Atomic.get st.stop) then
      match Unix.accept fd with
      | conn_fd, _ ->
        (match cfg.addr with
        | P.Tcp _ -> (
          try Unix.setsockopt conn_fd TCP_NODELAY true
          with Unix.Unix_error _ -> ())
        | P.Unix_path _ -> ());
        let conn = { fd = conn_fd; wlock = Mutex.create (); alive = true } in
        ignore (Thread.create (fun () -> reader st conn) ());
        accept_loop ()
      | exception Unix.Unix_error (EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) ->
        (* listener closed by [initiate_stop] *)
        ()
  in
  accept_loop ();
  initiate_stop st;
  Mutex.protect st.listen_lock (fun () ->
      st.listen_fd <- None;
      try Unix.close fd with Unix.Unix_error _ -> ());
  List.iter (fun (_, { pool; _ }) -> Micropool.shutdown pool) st.pools;
  Option.iter Nd_runtime.Fiber_exec.shutdown st.fiber;
  (match cfg.addr with
  | P.Unix_path path -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | P.Tcp _ -> ());
  (try Sys.set_signal Sys.sigint !prev_int with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm !prev_term with Invalid_argument _ -> ());
  if not cfg.quiet then begin
    Format.printf "ndsim serve: clean shutdown after %d request(s)@."
      (Atomic.get st.n_requests);
    Format.print_flush ()
  end
