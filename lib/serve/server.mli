(** The analysis daemon: a socket front-end over the whole offline
    toolchain (lint, ESP race verdicts, space-bounded simulation, fuzz,
    experiment tables), with keyed artifact caches so repeated queries
    are O(lookup).

    Topology (see DESIGN.md section 11): one accept loop; one reader
    thread per connection decoding length-prefixed
    {!Nd_util.Json.Frame}s; decoded requests are enqueued on the
    sharded {!Mpmc} queue of the micropool owning their kind
    ([analyze] for lint/race, [simulate] for simulate/suite, [fuzz]
    for fuzz); pool domains execute and write the response frame back
    under the connection's write lock (responses may therefore
    interleave across requests — clients match on [id]).  [ping],
    [stats] and [shutdown] are answered inline by the reader thread.

    Per-request latency (decode to response written, queue wait
    included) is recorded in a per-worker per-kind
    {!Nd_util.Histogram} and merged on demand by the [stats]
    request. *)

type config = {
  addr : Protocol.addr;
  pool_sizes : (string * int) list;
      (** overrides for the [analyze]/[simulate]/[fuzz] pools; default
          size for each is [max 1 (Executor.default_workers () / 2)] *)
  shards : int;  (** request-queue shards per pool *)
  max_frame : int;  (** reject frames above this many payload bytes *)
  program_cache_cap : int;  (** compiled-workload entries *)
  result_cache_cap : int;  (** entries per result cache *)
  quiet : bool;
  fiber_pool : int option;
      (** [Some w]: run every pooled request as a fiber on one shared
          [w]-worker {!Nd_runtime.Fiber_exec} pool instead of the named
          micropools (which then exist but never start).  Handlers may
          use {!Nd_runtime.Fiber_exec.spawn}/[await] internally; a
          parked handler frees its worker for other requests.  Latency
          histograms are then keyed by kind only — a resumed fiber may
          finish on any worker. *)
}

val default_config : Protocol.addr -> config

(** The standard simulation machine of the CLI: three cache levels
    (64/512/4096 words) under [top] root caches, 16 processors each. *)
val standard_machine : top:int -> Nd_pmh.Pmh.t

(** [run config] — bind, serve until a [shutdown] request (or
    SIGINT/SIGTERM), drain the pools, clean up the socket.  Blocks for
    the server's whole life; returns on clean shutdown.
    @raise Unix.Unix_error when the address cannot be bound. *)
val run : config -> unit
