module Dag = Nd_dag.Dag

type interval = {
  worker : int;
  vertex : int;
  label : string;
  work : int;
  t0 : int;
  t1 : int;
}

let intervals t =
  let stacks = Hashtbl.create 16 in
  let stack w =
    match Hashtbl.find_opt stacks w with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks w s;
      s
  in
  let out = ref [] in
  List.iter
    (fun e ->
      let s = stack e.Event.worker in
      match e.Event.kind with
      | Event.Strand_begin { vertex; work; label } ->
        s := (vertex, work, label, e.Event.ts) :: !s
      | Event.Strand_end { vertex } -> (
        match !s with
        | (v, work, label, t0) :: rest when v = vertex ->
          s := rest;
          out :=
            { worker = e.Event.worker; vertex = v; label; work; t0; t1 = e.Event.ts }
            :: !out
        | _ -> (* unmatched end (ring overflow ate the begin): drop *) ())
      | _ -> ())
    (Collector.events t);
  List.stable_sort (fun a b -> compare a.t0 b.t0) (List.rev !out)

let traced_work t ~n =
  let tw = Array.make n 0 in
  List.iter
    (fun e ->
      match e.Event.kind with
      (* out-of-range ids (notably the fork-join executor's historical
         [-1] placeholder) must never be charged to a real vertex *)
      | Event.Strand_begin { vertex; work; _ } when vertex >= 0 && vertex < n ->
        tw.(vertex) <- work
      | _ -> ())
    (Collector.events t);
  tw

let critical_path t dag =
  let tw = traced_work t ~n:(Dag.n_vertices dag) in
  Dag.longest_path_weighted dag (fun v -> tw.(v))

let coverage t dag =
  let n = Dag.n_vertices dag in
  let tw = traced_work t ~n in
  let traced = ref 0 and total = ref 0 in
  for v = 0 to n - 1 do
    if Dag.work_of dag v > 0 then begin
      incr total;
      if tw.(v) > 0 then incr traced
    end
  done;
  (!traced, !total)

let inclusive_by_label t =
  let acc = Hashtbl.create 64 in
  List.iter
    (fun iv ->
      let count, time =
        match Hashtbl.find_opt acc iv.label with
        | Some (c, tt) -> (c, tt)
        | None -> (0, 0)
      in
      Hashtbl.replace acc iv.label (count + 1, time + (iv.t1 - iv.t0)))
    (intervals t);
  let rows = Hashtbl.fold (fun l (c, tt) acc -> (l, c, tt) :: acc) acc [] in
  List.sort (fun (_, _, a) (_, _, b) -> compare b a) rows
