(** Trace analysis: strand intervals, per-strand inclusive time and the
    trace-derived critical path.

    The critical path is computed {e from the trace}: each DAG vertex is
    weighted by the work recorded in its [Strand_begin] event (vertices
    that never appear in the trace weigh 0), and the heaviest path through
    the algorithm DAG is taken.  On a complete vertex-granular trace
    (serial, work-stealing or dataflow execution) this must equal
    [Nd.Analysis]'s ND span — the cross-check run by [test_trace]. *)

type interval = {
  worker : int;
  vertex : int;
  label : string;
  work : int;
  t0 : int;
  t1 : int;
}

(** [intervals t] — matched [Strand_begin]/[Strand_end] pairs, per-worker
    (begin/end nest per worker; unmatched events are dropped), in global
    timestamp order of their begins. *)
val intervals : Collector.t -> interval list

(** [traced_work t ~n] — per-vertex work as recorded in the trace, for
    vertices [0 <= v < n]; untraced vertices are 0. *)
val traced_work : Collector.t -> n:int -> int array

(** [critical_path t dag] — length of the heaviest [dag] path under
    {!traced_work} weights. *)
val critical_path : Collector.t -> Nd_dag.Dag.t -> int

(** [coverage t dag] — [(traced, total)] counts of positive-work DAG
    vertices; [traced = total] means the critical path is exact. *)
val coverage : Collector.t -> Nd_dag.Dag.t -> int * int

(** [inclusive_by_label t] — [(label, executions, total time)] aggregated
    over strand intervals, heaviest first. *)
val inclusive_by_label : Collector.t -> (string * int * int) list
