module Json = Nd_util.Json

let us to_us ts = Json.Float (float_of_int ts *. to_us)

let base ~name ~cat ~ph ~ts_us ~tid args =
  let fields =
    [
      ("name", Json.String name);
      ("cat", Json.String cat);
      ("ph", Json.String ph);
      ("ts", ts_us);
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
    ]
  in
  match args with [] -> Json.Obj fields | _ -> Json.Obj (fields @ [ ("args", Json.Obj args) ])

let counter ~name ~ts_us value =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "C");
      ("ts", ts_us);
      ("pid", Json.Int 0);
      ("args", Json.Obj [ ("value", Json.Int value) ]);
    ]

let instant ~name ~cat ~ts_us ~tid args =
  let fields =
    [
      ("name", Json.String name);
      ("cat", Json.String cat);
      ("ph", Json.String "i");
      ("s", Json.String "t");
      ("ts", ts_us);
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
    ]
  in
  Json.Obj (fields @ [ ("args", Json.Obj args) ])

let to_json t =
  let to_us = Collector.ts_to_us t in
  let anchored = ref 0 in
  let max_level = ref 0 in
  List.iter
    (fun e ->
      match e.Event.kind with
      | Event.Cache_miss { level; _ }
      | Event.Anchor_create { level; _ }
      | Event.Anchor_release { level; _ } ->
        if level > !max_level then max_level := level
      | _ -> ())
    (Collector.events t);
  let cum_misses = Array.make (!max_level + 1) 0 in
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String "ndsim") ]);
      ]
    :: List.init (Collector.n_workers t) (fun w ->
           Json.Obj
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int 0);
               ("tid", Json.Int w);
               ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "proc %d" w)) ]);
             ])
  in
  let of_event e =
    let ts_us = us to_us e.Event.ts in
    let tid = e.Event.worker in
    match e.Event.kind with
    | Event.Strand_begin { vertex; work; label } ->
      [
        base ~name:label ~cat:"strand" ~ph:"B" ~ts_us ~tid
          [ ("vertex", Json.Int vertex); ("work", Json.Int work) ];
      ]
    | Event.Strand_end _ -> [ base ~name:"" ~cat:"strand" ~ph:"E" ~ts_us ~tid [] ]
    | Event.Spawn { count } ->
      [ instant ~name:"spawn" ~cat:"spawn" ~ts_us ~tid [ ("count", Json.Int count) ] ]
    | Event.Fire { target; level } ->
      [
        instant ~name:"fire" ~cat:"fire" ~ts_us ~tid
          [ ("target", Json.Int target); ("level", Json.Int level) ];
      ]
    | Event.Steal_attempt { victim } ->
      [ instant ~name:"steal miss" ~cat:"steal" ~ts_us ~tid [ ("victim", Json.Int victim) ] ]
    | Event.Steal_success { victim; vertex } ->
      [
        instant ~name:"steal" ~cat:"steal" ~ts_us ~tid
          (("victim", Json.Int victim)
          :: (match vertex with Some v -> [ ("vertex", Json.Int v) ] | None -> []));
      ]
    | Event.Anchor_create { level; cache; task; size } ->
      anchored := !anchored + size;
      [
        instant ~name:(Printf.sprintf "anchor L%d" level) ~cat:"anchor" ~ts_us ~tid
          [
            ("level", Json.Int level);
            ("cache", Json.Int cache);
            ("task", Json.Int task);
            ("size", Json.Int size);
          ];
        counter ~name:"anchored footprint" ~ts_us !anchored;
      ]
    | Event.Anchor_release { level; cache; task; size } ->
      anchored := !anchored - size;
      [
        instant ~name:(Printf.sprintf "release L%d" level) ~cat:"anchor" ~ts_us ~tid
          [
            ("level", Json.Int level);
            ("cache", Json.Int cache);
            ("task", Json.Int task);
            ("size", Json.Int size);
          ];
        counter ~name:"anchored footprint" ~ts_us !anchored;
      ]
    | Event.Cache_miss { level; count; cost } ->
      cum_misses.(level) <- cum_misses.(level) + count;
      [
        counter ~name:(Printf.sprintf "L%d misses" level) ~ts_us cum_misses.(level);
        instant ~name:(Printf.sprintf "miss L%d" level) ~cat:"miss" ~ts_us ~tid
          [ ("count", Json.Int count); ("cost", Json.Int cost) ];
      ]
  in
  let body = List.concat_map of_event (Collector.events t) in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ body));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("generator", Json.String "ndsim");
            ("droppedEvents", Json.Int (Collector.dropped t));
          ] );
    ]

let to_string t = Json.to_string (to_json t)

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel oc (to_json t))
