(** Chrome/Perfetto [trace_event] JSON exporter.

    Produces the JSON-object form ([{"traceEvents": [...]}]) loadable in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}:

    - one named thread track per worker/processor (tid = worker id, even
      for workers that stayed idle), carrying [B]/[E] slices for strands
      and instant events for spawns, fires, steals and anchor activity;
    - a process-level counter track ["anchored footprint"] integrating
      {!Event.Anchor_create}/[Anchor_release] sizes;
    - one counter track ["L<j> misses"] per cache level accumulating
      {!Event.Cache_miss} counts.

    Timestamps are converted to microseconds with the collector's
    [ts_to_us]. *)

val to_json : Collector.t -> Nd_util.Json.t

val to_string : Collector.t -> string

val write_file : Collector.t -> string -> unit
