type ring = {
  buf : Event.t option array;
  mutable head : int;  (* index of the oldest retained event *)
  mutable len : int;
  mutable dropped : int;
}

type t = {
  enabled : bool;
  rings : ring array;
  clock : unit -> int;
  to_us : float;
}

let null =
  { enabled = false; rings = [||]; clock = (fun () -> 0); to_us = 1. }

let create ?(capacity = 1 lsl 18) ?(clock = fun () -> 0) ?(ts_to_us = 1.)
    ~workers () =
  if workers < 1 then invalid_arg "Collector.create: workers < 1";
  if capacity < 1 then invalid_arg "Collector.create: capacity < 1";
  {
    enabled = true;
    rings =
      Array.init workers (fun _ ->
          { buf = Array.make capacity None; head = 0; len = 0; dropped = 0 });
    clock;
    to_us = ts_to_us;
  }

let wallclock ?capacity ~workers () =
  (* CLOCK_MONOTONIC, immune to NTP slews that made gettimeofday-based
     intervals occasionally jump or go negative *)
  let t0 = Monotonic_clock.now () in
  let clock () = Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0) in
  create ?capacity ~clock ~ts_to_us:1e-3 ~workers ()

let enabled t = t.enabled

let n_workers t = Array.length t.rings

let ts_to_us t = t.to_us

let push r e =
  let cap = Array.length r.buf in
  if r.len < cap then begin
    r.buf.((r.head + r.len) mod cap) <- Some e;
    r.len <- r.len + 1
  end
  else begin
    r.buf.(r.head) <- Some e;
    r.head <- (r.head + 1) mod cap;
    r.dropped <- r.dropped + 1
  end

let emit t ~worker ~ts kind =
  if t.enabled && worker >= 0 && worker < Array.length t.rings then
    push t.rings.(worker) { Event.ts; worker; kind }

let emit_now t ~worker kind =
  if t.enabled && worker >= 0 && worker < Array.length t.rings then
    push t.rings.(worker) { Event.ts = t.clock (); worker; kind }

let ring_to_list r =
  let cap = Array.length r.buf in
  List.init r.len (fun i ->
      match r.buf.((r.head + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let events t =
  let all = List.concat_map ring_to_list (Array.to_list t.rings) in
  List.stable_sort (fun a b -> compare a.Event.ts b.Event.ts) all

let dropped t =
  Array.fold_left (fun acc r -> acc + r.dropped) 0 t.rings
