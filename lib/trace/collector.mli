(** The event collector: one bounded ring buffer per worker/processor.

    Designed so an untraced run pays exactly one branch per
    instrumentation point: every execution path takes an optional
    collector defaulting to {!null}, and [emit] on {!null} is a single
    [if] on an immutable record field.  Each worker writes only its own
    ring, so the real multicore runtime needs no synchronization; rings
    are merged and time-sorted when the trace is read back.

    When a ring fills up the {e oldest} events are overwritten (the tail
    of a long run is usually the interesting part) and the drop is
    counted; {!dropped} reports the total so exporters can flag truncated
    traces. *)

type t

(** The no-op sink: [emit] returns immediately, [events] is empty. *)
val null : t

(** [create ~workers ()] — an enabled collector with [workers] rings.
    [capacity] (default [2^18]) bounds each ring.  [clock] supplies
    {!emit_now} timestamps (default: always 0 — simulators pass explicit
    times).  [ts_to_us] converts stored timestamps to microseconds for
    the Chrome exporter (default 1: timestamps {e are} microseconds /
    simulator cost units).
    @raise Invalid_argument if [workers < 1] or [capacity < 1]. *)
val create :
  ?capacity:int -> ?clock:(unit -> int) -> ?ts_to_us:float -> workers:int ->
  unit -> t

(** [wallclock ~workers ()] — a collector for the real runtime: the clock
    is [CLOCK_MONOTONIC] nanoseconds since creation, and [ts_to_us] is
    [1e-3]. *)
val wallclock : ?capacity:int -> workers:int -> unit -> t

val enabled : t -> bool

val n_workers : t -> int

val ts_to_us : t -> float

(** [emit t ~worker ~ts kind] — record an event at an explicit timestamp.
    Events outside [0 <= worker < n_workers] are ignored.  Per-worker
    timestamps must be non-decreasing for the exporters to be valid. *)
val emit : t -> worker:int -> ts:int -> Event.kind -> unit

(** [emit_now t ~worker kind] — record at [clock ()] (real runtime). *)
val emit_now : t -> worker:int -> Event.kind -> unit

(** [events t] — all retained events merged across workers, stably sorted
    by timestamp (per-worker emission order is preserved). *)
val events : t -> Event.t list

(** [dropped t] — events lost to ring overflow. *)
val dropped : t -> int
