type kind =
  | Strand_begin of { vertex : int; work : int; label : string }
  | Strand_end of { vertex : int }
  | Spawn of { count : int }
  | Fire of { target : int; level : int }
  | Steal_attempt of { victim : int }
  | Steal_success of { victim : int; vertex : int option }
      (** [vertex] is [None] when the stolen unit is not a single DAG
          vertex (fork-join jobs, coarsened leaf ranges). *)
  | Anchor_create of { level : int; cache : int; task : int; size : int }
  | Anchor_release of { level : int; cache : int; task : int; size : int }
  | Cache_miss of { level : int; count : int; cost : int }

type t = { ts : int; worker : int; kind : kind }

let tag = function
  | Strand_begin _ -> "strand_begin"
  | Strand_end _ -> "strand_end"
  | Spawn _ -> "spawn"
  | Fire _ -> "fire"
  | Steal_attempt _ -> "steal_attempt"
  | Steal_success _ -> "steal_success"
  | Anchor_create _ -> "anchor_create"
  | Anchor_release _ -> "anchor_release"
  | Cache_miss _ -> "cache_miss"

let pp ppf e =
  Format.fprintf ppf "[%d @%d] %s" e.worker e.ts (tag e.kind);
  match e.kind with
  | Strand_begin { vertex; work; label } ->
    Format.fprintf ppf " v=%d work=%d %s" vertex work label
  | Strand_end { vertex } -> Format.fprintf ppf " v=%d" vertex
  | Spawn { count } -> Format.fprintf ppf " count=%d" count
  | Fire { target; level } -> Format.fprintf ppf " target=%d level=%d" target level
  | Steal_attempt { victim } -> Format.fprintf ppf " victim=%d" victim
  | Steal_success { victim; vertex } -> (
    Format.fprintf ppf " victim=%d" victim;
    match vertex with
    | Some v -> Format.fprintf ppf " v=%d" v
    | None -> ())
  | Anchor_create { level; cache; task; size }
  | Anchor_release { level; cache; task; size } ->
    Format.fprintf ppf " level=%d cache=%d task=%d size=%d" level cache task size
  | Cache_miss { level; count; cost } ->
    Format.fprintf ppf " level=%d count=%d cost=%d" level count cost
