(** Structured trace events.

    One value per observable runtime action, shared by the discrete-event
    simulators ([Nd_sched]), the serial reference executor
    ([Nd.Serial_exec]) and the real multicore runtime ([Nd_runtime]).
    Timestamps are integers in whatever unit the producing collector was
    configured with — simulated cost units for the simulators, nanoseconds
    for the wall-clock runtime (see [Collector.ts_to_us]). *)

type kind =
  | Strand_begin of { vertex : int; work : int; label : string }
      (** a worker starts executing a strand.  [vertex] is the DAG vertex
          for vertex-granular paths (serial, work stealing, and both real
          executors, which resolve each leaf to its DAG vertex), and the
          spawn-tree node of the level-1 task for the space-bounded
          scheduler.  Consumers must ignore out-of-range ids. *)
  | Strand_end of { vertex : int }
  | Spawn of { count : int }
      (** [count] parallel children were made available at once. *)
  | Fire of { target : int; level : int }
      (** the last inbound dependency of [target] was satisfied: a DAG
          vertex became ready ([level = 0]) or, in the space-bounded
          scheduler, a level-[level] task was enqueued on its anchor. *)
  | Steal_attempt of { victim : int }
      (** a steal sweep that found nothing ([victim = -1] when no specific
          victim was probed). *)
  | Steal_success of { victim : int; vertex : int option }
      (** a successful steal.  [vertex] is the stolen DAG vertex for
          vertex-granular paths and [None] when the stolen unit is not a
          single vertex (fork–join jobs, coarsened leaf ranges). *)
  | Anchor_create of { level : int; cache : int; task : int; size : int }
  | Anchor_release of { level : int; cache : int; task : int; size : int }
  | Cache_miss of { level : int; count : int; cost : int }
      (** [count] level-[level] misses charged while the current strand
          ran, at total cost [cost]. *)

type t = { ts : int; worker : int; kind : kind }

(** Short lowercase tag for a kind (used by exporters and tests). *)
val tag : kind -> string

val pp : Format.formatter -> t -> unit
