module Table = Nd_util.Table

type worker_row = {
  worker : int;
  strands : int;
  busy : int;
  fires : int;
  attempts : int;
  steals : int;
  anchors : int;
  misses : int;
  miss_cost : int;
}

let per_worker t =
  let nw = Collector.n_workers t in
  let rows =
    Array.init nw (fun worker ->
        {
          worker;
          strands = 0;
          busy = 0;
          fires = 0;
          attempts = 0;
          steals = 0;
          anchors = 0;
          misses = 0;
          miss_cost = 0;
        })
  in
  List.iter
    (fun iv ->
      let r = rows.(iv.Analyzer.worker) in
      rows.(iv.Analyzer.worker) <-
        {
          r with
          strands = r.strands + 1;
          busy = r.busy + (iv.Analyzer.t1 - iv.Analyzer.t0);
        })
    (Analyzer.intervals t);
  List.iter
    (fun e ->
      let w = e.Event.worker in
      if w >= 0 && w < nw then
        let r = rows.(w) in
        match e.Event.kind with
        | Event.Fire _ -> rows.(w) <- { r with fires = r.fires + 1 }
        | Event.Steal_attempt _ -> rows.(w) <- { r with attempts = r.attempts + 1 }
        | Event.Steal_success _ -> rows.(w) <- { r with steals = r.steals + 1 }
        | Event.Anchor_create _ -> rows.(w) <- { r with anchors = r.anchors + 1 }
        | Event.Cache_miss { count; cost; _ } ->
          rows.(w) <- { r with misses = r.misses + count; miss_cost = r.miss_cost + cost }
        | _ -> ())
    (Collector.events t);
  Array.to_list rows

let wall t =
  match Collector.events t with
  | [] -> 0
  | first :: _ as evs ->
    let last = List.fold_left (fun _ e -> e.Event.ts) first.Event.ts evs in
    last - first.Event.ts

let table t =
  let tbl =
    Table.create ~title:"trace summary: per-worker activity"
      [ "proc"; "strands"; "busy"; "util"; "fires"; "steal-"; "steal+"; "anchors";
        "misses"; "miss cost" ]
  in
  let span = wall t in
  let totals = ref (0, 0, 0, 0, 0, 0, 0, 0) in
  List.iter
    (fun r ->
      let s, b, f, a, st, an, m, mc = !totals in
      totals :=
        ( s + r.strands, b + r.busy, f + r.fires, a + r.attempts, st + r.steals,
          an + r.anchors, m + r.misses, mc + r.miss_cost );
      Table.add_row tbl
        [
          Table.cell_int r.worker;
          Table.cell_int r.strands;
          Table.cell_int r.busy;
          (if span = 0 then "-"
           else Table.cell_float ~prec:3 (float_of_int r.busy /. float_of_int span));
          Table.cell_int r.fires;
          Table.cell_int r.attempts;
          Table.cell_int r.steals;
          Table.cell_int r.anchors;
          Table.cell_int r.misses;
          Table.cell_int r.miss_cost;
        ])
    (per_worker t);
  let s, b, f, a, st, an, m, mc = !totals in
  let nw = max 1 (Collector.n_workers t) in
  Table.add_row tbl
    [
      "all";
      Table.cell_int s;
      Table.cell_int b;
      (if span = 0 then "-"
       else Table.cell_float ~prec:3 (float_of_int b /. float_of_int (span * nw)));
      Table.cell_int f;
      Table.cell_int a;
      Table.cell_int st;
      Table.cell_int an;
      Table.cell_int m;
      Table.cell_int mc;
    ];
  tbl

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Table.render (table t));
  let top = Analyzer.inclusive_by_label t in
  let rec take k = function
    | [] -> []
    | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
  in
  (match take 8 top with
  | [] -> ()
  | rows ->
    Buffer.add_string buf "top strands by inclusive time:\n";
    List.iter
      (fun (label, count, time) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-24s x%-6d %d\n" label count time))
      rows);
  let d = Collector.dropped t in
  if d > 0 then
    Buffer.add_string buf
      (Printf.sprintf "warning: %d events dropped (ring overflow)\n" d);
  Buffer.contents buf
