(** Plain-text per-worker utilization / steal summary of a trace. *)

type worker_row = {
  worker : int;
  strands : int;  (** completed strand intervals *)
  busy : int;  (** sum of strand interval durations *)
  fires : int;
  attempts : int;  (** failed steal sweeps *)
  steals : int;  (** successful steals *)
  anchors : int;
  misses : int;  (** cache misses charged, all levels *)
  miss_cost : int;
}

val per_worker : Collector.t -> worker_row list

(** [table t] — one row per worker plus a totals row; utilization is
    busy time over the trace's wall-clock extent. *)
val table : Collector.t -> Nd_util.Table.t

(** [to_string t] — {!table} rendered, followed by the top strand labels
    by inclusive time and a drop warning when the rings overflowed. *)
val to_string : Collector.t -> string
