type 'a entry = { key : int; seq : int; value : 'a }

(* Slots at indices >= n hold [None] so the heap never retains a popped
   entry (or the value it captures) beyond its lifetime: the discrete-event
   schedulers keep one long-lived heap per run, and a stale [data.(n)]
   would pin completed events for the whole simulation. *)
type 'a t = {
  mutable data : 'a entry option array;
  mutable n : int;
  mutable next_seq : int;
}

let create () = { data = [||]; n = 0; next_seq = 0 }

let is_empty t = t.n = 0

let length t = t.n

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let get t i =
  match t.data.(i) with
  | Some e -> e
  | None -> assert false

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (get t i) (get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.n && less (get t l) (get t !smallest) then smallest := l;
  if r < t.n && less (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key value =
  if t.n >= Array.length t.data then begin
    let cap = max 16 (2 * Array.length t.data) in
    let bigger = Array.make cap None in
    Array.blit t.data 0 bigger 0 t.n;
    t.data <- bigger
  end;
  t.data.(t.n) <- Some { key; seq = t.next_seq; value };
  t.next_seq <- t.next_seq + 1;
  t.n <- t.n + 1;
  sift_up t (t.n - 1)

let pop t =
  if t.n = 0 then raise Not_found;
  let top = get t 0 in
  t.n <- t.n - 1;
  if t.n > 0 then begin
    t.data.(0) <- t.data.(t.n);
    t.data.(t.n) <- None;
    sift_down t 0
  end
  else t.data.(0) <- None;
  (top.key, top.value)

let peek_key t = if t.n = 0 then raise Not_found else (get t 0).key
