(** Array-based binary min-heap with integer keys, used as the event
    queue of the discrete-event schedulers.  Ties are broken by insertion
    order (FIFO), which keeps simulations deterministic.

    The heap never retains a reference to a popped value: vacated array
    slots are cleared on {!pop} and the growth path does not seed unused
    slots with live entries, so values become collectable as soon as
    they leave the heap (regression-tested in [test_util]). *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

(** [push t key v] inserts [v] with priority [key]. *)
val push : 'a t -> int -> 'a -> unit

(** [pop t] removes and returns the minimum-key element [(key, v)].
    @raise Not_found when empty. *)
val pop : 'a t -> int * 'a

(** [peek_key t] returns the minimum key without removing.
    @raise Not_found when empty. *)
val peek_key : 'a t -> int
