(* HdrHistogram-style log-linear buckets over non-negative ints.

   Layout: values in [0, n_sub) land in bucket [v] exactly.  For larger
   values let [msb] be the index of the highest set bit (>= sub_bits);
   the bucket is

     (msb - sub_bits + 1) * n_sub  +  ((v lsr (msb - sub_bits)) land (n_sub - 1))

   i.e. one row of [n_sub] linear sub-buckets per power-of-two range,
   sharing row 0 with the exact small values.  With sub_bits = 4 and
   62 usable ranges the table is a flat array of ~1k ints — cheap to
   allocate per worker and to merge element-wise. *)

let sub_bits = 4

let n_sub = 1 lsl sub_bits

(* 63-bit ints: msb index ranges over 0..62 *)
let n_buckets = (63 - sub_bits + 1) * n_sub

type t = {
  counts : int array;
  mutable n : int;
  mutable total : int;
  mutable vmin : int;
  mutable vmax : int;
}

let create () =
  { counts = Array.make n_buckets 0; n = 0; total = 0; vmin = max_int; vmax = 0 }

let msb_index v =
  (* index of the highest set bit; v >= 1 *)
  let i = ref 0 and v = ref v in
  if !v land 0x7fffffff00000000 <> 0 then (i := !i + 32; v := !v lsr 32);
  if !v land 0xffff0000 <> 0 then (i := !i + 16; v := !v lsr 16);
  if !v land 0xff00 <> 0 then (i := !i + 8; v := !v lsr 8);
  if !v land 0xf0 <> 0 then (i := !i + 4; v := !v lsr 4);
  if !v land 0xc <> 0 then (i := !i + 2; v := !v lsr 2);
  if !v land 0x2 <> 0 then i := !i + 1;
  !i

let bucket_of v =
  if v < n_sub then v
  else
    let msb = msb_index v in
    let shift = msb - sub_bits in
    ((shift + 1) * n_sub) + ((v lsr shift) land (n_sub - 1))

(* inclusive upper bound of a bucket: the largest value mapping to it *)
let bucket_upper b =
  if b < n_sub then b
  else
    let row = (b / n_sub) - 1 and sub = b mod n_sub in
    let shift = row in
    (* values v with msb = shift + sub_bits and the top linear slice = sub *)
    ((((1 lsl sub_bits) lor sub) + 1) lsl shift) - 1

let record t v =
  let v = if v < 0 then 0 else v in
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.n <- t.n + 1;
  t.total <- t.total + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.n

let sum t = t.total

let min_value t = if t.n = 0 then 0 else t.vmin

let max_value t = t.vmax

let mean t = if t.n = 0 then 0. else float_of_int t.total /. float_of_int t.n

let percentile t q =
  if t.n = 0 then 0
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.n))) in
    let acc = ref 0 and b = ref 0 and res = ref t.vmax in
    (try
       while !b < n_buckets do
         acc := !acc + t.counts.(!b);
         if !acc >= rank then begin
           (* the topmost ranges overflow the int on [bucket_upper];
              clamp through vmax, which is exact *)
           let u = bucket_upper !b in
           res := (if u < 0 then t.vmax else min t.vmax u);
           raise Exit
         end;
         incr b
       done
     with Exit -> ());
    !res
  end

let merge ~into src =
  for b = 0 to n_buckets - 1 do
    into.counts.(b) <- into.counts.(b) + src.counts.(b)
  done;
  into.n <- into.n + src.n;
  into.total <- into.total + src.total;
  if src.n > 0 then begin
    if src.vmin < into.vmin then into.vmin <- src.vmin;
    if src.vmax > into.vmax then into.vmax <- src.vmax
  end

let copy t =
  {
    counts = Array.copy t.counts;
    n = t.n;
    total = t.total;
    vmin = t.vmin;
    vmax = t.vmax;
  }

let clear t =
  Array.fill t.counts 0 n_buckets 0;
  t.n <- 0;
  t.total <- 0;
  t.vmin <- max_int;
  t.vmax <- 0

let bucket_total t = Array.fold_left ( + ) 0 t.counts

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.n);
      ("bucket_total", Json.Int (bucket_total t));
      ("sum", Json.Int t.total);
      ("min", Json.Int (min_value t));
      ("mean", Json.Float (mean t));
      ("p50", Json.Int (percentile t 0.50));
      ("p90", Json.Int (percentile t 0.90));
      ("p95", Json.Int (percentile t 0.95));
      ("p99", Json.Int (percentile t 0.99));
      ("max", Json.Int t.vmax);
    ]

module Sync = struct
  type histogram = t

  type t = { lock : Mutex.t; h : histogram }

  let create () = { lock = Mutex.create (); h = create () }

  let record t v = Mutex.protect t.lock (fun () -> record t.h v)

  let snapshot t = Mutex.protect t.lock (fun () -> copy t.h)

  let merge_into ~into t = Mutex.protect t.lock (fun () -> merge ~into t.h)
end
