(** Log-bucketed latency histograms, mergeable across workers.

    Values are non-negative integers (the server records nanoseconds).
    Buckets follow the HdrHistogram layout: values below {!n_sub} are
    exact; above that, each power-of-two range is split into {!n_sub}
    linear sub-buckets, so any recorded value is reconstructed with a
    relative error below [1/n_sub] (6.25%).  The whole structure is a
    flat int array: {!record} is a couple of shifts and one increment,
    and {!merge} is element-wise addition — each server worker owns a
    private histogram and the [stats] request folds them together.

    Thread-safety: a bare histogram must be {e written} by one thread
    at a time, and readers must not overlap writers — {!record}
    mutates counts/n/total/min/max non-atomically, so an unsynchronized
    reader can observe [count] inconsistent with the bucket counts and
    {!percentile} walks garbage.  Cross-domain slots belong behind
    {!Sync}, which guards every operation with a per-histogram mutex
    and hands readers a private {!copy}. *)

type t

(** Sub-buckets per power-of-two range (16). *)
val n_sub : int

val create : unit -> t

(** [record t v] adds one observation ([v < 0] is clamped to 0). *)
val record : t -> int -> unit

val count : t -> int

(** Sum / min / max of the recorded values ([min] is 0 when empty). *)
val sum : t -> int

val min_value : t -> int

val max_value : t -> int

val mean : t -> float

(** [percentile t q] for [q] in [0..1]: an upper bound for the value at
    rank [ceil (q * count)], exact below {!n_sub} and within one
    sub-bucket above.  0 when empty. *)
val percentile : t -> float -> int

(** [merge ~into src] adds [src]'s counts into [into]. *)
val merge : into:t -> t -> unit

val copy : t -> t

val clear : t -> unit

(** Sum of all bucket counts.  Equals {!count} on any histogram built
    without data races — the stats endpoint asserts exactly this. *)
val bucket_total : t -> int

(** [{"count";"bucket_total";"sum";"min";"mean";"p50";"p90";"p95";
    "p99";"max"}] summary object (values in the recorded unit).
    [bucket_total] always equals [count] for a race-free histogram. *)
val to_json : t -> Json.t

(** Mutex-guarded histogram for slots written by one domain and read
    by another (the server's per-worker latency slots).  [record] locks
    per call — a couple of shifts plus an uncontended lock, still cheap
    enough for the request path; readers take a consistent {!copy}
    under the same lock. *)
module Sync : sig
  type histogram = t

  type t

  val create : unit -> t

  val record : t -> int -> unit

  (** A private, consistent copy — safe to read lock-free. *)
  val snapshot : t -> histogram

  (** Merge a consistent view of [t] into the (caller-private) [into]. *)
  val merge_into : into:histogram -> t -> unit
end
