(* Sorted disjoint half-open intervals.  All binary operations are linear
   merges over the canonical representation. *)

type t = (int * int) list
(* invariant: sorted by [lo]; disjoint; non-adjacent; every [lo < hi]. *)

let empty = []

let is_empty t = t = []

let interval lo hi =
  if lo > hi then invalid_arg "Interval_set.interval: lo > hi";
  if lo = hi then [] else [ (lo, hi) ]

let singleton x = [ (x, x + 1) ]

(* Normalize an arbitrary interval list: sort then coalesce. *)
let normalize l =
  let l = List.filter (fun (lo, hi) -> lo < hi) l in
  let l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  let rec coalesce = function
    | (a1, b1) :: (a2, b2) :: rest when a2 <= b1 ->
      coalesce ((a1, max b1 b2) :: rest)
    | x :: rest -> x :: coalesce rest
    | [] -> []
  in
  coalesce l

let of_intervals l = normalize l

(* Translation preserves ordering, disjointness and non-adjacency, so the
   invariant survives a plain map. *)
let shift t d = if d = 0 then t else List.map (fun (lo, hi) -> (lo + d, hi + d)) t

let union a b =
  let rec merge a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | (a1, b1) :: ta, (a2, b2) :: tb ->
      if a1 <= a2 then push (a1, b1) ta ((a2, b2) :: tb) acc
      else push (a2, b2) ((a1, b1) :: ta) tb acc
  and push (lo, hi) a b acc =
    (* absorb everything overlapping/adjacent to [lo, hi) *)
    match (a, b) with
    | (a1, b1) :: ta, _ when a1 <= hi -> push (lo, max hi b1) ta b acc
    | _, (a2, b2) :: tb when a2 <= hi -> push (lo, max hi b2) a tb acc
    | _ -> merge a b ((lo, hi) :: acc)
  in
  merge a b []

let inter a b =
  let rec go a b acc =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | (a1, b1) :: ta, (a2, b2) :: tb ->
      let lo = max a1 a2 and hi = min b1 b2 in
      let acc = if lo < hi then (lo, hi) :: acc else acc in
      if b1 < b2 then go ta b acc else go a tb acc
  in
  go a b []

let diff a b =
  let rec go a b acc =
    match (a, b) with
    | [], _ -> List.rev acc
    | rest, [] -> List.rev_append acc rest
    | (a1, b1) :: ta, (a2, b2) :: tb ->
      if b2 <= a1 then go a tb acc
      else if b1 <= a2 then go ta b ((a1, b1) :: acc)
      else
        (* overlap *)
        let acc = if a1 < a2 then (a1, a2) :: acc else acc in
        if b1 <= b2 then go ta b acc else go ((b2, b1) :: ta) tb acc
  in
  go a b []

let mem x t = List.exists (fun (lo, hi) -> lo <= x && x < hi) t

let cardinal t = List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 t

let intervals t = t

let equal a b = a = b

let overlaps a b =
  let rec go a b =
    match (a, b) with
    | [], _ | _, [] -> false
    | (a1, b1) :: ta, (a2, b2) :: tb ->
      if max a1 a2 < min b1 b2 then true
      else if b1 < b2 then go ta b
      else go a tb
  in
  go a b

let absorb acc t =
  let fresh = diff t !acc in
  let n = cardinal fresh in
  if n > 0 then acc := union !acc t;
  n

let pp ppf t =
  Format.fprintf ppf "{";
  List.iteri
    (fun i (lo, hi) ->
      if i > 0 then Format.fprintf ppf ", ";
      if hi = lo + 1 then Format.fprintf ppf "%d" lo
      else Format.fprintf ppf "[%d,%d)" lo hi)
    t;
  Format.fprintf ppf "}"
