(** Sets of integers represented as sorted, disjoint, half-open intervals
    [\[lo, hi)].  Used throughout the library to represent memory footprints
    over a flat global address space: footprint unions, cardinalities and
    difference cardinalities are the primitive operations behind task sizes
    [s(t)], the PCC metric [Q*] and the scheduler's miss accounting. *)

type t

val empty : t

val is_empty : t -> bool

(** [interval lo hi] is the half-open interval [\[lo, hi)].
    @raise Invalid_argument if [lo > hi]. *)
val interval : int -> int -> t

(** [singleton x] is the one-element set [{x}]. *)
val singleton : int -> t

(** [of_intervals l] is the union of the given [(lo, hi)] half-open
    intervals, which may overlap and come in any order. *)
val of_intervals : (int * int) list -> t

(** [shift t d] translates every element by [d] (linear, no
    renormalization needed: translation preserves the canonical form).
    Used to compare footprints of subtrees up to translation when
    memoizing structural cost analysis per subtree shape. *)
val shift : t -> int -> t

val union : t -> t -> t

val inter : t -> t -> t

(** [diff a b] is the set of elements of [a] not in [b]. *)
val diff : t -> t -> t

val mem : int -> t -> bool

(** [cardinal t] is the number of integers in the set. *)
val cardinal : t -> int

(** [intervals t] returns the canonical sorted disjoint interval list. *)
val intervals : t -> (int * int) list

val equal : t -> t -> bool

(** [overlaps a b] is [true] iff the intersection is non-empty (cheaper
    than computing it). *)
val overlaps : t -> t -> bool

(** [add_count acc t] unions [t] into the mutable accumulator and returns
    how many elements of [t] were new, i.e. [cardinal (diff t !acc)].
    This is the "first touch within a maximal task" primitive used by the
    PMH miss accounting. *)
val absorb : t ref -> t -> int

val pp : Format.formatter -> t -> unit
