type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------ writer ----------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* ASCII-only escaping: every non-ASCII scalar value becomes \uXXXX, with
   astral-plane characters encoded as UTF-16 surrogate pairs — the form
   Chrome's trace viewer and strict JSON consumers expect.  Only valid
   UTF-8 round-trips byte-exactly: a malformed byte is escaped as its own
   code point (there is no JSON escape denoting a raw invalid byte). *)
let escape_ascii_to buf s =
  Buffer.add_char buf '"';
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    (match c with
    | '"' ->
      Buffer.add_string buf "\\\"";
      incr i
    | '\\' ->
      Buffer.add_string buf "\\\\";
      incr i
    | '\n' ->
      Buffer.add_string buf "\\n";
      incr i
    | '\r' ->
      Buffer.add_string buf "\\r";
      incr i
    | '\t' ->
      Buffer.add_string buf "\\t";
      incr i
    | '\b' ->
      Buffer.add_string buf "\\b";
      incr i
    | '\012' ->
      Buffer.add_string buf "\\f";
      incr i
    | c when Char.code c < 0x20 ->
      Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c));
      incr i
    | c when Char.code c < 0x80 ->
      Buffer.add_char buf c;
      incr i
    | _ ->
      let d = String.get_utf_8_uchar s !i in
      if Uchar.utf_decode_is_valid d then begin
        let cp = Uchar.to_int (Uchar.utf_decode_uchar d) in
        if cp < 0x10000 then Buffer.add_string buf (Printf.sprintf "\\u%04x" cp)
        else begin
          let u = cp - 0x10000 in
          Buffer.add_string buf
            (Printf.sprintf "\\u%04x\\u%04x"
               (0xd800 lor (u lsr 10))
               (0xdc00 lor (u land 0x3ff)))
        end;
        i := !i + Uchar.utf_decode_length d
      end
      else begin
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c));
        incr i
      end)
  done;
  Buffer.add_char buf '"'

let rec write ~escape buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then begin
      (* shortest representation that still round-trips *)
      let s = Printf.sprintf "%.12g" f in
      Buffer.add_string buf s
    end
    else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write ~escape buf x)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write ~escape buf x)
      fields;
    Buffer.add_char buf '}'

let to_buffer buf v = write ~escape:escape_to buf v

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let to_string_ascii v =
  let buf = Buffer.create 256 in
  write ~escape:escape_ascii_to buf v;
  Buffer.contents buf

let to_channel oc v =
  let buf = Buffer.create 4096 in
  to_buffer buf v;
  Buffer.add_char buf '\n';
  Buffer.output_buffer oc buf

(* ------------------------------ parser ----------------------------- *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'; advance st
      | Some '\\' -> Buffer.add_char buf '\\'; advance st
      | Some '/' -> Buffer.add_char buf '/'; advance st
      | Some 'n' -> Buffer.add_char buf '\n'; advance st
      | Some 'r' -> Buffer.add_char buf '\r'; advance st
      | Some 't' -> Buffer.add_char buf '\t'; advance st
      | Some 'b' -> Buffer.add_char buf '\b'; advance st
      | Some 'f' -> Buffer.add_char buf '\012'; advance st
      | Some 'u' ->
        advance st;
        let hex4 () =
          if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
          let hex = String.sub st.src st.pos 4 in
          let cp =
            try int_of_string ("0x" ^ hex)
            with Failure _ -> fail st "bad \\u escape"
          in
          st.pos <- st.pos + 4;
          cp
        in
        let cp = hex4 () in
        if cp >= 0xd800 && cp <= 0xdbff then begin
          (* high surrogate: a low surrogate must follow for an
             astral-plane character (RFC 8259 section 7) *)
          if
            st.pos + 2 <= String.length st.src
            && st.src.[st.pos] = '\\'
            && st.src.[st.pos + 1] = 'u'
          then begin
            st.pos <- st.pos + 2;
            let lo = hex4 () in
            if lo >= 0xdc00 && lo <= 0xdfff then
              add_utf8 buf
                (0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00))
            else fail st "unpaired surrogate in \\u escape"
          end
          else fail st "unpaired surrogate in \\u escape"
        end
        else if cp >= 0xdc00 && cp <= 0xdfff then
          fail st "unpaired surrogate in \\u escape"
        else add_utf8 buf cp
      | _ -> fail st "bad escape");
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "bad number %S" s))

let keyword st kw v =
  let n = String.length kw in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = kw
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected %s" kw)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> String (parse_string st)
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec field () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (k, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          field ()
        | Some '}' -> advance st
        | _ -> fail st "expected ',' or '}'"
      in
      field ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [] in
      let rec item () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          item ()
        | Some ']' -> advance st
        | _ -> fail st "expected ',' or ']'"
      in
      item ();
      List (List.rev !items)
    end
  | Some 't' -> keyword st "true" (Bool true)
  | Some 'f' -> keyword st "false" (Bool false)
  | Some 'n' -> keyword st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ----------------------------- accessors --------------------------- *)

let member key v =
  match v with Obj fields -> List.assoc_opt key fields | _ -> None

let to_list v =
  match v with List l -> l | _ -> raise (Parse_error "expected an array")

let to_number v =
  match v with
  | Int i -> float_of_int i
  | Float f -> f
  | _ -> raise (Parse_error "expected a number")

let to_string_exn v =
  match v with String s -> s | _ -> raise (Parse_error "expected a string")

(* ------------------------------ framing ----------------------------- *)

module Frame = struct
  exception Error of string

  let default_max_frame = 16 * 1024 * 1024

  let encode v =
    let payload = to_string v in
    let n = String.length payload in
    let b = Bytes.create (4 + n) in
    Bytes.set_int32_be b 0 (Int32.of_int n);
    Bytes.blit_string payload 0 b 4 n;
    Bytes.unsafe_to_string b

  type decoder = {
    max_frame : int;
    buf : Buffer.t;
    mutable consumed : int;  (* bytes of [buf] already decoded *)
  }

  let decoder ?(max_frame = default_max_frame) () =
    { max_frame; buf = Buffer.create 256; consumed = 0 }

  let feed d bytes off len =
    if off < 0 || len < 0 || off + len > Bytes.length bytes then
      invalid_arg "Json.Frame.feed";
    Buffer.add_subbytes d.buf bytes off len

  let feed_string d s = Buffer.add_string d.buf s

  let pending d = Buffer.length d.buf - d.consumed

  (* drop the consumed prefix once it dominates the buffer, so a
     long-lived connection does not grow its buffer without bound *)
  let compact d =
    if d.consumed > 4096 && d.consumed * 2 > Buffer.length d.buf then begin
      let rest = Buffer.sub d.buf d.consumed (pending d) in
      Buffer.clear d.buf;
      Buffer.add_string d.buf rest;
      d.consumed <- 0
    end

  let next d =
    if pending d < 4 then None
    else begin
      let hdr = Buffer.sub d.buf d.consumed 4 in
      let len = Int32.to_int (String.get_int32_be hdr 0) in
      if len < 0 || len > d.max_frame then
        raise
          (Error
             (Printf.sprintf "frame length %d exceeds limit %d" len
                d.max_frame));
      if pending d < 4 + len then None
      else begin
        let payload = Buffer.sub d.buf (d.consumed + 4) len in
        d.consumed <- d.consumed + 4 + len;
        compact d;
        match parse payload with
        | v -> Some v
        | exception Parse_error msg ->
          raise (Error (Printf.sprintf "malformed frame payload: %s" msg))
      end
    end
end
