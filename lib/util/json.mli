(** Minimal JSON: a value type, a writer, and a small recursive-descent
    parser.  Used by the machine-readable table output
    ({!Nd_util.Table.to_json}), the Chrome [trace_event] exporter
    ([Nd_trace.Chrome]) and the round-trip checks in the test suite.
    Covers the full JSON grammar, including surrogate-pair [\uXXXX]
    escapes: a high/low pair decodes to one astral-plane character
    (4-byte UTF-8), and an unpaired surrogate is a parse error
    (RFC 8259 section 7). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_buffer buf v] appends the serialized value (no trailing newline). *)
val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string

(** [to_string_ascii v] serializes with every non-ASCII character escaped
    as [\uXXXX] — astral-plane characters become UTF-16 surrogate pairs.
    Strings must be valid UTF-8 to round-trip byte-exactly; malformed
    bytes are escaped as individual code points. *)
val to_string_ascii : t -> string

(** [to_channel oc v] writes the value followed by a newline. *)
val to_channel : out_channel -> t -> unit

exception Parse_error of string

(** [parse s] parses exactly one JSON value (surrounding whitespace
    allowed).  @raise Parse_error on malformed input or trailing junk. *)
val parse : string -> t

(** {2 Accessors} *)

(** [member key v] — the field of an [Obj], if present. *)
val member : string -> t -> t option

(** [to_list v] — the elements of a [List].  @raise Parse_error otherwise. *)
val to_list : t -> t list

(** [to_number v] — an [Int] or [Float] as a float.
    @raise Parse_error otherwise. *)
val to_number : t -> float

(** [to_string_exn v] — the payload of a [String].
    @raise Parse_error otherwise. *)
val to_string_exn : t -> string

(** {2 Length-prefixed framing}

    The wire format of the analysis server ([Nd_serve]): each frame is a
    4-byte big-endian payload length followed by that many bytes of
    serialized JSON.  [Frame] is pure — encoding returns a string and
    decoding is an incremental push parser — so the same code is
    exercised byte-for-byte by the unit tests and by the socket loop. *)
module Frame : sig
  (** Oversized frame announced by a header, or a complete frame whose
      payload is not valid JSON.  Truncated input is {e not} an error:
      {!next} just returns [None] until more bytes arrive. *)
  exception Error of string

  (** 16 MiB. *)
  val default_max_frame : int

  (** [encode v] — header + payload, ready to write. *)
  val encode : t -> string

  (** A stateful frame reassembler for one byte stream. *)
  type decoder

  val decoder : ?max_frame:int -> unit -> decoder

  (** [feed d bytes off len] appends raw bytes (e.g. straight from
      [Unix.read]).  @raise Invalid_argument on a bad range. *)
  val feed : decoder -> Bytes.t -> int -> int -> unit

  val feed_string : decoder -> string -> unit

  (** Bytes buffered but not yet decoded. *)
  val pending : decoder -> int

  (** [next d] — the next complete frame's value, or [None] if the
      buffered bytes end mid-frame.  @raise Error on an oversized
      header or a malformed payload; the decoder must then be
      discarded (the stream has no resynchronization point). *)
  val next : decoder -> t option
end
