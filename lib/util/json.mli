(** Minimal JSON: a value type, a writer, and a small recursive-descent
    parser.  Used by the machine-readable table output
    ({!Nd_util.Table.to_json}), the Chrome [trace_event] exporter
    ([Nd_trace.Chrome]) and the round-trip checks in the test suite.
    Covers the full JSON grammar, including surrogate-pair [\uXXXX]
    escapes: a high/low pair decodes to one astral-plane character
    (4-byte UTF-8), and an unpaired surrogate is a parse error
    (RFC 8259 section 7). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_buffer buf v] appends the serialized value (no trailing newline). *)
val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string

(** [to_string_ascii v] serializes with every non-ASCII character escaped
    as [\uXXXX] — astral-plane characters become UTF-16 surrogate pairs.
    Strings must be valid UTF-8 to round-trip byte-exactly; malformed
    bytes are escaped as individual code points. *)
val to_string_ascii : t -> string

(** [to_channel oc v] writes the value followed by a newline. *)
val to_channel : out_channel -> t -> unit

exception Parse_error of string

(** [parse s] parses exactly one JSON value (surrounding whitespace
    allowed).  @raise Parse_error on malformed input or trailing junk. *)
val parse : string -> t

(** {2 Accessors} *)

(** [member key v] — the field of an [Obj], if present. *)
val member : string -> t -> t option

(** [to_list v] — the elements of a [List].  @raise Parse_error otherwise. *)
val to_list : t -> t list

(** [to_number v] — an [Int] or [Float] as a float.
    @raise Parse_error otherwise. *)
val to_number : t -> float

(** [to_string_exn v] — the payload of a [String].
    @raise Parse_error otherwise. *)
val to_string_exn : t -> string
