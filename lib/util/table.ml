type t = {
  title : string;
  headers : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title headers = { title; headers; rows = [] }

let add_row t cells = t.rows <- cells :: t.rows

let cell_int = string_of_int

let cell_float ?(prec = 3) f = Printf.sprintf "%.*f" prec f

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length t.headers) rows
  in
  let pad r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = pad t.headers :: List.map pad rows in
  let widths =
    List.init ncols (fun i ->
        List.fold_left (fun acc r -> max acc (String.length (List.nth r i))) 0 all)
  in
  let buf = Buffer.create 1024 in
  let line ch =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) ch)) widths;
    Buffer.add_string buf "+\n"
  in
  let row cells =
    List.iter2
      (fun w c -> Buffer.add_string buf (Printf.sprintf "| %-*s " w c))
      widths cells;
    Buffer.add_string buf "|\n"
  in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n" t.title);
  line '-';
  row (pad t.headers);
  line '=';
  List.iter (fun r -> row r) (List.map pad rows);
  line '-';
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

(* a cell is re-typed on the way out so downstream tooling gets numbers
   where the harness printed numbers *)
let json_cell c =
  match int_of_string_opt c with
  | Some i -> Json.Int i
  | None -> (
    match float_of_string_opt c with
    | Some f -> Json.Float f
    | None -> Json.String c)

let to_json t =
  Json.Obj
    [
      ("title", Json.String t.title);
      ("headers", Json.List (List.map (fun h -> Json.String h) t.headers));
      ( "rows",
        Json.List
          (List.rev_map
             (fun r -> Json.List (List.map json_cell r))
             t.rows) );
    ]

let write_json t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel oc (to_json t))
