(** ASCII table rendering for the benchmark harness.  Every experiment
    prints its results as one of these tables so the output can be compared
    line-by-line against the paper's claims recorded in EXPERIMENTS.md. *)

type t

(** [create ~title headers] starts a table with the given column headers. *)
val create : title:string -> string list -> t

(** [add_row t cells] appends a row; short rows are padded with blanks. *)
val add_row : t -> string list -> unit

(** Convenience cell formatters. *)
val cell_int : int -> string

val cell_float : ?prec:int -> float -> string

(** [render t] lays the table out with column-width alignment. *)
val render : t -> string

(** [print t] renders to stdout followed by a blank line. *)
val print : t -> unit

(** [to_json t] is the machine-readable form
    [{"title": ..., "headers": [...], "rows": [[...], ...]}]; cells that
    printed as numbers come back out as JSON numbers. *)
val to_json : t -> Json.t

(** [write_json t path] writes {!to_json} to a file, newline-terminated. *)
val write_json : t -> string -> unit
