(* Static-analysis tests (Nd_analyze): the ESP-bags detector must agree
   with the exact reachability checker on every generated spec and every
   packaged workload, must keep working past the exact checker's vertex
   cap, and the fire-rule linter must flag each defect class in its
   catalogue — and stay quiet on the shipped (corrected) rule sets.

   NDSIM_STRESS_ITERS scales the generated corpus (default 3; nightly
   CI soaks with 1000).  The corpus floor is 500 cases even at the
   default, per the acceptance bar for the ESP == exact property. *)

module Gen = Nd_check.Gen
module Esp = Nd_analyze.Esp_bags
module Lint = Nd_analyze.Lint
module Footprint = Nd_analyze.Footprint
module Race = Nd_dag.Race
module Json = Nd_util.Json
open Nd

let stress_iters =
  match Sys.getenv_opt "NDSIM_STRESS_ITERS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 3)
  | None -> 3

(* ------------------- ESP == exact: generated corpus ------------------ *)

let test_esp_matches_exact_corpus () =
  (* seeds disjoint from test_conform's corpus (1_000..) and the CI fuzz
     job's base seed 42 *)
  let count = min 20_000 (max 500 (50 * stress_iters)) in
  for seed = 5_000 to 5_000 + count - 1 do
    let spec = Gen.generate ~seed () in
    let inst = Gen.build spec in
    match Program.compile ~registry:inst.Gen.registry inst.Gen.tree with
    | exception Invalid_argument _ -> ()
    | p ->
      let exact = Race.race_free (Program.dag p) in
      let esp = Esp.race_free p in
      if esp <> exact then
        Alcotest.failf "seed %d: ESP race_free=%b, exact race_free=%b@.%a"
          seed esp exact Gen.pp spec
  done

(* ------------------- ESP == exact: workload corpus ------------------- *)

let workload_cases =
  [
    ("mm", 4, 2); ("mm8", 4, 2); ("trs", 4, 2); ("cholesky", 4, 2);
    ("lu", 4, 2); ("apsp", 4, 2); ("fw1d", 4, 2); ("lcs", 8, 2);
    ("mm", 8, 2); ("trs", 8, 2); ("cholesky", 8, 2); ("lu", 8, 2);
    ("stencil", 8, 4); ("gotoh", 8, 2); ("fw1d", 16, 2); ("lcs", 16, 2);
  ]

let literal_cases =
  [
    (fun () -> Nd_algos.Matmul.workload ~variant:Nd_algos.Matmul.Literal ~n:8 ~base:2 ~seed:7 ());
    (fun () -> Nd_algos.Trs.workload ~variant:Nd_algos.Trs.Literal ~n:8 ~base:2 ~seed:7 ());
    (fun () -> Nd_algos.Lcs.workload ~variant:`Literal ~n:16 ~base:2 ~seed:7 ());
    (fun () -> Nd_algos.Fw1d.workload ~variant:`Literal ~n:16 ~base:2 ~seed:7 ());
  ]

let check_workload_agreement (w : Nd_algos.Workload.t) =
  List.iter
    (fun mode ->
      let p = Nd_algos.Workload.compile ~mode w in
      let exact = Race.race_free (Program.dag p) in
      let esp = Esp.race_free p in
      if esp <> exact then
        Alcotest.failf "%s n=%d %s: ESP race_free=%b, exact race_free=%b"
          w.Nd_algos.Workload.name w.Nd_algos.Workload.n
          (Nd_algos.Workload.mode_name mode)
          esp exact)
    [ Nd_algos.Workload.ND; Nd_algos.Workload.NP ]

let test_esp_matches_exact_workloads () =
  List.iter
    (fun (name, n, base) ->
      let fam = Nd_experiments.Workloads.find name in
      check_workload_agreement
        (Nd_experiments.Workloads.build ~n ~base fam ~seed:7))
    workload_cases;
  List.iter (fun mk -> check_workload_agreement (mk ())) literal_cases

(* ----------------- ESP past the exact checker's cap ------------------ *)

let test_esp_beyond_exact_limit () =
  (* FW-2D (apsp) at n=64 compiles to ~98k vertices — past
     Race.max_vertices, so the exact checker must refuse and the ESP
     pass must still answer; it also exercises both query paths (S-bag
     hits and ~757k fire edges).  BENCH_3 covers the scaling sweep. *)
  let fam = Nd_experiments.Workloads.find "apsp" in
  let w = Nd_experiments.Workloads.build ~n:64 ~base:2 fam ~seed:7 in
  let p = Nd_algos.Workload.compile w in
  let n = Nd_dag.Dag.n_vertices (Program.dag p) in
  if n <= Race.max_vertices then
    Alcotest.failf "apsp n=64 has only %d vertices (cap %d): not past the cap"
      n Race.max_vertices;
  (match Race.find_races (Program.dag p) with
  | exception Race.Limit_exceeded { vertices; limit } ->
    Alcotest.(check int) "reported vertex count" n vertices;
    Alcotest.(check int) "reported limit" Race.max_vertices limit
  | _ -> Alcotest.fail "exact checker did not raise Limit_exceeded");
  let v = Esp.analyze p in
  Alcotest.(check (list reject)) "ESP: race free" [] v.Esp.races;
  let s = v.Esp.stats in
  if s.Esp.n_queries = 0 || s.Esp.n_accesses = 0 then
    Alcotest.fail "ESP stats empty on a 100k-vertex program";
  if s.Esp.sp_hits > s.Esp.n_queries then
    Alcotest.fail "sp_hits exceeds n_queries"

(* --------------------- lint: literal MM rejected --------------------- *)

let test_lint_rejects_literal_mm () =
  let w =
    Nd_algos.Matmul.workload ~variant:Nd_algos.Matmul.Literal ~n:8 ~base:2
      ~seed:7 ()
  in
  let findings =
    Lint.lint_all ~registry:w.Nd_algos.Workload.registry
      w.Nd_algos.Workload.tree
  in
  Alcotest.(check bool) "has errors" true (Lint.has_errors findings);
  let races = List.filter (fun f -> f.Lint.id = "ND009") findings in
  if races = [] then Alcotest.fail "no ND009 race finding on literal MM";
  List.iter
    (fun f ->
      Alcotest.(check string) "lifted to the MM fire" "fire \"MM_literal\""
        f.Lint.subject)
    races;
  (* the ESP diagnosis must carry the same LCA + pedigrees the exact
     Rule_check diagnosis reports *)
  let p = Nd_algos.Workload.compile w in
  let key (f : Rule_check.finding) =
    ( f.Rule_check.lca,
      Pedigree.to_string f.Rule_check.src_pedigree,
      Pedigree.to_string f.Rule_check.dst_pedigree )
  in
  let exact =
    List.map key (Rule_check.diagnose ~limit:1_000 p)
  in
  List.iter
    (fun f ->
      if not (List.mem (key f) exact) then
        Alcotest.failf "ESP diagnosis %s -> %s not among the exact findings"
          (Pedigree.to_string f.Rule_check.src_pedigree)
          (Pedigree.to_string f.Rule_check.dst_pedigree))
    (Esp.diagnose ~limit:1_000 p)

(* The FG pair from test_conform: dropping +<2> ~> -<1> leaves exactly
   (B, C) unordered; the ESP diagnosis must name the same fire node and
   pedigrees as the exact one. *)
let fg_program rules =
  let is = Nd_util.Interval_set.interval in
  let s label ~reads ~writes =
    Spawn_tree.leaf (Strand.make ~label ~work:1 ~reads ~writes ())
  in
  let e = Nd_util.Interval_set.empty in
  let f =
    Spawn_tree.seq
      [ s "A" ~reads:e ~writes:(is 0 1); s "B" ~reads:e ~writes:(is 1 2) ]
  and g =
    Spawn_tree.seq
      [ s "C" ~reads:(is 1 2) ~writes:e; s "D" ~reads:(is 0 1) ~writes:e ]
  in
  let reg = Fire_rule.define Fire_rule.empty_registry "FG" rules in
  Program.compile ~registry:reg (Spawn_tree.fire ~rule:"FG" f g)

let test_esp_diagnoses_dropped_rule () =
  let p = fg_program [ Fire_rule.rule [ 1 ] Fire_rule.Full [ 2 ] ] in
  match Esp.diagnose p with
  | [ f ] ->
    (match f.Rule_check.lca_kind with
    | Program.Fire "FG" -> ()
    | _ -> Alcotest.fail "LCA is not the FG fire node");
    Alcotest.(check string) "src pedigree (B)" "<1.2>"
      (Pedigree.to_string f.Rule_check.src_pedigree);
    Alcotest.(check string) "dst pedigree (C)" "<2.1>"
      (Pedigree.to_string f.Rule_check.dst_pedigree)
  | other -> Alcotest.failf "expected exactly 1 finding, got %d" (List.length other)

(* -------------------- lint: registry defect classes ------------------ *)

let strand label =
  Spawn_tree.leaf
    (Strand.make ~label ~work:1 ~reads:Nd_util.Interval_set.empty
       ~writes:Nd_util.Interval_set.empty ())

let find_ids id findings = List.filter (fun f -> f.Lint.id = id) findings

let test_lint_dangling_and_dead () =
  (* dangling: a rule's via names an undefined fire type *)
  let dangling =
    Fire_rule.define Fire_rule.empty_registry "H"
      [ Fire_rule.rule [ 1 ] (Fire_rule.Named "NOPE") [ 1 ] ]
  in
  let fs = Lint.lint_registry dangling in
  (match find_ids "ND001" fs with
  | [ f ] ->
    Alcotest.(check string) "severity" "error" (Lint.severity_name f.Lint.severity);
    Alcotest.(check string) "subject" "H" f.Lint.subject
  | other -> Alcotest.failf "expected 1 ND001, got %d" (List.length other));
  (* dangling fire type used directly by the tree *)
  let tree =
    Spawn_tree.fire ~rule:"GHOST"
      (Spawn_tree.seq [ strand "a"; strand "b" ])
      (Spawn_tree.seq [ strand "c"; strand "d" ])
  in
  let fs = Lint.lint_tree Fire_rule.empty_registry tree in
  if find_ids "ND001" fs = [] then
    Alcotest.fail "tree with undefined fire type not flagged";
  (* dead: the pedigrees address children that never exist, at every
     use site (both sides are 2-child Seqs; step 5 is out of range) *)
  let dead =
    Fire_rule.define Fire_rule.empty_registry "H"
      [
        Fire_rule.rule [ 1 ] Fire_rule.Full [ 1 ];
        Fire_rule.rule [ 5 ] Fire_rule.Full [ 5 ];
      ]
  in
  let tree =
    Spawn_tree.fire ~rule:"H"
      (Spawn_tree.seq [ strand "a"; strand "b" ])
      (Spawn_tree.seq [ strand "c"; strand "d" ])
  in
  let fs = Lint.lint_all ~registry:dead tree in
  (match find_ids "ND002" fs with
  | [ f ] ->
    Alcotest.(check string) "severity" "warning"
      (Lint.severity_name f.Lint.severity);
    Alcotest.(check string) "subject" "H" f.Lint.subject;
    if not (Lint.has_errors fs = false) then
      Alcotest.fail "dead rule alone must not be an error"
  | other -> Alcotest.failf "expected 1 ND002, got %d" (List.length other))

let test_lint_duplicate_shadow_cycle () =
  let r = Fire_rule.rule in
  (* duplicate + shadowed *)
  let reg =
    Fire_rule.define Fire_rule.empty_registry "A"
      [
        r [ 1 ] Fire_rule.Full [ 1 ];
        r [ 1 ] Fire_rule.Full [ 1 ];
        (* duplicate: ND003 *)
        r [ 1 ] (Fire_rule.Named "A") [ 1 ];
        (* shadowed by the Full above: ND004 *)
      ]
  in
  let fs = Lint.lint_registry reg in
  if find_ids "ND003" fs = [] then Alcotest.fail "duplicate not flagged";
  if find_ids "ND004" fs = [] then Alcotest.fail "shadowed rule not flagged";
  (* no-progress cycle: A -> B -> A with empty pedigrees on both sides *)
  let reg =
    Fire_rule.define
      (Fire_rule.define Fire_rule.empty_registry "A"
         [ r [] (Fire_rule.Named "B") [] ])
      "B"
      [ r [] (Fire_rule.Named "A") [] ]
  in
  let fs = Lint.lint_registry reg in
  let cyc = find_ids "ND005" fs in
  Alcotest.(check int) "both cycle members flagged" 2 (List.length cyc);
  Alcotest.(check bool) "cycle is an error" true (Lint.has_errors fs);
  (* structural descent breaks the cycle: same shape, nonempty pedigree *)
  let reg =
    Fire_rule.define
      (Fire_rule.define Fire_rule.empty_registry "A"
         [ r [ 1 ] (Fire_rule.Named "B") [] ])
      "B"
      [ r [] (Fire_rule.Named "A") [] ]
  in
  Alcotest.(check int) "descending cycle is fine" 0
    (List.length (find_ids "ND005" (Lint.lint_registry reg)))

let test_lint_footprint_overlap () =
  let is = Nd_util.Interval_set.interval in
  let w label iv =
    Spawn_tree.leaf
      (Strand.make ~label ~work:1 ~reads:Nd_util.Interval_set.empty
         ~writes:iv ())
  in
  let tree = Spawn_tree.par [ w "x" (is 0 2); w "y" (is 1 3) ] in
  let fs = Lint.lint_tree Fire_rule.empty_registry tree in
  (match find_ids "ND008" fs with
  | [ f ] -> Alcotest.(check string) "severity" "error" (Lint.severity_name f.Lint.severity)
  | other -> Alcotest.failf "expected 1 ND008, got %d" (List.length other));
  (* the same overlap under Seq is ordered: no finding *)
  let tree = Spawn_tree.seq [ w "x" (is 0 2); w "y" (is 1 3) ] in
  Alcotest.(check int) "seq overlap is fine" 0
    (List.length (Lint.lint_tree Fire_rule.empty_registry tree));
  (* direct Footprint API: conflict carries path and overlap *)
  let tree =
    Spawn_tree.seq
      [ strand "pre"; Spawn_tree.par [ w "x" (is 0 2); w "y" (is 1 3) ] ]
  in
  match Footprint.check tree with
  | [ c ] ->
    Alcotest.(check string) "path" "<2>" (Pedigree.to_string c.Footprint.path);
    Alcotest.(check bool) "write-write" true c.Footprint.write_write;
    Alcotest.(check bool) "overlap is [1,2)" true
      (Nd_util.Interval_set.intervals c.Footprint.overlap = [ (1, 2) ])
  | other -> Alcotest.failf "expected 1 conflict, got %d" (List.length other)

(* ----------------- lint: shipped rule sets are clean ----------------- *)

let test_lint_shipped_sets_clean () =
  List.iter
    (fun fam ->
      let n = List.hd fam.Nd_experiments.Workloads.sizes in
      let w = Nd_experiments.Workloads.build ~n fam ~seed:7 in
      let fs =
        Lint.lint_all ~registry:w.Nd_algos.Workload.registry
          w.Nd_algos.Workload.tree
      in
      if Lint.has_errors fs then
        Alcotest.failf "%s n=%d: %s" fam.Nd_experiments.Workloads.name n
          (String.concat "; "
             (List.map
                (fun f -> Format.asprintf "%a" Lint.pp_finding f)
                fs)))
    Nd_experiments.Workloads.all

(* -------------------------- JSON round-trip -------------------------- *)

let test_lint_json_roundtrip () =
  let w =
    Nd_algos.Matmul.workload ~variant:Nd_algos.Matmul.Literal ~n:8 ~base:2
      ~seed:7 ()
  in
  let findings =
    Lint.lint_all ~registry:w.Nd_algos.Workload.registry
      w.Nd_algos.Workload.tree
  in
  if findings = [] then Alcotest.fail "expected findings to round-trip";
  let back =
    Lint.of_json (Json.parse (Json.to_string (Lint.to_json findings)))
  in
  Alcotest.(check bool) "round-trip" true (back = findings)

(* ----------------------------- registry ------------------------------ *)

let () =
  Alcotest.run "nd_analyze"
    [
      ( "esp-bags",
        [
          Alcotest.test_case "matches exact: generated corpus" `Slow
            test_esp_matches_exact_corpus;
          Alcotest.test_case "matches exact: workloads" `Quick
            test_esp_matches_exact_workloads;
          Alcotest.test_case "works past the exact cap" `Slow
            test_esp_beyond_exact_limit;
          Alcotest.test_case "diagnoses the dropped FG rule" `Quick
            test_esp_diagnoses_dropped_rule;
        ] );
      ( "lint",
        [
          Alcotest.test_case "rejects literal MM" `Quick
            test_lint_rejects_literal_mm;
          Alcotest.test_case "dangling + dead rules" `Quick
            test_lint_dangling_and_dead;
          Alcotest.test_case "duplicate, shadow, cycle" `Quick
            test_lint_duplicate_shadow_cycle;
          Alcotest.test_case "footprint overlap" `Quick
            test_lint_footprint_overlap;
          Alcotest.test_case "shipped rule sets clean" `Quick
            test_lint_shipped_sets_clean;
          Alcotest.test_case "JSON round-trip" `Quick
            test_lint_json_roundtrip;
        ] );
    ]
