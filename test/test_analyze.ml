(* Static-analysis tests (Nd_analyze): the ESP-bags detector must agree
   with the exact reachability checker on every generated spec and every
   packaged workload, must keep working past the exact checker's vertex
   cap, and the fire-rule linter must flag each defect class in its
   catalogue — and stay quiet on the shipped (corrected) rule sets.

   NDSIM_STRESS_ITERS scales the generated corpus (default 3; nightly
   CI soaks with 1000).  The corpus floor is 500 cases even at the
   default, per the acceptance bar for the ESP == exact property. *)

module Gen = Nd_check.Gen
module Esp = Nd_analyze.Esp_bags
module Lint = Nd_analyze.Lint
module Footprint = Nd_analyze.Footprint
module Race = Nd_dag.Race
module Json = Nd_util.Json
open Nd

let stress_iters =
  match Sys.getenv_opt "NDSIM_STRESS_ITERS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 3)
  | None -> 3

(* ------------------- ESP == exact: generated corpus ------------------ *)

let test_esp_matches_exact_corpus () =
  (* seeds disjoint from test_conform's corpus (1_000..) and the CI fuzz
     job's base seed 42 *)
  let count = min 20_000 (max 500 (50 * stress_iters)) in
  for seed = 5_000 to 5_000 + count - 1 do
    let spec = Gen.generate ~seed () in
    let inst = Gen.build spec in
    match Program.compile ~registry:inst.Gen.registry inst.Gen.tree with
    | exception Invalid_argument _ -> ()
    | p ->
      let exact = Race.race_free (Program.dag p) in
      let esp = Esp.race_free p in
      if esp <> exact then
        Alcotest.failf "seed %d: ESP race_free=%b, exact race_free=%b@.%a"
          seed esp exact Gen.pp spec
  done

(* ------------------- ESP == exact: workload corpus ------------------- *)

let workload_cases =
  [
    ("mm", 4, 2); ("mm8", 4, 2); ("trs", 4, 2); ("cholesky", 4, 2);
    ("lu", 4, 2); ("apsp", 4, 2); ("fw1d", 4, 2); ("lcs", 8, 2);
    ("mm", 8, 2); ("trs", 8, 2); ("cholesky", 8, 2); ("lu", 8, 2);
    ("stencil", 8, 4); ("gotoh", 8, 2); ("fw1d", 16, 2); ("lcs", 16, 2);
  ]

let literal_cases =
  [
    (fun () -> Nd_algos.Matmul.workload ~variant:Nd_algos.Matmul.Literal ~n:8 ~base:2 ~seed:7 ());
    (fun () -> Nd_algos.Trs.workload ~variant:Nd_algos.Trs.Literal ~n:8 ~base:2 ~seed:7 ());
    (fun () -> Nd_algos.Lcs.workload ~variant:`Literal ~n:16 ~base:2 ~seed:7 ());
    (fun () -> Nd_algos.Fw1d.workload ~variant:`Literal ~n:16 ~base:2 ~seed:7 ());
  ]

let check_workload_agreement (w : Nd_algos.Workload.t) =
  List.iter
    (fun mode ->
      let p = Nd_algos.Workload.compile ~mode w in
      let exact = Race.race_free (Program.dag p) in
      let esp = Esp.race_free p in
      if esp <> exact then
        Alcotest.failf "%s n=%d %s: ESP race_free=%b, exact race_free=%b"
          w.Nd_algos.Workload.name w.Nd_algos.Workload.n
          (Nd_algos.Workload.mode_name mode)
          esp exact)
    [ Nd_algos.Workload.ND; Nd_algos.Workload.NP ]

let test_esp_matches_exact_workloads () =
  List.iter
    (fun (name, n, base) ->
      let fam = Nd_experiments.Workloads.find name in
      check_workload_agreement
        (Nd_experiments.Workloads.build ~n ~base fam ~seed:7))
    workload_cases;
  List.iter (fun mk -> check_workload_agreement (mk ())) literal_cases

(* ----------------- ESP past the exact checker's cap ------------------ *)

let test_esp_beyond_exact_limit () =
  (* FW-2D (apsp) at n=64 compiles to ~98k vertices — past
     Race.max_vertices, so the exact checker must refuse and the ESP
     pass must still answer; it also exercises both query paths (S-bag
     hits and ~757k fire edges).  BENCH_3 covers the scaling sweep. *)
  let fam = Nd_experiments.Workloads.find "apsp" in
  let w = Nd_experiments.Workloads.build ~n:64 ~base:2 fam ~seed:7 in
  let p = Nd_algos.Workload.compile w in
  let n = Nd_dag.Dag.n_vertices (Program.dag p) in
  if n <= Race.max_vertices then
    Alcotest.failf "apsp n=64 has only %d vertices (cap %d): not past the cap"
      n Race.max_vertices;
  (match Race.find_races (Program.dag p) with
  | exception Race.Limit_exceeded { vertices; limit } ->
    Alcotest.(check int) "reported vertex count" n vertices;
    Alcotest.(check int) "reported limit" Race.max_vertices limit
  | _ -> Alcotest.fail "exact checker did not raise Limit_exceeded");
  let v = Esp.analyze p in
  Alcotest.(check (list reject)) "ESP: race free" [] v.Esp.races;
  let s = v.Esp.stats in
  if s.Esp.n_queries = 0 || s.Esp.n_accesses = 0 then
    Alcotest.fail "ESP stats empty on a 100k-vertex program";
  if s.Esp.sp_hits > s.Esp.n_queries then
    Alcotest.fail "sp_hits exceeds n_queries"

(* --------------------- lint: literal MM rejected --------------------- *)

let test_lint_rejects_literal_mm () =
  let w =
    Nd_algos.Matmul.workload ~variant:Nd_algos.Matmul.Literal ~n:8 ~base:2
      ~seed:7 ()
  in
  let findings =
    Lint.lint_all ~registry:w.Nd_algos.Workload.registry
      w.Nd_algos.Workload.tree
  in
  Alcotest.(check bool) "has errors" true (Lint.has_errors findings);
  let races = List.filter (fun f -> f.Lint.id = "ND009") findings in
  if races = [] then Alcotest.fail "no ND009 race finding on literal MM";
  List.iter
    (fun f ->
      Alcotest.(check string) "lifted to the MM fire" "fire \"MM_literal\""
        f.Lint.subject)
    races;
  (* the ESP diagnosis must carry the same LCA + pedigrees the exact
     Rule_check diagnosis reports *)
  let p = Nd_algos.Workload.compile w in
  let key (f : Rule_check.finding) =
    ( f.Rule_check.lca,
      Pedigree.to_string f.Rule_check.src_pedigree,
      Pedigree.to_string f.Rule_check.dst_pedigree )
  in
  let exact =
    List.map key (Rule_check.diagnose ~limit:1_000 p)
  in
  List.iter
    (fun f ->
      if not (List.mem (key f) exact) then
        Alcotest.failf "ESP diagnosis %s -> %s not among the exact findings"
          (Pedigree.to_string f.Rule_check.src_pedigree)
          (Pedigree.to_string f.Rule_check.dst_pedigree))
    (Esp.diagnose ~limit:1_000 p)

(* The FG pair from test_conform: dropping +<2> ~> -<1> leaves exactly
   (B, C) unordered; the ESP diagnosis must name the same fire node and
   pedigrees as the exact one. *)
let fg_program rules =
  let is = Nd_util.Interval_set.interval in
  let s label ~reads ~writes =
    Spawn_tree.leaf (Strand.make ~label ~work:1 ~reads ~writes ())
  in
  let e = Nd_util.Interval_set.empty in
  let f =
    Spawn_tree.seq
      [ s "A" ~reads:e ~writes:(is 0 1); s "B" ~reads:e ~writes:(is 1 2) ]
  and g =
    Spawn_tree.seq
      [ s "C" ~reads:(is 1 2) ~writes:e; s "D" ~reads:(is 0 1) ~writes:e ]
  in
  let reg = Fire_rule.define Fire_rule.empty_registry "FG" rules in
  Program.compile ~registry:reg (Spawn_tree.fire ~rule:"FG" f g)

let test_esp_diagnoses_dropped_rule () =
  let p = fg_program [ Fire_rule.rule [ 1 ] Fire_rule.Full [ 2 ] ] in
  match Esp.diagnose p with
  | [ f ] ->
    (match f.Rule_check.lca_kind with
    | Program.Fire "FG" -> ()
    | _ -> Alcotest.fail "LCA is not the FG fire node");
    Alcotest.(check string) "src pedigree (B)" "<1.2>"
      (Pedigree.to_string f.Rule_check.src_pedigree);
    Alcotest.(check string) "dst pedigree (C)" "<2.1>"
      (Pedigree.to_string f.Rule_check.dst_pedigree)
  | other -> Alcotest.failf "expected exactly 1 finding, got %d" (List.length other)

(* -------------------- lint: registry defect classes ------------------ *)

let strand label =
  Spawn_tree.leaf
    (Strand.make ~label ~work:1 ~reads:Nd_util.Interval_set.empty
       ~writes:Nd_util.Interval_set.empty ())

let find_ids id findings = List.filter (fun f -> f.Lint.id = id) findings

let test_lint_dangling_and_dead () =
  (* dangling: a rule's via names an undefined fire type *)
  let dangling =
    Fire_rule.define Fire_rule.empty_registry "H"
      [ Fire_rule.rule [ 1 ] (Fire_rule.Named "NOPE") [ 1 ] ]
  in
  let fs = Lint.lint_registry dangling in
  (match find_ids "ND001" fs with
  | [ f ] ->
    Alcotest.(check string) "severity" "error" (Lint.severity_name f.Lint.severity);
    Alcotest.(check string) "subject" "H" f.Lint.subject
  | other -> Alcotest.failf "expected 1 ND001, got %d" (List.length other));
  (* dangling fire type used directly by the tree *)
  let tree =
    Spawn_tree.fire ~rule:"GHOST"
      (Spawn_tree.seq [ strand "a"; strand "b" ])
      (Spawn_tree.seq [ strand "c"; strand "d" ])
  in
  let fs = Lint.lint_tree Fire_rule.empty_registry tree in
  if find_ids "ND001" fs = [] then
    Alcotest.fail "tree with undefined fire type not flagged";
  (* dead: the pedigrees address children that never exist, at every
     use site (both sides are 2-child Seqs; step 5 is out of range) *)
  let dead =
    Fire_rule.define Fire_rule.empty_registry "H"
      [
        Fire_rule.rule [ 1 ] Fire_rule.Full [ 1 ];
        Fire_rule.rule [ 5 ] Fire_rule.Full [ 5 ];
      ]
  in
  let tree =
    Spawn_tree.fire ~rule:"H"
      (Spawn_tree.seq [ strand "a"; strand "b" ])
      (Spawn_tree.seq [ strand "c"; strand "d" ])
  in
  let fs = Lint.lint_all ~registry:dead tree in
  (match find_ids "ND002" fs with
  | [ f ] ->
    Alcotest.(check string) "severity" "warning"
      (Lint.severity_name f.Lint.severity);
    Alcotest.(check string) "subject" "H" f.Lint.subject;
    if not (Lint.has_errors fs = false) then
      Alcotest.fail "dead rule alone must not be an error"
  | other -> Alcotest.failf "expected 1 ND002, got %d" (List.length other))

let test_lint_duplicate_shadow_cycle () =
  let r = Fire_rule.rule in
  (* duplicate + shadowed *)
  let reg =
    Fire_rule.define Fire_rule.empty_registry "A"
      [
        r [ 1 ] Fire_rule.Full [ 1 ];
        r [ 1 ] Fire_rule.Full [ 1 ];
        (* duplicate: ND003 *)
        r [ 1 ] (Fire_rule.Named "A") [ 1 ];
        (* shadowed by the Full above: ND004 *)
      ]
  in
  let fs = Lint.lint_registry reg in
  if find_ids "ND003" fs = [] then Alcotest.fail "duplicate not flagged";
  if find_ids "ND004" fs = [] then Alcotest.fail "shadowed rule not flagged";
  (* no-progress cycle: A -> B -> A with empty pedigrees on both sides *)
  let reg =
    Fire_rule.define
      (Fire_rule.define Fire_rule.empty_registry "A"
         [ r [] (Fire_rule.Named "B") [] ])
      "B"
      [ r [] (Fire_rule.Named "A") [] ]
  in
  let fs = Lint.lint_registry reg in
  let cyc = find_ids "ND005" fs in
  Alcotest.(check int) "both cycle members flagged" 2 (List.length cyc);
  Alcotest.(check bool) "cycle is an error" true (Lint.has_errors fs);
  (* structural descent breaks the cycle: same shape, nonempty pedigree *)
  let reg =
    Fire_rule.define
      (Fire_rule.define Fire_rule.empty_registry "A"
         [ r [ 1 ] (Fire_rule.Named "B") [] ])
      "B"
      [ r [] (Fire_rule.Named "A") [] ]
  in
  Alcotest.(check int) "descending cycle is fine" 0
    (List.length (find_ids "ND005" (Lint.lint_registry reg)))

let test_lint_footprint_overlap () =
  let is = Nd_util.Interval_set.interval in
  let w label iv =
    Spawn_tree.leaf
      (Strand.make ~label ~work:1 ~reads:Nd_util.Interval_set.empty
         ~writes:iv ())
  in
  let tree = Spawn_tree.par [ w "x" (is 0 2); w "y" (is 1 3) ] in
  let fs = Lint.lint_tree Fire_rule.empty_registry tree in
  (match find_ids "ND008" fs with
  | [ f ] -> Alcotest.(check string) "severity" "error" (Lint.severity_name f.Lint.severity)
  | other -> Alcotest.failf "expected 1 ND008, got %d" (List.length other));
  (* the same overlap under Seq is ordered: no finding *)
  let tree = Spawn_tree.seq [ w "x" (is 0 2); w "y" (is 1 3) ] in
  Alcotest.(check int) "seq overlap is fine" 0
    (List.length (Lint.lint_tree Fire_rule.empty_registry tree));
  (* direct Footprint API: conflict carries path and overlap *)
  let tree =
    Spawn_tree.seq
      [ strand "pre"; Spawn_tree.par [ w "x" (is 0 2); w "y" (is 1 3) ] ]
  in
  match Footprint.check tree with
  | [ c ] ->
    Alcotest.(check string) "path" "<2>" (Pedigree.to_string c.Footprint.path);
    Alcotest.(check bool) "write-write" true c.Footprint.write_write;
    Alcotest.(check bool) "overlap is [1,2)" true
      (Nd_util.Interval_set.intervals c.Footprint.overlap = [ (1, 2) ])
  | other -> Alcotest.failf "expected 1 conflict, got %d" (List.length other)

(* ----------------- lint: shipped rule sets are clean ----------------- *)

let test_lint_shipped_sets_clean () =
  List.iter
    (fun fam ->
      let n = List.hd fam.Nd_experiments.Workloads.sizes in
      let w = Nd_experiments.Workloads.build ~n fam ~seed:7 in
      let fs =
        Lint.lint_all ~registry:w.Nd_algos.Workload.registry
          w.Nd_algos.Workload.tree
      in
      if Lint.has_errors fs then
        Alcotest.failf "%s n=%d: %s" fam.Nd_experiments.Workloads.name n
          (String.concat "; "
             (List.map
                (fun f -> Format.asprintf "%a" Lint.pp_finding f)
                fs)))
    Nd_experiments.Workloads.all

(* -------------------------- JSON round-trip -------------------------- *)

let test_lint_json_roundtrip () =
  let w =
    Nd_algos.Matmul.workload ~variant:Nd_algos.Matmul.Literal ~n:8 ~base:2
      ~seed:7 ()
  in
  let findings =
    Lint.lint_all ~registry:w.Nd_algos.Workload.registry
      w.Nd_algos.Workload.tree
  in
  if findings = [] then Alcotest.fail "expected findings to round-trip";
  let back =
    Lint.of_json (Json.parse (Json.to_string (Lint.to_json findings)))
  in
  Alcotest.(check bool) "round-trip" true (back = findings)

let test_lint_json_extended_catalogue () =
  (* the structural checks ND010-ND013 must survive the codec too *)
  let mk id = { Lint.id; severity = Lint.Warning; subject = "t"; message = id } in
  let findings = List.map mk [ "ND010"; "ND011"; "ND012"; "ND013" ] in
  let back =
    Lint.of_json (Json.parse (Json.to_string (Lint.to_json findings)))
  in
  Alcotest.(check bool) "extended round-trip" true (back = findings);
  (* an id outside the catalogue is a parse error, not a silent accept *)
  let bogus = Json.to_string (Lint.to_json [ mk "ND999" ]) in
  match Lint.of_json (Json.parse bogus) with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "unknown id ND999 must be rejected"

(* ------------------ lint: structural cost catalogue ------------------ *)

module Cost = Nd_analyze.Cost

let test_lint_cost_catalogue () =
  (* ND013: a fire over two bare leaves bottoms out as an end-to-begin
     full edge, so the halves serialize and span = work *)
  let reg =
    Fire_rule.define Fire_rule.empty_registry "X"
      [ Fire_rule.rule [ 1 ] Fire_rule.Full [ 1 ] ]
  in
  let serial = Spawn_tree.fire ~rule:"X" (strand "f") (strand "g") in
  let cost = Cost.analyze ~registry:reg serial in
  (match find_ids "ND013" (Lint.lint_cost ~has_fires:true cost) with
  | [ _ ] -> ()
  | o -> Alcotest.failf "expected 1 ND013, got %d" (List.length o));
  (* ND012: a two-leaf par has parallelism 2, far below 16 processors *)
  let par = Spawn_tree.par [ strand "a"; strand "b" ] in
  let pcost = Cost.analyze ~registry:Fire_rule.empty_registry par in
  (match find_ids "ND012" (Lint.lint_cost ~procs:16 ~has_fires:false pcost) with
  | [ _ ] -> ()
  | o -> Alcotest.failf "expected 1 ND012, got %d" (List.length o));
  (* ND013 needs fires: a fire-free serial chain is not flagged *)
  (match find_ids "ND013" (Lint.lint_cost ~has_fires:false pcost) with
  | [] -> ()
  | o -> Alcotest.failf "fire-free tree raised %d ND013" (List.length o));
  (* ND011: a working set above the outermost cache of a small PMH *)
  let iv = Nd_util.Interval_set.interval 0 100 in
  let big =
    Spawn_tree.leaf (Strand.make ~label:"big" ~work:1 ~reads:iv ~writes:iv ())
  in
  let machine =
    Nd_pmh.Pmh.create ~root_fanout:1
      [
        { Nd_pmh.Pmh.size = 16; fanout = 1; miss_cost = 2 };
        { Nd_pmh.Pmh.size = 64; fanout = 4; miss_cost = 8 };
      ]
  in
  let bcost = Cost.analyze ~registry:Fire_rule.empty_registry big in
  (match find_ids "ND011" (Lint.lint_cost ~machine ~has_fires:false bcost) with
  | [ _ ] -> ()
  | o -> Alcotest.failf "expected 1 ND011, got %d" (List.length o));
  (* ...and none when the cache holds the working set *)
  match
    find_ids "ND012" (Lint.lint_cost ~procs:1 ~has_fires:false pcost)
  with
  | [] -> ()
  | o -> Alcotest.failf "parallelism 2 >= 1 proc raised %d ND012" (List.length o)

let test_lint_span_sweep_catalogue () =
  (* flat: a root-to-root full edge serializes the construct, so ND span
     = NP span at every size and the sweep must flag ND010 *)
  let reg =
    Fire_rule.define Fire_rule.empty_registry "X"
      [ Fire_rule.rule [] Fire_rule.Full [] ]
  in
  let build n =
    let half k =
      Spawn_tree.seq (List.init (max 1 k) (fun i -> strand (string_of_int i)))
    in
    (reg, Spawn_tree.fire ~rule:"X" (half (n / 2)) (half (n / 2)))
  in
  (match find_ids "ND010" (Lint.lint_span_sweep ~subject:"flat" ~build [ 4; 8; 16 ]) with
  | [ _ ] -> ()
  | o -> Alcotest.failf "expected 1 ND010, got %d" (List.length o));
  (* trs recovers span asymptotically, so its sweep stays quiet *)
  let fam = Nd_experiments.Workloads.find "trs" in
  let build n =
    let w = Nd_experiments.Workloads.build ~n fam ~seed:7 in
    (w.Nd_algos.Workload.registry, w.Nd_algos.Workload.tree)
  in
  (match find_ids "ND010" (Lint.lint_span_sweep ~subject:"trs" ~build [ 8; 16; 32 ]) with
  | [] -> ()
  | o -> Alcotest.failf "trs sweep raised %d ND010" (List.length o));
  (* a fire-free sweep yields nothing (no fires, nothing to judge) *)
  let build_nofire n =
    (Fire_rule.empty_registry,
     Spawn_tree.par (List.init (max 1 n) (fun i -> strand (string_of_int i))))
  in
  match Lint.lint_span_sweep ~subject:"nofire" ~build:build_nofire [ 4; 8 ] with
  | [] -> ()
  | o -> Alcotest.failf "fire-free sweep raised %d findings" (List.length o)

let test_lint_min_severity_filter () =
  let mk id severity = { Lint.id; severity; subject = "t"; message = id } in
  let fs = [ mk "ND008" Lint.Error; mk "ND012" Lint.Warning ] in
  Alcotest.(check int) "warning keeps all" 2
    (List.length (Lint.filter_min_severity Lint.Warning fs));
  match Lint.filter_min_severity Lint.Error fs with
  | [ f ] -> Alcotest.(check string) "error only" "ND008" f.Lint.id
  | o -> Alcotest.failf "expected 1 finding, got %d" (List.length o)

(* --------------- Cost == exact Analysis: generated corpus ------------ *)

module Pcc = Nd_mem.Pcc

let q_star_ms = [ 1; 2; 8; 64 ]

let check_cost_matches_exact ~what p =
  let cost = Cost.of_program p in
  let exact = Analysis.analyze p in
  let r = Cost.report cost in
  if r.Cost.work <> exact.Analysis.work then
    Alcotest.failf "%s: Cost work %d <> exact %d" what r.Cost.work
      exact.Analysis.work;
  if r.Cost.span <> exact.Analysis.span then
    Alcotest.failf "%s: Cost span %d <> exact %d" what r.Cost.span
      exact.Analysis.span;
  if r.Cost.n_leaves <> exact.Analysis.n_leaves then
    Alcotest.failf "%s: Cost n_leaves %d <> exact %d" what r.Cost.n_leaves
      exact.Analysis.n_leaves;
  let root_size = Program.size p (Program.root p) in
  if r.Cost.root_size <> root_size then
    Alcotest.failf "%s: Cost root_size %d <> exact %d" what r.Cost.root_size
      root_size;
  if r.Cost.n_fire_edges <> List.length (Program.fire_edges p) then
    Alcotest.failf "%s: Cost fire edges %d <> exact %d" what
      r.Cost.n_fire_edges
      (List.length (Program.fire_edges p));
  List.iter
    (fun m ->
      let q = Cost.q_star cost ~m in
      let qe = Pcc.q_star p ~m in
      if q <> qe then
        Alcotest.failf "%s: Cost Q*(m=%d) %d <> exact %d" what m q qe)
    q_star_ms

let test_cost_matches_exact_corpus () =
  (* seeds disjoint from the other corpora (test_conform 1_000.., ESP
     5_000..25_000, CI fuzz base 42) *)
  let count = min 20_000 (max 500 (50 * stress_iters)) in
  for seed = 40_000 to 40_000 + count - 1 do
    let spec = Gen.generate ~seed () in
    let inst = Gen.build spec in
    match Program.compile ~registry:inst.Gen.registry inst.Gen.tree with
    | exception Invalid_argument _ ->
      (* the structural pass must refuse the same programs *)
      (match
         Cost.analyze ~registry:inst.Gen.registry inst.Gen.tree
       with
      | exception Invalid_argument _ -> ()
      | _ ->
        Alcotest.failf "seed %d: compile refused but Cost.analyze passed"
          seed)
    | p -> check_cost_matches_exact ~what:(Printf.sprintf "seed %d" seed) p
  done

let test_cost_matches_exact_workloads () =
  (* all ten shipped families at small n, both models *)
  List.iter
    (fun fam ->
      let n = List.hd fam.Nd_experiments.Workloads.sizes in
      let w = Nd_experiments.Workloads.build ~n fam ~seed:7 in
      List.iter
        (fun mode ->
          let p = Nd_algos.Workload.compile ~mode w in
          check_cost_matches_exact
            ~what:
              (Printf.sprintf "%s n=%d %s"
                 fam.Nd_experiments.Workloads.name n
                 (Nd_algos.Workload.mode_name mode))
            p)
        [ Nd_algos.Workload.ND; Nd_algos.Workload.NP ])
    Nd_experiments.Workloads.all;
  List.iter
    (fun (name, n, base) ->
      let fam = Nd_experiments.Workloads.find name in
      let w = Nd_experiments.Workloads.build ~n ~base fam ~seed:7 in
      let p = Nd_algos.Workload.compile w in
      check_cost_matches_exact
        ~what:(Printf.sprintf "%s n=%d base=%d" name n base)
        p)
    workload_cases

(* -------------- Cost at paper scale: pinned golden table -------------- *)

let test_cost_paper_scale_golden () =
  (* mm and apsp at n=512 — the apsp DAG (~98k vertices) is past the
     exact Race cap, which is the point of the structural pass.  The DAG
     still compiles (only the quadratic reachability refuses), so the
     differential identity holds even here; the pinned numbers guard
     against silent drift of either path. *)
  let golden =
    (* (algo, n, base, work, span, root_size, q_star at m=1365) *)
    [
      ("mm", 512, 16, 134_217_728, 131_072, 786_432, 20_987_903);
      ("apsp", 512, 16, 134_217_728, 2_752_512, 262_144, 20_430_739);
    ]
  in
  List.iter
    (fun (name, n, base, work, span, root_size, q1365) ->
      let fam = Nd_experiments.Workloads.find name in
      let w = Nd_experiments.Workloads.build ~n ~base fam ~seed:7 in
      let p = Nd_algos.Workload.compile w in
      if Nd_dag.Dag.n_vertices (Program.dag p) <= Race.default_max_vertices
      then
        Alcotest.failf "%s n=%d is not past the exact race cap" name n;
      check_cost_matches_exact ~what:(Printf.sprintf "%s n=%d" name n) p;
      let cost = Cost.of_program p in
      let r = Cost.report cost in
      Printf.printf "GOLDEN %s n=%d base=%d: work=%d span=%d root=%d q1365=%d vertices=%d shapes=%d\n%!"
        name n base r.Cost.work r.Cost.span r.Cost.root_size
        (Cost.q_star cost ~m:1365)
        (Nd_dag.Dag.n_vertices (Program.dag p)) r.Cost.n_shapes;
      if work >= 0 then begin
        Alcotest.(check int) (name ^ " work") work r.Cost.work;
        Alcotest.(check int) (name ^ " span") span r.Cost.span;
        Alcotest.(check int) (name ^ " root size") root_size r.Cost.root_size;
        Alcotest.(check int) (name ^ " Q*(1365)") q1365
          (Cost.q_star cost ~m:1365)
      end)
    golden

(* -------------------- race cap: per-call override -------------------- *)

let test_race_max_vertices_override () =
  let w =
    Nd_experiments.Workloads.build ~n:8 ~base:2
      (Nd_experiments.Workloads.find "mm") ~seed:7
  in
  let p = Nd_algos.Workload.compile w in
  let dag = Program.dag p in
  let n = Nd_dag.Dag.n_vertices dag in
  if n <= 4 then Alcotest.fail "mm n=8 unexpectedly tiny";
  (match Race.find_races ~max_vertices:4 dag with
  | exception Race.Limit_exceeded { vertices; limit } ->
    Alcotest.(check int) "vertices" n vertices;
    Alcotest.(check int) "override cap" 4 limit
  | _ -> Alcotest.fail "lowered cap did not trip");
  (* a raised per-call cap admits the program *)
  Alcotest.(check bool) "race free under raised cap" true
    (Race.race_free ~max_vertices:(n + 1) dag)

(* ----------------------------- registry ------------------------------ *)

let () =
  Alcotest.run "nd_analyze"
    [
      ( "esp-bags",
        [
          Alcotest.test_case "matches exact: generated corpus" `Slow
            test_esp_matches_exact_corpus;
          Alcotest.test_case "matches exact: workloads" `Quick
            test_esp_matches_exact_workloads;
          Alcotest.test_case "works past the exact cap" `Slow
            test_esp_beyond_exact_limit;
          Alcotest.test_case "diagnoses the dropped FG rule" `Quick
            test_esp_diagnoses_dropped_rule;
        ] );
      ( "lint",
        [
          Alcotest.test_case "rejects literal MM" `Quick
            test_lint_rejects_literal_mm;
          Alcotest.test_case "dangling + dead rules" `Quick
            test_lint_dangling_and_dead;
          Alcotest.test_case "duplicate, shadow, cycle" `Quick
            test_lint_duplicate_shadow_cycle;
          Alcotest.test_case "footprint overlap" `Quick
            test_lint_footprint_overlap;
          Alcotest.test_case "shipped rule sets clean" `Quick
            test_lint_shipped_sets_clean;
          Alcotest.test_case "JSON round-trip" `Quick
            test_lint_json_roundtrip;
          Alcotest.test_case "JSON extended catalogue + rejection" `Quick
            test_lint_json_extended_catalogue;
          Alcotest.test_case "structural cost catalogue" `Quick
            test_lint_cost_catalogue;
          Alcotest.test_case "span sweep (ND010)" `Quick
            test_lint_span_sweep_catalogue;
          Alcotest.test_case "min-severity filter" `Quick
            test_lint_min_severity_filter;
        ] );
      ( "cost",
        [
          Alcotest.test_case "matches exact: generated corpus" `Slow
            test_cost_matches_exact_corpus;
          Alcotest.test_case "matches exact: workloads" `Quick
            test_cost_matches_exact_workloads;
          Alcotest.test_case "paper-scale golden" `Slow
            test_cost_paper_scale_golden;
        ] );
      ( "race-cap",
        [
          Alcotest.test_case "per-call max_vertices override" `Quick
            test_race_max_vertices_override;
        ] );
    ]
