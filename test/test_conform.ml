(* Conformance tests: the generative harness (Nd_check) applied as a
   fixed regression suite — a seeded spec corpus through the
   differential oracle, the paper's algorithm workloads as oracle
   inputs, negative tests that prove the race detector / rule diagnosis
   / interleaving explorer actually catch the bug classes they exist
   for, and a mutation smoke test that re-introduces the pre-hardening
   deque bug behind a hook and checks the explorer finds it.

   NDSIM_STRESS_ITERS scales the generated-corpus size (default 3;
   the canonical soak value used by nightly CI is 1000). *)

module Gen = Nd_check.Gen
module Oracle = Nd_check.Oracle
module Explore = Nd_check.Explore
module Deque = Nd_runtime.Deque
module Fiber = Nd_runtime.Fiber_exec
module Race = Nd_dag.Race
open Nd

let stress_iters =
  match Sys.getenv_opt "NDSIM_STRESS_ITERS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 3)
  | None -> 3

(* --------------------- generated-spec corpus ------------------------ *)

let test_spec_corpus () =
  (* bounded soak: 20 specs per stress iteration, seeds disjoint from
     the CI fuzz job's base seed 42 *)
  let count = min 2_000 (20 * stress_iters) in
  for seed = 1_000 to 1_000 + count - 1 do
    let spec = Gen.generate ~seed () in
    match Oracle.check_spec spec with
    | Ok _ -> ()
    | Error f ->
      let shrunk =
        Gen.shrink spec ~still_fails:(fun s ->
            Result.is_error (Oracle.check_spec s))
      in
      Alcotest.failf "seed %d: %a@.shrunk:@.%a" seed Oracle.pp_failure f
        Gen.pp shrunk
  done

(* ----------------------- workload corpus ---------------------------- *)

(* The paper's algorithms at small sizes: MM (and the 8-way NP MM),
   TRS (whose update step is MMS), Cholesky, LU, FW-2D (apsp), FW-1D
   and LCS.  [check_workload] expects race-freedom and numeric
   agreement with the serial kernels on every executing path. *)
let conform_families =
  [
    ("mm", 4, 2); ("mm8", 4, 2); ("trs", 4, 2); ("cholesky", 4, 2);
    ("lu", 4, 2); ("apsp", 4, 2); ("fw1d", 4, 2); ("lcs", 8, 2);
  ]

let test_workload name n base () =
  let fam = Nd_experiments.Workloads.find name in
  let w = Nd_experiments.Workloads.build ~n ~base fam ~seed:7 in
  match Oracle.check_workload w with
  | Ok r ->
    Alcotest.(check bool) "race free" true r.Oracle.race_free;
    if r.Oracle.paths < 5 then
      Alcotest.failf "only %d paths checked" r.Oracle.paths
  | Error f -> Alcotest.failf "%s: %a" name Oracle.pp_failure f

(* ------------------------ negative: MM literal ----------------------- *)

(* The paper's printed MM rule set leaves (src second half, snk first
   half) unordered; the oracle, the race detector and the rule
   diagnosis must all report it.  n = 8 is the smallest size where the
   literal rules differ from full edges (at n = 4 the fire connects two
   leaves, which the DRS serializes outright). *)
let test_mm_literal_rejected () =
  let w =
    Nd_algos.Matmul.workload ~variant:Nd_algos.Matmul.Literal ~n:8 ~base:2
      ~seed:7 ()
  in
  (match Oracle.check_workload w with
  | Ok _ -> Alcotest.fail "oracle accepted the racy literal MM rules"
  | Error f -> Alcotest.(check string) "failing stage" "race" f.Oracle.stage);
  let p = Nd_algos.Workload.compile w in
  (match Race.find_races (Program.dag p) with
  | [] -> Alcotest.fail "no race found in literal MM"
  | r :: _ ->
    Alcotest.(check bool) "write/write overlap" true r.Race.write_write);
  match Rule_check.diagnose ~limit:1 p with
  | [] -> Alcotest.fail "no diagnosis for literal MM"
  | f :: _ -> (
    match f.Rule_check.lca_kind with
    | Program.Fire "MM_literal" -> ()
    | _ -> Alcotest.fail "race not lifted to the MM fire construct")

(* ---------------- negative: one rule removed from a set -------------- *)

(* F = (A ; B), G = (C ; D), composed with fire FG.  A writes {0} which
   D reads; B writes {1} which C reads.  The correct set carries both
   orderings; dropping +<2> ~> -<1> leaves exactly the pair (B, C)
   unordered, and the diagnosis must name the fire node and the two
   pedigrees of the offending strands. *)
let fg_program rules =
  let is = Nd_util.Interval_set.interval in
  let s label ~reads ~writes =
    Spawn_tree.leaf (Strand.make ~label ~work:1 ~reads ~writes ())
  in
  let e = Nd_util.Interval_set.empty in
  let f =
    Spawn_tree.seq
      [ s "A" ~reads:e ~writes:(is 0 1); s "B" ~reads:e ~writes:(is 1 2) ]
  and g =
    Spawn_tree.seq
      [ s "C" ~reads:(is 1 2) ~writes:e; s "D" ~reads:(is 0 1) ~writes:e ]
  in
  let reg = Fire_rule.define Fire_rule.empty_registry "FG" rules in
  Program.compile ~registry:reg (Spawn_tree.fire ~rule:"FG" f g)

let a_before_d = Fire_rule.rule [ 1 ] Fire_rule.Full [ 2 ]

let b_before_c = Fire_rule.rule [ 2 ] Fire_rule.Full [ 1 ]

let test_complete_rule_set_clean () =
  let p = fg_program [ a_before_d; b_before_c ] in
  Alcotest.(check bool) "race free" true (Race.race_free (Program.dag p));
  Alcotest.(check int) "no findings" 0 (List.length (Rule_check.diagnose p))

let test_dropped_rule_diagnosed () =
  let p = fg_program [ a_before_d ] in
  Alcotest.(check bool) "racy" false (Race.race_free (Program.dag p));
  match Rule_check.diagnose p with
  | [ f ] ->
    (match f.Rule_check.lca_kind with
    | Program.Fire "FG" -> ()
    | _ -> Alcotest.fail "LCA is not the FG fire node");
    Alcotest.(check string) "src pedigree (B)" "<1.2>"
      (Pedigree.to_string f.Rule_check.src_pedigree);
    Alcotest.(check string) "dst pedigree (C)" "<2.1>"
      (Pedigree.to_string f.Rule_check.dst_pedigree);
    Alcotest.(check bool) "read/write race" false f.Rule_check.race.Race.write_write
  | other -> Alcotest.failf "expected exactly 1 finding, got %d" (List.length other)

(* ------------------------- explorer: engine -------------------------- *)

let explore_seeds = List.init (max 10 stress_iters) (fun i -> i)

let test_explore_program () =
  let spec = Gen.generate ~seed:7 () in
  let inst = Gen.build spec in
  let program = Program.compile ~registry:inst.Gen.registry inst.Gen.tree in
  let reset () = Gen.reset inst in
  let check () =
    if Array.for_all (fun c -> Atomic.get c = 1) inst.Gen.counts then Ok ()
    else Error "some strand did not run exactly once"
  in
  (match
     Explore.explore_program ~workers:2
       ~mode:(Explore.Random { seeds = explore_seeds })
       ~reset ~check program
   with
  | Ok s -> Alcotest.(check int) "all seeds ran" (List.length explore_seeds) s.Explore.runs
  | Error f -> Alcotest.failf "random walk: %a" Explore.pp_failure f);
  match
    Explore.explore_program ~workers:2
      ~mode:(Explore.Exhaustive { max_runs = 50 * stress_iters })
      ~reset ~check program
  with
  | Ok s -> if s.Explore.runs = 0 then Alcotest.fail "no schedules explored"
  | Error f -> Alcotest.failf "exhaustive: %a" Explore.pp_failure f

(* -------------------------- explorer: deque -------------------------- *)

let test_explore_deque_healthy () =
  (match Explore.explore_deque ~mode:(Explore.Random { seeds = explore_seeds }) () with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "random walk: %a" Explore.pp_failure f);
  match
    Explore.explore_deque
      ~mode:(Explore.Exhaustive { max_runs = 100 * stress_iters })
      ~n_thieves:1 ~pushes:6 ()
  with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "exhaustive: %a" Explore.pp_failure f

(* Mutation smoke test: re-enable the retired-buffer recycling bug
   (PR 2 hardened this path) and require the explorer to find it within
   a fixed seed range — i.e. the harness detects the bug class it was
   built for, deterministically.  On trunk (hook off) the same seeds
   must pass; that is [test_explore_deque_healthy] above, which uses a
   prefix of the same seed list. *)
let test_explore_deque_mutation () =
  let seeds = List.init 20 (fun i -> i) in
  Deque.Hooks.set_drop_retired true;
  Fun.protect
    ~finally:(fun () -> Deque.Hooks.set_drop_retired false)
    (fun () ->
      match Explore.explore_deque ~mode:(Explore.Random { seeds }) () with
      | Ok s ->
        Alcotest.failf
          "mutant survived %d seeded schedules: explorer lost its teeth"
          s.Explore.runs
      | Error f ->
        (match f.Explore.seed with
        | Some _ -> ()
        | None -> Alcotest.fail "failure carries no replay seed");
        let expected = "consumed index holds no value" in
        let msg = f.Explore.message in
        let found =
          let lm = String.length msg and le = String.length expected in
          let rec scan i =
            i + le <= lm && (String.sub msg i le = expected || scan (i + 1))
          in
          scan 0
        in
        if not found then
          Alcotest.failf "unexpected failure mode: %s" msg)

(* ---------------------- explorer: fiber engine ----------------------- *)

(* the fiber scheduler under the same schedule explorer as the deque
   engine: every interleaving of a generated program must run each
   strand exactly once and leave no fiber parked *)
let test_explore_fiber_program () =
  let spec = Gen.generate ~seed:7 () in
  let inst = Gen.build spec in
  let program = Program.compile ~registry:inst.Gen.registry inst.Gen.tree in
  let reset () = Gen.reset inst in
  let check () =
    if Array.for_all (fun c -> Atomic.get c = 1) inst.Gen.counts then Ok ()
    else Error "some strand did not run exactly once"
  in
  (match
     Explore.explore_fiber_program ~workers:2
       ~mode:(Explore.Random { seeds = explore_seeds })
       ~reset ~check program
   with
  | Ok s ->
    Alcotest.(check int) "all seeds ran" (List.length explore_seeds)
      s.Explore.runs
  | Error f -> Alcotest.failf "random walk: %a" Explore.pp_failure f);
  match
    Explore.explore_fiber_program ~workers:2
      ~mode:(Explore.Exhaustive { max_runs = 50 * stress_iters })
      ~reset ~check program
  with
  | Ok s -> if s.Explore.runs = 0 then Alcotest.fail "no schedules explored"
  | Error f -> Alcotest.failf "exhaustive: %a" Explore.pp_failure f

(* Lost-wakeup mutation: the hook replaces [await]'s park CAS with a
   blind store, recreating the classic sleep/wakeup race — an await
   reads Pending, loses the processor to the fulfiller (which swings
   the promise to Fulfilled and finds no waiter to wake), then blindly
   overwrites the fulfilled state and parks forever.  The explorer must
   drive the scheduler into that window within a fixed seed range; the
   stranded fiber surfaces through the built-in stall check.  On trunk
   (hook off) the same engine passes [test_explore_fiber_program]. *)
let test_explore_fiber_lost_wakeup () =
  let p = fg_program [ a_before_d; b_before_c ] in
  let seeds = List.init (max 100 (10 * stress_iters)) (fun i -> i) in
  Fiber.Hooks.set_lost_wakeup true;
  Fun.protect
    ~finally:(fun () -> Fiber.Hooks.set_lost_wakeup false)
    (fun () ->
      match
        Explore.explore_fiber_program ~workers:2
          ~mode:(Explore.Random { seeds })
          p
      with
      | Ok s ->
        Alcotest.failf
          "lost-wakeup mutant survived %d seeded schedules: explorer lost \
           its teeth"
          s.Explore.runs
      | Error f -> (
        (match f.Explore.seed with
        | Some _ -> ()
        | None -> Alcotest.fail "failure carries no replay seed");
        match f.Explore.message with
        | msg
          when String.length msg > 0
               (* stall check or exactly-once check, depending on where
                  the schedule strands the waiter *) ->
          ()
        | msg -> Alcotest.failf "empty failure message: %s" msg));
  (* healthy re-run on the same program: the abandoned schedules'
     suspended fibers were discontinued and the explorer hooks cleared,
     so the scheduler must be fully reusable in-process *)
  match
    Explore.explore_fiber_program ~workers:2
      ~mode:(Explore.Random { seeds = explore_seeds })
      p
  with
  | Ok _ -> ()
  | Error f ->
    Alcotest.failf "healthy re-run after mutation failed: %a"
      Explore.pp_failure f

let () =
  Alcotest.run "nd_conform"
    [
      ( "oracle",
        Alcotest.test_case "generated spec corpus" `Slow test_spec_corpus
        :: List.map
             (fun (name, n, base) ->
               Alcotest.test_case
                 (Printf.sprintf "workload %s n=%d" name n)
                 `Quick (test_workload name n base))
             conform_families );
      ( "negative",
        [
          Alcotest.test_case "literal MM rules rejected" `Quick
            test_mm_literal_rejected;
          Alcotest.test_case "complete FG rule set clean" `Quick
            test_complete_rule_set_clean;
          Alcotest.test_case "dropped FG rule diagnosed" `Quick
            test_dropped_rule_diagnosed;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "engine: random + exhaustive" `Quick
            test_explore_program;
          Alcotest.test_case "deque: healthy" `Quick test_explore_deque_healthy;
          Alcotest.test_case "deque: seeded mutation is found" `Quick
            test_explore_deque_mutation;
          Alcotest.test_case "fiber: random + exhaustive" `Quick
            test_explore_fiber_program;
          Alcotest.test_case "fiber: lost wakeup is found" `Quick
            test_explore_fiber_lost_wakeup;
        ] );
    ]
