(* Tests for the effects-based fiber backend (Nd_runtime.Fiber_exec):
   promise/pool unit behaviour, executor-vs-serial equivalence over
   workers x grain, a blocked-fire stress case that would deadlock any
   design where a waiting strand occupies its worker, and a generated
   three-way differential sweep (fork-join / dataflow / fiber) checking
   exactly-once delivery and memory equality against the serial
   elision.

   NDSIM_STRESS_ITERS scales the generated corpus (default 3; the
   nightly soak value 1000 pushes the sweep past 500 programs). *)

module Fiber = Nd_runtime.Fiber_exec
module Executor = Nd_runtime.Executor
module Gen = Nd_check.Gen
module Race = Nd_dag.Race
open Nd
open Nd_algos

let stress_iters =
  match Sys.getenv_opt "NDSIM_STRESS_ITERS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 3)
  | None -> 3

(* ------------------------- promise basics --------------------------- *)

let test_promise_basics () =
  let p = Fiber.promise () in
  Alcotest.(check bool) "fresh promise empty" true (Fiber.peek p = None);
  Fiber.fulfill p 42;
  Alcotest.(check (option int)) "peek after fulfill" (Some 42) (Fiber.peek p);
  Alcotest.(check int) "await on fulfilled works off-fiber" 42 (Fiber.await p);
  (match Fiber.fulfill p 43 with
  | () -> Alcotest.fail "second fulfill must raise"
  | exception Invalid_argument _ -> ());
  let q = Fiber.promise () in
  (match Fiber.await q with
  | _ -> Alcotest.fail "await on pending promise off-fiber must raise"
  | exception Invalid_argument _ -> ());
  match Fiber.spawn (fun () -> ()) with
  | () -> Alcotest.fail "spawn off-fiber must raise"
  | exception Invalid_argument _ -> ()

(* --------------------------- server pools --------------------------- *)

let test_pool_submit_shutdown () =
  let t = Fiber.create ~workers:2 ~name:"t" () in
  Alcotest.(check bool) "lazy: not started" false (Fiber.started t);
  let hits = Atomic.make 0 in
  let n = 200 in
  for _ = 1 to n do
    Fiber.submit t (fun () -> Atomic.incr hits)
  done;
  Alcotest.(check bool) "started after submit" true (Fiber.started t);
  Fiber.shutdown t;
  Alcotest.(check int) "all jobs ran" n (Atomic.get hits);
  let s = Fiber.stats t in
  Alcotest.(check int) "fibers counted" n s.Fiber.fibers;
  Alcotest.(check int) "completed counted" n s.Fiber.completed;
  Alcotest.(check int) "no errors" 0 s.Fiber.errors;
  match Fiber.submit t (fun () -> ()) with
  | () -> Alcotest.fail "submit after shutdown must raise"
  | exception Fiber.Closed -> ()

let test_pool_spawn_await () =
  (* a submitted fiber fans out via spawn and joins via promises *)
  let t = Fiber.create ~workers:3 () in
  let total = Atomic.make 0 in
  let done_ = Fiber.promise () in
  Fiber.submit t (fun () ->
      let ps = List.init 20 (fun i -> (i, Fiber.promise ())) in
      List.iter
        (fun (i, p) ->
          Fiber.spawn (fun () ->
              ignore (Atomic.fetch_and_add total i);
              Fiber.fulfill p ()))
        ps;
      List.iter (fun (_, p) -> Fiber.await p) ps;
      Fiber.fulfill done_ (Atomic.get total));
  let rec wait n =
    if n = 0 then Alcotest.fail "join fiber never finished"
    else
      match Fiber.peek done_ with
      | Some v -> v
      | None ->
        Unix.sleepf 2e-3;
        wait (n - 1)
  in
  let v = wait 5_000 in
  Fiber.shutdown t;
  Alcotest.(check int) "spawned fibers all ran before join" 190 v

let test_pool_error_accounting () =
  let t = Fiber.create ~workers:1 () in
  Fiber.submit t (fun () -> ());
  Fiber.submit t (fun () -> failwith "boom-7");
  Fiber.submit t (fun () -> ());
  Fiber.shutdown t;
  let s = Fiber.stats t in
  Alcotest.(check int) "error counted" 1 s.Fiber.errors;
  Alcotest.(check int) "erroring fiber still completes" 3 s.Fiber.completed;
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  match Fiber.last_error t with
  | Some msg ->
    if not (contains ~sub:"boom-7" msg) then
      Alcotest.failf "last_error %S does not mention boom-7" msg
  | None -> Alcotest.fail "last_error not retained"

let test_pool_blocked_shutdown () =
  (* a fiber parked on a promise nobody fulfills must not hang
     shutdown: the drain detects the stall and gives up, leaving the
     leak visible in [blocked] *)
  let t = Fiber.create ~workers:1 () in
  Fiber.submit t (fun () -> ignore (Fiber.await (Fiber.promise ())));
  let deadline = Unix.gettimeofday () +. 30. in
  Fiber.shutdown t;
  Alcotest.(check bool) "shutdown returned promptly" true
    (Unix.gettimeofday () < deadline);
  let s = Fiber.stats t in
  Alcotest.(check int) "leaked fiber visible" 1 s.Fiber.blocked

(* ---------------------- executor equivalence ------------------------ *)

let equiv_check name w run tol =
  let p = Workload.compile w in
  w.Workload.reset ();
  run p;
  let err = w.Workload.check () in
  if err > tol then Alcotest.failf "%s: err %g > %g" name err tol

let grains = [ 0; 1; 17; 300; max_int ]

let test_fiber_equivalence () =
  List.iter
    (fun workers ->
      List.iter
        (fun grain ->
          let tag k =
            Printf.sprintf "%s w=%d g=%d" k workers
              (if grain = max_int then -1 else grain)
          in
          equiv_check (tag "mm")
            (Matmul.workload ~n:16 ~base:2 ~seed:81 ())
            (Fiber.run ~workers ~grain) 1e-9;
          equiv_check (tag "trs")
            (Trs.workload ~n:16 ~base:2 ~seed:82 ())
            (Fiber.run ~workers ~grain) 1e-8;
          equiv_check (tag "lcs")
            (Lcs.workload ~n:32 ~base:4 ~seed:83 ())
            (Fiber.run ~workers ~grain) 0.)
        grains)
    [ 1; 2; 8 ]

(* ---------------------- blocked-fire stress ------------------------- *)

(* A fire chain [depth] links deep compiled at vertex granularity: the
   snk of every fire depends on its src, so at any moment exactly one
   task is runnable and every other seeded fiber is parked on a fire
   edge.  With fibers >> workers this deadlocks any design where a
   blocked wait occupies a worker slot (2 workers cannot host ~1500
   simultaneous waiters); the fiber backend must instead show massive
   parking and still finish. *)
let fire_chain depth =
  let leaf i =
    Gen.Leaf { Gen.work = 1; reads = []; writes = [ (i mod 8, (i mod 8) + 1) ] }
  in
  let rec chain k = if k = 0 then leaf 0 else Gen.Fire { rule = "R1"; src = leaf k; snk = chain (k - 1) } in
  {
    Gen.tree = chain depth;
    rules = [ ("R1", [ Fire_rule.rule [] Fire_rule.Full [] ]) ];
    mem = 8;
  }

let test_blocked_fire_chain () =
  let depth = 1_500 in
  let spec = fire_chain depth in
  let inst = Gen.build spec in
  let program = Program.compile ~registry:inst.Gen.registry inst.Gen.tree in
  Gen.reset inst;
  let stats = Fiber.run_program ~workers:2 program in
  Array.iteri
    (fun i c ->
      if Atomic.get c <> 1 then
        Alcotest.failf "leaf %d ran %d times" i (Atomic.get c))
    inst.Gen.counts;
  if stats.Fiber.suspensions < depth / 2 then
    Alcotest.failf "expected heavy parking, got %d suspensions"
      stats.Fiber.suspensions;
  if stats.Fiber.peak_blocked < 100 then
    Alcotest.failf "expected peak blocked >> workers, got %d"
      stats.Fiber.peak_blocked;
  Alcotest.(check int) "nothing left parked" 0 stats.Fiber.blocked

(* ------------------ three-way differential sweep -------------------- *)

(* Every generated program through all three backends at workers
   {1,2,8}: leaf counters must read exactly 1 everywhere, and for
   race-free programs the memory image must be bit-identical to the
   serial elision.  (The full oracle — serial orders, zoo, explorer —
   runs in test_conform and the fuzzer; this sweep is the focused
   cross-backend check at the worker counts the oracle's default
   config does not visit.) *)
let backends : (string * (workers:int -> Program.t -> unit)) list =
  [
    ("forkjoin", fun ~workers p -> Executor.run_fork_join ~workers p);
    ("dataflow", fun ~workers p -> Executor.run_dataflow ~workers p);
    ("fiber", fun ~workers p -> Fiber.run ~workers p);
  ]

let check_three_way ~seed =
  let spec = Gen.generate ~seed () in
  let inst = Gen.build spec in
  let program = Program.compile ~registry:inst.Gen.registry inst.Gen.tree in
  let nleaves = Array.length inst.Gen.counts in
  let race_free = Race.race_free (Program.dag program) in
  Gen.reset inst;
  Serial_exec.run_sequential program;
  let reference = Array.copy inst.Gen.memory in
  List.iter
    (fun (bname, run) ->
      List.iter
        (fun workers ->
          let tag = Printf.sprintf "seed %d %s w=%d" seed bname workers in
          Gen.reset inst;
          run ~workers program;
          for i = 0 to nleaves - 1 do
            let c = Atomic.get inst.Gen.counts.(i) in
            if c <> 1 then
              Alcotest.failf "%s: leaf %d executed %d times" tag i c
          done;
          if race_free && inst.Gen.memory <> reference then
            Alcotest.failf "%s: memory diverges from serial elision" tag)
        [ 1; 2; 8 ])
    backends

let test_three_way_sweep () =
  (* a fixed deterministic corpus for quick failure triage; the QCheck
     property below carries the >= 500-program load *)
  let count = max 60 (min 500 stress_iters) in
  for seed = 9_000 to 9_000 + count - 1 do
    check_three_way ~seed
  done

(* the acceptance-criterion form: >= 500 generated programs, each
   through all three backends at workers {1,2,8}, exactly-once plus
   memory equality.  The generator draws the spec seed, so a failure
   shrinks towards small seeds and is replayable via
   [check_three_way ~seed]. *)
let prop_three_way =
  QCheck2.Test.make ~name:"three-way backend equality, generated corpus"
    ~count:500
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      check_three_way ~seed;
      true)

let () =
  Alcotest.run "nd_fiber"
    [
      ( "pool",
        [
          Alcotest.test_case "promise basics and misuse" `Quick
            test_promise_basics;
          Alcotest.test_case "submit/shutdown exactly-once" `Quick
            test_pool_submit_shutdown;
          Alcotest.test_case "spawn + promise join inside a pool" `Quick
            test_pool_spawn_await;
          Alcotest.test_case "error accounting + last_error" `Quick
            test_pool_error_accounting;
          Alcotest.test_case "shutdown with a stuck fiber" `Quick
            test_pool_blocked_shutdown;
        ] );
      ( "program",
        [
          Alcotest.test_case "fiber = serial over workers x grain" `Quick
            test_fiber_equivalence;
          Alcotest.test_case "blocked fire chain, fibers >> workers" `Quick
            test_blocked_fire_chain;
          Alcotest.test_case "three-way backend sweep (generated)" `Quick
            test_three_way_sweep;
          QCheck_alcotest.to_alcotest prop_three_way;
        ] );
    ]
