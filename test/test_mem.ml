module Is = Nd_util.Interval_set
open Nd
open Nd_algos

let compile w = Nd_algos.Workload.compile w

(* hand-checkable program: Par of 4 strands of size 4 each (disjoint) *)
let quad_program () =
  let strand label lo =
    Spawn_tree.leaf
      (Strand.make ~label ~work:4 ~reads:Is.empty ~writes:(Is.interval lo (lo + 4)) ())
  in
  let tree =
    Spawn_tree.par
      [
        Spawn_tree.par [ strand "a" 0; strand "b" 4 ];
        Spawn_tree.par [ strand "c" 8; strand "d" 12 ];
      ]
  in
  Program.compile ~registry:Fire_rule.empty_registry tree

(* ------------------------------ Q* --------------------------------- *)

let test_qstar_hand () =
  let p = quad_program () in
  (* m = 16: the root is one maximal task: Q* = 16 *)
  Alcotest.(check int) "m=16" 16 (Nd_mem.Pcc.q_star p ~m:16);
  (* m = 8: two tasks of 8, one glue node: 8+8+1 *)
  Alcotest.(check int) "m=8" 17 (Nd_mem.Pcc.q_star p ~m:8);
  (* m = 4: four tasks, three glue *)
  Alcotest.(check int) "m=4" 19 (Nd_mem.Pcc.q_star p ~m:4);
  let sizes, glue = Nd_mem.Pcc.q_star_split p ~m:4 in
  Alcotest.(check (pair int int)) "split" (16, 3) (sizes, glue)

let test_qstar_shape_mm () =
  (* Claim 1: Q*(N; M) = Theta(n^3 / sqrt(M)): quadrupling M halves Q* *)
  let w = Matmul.workload ~n:32 ~base:2 ~seed:1 () in
  let p = compile w in
  let q64 = Nd_mem.Pcc.q_star p ~m:64 in
  let q256 = Nd_mem.Pcc.q_star p ~m:256 in
  let ratio = float_of_int q64 /. float_of_int q256 in
  if ratio < 1.5 || ratio > 3. then
    Alcotest.failf "expected ~2x drop, got %.2f (q64=%d q256=%d)" ratio q64 q256

let test_qstar_shape_lcs () =
  (* Our LCS materializes the DP table (static allocation), so its Q* is
     Theta(n^2) plus a boundary term declining in M — NOT the paper's
     O(n^2/M), which presumes the O(n)-space frontier formulation with
     buffer reuse (see EXPERIMENTS.md).  Check the actual shape: Q* stays
     within a small constant of the table size and decreases with M. *)
  let n = 128 in
  let w = Lcs.workload ~n ~base:2 ~seed:1 () in
  let p = compile w in
  let q64 = Nd_mem.Pcc.q_star p ~m:64 in
  let q1024 = Nd_mem.Pcc.q_star p ~m:1024 in
  let table = (n + 1) * (n + 1) in
  Alcotest.(check bool) "monotone in M" true (q1024 <= q64);
  Alcotest.(check bool) "at least the table" true (q1024 >= table);
  Alcotest.(check bool) "within 3x of the table" true (q64 <= 3 * table)

let test_qstar_np_invariant () =
  (* the spawn tree is unchanged between models, so Q* is identical *)
  let w = Trs.workload ~n:16 ~base:2 ~seed:1 () in
  let pnd = compile w and pnp = Nd_algos.Workload.compile ~mode:Nd_algos.Workload.NP w in
  List.iter
    (fun m ->
      Alcotest.(check int)
        (Printf.sprintf "m=%d" m)
        (Nd_mem.Pcc.q_star pnd ~m)
        (Nd_mem.Pcc.q_star pnp ~m))
    [ 8; 32; 128; 512 ]

(* --------------------------- cache sim ----------------------------- *)

let test_lru_basic () =
  let c = Nd_mem.Cache_sim.create ~m:2 () in
  Alcotest.(check bool) "1 miss" true (Nd_mem.Cache_sim.access c 1);
  Alcotest.(check bool) "2 miss" true (Nd_mem.Cache_sim.access c 2);
  Alcotest.(check bool) "1 hit" false (Nd_mem.Cache_sim.access c 1);
  (* 3 evicts 2 (LRU) *)
  Alcotest.(check bool) "3 miss" true (Nd_mem.Cache_sim.access c 3);
  Alcotest.(check bool) "1 still hit" false (Nd_mem.Cache_sim.access c 1);
  Alcotest.(check bool) "2 evicted" true (Nd_mem.Cache_sim.access c 2);
  Alcotest.(check int) "misses" 4 (Nd_mem.Cache_sim.misses c);
  Alcotest.(check int) "accesses" 6 (Nd_mem.Cache_sim.accesses c)

let test_lru_set () =
  let c = Nd_mem.Cache_sim.create ~m:8 () in
  let fp = Is.of_intervals [ (0, 4); (10, 14) ] in
  Alcotest.(check int) "cold" 8 (Nd_mem.Cache_sim.access_set c fp);
  Alcotest.(check int) "warm" 0 (Nd_mem.Cache_sim.access_set c fp)

let test_q1_bounds () =
  (* Q1 with an infinite cache = root size; with m=1 >= total work's
     touches; and Q1 <= Q* (the PCC never undercounts the serial
     traversal) for our algorithms *)
  let w = Matmul.workload ~n:16 ~base:2 ~seed:2 () in
  let p = compile w in
  let root_size = Program.size p (Program.root p) in
  Alcotest.(check int) "infinite cache" root_size
    (Nd_mem.Cache_sim.q1 p ~m:(root_size * 2));
  List.iter
    (fun m ->
      let q1 = Nd_mem.Cache_sim.q1 p ~m in
      let qs = Nd_mem.Pcc.q_star p ~m in
      if q1 > qs then Alcotest.failf "m=%d: Q1 %d > Q* %d" m q1 qs)
    [ 16; 64; 256 ]

(* ---------------- interval-LRU vs word-exact LRU ------------------- *)

module Cs = Nd_mem.Cache_sim
module Prng = Nd_util.Prng

let stress_iters =
  match Sys.getenv_opt "NDSIM_STRESS_ITERS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 3)
  | None -> 3

(* hand-built sequence forcing the interesting interval transitions:
   partial-hit splits, partial (left-shrink) evictions, and an access
   larger than the whole cache (self-eviction) *)
let test_interval_split_evict () =
  let trace c =
    let h = ref [] in
    let record (x : int) = h := x :: !h in
    record (Cs.access_set c (Is.interval 0 4));
    (* cold fill *)
    record (Cs.access_set c (Is.interval 10 12));
    (* evicts the two oldest words: [0,2) out, [2,4) stays *)
    record (if Cs.access c 2 then 1 else 0);
    record (if Cs.access c 0 then 1 else 0);
    (* partial hit across the resident tail and a fresh run *)
    record (Cs.access_set c (Is.of_intervals [ (2, 3); (20, 22) ]));
    (* footprint wider than the cache: self-eviction path *)
    record (Cs.access_set c (Is.interval 100 108));
    (Cs.misses c, Cs.accesses c, List.rev !h)
  in
  let word = trace (Cs.create ~impl:Cs.Word ~m:4 ()) in
  let intv = trace (Cs.create ~impl:Cs.Interval ~m:4 ()) in
  let _, _, per_step = intv in
  Alcotest.(check (list int))
    "expected per-step misses"
    [ 4; 2; 0; 1; 2; 8 ]
    per_step;
  Alcotest.(check (triple int int (list int))) "word = interval" word intv

(* randomized equivalence: the interval simulator must be bit-identical
   to the word-exact reference on arbitrary interleavings of single-word
   and multi-fragment footprint accesses.  At least 500 traces even at
   the default NDSIM_STRESS_ITERS (the acceptance floor); the nightly
   soak multiplies this by ~300. *)
let test_interval_equiv_random () =
  let n_traces = max 500 (167 * stress_iters) in
  let rng = Prng.create 20260806 in
  for t = 1 to n_traces do
    let m = 1 + Prng.int rng 64 in
    let cw = Cs.create ~impl:Cs.Word ~m () in
    let ci = Cs.create ~impl:Cs.Interval ~m () in
    let steps = 1 + Prng.int rng 30 in
    for s = 1 to steps do
      if Prng.int rng 4 = 0 then begin
        let a = Prng.int rng 160 in
        let mw = Cs.access cw a in
        let mi = Cs.access ci a in
        if mw <> mi then
          Alcotest.failf "trace %d step %d (m=%d): word %b / interval %b at %d"
            t s m mw mi a
      end
      else begin
        (* 1-3 fragments, lengths up to 48 (often > m: eviction chains) *)
        let n_frags = 1 + Prng.int rng 3 in
        let frags =
          List.init n_frags (fun _ ->
              let lo = Prng.int rng 128 in
              (lo, lo + 1 + Prng.int rng 48))
        in
        let fp = Is.of_intervals frags in
        let mw = Cs.access_set cw fp in
        let mi = Cs.access_set ci fp in
        if mw <> mi then
          Alcotest.failf "trace %d step %d (m=%d): word %d / interval %d misses"
            t s m mw mi
      end
    done;
    if Cs.misses cw <> Cs.misses ci || Cs.accesses cw <> Cs.accesses ci then
      Alcotest.failf "trace %d (m=%d): totals diverge (w %d/%d, i %d/%d)" t m
        (Cs.misses cw) (Cs.accesses cw) (Cs.misses ci) (Cs.accesses ci)
  done

(* every shipped workload family at its smallest sweep size: q1 under
   both implementations must agree exactly *)
let test_interval_equiv_workloads () =
  List.iter
    (fun name ->
      let fam = Nd_experiments.Workloads.find name in
      let n = List.hd fam.Nd_experiments.Workloads.sizes in
      let p = compile (Nd_experiments.Workloads.build ~n fam ~seed:7) in
      List.iter
        (fun m ->
          Alcotest.(check int)
            (Printf.sprintf "%s n=%d m=%d" name n m)
            (Cs.q1 ~impl:Cs.Word p ~m)
            (Cs.q1 ~impl:Cs.Interval p ~m))
        [ 16; 64; 256 ])
    (Nd_experiments.Workloads.names ())

(* ------------------- sharded replay differential ------------------- *)

module Mt = Nd_mem.Miss_table
module Shard = Nd_mem.Shard_sim
module Pmh = Nd_pmh.Pmh

(* random machine + trace derived from a Prng seed, so the QCheck
   property shrinks over (and replays from) a single integer *)
let build_case seed =
  let rng = Prng.create seed in
  let n_levels = 1 + Prng.int rng 3 in
  let root_fanout = 1 + Prng.int rng 3 in
  let rec levels i size acc =
    if i = n_levels then List.rev acc
    else
      let size = (size * (2 + Prng.int rng 6)) + Prng.int rng 3 in
      levels (i + 1) size
        ({ Pmh.size; fanout = 1 + Prng.int rng 3; miss_cost = 1 + Prng.int rng 16 }
        :: acc)
  in
  let machine = Pmh.create ~root_fanout (levels 0 (2 + Prng.int rng 8) []) in
  let n_procs = Pmh.n_procs machine in
  let trace = Shard.Trace.create () in
  let len = Prng.int rng 200 in
  for _ = 1 to len do
    let proc = Prng.int rng n_procs in
    let n_frags = 1 + Prng.int rng 3 in
    let frags =
      List.init n_frags (fun _ ->
          let lo = Prng.int rng 128 in
          (lo, lo + 1 + Prng.int rng 48))
    in
    Shard.Trace.push trace ~proc (Is.of_intervals frags)
  done;
  (machine, trace)

(* the bit-identity chain the sharded simulation rests on: sharded
   replay at any worker count = serial interval replay = word-exact
   replay, on arbitrary machines and traces.  At least 500 cases even
   at the default NDSIM_STRESS_ITERS (the acceptance floor). *)
let replay_differential seed =
  let machine, trace = build_case seed in
  let ref_intv = Shard.replay_serial ~machine trace in
  let ref_word = Shard.replay_serial ~impl:Cs.Word ~machine trace in
  if not (Mt.equal ref_intv ref_word) then
    QCheck.Test.fail_reportf "seed %d: serial interval <> word-exact" seed;
  List.iter
    (fun w ->
      List.iter
        (fun impl ->
          let t = Shard.replay ~impl ~workers:w ~machine trace in
          if not (Mt.equal ref_intv t) then
            QCheck.Test.fail_reportf "seed %d: w=%d diverges from serial" seed w)
        [ Cs.Interval; Cs.Word ])
    [ 1; 2; 8 ];
  true

let test_replay_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~count:(max 500 (167 * stress_iters))
       ~name:"sharded = serial = word-exact (random machines)"
       QCheck.(int_bound 0x3FFFFFFF)
       replay_differential)

(* every shipped workload family at its smallest sweep size: leaves in
   program order, routed round-robin across the desktop machine's
   processors — the replayed tables must be bit-identical across worker
   counts and cache-sim implementations *)
let test_replay_workload_families () =
  let machine = Pmh.desktop () in
  let n_procs = Pmh.n_procs machine in
  List.iter
    (fun name ->
      let fam = Nd_experiments.Workloads.find name in
      let n = List.hd fam.Nd_experiments.Workloads.sizes in
      let p = compile (Nd_experiments.Workloads.build ~n fam ~seed:7) in
      let lo, hi = Program.leaf_range p (Program.root p) in
      let trace = Shard.Trace.create () in
      for i = lo to hi - 1 do
        match Program.kind_of p (Program.leaf_node p i) with
        | Program.Leaf s ->
          Shard.Trace.push trace ~proc:(i mod n_procs) (Strand.footprint s)
        | Program.Seq | Program.Par | Program.Fire _ -> ()
      done;
      let reference = Shard.replay_serial ~machine trace in
      List.iter
        (fun w ->
          List.iter
            (fun impl ->
              let t = Shard.replay ~impl ~workers:w ~machine trace in
              if not (Mt.equal reference t) then
                Alcotest.failf "%s (n=%d): w=%d diverges from serial replay"
                  name n w)
            [ Cs.Interval; Cs.Word ])
        [ 1; 2; 8 ])
    (Nd_experiments.Workloads.names ())

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

(* the merge the acceptance criterion hinges on: a dropped or
   double-counted shard must raise, never mis-count *)
let test_merge_partition_checked () =
  let n_caches = [| 2; 1 |] in
  let mk_src cells =
    let s = Mt.create ~n_caches in
    List.iter (fun (l, c, n) -> Mt.add s ~level:l ~cache:c n) cells;
    s
  in
  let into = Mt.create ~n_caches in
  Mt.merge_exclusive ~into ~claims:[| (1, 0) |] (mk_src [ (1, 0, 5) ]);
  Mt.merge_exclusive ~into
    ~claims:[| (1, 1); (2, 0) |]
    (mk_src [ (1, 1, 7); (2, 0, 2) ]);
  Mt.assert_complete into;
  Alcotest.(check int) "cell (1,0)" 5 (Mt.get into ~level:1 ~cache:0);
  Alcotest.(check (array int)) "level totals" [| 12; 2 |] (Mt.level_totals into);
  Alcotest.(check int) "total cost" ((12 * 2) + (2 * 8))
    (Mt.total_cost into ~miss_cost:(fun level -> if level = 1 then 2 else 8));
  expect_invalid "double-counted shard" (fun () ->
      Mt.merge_exclusive ~into ~claims:[| (1, 0) |] (mk_src [ (1, 0, 1) ]));
  let into2 = Mt.create ~n_caches in
  expect_invalid "shard wrote outside its claim" (fun () ->
      Mt.merge_exclusive ~into:into2 ~claims:[| (1, 0) |] (mk_src [ (1, 1, 3) ]));
  let into3 = Mt.create ~n_caches in
  Mt.merge_exclusive ~into:into3 ~claims:[| (1, 0) |] (mk_src [ (1, 0, 1) ]);
  expect_invalid "dropped shard" (fun () -> Mt.assert_complete into3)

(* ------------------------------ ECC -------------------------------- *)

let test_ecc_alpha_zero () =
  (* at alpha zero the ECC collapses to Q-star for our parallel programs *)
  let w = Matmul.workload ~n:16 ~base:2 ~seed:3 () in
  let p = compile w in
  let r = Nd_mem.Ecc.analyze p ~m:64 ~alpha:0. in
  Alcotest.(check bool) "Q_hat close to Q*" true
    (r.Nd_mem.Ecc.q_hat <= 1.01 *. float_of_int r.Nd_mem.Ecc.q_star)

let test_ecc_monotone_alpha () =
  let w = Trs.workload ~n:32 ~base:2 ~seed:3 () in
  let p = compile w in
  let ratio alpha =
    let r = Nd_mem.Ecc.analyze p ~m:64 ~alpha in
    r.Nd_mem.Ecc.q_hat /. float_of_int r.Nd_mem.Ecc.q_star
  in
  (* the ECC/PCC ratio is non-decreasing in alpha *)
  let r1 = ratio 0.2 and r2 = ratio 0.6 and r3 = ratio 1.0 in
  Alcotest.(check bool) "monotone" true (r1 <= r2 +. 1e-9 && r2 <= r3 +. 1e-9)

let test_parallelizability_nd_ge_np () =
  (* the paper's central quantitative claim: alpha_max is larger in the
     ND model for TRS (and friends) *)
  let check name w m =
    let pnd = compile w in
    let pnp = Nd_algos.Workload.compile ~mode:Nd_algos.Workload.NP w in
    let a_nd = Nd_mem.Ecc.parallelizability pnd ~m ~c:2. in
    let a_np = Nd_mem.Ecc.parallelizability pnp ~m ~c:2. in
    if a_nd < a_np -. 1e-6 then
      Alcotest.failf "%s: alpha_nd %.3f < alpha_np %.3f" name a_nd a_np
  in
  check "trs" (Trs.workload ~n:32 ~base:2 ~seed:4 ()) 64;
  check "cholesky" (Cholesky.workload ~n:32 ~base:2 ~seed:4 ()) 64;
  check "lcs" (Lcs.workload ~n:128 ~base:2 ~seed:4 ()) 256

let test_parallelizability_strict_trs () =
  let w = Trs.workload ~n:32 ~base:2 ~seed:4 () in
  let pnd = compile w in
  let pnp = Nd_algos.Workload.compile ~mode:Nd_algos.Workload.NP w in
  let a_nd = Nd_mem.Ecc.parallelizability pnd ~m:64 ~c:2. in
  let a_np = Nd_mem.Ecc.parallelizability pnp ~m:64 ~c:2. in
  Alcotest.(check bool)
    (Printf.sprintf "strict: %.3f > %.3f" a_nd a_np)
    true (a_nd > a_np)

let () =
  Alcotest.run "nd_mem"
    [
      ( "pcc",
        [
          Alcotest.test_case "hand example" `Quick test_qstar_hand;
          Alcotest.test_case "mm shape (Claim 1)" `Quick test_qstar_shape_mm;
          Alcotest.test_case "lcs shape (Claim 1)" `Quick test_qstar_shape_lcs;
          Alcotest.test_case "NP = ND" `Quick test_qstar_np_invariant;
        ] );
      ( "cache_sim",
        [
          Alcotest.test_case "LRU basics" `Quick test_lru_basic;
          Alcotest.test_case "footprint access" `Quick test_lru_set;
          Alcotest.test_case "Q1 bounds" `Quick test_q1_bounds;
        ] );
      ( "cache_sim.interval",
        [
          Alcotest.test_case "split/evict transitions" `Quick
            test_interval_split_evict;
          Alcotest.test_case "randomized equivalence" `Quick
            test_interval_equiv_random;
          Alcotest.test_case "workload q1 equivalence" `Quick
            test_interval_equiv_workloads;
        ] );
      ( "shard_sim",
        [
          test_replay_differential;
          Alcotest.test_case "workload families bit-identical" `Quick
            test_replay_workload_families;
          Alcotest.test_case "merge is partition-checked" `Quick
            test_merge_partition_checked;
        ] );
      ( "ecc",
        [
          Alcotest.test_case "alpha=0 collapses" `Quick test_ecc_alpha_zero;
          Alcotest.test_case "monotone in alpha" `Quick test_ecc_monotone_alpha;
          Alcotest.test_case "alpha ND >= NP" `Quick test_parallelizability_nd_ge_np;
          Alcotest.test_case "alpha ND > NP for TRS" `Quick
            test_parallelizability_strict_trs;
        ] );
    ]
