module Pmh = Nd_pmh.Pmh

let desktop = Pmh.desktop ()

let test_construction () =
  Alcotest.(check int) "levels" 3 (Pmh.n_levels desktop);
  Alcotest.(check int) "procs" 16 (Pmh.n_procs desktop);
  Alcotest.(check int) "L1 count" 16 (Pmh.n_caches desktop ~level:1);
  Alcotest.(check int) "L2 count" 4 (Pmh.n_caches desktop ~level:2);
  Alcotest.(check int) "L3 count" 1 (Pmh.n_caches desktop ~level:3);
  Alcotest.(check int) "L2 size" 8192 (Pmh.size desktop ~level:2);
  Alcotest.(check int) "L3 cost" 32 (Pmh.miss_cost desktop ~level:3)

let test_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Pmh.create: no cache levels")
    (fun () -> ignore (Pmh.create ~root_fanout:1 []));
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Pmh.create: cache sizes must strictly increase")
    (fun () ->
      ignore
        (Pmh.create ~root_fanout:1
           [
             { Pmh.size = 64; fanout = 1; miss_cost = 1 };
             { Pmh.size = 64; fanout = 2; miss_cost = 2 };
           ]))

let test_cache_of_proc () =
  (* proc 5 sits under L1 #5, L2 #1 (4 procs per L2), L3 #0 *)
  Alcotest.(check int) "L1" 5 (Pmh.cache_of_proc desktop ~proc:5 ~level:1);
  Alcotest.(check int) "L2" 1 (Pmh.cache_of_proc desktop ~proc:5 ~level:2);
  Alcotest.(check int) "L3" 0 (Pmh.cache_of_proc desktop ~proc:5 ~level:3);
  Alcotest.(check (pair int int)) "procs under L2 #1" (4, 7)
    (Pmh.procs_under desktop ~level:2 ~cache:1);
  Alcotest.(check (pair int int)) "procs under L3" (0, 15)
    (Pmh.procs_under desktop ~level:3 ~cache:0)

let test_server_and_scaled () =
  let server = Pmh.server () in
  Alcotest.(check int) "server procs" 64 (Pmh.n_procs server);
  Alcotest.(check int) "server L3s" 4 (Pmh.n_caches server ~level:3);
  let s8 = Pmh.scaled ~top_caches:8 () in
  Alcotest.(check int) "scaled procs" 128 (Pmh.n_procs s8);
  let flat = Pmh.flat ~procs:7 ~m:100 ~miss_cost:3 in
  Alcotest.(check int) "flat procs" 7 (Pmh.n_procs flat);
  Alcotest.(check int) "flat levels" 1 (Pmh.n_levels flat)

let test_cum_cost () =
  Alcotest.(check int) "from L1" 0 (Pmh.cum_miss_cost desktop ~level:1);
  Alcotest.(check int) "from L2" 2 (Pmh.cum_miss_cost desktop ~level:2);
  Alcotest.(check int) "from L3" 10 (Pmh.cum_miss_cost desktop ~level:3);
  Alcotest.(check int) "from memory" 42 (Pmh.cum_miss_cost desktop ~level:4)

let test_perfect_time () =
  (* constant Q* makes the bound easy to compute by hand:
     (q*2 + q*8 + q*32) / 16 *)
  let q = 100 in
  let pt = Pmh.perfect_time desktop ~sigma:0.5 ~q_star:(fun _ -> q) in
  Alcotest.(check (float 1e-9)) "arithmetic" (float_of_int (q * 42) /. 16.) pt

let test_overhead_vh () =
  let v = Pmh.overhead_vh desktop ~alpha:1. ~k:0.5 in
  Alcotest.(check bool) "at least 2" true (v >= 2.);
  (* lower alpha (less parallelizable) means more overhead *)
  let v' = Pmh.overhead_vh desktop ~alpha:0.5 ~k:0.5 in
  Alcotest.(check bool) "monotone in alpha" true (v' >= v);
  Alcotest.check_raises "bad k" (Invalid_argument "Pmh.overhead_vh: k not in (0,1)")
    (fun () -> ignore (Pmh.overhead_vh desktop ~alpha:1. ~k:1.))

let test_shard_pairs () =
  (* every (level, cache) pair of the machine appears in exactly one
     group, groups are non-empty and sorted, and the partition is a pure
     function of (machine, shards) *)
  List.iter
    (fun machine ->
      let all = ref [] in
      for level = Pmh.n_levels machine downto 1 do
        for cache = Pmh.n_caches machine ~level - 1 downto 0 do
          all := (level, cache) :: !all
        done
      done;
      let all = List.sort compare !all in
      let n_pairs = List.length all in
      List.iter
        (fun shards ->
          let groups = Pmh.shard_pairs machine ~shards in
          Alcotest.(check int)
            (Printf.sprintf "group count (shards=%d)" shards)
            (min shards n_pairs) (Array.length groups);
          Array.iter
            (fun g ->
              if Array.length g = 0 then Alcotest.fail "empty group";
              let l = Array.to_list g in
              if List.sort compare l <> l then
                Alcotest.fail "group not sorted by (level, cache)")
            groups;
          let flattened =
            List.sort compare
              (List.concat_map Array.to_list (Array.to_list groups))
          in
          if flattened <> all then
            Alcotest.failf "shards=%d: not an exact partition (%d pairs vs %d)"
              shards (List.length flattened) n_pairs;
          if groups <> Pmh.shard_pairs machine ~shards then
            Alcotest.fail "not deterministic")
        [ 1; 2; 3; 8; 32 ];
      Alcotest.check_raises "shards < 1"
        (Invalid_argument "Pmh.shard_pairs: shards < 1") (fun () ->
          ignore (Pmh.shard_pairs machine ~shards:0)))
    [ desktop; Pmh.server (); Pmh.flat ~procs:3 ~m:64 ~miss_cost:2 ]

let () =
  Alcotest.run "nd_pmh"
    [
      ( "pmh",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "cache_of_proc" `Quick test_cache_of_proc;
          Alcotest.test_case "server/scaled/flat" `Quick test_server_and_scaled;
          Alcotest.test_case "cumulative costs" `Quick test_cum_cost;
          Alcotest.test_case "perfect time (Eq. 22)" `Quick test_perfect_time;
          Alcotest.test_case "overhead v_h" `Quick test_overhead_vh;
          Alcotest.test_case "shard_pairs exact partition" `Quick
            test_shard_pairs;
        ] );
    ]
