module Deque = Nd_runtime.Deque
module Executor = Nd_runtime.Executor
open Nd_algos

(* ------------------------------ deque ------------------------------ *)

let test_deque_lifo () =
  let d = Deque.create () in
  for i = 1 to 5 do
    Deque.push d i
  done;
  Alcotest.(check int) "size" 5 (Deque.size d);
  Alcotest.(check (option int)) "pop" (Some 5) (Deque.pop d);
  Alcotest.(check (option int)) "pop" (Some 4) (Deque.pop d);
  Alcotest.(check (option int)) "steal is FIFO" (Some 1) (Deque.steal d);
  Alcotest.(check (option int)) "steal" (Some 2) (Deque.steal d);
  Alcotest.(check (option int)) "pop last" (Some 3) (Deque.pop d);
  Alcotest.(check (option int)) "empty pop" None (Deque.pop d);
  Alcotest.(check (option int)) "empty steal" None (Deque.steal d)

let test_deque_growth () =
  let d = Deque.create () in
  for i = 0 to 999 do
    Deque.push d i
  done;
  for i = 999 downto 0 do
    Alcotest.(check (option int)) "pop order" (Some i) (Deque.pop d)
  done

let test_deque_concurrent () =
  (* 1 owner pushing/popping + 2 thieves: every element is consumed
     exactly once *)
  let d = Deque.create () in
  let n = 20_000 in
  let consumed = Atomic.make 0 in
  let sum = Atomic.make 0 in
  let thief () =
    while Atomic.get consumed < n do
      match Deque.steal d with
      | Some v ->
        Atomic.incr consumed;
        ignore (Atomic.fetch_and_add sum v)
      | None -> Domain.cpu_relax ()
    done
  in
  let thieves = [ Domain.spawn thief; Domain.spawn thief ] in
  for i = 1 to n do
    Deque.push d i;
    if i mod 3 = 0 then
      match Deque.pop d with
      | Some v ->
        Atomic.incr consumed;
        ignore (Atomic.fetch_and_add sum v)
      | None -> ()
  done;
  (* owner drains the rest *)
  let rec drain () =
    match Deque.pop d with
    | Some v ->
      Atomic.incr consumed;
      ignore (Atomic.fetch_and_add sum v);
      drain ()
    | None -> if Atomic.get consumed < n then drain ()
  in
  drain ();
  List.iter Domain.join thieves;
  Alcotest.(check int) "all consumed" n (Atomic.get consumed);
  Alcotest.(check int) "sum preserved" (n * (n + 1) / 2) (Atomic.get sum)

(* ---------------------------- executors ---------------------------- *)

let exec_check name w run tol =
  let p = Workload.compile w in
  w.Workload.reset ();
  run p;
  let err = w.Workload.check () in
  if err > tol then Alcotest.failf "%s: err %g > %g" name err tol

let test_dataflow_correct () =
  List.iter
    (fun workers ->
      exec_check "mm"
        (Matmul.workload ~n:16 ~base:2 ~seed:31 ())
        (Executor.run_dataflow ~workers) 1e-9;
      exec_check "trs"
        (Trs.workload ~n:16 ~base:2 ~seed:32 ())
        (Executor.run_dataflow ~workers) 1e-8;
      exec_check "cholesky"
        (Cholesky.workload ~n:16 ~base:2 ~seed:33 ())
        (Executor.run_dataflow ~workers) 1e-8;
      exec_check "lcs"
        (Lcs.workload ~n:32 ~base:4 ~seed:34 ())
        (Executor.run_dataflow ~workers) 0.;
      exec_check "apsp"
        (Fw2d.workload ~n:16 ~base:2 ~seed:35 ())
        (Executor.run_dataflow ~workers) 1e-12)
    [ 1; 2; 4 ]

let test_fork_join_correct () =
  List.iter
    (fun workers ->
      exec_check "mm"
        (Matmul.workload ~n:16 ~base:2 ~seed:41 ())
        (Executor.run_fork_join ~workers) 1e-9;
      exec_check "lu"
        (Lu.workload ~n:16 ~base:2 ~seed:42 ())
        (Executor.run_fork_join ~workers) 1e-8;
      exec_check "fw1d"
        (Fw1d.workload ~n:32 ~base:4 ~seed:43 ())
        (Executor.run_fork_join ~workers) 0.)
    [ 1; 2; 4 ]

let test_repeated_runs () =
  (* executors are restartable on the same program after reset *)
  let w = Trs.workload ~n:16 ~base:4 ~seed:51 () in
  let p = Workload.compile w in
  for _ = 1 to 3 do
    w.Workload.reset ();
    Executor.run_dataflow ~workers:2 p;
    Alcotest.(check bool) "correct" true (w.Workload.check () < 1e-8)
  done

(* --------------------------- parallel_for -------------------------- *)

exception Boom of int

let test_pfor_exactly_once () =
  List.iter
    (fun workers ->
      let n = 500 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Executor.parallel_for ~workers n (fun _ i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i c ->
          if Atomic.get c <> 1 then
            Alcotest.failf "workers=%d: i=%d ran %d times" workers i
              (Atomic.get c))
        hits)
    [ 1; 2; 8 ]

let test_pfor_exception_propagates () =
  (* an exception in one iteration must surface to the caller — with its
     backtrace carried across the domain join — and must not corrupt the
     other iterations: claimed ones complete exactly once, unclaimed
     ones are abandoned whole (never half-run) *)
  Printexc.record_backtrace true;
  List.iter
    (fun workers ->
      let n = 100 in
      let started = Array.init n (fun _ -> Atomic.make 0) in
      let finished = Array.init n (fun _ -> Atomic.make 0) in
      (match
         Executor.parallel_for ~workers n (fun _ i ->
             Atomic.incr started.(i);
             if i = 37 then raise (Boom i);
             Atomic.incr finished.(i))
       with
      | () -> Alcotest.failf "workers=%d: expected Boom" workers
      | exception Boom 37 ->
        if workers > 1 && Printexc.raw_backtrace_length (Printexc.get_raw_backtrace ()) = 0
        then Alcotest.failf "workers=%d: backtrace lost across join" workers
      | exception e ->
        Alcotest.failf "workers=%d: wrong exception %s" workers
          (Printexc.to_string e));
      Array.iteri
        (fun i c ->
          let s = Atomic.get c and f = Atomic.get finished.(i) in
          if s > 1 then
            Alcotest.failf "workers=%d: i=%d started %d times" workers i s;
          if i = 37 then begin
            if f <> 0 then Alcotest.failf "workers=%d: raiser finished" workers
          end
          else if s <> f then
            Alcotest.failf "workers=%d: i=%d started %d but finished %d"
              workers i s f)
        started)
    [ 1; 2; 8 ]

let test_pfor_nested () =
  (* a parallel_for body may itself call parallel_for: each call spawns
     its own domains, so nesting composes (the sharded cache replay runs
     inside suite experiments that are themselves parallel_for jobs) *)
  let outer = 4 and inner = 8 in
  let hits = Array.init (outer * inner) (fun _ -> Atomic.make 0) in
  Executor.parallel_for ~workers:2 outer (fun _ o ->
      Executor.parallel_for ~workers:2 inner (fun _ i ->
          Atomic.incr hits.((o * inner) + i)));
  Array.iteri
    (fun k c ->
      if Atomic.get c <> 1 then
        Alcotest.failf "nested cell %d ran %d times" k (Atomic.get c))
    hits;
  (* an inner exception unwinds through both levels *)
  match
    Executor.parallel_for ~workers:2 outer (fun _ _ ->
        Executor.parallel_for ~workers:2 inner (fun _ i ->
            if i = 3 then raise (Boom 3)))
  with
  | () -> Alcotest.fail "expected Boom through nesting"
  | exception Boom 3 -> ()

let () =
  Alcotest.run "nd_runtime"
    [
      ( "deque",
        [
          Alcotest.test_case "LIFO/FIFO" `Quick test_deque_lifo;
          Alcotest.test_case "growth" `Quick test_deque_growth;
          Alcotest.test_case "concurrent owner+thieves" `Quick
            test_deque_concurrent;
        ] );
      ( "executors",
        [
          Alcotest.test_case "dataflow correct" `Quick test_dataflow_correct;
          Alcotest.test_case "fork-join correct" `Quick test_fork_join_correct;
          Alcotest.test_case "repeated runs" `Quick test_repeated_runs;
        ] );
      ( "parallel_for",
        [
          Alcotest.test_case "exactly once" `Quick test_pfor_exactly_once;
          Alcotest.test_case "exception propagates with backtrace" `Quick
            test_pfor_exception_propagates;
          Alcotest.test_case "nested calls compose" `Quick test_pfor_nested;
        ] );
    ]
