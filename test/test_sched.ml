module Pmh = Nd_pmh.Pmh
module Sb = Nd_sched.Sb_sched
module Ws = Nd_sched.Work_steal
module Greedy = Nd_sched.Greedy
open Nd_algos

let small_machine ?(top = 1) () =
  Pmh.create ~root_fanout:top
    [
      { Pmh.size = 64; fanout = 1; miss_cost = 2 };
      { Pmh.size = 512; fanout = 2; miss_cost = 8 };
      { Pmh.size = 4096; fanout = 2; miss_cost = 32 };
    ]

let workloads () =
  [
    ("mm", Workload.compile (Matmul.workload ~n:16 ~base:2 ~seed:1 ()));
    ("trs", Workload.compile (Trs.workload ~n:16 ~base:2 ~seed:1 ()));
    ("cholesky", Workload.compile (Cholesky.workload ~n:16 ~base:2 ~seed:1 ()));
    ("lu", Workload.compile (Lu.workload ~n:16 ~base:2 ~seed:1 ()));
    ("lcs", Workload.compile (Lcs.workload ~n:64 ~base:2 ~seed:1 ()));
    ("fw1d", Workload.compile (Fw1d.workload ~n:64 ~base:2 ~seed:1 ()));
    ("apsp", Workload.compile (Fw2d.workload ~n:16 ~base:2 ~seed:1 ()));
  ]

(* ----------------------------- greedy ------------------------------ *)

let test_greedy_brent () =
  List.iter
    (fun (name, p) ->
      List.iter
        (fun procs ->
          let s = Greedy.run ~procs p in
          if s.Greedy.time > Greedy.brent_bound s then
            Alcotest.failf "%s p=%d: %d > Brent %d" name procs s.Greedy.time
              (Greedy.brent_bound s);
          if s.Greedy.time < s.Greedy.span then
            Alcotest.failf "%s: time below span" name;
          if s.Greedy.time < (s.Greedy.work + procs - 1) / procs then
            Alcotest.failf "%s: time below work/p" name)
        [ 1; 2; 4; 16 ])
    (workloads ())

let test_greedy_serial_is_work () =
  let _, p = List.hd (workloads ()) in
  let s = Greedy.run ~procs:1 p in
  Alcotest.(check int) "T_1 = work" s.Greedy.work s.Greedy.time

(* ------------------------------- SB -------------------------------- *)

let test_sb_completes_all () =
  let machine = small_machine () in
  List.iter
    (fun (name, p) ->
      let s = Sb.run p machine in
      if s.Sb.time <= 0 then Alcotest.failf "%s: no time" name;
      if s.Sb.busy < s.Sb.work then Alcotest.failf "%s: lost work" name)
    (workloads ())

let test_sb_theorem1 () =
  (* misses at level j <= Q*(t; sigma * M_j) for every level, both modes *)
  let machine = small_machine ~top:2 () in
  let sigma = 1. /. 3. in
  List.iter
    (fun (name, p) ->
      List.iter
        (fun mode ->
          let s = Sb.run ~sigma ~mode p machine in
          for level = 1 to Pmh.n_levels machine do
            let m =
              max 1
                (int_of_float (sigma *. float_of_int (Pmh.size machine ~level)))
            in
            let bound = Nd_mem.Pcc.q_star p ~m in
            if s.Sb.misses.(level - 1) > bound then
              Alcotest.failf "%s level %d: misses %d > Q* %d" name level
                s.Sb.misses.(level - 1) bound
          done)
        [ Sb.Coarse; Sb.Fine ])
    (workloads ())

let test_sb_deterministic () =
  let machine = small_machine () in
  let _, p = List.nth (workloads ()) 1 in
  let a = Sb.run p machine and b = Sb.run p machine in
  Alcotest.(check int) "time" a.Sb.time b.Sb.time;
  Alcotest.(check int) "anchors" a.Sb.n_anchors b.Sb.n_anchors

let test_sb_serial_machine () =
  (* a 1-processor flat machine runs serially: time = work + miss cost *)
  let machine = Pmh.flat ~procs:1 ~m:64 ~miss_cost:3 in
  let _, p = List.hd (workloads ()) in
  let s = Sb.run p machine in
  Alcotest.(check int) "serial time" (s.Sb.work + s.Sb.miss_cost) s.Sb.time

let test_sb_misses_mode_invariant () =
  (* the rho-model miss counts depend only on the decomposition, not on
     readiness mode or the NP/ND distinction *)
  let machine = small_machine () in
  let w = Trs.workload ~n:16 ~base:2 ~seed:1 () in
  let pnd = Workload.compile w in
  let pnp = Workload.compile ~mode:Workload.NP w in
  let a = Sb.run pnd machine and b = Sb.run pnp machine in
  Alcotest.(check (array int)) "ND vs NP misses" a.Sb.misses b.Sb.misses

let test_sb_nd_not_slower () =
  (* the paper's claim at its crispest: with enough processors the ND
     program schedules at least as fast as its NP projection *)
  let machine = small_machine ~top:2 () in
  List.iter
    (fun (name, w) ->
      let pnd = Workload.compile w in
      let pnp = Workload.compile ~mode:Workload.NP w in
      let tnd = (Sb.run pnd machine).Sb.time in
      let tnp = (Sb.run pnp machine).Sb.time in
      if tnd > tnp then Alcotest.failf "%s: ND %d slower than NP %d" name tnd tnp)
    [
      ("trs", Trs.workload ~n:32 ~base:2 ~seed:1 ());
      ("lcs", Lcs.workload ~n:128 ~base:2 ~seed:1 ());
      ("cholesky", Cholesky.workload ~n:32 ~base:2 ~seed:1 ());
    ]

let test_sb_fine_not_slower () =
  (* fine-grained readiness only adds schedulable work *)
  let machine = small_machine ~top:2 () in
  List.iter
    (fun (name, p) ->
      let c = (Sb.run ~mode:Sb.Coarse p machine).Sb.time in
      let f = (Sb.run ~mode:Sb.Fine p machine).Sb.time in
      if f > c then Alcotest.failf "%s: fine %d > coarse %d" name f c)
    (workloads ())

let test_sb_lru_accounting () =
  (* LRU accounting captures cross-task reuse the rho model gives up, so
     its miss counts never exceed rho's at any level *)
  let machine = small_machine () in
  List.iter
    (fun (name, p) ->
      let rho = Sb.run p machine in
      let lru = Sb.run ~accounting:Sb.Lru p machine in
      for j = 0 to Pmh.n_levels machine - 1 do
        if lru.Sb.misses.(j) > rho.Sb.misses.(j) then
          Alcotest.failf "%s level %d: LRU %d > rho %d" name (j + 1)
            lru.Sb.misses.(j) rho.Sb.misses.(j)
      done)
    (workloads ())

(* --------------------- sharded replay measurement ------------------ *)

let miss_table_of name s =
  match s.Sb.miss_table with
  | Some t -> t
  | None -> Alcotest.failf "%s: expected a miss table" name

let test_sb_replay_workers_identical () =
  (* decoupled measurement mode: the replayed per-cache tables (and
     their level totals and cost) are bit-identical at every sim-worker
     count, while the schedule itself is unchanged *)
  let machine = small_machine ~top:2 () in
  List.iter
    (fun (name, p) ->
      let base = Sb.run ~sim_workers:1 p machine in
      let bt = miss_table_of name base in
      List.iter
        (fun w ->
          let s = Sb.run ~sim_workers:w p machine in
          Alcotest.(check int) (Printf.sprintf "%s w=%d: time" name w)
            base.Sb.time s.Sb.time;
          Alcotest.(check (array int))
            (Printf.sprintf "%s w=%d: level misses" name w)
            base.Sb.misses s.Sb.misses;
          Alcotest.(check int)
            (Printf.sprintf "%s w=%d: miss cost" name w)
            base.Sb.miss_cost s.Sb.miss_cost;
          if not (Nd_mem.Miss_table.equal bt (miss_table_of name s)) then
            Alcotest.failf "%s w=%d: miss table differs from serial replay"
              name w)
        [ 2; 8 ])
    (workloads ())

let test_sb_replay_schedule_is_rho () =
  (* sim_workers changes only the measurement: the drive loop charges
     rho costs, so time/busy/anchors equal a plain Rho run *)
  let machine = small_machine () in
  List.iter
    (fun (name, p) ->
      let rho = Sb.run p machine in
      let rep = Sb.run ~sim_workers:2 p machine in
      Alcotest.(check int) (name ^ ": time") rho.Sb.time rep.Sb.time;
      Alcotest.(check int) (name ^ ": busy") rho.Sb.busy rep.Sb.busy;
      Alcotest.(check int) (name ^ ": anchors") rho.Sb.n_anchors
        rep.Sb.n_anchors)
    (workloads ())

let test_sb_replay_single_proc_matches_inline () =
  (* with one processor the atom order is duration-independent, so the
     recorded trace equals the inline execution order and the replayed
     tables must coincide with inline Lru accounting exactly *)
  let machine =
    Pmh.create ~root_fanout:1
      [
        { Pmh.size = 64; fanout = 1; miss_cost = 2 };
        { Pmh.size = 512; fanout = 1; miss_cost = 8 };
      ]
  in
  List.iter
    (fun (name, p) ->
      let inl = Sb.run ~accounting:Sb.Lru p machine in
      let rep = Sb.run ~sim_workers:4 p machine in
      Alcotest.(check (array int)) (name ^ ": misses") inl.Sb.misses
        rep.Sb.misses;
      Alcotest.(check int) (name ^ ": miss cost") inl.Sb.miss_cost
        rep.Sb.miss_cost;
      if
        not
          (Nd_mem.Miss_table.equal (miss_table_of name inl)
             (miss_table_of name rep))
      then Alcotest.failf "%s: replay table differs from inline LRU" name)
    (workloads ())

(* --------------------------- work stealing ------------------------- *)

let test_ws_completes () =
  let machine = small_machine () in
  List.iter
    (fun (name, p) ->
      let s = Ws.run p machine in
      if s.Ws.time <= 0 then Alcotest.failf "%s: no time" name;
      if s.Ws.busy < s.Ws.work then Alcotest.failf "%s: lost work" name)
    (workloads ())

let test_ws_deterministic_per_seed () =
  let machine = small_machine () in
  let _, p = List.nth (workloads ()) 4 in
  let a = Ws.run ~seed:7 p machine and b = Ws.run ~seed:7 p machine in
  Alcotest.(check int) "same seed, same time" a.Ws.time b.Ws.time

let test_ws_single_proc_no_steals () =
  let machine = Pmh.flat ~procs:1 ~m:64 ~miss_cost:3 in
  let _, p = List.hd (workloads ()) in
  let s = Ws.run p machine in
  Alcotest.(check int) "no steals" 0 s.Ws.steals

(* regression: a zero-time (or zero-processor) run used to report a
   utilization of 1.0 (0/0 short-circuited to "perfect"); it must be 0. *)
let test_utilization_degenerate () =
  let sb_zero =
    {
      Sb.time = 0;
      work = 0;
      misses = [||];
      miss_cost = 0;
      space_hwm = 0;
      busy = 0;
      n_anchors = 0;
      n_procs = 4;
      miss_table = None;
    }
  in
  Alcotest.(check (float 0.)) "sb zero time" 0. (Sb.utilization sb_zero);
  Alcotest.(check (float 0.)) "sb zero procs" 0.
    (Sb.utilization { sb_zero with Sb.time = 10; n_procs = 0 });
  let ws_zero =
    {
      Ws.time = 0;
      work = 0;
      misses = [||];
      miss_cost = 0;
      space_hwm = 0;
      steals = 0;
      busy = 0;
      n_procs = 4;
      miss_table = Nd_mem.Miss_table.create ~n_caches:[| 1 |];
    }
  in
  Alcotest.(check (float 0.)) "ws zero time" 0. (Ws.utilization ws_zero);
  Alcotest.(check (float 0.)) "ws zero procs" 0.
    (Ws.utilization { ws_zero with Ws.time = 10; n_procs = 0 });
  (* a real run still reports a meaningful positive utilization *)
  let machine = small_machine () in
  let _, p = List.hd (workloads ()) in
  let s = Sb.run p machine in
  let u = Sb.utilization s in
  Alcotest.(check bool) "real run in (0,1]" true (u > 0. && u <= 1.)

(* ------------------------------- zoo -------------------------------- *)

module Scheduler = Nd_sched.Scheduler
module Zoo = Nd_sched.Zoo

let test_zoo_registry () =
  Alcotest.(check (list string))
    "names" [ "greedy"; "sb"; "ws"; "pdf"; "tree" ] Zoo.names;
  List.iter
    (fun name ->
      match Zoo.find name with
      | Some (module S : Scheduler.S) ->
        Alcotest.(check string) "find returns the named member" name S.name
      | None -> Alcotest.failf "zoo member %s not found" name)
    Zoo.names;
  Alcotest.(check bool) "unknown name" true (Zoo.find "bogus" = None)

let test_zoo_invariants () =
  let machine = small_machine ~top:2 () in
  let nproc = Pmh.n_procs machine in
  List.iter
    (fun (wname, p) ->
      let g = Greedy.run ~procs:1 p in
      let work = g.Greedy.work and span = g.Greedy.span in
      List.iter
        (fun (sname, (module S : Scheduler.S)) ->
          let s = S.run ~seed:1 p machine in
          let ctx = Printf.sprintf "%s/%s" wname sname in
          if s.Scheduler.work <> work then
            Alcotest.failf "%s: work %d <> %d" ctx s.Scheduler.work work;
          if s.Scheduler.span <> span then
            Alcotest.failf "%s: span %d <> %d" ctx s.Scheduler.span span;
          if s.Scheduler.busy < work then
            Alcotest.failf "%s: busy %d < work %d" ctx s.Scheduler.busy work;
          let lower = max span ((work + nproc - 1) / nproc) in
          if s.Scheduler.time < lower then
            Alcotest.failf "%s: time %d below lower bound %d" ctx
              s.Scheduler.time lower;
          if s.Scheduler.space_hwm <= 0 then
            Alcotest.failf "%s: space hwm %d not positive" ctx
              s.Scheduler.space_hwm;
          let u = Scheduler.utilization s in
          if not (u > 0. && u <= 1.) then
            Alcotest.failf "%s: utilization %g outside (0,1]" ctx u;
          Array.iter
            (fun m ->
              if m < 0 then Alcotest.failf "%s: negative miss count" ctx)
            s.Scheduler.misses)
        Zoo.all)
    (workloads ())

let test_zoo_deterministic () =
  let machine = small_machine ~top:2 () in
  let _, p = List.hd (workloads ()) in
  List.iter
    (fun (sname, (module S : Scheduler.S)) ->
      let a = S.run ~seed:7 p machine and b = S.run ~seed:7 p machine in
      if a <> b then Alcotest.failf "%s: same seed, different stats" sname)
    Zoo.all

(* PDF's premium is the shared cache (Blelloch–Gibbons): its ready-vertex
   priorities follow the serial depth-first order, so one shared cache
   sees near-serial locality, while p work-stealing streams each chase
   their own depth-first suffix and thrash it.  The effect needs the
   working set to dwarf the cache and enough processors to make the
   stealing streams collide — mm at n in {32, 64} with an 8- or 16-way
   shared cache of 256..1024 words; at p = 4 or near-fitting sizes the
   orders converge and WS can edge ahead, so those configs are out. *)
let test_pdf_not_worse_than_ws_shared_cache () =
  let shared p size =
    Pmh.create ~root_fanout:1 [ { Pmh.size; fanout = p; miss_cost = 8 } ]
  in
  List.iter
    (fun (name, w) ->
      let prog = Workload.compile w in
      List.iter
        (fun (procs, size) ->
          let machine = shared procs size in
          let pdf =
            (Nd_sched.Pdf_sched.run ~seed:1 prog machine).Scheduler.misses.(0)
          in
          List.iter
            (fun seed ->
              let ws =
                (Ws.Shared.run ~seed prog machine).Scheduler.misses.(0)
              in
              if pdf > ws then
                Alcotest.failf
                  "%s p=%d M=%d seed=%d: pdf misses %d > ws misses %d" name
                  procs size seed pdf ws)
            [ 1; 2; 3; 4; 5 ])
        [ (8, 256); (8, 512); (8, 1024); (16, 256); (16, 512); (16, 1024) ])
    [
      ("mm32", Matmul.workload ~n:32 ~base:4 ~seed:1 ());
      ("mm64", Matmul.workload ~n:64 ~base:8 ~seed:1 ());
    ]

(* the tree scheduler's whole point: admitted-task residency never
   exceeds the budget when the largest task fits (forced admission can
   only overrun with tasks bigger than the budget themselves) *)
let test_tree_space_within_budget () =
  let machine = small_machine ~top:2 () in
  let _, p = List.hd (workloads ()) in
  let budget = 4096 in
  let s = Nd_sched.Tree_sched.run ~budget p machine in
  if s.Scheduler.space_hwm > budget then
    Alcotest.failf "space hwm %d exceeds budget %d" s.Scheduler.space_hwm
      budget

let () =
  Alcotest.run "nd_sched"
    [
      ( "greedy",
        [
          Alcotest.test_case "Brent bound" `Quick test_greedy_brent;
          Alcotest.test_case "T_1 = work" `Quick test_greedy_serial_is_work;
        ] );
      ( "space_bounded",
        [
          Alcotest.test_case "completes all workloads" `Quick test_sb_completes_all;
          Alcotest.test_case "Theorem 1 miss bound" `Quick test_sb_theorem1;
          Alcotest.test_case "deterministic" `Quick test_sb_deterministic;
          Alcotest.test_case "serial machine" `Quick test_sb_serial_machine;
          Alcotest.test_case "misses model-invariant" `Quick
            test_sb_misses_mode_invariant;
          Alcotest.test_case "ND not slower than NP" `Quick test_sb_nd_not_slower;
          Alcotest.test_case "fine not slower than coarse" `Quick
            test_sb_fine_not_slower;
          Alcotest.test_case "replay workers bit-identical" `Quick
            test_sb_replay_workers_identical;
          Alcotest.test_case "replay schedule is rho" `Quick
            test_sb_replay_schedule_is_rho;
          Alcotest.test_case "1-proc replay = inline LRU" `Quick
            test_sb_replay_single_proc_matches_inline;
          Alcotest.test_case "LRU accounting <= rho" `Quick
            test_sb_lru_accounting;
        ] );
      ( "work_stealing",
        [
          Alcotest.test_case "completes" `Quick test_ws_completes;
          Alcotest.test_case "seed-deterministic" `Quick
            test_ws_deterministic_per_seed;
          Alcotest.test_case "1 proc, 0 steals" `Quick test_ws_single_proc_no_steals;
        ] );
      ( "stats",
        [
          Alcotest.test_case "degenerate utilization" `Quick
            test_utilization_degenerate;
        ] );
      ( "zoo",
        [
          Alcotest.test_case "registry" `Quick test_zoo_registry;
          Alcotest.test_case "shared-interface invariants" `Quick
            test_zoo_invariants;
          Alcotest.test_case "seed-deterministic" `Quick
            test_zoo_deterministic;
          Alcotest.test_case "pdf <= ws misses on shared cache" `Quick
            test_pdf_not_worse_than_ws_shared_cache;
          Alcotest.test_case "tree respects space budget" `Quick
            test_tree_space_within_budget;
        ] );
    ]
