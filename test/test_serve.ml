(* Nd_serve: framing, protocol codec, sharded queue, micropools, keyed
   LRU caches, the latency histogram, the thread-safety of the shared
   decompose memo, and an end-to-end daemon round-trip over a unix
   socket. *)

module Json = Nd_util.Json
module Histogram = Nd_util.Histogram
module P = Nd_serve.Protocol
module Mpmc = Nd_serve.Mpmc
module Micropool = Nd_serve.Micropool
module Cache = Nd_serve.Cache
module Server = Nd_serve.Server
module Client = Nd_serve.Client

(* --------------------------- histogram ----------------------------- *)

let test_hist_exact_small () =
  let h = Histogram.create () in
  for v = 0 to 15 do
    Histogram.record h v
  done;
  Alcotest.(check int) "count" 16 (Histogram.count h);
  Alcotest.(check int) "sum" 120 (Histogram.sum h);
  Alcotest.(check int) "min" 0 (Histogram.min_value h);
  Alcotest.(check int) "max" 15 (Histogram.max_value h);
  (* small values are bucketed exactly *)
  Alcotest.(check int) "p100 exact" 15 (Histogram.percentile h 1.0);
  Alcotest.(check int) "p50 exact" 7 (Histogram.percentile h 0.5)

let test_hist_log_bucket_bound () =
  (* a percentile never under-reports and over-reports by < 1/16
     relative (one sub-bucket), clamped by the exact max *)
  let prng = Nd_util.Prng.create 7 in
  for _ = 1 to 200 do
    let v = 1 + Nd_util.Prng.int prng 1_000_000_000 in
    let h = Histogram.create () in
    Histogram.record h v;
    let p = Histogram.percentile h 0.5 in
    Alcotest.(check bool) "upper bound and clamped" true (p = v)
  done

let test_hist_merge () =
  let h1 = Histogram.create () and h2 = Histogram.create () in
  let all = Histogram.create () in
  let prng = Nd_util.Prng.create 11 in
  for i = 1 to 500 do
    let v = Nd_util.Prng.int prng 100_000 in
    Histogram.record (if i mod 2 = 0 then h1 else h2) v;
    Histogram.record all v
  done;
  let m = Histogram.create () in
  Histogram.merge ~into:m h1;
  Histogram.merge ~into:m h2;
  Alcotest.(check int) "count" (Histogram.count all) (Histogram.count m);
  Alcotest.(check int) "sum" (Histogram.sum all) (Histogram.sum m);
  Alcotest.(check int) "max" (Histogram.max_value all) (Histogram.max_value m);
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "p%g" (q *. 100.))
        (Histogram.percentile all q) (Histogram.percentile m q))
    [ 0.5; 0.9; 0.95; 0.99; 1.0 ]

(* regression for the stats_json race: worker domains used to record
   into bare histograms while the stats reader merged them unlocked, so
   a snapshot could catch a bucket increment before the count increment
   and report count <> sum of buckets.  With Histogram.Sync every
   snapshot must be internally consistent, and the final tally exact. *)
let test_hist_sync_hammer () =
  let n_writers = 4 and per = 20_000 in
  let h = Histogram.Sync.create () in
  let stop = Atomic.make false in
  let writers =
    List.init n_writers (fun w ->
        Domain.spawn (fun ()  ->
            let prng = Nd_util.Prng.create (0xbeef + w) in
            for _ = 1 to per do
              Histogram.Sync.record h (Nd_util.Prng.int prng 1_000_000)
            done))
  in
  let reader =
    Domain.spawn (fun () ->
        let checked = ref 0 in
        let check_once () =
          let s = Histogram.Sync.snapshot h in
          if Histogram.count s <> Histogram.bucket_total s then
            Alcotest.failf "torn snapshot: count %d <> bucket total %d"
              (Histogram.count s) (Histogram.bucket_total s);
          incr checked
        in
        (* at least one snapshot unconditionally: on a single-core host
           the writers can finish (and [stop] be set) before this domain
           is first scheduled, which used to fail the progress check *)
        check_once ();
        while not (Atomic.get stop) do
          check_once ()
        done;
        !checked)
  in
  List.iter Domain.join writers;
  Atomic.set stop true;
  let checked = Domain.join reader in
  Alcotest.(check bool) "reader made progress" true (checked > 0);
  let final = Histogram.Sync.snapshot h in
  Alcotest.(check int) "exact count" (n_writers * per) (Histogram.count final);
  Alcotest.(check int) "count = bucket total" (Histogram.count final)
    (Histogram.bucket_total final);
  (* merge_into sees the same totals *)
  let m = Histogram.create () in
  Histogram.Sync.merge_into ~into:m h;
  Alcotest.(check int) "merge count" (n_writers * per) (Histogram.count m)

(* -------------------------- protocol codec -------------------------- *)

let wk : P.workload_key =
  { algo = "mm"; n = Some 16; base = Some 4; seed = 42; np = false }

let wk_min : P.workload_key =
  { algo = "fw1d"; n = None; base = None; seed = 7; np = true }

let all_requests : P.envelope list =
  [
    { id = 1; req = P.Ping };
    { id = 2; req = P.Lint wk };
    { id = 3; req = P.Lint wk_min };
    { id = 4; req = P.Race wk };
    { id = 5; req = P.Simulate { wk; top = 2; fine = true } };
    { id = 10; req = P.Analyze { wk; top = 2 } };
    { id = 11; req = P.Analyze { wk = wk_min; top = 1 } };
    { id = 6; req = P.Fuzz { count = 5; seed = 99; max_depth = 4 } };
    { id = 7; req = P.Suite { exp = "overview" } };
    { id = 8; req = P.Stats };
    { id = 9; req = P.Shutdown };
  ]

let all_responses : P.response list =
  [
    { id = 1; result = Ok (Json.Obj [ ("pong", Json.Bool true) ]) };
    { id = 2; result = Ok (Json.List [ Json.Int 1; Json.String "x" ]) };
    { id = 3; result = Error "unknown algorithm zz" };
  ]

let test_protocol_roundtrip () =
  List.iter
    (fun env ->
      let env' = P.request_of_json (P.request_to_json env) in
      Alcotest.(check bool)
        (Printf.sprintf "request %d round-trips" env.P.id)
        true (env = env'))
    all_requests;
  List.iter
    (fun r ->
      let r' = P.response_of_json (P.response_to_json r) in
      Alcotest.(check bool)
        (Printf.sprintf "response %d round-trips" r.P.id)
        true (r = r'))
    all_responses

let test_protocol_rejects () =
  let bad j =
    match P.request_of_json j with
    | exception P.Protocol_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing id" true
    (bad (Json.Obj [ ("kind", Json.String "ping") ]));
  Alcotest.(check bool) "unknown kind" true
    (bad (Json.Obj [ ("id", Json.Int 1); ("kind", Json.String "frobnicate") ]));
  Alcotest.(check bool) "non-object" true (bad (Json.List []));
  Alcotest.(check bool) "ill-typed field" true
    (bad
       (Json.Obj
          [
            ("id", Json.Int 1);
            ("kind", Json.String "lint");
            ("algo", Json.Int 3);
          ]))

(* ----------------------------- framing ------------------------------ *)

(* feed a byte string to a fresh decoder in chunks of [chunk] bytes and
   collect every decoded frame *)
let decode_chunked ?max_frame ~chunk s =
  let dec = Json.Frame.decoder ?max_frame () in
  let out = ref [] in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let k = min chunk (n - !i) in
    Json.Frame.feed dec (Bytes.of_string s) !i k;
    (* feed takes (bytes, off, len) against the full buffer *)
    i := !i + k;
    let rec drain () =
      match Json.Frame.next dec with
      | Some v ->
        out := v :: !out;
        drain ()
      | None -> ()
    in
    drain ()
  done;
  (List.rev !out, dec)

let test_frame_roundtrip_all_kinds () =
  let msgs =
    List.map P.request_to_json all_requests
    @ List.map P.response_to_json all_responses
  in
  let wire = String.concat "" (List.map Json.Frame.encode msgs) in
  List.iter
    (fun chunk ->
      let decoded, dec = decode_chunked ~chunk wire in
      Alcotest.(check int)
        (Printf.sprintf "all frames decode (chunk=%d)" chunk)
        (List.length msgs) (List.length decoded);
      Alcotest.(check int) "no leftover bytes" 0 (Json.Frame.pending dec);
      List.iter2
        (fun a b ->
          Alcotest.(check string) "frame payload" (Json.to_string a)
            (Json.to_string b))
        msgs decoded)
    [ 1; 3; 4096 ]

let test_frame_truncated () =
  let s = Json.Frame.encode (Json.Obj [ ("x", Json.Int 1) ]) in
  for cut = 0 to String.length s - 1 do
    let dec = Json.Frame.decoder () in
    Json.Frame.feed_string dec (String.sub s 0 cut);
    Alcotest.(check bool)
      (Printf.sprintf "truncated at %d yields no frame" cut)
      true
      (Json.Frame.next dec = None)
  done

let test_frame_oversized () =
  (* the header alone must trigger the limit, before any payload *)
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 1024l;
  let dec = Json.Frame.decoder ~max_frame:512 () in
  Json.Frame.feed dec hdr 0 4;
  Alcotest.check_raises "oversized header rejected"
    (Json.Frame.Error "frame length 1024 exceeds limit 512") (fun () ->
      ignore (Json.Frame.next dec))

let test_frame_malformed_payload () =
  let payload = "this is not json" in
  let b = Bytes.create (4 + String.length payload) in
  Bytes.set_int32_be b 0 (Int32.of_int (String.length payload));
  Bytes.blit_string payload 0 b 4 (String.length payload);
  let dec = Json.Frame.decoder () in
  Json.Frame.feed dec b 0 (Bytes.length b);
  Alcotest.(check bool) "malformed payload raises" true
    (match Json.Frame.next dec with
    | exception Json.Frame.Error _ -> true
    | _ -> false)

let test_frame_random_bytes_no_crash =
  QCheck.Test.make ~count:500 ~name:"frame decoder total on random bytes"
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun s ->
      let dec = Json.Frame.decoder ~max_frame:64 () in
      Json.Frame.feed_string dec s;
      (* the decoder must either produce frames, want more bytes, or
         raise Frame.Error — nothing else, and it must terminate *)
      let rec drain n =
        if n > String.length s + 1 then false
        else
          match Json.Frame.next dec with
          | Some _ -> drain (n + 1)
          | None -> true
          | exception Json.Frame.Error _ -> true
      in
      drain 0)

(* ------------------------------ mpmc -------------------------------- *)

let test_mpmc_exactly_once () =
  let q = Mpmc.create ~shards:4 () in
  let n_producers = 4 and per = 500 in
  let popped = Array.make (n_producers * per) 0 in
  let producers =
    List.init n_producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Mpmc.push q ((p * per) + i)
            done))
  in
  let consumers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let rec go acc =
              match Mpmc.pop q with
              | Some v -> go (v :: acc)
              | None -> acc
            in
            go []))
  in
  List.iter Domain.join producers;
  Mpmc.close q;
  let taken = List.concat_map Domain.join consumers in
  List.iter (fun v -> popped.(v) <- popped.(v) + 1) taken;
  Alcotest.(check int) "all items popped" (n_producers * per)
    (List.length taken);
  Array.iteri
    (fun v c ->
      if c <> 1 then
        Alcotest.failf "item %d delivered %d times (want exactly once)" v c)
    popped

let test_mpmc_close_semantics () =
  let q = Mpmc.create ~shards:2 () in
  Mpmc.push q 1;
  Mpmc.push q 2;
  Mpmc.close q;
  Alcotest.(check bool) "push after close raises" true
    (match Mpmc.push q 3 with exception Mpmc.Closed -> true | _ -> false);
  (* closed queues drain before returning None *)
  let a = Mpmc.pop q and b = Mpmc.pop q in
  Alcotest.(check bool) "drained both" true
    (List.sort compare [ a; b ] = [ Some 1; Some 2 ]);
  Alcotest.(check bool) "then None" true (Mpmc.pop q = None);
  Alcotest.(check bool) "try_pop None" true (Mpmc.try_pop q = None)

(* regression for the cursor overflow: fetch_and_add wraps past max_int
   to min_int, and a negative counter mod n_shards is negative, so the
   shard lookup raised Invalid_argument.  The cursors are now masked
   with [land max_int]; pre-seed them at the brink and run enough
   traffic to cross the wrap on every shard. *)
let test_mpmc_cursor_wrap () =
  let q = Mpmc.create ~shards:4 () in
  Mpmc.unsafe_set_cursors q (max_int - 2);
  let n = 64 in
  let seen = Array.make n 0 in
  for i = 0 to n - 1 do
    Mpmc.push q i
  done;
  let rec drain () =
    match Mpmc.try_pop q with
    | Some v ->
      seen.(v) <- seen.(v) + 1;
      drain ()
    | None -> ()
  in
  drain ();
  Array.iteri
    (fun v c ->
      if c <> 1 then
        Alcotest.failf "item %d delivered %d times across the wrap" v c)
    seen;
  (* and under contention: two producers and a consumer racing over the
     wrap point must still deliver exactly once *)
  let q = Mpmc.create ~shards:2 () in
  Mpmc.unsafe_set_cursors q (max_int - 1);
  let per = 1_000 in
  let producers =
    List.init 2 (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Mpmc.push q ((p * per) + i)
            done))
  in
  let consumer =
    Domain.spawn (fun () ->
        let rec go acc =
          match Mpmc.pop q with Some v -> go (v :: acc) | None -> acc
        in
        go [])
  in
  List.iter Domain.join producers;
  Mpmc.close q;
  let taken = Domain.join consumer in
  Alcotest.(check int) "all delivered across wrap" (2 * per)
    (List.length taken);
  Alcotest.(check int) "no duplicates" (2 * per)
    (List.length (List.sort_uniq compare taken))

(* Regression for the lost-job race: [push] used to check [closed]
   without the lock, enqueue into its shard, and only then take [glock]
   to publish [avail].  A [close] landing in that window let consumers
   observe [avail = 0 && closed], drain out and get joined — stranding
   the already-enqueued job forever.  The fix makes closed-check +
   enqueue + publish one atomic step under [glock], so every push
   either raises [Closed] or is eventually consumed: accepted pushes
   and consumed items must balance exactly on every round. *)
let test_mpmc_push_vs_close_race () =
  let rounds = 60 in
  for round = 1 to rounds do
    let q = Mpmc.create ~shards:2 () in
    let accepted = Atomic.make 0 in
    let producers =
      List.init 2 (fun _ ->
          Domain.spawn (fun () ->
              try
                while true do
                  Mpmc.push q ();
                  Atomic.incr accepted
                done
              with Mpmc.Closed -> ()))
    in
    let consumers =
      List.init 2 (fun _ ->
          Domain.spawn (fun () ->
              let rec go n =
                match Mpmc.pop q with Some () -> go (n + 1) | None -> n
              in
              go 0))
    in
    (* let the producers get going, then slam the door mid-stream *)
    for _ = 1 to 100 * round do
      Domain.cpu_relax ()
    done;
    Mpmc.close q;
    List.iter Domain.join producers;
    let consumed = List.fold_left (fun a d -> a + Domain.join d) 0 consumers in
    let accepted = Atomic.get accepted in
    if accepted <> consumed then
      Alcotest.failf "round %d lost %d job(s): %d accepted, %d consumed" round
        (accepted - consumed) accepted consumed
  done

(* ---------------------------- micropool ----------------------------- *)

let test_micropool_lazy_and_exact () =
  let pool = Micropool.create ~name:"t" ~size:2 () in
  Alcotest.(check bool) "not started before submit" false
    (Micropool.started pool);
  let hits = Atomic.make 0 in
  for _ = 1 to 200 do
    Micropool.submit pool (fun ~wid ->
        assert (wid >= 0 && wid < 2);
        Atomic.incr hits)
  done;
  Alcotest.(check bool) "started after submit" true (Micropool.started pool);
  Micropool.shutdown pool;
  Alcotest.(check int) "all jobs ran" 200 (Atomic.get hits);
  Alcotest.(check int) "executed counter" 200 (Micropool.executed pool);
  Alcotest.(check int) "no errors" 0 (Micropool.errors pool)

let test_micropool_survives_errors () =
  let pool = Micropool.create ~name:"t" ~size:1 () in
  let ok = Atomic.make 0 in
  Micropool.submit pool (fun ~wid:_ -> failwith "boom");
  Micropool.submit pool (fun ~wid:_ -> Atomic.incr ok);
  Micropool.shutdown pool;
  Alcotest.(check int) "job after error still ran" 1 (Atomic.get ok);
  Alcotest.(check int) "error counted" 1 (Micropool.errors pool)

let test_micropool_error_accounting () =
  let pool = Micropool.create ~name:"t" ~size:1 () in
  Alcotest.(check (option string)) "no error yet" None
    (Micropool.last_error pool);
  Micropool.submit pool (fun ~wid:_ -> failwith "boom-kaboom");
  Micropool.submit pool (fun ~wid:_ -> ());
  Micropool.submit pool (fun ~wid:_ -> failwith "boom-kaboom");
  Micropool.submit pool (fun ~wid:_ -> ());
  Micropool.shutdown pool;
  Alcotest.(check int) "executed counts successes only" 2
    (Micropool.executed pool);
  Alcotest.(check int) "errors counted" 2 (Micropool.errors pool);
  match Micropool.last_error pool with
  | Some msg ->
    let contains ~sub s =
      let ls = String.length sub and lm = String.length s in
      let rec scan i =
        i + ls <= lm && (String.sub s i ls = sub || scan (i + 1))
      in
      scan 0
    in
    if not (contains ~sub:"boom-kaboom" msg) then
      Alcotest.failf "last_error lacks the message: %s" msg
  | None -> Alcotest.fail "last_error not retained"

(* ------------------------------ cache ------------------------------- *)

let test_cache_lru () =
  let c = Cache.create ~name:"t" ~cap:2 () in
  let computes = ref 0 in
  let get k =
    Cache.find_or_compute c k (fun () ->
        incr computes;
        k * 10)
  in
  Alcotest.(check int) "a" 10 (get 1);
  Alcotest.(check int) "b" 20 (get 2);
  Alcotest.(check int) "a cached" 10 (get 1);
  Alcotest.(check int) "computes" 2 !computes;
  (* inserting a third evicts the LRU entry, which is 2 *)
  ignore (get 3);
  Alcotest.(check bool) "2 evicted" true (Cache.find_opt c 2 = None);
  Alcotest.(check bool) "1 kept" true (Cache.find_opt c 1 = Some 10);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 3 (Cache.misses c);
  Alcotest.(check int) "evictions" 1 (Cache.evictions c)

(* single-flight: two domains racing find_or_compute on the same key
   must run the compute exactly once — the loser blocks on the in-flight
   marker and reads the winner's value. *)
let test_cache_single_flight_same_key () =
  let c = Cache.create ~name:"t" ~cap:4 () in
  let computes = Atomic.make 0 in
  let entered = Atomic.make 0 in
  let f () =
    Atomic.incr computes;
    (* a slow compute: give the second domain ample time to arrive and
       observe the Pending slot rather than racing past it *)
    Unix.sleepf 0.05;
    42
  in
  let worker () =
    Domain.spawn (fun () ->
        Atomic.incr entered;
        (* rendezvous so both domains request the key together *)
        while Atomic.get entered < 2 do
          Domain.cpu_relax ()
        done;
        Cache.find_or_compute c 7 f)
  in
  let a = worker () and b = worker () in
  let va = Domain.join a and vb = Domain.join b in
  Alcotest.(check int) "both read the value" 84 (va + vb);
  Alcotest.(check int) "compute ran once" 1 (Atomic.get computes);
  Alcotest.(check int) "one hit" 1 (Cache.hits c);
  Alcotest.(check int) "one miss" 1 (Cache.misses c)

(* distinct keys must not serialize behind each other's computes: the
   whole-cache lock is released while f runs, so two computes on
   different keys can be in flight at once.  Each side waits (bounded)
   for the other to enter its compute — under the old
   hold-the-lock-while-computing scheme this deadlocks the rendezvous
   and the assertion fails. *)
let test_cache_distinct_keys_overlap () =
  let c = Cache.create ~name:"t" ~cap:4 () in
  let in_flight = Atomic.make 0 in
  let saw_overlap = Atomic.make false in
  let compute k () =
    Atomic.incr in_flight;
    let deadline = Unix.gettimeofday () +. 2.0 in
    let rec wait () =
      if Atomic.get in_flight >= 2 then Atomic.set saw_overlap true
      else if Unix.gettimeofday () < deadline then begin
        Domain.cpu_relax ();
        wait ()
      end
    in
    wait ();
    Atomic.decr in_flight;
    k * 10
  in
  let run k = Domain.spawn (fun () -> Cache.find_or_compute c k (compute k)) in
  let a = run 1 and b = run 2 in
  Alcotest.(check int) "key 1" 10 (Domain.join a);
  Alcotest.(check int) "key 2" 20 (Domain.join b);
  Alcotest.(check bool) "computes overlapped" true (Atomic.get saw_overlap)

(* a compute that raises must clear the in-flight marker so the key is
   retryable (and waiters are not stranded) *)
let test_cache_failed_compute_retries () =
  let c = Cache.create ~name:"t" ~cap:4 () in
  Alcotest.(check bool) "first compute raises" true
    (match Cache.find_or_compute c 1 (fun () -> failwith "boom") with
    | exception Failure _ -> true
    | _ -> false);
  Alcotest.(check int) "retry succeeds" 11
    (Cache.find_or_compute c 1 (fun () -> 11));
  Alcotest.(check bool) "cached after retry" true
    (Cache.find_opt c 1 = Some 11)

(* ---------------------- decompose thread-safety --------------------- *)

let test_decompose_hammer () =
  let w = Nd_algos.Matmul.workload ~n:32 ~base:4 ~seed:3 () in
  let p = Nd_algos.Workload.compile w in
  let ms = [ 1; 4; 16; 64; 256; 1024 ] in
  (* hammer the shared memo from several domains at once; single-flight
     memoization must hand every caller the same physical record *)
  let results =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            List.init 50 (fun _ ->
                List.map (fun m -> (m, Nd.Program.decompose p ~m)) ms)))
    |> List.concat_map Domain.join
    |> List.concat
  in
  List.iter
    (fun (m, d) ->
      let canonical = Nd.Program.decompose p ~m in
      if not (d == canonical) then
        Alcotest.failf "decompose m=%d returned a non-memoized copy" m;
      Alcotest.(check int) "m recorded" m d.Nd.Program.m)
    results;
  (* sanity: every decomposition covers all leaves *)
  List.iter
    (fun m ->
      let d = Nd.Program.decompose p ~m in
      Alcotest.(check bool)
        (Printf.sprintf "m=%d has tasks" m)
        true
        (Array.length d.Nd.Program.tasks > 0))
    ms

(* --------------------------- end-to-end ----------------------------- *)

(* each test gets its own socket in a fresh private directory, so tests
   (and concurrently running test processes) can never collide on a
   shared, pid-keyed path *)
let fresh_sock_path tag =
  let dir = Filename.temp_dir "ndsim-test" "" in
  Filename.concat dir (tag ^ ".sock")

let wait_for_socket path =
  let rec go n =
    if n = 0 then Alcotest.fail "server socket never appeared";
    if not (Sys.file_exists path) then begin
      Unix.sleepf 0.05;
      go (n - 1)
    end
  in
  go 200

let member_exn name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (Json.to_string j)

let test_server_end_to_end () =
  let sock_path = fresh_sock_path "e2e" in
  let cfg =
    {
      (Server.default_config (P.Unix_path sock_path)) with
      Server.pool_sizes = [ ("analyze", 1); ("simulate", 1); ("fuzz", 1) ];
      quiet = true;
    }
  in
  let server = Thread.create (fun () -> Server.run cfg) () in
  wait_for_socket sock_path;
  let conn = Client.connect (P.Unix_path sock_path) in
  (* ping *)
  let pong = Client.call_exn conn P.Ping in
  Alcotest.(check bool) "pong" true (member_exn "pong" pong = Json.Bool true);
  (* lint a clean workload, twice: the second hit must come from cache *)
  let lint1 = Client.call_exn conn (P.Lint wk) in
  Alcotest.(check bool) "lint clean" true
    (member_exn "errors" lint1 = Json.Int 0);
  let lint2 = Client.call_exn conn (P.Lint wk) in
  Alcotest.(check string) "lint deterministic" (Json.to_string lint1)
    (Json.to_string lint2);
  (* race verdict *)
  let race = Client.call_exn conn (P.Race wk) in
  Alcotest.(check bool) "race-free" true
    (member_exn "race_free" race = Json.Bool true);
  (* SB simulation *)
  let sim = Client.call_exn conn (P.Simulate { wk; top = 1; fine = false }) in
  (match member_exn "time" sim with
  | Json.Int t when t > 0 -> ()
  | j -> Alcotest.failf "bad simulate time: %s" (Json.to_string j));
  (* structural cost analysis: report + Theorem-1 certification *)
  let ana = Client.call_exn conn (P.Analyze { wk; top = 1 }) in
  let report = member_exn "report" ana in
  (match member_exn "work" report with
  | Json.Int w when w > 0 -> ()
  | j -> Alcotest.failf "bad analyze work: %s" (Json.to_string j));
  (match member_exn "certified" (member_exn "certification" ana) with
  | Json.Bool true -> ()
  | j -> Alcotest.failf "mm not certified: %s" (Json.to_string j));
  let ana2 = Client.call_exn conn (P.Analyze { wk; top = 1 }) in
  Alcotest.(check string) "analyze deterministic" (Json.to_string ana)
    (Json.to_string ana2);
  (* errors come back as error responses, not dead connections *)
  (match
     (Client.call conn (P.Lint { wk with algo = "nope" })).P.result
   with
  | Error msg ->
    Alcotest.(check bool) "unknown algo mentions name" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "lint of unknown algorithm succeeded");
  (* stats: lint cache must show at least one hit, histograms nonzero *)
  let stats = Client.call_exn conn P.Stats in
  let lint_cache =
    Json.to_list (member_exn "caches" stats)
    |> List.find (fun c -> member_exn "name" c = Json.String "lint")
  in
  (match member_exn "hits" lint_cache with
  | Json.Int h when h >= 1 -> ()
  | j -> Alcotest.failf "lint cache hits: %s" (Json.to_string j));
  (* the second analyze call above must have hit the analyze cache *)
  let cost_cache =
    Json.to_list (member_exn "caches" stats)
    |> List.find (fun c -> member_exn "name" c = Json.String "analyze")
  in
  (match member_exn "hits" cost_cache with
  | Json.Int h when h >= 1 -> ()
  | j -> Alcotest.failf "analyze cache hits: %s" (Json.to_string j));
  (match member_exn "lint" (member_exn "latency_ns" stats) with
  | j -> (
    match member_exn "count" j with
    | Json.Int c when c >= 2 -> ()
    | k -> Alcotest.failf "lint latency count: %s" (Json.to_string k)));
  (* pipelined burst: ids must all come back *)
  let ids = List.init 20 (fun _ -> Client.send conn P.Ping) in
  let got = List.init 20 (fun _ -> (Client.recv conn).P.id) in
  Alcotest.(check bool) "pipelined ids all answered" true
    (List.sort compare ids = List.sort compare got);
  (* shutdown: acknowledged, then the daemon exits and cleans up *)
  let bye = Client.call_exn conn P.Shutdown in
  Alcotest.(check bool) "stopping" true
    (member_exn "stopping" bye = Json.Bool true);
  Client.close conn;
  Thread.join server;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock_path)

(* the fiber-pool dispatch path: handlers run as effect-handler fibers
   on one shared pool instead of the named micropools.  Same protocol
   behavior as the micropool path, plus the fiber pool's own stats
   section — and the micropools must never have started. *)
let test_server_fiber_pool () =
  let sock_path = fresh_sock_path "fiber" in
  let cfg =
    {
      (Server.default_config (P.Unix_path sock_path)) with
      Server.pool_sizes = [ ("analyze", 1); ("simulate", 1); ("fuzz", 1) ];
      quiet = true;
      fiber_pool = Some 2;
    }
  in
  let server = Thread.create (fun () -> Server.run cfg) () in
  wait_for_socket sock_path;
  let conn = Client.connect (P.Unix_path sock_path) in
  let lint = Client.call_exn conn (P.Lint wk) in
  Alcotest.(check bool) "lint clean" true
    (member_exn "errors" lint = Json.Int 0);
  let race = Client.call_exn conn (P.Race wk) in
  Alcotest.(check bool) "race-free" true
    (member_exn "race_free" race = Json.Bool true);
  (* a pipelined burst through the shared pool: every id answered *)
  let ids = List.init 50 (fun _ -> Client.send conn (P.Lint wk)) in
  let got = List.init 50 (fun _ -> (Client.recv conn).P.id) in
  Alcotest.(check bool) "burst ids all answered" true
    (List.sort compare ids = List.sort compare got);
  (* a failing request comes back as an error response, with the pool
     intact for the next request *)
  (match (Client.call conn (P.Lint { wk with algo = "nope" })).P.result with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lint of unknown algorithm succeeded");
  Alcotest.(check bool) "pool alive after error" true
    (member_exn "race_free" (Client.call_exn conn (P.Race wk)) = Json.Bool true);
  let stats = Client.call_exn conn P.Stats in
  let fp = member_exn "fiber_pool" stats in
  Alcotest.(check bool) "fiber pool started" true
    (member_exn "started" fp = Json.Bool true);
  (match member_exn "fibers" fp with
  | Json.Int n when n >= 54 -> ()
  | j -> Alcotest.failf "fiber count too low: %s" (Json.to_string j));
  (* handler errors are protocol-level responses, not fiber errors *)
  Alcotest.(check bool) "no fiber-level errors" true
    (member_exn "errors" fp = Json.Int 0);
  (* latency histograms keyed by kind despite worker migration *)
  (match member_exn "count" (member_exn "lint" (member_exn "latency_ns" stats))
   with
  | Json.Int c when c >= 51 -> ()
  | j -> Alcotest.failf "lint latency count: %s" (Json.to_string j));
  (* the micropools exist but never started *)
  Json.to_list (member_exn "pools" stats)
  |> List.iter (fun pj ->
         Alcotest.(check bool) "micropool idle" true
           (member_exn "started" pj = Json.Bool false));
  let bye = Client.call_exn conn P.Shutdown in
  Alcotest.(check bool) "stopping" true
    (member_exn "stopping" bye = Json.Bool true);
  Client.close conn;
  Thread.join server;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock_path)

(* regression for the shared-socket-path isolation bug: two servers in
   the same process (or two test processes on one machine) must be able
   to run side by side, each on its own temp-dir socket, without one
   accepting the other's clients or unlinking the other's socket *)
let test_two_servers_coexist () =
  let start tag =
    let path = fresh_sock_path tag in
    let cfg =
      {
        (Server.default_config (P.Unix_path path)) with
        Server.pool_sizes = [ ("analyze", 1); ("simulate", 1); ("fuzz", 1) ];
        quiet = true;
      }
    in
    let thread = Thread.create (fun () -> Server.run cfg) () in
    wait_for_socket path;
    (path, thread)
  in
  let path_a, thread_a = start "a" in
  let path_b, thread_b = start "b" in
  Alcotest.(check bool) "distinct sockets" false (path_a = path_b);
  let conn_a = Client.connect (P.Unix_path path_a) in
  let conn_b = Client.connect (P.Unix_path path_b) in
  Alcotest.(check bool) "a pongs" true
    (member_exn "pong" (Client.call_exn conn_a P.Ping) = Json.Bool true);
  Alcotest.(check bool) "b pongs" true
    (member_exn "pong" (Client.call_exn conn_b P.Ping) = Json.Bool true);
  (* shutting down a must leave b serving on its own socket *)
  ignore (Client.call_exn conn_a P.Shutdown);
  Client.close conn_a;
  Thread.join thread_a;
  Alcotest.(check bool) "a unlinked" false (Sys.file_exists path_a);
  Alcotest.(check bool) "b still listening" true (Sys.file_exists path_b);
  Alcotest.(check bool) "b still pongs" true
    (member_exn "pong" (Client.call_exn conn_b P.Ping) = Json.Bool true);
  ignore (Client.call_exn conn_b P.Shutdown);
  Client.close conn_b;
  Thread.join thread_b;
  Alcotest.(check bool) "b unlinked" false (Sys.file_exists path_b)

let () =
  Alcotest.run "nd_serve"
    [
      ( "histogram",
        [
          Alcotest.test_case "exact small values" `Quick test_hist_exact_small;
          Alcotest.test_case "log-bucket bound" `Quick
            test_hist_log_bucket_bound;
          Alcotest.test_case "merge" `Quick test_hist_merge;
          Alcotest.test_case "sync hammer" `Quick test_hist_sync_hammer;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "round-trip all kinds" `Quick
            test_protocol_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_protocol_rejects;
        ] );
      ( "framing",
        [
          Alcotest.test_case "round-trip chunked" `Quick
            test_frame_roundtrip_all_kinds;
          Alcotest.test_case "truncated" `Quick test_frame_truncated;
          Alcotest.test_case "oversized" `Quick test_frame_oversized;
          Alcotest.test_case "malformed payload" `Quick
            test_frame_malformed_payload;
          QCheck_alcotest.to_alcotest test_frame_random_bytes_no_crash;
        ] );
      ( "mpmc",
        [
          Alcotest.test_case "exactly-once across domains" `Quick
            test_mpmc_exactly_once;
          Alcotest.test_case "close semantics" `Quick test_mpmc_close_semantics;
          Alcotest.test_case "cursor wrap at max_int" `Quick
            test_mpmc_cursor_wrap;
          Alcotest.test_case "push vs close race" `Quick
            test_mpmc_push_vs_close_race;
        ] );
      ( "micropool",
        [
          Alcotest.test_case "lazy start, exact execution" `Quick
            test_micropool_lazy_and_exact;
          Alcotest.test_case "survives job errors" `Quick
            test_micropool_survives_errors;
          Alcotest.test_case "error accounting and last_error" `Quick
            test_micropool_error_accounting;
        ] );
      ( "cache",
        [
          Alcotest.test_case "keyed lru" `Quick test_cache_lru;
          Alcotest.test_case "single-flight same key" `Quick
            test_cache_single_flight_same_key;
          Alcotest.test_case "distinct keys overlap" `Quick
            test_cache_distinct_keys_overlap;
          Alcotest.test_case "failed compute retries" `Quick
            test_cache_failed_compute_retries;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "multi-domain hammer" `Quick test_decompose_hammer;
        ] );
      ( "server",
        [
          Alcotest.test_case "end-to-end" `Quick test_server_end_to_end;
          Alcotest.test_case "fiber-pool dispatch" `Quick
            test_server_fiber_pool;
          Alcotest.test_case "two servers coexist" `Quick
            test_two_servers_coexist;
        ] );
    ]
