(* Stress tests for the multicore runtime: a model-based check of the
   Chase-Lev deque, concurrent exactly-once delivery under 1 owner + N
   thieves (crossing several buffer growths, which exercises the
   retired-generation retention path), and executor-vs-serial
   equivalence over workers x grain.

   NDSIM_STRESS_ITERS scales the number of repetitions of the
   concurrent test (default 3, so CI stays fast on small machines; the
   canonical soak value, used by the nightly CI job, is
   NDSIM_STRESS_ITERS=1000 — see test/dune). *)

module Deque = Nd_runtime.Deque
module Executor = Nd_runtime.Executor
open Nd_algos

let stress_iters =
  match Sys.getenv_opt "NDSIM_STRESS_ITERS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 3)
  | None -> 3

(* ------------------- model-based sequential deque ------------------- *)

(* Reference model: a list front..back.  push appends at the back, pop
   takes from the back, steal takes from the front.  In a single-domain
   run the deque must agree with the model exactly, and [size] must
   match and never go negative. *)

type op = Push of int | Pop | Steal

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 0 400)
      (frequency
         [ (3, map (fun i -> Push i) (int_bound 10_000)); (2, pure Pop); (2, pure Steal) ]))

let pp_ops ops =
  String.concat ";"
    (List.map
       (function Push i -> Printf.sprintf "push %d" i | Pop -> "pop" | Steal -> "steal")
       ops)

let prop_deque_model =
  QCheck2.Test.make ~name:"deque agrees with two-ended list model" ~count:300
    ~print:pp_ops gen_ops (fun ops ->
      let d = Deque.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          let ok =
            match op with
            | Push i ->
              Deque.push d i;
              model := !model @ [ i ];
              true
            | Pop -> (
              let got = Deque.pop d in
              match List.rev !model with
              | [] -> got = None
              | last :: rev_rest ->
                model := List.rev rev_rest;
                got = Some last)
            | Steal -> (
              let got = Deque.steal d in
              match !model with
              | [] -> got = None
              | first :: rest ->
                model := rest;
                got = Some first)
          in
          let sz = Deque.size d in
          ok && sz = List.length !model && sz >= 0)
        ops)

(* --------------- concurrent exactly-once delivery ------------------- *)

(* 1 owner + [n_thieves] thieves over [n] items (default 20k: the
   capacity-16 deque grows ~10 times under live stealing).  Each domain
   keeps a private list of the items it consumed; after joining, the
   multiset union must be exactly {0, ..., n-1}.  Every participant also
   samples [size] and fails on a negative reading. *)

let stress_once ~n ~n_thieves =
  let d = Deque.create () in
  let produced = Atomic.make false in
  let neg_size = Atomic.make false in
  let sample_size () = if Deque.size d < 0 then Atomic.set neg_size true in
  let thief () =
    let mine = ref [] in
    let rec loop () =
      sample_size ();
      match Deque.steal d with
      | Some v ->
        mine := v :: !mine;
        loop ()
      | None ->
        if not (Atomic.get produced) then begin
          Domain.cpu_relax ();
          loop ()
        end
        else
          (* producer is done: one last sweep to drain stragglers *)
          let rec drain () =
            match Deque.steal d with
            | Some v ->
              mine := v :: !mine;
              drain ()
            | None -> ()
          in
          drain ()
    in
    loop ();
    !mine
  in
  let thieves = List.init n_thieves (fun _ -> Domain.spawn thief) in
  let own = ref [] in
  for i = 0 to n - 1 do
    Deque.push d i;
    sample_size ();
    (* interleave owner pops so the last-element CAS race gets exercised *)
    if i land 7 = 0 then
      match Deque.pop d with
      | Some v -> own := v :: !own
      | None -> ()
  done;
  Atomic.set produced true;
  let rec drain () =
    match Deque.pop d with
    | Some v ->
      own := v :: !own;
      drain ()
    | None -> ()
  in
  drain ();
  let stolen = List.concat_map Domain.join thieves in
  (* the owner's final drain can race with the thieves' last sweeps, so
     re-drain after joining to be sure nothing is left behind *)
  drain ();
  Alcotest.(check bool) "size never negative" false (Atomic.get neg_size);
  let all = List.sort compare (List.rev_append !own stolen) in
  Alcotest.(check int) "exactly-once: count" n (List.length all);
  List.iteri
    (fun i v ->
      if i <> v then
        Alcotest.failf "exactly-once: expected %d at position %d, got %d" i i v)
    all

let test_stress_concurrent () =
  for _ = 1 to stress_iters do
    stress_once ~n:20_000 ~n_thieves:4
  done

let test_stress_thief_heavy () =
  (* thieves only: the owner never pops, so every item crosses the top
     end while the buffer is growing underneath the thieves *)
  for _ = 1 to stress_iters do
    let d = Deque.create () in
    let n = 10_000 in
    let produced = Atomic.make false in
    let thief () =
      let mine = ref 0 and sum = ref 0 in
      let rec loop () =
        match Deque.steal d with
        | Some v ->
          incr mine;
          sum := !sum + v;
          loop ()
        | None ->
          if not (Atomic.get produced) then begin
            Domain.cpu_relax ();
            loop ()
          end
          else
            let rec drain () =
              match Deque.steal d with
              | Some v ->
                incr mine;
                sum := !sum + v;
                drain ()
              | None -> ()
            in
            drain ()
      in
      loop ();
      (!mine, !sum)
    in
    let thieves = List.init 4 (fun _ -> Domain.spawn thief) in
    for i = 1 to n do
      Deque.push d i
    done;
    Atomic.set produced true;
    let counts = List.map Domain.join thieves in
    let total = List.fold_left (fun a (c, _) -> a + c) 0 counts in
    let sum = List.fold_left (fun a (_, s) -> a + s) 0 counts in
    Alcotest.(check int) "thief-only: all delivered" n total;
    Alcotest.(check int) "thief-only: sum preserved" (n * (n + 1) / 2) sum
  done

(* -------------------- executor equivalence -------------------------- *)

(* Both real executors must agree with the serial reference for every
   (workers, grain) combination, including grains small enough to leave
   most of the DAG at vertex granularity and grains larger than the
   whole program (fully serial coarse task). *)

let equiv_check name w run tol =
  let p = Workload.compile w in
  w.Workload.reset ();
  run p;
  let err = w.Workload.check () in
  if err > tol then Alcotest.failf "%s: err %g > %g" name err tol

let grains = [ 0; 1; 17; 300; max_int ]

let test_dataflow_equivalence () =
  List.iter
    (fun workers ->
      List.iter
        (fun grain ->
          let tag k =
            Printf.sprintf "%s w=%d g=%d" k workers
              (if grain = max_int then -1 else grain)
          in
          equiv_check (tag "mm")
            (Matmul.workload ~n:16 ~base:2 ~seed:61 ())
            (Executor.run_dataflow ~workers ~grain)
            1e-9;
          equiv_check (tag "trs")
            (Trs.workload ~n:16 ~base:2 ~seed:62 ())
            (Executor.run_dataflow ~workers ~grain)
            1e-8;
          equiv_check (tag "lcs")
            (Lcs.workload ~n:32 ~base:4 ~seed:63 ())
            (Executor.run_dataflow ~workers ~grain)
            0.)
        grains)
    [ 1; 2; 8 ]

let test_fork_join_equivalence () =
  List.iter
    (fun workers ->
      List.iter
        (fun grain ->
          let tag k =
            Printf.sprintf "%s w=%d g=%d" k workers
              (if grain = max_int then -1 else grain)
          in
          equiv_check (tag "mm")
            (Matmul.workload ~n:16 ~base:2 ~seed:71 ())
            (Executor.run_fork_join ~workers ~grain)
            1e-9;
          equiv_check (tag "cholesky")
            (Cholesky.workload ~n:16 ~base:2 ~seed:72 ())
            (Executor.run_fork_join ~workers ~grain)
            1e-8;
          equiv_check (tag "fw1d")
            (Fw1d.workload ~n:32 ~base:4 ~seed:73 ())
            (Executor.run_fork_join ~workers ~grain)
            0.)
        grains)
    [ 1; 2; 8 ]

let () =
  Alcotest.run "nd_stress"
    [
      ( "deque",
        [
          QCheck_alcotest.to_alcotest prop_deque_model;
          Alcotest.test_case "concurrent exactly-once (owner+4 thieves)" `Quick
            test_stress_concurrent;
          Alcotest.test_case "thief-only delivery across growth" `Quick
            test_stress_thief_heavy;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "dataflow = serial over workers x grain" `Quick
            test_dataflow_equivalence;
          Alcotest.test_case "fork-join = serial over workers x grain" `Quick
            test_fork_join_equivalence;
        ] );
    ]
