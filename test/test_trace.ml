module Collector = Nd_trace.Collector
module Event = Nd_trace.Event
module Chrome = Nd_trace.Chrome
module Analyzer = Nd_trace.Analyzer
module Json = Nd_util.Json
module Pmh = Nd_pmh.Pmh
module Sb = Nd_sched.Sb_sched
module Ws = Nd_sched.Work_steal
open Nd_algos

let small_machine ?(top = 1) () =
  Pmh.create ~root_fanout:top
    [
      { Pmh.size = 64; fanout = 1; miss_cost = 2 };
      { Pmh.size = 512; fanout = 2; miss_cost = 8 };
      { Pmh.size = 4096; fanout = 2; miss_cost = 32 };
    ]

let small_workloads () =
  [
    ("mm", Workload.compile (Matmul.workload ~n:16 ~base:2 ~seed:1 ()));
    ("trs", Workload.compile (Trs.workload ~n:16 ~base:2 ~seed:1 ()));
    ("lcs", Workload.compile (Lcs.workload ~n:64 ~base:2 ~seed:1 ()));
  ]

(* --------------------------- collector ----------------------------- *)

let test_null_sink () =
  let t = Collector.null in
  Alcotest.(check bool) "disabled" false (Collector.enabled t);
  Collector.emit t ~worker:0 ~ts:0 (Event.Spawn { count = 1 });
  Collector.emit_now t ~worker:5 (Event.Spawn { count = 1 });
  Alcotest.(check int) "no events" 0 (List.length (Collector.events t));
  Alcotest.(check int) "no drops" 0 (Collector.dropped t)

let test_ring_overflow () =
  let t = Collector.create ~capacity:8 ~workers:1 () in
  for i = 0 to 19 do
    Collector.emit t ~worker:0 ~ts:i (Event.Fire { target = i; level = 0 })
  done;
  Alcotest.(check int) "dropped" 12 (Collector.dropped t);
  let evs = Collector.events t in
  Alcotest.(check int) "retained" 8 (List.length evs);
  (* oldest events were overwritten: the newest survive in order *)
  Alcotest.(check int) "first retained ts" 12 (List.hd evs).Event.ts;
  Alcotest.(check int) "last retained ts" 19
    (List.nth evs 7).Event.ts

let test_merge_sorted () =
  let t = Collector.create ~workers:3 () in
  Collector.emit t ~worker:2 ~ts:5 (Event.Spawn { count = 2 });
  Collector.emit t ~worker:0 ~ts:1 (Event.Spawn { count = 0 });
  Collector.emit t ~worker:1 ~ts:3 (Event.Spawn { count = 1 });
  Collector.emit t ~worker:0 ~ts:3 (Event.Spawn { count = 0 });
  let ts = List.map (fun e -> e.Event.ts) (Collector.events t) in
  Alcotest.(check (list int)) "sorted" [ 1; 3; 3; 5 ] ts

(* ------------------------- event ordering -------------------------- *)

(* every interval is well-formed and, for every DAG edge u -> v between
   traced vertices, end(u) <= begin(v): the trace's happens-before
   respects the algorithm DAG *)
let check_happens_before p tracer =
  let dag = Nd.Program.dag p in
  let n = Nd_dag.Dag.n_vertices dag in
  let begin_ts = Array.make n min_int and end_ts = Array.make n min_int in
  List.iter
    (fun iv ->
      if iv.Analyzer.t1 < iv.Analyzer.t0 then
        Alcotest.failf "interval ends before it begins (v%d)" iv.Analyzer.vertex;
      if iv.Analyzer.vertex >= 0 && iv.Analyzer.vertex < n then begin
        begin_ts.(iv.Analyzer.vertex) <- iv.Analyzer.t0;
        end_ts.(iv.Analyzer.vertex) <- iv.Analyzer.t1
      end)
    (Analyzer.intervals tracer);
  for u = 0 to n - 1 do
    if end_ts.(u) > min_int then
      List.iter
        (fun v ->
          if begin_ts.(v) > min_int && end_ts.(u) > begin_ts.(v) then
            Alcotest.failf "edge %d->%d violated: end %d > begin %d" u v
              end_ts.(u) begin_ts.(v))
        (Nd_dag.Dag.succs dag u)
  done

let test_ordering_serial () =
  List.iter
    (fun (_name, p) ->
      let tracer = Collector.create ~workers:1 () in
      Nd.Serial_exec.run ~tracer p;
      check_happens_before p tracer)
    (small_workloads ())

let test_ordering_ws () =
  let machine = small_machine ~top:2 () in
  List.iter
    (fun (_name, p) ->
      let tracer = Collector.create ~workers:(Pmh.n_procs machine) () in
      ignore (Ws.run ~tracer p machine);
      check_happens_before p tracer)
    (small_workloads ())

(* --------------------- chrome JSON round-trip ---------------------- *)

let test_chrome_roundtrip () =
  let machine = small_machine () in
  let _, p = List.hd (small_workloads ()) in
  let tracer = Collector.create ~workers:(Pmh.n_procs machine) () in
  ignore (Sb.run ~tracer p machine);
  let json = Chrome.to_string tracer in
  let v = Json.parse json in
  let evs =
    match Json.member "traceEvents" v with
    | Some l -> Json.to_list l
    | None -> Alcotest.fail "no traceEvents key"
  in
  Alcotest.(check bool) "nonempty" true (List.length evs > 0);
  (* one named thread track per simulated processor *)
  let tracks =
    List.filter
      (fun e ->
        match Json.member "name" e with
        | Some (Json.String "thread_name") -> true
        | _ -> false)
      evs
  in
  Alcotest.(check int) "tracks" (Pmh.n_procs machine) (List.length tracks);
  (* every event has the mandatory fields, and B/E balance per tid *)
  let opens = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let ph =
        match Json.member "ph" e with
        | Some s -> Json.to_string_exn s
        | None -> Alcotest.fail "event without ph"
      in
      (match Json.member "pid" e with
      | Some (Json.Int _) -> ()
      | _ -> Alcotest.fail "event without pid");
      if ph <> "M" && ph <> "C" then begin
        (match Json.member "ts" e with
        | Some ts -> ignore (Json.to_number ts)
        | None -> Alcotest.fail "event without ts");
        let tid =
          match Json.member "tid" e with
          | Some (Json.Int t) -> t
          | _ -> Alcotest.fail "event without tid"
        in
        let d = try Hashtbl.find opens tid with Not_found -> 0 in
        if ph = "B" then Hashtbl.replace opens tid (d + 1)
        else if ph = "E" then begin
          if d <= 0 then Alcotest.failf "tid %d: E without B" tid;
          Hashtbl.replace opens tid (d - 1)
        end
      end)
    evs;
  Hashtbl.iter
    (fun tid d -> if d <> 0 then Alcotest.failf "tid %d: %d unclosed B" tid d)
    opens;
  (* anchor and per-level miss counter tracks are present *)
  let counter_names =
    List.filter_map
      (fun e ->
        match (Json.member "ph" e, Json.member "name" e) with
        | Some (Json.String "C"), Some (Json.String n) -> Some n
        | _ -> None)
      evs
  in
  Alcotest.(check bool) "anchored footprint counter" true
    (List.mem "anchored footprint" counter_names);
  Alcotest.(check bool) "L1 miss counter" true
    (List.mem "L1 misses" counter_names)

let test_json_parser () =
  (* the minimal parser handles what the writer can produce *)
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 1.5;
      Json.String "a \"quoted\"\n\ttab \\ slash";
      Json.List [ Json.Int 1; Json.List []; Json.Obj [] ];
      Json.Obj [ ("k", Json.List [ Json.Bool false; Json.Null ]) ];
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      if Json.parse s <> v then Alcotest.failf "round-trip failed on %s" s)
    samples;
  List.iter
    (fun bad ->
      match Json.parse bad with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed %S" bad)
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "1 2"; "" ]

(* ---------------------- tracing is observational -------------------- *)

let test_sb_stats_unperturbed () =
  let machine = small_machine ~top:2 () in
  List.iter
    (fun (name, p) ->
      List.iter
        (fun mode ->
          let plain = Sb.run ~mode p machine in
          let tracer =
            Collector.create ~workers:(Pmh.n_procs machine) ()
          in
          let traced = Sb.run ~mode ~tracer p machine in
          if plain <> traced then
            Alcotest.failf "%s: stats drift under tracing" name)
        [ Sb.Coarse; Sb.Fine ])
    (small_workloads ())

let test_ws_stats_unperturbed () =
  let machine = small_machine () in
  List.iter
    (fun (name, p) ->
      let plain = Ws.run ~seed:7 p machine in
      let tracer = Collector.create ~workers:(Pmh.n_procs machine) () in
      let traced = Ws.run ~seed:7 ~tracer p machine in
      if plain <> traced then
        Alcotest.failf "%s: stats drift under tracing" name)
    (small_workloads ())

(* ------------------------- critical path --------------------------- *)

let test_critical_path_matches_span () =
  (* serial and work-stealing traces are vertex-granular and complete, so
     the trace-derived critical path must equal the analysis ND span *)
  let machine = small_machine ~top:2 () in
  List.iter
    (fun (name, p) ->
      let dag = Nd.Program.dag p in
      let span = (Nd.Analysis.analyze p).Nd.Analysis.span in
      let serial = Collector.create ~workers:1 () in
      Nd.Serial_exec.run ~tracer:serial p;
      let traced, total = Analyzer.coverage serial dag in
      Alcotest.(check int) (name ^ " serial coverage") total traced;
      Alcotest.(check int)
        (name ^ " serial critical path")
        span
        (Analyzer.critical_path serial dag);
      let ws = Collector.create ~workers:(Pmh.n_procs machine) () in
      ignore (Ws.run ~tracer:ws p machine);
      Alcotest.(check int)
        (name ^ " ws critical path")
        span
        (Analyzer.critical_path ws dag))
    (small_workloads ())

(* ------------------------ real executors --------------------------- *)

let test_dataflow_trace () =
  let w = Lcs.workload ~n:64 ~base:4 ~seed:3 () in
  let p = Workload.compile w in
  let dag = Nd.Program.dag p in
  let tracer = Collector.wallclock ~workers:2 () in
  w.Workload.reset ();
  Nd_runtime.Executor.run_dataflow ~workers:2 ~tracer p;
  Alcotest.(check (float 1e-9)) "correct result" 0. (w.Workload.check ());
  let traced, total = Analyzer.coverage tracer dag in
  Alcotest.(check int) "all strands traced" total traced;
  Alcotest.(check int) "critical path"
    ((Nd.Analysis.analyze p).Nd.Analysis.span)
    (Analyzer.critical_path tracer dag)

let test_forkjoin_trace () =
  let w = Matmul.workload ~n:16 ~base:2 ~seed:3 () in
  let p = Workload.compile w in
  let tracer = Collector.wallclock ~workers:2 () in
  w.Workload.reset ();
  Nd_runtime.Executor.run_fork_join ~workers:2 ~tracer p;
  Alcotest.(check (float 1e-9)) "correct result" 0. (w.Workload.check ());
  let n_leaves =
    List.length
      (List.filter
         (fun e ->
           match e.Event.kind with Event.Strand_begin _ -> true | _ -> false)
         (Collector.events tracer))
  in
  Alcotest.(check int) "one begin per strand leaf" 512 n_leaves

let () =
  Alcotest.run "nd_trace"
    [
      ( "collector",
        [
          Alcotest.test_case "null sink" `Quick test_null_sink;
          Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
          Alcotest.test_case "merge sorted" `Quick test_merge_sorted;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "serial happens-before" `Quick test_ordering_serial;
          Alcotest.test_case "ws happens-before" `Quick test_ordering_ws;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "json parser" `Quick test_json_parser;
          Alcotest.test_case "sb trace round-trips" `Quick test_chrome_roundtrip;
        ] );
      ( "observational",
        [
          Alcotest.test_case "sb stats unperturbed" `Quick test_sb_stats_unperturbed;
          Alcotest.test_case "ws stats unperturbed" `Quick test_ws_stats_unperturbed;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "critical path = ND span" `Quick
            test_critical_path_matches_span;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "dataflow trace" `Quick test_dataflow_trace;
          Alcotest.test_case "fork-join trace" `Quick test_forkjoin_trace;
        ] );
    ]
