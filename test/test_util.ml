module Is = Nd_util.Interval_set
module Stats = Nd_util.Stats
module Prng = Nd_util.Prng

let check_is msg expected actual =
  Alcotest.(check (list (pair int int))) msg expected (Is.intervals actual)

(* ------------------------- interval sets ------------------------- *)

let test_interval_basic () =
  check_is "single" [ (3, 7) ] (Is.interval 3 7);
  check_is "empty" [] (Is.interval 5 5);
  check_is "singleton" [ (4, 5) ] (Is.singleton 4);
  Alcotest.(check bool) "is_empty" true (Is.is_empty Is.empty);
  Alcotest.check_raises "lo>hi" (Invalid_argument "Interval_set.interval: lo > hi")
    (fun () -> ignore (Is.interval 7 3))

let test_union () =
  let a = Is.of_intervals [ (0, 5); (10, 15) ] in
  let b = Is.of_intervals [ (3, 12); (20, 25) ] in
  check_is "overlapping union" [ (0, 15); (20, 25) ] (Is.union a b);
  check_is "adjacent coalesce" [ (0, 10) ]
    (Is.union (Is.interval 0 5) (Is.interval 5 10));
  check_is "union empty left" [ (1, 2) ] (Is.union Is.empty (Is.interval 1 2));
  check_is "union empty right" [ (1, 2) ] (Is.union (Is.interval 1 2) Is.empty)

let test_inter () =
  let a = Is.of_intervals [ (0, 10); (20, 30) ] in
  let b = Is.of_intervals [ (5, 25) ] in
  check_is "inter" [ (5, 10); (20, 25) ] (Is.inter a b);
  check_is "inter disjoint" [] (Is.inter (Is.interval 0 5) (Is.interval 5 10))

let test_diff () =
  let a = Is.of_intervals [ (0, 10) ] in
  let b = Is.of_intervals [ (3, 5); (7, 20) ] in
  check_is "diff splits" [ (0, 3); (5, 7) ] (Is.diff a b);
  check_is "diff of empty" [] (Is.diff Is.empty a);
  check_is "diff by empty" [ (0, 10) ] (Is.diff a Is.empty)

let test_cardinal_mem () =
  let a = Is.of_intervals [ (0, 3); (10, 14) ] in
  Alcotest.(check int) "cardinal" 7 (Is.cardinal a);
  Alcotest.(check bool) "mem 2" true (Is.mem 2 a);
  Alcotest.(check bool) "mem 3" false (Is.mem 3 a);
  Alcotest.(check bool) "mem 13" true (Is.mem 13 a)

let test_overlaps () =
  let a = Is.of_intervals [ (0, 5); (10, 15) ] in
  Alcotest.(check bool) "yes" true (Is.overlaps a (Is.interval 14 20));
  Alcotest.(check bool) "no" false (Is.overlaps a (Is.interval 5 10));
  Alcotest.(check bool) "empty" false (Is.overlaps a Is.empty)

let test_absorb () =
  let acc = ref (Is.interval 0 10) in
  let n1 = Is.absorb acc (Is.of_intervals [ (5, 15) ]) in
  Alcotest.(check int) "first absorb" 5 n1;
  let n2 = Is.absorb acc (Is.of_intervals [ (5, 15) ]) in
  Alcotest.(check int) "second absorb is free" 0 n2;
  Alcotest.(check int) "acc grew" 15 (Is.cardinal !acc)

let test_normalize_random () =
  (* union of random fragments equals the set built by of_intervals *)
  let rng = Prng.create 42 in
  for _ = 1 to 50 do
    let frags =
      List.init 20 (fun _ ->
          let lo = Prng.int rng 100 in
          (lo, lo + Prng.int rng 10))
    in
    let whole = Is.of_intervals frags in
    let incremental =
      List.fold_left
        (fun acc (lo, hi) -> Is.union acc (Is.interval lo hi))
        Is.empty frags
    in
    Alcotest.(check bool) "agree" true (Is.equal whole incremental);
    (* membership agrees with the fragment definition *)
    for x = 0 to 110 do
      let expect = List.exists (fun (lo, hi) -> lo <= x && x < hi) frags in
      if expect <> Is.mem x whole then Alcotest.fail "membership mismatch"
    done
  done

(* qcheck properties *)

let gen_set =
  QCheck2.Gen.(
    map
      (fun l -> Is.of_intervals (List.map (fun (a, b) -> (a, a + b)) l))
      (small_list (pair (int_bound 200) (int_bound 20))))

let prop_union_cardinal =
  QCheck2.Test.make ~name:"|a ∪ b| = |a| + |b| - |a ∩ b|" ~count:200
    QCheck2.Gen.(pair gen_set gen_set)
    (fun (a, b) ->
      Is.cardinal (Is.union a b)
      = Is.cardinal a + Is.cardinal b - Is.cardinal (Is.inter a b))

let prop_diff_partition =
  QCheck2.Test.make ~name:"a = (a-b) ⊎ (a∩b)" ~count:200
    QCheck2.Gen.(pair gen_set gen_set)
    (fun (a, b) ->
      Is.equal a (Is.union (Is.diff a b) (Is.inter a b))
      && Is.is_empty (Is.inter (Is.diff a b) b))

let prop_overlaps_consistent =
  QCheck2.Test.make ~name:"overlaps a b <=> inter nonempty" ~count:200
    QCheck2.Gen.(pair gen_set gen_set)
    (fun (a, b) -> Is.overlaps a b = not (Is.is_empty (Is.inter a b)))

(* --------------------------- statistics --------------------------- *)

let test_mean_stdev () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "stdev" 1. (Stats.stdev [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "stdev singleton" 0. (Stats.stdev [ 5. ]);
  Alcotest.(check (float 1e-9)) "geomean" 2. (Stats.geomean [ 1.; 2.; 4. ])

let test_linear_fit () =
  let xs = [ 1.; 2.; 3.; 4. ] in
  let ys = List.map (fun x -> (3. *. x) +. 1.) xs in
  let slope, intercept, r2 = Stats.linear_fit xs ys in
  Alcotest.(check (float 1e-9)) "slope" 3. slope;
  Alcotest.(check (float 1e-9)) "intercept" 1. intercept;
  Alcotest.(check (float 1e-9)) "r2" 1. r2

let test_power_fit () =
  let xs = [ 2.; 4.; 8.; 16.; 32. ] in
  let ys = List.map (fun x -> 5. *. (x ** 1.5)) xs in
  let e, c, r2 = Stats.power_fit xs ys in
  Alcotest.(check (float 1e-6)) "exponent" 1.5 e;
  Alcotest.(check (float 1e-6)) "constant" 5. c;
  Alcotest.(check (float 1e-6)) "r2" 1. r2

let test_ratio_trend () =
  let xs = [ 1.; 2.; 4. ] in
  let ys = [ 2.; 4.; 8. ] in
  let r = Stats.ratio_trend xs ys (fun x -> x) in
  Alcotest.(check (list (float 1e-9))) "flat" [ 2.; 2.; 2. ] r;
  Alcotest.(check (float 1e-9)) "spread" 1. (Stats.spread r)

(* ----------------------------- prng ------------------------------ *)

let test_prng_determinism () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_bounds () =
  let rng = Prng.create 11 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds";
    let f = Prng.float rng in
    if f < 0. || f >= 1. then Alcotest.fail "float out of bounds"
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound <= 0")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_split () =
  let rng = Prng.create 3 in
  let child = Prng.split rng in
  (* parent and child produce different streams *)
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.next rng = Prng.next child then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_prng_uniformity () =
  let rng = Prng.create 99 in
  let buckets = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let b = Prng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      if abs (c - (n / 10)) > n / 20 then Alcotest.fail "bucket far from uniform")
    buckets

(* ----------------------------- heap ------------------------------ *)

module Heap = Nd_util.Heap

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k (10 * k)) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "length" 5 (Heap.length h);
  Alcotest.(check int) "peek" 1 (Heap.peek_key h);
  let keys = List.init 5 (fun _ -> fst (Heap.pop h)) in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 3; 4; 5 ] keys;
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  (match Heap.pop h with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "pop of empty")

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h 7 v) [ 1; 2; 3 ];
  let vals = List.init 3 (fun _ -> snd (Heap.pop h)) in
  Alcotest.(check (list int)) "FIFO on equal keys" [ 1; 2; 3 ] vals

(* Regression for the heap space leak: popped entries used to survive in
   vacated array slots (pop moved the last entry to the root without
   clearing its old slot, and growth seeded fresh slots from a live
   entry), pinning every value a long-lived scheduler heap had ever
   carried.  Track popped values through a weak array: after a major GC
   they must all be collectable even while the heap itself stays live. *)
let test_heap_no_leak_drained () =
  let h = Heap.create () in
  let n = 40 in
  (* > the initial capacity of 16, so the growth path runs too *)
  let w = Weak.create n in
  for i = 0 to n - 1 do
    let v = ref (2 * i) in
    Weak.set w i (Some v);
    Heap.push h i v
  done;
  while not (Heap.is_empty h) do
    ignore (Heap.pop h)
  done;
  Gc.full_major ();
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check w i then incr live
  done;
  (* the heap (and its backing array) is reachable across the check *)
  ignore (Sys.opaque_identity h);
  Alcotest.(check int) "popped values pinned by a drained heap" 0 !live

let test_heap_no_leak_partial () =
  let h = Heap.create () in
  let w = Weak.create 8 in
  for i = 0 to 7 do
    let v = ref i in
    Weak.set w i (Some v);
    Heap.push h i v
  done;
  (* survivors with larger keys keep the heap non-empty *)
  for i = 0 to 7 do
    Heap.push h (100 + i) (ref (-1))
  done;
  for _ = 0 to 7 do
    ignore (Heap.pop h)
  done;
  Gc.full_major ();
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to 7 do
    if Weak.check w i then incr live
  done;
  Alcotest.(check int) "survivors retained" 8 (Heap.length h);
  ignore (Sys.opaque_identity h);
  Alcotest.(check int) "popped values pinned by a live heap" 0 !live

let test_heap_random () =
  let rng = Prng.create 77 in
  let h = Heap.create () in
  let reference = ref [] in
  for _ = 1 to 500 do
    let k = Prng.int rng 100 in
    Heap.push h k k;
    reference := k :: !reference
  done;
  let sorted = List.sort compare !reference in
  let popped = List.init 500 (fun _ -> fst (Heap.pop h)) in
  Alcotest.(check (list int)) "heapsort" sorted popped

(* ----------------------------- json ------------------------------ *)

module Json = Nd_util.Json

(* UTF-8 encoder for building expected strings from code points *)
let utf8_string cps =
  let b = Buffer.create 16 in
  List.iter
    (fun cp ->
      if cp < 0x80 then Buffer.add_char b (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
      end
      else if cp < 0x10000 then begin
        Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xf0 lor (cp lsr 18)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
      end)
    cps;
  Buffer.contents b

let test_json_surrogate_decode () =
  (* U+1F600 as a high/low pair -> one 4-byte UTF-8 character *)
  Alcotest.(check string) "astral pair" (utf8_string [ 0x1f600 ])
    (Json.to_string_exn (Json.parse "\"\\ud83d\\ude00\""));
  Alcotest.(check string) "BMP escape" (utf8_string [ 0x4e2d ])
    (Json.to_string_exn (Json.parse "\"\\u4e2d\""));
  Alcotest.(check string) "pair after text" (utf8_string [ 0x61; 0x10000 ])
    (Json.to_string_exn (Json.parse "\"a\\ud800\\udc00\""));
  (* RFC 8259 section 7: an unpaired surrogate is malformed *)
  List.iter
    (fun s ->
      match Json.parse s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted unpaired surrogate in %s" s)
    [
      "\"\\ud83d\"";
      "\"\\ude00\"";
      "\"\\ud83dx\"";
      "\"\\ud83d\\u0041\"";
      "\"\\ud83d\\ud83d\\ude00\"";
    ]

let test_json_surrogate_encode () =
  let s = utf8_string [ 0x1f600; 0x61; 0x10ffff ] in
  let ascii = Json.to_string_ascii (Json.String s) in
  Alcotest.(check bool) "pure ASCII" true
    (String.for_all (fun c -> Char.code c < 0x80) ascii);
  Alcotest.(check string) "escaped round-trip" s
    (Json.to_string_exn (Json.parse ascii))

(* valid Unicode scalar values, surrogate range excluded by construction *)
let gen_unicode_string =
  QCheck2.Gen.(
    let cp =
      oneof
        [
          int_range 0x20 0x7e;
          int_range 0xa0 0xd7ff;
          int_range 0xe000 0xfffd;
          int_range 0x10000 0x10ffff;
        ]
    in
    map utf8_string (small_list cp))

let prop_json_unicode_roundtrip =
  QCheck2.Test.make ~name:"json: parse (to_string* s) = s" ~count:300
    gen_unicode_string (fun s ->
      let v = Json.String s in
      Json.parse (Json.to_string v) = v
      && Json.parse (Json.to_string_ascii v) = v)

(* ----------------------------- table ----------------------------- *)

let test_table () =
  let t = Nd_util.Table.create ~title:"demo" [ "a"; "bb" ] in
  Nd_util.Table.add_row t [ "1"; "2"; "3" ];
  Nd_util.Table.add_row t [ "x" ];
  let s = Nd_util.Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 7 = "== demo");
  (* all rendered rows share the same width *)
  let lines = String.split_on_char '\n' s in
  let widths =
    List.filter_map
      (fun l -> if String.length l > 0 then Some (String.length l) else None)
      (List.tl lines)
  in
  match widths with
  | [] -> Alcotest.fail "no lines"
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "aligned" w w') rest

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_union_cardinal; prop_diff_partition; prop_overlaps_consistent ]
  in
  let json_qsuite =
    List.map QCheck_alcotest.to_alcotest [ prop_json_unicode_roundtrip ]
  in
  Alcotest.run "nd_util"
    [
      ( "interval_set",
        [
          Alcotest.test_case "basic" `Quick test_interval_basic;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "inter" `Quick test_inter;
          Alcotest.test_case "diff" `Quick test_diff;
          Alcotest.test_case "cardinal/mem" `Quick test_cardinal_mem;
          Alcotest.test_case "overlaps" `Quick test_overlaps;
          Alcotest.test_case "absorb" `Quick test_absorb;
          Alcotest.test_case "randomized agreement" `Quick test_normalize_random;
        ] );
      ("interval_set.properties", qsuite);
      ( "stats",
        [
          Alcotest.test_case "mean/stdev/geomean" `Quick test_mean_stdev;
          Alcotest.test_case "linear_fit" `Quick test_linear_fit;
          Alcotest.test_case "power_fit" `Quick test_power_fit;
          Alcotest.test_case "ratio_trend" `Quick test_ratio_trend;
        ] );
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "split" `Quick test_prng_split;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_order;
          Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "no leak when drained" `Quick
            test_heap_no_leak_drained;
          Alcotest.test_case "no leak while live" `Quick
            test_heap_no_leak_partial;
          Alcotest.test_case "randomized heapsort" `Quick test_heap_random;
        ] );
      ( "json",
        Alcotest.test_case "surrogate decode" `Quick test_json_surrogate_decode
        :: Alcotest.test_case "surrogate encode" `Quick
             test_json_surrogate_encode
        :: json_qsuite );
      ("table", [ Alcotest.test_case "render" `Quick test_table ]);
    ]
